file(REMOVE_RECURSE
  "CMakeFiles/demeter_balloon.dir/balloon.cc.o"
  "CMakeFiles/demeter_balloon.dir/balloon.cc.o.d"
  "libdemeter_balloon.a"
  "libdemeter_balloon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_balloon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
