# Empty dependencies file for demeter_balloon.
# This may be replaced when dependencies are built.
