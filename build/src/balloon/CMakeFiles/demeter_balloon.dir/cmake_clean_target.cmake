file(REMOVE_RECURSE
  "libdemeter_balloon.a"
)
