# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("mem")
subdirs("mmu")
subdirs("pebs")
subdirs("virtio")
subdirs("guest")
subdirs("hyper")
subdirs("balloon")
subdirs("core")
subdirs("tmm")
subdirs("workloads")
subdirs("harness")
subdirs("qos")
