# Empty compiler generated dependencies file for demeter_guest.
# This may be replaced when dependencies are built.
