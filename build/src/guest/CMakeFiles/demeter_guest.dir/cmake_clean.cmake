file(REMOVE_RECURSE
  "CMakeFiles/demeter_guest.dir/address_space.cc.o"
  "CMakeFiles/demeter_guest.dir/address_space.cc.o.d"
  "CMakeFiles/demeter_guest.dir/kernel.cc.o"
  "CMakeFiles/demeter_guest.dir/kernel.cc.o.d"
  "CMakeFiles/demeter_guest.dir/numa_node.cc.o"
  "CMakeFiles/demeter_guest.dir/numa_node.cc.o.d"
  "libdemeter_guest.a"
  "libdemeter_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
