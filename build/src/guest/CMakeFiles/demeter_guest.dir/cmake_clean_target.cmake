file(REMOVE_RECURSE
  "libdemeter_guest.a"
)
