
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/address_space.cc" "src/guest/CMakeFiles/demeter_guest.dir/address_space.cc.o" "gcc" "src/guest/CMakeFiles/demeter_guest.dir/address_space.cc.o.d"
  "/root/repo/src/guest/kernel.cc" "src/guest/CMakeFiles/demeter_guest.dir/kernel.cc.o" "gcc" "src/guest/CMakeFiles/demeter_guest.dir/kernel.cc.o.d"
  "/root/repo/src/guest/numa_node.cc" "src/guest/CMakeFiles/demeter_guest.dir/numa_node.cc.o" "gcc" "src/guest/CMakeFiles/demeter_guest.dir/numa_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/demeter_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/demeter_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/demeter_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
