file(REMOVE_RECURSE
  "libdemeter_qos.a"
)
