file(REMOVE_RECURSE
  "CMakeFiles/demeter_qos.dir/qos_manager.cc.o"
  "CMakeFiles/demeter_qos.dir/qos_manager.cc.o.d"
  "libdemeter_qos.a"
  "libdemeter_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
