# Empty compiler generated dependencies file for demeter_qos.
# This may be replaced when dependencies are built.
