# Empty dependencies file for demeter_harness.
# This may be replaced when dependencies are built.
