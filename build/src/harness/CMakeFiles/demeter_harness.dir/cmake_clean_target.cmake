file(REMOVE_RECURSE
  "libdemeter_harness.a"
)
