file(REMOVE_RECURSE
  "CMakeFiles/demeter_harness.dir/machine.cc.o"
  "CMakeFiles/demeter_harness.dir/machine.cc.o.d"
  "CMakeFiles/demeter_harness.dir/table.cc.o"
  "CMakeFiles/demeter_harness.dir/table.cc.o.d"
  "libdemeter_harness.a"
  "libdemeter_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
