# Empty dependencies file for demeter_base.
# This may be replaced when dependencies are built.
