file(REMOVE_RECURSE
  "libdemeter_base.a"
)
