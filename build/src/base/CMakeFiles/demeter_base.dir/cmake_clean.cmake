file(REMOVE_RECURSE
  "CMakeFiles/demeter_base.dir/histogram.cc.o"
  "CMakeFiles/demeter_base.dir/histogram.cc.o.d"
  "CMakeFiles/demeter_base.dir/logging.cc.o"
  "CMakeFiles/demeter_base.dir/logging.cc.o.d"
  "CMakeFiles/demeter_base.dir/rng.cc.o"
  "CMakeFiles/demeter_base.dir/rng.cc.o.d"
  "CMakeFiles/demeter_base.dir/stats.cc.o"
  "CMakeFiles/demeter_base.dir/stats.cc.o.d"
  "libdemeter_base.a"
  "libdemeter_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
