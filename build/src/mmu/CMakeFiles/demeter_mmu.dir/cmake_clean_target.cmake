file(REMOVE_RECURSE
  "libdemeter_mmu.a"
)
