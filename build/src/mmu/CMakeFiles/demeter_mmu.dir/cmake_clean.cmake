file(REMOVE_RECURSE
  "CMakeFiles/demeter_mmu.dir/page_table.cc.o"
  "CMakeFiles/demeter_mmu.dir/page_table.cc.o.d"
  "CMakeFiles/demeter_mmu.dir/tlb.cc.o"
  "CMakeFiles/demeter_mmu.dir/tlb.cc.o.d"
  "CMakeFiles/demeter_mmu.dir/walker.cc.o"
  "CMakeFiles/demeter_mmu.dir/walker.cc.o.d"
  "libdemeter_mmu.a"
  "libdemeter_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
