# Empty dependencies file for demeter_mmu.
# This may be replaced when dependencies are built.
