file(REMOVE_RECURSE
  "CMakeFiles/demeter_sim.dir/cpu_account.cc.o"
  "CMakeFiles/demeter_sim.dir/cpu_account.cc.o.d"
  "CMakeFiles/demeter_sim.dir/event_queue.cc.o"
  "CMakeFiles/demeter_sim.dir/event_queue.cc.o.d"
  "libdemeter_sim.a"
  "libdemeter_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
