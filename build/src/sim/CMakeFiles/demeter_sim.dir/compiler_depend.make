# Empty compiler generated dependencies file for demeter_sim.
# This may be replaced when dependencies are built.
