file(REMOVE_RECURSE
  "libdemeter_sim.a"
)
