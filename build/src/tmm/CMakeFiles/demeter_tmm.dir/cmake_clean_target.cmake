file(REMOVE_RECURSE
  "libdemeter_tmm.a"
)
