file(REMOVE_RECURSE
  "CMakeFiles/demeter_tmm.dir/damon.cc.o"
  "CMakeFiles/demeter_tmm.dir/damon.cc.o.d"
  "CMakeFiles/demeter_tmm.dir/htpp.cc.o"
  "CMakeFiles/demeter_tmm.dir/htpp.cc.o.d"
  "CMakeFiles/demeter_tmm.dir/memtis.cc.o"
  "CMakeFiles/demeter_tmm.dir/memtis.cc.o.d"
  "CMakeFiles/demeter_tmm.dir/nomad.cc.o"
  "CMakeFiles/demeter_tmm.dir/nomad.cc.o.d"
  "CMakeFiles/demeter_tmm.dir/policy_util.cc.o"
  "CMakeFiles/demeter_tmm.dir/policy_util.cc.o.d"
  "CMakeFiles/demeter_tmm.dir/tpp.cc.o"
  "CMakeFiles/demeter_tmm.dir/tpp.cc.o.d"
  "libdemeter_tmm.a"
  "libdemeter_tmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_tmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
