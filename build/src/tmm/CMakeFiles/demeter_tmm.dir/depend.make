# Empty dependencies file for demeter_tmm.
# This may be replaced when dependencies are built.
