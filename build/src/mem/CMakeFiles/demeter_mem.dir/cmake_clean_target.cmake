file(REMOVE_RECURSE
  "libdemeter_mem.a"
)
