file(REMOVE_RECURSE
  "CMakeFiles/demeter_mem.dir/host_memory.cc.o"
  "CMakeFiles/demeter_mem.dir/host_memory.cc.o.d"
  "CMakeFiles/demeter_mem.dir/tier.cc.o"
  "CMakeFiles/demeter_mem.dir/tier.cc.o.d"
  "libdemeter_mem.a"
  "libdemeter_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
