# Empty compiler generated dependencies file for demeter_mem.
# This may be replaced when dependencies are built.
