file(REMOVE_RECURSE
  "CMakeFiles/demeter_workloads.dir/db_workloads.cc.o"
  "CMakeFiles/demeter_workloads.dir/db_workloads.cc.o.d"
  "CMakeFiles/demeter_workloads.dir/graph_workloads.cc.o"
  "CMakeFiles/demeter_workloads.dir/graph_workloads.cc.o.d"
  "CMakeFiles/demeter_workloads.dir/gups.cc.o"
  "CMakeFiles/demeter_workloads.dir/gups.cc.o.d"
  "CMakeFiles/demeter_workloads.dir/hpc_workloads.cc.o"
  "CMakeFiles/demeter_workloads.dir/hpc_workloads.cc.o.d"
  "CMakeFiles/demeter_workloads.dir/ml_workloads.cc.o"
  "CMakeFiles/demeter_workloads.dir/ml_workloads.cc.o.d"
  "CMakeFiles/demeter_workloads.dir/workload_factory.cc.o"
  "CMakeFiles/demeter_workloads.dir/workload_factory.cc.o.d"
  "libdemeter_workloads.a"
  "libdemeter_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
