
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/db_workloads.cc" "src/workloads/CMakeFiles/demeter_workloads.dir/db_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/demeter_workloads.dir/db_workloads.cc.o.d"
  "/root/repo/src/workloads/graph_workloads.cc" "src/workloads/CMakeFiles/demeter_workloads.dir/graph_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/demeter_workloads.dir/graph_workloads.cc.o.d"
  "/root/repo/src/workloads/gups.cc" "src/workloads/CMakeFiles/demeter_workloads.dir/gups.cc.o" "gcc" "src/workloads/CMakeFiles/demeter_workloads.dir/gups.cc.o.d"
  "/root/repo/src/workloads/hpc_workloads.cc" "src/workloads/CMakeFiles/demeter_workloads.dir/hpc_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/demeter_workloads.dir/hpc_workloads.cc.o.d"
  "/root/repo/src/workloads/ml_workloads.cc" "src/workloads/CMakeFiles/demeter_workloads.dir/ml_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/demeter_workloads.dir/ml_workloads.cc.o.d"
  "/root/repo/src/workloads/workload_factory.cc" "src/workloads/CMakeFiles/demeter_workloads.dir/workload_factory.cc.o" "gcc" "src/workloads/CMakeFiles/demeter_workloads.dir/workload_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/demeter_base.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/demeter_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/demeter_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/demeter_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
