file(REMOVE_RECURSE
  "libdemeter_workloads.a"
)
