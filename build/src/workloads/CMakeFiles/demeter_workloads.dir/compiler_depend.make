# Empty compiler generated dependencies file for demeter_workloads.
# This may be replaced when dependencies are built.
