# Empty dependencies file for demeter_core.
# This may be replaced when dependencies are built.
