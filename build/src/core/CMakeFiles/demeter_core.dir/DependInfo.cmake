
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/demeter_policy.cc" "src/core/CMakeFiles/demeter_core.dir/demeter_policy.cc.o" "gcc" "src/core/CMakeFiles/demeter_core.dir/demeter_policy.cc.o.d"
  "/root/repo/src/core/range_tree.cc" "src/core/CMakeFiles/demeter_core.dir/range_tree.cc.o" "gcc" "src/core/CMakeFiles/demeter_core.dir/range_tree.cc.o.d"
  "/root/repo/src/core/relocator.cc" "src/core/CMakeFiles/demeter_core.dir/relocator.cc.o" "gcc" "src/core/CMakeFiles/demeter_core.dir/relocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/balloon/CMakeFiles/demeter_balloon.dir/DependInfo.cmake"
  "/root/repo/build/src/hyper/CMakeFiles/demeter_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/demeter_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/demeter_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/demeter_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pebs/CMakeFiles/demeter_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demeter_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/demeter_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
