file(REMOVE_RECURSE
  "CMakeFiles/demeter_core.dir/demeter_policy.cc.o"
  "CMakeFiles/demeter_core.dir/demeter_policy.cc.o.d"
  "CMakeFiles/demeter_core.dir/range_tree.cc.o"
  "CMakeFiles/demeter_core.dir/range_tree.cc.o.d"
  "CMakeFiles/demeter_core.dir/relocator.cc.o"
  "CMakeFiles/demeter_core.dir/relocator.cc.o.d"
  "libdemeter_core.a"
  "libdemeter_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
