file(REMOVE_RECURSE
  "libdemeter_core.a"
)
