file(REMOVE_RECURSE
  "libdemeter_hyper.a"
)
