# Empty dependencies file for demeter_hyper.
# This may be replaced when dependencies are built.
