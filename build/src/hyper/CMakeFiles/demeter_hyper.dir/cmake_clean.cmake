file(REMOVE_RECURSE
  "CMakeFiles/demeter_hyper.dir/hypervisor.cc.o"
  "CMakeFiles/demeter_hyper.dir/hypervisor.cc.o.d"
  "CMakeFiles/demeter_hyper.dir/vm.cc.o"
  "CMakeFiles/demeter_hyper.dir/vm.cc.o.d"
  "libdemeter_hyper.a"
  "libdemeter_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
