file(REMOVE_RECURSE
  "CMakeFiles/demeter_pebs.dir/pebs.cc.o"
  "CMakeFiles/demeter_pebs.dir/pebs.cc.o.d"
  "libdemeter_pebs.a"
  "libdemeter_pebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_pebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
