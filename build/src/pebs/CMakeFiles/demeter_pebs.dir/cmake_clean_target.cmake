file(REMOVE_RECURSE
  "libdemeter_pebs.a"
)
