# Empty dependencies file for demeter_pebs.
# This may be replaced when dependencies are built.
