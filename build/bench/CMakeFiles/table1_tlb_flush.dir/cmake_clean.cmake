file(REMOVE_RECURSE
  "CMakeFiles/table1_tlb_flush.dir/table1_tlb_flush.cc.o"
  "CMakeFiles/table1_tlb_flush.dir/table1_tlb_flush.cc.o.d"
  "table1_tlb_flush"
  "table1_tlb_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tlb_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
