# Empty compiler generated dependencies file for table1_tlb_flush.
# This may be replaced when dependencies are built.
