# Empty compiler generated dependencies file for ext_qos_guest_schemes.
# This may be replaced when dependencies are built.
