file(REMOVE_RECURSE
  "CMakeFiles/ext_qos_guest_schemes.dir/ext_qos_guest_schemes.cc.o"
  "CMakeFiles/ext_qos_guest_schemes.dir/ext_qos_guest_schemes.cc.o.d"
  "ext_qos_guest_schemes"
  "ext_qos_guest_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_qos_guest_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
