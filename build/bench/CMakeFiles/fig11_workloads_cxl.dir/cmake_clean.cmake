file(REMOVE_RECURSE
  "CMakeFiles/fig11_workloads_cxl.dir/fig11_workloads_cxl.cc.o"
  "CMakeFiles/fig11_workloads_cxl.dir/fig11_workloads_cxl.cc.o.d"
  "fig11_workloads_cxl"
  "fig11_workloads_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_workloads_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
