# Empty compiler generated dependencies file for fig11_workloads_cxl.
# This may be replaced when dependencies are built.
