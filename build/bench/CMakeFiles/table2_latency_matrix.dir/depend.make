# Empty dependencies file for table2_latency_matrix.
# This may be replaced when dependencies are built.
