file(REMOVE_RECURSE
  "CMakeFiles/fig8_throughput_timeline.dir/fig8_throughput_timeline.cc.o"
  "CMakeFiles/fig8_throughput_timeline.dir/fig8_throughput_timeline.cc.o.d"
  "fig8_throughput_timeline"
  "fig8_throughput_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_throughput_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
