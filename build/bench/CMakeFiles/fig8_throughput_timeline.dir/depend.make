# Empty dependencies file for fig8_throughput_timeline.
# This may be replaced when dependencies are built.
