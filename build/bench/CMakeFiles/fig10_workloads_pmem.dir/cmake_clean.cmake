file(REMOVE_RECURSE
  "CMakeFiles/fig10_workloads_pmem.dir/fig10_workloads_pmem.cc.o"
  "CMakeFiles/fig10_workloads_pmem.dir/fig10_workloads_pmem.cc.o.d"
  "fig10_workloads_pmem"
  "fig10_workloads_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_workloads_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
