# Empty dependencies file for fig10_workloads_pmem.
# This may be replaced when dependencies are built.
