file(REMOVE_RECURSE
  "CMakeFiles/ablation_demeter.dir/ablation_demeter.cc.o"
  "CMakeFiles/ablation_demeter.dir/ablation_demeter.cc.o.d"
  "ablation_demeter"
  "ablation_demeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_demeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
