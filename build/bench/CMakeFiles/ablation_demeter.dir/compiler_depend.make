# Empty compiler generated dependencies file for ablation_demeter.
# This may be replaced when dependencies are built.
