file(REMOVE_RECURSE
  "CMakeFiles/fig6_provisioning.dir/fig6_provisioning.cc.o"
  "CMakeFiles/fig6_provisioning.dir/fig6_provisioning.cc.o.d"
  "fig6_provisioning"
  "fig6_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
