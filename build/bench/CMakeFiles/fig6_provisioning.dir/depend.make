# Empty dependencies file for fig6_provisioning.
# This may be replaced when dependencies are built.
