# Empty dependencies file for fig4_locality_heatmap.
# This may be replaced when dependencies are built.
