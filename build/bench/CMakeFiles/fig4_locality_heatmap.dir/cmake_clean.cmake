file(REMOVE_RECURSE
  "CMakeFiles/fig4_locality_heatmap.dir/fig4_locality_heatmap.cc.o"
  "CMakeFiles/fig4_locality_heatmap.dir/fig4_locality_heatmap.cc.o.d"
  "fig4_locality_heatmap"
  "fig4_locality_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_locality_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
