# Empty compiler generated dependencies file for demeter_sim_cli.
# This may be replaced when dependencies are built.
