file(REMOVE_RECURSE
  "CMakeFiles/demeter_sim_cli.dir/demeter_sim.cc.o"
  "CMakeFiles/demeter_sim_cli.dir/demeter_sim.cc.o.d"
  "demeter-sim"
  "demeter-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demeter_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
