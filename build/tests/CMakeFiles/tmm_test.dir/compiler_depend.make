# Empty compiler generated dependencies file for tmm_test.
# This may be replaced when dependencies are built.
