file(REMOVE_RECURSE
  "CMakeFiles/tmm_test.dir/tmm_test.cc.o"
  "CMakeFiles/tmm_test.dir/tmm_test.cc.o.d"
  "tmm_test"
  "tmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
