file(REMOVE_RECURSE
  "CMakeFiles/hyper_test.dir/hyper_test.cc.o"
  "CMakeFiles/hyper_test.dir/hyper_test.cc.o.d"
  "hyper_test"
  "hyper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
