# Empty compiler generated dependencies file for database_tiering.
# This may be replaced when dependencies are built.
