file(REMOVE_RECURSE
  "CMakeFiles/cloud_consolidation.dir/cloud_consolidation.cc.o"
  "CMakeFiles/cloud_consolidation.dir/cloud_consolidation.cc.o.d"
  "cloud_consolidation"
  "cloud_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
