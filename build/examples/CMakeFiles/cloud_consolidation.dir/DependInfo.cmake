
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cloud_consolidation.cc" "examples/CMakeFiles/cloud_consolidation.dir/cloud_consolidation.cc.o" "gcc" "examples/CMakeFiles/cloud_consolidation.dir/cloud_consolidation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/demeter_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/demeter_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/tmm/CMakeFiles/demeter_tmm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/demeter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/balloon/CMakeFiles/demeter_balloon.dir/DependInfo.cmake"
  "/root/repo/build/src/hyper/CMakeFiles/demeter_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/pebs/CMakeFiles/demeter_pebs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demeter_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/demeter_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/demeter_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/demeter_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/demeter_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/demeter_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
