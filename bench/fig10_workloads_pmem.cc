// Figure 10 (and §5.4): average execution time across the seven real-world
// workloads on DRAM + PMEM tiering, for every guest-delegated design plus
// the hypervisor-based TPP-H and unmanaged first-touch placement.
//
// Paper shapes to reproduce: Demeter best or second-best everywhere, up to
// 2.2x over the worst alternative and ~28% geomean over the next-best
// guest design (TPP); Nomad consistently worst (migration thrashing);
// Memtis weak on static-hotspot workloads; TPP closest on graph workloads;
// TPP-H behind its guest-based counterpart on most workloads (§5.4).

#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.h"
#include "src/base/logging.h"
#include "src/base/stats.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  const std::vector<PolicyKind> policies = {PolicyKind::kStatic, PolicyKind::kDemeter,
                                            PolicyKind::kTpp,    PolicyKind::kMemtis,
                                            PolicyKind::kNomad,  PolicyKind::kHTpp};
  std::printf("Figure 10: real-world workloads, DRAM + PMEM (execution time, seconds)\n\n");

  TablePrinter table({"workload", "static", "demeter", "tpp", "memtis", "nomad", "tpp-h",
                      "demeter-vs-next-best"});

  // Every (workload, policy) cell is an independent simulation: fan them all
  // out through the runner (results come back in spec order).
  ExperimentRunner runner(RunnerOptionsFor(scale));
  for (const std::string& workload : RealWorldWorkloadNames()) {
    for (PolicyKind policy : policies) {
      runner.Submit(SpecFor(scale, workload, policy, scale.concurrent_vms));
    }
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  std::map<std::string, std::map<std::string, double>> elapsed;
  size_t next = 0;
  for (const std::string& workload : RealWorldWorkloadNames()) {
    for (PolicyKind policy : policies) {
      const ExperimentResult& result = results[next++];
      DEMETER_CHECK(result.ok) << result.spec.name << ": " << result.error;
      elapsed[workload][PolicyKindName(policy)] = result.MeanElapsedSeconds();
    }
    const auto& row = elapsed[workload];
    double next_best = 1e300;
    for (const auto& [name, secs] : row) {
      if (name != "demeter" && name != "static" && secs < next_best) {
        next_best = secs;
      }
    }
    const double gain = (next_best - row.at("demeter")) / next_best * 100.0;
    table.AddRow({workload, TablePrinter::Fmt(row.at("static"), 3),
                  TablePrinter::Fmt(row.at("demeter"), 3), TablePrinter::Fmt(row.at("tpp"), 3),
                  TablePrinter::Fmt(row.at("memtis"), 3), TablePrinter::Fmt(row.at("nomad"), 3),
                  TablePrinter::Fmt(row.at("tpp-h"), 3),
                  (gain >= 0 ? "+" : "") + TablePrinter::Fmt(gain, 1) + "%"});
  }
  table.Print();

  // Geomean speedups of Demeter vs each alternative (paper: +28% vs TPP,
  // +16% vs hypervisor-based).
  std::printf("\nGeomean speedup of Demeter:\n");
  for (const char* other : {"static", "tpp", "memtis", "nomad", "tpp-h"}) {
    std::vector<double> ratios;
    for (const std::string& workload : RealWorldWorkloadNames()) {
      ratios.push_back(elapsed[workload][other] / elapsed[workload]["demeter"]);
    }
    std::printf("  vs %-8s %.2fx\n", other, GeometricMean(ratios));
  }
  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
