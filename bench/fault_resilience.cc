// Fault-resilience sweep: fault intensity x TMM policy x slow-memory kind,
// every VM provisioned through the Demeter double balloon so the balloon
// retry/timeout machinery and the Demeter degradation fallback are both on
// the critical path.
//
// No paper figure covers faults — the testbed hosts never crash on cue —
// but an elastic cloud substrate is judged by how it behaves when guests
// stall, virtqueues fill, and migrations abort. This bench reports, per
// fault level, each policy's throughput retention (vs. its own fault-free
// run) and the Demeter degradation/recovery counters, including the
// no-fallback ablation ("demeter-nofb": DegradationConfig{enabled=false})
// that shows what the watchdog is worth.
//
// This bench sweeps its own fault schedule; the generic --faults flag is
// rejected here to avoid silently mixing two schedules.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/base/logging.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

struct FaultLevel {
  const char* name;
  const char* spec;
};

// Escalating schedules. The "high" level crashes the guest engine for
// 90 ms of every 100 ms — 45 straight epochs lost per window. Silo's
// hotspot drifts ~5% of the keyspace per ~12 ms, so without the host
// fallback each outage leaves placement several full hot-set rotations
// stale before the guest engine returns.
constexpr FaultLevel kLevels[] = {
    {"none", ""},
    {"low", "bdelay=0.1/200us,bdrop=0.05,pebsdrop=0.1,migfail=0.05"},
    {"mid", "bdrop=0.2,stall=5ms/25ms,pebsdrop=0.25,migfail=0.1,vqcap=8"},
    {"high",
     "bdrop=0.5,stall=10ms/40ms,crash=90ms/100ms,pebsdrop=0.5,migfail=0.25,tierex=0.1,vqcap=4"},
};

// Epoch sized so smoke runs still span many epochs (and therefore many
// fault windows). Degradation thresholds relative to it are set per-VM
// below, where the tuning rationale lives.
constexpr Nanos kEpoch = 2 * kMillisecond;

struct PolicyVariant {
  const char* name;
  PolicyKind kind;
  bool degradation = true;  // Only meaningful for Demeter.
};

constexpr PolicyVariant kPolicies[] = {
    {"demeter", PolicyKind::kDemeter, true},
    {"demeter-nofb", PolicyKind::kDemeter, false},
    {"tpp", PolicyKind::kTpp, true},
    {"memtis", PolicyKind::kMemtis, true},
    {"nomad", PolicyKind::kNomad, true},
};

int Run(int argc, char** argv) {
  BenchScale scale = BenchScale::FromArgs(argc, argv);
  if (!scale.faults.empty()) {
    std::fprintf(stderr, "%s: this bench sweeps its own fault levels; drop --faults\n", argv[0]);
    return 2;
  }
  // Longer runs than the other benches: each run must span many stall and
  // crash windows for degradation/recovery cycles to show up.
  scale.transactions *= 2;
  scale.demeter_epoch = kEpoch;
  const std::vector<SmemKind> smem_kinds = {SmemKind::kPmem, SmemKind::kCxl};
  const size_t num_levels = sizeof(kLevels) / sizeof(kLevels[0]);
  const size_t num_policies = sizeof(kPolicies) / sizeof(kPolicies[0]);

  std::printf("Fault resilience: %zu fault levels x %zu policies x %zu slow tiers "
              "(%zu experiments)\n\n",
              num_levels, num_policies, smem_kinds.size(),
              num_levels * num_policies * smem_kinds.size());

  ExperimentRunner runner(RunnerOptionsFor(scale));
  for (const FaultLevel& level : kLevels) {
    std::string error;
    const std::optional<FaultPlan> plan = FaultPlan::Parse(level.spec, &error);
    DEMETER_CHECK(plan.has_value()) << "bad built-in fault spec '" << level.spec
                                    << "': " << error;
    for (SmemKind smem : smem_kinds) {
      for (const PolicyVariant& variant : kPolicies) {
        // silo: YCSB with a drifting hotspot, so a guest engine that loses
        // epochs leaves placement stale — exactly what the host fallback is
        // for (a static-hotspot workload would mask the difference).
        ExperimentSpec spec = SpecFor(scale, "silo", variant.kind, scale.concurrent_vms, smem);
        spec.name = std::string("silo/") + variant.name + "/" + SmemKindName(smem) + "/" +
                    level.name;
        spec.tag = level.name;
        spec.config.faults = *plan;
        for (VmSetup& setup : spec.vms) {
          setup.provision = ProvisionMode::kDemeterBalloon;
          setup.demeter.degradation.enabled = variant.degradation;
          // Degrade only on real outages: the threshold sits above the
          // 10 ms stall windows (transient hiccups the guest absorbs on
          // its own) but far below the 450 ms crash windows. Degrading on
          // every stall would be actively harmful — each host round
          // consumes the PEBS channel, so a guest that recovers moments
          // later runs its next epoch on a starved range tree.
          setup.demeter.degradation.unresponsive_after = 6 * kEpoch;
          setup.demeter.degradation.watchdog_period = kEpoch;
          // Host rounds at the guest's own epoch cadence: silo's hotspot
          // drifts continuously, so a slower fallback promotes pages that
          // have already cooled by the time they land in FMEM.
          setup.demeter.degradation.host_round_period = kEpoch;
          // Batch sized to silo's drift rate (~45 newly-hot pages per
          // epoch): promoting more just churns pages the drift will cool
          // moments later, and every extra migration is a page copy that
          // congests the slow tier the workload is reading from.
          setup.demeter.degradation.host_batch_pages = 64;
        }
        runner.Submit(spec);
      }
    }
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  TableSink table;
  for (const ExperimentResult& result : results) {
    table.Consume(result);
  }
  table.Finish();

  // Headline: per (policy, tier), throughput retention at each fault level
  // relative to that policy's own fault-free run, plus Demeter's recovery
  // behaviour (time degraded and host-side migrations while degraded).
  std::printf("\nThroughput retention vs fault-free (higher is better):\n");
  std::printf("  %-14s %-5s", "policy", "smem");
  for (const FaultLevel& level : kLevels) {
    std::printf(" %9s", level.name);
  }
  std::printf("\n");
  // Submission order: level-major, then smem, then policy.
  const size_t per_level = smem_kinds.size() * num_policies;
  for (size_t p = 0; p < num_policies; ++p) {
    for (size_t s = 0; s < smem_kinds.size(); ++s) {
      std::printf("  %-14s %-5s", kPolicies[p].name, SmemKindName(smem_kinds[s]));
      double baseline = 0.0;
      for (size_t l = 0; l < num_levels; ++l) {
        const ExperimentResult& result = results[l * per_level + s * num_policies + p];
        double tps = 0.0;
        if (result.ok) {
          for (const VmRunResult& vm : result.vms) {
            tps += vm.ThroughputTps();
          }
        }
        if (l == 0) {
          baseline = tps;
          std::printf(" %8.0f ", tps);
        } else {
          std::printf(" %8.1f%%", baseline > 0.0 ? 100.0 * tps / baseline : 0.0);
        }
      }
      std::printf("\n");
    }
  }

  std::printf("\nDemeter degradation behaviour (summed over VMs):\n");
  std::printf("  %-14s %-5s %-5s %10s %10s %12s %10s\n", "policy", "smem", "level", "entries",
              "recovered", "degraded_ms", "host_migr");
  for (size_t l = 1; l < num_levels; ++l) {
    for (size_t s = 0; s < smem_kinds.size(); ++s) {
      for (size_t p = 0; p < num_policies; ++p) {
        if (kPolicies[p].kind != PolicyKind::kDemeter) {
          continue;
        }
        const ExperimentResult& result = results[l * per_level + s * num_policies + p];
        uint64_t entries = 0, recoveries = 0, degraded_ns = 0, host_migrations = 0;
        if (result.ok) {
          for (const VmRunResult& vm : result.vms) {
            entries += vm.metrics.CounterValue("policy/degraded_entries");
            recoveries += vm.metrics.CounterValue("policy/recoveries");
            degraded_ns += vm.metrics.CounterValue("policy/degraded_ns");
            host_migrations += vm.metrics.CounterValue("policy/host_migrations");
          }
        }
        std::printf("  %-14s %-5s %-5s %10llu %10llu %12.1f %10llu\n", kPolicies[p].name,
                    SmemKindName(smem_kinds[s]), kLevels[l].name,
                    static_cast<unsigned long long>(entries),
                    static_cast<unsigned long long>(recoveries),
                    static_cast<double>(degraded_ns) / 1e6,
                    static_cast<unsigned long long>(host_migrations));
      }
    }
  }

  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
