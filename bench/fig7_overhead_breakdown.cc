// Figure 7: breakdown of tiered-memory-management CPU overhead (seconds)
// per pipeline stage across guest designs, summed over concurrent VMs
// running GUPS.
//
// Paper shapes: Demeter's tracking (context-switch drains) is ~16x cheaper
// than Memtis' dedicated collection threads; TPP and Nomad pay heavy
// page-table scanning and fault-driven migration; Memtis shows almost no
// migration because its page-granular classification finds too little hot
// data (reflected in its longer run time, not in this table).

#include <cstdio>

#include "bench/common.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  std::printf("Figure 7: TMM overhead breakdown (CPU seconds, %d VMs, GUPS)\n\n",
              scale.concurrent_vms);
  TablePrinter table(
      {"design", "tracking", "classification", "migration", "pmi", "total", "elapsed-s",
       "promoted-pages"});

  for (PolicyKind policy :
       {PolicyKind::kTpp, PolicyKind::kNomad, PolicyKind::kMemtis, PolicyKind::kDemeter}) {
    Machine machine(HostFor(scale, scale.concurrent_vms));
    for (int v = 0; v < scale.concurrent_vms; ++v) {
      machine.AddVm(SetupFor(scale, "gups", policy));
    }
    machine.Run();
    CpuAccount total;
    uint64_t promoted = 0;
    for (int v = 0; v < machine.num_vms(); ++v) {
      total.Merge(machine.result(v).mgmt);
      promoted += machine.result(v).vm_stats.pages_promoted;
    }
    table.AddRow({PolicyKindName(policy),
                  TablePrinter::Fmt(ToSeconds(total.ForStage(TmmStage::kTracking)), 4),
                  TablePrinter::Fmt(ToSeconds(total.ForStage(TmmStage::kClassification)), 4),
                  TablePrinter::Fmt(ToSeconds(total.ForStage(TmmStage::kMigration)), 4),
                  TablePrinter::Fmt(ToSeconds(total.ForStage(TmmStage::kPmi)), 4),
                  TablePrinter::Fmt(ToSeconds(total.Total()), 4),
                  TablePrinter::Fmt(machine.MeanElapsedSeconds(), 3),
                  TablePrinter::Fmt(promoted)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
