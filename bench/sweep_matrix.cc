// Cross-product sweep: every TMM policy x both slow-memory kinds (PMEM and
// emulated CXL.mem) x a representative workload mix, in one invocation.
//
// No single paper figure covers this matrix — it exists because the parallel
// experiment runner makes a 56-simulation sweep practical where the old
// sequential harness made it prohibitive. Output: one summary-table row and
// one JSON-lines record per experiment (use --out=FILE for the latter), so
// downstream what-if analysis (policy choice per tier technology) needs no
// extra binaries.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  const std::vector<PolicyKind> policies = {
      PolicyKind::kStatic, PolicyKind::kDemeter, PolicyKind::kTpp,  PolicyKind::kHTpp,
      PolicyKind::kMemtis, PolicyKind::kNomad,   PolicyKind::kDamon};
  const std::vector<SmemKind> smem_kinds = {SmemKind::kPmem, SmemKind::kCxl};
  // GUPS (adversarial hotspot churn) plus the hotspot-heavy and graph-shaped
  // extremes of the real-world suite.
  const std::vector<std::string> workloads = {"gups", "silo", "xsbench", "pagerank"};

  std::printf("Sweep matrix: %zu policies x %zu slow tiers x %zu workloads (%zu experiments)\n\n",
              policies.size(), smem_kinds.size(), workloads.size(),
              policies.size() * smem_kinds.size() * workloads.size());

  ExperimentRunner runner(RunnerOptionsFor(scale));
  for (const std::string& workload : workloads) {
    for (SmemKind smem : smem_kinds) {
      for (PolicyKind policy : policies) {
        runner.Submit(SpecFor(scale, workload, policy, scale.concurrent_vms, smem));
      }
    }
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  TableSink table;
  for (const ExperimentResult& result : results) {
    table.Consume(result);
  }
  table.Finish();

  // Per (workload, tier) winner by mean elapsed time — the sweep's headline.
  std::printf("\nFastest policy per cell:\n");
  size_t next = 0;
  for (const std::string& workload : workloads) {
    for (SmemKind smem : smem_kinds) {
      double best = 1e300;
      std::string who = "-";
      for (size_t p = 0; p < policies.size(); ++p) {
        const ExperimentResult& result = results[next++];
        if (result.ok && result.MeanElapsedSeconds() < best) {
          best = result.MeanElapsedSeconds();
          who = PolicyKindName(result.spec.vms.front().policy);
        }
      }
      std::printf("  %-10s %-5s %-8s %.3f s\n", workload.c_str(), SmemKindName(smem),
                  who.c_str(), best);
    }
  }
  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
