// Figure 11: the real-world workload suite with emulated CXL.mem (remote
// DRAM) as the slow tier, following Pond's emulation methodology.
//
// Paper shapes: CXL narrows the tier gap (121.9 ns vs PMEM's 176.6 ns), so
// all improvements shrink; Demeter keeps a >=10% edge over TPP on the
// hotspot workloads (Silo, LibLinear, XSBench).

#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.h"
#include "src/base/logging.h"
#include "src/base/stats.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  const std::vector<PolicyKind> policies = {PolicyKind::kStatic, PolicyKind::kDemeter,
                                            PolicyKind::kTpp,    PolicyKind::kMemtis,
                                            PolicyKind::kNomad};
  std::printf("Figure 11: real-world workloads, DRAM + emulated CXL.mem (execution time, s)\n\n");

  TablePrinter table({"workload", "static", "demeter", "tpp", "memtis", "nomad",
                      "demeter-vs-next-best"});

  ExperimentRunner runner(RunnerOptionsFor(scale));
  for (const std::string& workload : RealWorldWorkloadNames()) {
    for (PolicyKind policy : policies) {
      runner.Submit(SpecFor(scale, workload, policy, scale.concurrent_vms, SmemKind::kCxl));
    }
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  std::map<std::string, std::map<std::string, double>> elapsed;
  size_t next = 0;
  for (const std::string& workload : RealWorldWorkloadNames()) {
    for (PolicyKind policy : policies) {
      const ExperimentResult& result = results[next++];
      DEMETER_CHECK(result.ok) << result.spec.name << ": " << result.error;
      elapsed[workload][PolicyKindName(policy)] = result.MeanElapsedSeconds();
    }
    const auto& row = elapsed[workload];
    double next_best = 1e300;
    for (const auto& [name, secs] : row) {
      if (name != "demeter" && name != "static" && secs < next_best) {
        next_best = secs;
      }
    }
    const double gain = (next_best - row.at("demeter")) / next_best * 100.0;
    table.AddRow({workload, TablePrinter::Fmt(row.at("static"), 3),
                  TablePrinter::Fmt(row.at("demeter"), 3), TablePrinter::Fmt(row.at("tpp"), 3),
                  TablePrinter::Fmt(row.at("memtis"), 3), TablePrinter::Fmt(row.at("nomad"), 3),
                  (gain >= 0 ? "+" : "") + TablePrinter::Fmt(gain, 1) + "%"});
  }
  table.Print();

  std::printf("\nGeomean speedup of Demeter (CXL tier narrows all gaps):\n");
  for (const char* other : {"static", "tpp", "memtis", "nomad"}) {
    std::vector<double> ratios;
    for (const std::string& workload : RealWorldWorkloadNames()) {
      ratios.push_back(elapsed[workload][other] / elapsed[workload]["demeter"]);
    }
    std::printf("  vs %-8s %.2fx\n", other, GeometricMean(ratios));
  }
  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
