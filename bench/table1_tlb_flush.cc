// Table 1: TLB flush instruction counts (single / full) and GUPS elapsed
// time for hypervisor-based TPP (H-TPP), guest-based TPP (G-TPP), and
// Demeter.
//
// Paper shapes: H-TPP issues by far the most flushes including millions of
// destructive full invalidations and runs ~2.5x slower; G-TPP uses only
// single-address invalidations; Demeter cuts single flushes roughly in half
// again (~47%) and runs ~15% faster than G-TPP.

#include <cstdio>

#include "bench/common.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  std::printf("Table 1: TLB flush comparison under GUPS\n\n");
  TablePrinter table({"design", "tlb-flush-single", "tlb-flush-full", "gups-elapsed-s"});

  for (PolicyKind policy : {PolicyKind::kHTpp, PolicyKind::kTpp, PolicyKind::kDemeter}) {
    Machine machine(HostFor(scale, 1));
    VmSetup setup = SetupFor(scale, "gups", policy);
    if (policy == PolicyKind::kHTpp) {
      // The hypervisor port's MMU-notifier hooks fire with guest activity,
      // not on the guest's coarse scan timer: scan much more often.
      setup.policy_period = scale.policy_period / 3;
    }
    machine.AddVm(setup);
    machine.Run();
    const VmRunResult& result = machine.result(0);
    const char* label = policy == PolicyKind::kHTpp   ? "H-TPP"
                        : policy == PolicyKind::kTpp ? "G-TPP"
                                                     : "Demeter";
    table.AddRow({label, TablePrinter::Fmt(result.tlb.single_flushes),
                  TablePrinter::Fmt(result.tlb.full_flushes),
                  TablePrinter::Fmt(result.elapsed_s, 3)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): full invalidations only under H-TPP; Demeter\n"
      "issues the fewest single invalidations and finishes first.\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
