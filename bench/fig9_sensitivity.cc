// Figure 9: parameter sensitivity of access tracking and hotness
// classification, measured as GUPS runtime.
//
// Four sweeps, as in the paper: PEBS sample period and load-latency
// threshold; range-split period (t_split) and split threshold (tau_split).
// Paper shape: flat plateaus across a wide middle range, degrading only at
// extremes (periods too long, thresholds too high, epochs too frequent).

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

double RuntimeWith(const BenchScale& scale, uint64_t sample_period, double latency_threshold,
                   Nanos split_period, double split_threshold) {
  Machine machine(HostFor(scale, 1));
  VmSetup setup = SetupFor(scale, "gups", PolicyKind::kDemeter);
  setup.demeter.sample_period = sample_period;
  setup.demeter.latency_threshold_ns = latency_threshold;
  setup.demeter.range.epoch_length = split_period;
  setup.demeter.range.split_threshold = split_threshold;
  machine.AddVm(setup);
  machine.Run();
  return machine.result(0).elapsed_s;
}

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  // The scaled defaults corresponding to the paper's (4093, 64ns, 500ms, 15).
  const uint64_t kPeriod = scale.demeter_sample_period;
  const double kThreshold = 64.0;
  const Nanos kEpoch = scale.demeter_epoch;
  const double kTau = scale.demeter_split_threshold;

  std::printf("Figure 9: access tracking & classification sensitivity (GUPS runtime, s)\n\n");

  {
    TablePrinter table({"sample-period", "runtime-s"});
    for (uint64_t period : {kPeriod / 4, kPeriod / 2, kPeriod, kPeriod * 4, kPeriod * 16,
                            kPeriod * 64}) {
      table.AddRow({TablePrinter::Fmt(period),
                    TablePrinter::Fmt(RuntimeWith(scale, period, kThreshold, kEpoch, kTau), 3)});
    }
    std::printf("Sweep A: PEBS sample period (paper default scaled: %llu)\n",
                static_cast<unsigned long long>(kPeriod));
    table.Print();
  }

  {
    TablePrinter table({"latency-threshold-ns", "runtime-s"});
    for (double threshold : {16.0, 32.0, 64.0, 128.0, 512.0, 2048.0}) {
      table.AddRow({TablePrinter::Fmt(threshold, 0),
                    TablePrinter::Fmt(RuntimeWith(scale, kPeriod, threshold, kEpoch, kTau), 3)});
    }
    std::printf("\nSweep B: PEBS load-latency threshold (paper default: 64 ns)\n");
    table.Print();
  }

  {
    TablePrinter table({"split-period-ms", "runtime-s"});
    for (Nanos period : {kEpoch / 4, kEpoch / 2, kEpoch, kEpoch * 4, kEpoch * 16, kEpoch * 64}) {
      table.AddRow({TablePrinter::Fmt(ToMillis(period), 1),
                    TablePrinter::Fmt(RuntimeWith(scale, kPeriod, kThreshold, period, kTau), 3)});
    }
    std::printf("\nSweep C: range split period t_split (paper default scaled: %.0f ms)\n",
                ToMillis(kEpoch));
    table.Print();
  }

  {
    TablePrinter table({"split-threshold", "runtime-s"});
    for (double tau : {kTau / 4, kTau / 2, kTau, kTau * 2, kTau * 4, kTau * 16}) {
      table.AddRow({TablePrinter::Fmt(tau, 1),
                    TablePrinter::Fmt(RuntimeWith(scale, kPeriod, kThreshold, kEpoch, tau), 3)});
    }
    std::printf("\nSweep D: split threshold tau_split (paper default scaled: %.1f)\n", kTau);
    table.Print();
  }

  std::printf(
      "\nExpected shape (paper): flat middle plateaus; degradation only at the\n"
      "extremes (very long sample/split periods or very high thresholds).\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
