// Elastic-host resilience sweep: every TMM policy runs the same mid-run
// lifecycle churn (one VM departs when it finishes, one boots late) twice —
// once fault-free and once under the combined "elastic" schedule that layers
// hwpoison memory errors, periodic FMEM capacity shrink windows, and guest
// engine crash windows on top of the churn.
//
// No paper figure covers host elasticity events — the testbed never pulls
// DIMMs mid-run — but a cloud substrate is judged by what a machine-check
// or a capacity reclaim does to tenants. This bench reports, per policy,
// throughput retention (vs. its own fault-free churn run), pages lost to
// SIGBUS discards, clean MCE recoveries, and the shrink engine's eviction
// work, including the no-fallback ablation ("demeter-nofb") that shows what
// the host-side watchdog is worth when the guest engine is down during a
// shrink window.
//
// This bench owns its fault schedule; the generic --faults flag is rejected
// here to avoid silently mixing two schedules.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/base/logging.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

struct FaultLevel {
  const char* name;
  const char* spec;
};

// The combined elastic schedule. Poison probabilities are per memory access
// to a tier, so even 2e-4 retires hundreds of frames over a run; the shrink
// window carves 30% of FMEM for 3 ms of every 12 ms; the crash window takes
// the guest engine down for 90 ms of every 100 ms — a real outage (45
// straight epochs), not a hiccup. Short crash windows make the host
// fallback a net loss: its promotions land right before the next shrink
// window evicts them, while the guest engine would have recovered anyway.
// Long outages are precisely when delegation needs a host-side net.
constexpr FaultLevel kLevels[] = {
    {"none", ""},
    {"elastic",
     "crash=90ms/100ms,poison=0.0002@0,poison=0.0001@1,tiershrink=0.3/3ms/12ms@0"},
};

constexpr Nanos kEpoch = 2 * kMillisecond;

struct PolicyVariant {
  const char* name;
  PolicyKind kind;
  ProvisionMode provision;
  bool degradation = true;  // Only meaningful for Demeter.
};

// Each policy keeps its natural provisioning path so the churn (departure
// reclaim + deferred boot) exercises every provisioner kind.
constexpr PolicyVariant kPolicies[] = {
    {"demeter", PolicyKind::kDemeter, ProvisionMode::kDemeterBalloon, true},
    {"demeter-nofb", PolicyKind::kDemeter, ProvisionMode::kDemeterBalloon, false},
    {"tpp", PolicyKind::kTpp, ProvisionMode::kStatic},
    {"tpp-h", PolicyKind::kHTpp, ProvisionMode::kStatic},
    {"memtis", PolicyKind::kMemtis, ProvisionMode::kVirtioBalloon},
    {"nomad", PolicyKind::kNomad, ProvisionMode::kStatic},
    {"damon", PolicyKind::kDamon, ProvisionMode::kHotplug},
};

int Run(int argc, char** argv) {
  BenchScale scale = BenchScale::FromArgs(argc, argv);
  if (!scale.faults.empty()) {
    std::fprintf(stderr, "%s: this bench owns its fault schedule; drop --faults\n", argv[0]);
    return 2;
  }
  // Span many shrink and crash windows per run.
  scale.transactions *= 2;
  scale.demeter_epoch = kEpoch;
  const size_t num_levels = sizeof(kLevels) / sizeof(kLevels[0]);
  const size_t num_policies = sizeof(kPolicies) / sizeof(kPolicies[0]);
  constexpr int kVms = 3;

  std::printf("Elasticity churn: %zu policies x %zu fault levels, %d VMs with "
              "mid-run departure + deferred boot (%zu experiments)\n\n",
              num_policies, num_levels, kVms, num_policies * num_levels);

  ExperimentRunner runner(RunnerOptionsFor(scale));
  for (const FaultLevel& level : kLevels) {
    std::string error;
    const std::optional<FaultPlan> plan = FaultPlan::Parse(level.spec, &error);
    DEMETER_CHECK(plan.has_value()) << "bad built-in fault spec '" << level.spec
                                    << "': " << error;
    for (const PolicyVariant& variant : kPolicies) {
      // silo: drifting hotspot, so both a departed VM's reclaimed FMEM and
      // a late joiner's cold start matter to the survivors' placement.
      ExperimentSpec spec = SpecFor(scale, "silo", variant.kind, kVms, SmemKind::kPmem);
      spec.name = std::string("silo/") + variant.name + "/" + level.name;
      spec.tag = level.name;
      spec.config.faults = *plan;
      for (VmSetup& setup : spec.vms) {
        setup.provision = variant.provision;
        setup.demeter.degradation.enabled = variant.degradation;
        // Degrade only on real outages: the threshold sits far below the
        // 90 ms crash windows but above transient scheduling hiccups (see
        // fault_resilience.cc for the tuning rationale; here outages and
        // shrink windows overlap, which is the point of the exercise).
        setup.demeter.degradation.unresponsive_after = 6 * kEpoch;
        setup.demeter.degradation.watchdog_period = kEpoch;
        setup.demeter.degradation.host_round_period = kEpoch;
        setup.demeter.degradation.host_batch_pages = 64;
      }
      // Lifecycle churn: VM 1 finishes at half the target and departs (its
      // memory must be fully reclaimed mid-run); VM 2 boots 30 ms late into
      // whatever capacity the others left behind.
      spec.vms[1].target_transactions = scale.transactions / 2;
      spec.vms[1].depart_on_finish = true;
      spec.vms[2].boot_at = 30 * kMillisecond;
      spec.vms[2].target_transactions = (scale.transactions * 3) / 4;
      runner.Submit(spec);
    }
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  TableSink table;
  for (const ExperimentResult& result : results) {
    table.Consume(result);
  }
  table.Finish();

  // Headline: throughput retention under the elastic schedule relative to
  // the same policy's own fault-free churn run.
  std::printf("\nThroughput retention vs fault-free churn (higher is better):\n");
  std::printf("  %-14s %10s %10s %10s\n", "policy", "none_tps", "elastic", "retention");
  for (size_t p = 0; p < num_policies; ++p) {
    double tps[2] = {0.0, 0.0};
    for (size_t l = 0; l < num_levels; ++l) {
      const ExperimentResult& result = results[l * num_policies + p];
      if (result.ok) {
        for (const VmRunResult& vm : result.vms) {
          tps[l] += vm.ThroughputTps();
        }
      }
    }
    std::printf("  %-14s %10.0f %10.0f %9.1f%%\n", kPolicies[p].name, tps[0], tps[1],
                tps[0] > 0.0 ? 100.0 * tps[1] / tps[0] : 0.0);
  }

  // Host damage report: what the elastic schedule actually did, and proof
  // the containment tripwire never fired (a poisoned frame handed out as a
  // migration destination would be a correctness bug, not a fault).
  std::printf("\nElastic-schedule damage (host side):\n");
  std::printf("  %-14s %8s %8s %8s %8s %9s %9s %9s\n", "policy", "mce", "clean", "sigbus",
              "lost", "shrink_w", "evicted", "backpr");
  for (size_t p = 0; p < num_policies; ++p) {
    const ExperimentResult& result = results[1 * num_policies + p];
    if (!result.ok) {
      std::printf("  %-14s FAILED: %s\n", kPolicies[p].name, result.error.c_str());
      continue;
    }
    const MetricSnapshot& host = result.host_metrics;
    DEMETER_CHECK(host.CounterValue("poison/bad_destination") == 0)
        << kPolicies[p].name << ": poisoned frame selected as migration destination";
    std::printf("  %-14s %8llu %8llu %8llu %8llu %9llu %9llu %9llu\n", kPolicies[p].name,
                static_cast<unsigned long long>(host.CounterValue("poison/events")),
                static_cast<unsigned long long>(host.CounterValue("poison/clean_recoveries")),
                static_cast<unsigned long long>(host.CounterValue("poison/sigbus_deliveries")),
                static_cast<unsigned long long>(host.CounterValue("poison/pages_lost")),
                static_cast<unsigned long long>(host.CounterValue("tier0/shrink_windows")),
                static_cast<unsigned long long>(host.CounterValue("tier0/shrink_evictions")),
                static_cast<unsigned long long>(host.CounterValue("tier0/shrink_backpressure")));
  }

  // Lifecycle accounting: the departure and the deferred boot must have
  // happened in every experiment, faulted or not.
  std::printf("\nLifecycle churn (per run: departures / deferred boots):\n");
  for (size_t l = 0; l < num_levels; ++l) {
    for (size_t p = 0; p < num_policies; ++p) {
      const ExperimentResult& result = results[l * num_policies + p];
      if (!result.ok) {
        continue;
      }
      uint64_t departures = 0;
      uint64_t boots = 0;
      for (const VmRunResult& vm : result.vms) {
        departures += vm.metrics.CounterValue("lifecycle/departures");
        boots += vm.metrics.CounterValue("lifecycle/boots");
      }
      std::printf("  %-30s %llu departed, %llu booted\n", result.spec.name.c_str(),
                  static_cast<unsigned long long>(departures),
                  static_cast<unsigned long long>(boots));
      DEMETER_CHECK(departures == 1) << result.spec.name << ": expected exactly one departure";
      DEMETER_CHECK(boots == static_cast<uint64_t>(kVms))
          << result.spec.name << ": every VM must boot exactly once";
    }
  }

  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
