// Figure 4: guest physical vs guest virtual address-space heat maps for the
// LibLinear workload (DAMON-style profiling).
//
// Paper shape: in gVA space, hot accesses concentrate in a small contiguous
// band (the model vector); in gPA space the same accesses scatter across the
// whole usable range, because lazy first-touch allocation orders physical
// placement by access time, not spatial locality.

#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace demeter {
namespace {

constexpr int kAddrBins = 48;
constexpr int kTimeBins = 16;

void PrintHeatmap(const char* title, const std::vector<std::vector<uint64_t>>& grid) {
  std::printf("%s\n", title);
  std::printf("  (rows: time ->; cols: address space low..high; darker = hotter)\n");
  uint64_t max_count = 1;
  for (const auto& row : grid) {
    for (uint64_t c : row) {
      max_count = std::max(max_count, c);
    }
  }
  const char* shades = " .:-=+*#%@";
  for (const auto& row : grid) {
    std::printf("  |");
    for (uint64_t c : row) {
      const int shade = static_cast<int>(9.0 * static_cast<double>(c) /
                                         static_cast<double>(max_count));
      std::printf("%c", shades[shade]);
    }
    std::printf("|\n");
  }
}

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  std::printf("Figure 4: LibLinear access heat maps, gVA vs gPA space\n\n");

  Machine machine(HostFor(scale, 1));
  VmSetup setup = SetupFor(scale, "liblinear", PolicyKind::kStatic);
  machine.AddVm(setup);
  Vm& vm = machine.vm(0);
  GuestProcess& proc = vm.kernel().CreateProcess();
  Workload* workload = machine.workload(0);
  Rng rng(13);
  workload->Setup(proc, rng);

  // Init pass (first-touch placement in allocation order).
  uint64_t va_lo = ~0ULL;
  uint64_t va_hi = 0;
  for (const Vma& vma : proc.space().vmas()) {
    if (!vma.tracked || vma.size() == 0) {
      continue;
    }
    va_lo = std::min(va_lo, vma.start);
    va_hi = std::max(va_hi, vma.end);
    for (uint64_t addr = vma.start; addr < vma.end; addr += kPageSize) {
      vm.ExecuteAccess(0, proc, addr, true);
    }
  }
  const uint64_t gpa_pages = vm.config().total_pages() * 2;  // Both node spans.

  std::vector<std::vector<uint64_t>> va_grid(kTimeBins, std::vector<uint64_t>(kAddrBins, 0));
  std::vector<std::vector<uint64_t>> pa_grid(kTimeBins, std::vector<uint64_t>(kAddrBins, 0));

  std::vector<AccessOp> ops;
  for (int t = 0; t < kTimeBins; ++t) {
    ops.clear();
    workload->NextBatch(0, 60000, rng, &ops);
    for (const AccessOp& op : ops) {
      const int va_bin = static_cast<int>((op.gva - va_lo) * kAddrBins / (va_hi - va_lo));
      va_grid[t][std::min(va_bin, kAddrBins - 1)]++;
      const auto gpt = proc.gpt().Lookup(PageOf(op.gva));
      if (gpt.present) {
        const int pa_bin = static_cast<int>(gpt.target * kAddrBins / gpa_pages);
        pa_grid[t][std::min(pa_bin, kAddrBins - 1)]++;
      }
    }
  }

  PrintHeatmap("Guest VIRTUAL address space (locality preserved):", va_grid);
  std::printf("\n");
  PrintHeatmap("Guest PHYSICAL address space (locality destroyed by lazy allocation):", pa_grid);
  std::printf(
      "\nExpected shape (paper): a tight hot band in gVA space; the same\n"
      "accesses scattered across both NUMA nodes' gPA ranges.\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
