// Fleet availability under whole-host fail-stop failures.
//
// Every TMM policy runs the same fleet three ways under each placement
// policy: fault-free, under the "hostfail" schedule (even hosts fail-stop
// probabilistically per barrier while shrink windows and migratefail keep
// the migration machinery busy) with the full recovery pipeline on
// (restart queue + migration retry), and — for the flagship Demeter
// variant — the same schedule with recovery ablated (no restarts, no
// retries). The headline is fleet throughput retention versus the
// policy's own fault-free run: recovery must strictly beat the ablation
// for every placement policy, or restart/retry is dead weight.
//
// Beyond retention the bench reports the availability ledger per
// experiment — hosts failed, VMs killed / restarted / lost, transactions
// lost to fail-stops, and mean restart latency — and asserts the two HA
// conservation identities end-to-end: every migration start resolves
// exactly one way (completed + aborted + cancelled + fenced) and every
// kill resolves exactly one way (restarted + lost, with an empty queue
// once the fleet drains).
//
// Fleet-specific flags (pre-filtered before the shared flag parser):
//   --fleet=VxH  V VMs across H hosts (default 32x4; --full 64x8;
//                --smoke 8x2)
//
// This bench owns its fault schedule; the generic --faults flag is
// rejected to avoid silently mixing two schedules.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/base/logging.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

struct FaultLevel {
  const char* name;
  bool hostfail;  // Arm the fail-stop + shrink + migratefail schedule.
  bool recover;   // Restart queue + migration retries enabled.
};

constexpr FaultLevel kLevels[] = {
    {"none", false, true},
    {"hostfail", true, true},
};

// The no-recovery ablation runs only for the flagship variant: one
// counterfactual per placement policy is enough to price the pipeline.
constexpr FaultLevel kAblation = {"hostfail-norec", true, false};

struct PolicyVariant {
  const char* name;
  PolicyKind kind;
  ProvisionMode provision;
  bool degradation = true;  // Only meaningful for Demeter.
};

// The same seven variants as cluster_fleet, so availability numbers line
// up with that bench's evacuation ones.
constexpr PolicyVariant kPolicies[] = {
    {"demeter", PolicyKind::kDemeter, ProvisionMode::kDemeterBalloon, true},
    {"demeter-nofb", PolicyKind::kDemeter, ProvisionMode::kDemeterBalloon, false},
    {"tpp", PolicyKind::kTpp, ProvisionMode::kStatic},
    {"tpp-h", PolicyKind::kHTpp, ProvisionMode::kStatic},
    {"memtis", PolicyKind::kMemtis, ProvisionMode::kVirtioBalloon},
    {"nomad", PolicyKind::kNomad, ProvisionMode::kStatic},
    {"damon", PolicyKind::kDamon, ProvisionMode::kHotplug},
};

constexpr PlacementPolicy kPlacements[] = {
    PlacementPolicy::kFirstFit,
    PlacementPolicy::kBestFit,
    PlacementPolicy::kSpread,
};

struct Fleet {
  int vms = 32;
  int hosts = 4;
};

// Even hosts carry the whole schedule: FMEM shrink windows (driving
// evacuations off them), and the fail-stop itself. Odd hosts are the safe
// harbor — they never fail, so the restart queue always has a live
// destination and the recovery-beats-ablation comparison measures the
// pipeline, not luck.
constexpr char kShrinkSpec[] = "tiershrink=0.3/6ms/20ms@0";

// Shared (cluster-injector) plan: every host's outbound migrations abort
// with p=0.3 past 1 ms of copy work, and even hosts fail-stop with p=0.5
// per barrier, staying dark for 8 ms (4 barriers) before rejoining on
// quarantine probation. The rate is aggressive because the per-VM runs are
// short — a few dozen barriers — and the sweep's assertions need every
// hostfail experiment to actually lose a host.
std::string ClusterFaultSpec(int hosts) {
  std::string spec;
  const int armed = hosts < kMaxFaultHosts ? hosts : kMaxFaultHosts;
  for (int h = 0; h < armed; ++h) {
    if (!spec.empty()) {
      spec += ',';
    }
    spec += "migratefail=0.3/1ms@" + std::to_string(h);
    if (h % 2 == 0) {
      spec += ",hostfail=0.5/8ms@" + std::to_string(h);
    }
  }
  return spec;
}

ExperimentSpec AvailabilitySpecFor(const BenchScale& scale, const Fleet& fleet,
                                   const PolicyVariant& variant, const FaultLevel& level,
                                   PlacementPolicy placement) {
  const int vms_per_host = fleet.vms / fleet.hosts;
  ExperimentSpec spec = SpecFor(scale, "silo", variant.kind, /*num_vms=*/0, SmemKind::kPmem);
  // Survivors must absorb a whole failed host's tenants on top of their
  // own, so each host is sized for double its fair share.
  spec.config = HostFor(scale, 2 * vms_per_host);
  spec.name = std::string("avail/") + PlacementPolicyName(placement) + "/" + variant.name +
              "/" + level.name;
  spec.tag = level.name;
  spec.cluster.num_hosts = fleet.hosts;
  spec.cluster.placement = placement;
  // A 2 ms barrier pitch packs tens of control-plane rounds into the short
  // CI-sized runs, so failure, fencing, restart, and retry all land many
  // times per experiment instead of once by luck.
  spec.cluster.epoch = 2 * kMillisecond;
  // Same pre-copy cap as cluster_fleet: silo re-dirties its footprint
  // every epoch, so unbounded pre-copy would race VM completion.
  spec.cluster.migration.stop_copy_pages = 512;
  spec.cluster.migration.max_precopy_rounds = 2;
  if (level.hostfail) {
    std::string error;
    const std::optional<FaultPlan> shared = FaultPlan::Parse(ClusterFaultSpec(fleet.hosts), &error);
    DEMETER_CHECK(shared.has_value()) << error;
    const std::optional<FaultPlan> shrink = FaultPlan::Parse(kShrinkSpec, &error);
    DEMETER_CHECK(shrink.has_value()) << error;
    spec.config.faults = *shared;
    spec.cluster.host_faults = {*shrink, FaultPlan{}};
    if (level.recover) {
      spec.cluster.migration.max_retries = 3;
      spec.cluster.migration.retry_backoff_epochs = 2;
    } else {
      spec.cluster.ha.restart = false;  // Ablation: every kill is terminal.
    }
  }
  for (int v = 0; v < fleet.vms; ++v) {
    VmSetup setup = SetupFor(scale, "silo", variant.kind);
    setup.provision = variant.provision;
    setup.demeter.degradation.enabled = variant.degradation;
    spec.vms.push_back(setup);
  }
  return spec;
}

struct Ledger {
  uint64_t hosts_failed = 0;
  uint64_t vms_killed = 0;
  uint64_t vms_restarted = 0;
  uint64_t vms_lost = 0;
  uint64_t transactions_lost = 0;
  uint64_t restart_latency_ns = 0;
  uint64_t retries = 0;
  uint64_t retries_exhausted = 0;
  // Committed transactions across the fleet — the availability headline.
  // (Per-VM tps is blind to outages: a restarted VM's clock restarts with
  // it, and a lost VM contributes zero time as well as zero work.)
  uint64_t txns = 0;
};

Ledger LedgerFor(const ExperimentResult& result) {
  Ledger ledger;
  const MetricSnapshot& host = result.host_metrics;
  ledger.hosts_failed = host.CounterValue("cluster/ha/host_failures");
  ledger.vms_killed = host.CounterValue("cluster/ha/vms_killed");
  ledger.vms_restarted = host.CounterValue("cluster/ha/vms_restarted");
  ledger.vms_lost = host.CounterValue("cluster/ha/vms_lost");
  ledger.transactions_lost = host.CounterValue("cluster/ha/transactions_lost");
  ledger.restart_latency_ns = host.CounterValue("cluster/ha/restart_latency_ns_total");
  ledger.retries = host.CounterValue("cluster/migration/retries");
  ledger.retries_exhausted = host.CounterValue("cluster/migration/retry_exhausted");
  for (const VmRunResult& vm : result.vms) {
    ledger.txns += vm.transactions;
  }
  return ledger;
}

void CheckConservation(const ExperimentResult& result) {
  const MetricSnapshot& host = result.host_metrics;
  const Ledger ledger = LedgerFor(result);
  // Every fail-stop schedule must actually land at least one failure and
  // kill at least one VM, or the sweep proves nothing.
  DEMETER_CHECK(ledger.hosts_failed >= 1)
      << result.spec.name << ": hostfail schedule never felled a host";
  DEMETER_CHECK(ledger.vms_killed >= 1)
      << result.spec.name << ": a host died with no resident VMs, ever";
  // Restart-ledger conservation at drain: the queue is empty (the fleet
  // only drains when it is), so killed == restarted + lost exactly.
  DEMETER_CHECK(host.CounterValue("cluster/ha/restart_queue_depth") == 0)
      << result.spec.name << ": restart queue not drained";
  DEMETER_CHECK(ledger.vms_killed == ledger.vms_restarted + ledger.vms_lost)
      << result.spec.name << ": restart ledger leaked (killed=" << ledger.vms_killed
      << " restarted=" << ledger.vms_restarted << " lost=" << ledger.vms_lost << ")";
  // Migration ledger with fencing: every start resolves exactly one way.
  const uint64_t started = host.CounterValue("cluster/migration/started");
  const uint64_t resolved = host.CounterValue("cluster/migration/completed") +
                            host.CounterValue("cluster/migration/aborted") +
                            host.CounterValue("cluster/migration/cancelled") +
                            host.CounterValue("cluster/migration/fenced");
  DEMETER_CHECK(started == resolved)
      << result.spec.name << ": unresolved migrations (started=" << started
      << " resolved=" << resolved << ")";
}

int Run(int argc, char** argv) {
  Fleet fleet;
  bool fleet_flag = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  bool smoke = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--fleet=", 8) == 0) {
      int vms = 0;
      int hosts = 0;
      if (std::sscanf(arg + 8, "%dx%d", &vms, &hosts) != 2 || vms < 1 || hosts < 2 ||
          hosts % 2 != 0 || vms % hosts != 0) {
        std::fprintf(stderr,
                     "%s: --fleet needs VxH with V a multiple of H and H even "
                     "(odd hosts are the no-fail safe harbor), got '%s'\n",
                     argv[0], arg + 8);
        return 2;
      }
      fleet = Fleet{vms, hosts};
      fleet_flag = true;
    } else {
      if (std::strcmp(arg, "--smoke") == 0) {
        smoke = true;
      } else if (std::strcmp(arg, "--full") == 0) {
        full = true;
      }
      passthrough.push_back(arg);
    }
  }
  BenchScale scale = BenchScale::FromArgs(static_cast<int>(passthrough.size()),
                                          passthrough.data());
  if (!scale.faults.empty()) {
    std::fprintf(stderr, "%s: this bench owns its fault schedule; drop --faults\n", argv[0]);
    return 2;
  }
  if (!fleet_flag) {
    fleet = smoke ? Fleet{8, 2} : full ? Fleet{64, 8} : Fleet{32, 4};
  }
  // --smoke/--full size the fleet; per-VM work stays CI-sized (the fleet
  // dimension is what grows), doubled so each run spans several failure
  // windows — a host that dies in the fleet's last barrier proves little.
  scale.vm_bytes = smoke ? 8 * kMiB : 16 * kMiB;
  scale.transactions = smoke ? 20000 : 50000;
  scale.vcpus = 2;
  scale.transactions *= 2;

  const size_t num_policies = sizeof(kPolicies) / sizeof(kPolicies[0]);
  const size_t num_placements = sizeof(kPlacements) / sizeof(kPlacements[0]);
  // Per placement: every policy at both levels, plus the flagship ablation.
  const size_t per_placement = 2 * num_policies + 1;
  std::printf("Fleet availability: %zu policies x {none, hostfail} + demeter ablation, "
              "%zu placements, %d VMs on %d hosts (%zu experiments)\n\n",
              num_policies, num_placements, fleet.vms, fleet.hosts,
              num_placements * per_placement);

  ExperimentRunner runner(RunnerOptionsFor(scale));
  for (const PlacementPolicy placement : kPlacements) {
    for (const FaultLevel& level : kLevels) {
      for (const PolicyVariant& variant : kPolicies) {
        runner.Submit(AvailabilitySpecFor(scale, fleet, variant, level, placement));
      }
    }
    runner.Submit(AvailabilitySpecFor(scale, fleet, kPolicies[0], kAblation, placement));
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  TableSink table;
  for (const ExperimentResult& result : results) {
    table.Consume(result);
  }
  table.Finish();

  for (size_t pl = 0; pl < num_placements; ++pl) {
    const size_t base = pl * per_placement;
    std::printf("\n[%s] retention vs fault-free + availability ledger:\n",
                PlacementPolicyName(kPlacements[pl]));
    std::printf("  %-14s %10s %9s %7s %7s %9s %5s %5s %8s %12s\n", "policy", "retention",
                "hosts_dn", "killed", "restrt", "lost", "retry", "exhst", "txn_lost",
                "restart_ms");
    for (size_t p = 0; p < num_policies; ++p) {
      const ExperimentResult& none = results[base + p];
      const ExperimentResult& fail = results[base + num_policies + p];
      DEMETER_CHECK(none.ok) << none.spec.name << ": " << none.error;
      DEMETER_CHECK(fail.ok) << fail.spec.name << ": " << fail.error;
      const Ledger clean = LedgerFor(none);
      const Ledger hurt = LedgerFor(fail);
      DEMETER_CHECK(clean.txns > 0) << none.spec.name << ": fault-free fleet did no work";
      CheckConservation(fail);
      const double mean_restart_ms =
          hurt.vms_restarted > 0 ? static_cast<double>(hurt.restart_latency_ns) /
                                       static_cast<double>(hurt.vms_restarted) / 1e6
                                 : 0.0;
      std::printf("  %-14s %9.1f%% %9llu %7llu %7llu %9llu %5llu %5llu %8llu %12.2f\n",
                  kPolicies[p].name,
                  100.0 * static_cast<double>(hurt.txns) / static_cast<double>(clean.txns),
                  static_cast<unsigned long long>(hurt.hosts_failed),
                  static_cast<unsigned long long>(hurt.vms_killed),
                  static_cast<unsigned long long>(hurt.vms_restarted),
                  static_cast<unsigned long long>(hurt.vms_lost),
                  static_cast<unsigned long long>(hurt.retries),
                  static_cast<unsigned long long>(hurt.retries_exhausted),
                  static_cast<unsigned long long>(hurt.transactions_lost), mean_restart_ms);
      // The recovery pipeline must actually fire — a sweep where no VM
      // ever restarts is testing the fault, not the recovery.
      DEMETER_CHECK(hurt.vms_restarted >= 1)
          << fail.spec.name << ": no VM was ever restarted";
    }
    // Ablation: same schedule, recovery off. Strictly worse retention for
    // the flagship variant, or the pipeline isn't paying for itself.
    const ExperimentResult& ablated = results[base + 2 * num_policies];
    DEMETER_CHECK(ablated.ok) << ablated.spec.name << ": " << ablated.error;
    const Ledger norec = LedgerFor(ablated);
    CheckConservation(ablated);
    DEMETER_CHECK(norec.vms_restarted == 0)
        << ablated.spec.name << ": ablation restarted a VM";
    const uint64_t demeter_clean = LedgerFor(results[base]).txns;
    const uint64_t demeter_hurt = LedgerFor(results[base + num_policies]).txns;
    std::printf("  %-14s %9.1f%% %9llu %7llu %7llu %9llu %5llu %5llu %8llu %12s\n",
                "demeter-norec",
                100.0 * static_cast<double>(norec.txns) / static_cast<double>(demeter_clean),
                static_cast<unsigned long long>(norec.hosts_failed),
                static_cast<unsigned long long>(norec.vms_killed),
                static_cast<unsigned long long>(norec.vms_restarted),
                static_cast<unsigned long long>(norec.vms_lost),
                static_cast<unsigned long long>(norec.retries),
                static_cast<unsigned long long>(norec.retries_exhausted),
                static_cast<unsigned long long>(norec.transactions_lost), "-");
    DEMETER_CHECK(demeter_hurt > norec.txns)
        << PlacementPolicyName(kPlacements[pl])
        << ": recovery did not beat the no-recovery ablation (recovered=" << demeter_hurt
        << " txns committed, ablated=" << norec.txns << ")";
  }

  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
