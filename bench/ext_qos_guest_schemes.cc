// Extension experiments beyond the paper's figures:
//
// (A) Alternative guest-side schemes (§6.3): Demeter's range classifier vs
//     a DAMON-style region monitor vs TPP, all running as guest-delegated
//     policies over the same Demeter-balloon-provisioned VMs. The paper
//     argues DAMON-based tiering keeps the guest-delegation benefit but
//     pays A-bit sampling costs and coarser accuracy.
//
// (B) QoS rebalancing (§3.3): three tenants with weights 4:2:1 run a
//     hotspot workload; the QosManager shifts FMEM toward the
//     high-priority tenant using balloon telemetry. We report per-tenant
//     FMEM and throughput with and without the manager.

#include <cstdio>

#include "bench/common.h"
#include "src/harness/table.h"
#include "src/qos/qos_manager.h"

namespace demeter {
namespace {

void RunGuestSchemes(const BenchScale& scale) {
  std::printf("(A) Alternative guest-delegated schemes, XSBench + GUPS\n\n");
  TablePrinter table({"scheme", "xsbench-s", "gups-s", "mgmt-cores", "single-flushes"});
  for (PolicyKind policy : {PolicyKind::kDemeter, PolicyKind::kDamon, PolicyKind::kTpp}) {
    double elapsed[2];
    double cores = 0.0;
    uint64_t flushes = 0;
    const char* workloads[2] = {"xsbench", "gups"};
    for (int w = 0; w < 2; ++w) {
      Machine machine(HostFor(scale, 1));
      VmSetup setup = SetupFor(scale, workloads[w], policy);
      setup.provision = ProvisionMode::kDemeterBalloon;
      machine.AddVm(setup);
      machine.Run();
      elapsed[w] = machine.result(0).elapsed_s;
      if (w == 1) {
        cores = machine.result(0).MgmtCores();
        flushes = machine.result(0).tlb.single_flushes;
      }
    }
    table.AddRow({PolicyKindName(policy), TablePrinter::Fmt(elapsed[0], 3),
                  TablePrinter::Fmt(elapsed[1], 3), TablePrinter::Fmt(cores, 3),
                  TablePrinter::Fmt(flushes)});
  }
  table.Print();
  std::printf("\n");
}

void RunQos(const BenchScale& scale) {
  std::printf("(B) Priority-weighted FMEM rebalancing (weights 4:2:1)\n");
  std::printf("    tenant 0: gups-hot (hot set ~2.3x its FMEM share — demands more)\n");
  std::printf("    tenants 1-2: bwaves (streaming, little to promote — donors)\n\n");
  TablePrinter table({"config", "tenant", "workload", "weight", "fmem-MiB-end",
                      "throughput-Mtps"});

  const char* tenant_workloads[3] = {"gups-hot", "bwaves", "bwaves"};
  for (bool with_qos : {false, true}) {
    BenchScale local = scale;
    local.transactions = scale.transactions;
    Machine machine(HostFor(local, 3));
    const double weights[3] = {4.0, 2.0, 1.0};
    for (int v = 0; v < 3; ++v) {
      VmSetup setup = SetupFor(local, tenant_workloads[v], PolicyKind::kDemeter);
      setup.provision = ProvisionMode::kDemeterBalloon;
      machine.AddVm(setup);
    }
    // Attach the QoS manager before the run; it polls balloon telemetry on
    // the same event queue the workloads advance.
    std::unique_ptr<QosManager> qos;
    if (with_qos) {
      const uint64_t budget = machine.hypervisor().memory().CapacityPages(kFmemTier);
      QosConfig qconfig;
      qconfig.period = 50 * kMillisecond;
      qos = std::make_unique<QosManager>(budget, qconfig);
      for (int v = 0; v < 3; ++v) {
        qos->AddTenant(&machine.vm(v), machine.demeter_balloon(v), weights[v]);
      }
      qos->Start(&machine.events(), 0);
    }
    machine.Run();
    if (qos != nullptr) {
      qos->Stop();
    }
    for (int v = 0; v < 3; ++v) {
      table.AddRow({with_qos ? "qos" : "no-qos", TablePrinter::Fmt(static_cast<uint64_t>(v)),
                    tenant_workloads[v], TablePrinter::Fmt(weights[v], 0),
                    TablePrinter::Fmt(static_cast<double>(machine.vm(v).kernel()
                                                              .node(0)
                                                              .present_pages() *
                                                          kPageSize) /
                                          static_cast<double>(kMiB),
                                      1),
                    TablePrinter::Fmt(machine.result(v).ThroughputTps() / 1e6, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected: with QoS, the weight-4 tenant ends with more FMEM and higher\n"
      "throughput; the weight-1 tenant donates (bounded by its guarantee).\n");
}

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  RunGuestSchemes(scale);
  RunQos(scale);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
