// Table 2: memory access latency and bandwidth matrix, as measured by the
// Intel Memory Latency Checker on the paper's testbed. This bench both
// prints the configured tier model and *measures* it end to end by running
// pointer-chase-style accesses and page-sized streaming transfers through a
// VM, verifying the simulation exposes the modelled characteristics.

#include <cstdio>

#include "bench/common.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

struct Measured {
  double latency_ns = 0.0;
  double bandwidth_mbps = 0.0;
};

Measured MeasureTier(SmemKind smem, TierIndex target_tier) {
  BenchScale scale;
  Machine machine(HostFor(scale, 1, smem));
  VmSetup setup = SetupFor(scale, "gups", PolicyKind::kStatic);
  setup.vm.cache_hit_rate = 0.0;
  machine.AddVm(setup);
  Vm& vm = machine.vm(0);
  GuestProcess& proc = vm.kernel().CreateProcess();

  // Back enough pages in the target tier: FMEM pages come from first
  // touches; SMEM pages from the spill after the FMEM node fills.
  const uint64_t pages = vm.config().total_pages() * 3 / 4;
  const uint64_t base = proc.HeapAlloc(pages * kPageSize);
  for (uint64_t i = 0; i < pages; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
  }

  // Latency: dependent 64B loads against pages resident in the target tier.
  Measured out;
  Rng rng(7);
  double total_ns = 0.0;
  int counted = 0;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t page_index = rng.NextBelow(pages);
    const uint64_t addr = base + page_index * kPageSize + rng.NextBelow(kPageSize - 64);
    const PageNum vpn = PageOf(addr);
    if (vm.NodeOfVpn(proc, vpn) != target_tier) {
      continue;
    }
    const AccessResult r = vm.ExecuteAccess(0, proc, addr, false);
    vm.vcpu(0).clock_ns += r.ns;
    if (r.tier == target_tier && !r.cache_hit) {
      total_ns += r.ns;
      ++counted;
    }
  }
  out.latency_ns = counted > 0 ? total_ns / counted : 0.0;

  // Bandwidth: page-sized streaming reads; MB/s = bytes / time.
  HostMemory& mem = machine.hypervisor().memory();
  const Nanos t0 = vm.vcpu(0).now();
  double busy_ns = 0.0;
  uint64_t bytes = 0;
  for (int i = 0; i < 4000; ++i) {
    busy_ns += mem.tier(target_tier).AccessCost(t0 + static_cast<Nanos>(busy_ns), kPageSize,
                                                /*is_write=*/false);
    bytes += kPageSize;
  }
  out.bandwidth_mbps = static_cast<double>(bytes) / (busy_ns * 1e-9) / 1e6;
  return out;
}

int Run(int, char**) {
  std::printf("Table 2: memory access latency and bandwidth matrix\n\n");
  TablePrinter table({"access-to", "model-latency-ns", "measured-latency-ns", "model-bw-MB/s",
                      "measured-bw-MB/s"});

  table.AddRow({"L2", TablePrinter::Fmt(kL2HitLatencyNs, 1), TablePrinter::Fmt(kL2HitLatencyNs, 1),
                "-", "-"});

  const TierSpec dram = TierSpec::LocalDram(0);
  const Measured dram_measured = MeasureTier(SmemKind::kPmem, kFmemTier);
  table.AddRow({"L-DRAM", TablePrinter::Fmt(dram.read_latency_ns, 1),
                TablePrinter::Fmt(dram_measured.latency_ns, 1),
                TablePrinter::Fmt(dram.read_bw_mbps, 1),
                TablePrinter::Fmt(dram_measured.bandwidth_mbps, 1)});

  const TierSpec remote = TierSpec::RemoteDram(0);
  const Measured remote_measured = MeasureTier(SmemKind::kCxl, kSmemTier);
  table.AddRow({"R-DRAM", TablePrinter::Fmt(remote.read_latency_ns, 1),
                TablePrinter::Fmt(remote_measured.latency_ns, 1),
                TablePrinter::Fmt(remote.read_bw_mbps, 1),
                TablePrinter::Fmt(remote_measured.bandwidth_mbps, 1)});

  const TierSpec pmem = TierSpec::Pmem(0);
  const Measured pmem_measured = MeasureTier(SmemKind::kPmem, kSmemTier);
  table.AddRow({"L-PMEM", TablePrinter::Fmt(pmem.read_latency_ns, 1),
                TablePrinter::Fmt(pmem_measured.latency_ns, 1),
                TablePrinter::Fmt(pmem.read_bw_mbps, 1),
                TablePrinter::Fmt(pmem_measured.bandwidth_mbps, 1)});

  table.Print();
  std::printf(
      "\nMeasured latencies sit above the configured media latency because the\n"
      "measured path includes TLB lookups and page-walk amortization, exactly\n"
      "as MLC measurements include translation effects. Measured bandwidth is\n"
      "single-stream sustained (serial page transfers paying per-transfer\n"
      "latency and self-induced queueing); the cross-tier ratios match the\n"
      "model. MLC's parallel-stream numbers correspond to the model column.\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
