// Figure 8: instantaneous GUPS throughput over time per guest design, with
// locally estimated smoothing.
//
// Paper shapes: Demeter ramps steepest in the discovery phase (range
// classification finds the hot set fastest), shows a brief dip during
// migration, then sustains the highest plateau and finishes first.

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/base/stats.h"

namespace demeter {
namespace {

int Run(int argc, char** argv) {
  BenchScale scale = BenchScale::FromArgs(argc, argv);
  scale.transactions *= 2;  // Longer run: show ramp, dip, and plateau.
  std::printf("Figure 8: instantaneous GUPS throughput (M txn/s, LOESS-smoothed)\n\n");

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (PolicyKind policy :
       {PolicyKind::kStatic, PolicyKind::kTpp, PolicyKind::kMemtis, PolicyKind::kNomad,
        PolicyKind::kDemeter}) {
    Machine machine(HostFor(scale, 1));
    machine.AddVm(SetupFor(scale, "gups", policy));
    machine.Run();
    const VmRunResult& result = machine.result(0);
    std::vector<double> tput;
    for (uint64_t bucket : result.timeline) {
      tput.push_back(static_cast<double>(bucket) /
                     (static_cast<double>(result.timeline_bucket) * 1e-9) / 1e6);
    }
    names.push_back(PolicyKindName(policy));
    series.push_back(LoessSmooth(tput, 2));
  }

  // Print as columns: time, then one column per policy.
  std::printf("%-10s", "t(ms)");
  for (const auto& name : names) {
    std::printf("%12s", name.c_str());
  }
  std::printf("\n");
  size_t longest = 0;
  for (const auto& s : series) {
    longest = std::max(longest, s.size());
  }
  for (size_t t = 0; t < longest; ++t) {
    std::printf("%-10.0f", static_cast<double>(t) * ToMillis(25 * kMillisecond));
    for (const auto& s : series) {
      if (t < s.size()) {
        std::printf("%12.3f", s[t]);
      } else {
        std::printf("%12s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): demeter's column rises fastest and its series\n"
      "ends first (earliest completion, highest peak).\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
