// Dense single-host tenancy sweep: one Machine carrying 16 / 64 / 256 small
// VMs (4 / 8 / 16 under --smoke), the consolidation regime the sharded-host
// refactor exists for. Each tenant count runs twice — shards=1 and
// shards=K — and the bench hard-fails unless the two runs' metrics are
// byte-identical down to the last counter: sharding is an ownership
// structure, never a schedule, and this is where that guarantee is enforced
// at scale rather than at unit-test size.
//
// The tenant mix is deliberately churny: policies alternate between Demeter
// and TPP, every eighth VM boots deferred, and every fifth departs as soon
// as it hits its target — so shard membership changes constantly while the
// run is in flight (ActivateVm / DeactivateVm under load, not just at
// boot). The headline table reports per-count aggregate throughput plus the
// host-side wall clock, and prints the wall-clock growth ratio between
// consecutive tenant counts: a dense host must scale ~linearly in N, not
// quadratically (the small-N assumptions this PR removed). The smallest
// count's simulator state fits in last-level cache, so the first ratio
// reads high (a cache-regime transition, not algorithmic growth); the
// 64->256 ratio is the honest scaling signal.
//
// This bench owns its churn pattern; the generic --faults flag composes
// fine and is accepted.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#endif

#include "bench/common.h"
#include "src/base/logging.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

constexpr int kFullCounts[] = {16, 64, 256};
constexpr int kSmokeCounts[] = {4, 8, 16};

// The shard count the byte-identity leg runs against. 8 keeps whole
// shard blocks at every swept tenant count (16/8 = 2 VMs per shard up to
// 256/8 = 32) while staying well under Machine::kMaxShards.
constexpr int kCompareShards = 8;

ExperimentSpec DenseSpec(const BenchScale& scale, int num_vms, uint64_t transactions,
                         int shards, double bw_scale) {
  ExperimentSpec spec;
  spec.name = "dense/" + std::to_string(num_vms) + "vms";
  spec.tag = std::to_string(num_vms) + "vms";
  spec.config = HostFor(scale, num_vms, SmemKind::kPmem);
  spec.config.shards = shards;
  // A host consolidating 4x the tenants is a bigger box (more channels /
  // sockets), not the same box run hotter: HostFor already scales tier
  // *capacity* with N, and this scales tier *bandwidth* the same way, so
  // the per-tenant bandwidth share is constant across the sweep. Without
  // it the M/M/1 queueing model saturates at the utilization cap, simulated
  // time stretches, and the wall-clock column measures saturation physics
  // instead of how the simulator itself scales with N.
  for (TierSpec& tier : spec.config.tiers) {
    tier.read_bw_mbps *= bw_scale;
    tier.write_bw_mbps *= bw_scale;
  }
  for (int v = 0; v < num_vms; ++v) {
    VmSetup setup = SetupFor(scale, "gups", v % 2 == 0 ? PolicyKind::kDemeter : PolicyKind::kTpp);
    setup.target_transactions = transactions;
    if (v % 2 == 0) {
      setup.provision = ProvisionMode::kDemeterBalloon;
    }
    // Lifecycle churn at density: deferred boots land mid-run (staggered so
    // they do not all arrive at one horizon) and early finishers tear down
    // while their shard neighbours keep running.
    if (v % 8 == 7) {
      setup.boot_at = 5 * kMillisecond * static_cast<Nanos>(1 + v % 4);
    }
    if (v % 5 == 4) {
      setup.depart_on_finish = true;
    }
    spec.vms.push_back(setup);
  }
  return spec;
}

// Everything a run produced, serialized: derived seed, per-VM results, and
// the full host registry. Two runs agreeing on this string agree on every
// number the simulation can emit.
std::string ResultFingerprint(const ExperimentResult& result) {
  std::string out = "seed=" + std::to_string(result.seed) + "\n";
  for (const VmRunResult& vm : result.vms) {
    out += "txn=" + std::to_string(vm.transactions) + " elapsed=" + std::to_string(vm.elapsed_s) +
           " fmem=" + std::to_string(vm.fmem_access_fraction) + "\n";
    out += vm.metrics.ToJson();
    out += "\n";
  }
  out += result.host_metrics.ToJson();
  return out;
}

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  const int* counts = scale.smoke ? kSmokeCounts : kFullCounts;
  const size_t num_counts =
      scale.smoke ? sizeof(kSmokeCounts) / sizeof(int) : sizeof(kFullCounts) / sizeof(int);
  // Dense tenants are small: divide the per-VM target so total work grows
  // with N at a rate a single host can actually carry.
  const uint64_t transactions = scale.smoke ? scale.transactions : scale.transactions / 8;

  std::printf("Dense host sweep: %zu tenant counts, shards=1 vs shards=%d byte-compare "
              "per count, churny mix (deferred boots + departures)\n\n",
              num_counts, kCompareShards);

  std::vector<ExperimentResult> results;
  std::vector<double> wall_s(num_counts, 0.0);
  for (size_t c = 0; c < num_counts; ++c) {
    const int vms = counts[c];
#if defined(__GLIBC__) || defined(__linux__)
    // The wall-clock column compares counts: give each one a clean heap so
    // fragmentation left by the previous (smaller) count's teardown does
    // not tax the bigger run and skew the scaling ratio.
    malloc_trim(0);
#endif
    const double bw_scale = static_cast<double>(vms) / static_cast<double>(counts[0]);
    ExperimentRunner runner(RunnerOptionsFor(scale));
    runner.Submit(DenseSpec(scale, vms, transactions, /*shards=*/1, bw_scale));
    runner.Submit(DenseSpec(scale, vms, transactions, kCompareShards, bw_scale));
    const auto start = std::chrono::steady_clock::now();
    std::vector<ExperimentResult> pair = runner.RunAll();
    wall_s[c] = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    DEMETER_CHECK_EQ(pair.size(), 2u);
    DEMETER_CHECK(pair[0].ok) << pair[0].spec.name << ": " << pair[0].error;
    DEMETER_CHECK(pair[1].ok) << pair[1].spec.name << ": " << pair[1].error;
    // The tentpole guarantee, enforced at bench scale: the shard count must
    // be invisible in every byte of every metric.
    DEMETER_CHECK(ResultFingerprint(pair[0]) == ResultFingerprint(pair[1]))
        << pair[0].spec.name << ": shards=1 and shards=" << kCompareShards
        << " runs diverged — sharding leaked into simulation order";
    for (const VmRunResult& vm : pair[0].vms) {
      DEMETER_CHECK_GE(vm.transactions, transactions) << pair[0].spec.name;
    }
    // Only the shards=1 leg feeds the table / --out: the other is its
    // byte-for-byte twin by the check above.
    results.push_back(std::move(pair[0]));
  }

  TableSink table;
  for (const ExperimentResult& result : results) {
    table.Consume(result);
  }
  table.Finish();

  std::printf("\nScaling (aggregate throughput and host wall clock vs tenant count):\n");
  std::printf("  %6s %12s %12s %10s %12s\n", "vms", "agg_tps", "mean_tps/vm", "wall_s",
              "wall_ratio");
  for (size_t c = 0; c < num_counts; ++c) {
    const ExperimentResult& result = results[c];
    double tps = 0.0;
    for (const VmRunResult& vm : result.vms) {
      tps += vm.ThroughputTps();
    }
    // Each leg ran both shard variants, so the comparable per-count cost is
    // half the measured wall time.
    const double wall = wall_s[c] / 2.0;
    const double prev_wall = c > 0 ? wall_s[c - 1] / 2.0 : 0.0;
    const double vm_ratio =
        c > 0 ? static_cast<double>(counts[c]) / static_cast<double>(counts[c - 1]) : 1.0;
    if (c > 0 && prev_wall > 0.0) {
      std::printf("  %6d %12.0f %12.0f %10.2f %9.2fx (vs %.0fx VMs)\n", counts[c], tps,
                  tps / counts[c], wall, wall / prev_wall, vm_ratio);
    } else {
      std::printf("  %6d %12.0f %12.0f %10.2f %12s\n", counts[c], tps, tps / counts[c], wall,
                  "-");
    }
  }
  std::printf("\nshards=1 == shards=%d byte-identical at every tenant count.\n", kCompareShards);

  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
