// FMEM overcommit sweep: every TMM policy runs the same multi-VM workload
// on a three-tier host (FMEM / PMem / zswap far tier) whose FMEM shrinks
// with the overcommit ratio R — at R=1.0 each VM's fast-node demand fits,
// at R=2.0 the host provisions half of it. The overcommit scheduler
// arbitrates the shortfall through the double balloon where the guest
// engine supports it (Demeter); everyone else spills page-by-page through
// the PopulateEpt fallback chain into SMEM and, when SMEM is also tight,
// the far swap tier.
//
// The sweep reports throughput and p99 transaction latency against R, plus
// the far-tier traffic (writebacks, swap-ins, in-flight-buffer hits) and
// the scheduler's arbitration work. Each configuration also runs under a
// swapfail schedule (transient device I/O errors with retry/backoff) to
// show the far tier degrading, not collapsing, when the device misbehaves.
//
// Guard rails baked into the bench: at R=1.0 fault-free the third tier must
// be completely inert (zero stores, zero swap-served accesses) for every
// policy — overcommit pressure, not the tier's existence, is what pushes
// pages to the device. One VM departs mid-run in every experiment so slot
// reclaim on VM teardown is exercised across the whole matrix (visible to
// --check invariant audits).
//
// This bench owns its fault schedule; the generic --faults flag is rejected
// here to avoid silently mixing two schedules.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/base/histogram.h"
#include "src/base/logging.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

struct FaultLevel {
  const char* name;
  const char* spec;
};

// The swapfail level makes 30% of device operations fail transiently with a
// 1 ms retry backoff — heavy enough that retries show up in every pressured
// cell, transient enough that no data is ever lost.
constexpr FaultLevel kLevels[] = {
    {"none", ""},
    {"swapfail", "swapfail=0.3/1ms"},
};

constexpr double kRatios[] = {1.0, 1.25, 1.5, 2.0};

struct PolicyVariant {
  const char* name;
  PolicyKind kind;
  ProvisionMode provision;
  bool degradation = true;  // Only meaningful for Demeter.
};

// Same roster as elasticity_churn: each policy keeps its natural
// provisioning path. Only the Demeter variants wire a double balloon, so
// only they can answer the overcommit scheduler's spill requests — the
// others document what unarbitrated spill costs.
constexpr PolicyVariant kPolicies[] = {
    {"demeter", PolicyKind::kDemeter, ProvisionMode::kDemeterBalloon, true},
    {"demeter-nofb", PolicyKind::kDemeter, ProvisionMode::kDemeterBalloon, false},
    {"tpp", PolicyKind::kTpp, ProvisionMode::kStatic},
    {"tpp-h", PolicyKind::kHTpp, ProvisionMode::kStatic},
    {"memtis", PolicyKind::kMemtis, ProvisionMode::kVirtioBalloon},
    {"nomad", PolicyKind::kNomad, ProvisionMode::kStatic},
    {"damon", PolicyKind::kDamon, ProvisionMode::kHotplug},
};

// Three-tier host sized for the sweep. FMEM carries the standard 25%
// headroom at R=1.0 and shrinks as 1/R; SMEM is deliberately tighter than
// the benches' usual 2x so overcommit spill actually reaches the far tier
// at high R instead of vanishing into slack PMem; the far tier itself is
// ample (a swap device never runs out before the experiment does).
MachineConfig OvercommitHostFor(const BenchScale& scale, int num_vms, double ratio) {
  MachineConfig config = HostFor(scale, num_vms, SmemKind::kPmem);
  const uint64_t n = static_cast<uint64_t>(num_vms);
  const double demand = static_cast<double>(scale.vm_bytes * n) * 0.2 * 1.25;
  config.tiers[0] = TierSpec::LocalDram(PageCeil(static_cast<uint64_t>(demand / ratio)));
  config.tiers[1] =
      TierSpec::Pmem(PageCeil(static_cast<uint64_t>(static_cast<double>(scale.vm_bytes * n) * 0.55)));
  config.tiers.push_back(TierSpec::Zswap(scale.vm_bytes * n));
  config.overcommit.enabled = true;
  config.overcommit.ratio = ratio;
  return config;
}

int Run(int argc, char** argv) {
  BenchScale scale = BenchScale::FromArgs(argc, argv);
  if (!scale.faults.empty()) {
    std::fprintf(stderr, "%s: this bench owns its fault schedule; drop --faults\n", argv[0]);
    return 2;
  }
  const size_t num_levels = sizeof(kLevels) / sizeof(kLevels[0]);
  const size_t num_ratios = sizeof(kRatios) / sizeof(kRatios[0]);
  const size_t num_policies = sizeof(kPolicies) / sizeof(kPolicies[0]);
  const int vms = scale.concurrent_vms;

  std::printf("Overcommit sweep: %zu policies x %zu ratios x %zu fault levels, %d VMs "
              "with mid-run departure (%zu experiments)\n\n",
              num_policies, num_ratios, num_levels, vms,
              num_policies * num_ratios * num_levels);

  ExperimentRunner runner(RunnerOptionsFor(scale));
  for (const FaultLevel& level : kLevels) {
    std::string error;
    const std::optional<FaultPlan> plan = FaultPlan::Parse(level.spec, &error);
    DEMETER_CHECK(plan.has_value()) << "bad built-in fault spec '" << level.spec
                                    << "': " << error;
    for (const double ratio : kRatios) {
      for (const PolicyVariant& variant : kPolicies) {
        // silo: drifting hotspot, so what lands in the far tier is not
        // permanently cold — hot swap-ins and level-skip promotions matter.
        ExperimentSpec spec = SpecFor(scale, "silo", variant.kind, vms, SmemKind::kPmem);
        char tag[32];
        std::snprintf(tag, sizeof(tag), "r%.2f", ratio);
        spec.name = std::string("silo/") + variant.name + "/" + tag + "/" + level.name;
        spec.tag = tag;
        spec.config = OvercommitHostFor(scale, vms, ratio);
        spec.config.faults = *plan;
        for (VmSetup& setup : spec.vms) {
          setup.provision = variant.provision;
          setup.demeter.degradation.enabled = variant.degradation;
        }
        // One VM finishes at half the target and departs: its far-tier
        // slots must be reclaimed with its frames (ReclaimVm), and the
        // survivors inherit the freed capacity mid-run.
        spec.vms.back().target_transactions = scale.transactions / 2;
        spec.vms.back().depart_on_finish = true;
        runner.Submit(spec);
      }
    }
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  TableSink table;
  for (const ExperimentResult& result : results) {
    table.Consume(result);
  }
  table.Finish();

  // Headline: throughput and tail latency against the overcommit ratio,
  // with the far-tier and arbitration work that explains them.
  for (size_t l = 0; l < num_levels; ++l) {
    std::printf("\n[%s] throughput / p99 vs overcommit ratio:\n", kLevels[l].name);
    std::printf("  %-14s %6s %10s %9s %9s %9s %9s %8s %8s\n", "policy", "ratio", "tps",
                "p99_us", "swap_out", "swap_in", "inflight", "retries", "spills");
    for (size_t p = 0; p < num_policies; ++p) {
      for (size_t r = 0; r < num_ratios; ++r) {
        const size_t idx = (l * num_ratios + r) * num_policies + p;
        const ExperimentResult& result = results[idx];
        if (!result.ok) {
          std::printf("  %-14s %6.2f FAILED: %s\n", kPolicies[p].name, kRatios[r],
                      result.error.c_str());
          continue;
        }
        double tps = 0.0;
        Histogram merged;
        for (const VmRunResult& vm : result.vms) {
          tps += vm.ThroughputTps();
          merged.Merge(vm.txn_latency_ns);
        }
        const MetricSnapshot& host = result.host_metrics;
        const uint64_t stores = host.CounterValue("swap/stores");
        const uint64_t loads = host.CounterValue("swap/loads");
        std::printf("  %-14s %6.2f %10.0f %9.1f %9llu %9llu %9llu %8llu %8llu\n",
                    kPolicies[p].name, kRatios[r], tps,
                    static_cast<double>(merged.Percentile(99)) / 1000.0,
                    static_cast<unsigned long long>(stores),
                    static_cast<unsigned long long>(loads),
                    static_cast<unsigned long long>(host.CounterValue("swap/inflight_hits")),
                    static_cast<unsigned long long>(host.CounterValue("swap/retries")),
                    static_cast<unsigned long long>(
                        host.CounterValue("overcommit/spill_requests")));
        // At R=1.0 every VM's fast-node demand fits under the provisioned
        // headroom: the third tier must be completely inert — its mere
        // existence (and the swapfail schedule aimed at it) must not move a
        // single page through the device.
        if (kRatios[r] == 1.0) {
          DEMETER_CHECK(stores == 0 && loads == 0)
              << result.spec.name << ": far tier not inert at ratio 1.0 (stores=" << stores
              << ", loads=" << loads << ")";
          uint64_t swap_served = 0;
          for (const VmRunResult& vm : result.vms) {
            swap_served += vm.metrics.CounterValue("stats/swap_accesses");
          }
          DEMETER_CHECK(swap_served == 0)
              << result.spec.name << ": " << swap_served
              << " accesses served from the far tier at ratio 1.0";
        }
      }
    }
  }

  // Slot hygiene across the whole matrix: every writeback got a slot, every
  // slot left through a swap-in or a drop (VM departure reclaim), and
  // nothing is left behind beyond what the final placement still backs.
  std::printf("\nSlot accounting (whole sweep): every store is matched by a load, a "
              "drop, or a still-resident page.\n");
  for (const ExperimentResult& result : results) {
    if (!result.ok) {
      continue;
    }
    const MetricSnapshot& host = result.host_metrics;
    const uint64_t stores = host.CounterValue("swap/stores");
    const uint64_t loads = host.CounterValue("swap/loads");
    const uint64_t drops = host.CounterValue("swap/drops");
    const uint64_t active = host.CounterValue("swap/active_slots");
    DEMETER_CHECK(stores == loads + drops + active)
        << result.spec.name << ": slot flow does not balance (stores=" << stores
        << ", loads=" << loads << ", drops=" << drops << ", active=" << active << ")";
  }

  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
