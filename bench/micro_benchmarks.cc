// Google-benchmark micro-benchmarks for the core data structures: range
// tree operations, TLB, 2D page walks, the MPSC sample channel, PEBS
// sampling, and the latency histogram. These bound the real CPU cost of the
// structures that the simulation charges virtual time for.

#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/rng.h"
#include "src/core/range_tree.h"
#include "src/guest/mpsc_channel.h"
#include "src/hyper/hypervisor.h"
#include "src/hyper/vm.h"
#include "src/mem/host_memory.h"
#include "src/mmu/page_table.h"
#include "src/mmu/tlb.h"
#include "src/mmu/walker.h"
#include "src/pebs/pebs.h"
#include "src/sim/event_queue.h"

namespace demeter {
namespace {

void BM_RangeTreeRecordSample(benchmark::State& state) {
  RangeTree tree;
  tree.AddRegion(0, 4 * kGiB);
  // Pre-split into a realistic leaf population.
  Rng rng(1);
  for (int e = 0; e < 30; ++e) {
    for (int i = 0; i < 2000; ++i) {
      tree.RecordSample(kGiB + rng.NextBelow(8 * kMiB));
    }
    tree.EndEpoch(4);
  }
  uint64_t addr = 0;
  for (auto _ : state) {
    tree.RecordSample(kGiB + (addr & (8 * kMiB - 1)));
    addr += 4093;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeTreeRecordSample);

void BM_RangeTreeEndEpoch(benchmark::State& state) {
  RangeTree tree;
  tree.AddRegion(0, 4 * kGiB);
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < 500; ++i) {
      tree.RecordSample(rng.NextZipf(4 * kGiB / 64, 0.9) * 64);
    }
    tree.EndEpoch(4);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeTreeEndEpoch);

void BM_TlbLookupHit(benchmark::State& state) {
  Tlb tlb;
  for (PageNum p = 0; p < 1024; ++p) {
    tlb.Insert(p, p);
  }
  PageNum p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.Lookup(p & 1023));
    ++p;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupHit);

void BM_Translate2dMiss(benchmark::State& state) {
  Tlb tlb(2, 2);  // Tiny TLB: force misses.
  PageTable gpt;
  PageTable ept;
  MmuCosts costs;
  for (PageNum p = 0; p < 4096; ++p) {
    gpt.Map(p, p, true);
    ept.Map(p, p, true);
  }
  PageNum p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Translate2D(tlb, gpt, ept, p & 4095, false, costs));
    p += 7;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Translate2dMiss);

void BM_Translate2dHitWrite(benchmark::State& state) {
  // The hottest path in the whole simulation: a TLB-hit write, which also
  // runs the A/D micro-walk through both page tables (leaf-cache served).
  Tlb tlb;
  PageTable gpt;
  PageTable ept;
  MmuCosts costs;
  for (PageNum p = 0; p < 1024; ++p) {
    gpt.Map(p, p, true);
    ept.Map(p, p, true);
    tlb.Insert(p, p);
  }
  PageNum p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Translate2D(tlb, gpt, ept, p & 1023, true, costs));
    ++p;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Translate2dHitWrite);

void BM_TlbInvalidateAll(benchmark::State& state) {
  // Hypervisor-side tracking full-flushes every scan round; with the epoch
  // scheme this is O(1) instead of an 8K-entry sweep. Re-insert a few
  // entries each round so the flush always has something live to drop.
  Tlb tlb;
  PageNum p = 0;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      tlb.Insert(p++, p);
    }
    tlb.InvalidateAll();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbInvalidateAll);

void BM_PageTableScanAndClear(benchmark::State& state) {
  PageTable pt;
  const PageNum pages = static_cast<PageNum>(state.range(0));
  for (PageNum p = 0; p < pages; ++p) {
    pt.Map(p, p, true);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pt.ScanAndClearAccessed(0, pages, [](PageNum, uint64_t, bool, bool) {}));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pages));
}
BENCHMARK(BM_PageTableScanAndClear)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_MpscChannelPush(benchmark::State& state) {
  MpscChannel<uint64_t> channel(1 << 16);
  uint64_t v = 0;
  std::vector<uint64_t> sink;
  for (auto _ : state) {
    if (!channel.Push(v++)) {
      sink.clear();
      channel.PopBatch(&sink, 1 << 16);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpscChannelPush);

void BM_PebsOnAccess(benchmark::State& state) {
  PebsConfig config;
  config.sample_period = 4093;
  PebsUnit unit(config);
  unit.set_enabled(true);
  unit.set_pmi_handler([](std::vector<PebsRecord>&&, Nanos) {});
  uint64_t gva = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.OnAccess(gva += 64, 176.6, false, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PebsOnAccess);

void BM_EventQueueSchedulePop(benchmark::State& state) {
  // Schedule/fire churn as the simulation main loop drives timers: measures
  // heap push/pop plus the move-only callback hand-off.
  EventQueue q;
  Nanos now = 0;
  uint64_t sink = 0;
  for (auto _ : state) {
    q.Schedule(now + 100, [&sink](Nanos) { ++sink; });
    q.Schedule(now + 50, [&sink](Nanos) { ++sink; });
    now += 60;
    q.RunUntil(now);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSchedulePop);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // Balloon timeouts follow schedule -> cancel for nearly every request;
  // the old linear cancelled-list scan made this quadratic over a run.
  EventQueue q;
  Nanos now = 0;
  for (auto _ : state) {
    const uint64_t id = q.Schedule(now + 1000, [](Nanos) {});
    q.Schedule(now + 10, [](Nanos) {});
    benchmark::DoNotOptimize(q.Cancel(id));
    now += 20;
    q.RunUntil(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancelChurn);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(3);
  for (auto _ : state) {
    histogram.Record(rng.NextBelow(1000000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// ---- Batched access pipeline -----------------------------------------------
//
// End-to-end per-access cost through the Vm hot path: TLB/walker, tier
// queueing model, PEBS counting, and (for the batch path) the same-page run
// memo. BM_ExecuteBatch* and BM_ExecuteAccessScalar process identical op
// streams, so their ns/op difference is the measured win of batching.

struct BatchBenchEnv {
  static constexpr size_t kBatchOps = 256;

  BatchBenchEnv(uint64_t footprint_bytes, uint64_t stride_bytes, int run_length)
      : memory({TierSpec::LocalDram(32 * kMiB), TierSpec::Pmem(128 * kMiB)}),
        hyper(&memory, &events) {
    VmConfig config;
    config.id = 0;
    config.num_vcpus = 1;
    config.total_memory_bytes = 64 * kMiB;
    config.cache_hit_rate = 0.2;
    vm = &hyper.CreateVm(config);
    process = &vm->kernel().CreateProcess();
    const uint64_t base = process->HeapAlloc(footprint_bytes);

    // Pre-fault the working set so the measured loop exercises the steady
    // state (TLB/walk/queueing), not cold guest/EPT faults.
    for (uint64_t off = 0; off < footprint_bytes; off += kPageSize) {
      vm->ExecuteAccess(0, *process, base + off, true);
    }

    // Deterministic op stream: `run_length` consecutive ops per page (1 =
    // no coalescable runs), pages strided through the footprint.
    Rng rng(42);
    ops.reserve(kBatchOps);
    uint64_t page_cursor = 0;
    for (size_t i = 0; i < kBatchOps; i += static_cast<size_t>(run_length)) {
      const uint64_t page_off = (page_cursor * stride_bytes) % footprint_bytes;
      page_cursor += 1 + rng.NextBelow(7);
      for (int r = 0; r < run_length && ops.size() < kBatchOps; ++r) {
        ops.push_back(AccessOp{base + page_off + (static_cast<uint64_t>(r) % 64) * 64,
                               (r & 3) == 0});
      }
    }
    steps.resize(ops.size());
  }

  HostMemory memory;
  EventQueue events;
  Hypervisor hyper;
  Vm* vm = nullptr;
  GuestProcess* process = nullptr;
  std::vector<AccessOp> ops;
  std::vector<BatchStep> steps;
};

// Uniform page-per-op stream (GUPS-like): the run memo almost never hits;
// measures the batch pipeline floor.
void BM_ExecuteBatchUniform(benchmark::State& state) {
  BatchBenchEnv env(16 * kMiB, 5 * kPageSize + 64, /*run_length=*/1);
  const double far_future = 1e18;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.vm->ExecuteBatch(
        0, *env.process, std::span<const AccessOp>(env.ops), far_future, env.steps.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(env.ops.size()));
}
BENCHMARK(BM_ExecuteBatchUniform);

// Sequential-scan stream (bwaves-like, 8 ops per page): the same-page run
// memo absorbs most translations.
void BM_ExecuteBatchCoalesced(benchmark::State& state) {
  BatchBenchEnv env(16 * kMiB, kPageSize, /*run_length=*/8);
  const double far_future = 1e18;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.vm->ExecuteBatch(
        0, *env.process, std::span<const AccessOp>(env.ops), far_future, env.steps.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(env.ops.size()));
}
BENCHMARK(BM_ExecuteBatchCoalesced);

// The identical coalescable stream, one ExecuteAccess call per op (the
// pre-batching hot loop): the baseline the batch path is judged against.
void BM_ExecuteAccessScalar(benchmark::State& state) {
  BatchBenchEnv env(16 * kMiB, kPageSize, /*run_length=*/8);
  for (auto _ : state) {
    for (const AccessOp& op : env.ops) {
      benchmark::DoNotOptimize(env.vm->ExecuteAccess(0, *env.process, op.gva, op.is_write));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(env.ops.size()));
}
BENCHMARK(BM_ExecuteAccessScalar);

}  // namespace
}  // namespace demeter

BENCHMARK_MAIN();
