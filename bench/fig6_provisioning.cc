// Figure 6: average GUPS throughput under different tiered-memory
// provisioning techniques across concurrent VMs.
//
// All balloon rows boot VMs with both NUMA nodes at 100% of memory and rely
// on the provisioner to reach the 1:5 FMEM:SMEM target. Paper shapes:
// Demeter balloon matches static allocation for every TMM design; the
// classic VirtIO balloon starves FMEM (tier-blind inflation) and loses
// ~40% (68% gap in the paper against Demeter balloon + TPP); hotplug can
// only approximate the target in coarse blocks.

#include <cstdio>

#include "bench/common.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

double Throughput(const BenchScale& base, ProvisionMode mode, PolicyKind policy) {
  BenchScale scale = base;
  scale.transactions *= 2;  // Long runs: provisioning effects in steady state.
  Machine machine(HostFor(scale, scale.concurrent_vms));
  for (int v = 0; v < scale.concurrent_vms; ++v) {
    VmSetup setup = SetupFor(scale, "gups", policy);
    setup.provision = mode;
    machine.AddVm(setup);
  }
  machine.Run();
  double total = 0.0;
  for (int v = 0; v < machine.num_vms(); ++v) {
    total += machine.result(v).ThroughputTps();
  }
  return total / machine.num_vms() / 1e6;  // Mega-updates/s per VM.
}

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  std::printf("Figure 6: GUPS throughput by provisioning technique (M txn/s per VM, %d VMs)\n\n",
              scale.concurrent_vms);
  TablePrinter table({"provisioning", "static-policy", "tpp", "demeter"});
  for (ProvisionMode mode : {ProvisionMode::kStatic, ProvisionMode::kVirtioBalloon,
                             ProvisionMode::kDemeterBalloon, ProvisionMode::kHotplug}) {
    table.AddRow({ProvisionModeName(mode),
                  TablePrinter::Fmt(Throughput(scale, mode, PolicyKind::kStatic), 3),
                  TablePrinter::Fmt(Throughput(scale, mode, PolicyKind::kTpp), 3),
                  TablePrinter::Fmt(Throughput(scale, mode, PolicyKind::kDemeter), 3)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): demeter-balloon ~= static for every policy;\n"
      "virtio-balloon well below both (FMEM under-provisioning).\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
