// Figure 12: Silo/YCSB transaction latency percentiles across concurrent
// VMs, per guest design.
//
// Paper shapes: Demeter lowest at every percentile, with the biggest margin
// at p99 (-23% vs TPP): balanced relocation avoids the reclaim/fault storms
// that inflate the tail under the other designs.

#include <cstdio>

#include "bench/common.h"
#include "src/base/histogram.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  std::printf("Figure 12: Silo YCSB latency percentiles (microseconds, %d VMs)\n\n",
              scale.concurrent_vms);
  TablePrinter table({"design", "p50", "p90", "p95", "p99", "mean"});

  for (PolicyKind policy : {PolicyKind::kStatic, PolicyKind::kTpp, PolicyKind::kMemtis,
                            PolicyKind::kNomad, PolicyKind::kDemeter}) {
    Machine machine(HostFor(scale, scale.concurrent_vms));
    for (int v = 0; v < scale.concurrent_vms; ++v) {
      machine.AddVm(SetupFor(scale, "silo", policy));
    }
    machine.Run();
    Histogram merged;
    for (int v = 0; v < machine.num_vms(); ++v) {
      merged.Merge(machine.result(v).txn_latency_ns);
    }
    auto us = [&](double p) { return static_cast<double>(merged.Percentile(p)) / 1000.0; };
    table.AddRow({PolicyKindName(policy), TablePrinter::Fmt(us(50), 2),
                  TablePrinter::Fmt(us(90), 2), TablePrinter::Fmt(us(95), 2),
                  TablePrinter::Fmt(us(99), 2), TablePrinter::Fmt(merged.Mean() / 1000.0, 2)});
  }
  table.Print();
  std::printf("\nExpected shape (paper): demeter lowest across percentiles, widest\n"
              "margin at p99.\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
