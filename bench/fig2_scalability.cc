// Figure 2: CPU cores consumed by tiered memory management as the number of
// concurrent VMs grows (GUPS with a fixed total working set divided evenly
// across VMs).
//
// Paper shapes: TPP wastes the most cores (>4.5 of 36 at nine VMs in the
// paper) and grows with VM count; Memtis sits in the middle (~1.25 cores);
// Demeter stays flat and low (<0.2 cores).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/base/logging.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

constexpr int kVmCounts[] = {1, 3, 5, 7, 9};
constexpr PolicyKind kPolicies[] = {PolicyKind::kTpp, PolicyKind::kMemtis, PolicyKind::kDemeter};

int Run(int argc, char** argv) {
  const BenchScale base_scale = BenchScale::FromArgs(argc, argv);
  std::printf("Figure 2: management CPU cores vs concurrent VMs (GUPS)\n\n");
  TablePrinter table({"vms", "tpp-cores", "memtis-cores", "demeter-cores"});

  // Fixed total footprint split across VMs, like the paper's fixed 126 GiB.
  const uint64_t total_footprint = base_scale.footprint() * 3;

  // All fifteen (vms, policy) points are independent simulations.
  ExperimentRunner runner(RunnerOptionsFor(base_scale));
  for (int vms : kVmCounts) {
    for (PolicyKind policy : kPolicies) {
      BenchScale scale = base_scale;
      // Constant per-VM work: "cores wasted" is an intensive metric, and a
      // run must be long enough for one-time convergence migration to
      // amortize (the paper's runs span hundreds of policy periods).
      scale.transactions = base_scale.transactions * 2;
      // Each VM is sized to its share of the fixed working set (the paper
      // divides 126 GiB across however many VMs are running).
      const uint64_t per_vm_footprint = PageFloor(total_footprint / static_cast<uint64_t>(vms));
      scale.vm_bytes = PageCeil(per_vm_footprint * 4 / 3);
      ExperimentSpec spec;
      spec.name = "vms" + std::to_string(vms) + "/" + PolicyKindName(policy);
      spec.tag = "gups";
      spec.config = HostFor(scale, vms);
      for (int v = 0; v < vms; ++v) {
        VmSetup setup = SetupFor(scale, "gups", policy);
        setup.footprint_bytes = per_vm_footprint;
        spec.vms.push_back(setup);
      }
      runner.Submit(spec);
    }
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  size_t next = 0;
  for (int vms : kVmCounts) {
    std::vector<double> cores;
    for (PolicyKind policy : kPolicies) {
      (void)policy;
      const ExperimentResult& result = results[next++];
      DEMETER_CHECK(result.ok) << result.spec.name << ": " << result.error;
      cores.push_back(result.TotalMgmtCores());
    }
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(vms)), TablePrinter::Fmt(cores[0], 3),
                  TablePrinter::Fmt(cores[1], 3), TablePrinter::Fmt(cores[2], 3)});
  }
  table.Print();
  std::printf("\nExpected shape (paper): tpp >> memtis >> demeter, with demeter flat.\n");
  MaybeWriteJsonl(base_scale, results);
  MaybeWriteTrace(base_scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
