// Ablation study: disable one Demeter design decision at a time and
// measure the cost on a hotspot workload (XSBench) and on GUPS.
//
// Variants:
//   demeter           — the full design
//   no-balanced-swap  — sequential demote-then-promote migration instead of
//                       in-place swaps (prior systems' style, §3.2.3)
//   physical-space    — classify in guest-physical address space with a
//                       per-sample translation (the Figure 4 insight:
//                       fragmented gPA space carries no locality, so ranges
//                       never refine)
//   polling-thread    — dedicated sample-collection thread instead of
//                       context-switch drains (HeMem style, §3.2.2)
//   4k-granularity    — split floor lowered to 4 KiB (intra-hugepage
//                       skewness knob, §3.4.1): finer placement, more
//                       ranges to manage
//   coarse-16M        — split floor raised to 16 MiB: cheap but blunt

#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

struct Variant {
  const char* name;
  DemeterConfig (*make)(const BenchScale&);
};

DemeterConfig BaseConfig(const BenchScale& scale) {
  DemeterConfig config;
  config.range.epoch_length = scale.demeter_epoch;
  config.range.split_threshold = scale.demeter_split_threshold;
  config.sample_period = scale.demeter_sample_period;
  return config;
}

const Variant kVariants[] = {
    {"demeter", [](const BenchScale& s) { return BaseConfig(s); }},
    {"no-balanced-swap",
     [](const BenchScale& s) {
       DemeterConfig config = BaseConfig(s);
       config.relocator.balanced_swap = false;
       return config;
     }},
    {"physical-space",
     [](const BenchScale& s) {
       DemeterConfig config = BaseConfig(s);
       config.classify_virtual = false;
       return config;
     }},
    {"polling-thread",
     [](const BenchScale& s) {
       DemeterConfig config = BaseConfig(s);
       config.drain_on_context_switch = false;
       return config;
     }},
    {"4k-granularity",
     [](const BenchScale& s) {
       DemeterConfig config = BaseConfig(s);
       config.range.min_range_bytes = 4 * kKiB;
       return config;
     }},
    {"coarse-16M",
     [](const BenchScale& s) {
       DemeterConfig config = BaseConfig(s);
       config.range.min_range_bytes = 16 * kMiB;
       return config;
     }},
};

int Run(int argc, char** argv) {
  const BenchScale scale = BenchScale::FromArgs(argc, argv);
  std::printf("Ablation: Demeter design decisions (elapsed seconds; lower is better)\n\n");
  TablePrinter table({"variant", "xsbench-s", "gups-s", "gups-promoted", "gups-mgmt-cores"});

  for (const Variant& variant : kVariants) {
    double elapsed[2];
    uint64_t promoted = 0;
    double cores = 0.0;
    const char* workloads[2] = {"xsbench", "gups"};
    for (int w = 0; w < 2; ++w) {
      Machine machine(HostFor(scale, 1));
      VmSetup setup = SetupFor(scale, workloads[w], PolicyKind::kDemeter);
      setup.demeter = variant.make(scale);
      machine.AddVm(setup);
      machine.Run();
      elapsed[w] = machine.result(0).elapsed_s;
      if (w == 1) {
        promoted = machine.result(0).vm_stats.pages_promoted;
        cores = machine.result(0).MgmtCores();
      }
    }
    table.AddRow({variant.name, TablePrinter::Fmt(elapsed[0], 3),
                  TablePrinter::Fmt(elapsed[1], 3), TablePrinter::Fmt(promoted),
                  TablePrinter::Fmt(cores, 3)});
  }
  table.Print();
  std::printf(
      "\nExpected: the full design is fastest or tied; physical-space stalls\n"
      "(no gPA locality to refine); no-balanced-swap pays extra migration;\n"
      "polling burns management CPU; granularity trades accuracy vs overhead.\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
