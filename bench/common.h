// Shared configuration for the paper-reproduction bench binaries.
//
// The paper's testbed runs 16 GiB VMs with 4 vCPUs on a 36-core dual-socket
// host; this simulation runs on one core, so every bench uses a scaled-down
// geometry that preserves the paper's *ratios*: FMEM:total = 1:5, footprint
// close to VM capacity, hot-set fractions, and epoch:run-length proportions.
// Pass --full to any bench for a larger (slower) configuration.

#ifndef DEMETER_BENCH_COMMON_H_
#define DEMETER_BENCH_COMMON_H_

#include <cstring>
#include <string>

#include "src/harness/machine.h"

namespace demeter {

struct BenchScale {
  uint64_t vm_bytes = 32 * kMiB;
  double footprint_ratio = 0.75;  // Footprint relative to VM memory.
  uint64_t transactions = 800000;
  int vcpus = 2;
  Nanos demeter_epoch = 10 * kMillisecond;
  uint64_t demeter_sample_period = 97;
  // Scaled split threshold: keeps the paper's ratio of split margin
  // (alpha * tau_split * vcpus) to samples-per-epoch (~2.5%) at this
  // simulation's sample rate.
  double demeter_split_threshold = 4.0;
  Nanos policy_period = 15 * kMillisecond;
  Nanos timeline_bucket = 25 * kMillisecond;
  // Concurrent VMs for the multi-VM experiments (the paper runs nine).
  int concurrent_vms = 3;

  static BenchScale FromArgs(int argc, char** argv) {
    BenchScale scale;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        scale.vm_bytes = 128 * kMiB;
        scale.transactions = 2000000;
        scale.vcpus = 4;
        scale.concurrent_vms = 9;
      }
    }
    return scale;
  }

  uint64_t footprint() const {
    return PageFloor(static_cast<uint64_t>(footprint_ratio * static_cast<double>(vm_bytes)));
  }
};

enum class SmemKind { kPmem, kCxl };

inline MachineConfig HostFor(const BenchScale& scale, int num_vms,
                             SmemKind smem = SmemKind::kPmem) {
  MachineConfig config;
  const uint64_t n = static_cast<uint64_t>(num_vms);
  // Host DRAM is sized like the paper's testbed: each VM's 1:5 FMEM share
  // plus 25% headroom (the slack §5.4 grants hypervisor-based TPP-H).
  // SMEM is ample so ballooned-up configurations also fit.
  const uint64_t fmem =
      PageCeil(static_cast<uint64_t>(static_cast<double>(scale.vm_bytes * n) * 0.2 * 1.25));
  const uint64_t smem_bytes = scale.vm_bytes * n * 2;
  config.tiers = {TierSpec::LocalDram(fmem), smem == SmemKind::kPmem
                                                 ? TierSpec::Pmem(smem_bytes)
                                                 : TierSpec::RemoteDram(smem_bytes)};
  return config;
}

inline VmSetup SetupFor(const BenchScale& scale, const std::string& workload, PolicyKind policy) {
  VmSetup setup;
  setup.vm.total_memory_bytes = scale.vm_bytes;
  setup.vm.fmem_ratio = 0.2;  // The paper's default 1:5.
  setup.vm.num_vcpus = scale.vcpus;
  setup.workload = workload;
  setup.footprint_bytes = scale.footprint();
  setup.target_transactions = scale.transactions;
  setup.policy = policy;
  setup.policy_period = scale.policy_period;
  setup.demeter.range.epoch_length = scale.demeter_epoch;
  setup.demeter.sample_period = scale.demeter_sample_period;
  setup.demeter.range.split_threshold = scale.demeter_split_threshold;
  setup.timeline_bucket = scale.timeline_bucket;
  return setup;
}

}  // namespace demeter

#endif  // DEMETER_BENCH_COMMON_H_
