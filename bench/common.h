// Shared configuration for the paper-reproduction bench binaries.
//
// The paper's testbed runs 16 GiB VMs with 4 vCPUs on a 36-core dual-socket
// host; this simulation runs on one core, so every bench uses a scaled-down
// geometry that preserves the paper's *ratios*: FMEM:total = 1:5, footprint
// close to VM capacity, hot-set fractions, and epoch:run-length proportions.
//
// Flags accepted by every bench (unknown flags are rejected with a usage
// message):
//   --full        larger (slower) configuration closer to paper scale
//   --smoke       tiny configuration for CI smoke runs (seconds, not minutes)
//   --jobs=N      worker threads for runner-based benches (default: all cores)
//   --out=FILE    also write results as JSON lines to FILE
//   --trace=FILE  write a Chrome trace_event JSON trace of every run to FILE
//   --faults=SPEC inject the given fault schedule into every machine
//                 (see FaultPlan::Parse for the SPEC grammar)
//   --shards=N    partition each machine's per-VM state into N shards
//                 (ownership/locality only — results are byte-identical for
//                 every N; see DESIGN.md "The sharded host")
//   --check       audit cross-layer invariants during every run (abort on
//                 violation); observability-only, results are unchanged
//   --help        print usage and exit

#ifndef DEMETER_BENCH_COMMON_H_
#define DEMETER_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/fault/fault.h"
#include "src/runner/result_sink.h"
#include "src/runner/runner.h"

namespace demeter {

struct BenchScale {
  uint64_t vm_bytes = 32 * kMiB;
  double footprint_ratio = 0.75;  // Footprint relative to VM memory.
  uint64_t transactions = 800000;
  int vcpus = 2;
  Nanos demeter_epoch = 10 * kMillisecond;
  uint64_t demeter_sample_period = 97;
  // Scaled split threshold: keeps the paper's ratio of split margin
  // (alpha * tau_split * vcpus) to samples-per-epoch (~2.5%) at this
  // simulation's sample rate.
  double demeter_split_threshold = 4.0;
  Nanos policy_period = 15 * kMillisecond;
  Nanos timeline_bucket = 25 * kMillisecond;
  // Concurrent VMs for the multi-VM experiments (the paper runs nine).
  int concurrent_vms = 3;
  // Runner controls (see flags above).
  int jobs = 0;               // <= 0: hardware_concurrency.
  std::string out;            // JSON-lines output path; empty = none.
  std::string trace;          // Chrome trace output path; empty = no tracing.
  FaultPlan faults;           // --faults; empty = fault-free.
  int shards = 1;             // --shards; clamped to [1, Machine::kMaxShards].
  bool check_invariants = false;  // --check.
  bool smoke = false;         // --smoke was given (benches that scale VM counts).

  static void Usage(const char* prog, std::FILE* stream) {
    std::fprintf(stream,
                 "usage: %s [--full] [--smoke] [--jobs=N] [--out=FILE] [--trace=FILE]\n"
                 "          [--faults=SPEC] [--shards=N] [--check] [--help]\n"
                 "  --full         paper-scale (slower) configuration\n"
                 "  --smoke        tiny CI configuration (completes in seconds)\n"
                 "  --jobs=N       parallel experiment jobs (default: all cores)\n"
                 "  --out=FILE     also write JSON-lines results to FILE\n"
                 "  --trace=FILE   write Chrome trace_event JSON to FILE\n"
                 "  --faults=SPEC  inject a fault schedule, e.g.\n"
                 "                 'bdrop=0.1,stall=5ms/50ms,vqcap=8' (see src/fault)\n"
                 "  --shards=N     shard per-VM machine state (results identical for any N)\n"
                 "  --check        audit cross-layer invariants every quantum\n",
                 prog);
  }

  // Parses the shared bench flags. Unknown arguments are an error: print
  // usage and exit(2) rather than silently ignoring a typo.
  static BenchScale FromArgs(int argc, char** argv) {
    BenchScale scale;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--full") == 0) {
        scale.vm_bytes = 128 * kMiB;
        scale.transactions = 2000000;
        scale.vcpus = 4;
        scale.concurrent_vms = 9;
      } else if (std::strcmp(arg, "--smoke") == 0) {
        // CI-sized: small enough that a full sweep finishes in seconds while
        // still exercising every policy/provisioning code path.
        scale.vm_bytes = 8 * kMiB;
        scale.transactions = 20000;
        scale.vcpus = 2;
        scale.concurrent_vms = 2;
        scale.smoke = true;
      } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
        char* end = nullptr;
        const long jobs = std::strtol(arg + 7, &end, 10);
        if (end == arg + 7 || *end != '\0' || jobs < 1) {
          std::fprintf(stderr, "%s: --jobs needs a positive integer, got '%s'\n", argv[0],
                       arg + 7);
          std::exit(2);
        }
        scale.jobs = static_cast<int>(jobs);
      } else if (std::strncmp(arg, "--out=", 6) == 0) {
        scale.out = arg + 6;
        if (scale.out.empty()) {
          std::fprintf(stderr, "%s: --out needs a file path\n", argv[0]);
          std::exit(2);
        }
        // Fail before the sweep, not after: an unwritable path must not
        // cost minutes of simulation first.
        std::FILE* probe = std::fopen(scale.out.c_str(), "w");
        if (probe == nullptr) {
          std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                       scale.out.c_str());
          std::exit(2);
        }
        std::fclose(probe);
      } else if (std::strncmp(arg, "--trace=", 8) == 0) {
        scale.trace = arg + 8;
        if (scale.trace.empty()) {
          std::fprintf(stderr, "%s: --trace needs a file path\n", argv[0]);
          std::exit(2);
        }
        std::FILE* probe = std::fopen(scale.trace.c_str(), "w");
        if (probe == nullptr) {
          std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                       scale.trace.c_str());
          std::exit(2);
        }
        std::fclose(probe);
      } else if (std::strncmp(arg, "--faults=", 9) == 0) {
        std::string error;
        const std::optional<FaultPlan> plan = FaultPlan::Parse(arg + 9, &error);
        if (!plan.has_value()) {
          std::fprintf(stderr, "%s: bad --faults spec: %s\n", argv[0], error.c_str());
          std::exit(2);
        }
        scale.faults = *plan;
      } else if (std::strncmp(arg, "--shards=", 9) == 0) {
        char* end = nullptr;
        const long shards = std::strtol(arg + 9, &end, 10);
        if (end == arg + 9 || *end != '\0' || shards < 1) {
          std::fprintf(stderr, "%s: --shards needs a positive integer, got '%s'\n", argv[0],
                       arg + 9);
          std::exit(2);
        }
        scale.shards = static_cast<int>(shards);
      } else if (std::strcmp(arg, "--check") == 0) {
        scale.check_invariants = true;
      } else if (std::strcmp(arg, "--help") == 0) {
        Usage(argv[0], stdout);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unrecognized argument '%s'\n", argv[0], arg);
        Usage(argv[0], stderr);
        std::exit(2);
      }
    }
    return scale;
  }

  uint64_t footprint() const {
    return PageFloor(static_cast<uint64_t>(footprint_ratio * static_cast<double>(vm_bytes)));
  }
};

enum class SmemKind { kPmem, kCxl };

inline const char* SmemKindName(SmemKind smem) {
  return smem == SmemKind::kPmem ? "pmem" : "cxl";
}

inline MachineConfig HostFor(const BenchScale& scale, int num_vms,
                             SmemKind smem = SmemKind::kPmem) {
  MachineConfig config;
  const uint64_t n = static_cast<uint64_t>(num_vms);
  // Host DRAM is sized like the paper's testbed: each VM's 1:5 FMEM share
  // plus 25% headroom (the slack §5.4 grants hypervisor-based TPP-H).
  // SMEM is ample so ballooned-up configurations also fit.
  const uint64_t fmem =
      PageCeil(static_cast<uint64_t>(static_cast<double>(scale.vm_bytes * n) * 0.2 * 1.25));
  const uint64_t smem_bytes = scale.vm_bytes * n * 2;
  config.tiers = {TierSpec::LocalDram(fmem), smem == SmemKind::kPmem
                                                 ? TierSpec::Pmem(smem_bytes)
                                                 : TierSpec::RemoteDram(smem_bytes)};
  // Observability only — excluded from the spec content hash, so results
  // are identical with or without --trace / --check / --shards.
  config.capture_trace = !scale.trace.empty();
  config.check_invariants = scale.check_invariants;
  config.shards = scale.shards;
  // Faults change behaviour and fold into the hash when non-empty.
  config.faults = scale.faults;
  return config;
}

inline VmSetup SetupFor(const BenchScale& scale, const std::string& workload, PolicyKind policy) {
  VmSetup setup;
  setup.vm.total_memory_bytes = scale.vm_bytes;
  setup.vm.fmem_ratio = 0.2;  // The paper's default 1:5.
  setup.vm.num_vcpus = scale.vcpus;
  setup.workload = workload;
  setup.footprint_bytes = scale.footprint();
  setup.target_transactions = scale.transactions;
  setup.policy = policy;
  setup.policy_period = scale.policy_period;
  setup.demeter.range.epoch_length = scale.demeter_epoch;
  setup.demeter.sample_period = scale.demeter_sample_period;
  setup.demeter.range.split_threshold = scale.demeter_split_threshold;
  setup.timeline_bucket = scale.timeline_bucket;
  return setup;
}

// One homogeneous experiment: `num_vms` identical VMs running `workload`
// under `policy` on a HostFor host. The building block of every sweep.
inline ExperimentSpec SpecFor(const BenchScale& scale, const std::string& workload,
                              PolicyKind policy, int num_vms, SmemKind smem = SmemKind::kPmem) {
  ExperimentSpec spec;
  spec.name = workload + "/" + PolicyKindName(policy) + "/" + SmemKindName(smem);
  spec.tag = workload;
  spec.config = HostFor(scale, num_vms, smem);
  for (int v = 0; v < num_vms; ++v) {
    spec.vms.push_back(SetupFor(scale, workload, policy));
  }
  return spec;
}

inline RunnerOptions RunnerOptionsFor(const BenchScale& scale) {
  RunnerOptions options;
  options.jobs = scale.jobs;
  return options;
}

// Writes results to --out as JSON lines when the flag was given.
inline void MaybeWriteJsonl(const BenchScale& scale,
                            const std::vector<ExperimentResult>& results) {
  if (scale.out.empty()) {
    return;
  }
  JsonLinesSink sink(scale.out);
  EmitResults(results, {&sink});
  std::fprintf(stderr, "wrote %zu experiment results to %s\n", results.size(),
               scale.out.c_str());
}

// Writes the merged Chrome trace to --trace when the flag was given.
// Results are traversed in submission order, so the file is byte-identical
// across --jobs values.
inline void MaybeWriteTrace(const BenchScale& scale,
                            const std::vector<ExperimentResult>& results) {
  if (scale.trace.empty()) {
    return;
  }
  std::vector<NamedTrace> traces;
  for (const ExperimentResult& result : results) {
    if (!result.trace.empty()) {
      traces.push_back(NamedTrace{result.spec.name, &result.trace});
    }
  }
  WriteChromeTraceFile(scale.trace, traces);
  std::fprintf(stderr, "wrote %zu traces to %s\n", traces.size(), scale.trace.c_str());
}

}  // namespace demeter

#endif  // DEMETER_BENCH_COMMON_H_
