// Multi-host fleet sweep: every TMM policy runs the same fleet — VMs placed
// across hosts by the cluster placement controller, a quarter of them
// booting late — twice: once fault-free, and once under the "evac" schedule
// where alternating hosts suffer periodic FMEM shrink windows (driving
// live-migration evacuations toward the healthy hosts) while an armed
// migratefail fault aborts a fraction of those migrations mid-copy.
//
// No paper figure spans hosts — the testbed is one machine — but the
// paper's cloud pitch ("a scalable and elastic tiered memory solution for
// virtualized cloud") is ultimately judged fleet-wide: what does a capacity
// reclaim on one host cost its tenants when they can be moved instead of
// squeezed? This bench reports, per policy, throughput retention versus the
// policy's own fault-free fleet run, plus the migration ledger (started /
// completed / aborted / cancelled, pages copied, downtime).
//
// Fleet-specific flags (pre-filtered before the shared flag parser):
//   --fleet=VxH       V VMs across H hosts (default 32x4; --full 128x8;
//                     --smoke 8x2)
//   --placement=NAME  first-fit | best-fit | spread (default first-fit)
//
// This bench owns its fault schedule; the generic --faults flag is rejected
// to avoid silently mixing two schedules.

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "bench/common.h"
#include "src/base/logging.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

struct FaultLevel {
  const char* name;
  bool evac;  // Arm the shrink + migratefail schedule.
};

constexpr FaultLevel kLevels[] = {
    {"none", false},
    {"evac", true},
};

struct PolicyVariant {
  const char* name;
  PolicyKind kind;
  ProvisionMode provision;
  bool degradation = true;  // Only meaningful for Demeter.
};

// The same seven variants as the single-host resilience sweeps, so fleet
// numbers line up with elasticity_churn's per-host ones.
constexpr PolicyVariant kPolicies[] = {
    {"demeter", PolicyKind::kDemeter, ProvisionMode::kDemeterBalloon, true},
    {"demeter-nofb", PolicyKind::kDemeter, ProvisionMode::kDemeterBalloon, false},
    {"tpp", PolicyKind::kTpp, ProvisionMode::kStatic},
    {"tpp-h", PolicyKind::kHTpp, ProvisionMode::kStatic},
    {"memtis", PolicyKind::kMemtis, ProvisionMode::kVirtioBalloon},
    {"nomad", PolicyKind::kNomad, ProvisionMode::kStatic},
    {"damon", PolicyKind::kDamon, ProvisionMode::kHotplug},
};

struct Fleet {
  int vms = 32;
  int hosts = 4;
};

// Alternating hosts lose 30% of FMEM for 6 ms of every 20 ms: with the
// 10 ms barrier epoch, every other barrier lands inside a shrink window, so
// the evacuation path is exercised continuously rather than by luck.
constexpr char kShrinkSpec[] = "tiershrink=0.3/6ms/20ms@0";

// Every migration leaving any host aborts with p=0.3 once its cumulative
// pre-copy work crosses 1 ms — mid-copy for anything bigger than a few
// hundred pages, so the abort exercises source-side rollback, not a
// never-started migration.
std::string MigrateFailSpec(int hosts) {
  std::string spec;
  const int armed = hosts < kMaxFaultHosts ? hosts : kMaxFaultHosts;
  for (int h = 0; h < armed; ++h) {
    if (!spec.empty()) {
      spec += ',';
    }
    spec += "migratefail=0.3/1ms@" + std::to_string(h);
  }
  return spec;
}

ExperimentSpec FleetSpecFor(const BenchScale& scale, const Fleet& fleet,
                            const PolicyVariant& variant, const FaultLevel& level,
                            PlacementPolicy placement) {
  // Each host is sized for its fair share plus one VM of slack, so the
  // healthy hosts can absorb evacuees without going straight to swap.
  const int vms_per_host = fleet.vms / fleet.hosts;
  ExperimentSpec spec = SpecFor(scale, "silo", variant.kind, /*num_vms=*/0, SmemKind::kPmem);
  spec.config = HostFor(scale, vms_per_host + 1);
  spec.name = std::string("fleet/") + variant.name + "/" + level.name;
  spec.tag = level.name;
  spec.cluster.num_hosts = fleet.hosts;
  spec.cluster.placement = placement;
  // silo re-dirties most of its footprint every epoch, so the dirty set
  // never shrinks under any threshold — cap pre-copy at two rounds (full
  // copy + one residual) or every evacuation would race the source VM's
  // completion and cancel.
  spec.cluster.migration.stop_copy_pages = 512;
  spec.cluster.migration.max_precopy_rounds = 2;
  if (level.evac) {
    std::string error;
    const std::optional<FaultPlan> migrate = FaultPlan::Parse(MigrateFailSpec(fleet.hosts), &error);
    DEMETER_CHECK(migrate.has_value()) << error;
    const std::optional<FaultPlan> shrink = FaultPlan::Parse(kShrinkSpec, &error);
    DEMETER_CHECK(shrink.has_value()) << error;
    // Shared plan: the cluster-level migratefail injector. Per-host plans:
    // even hosts shrink, odd hosts stay healthy (the evacuation targets).
    spec.config.faults = *migrate;
    spec.cluster.host_faults = {*shrink, FaultPlan{}};
  }
  for (int v = 0; v < fleet.vms; ++v) {
    VmSetup setup = SetupFor(scale, "silo", variant.kind);
    setup.provision = variant.provision;
    setup.demeter.degradation.enabled = variant.degradation;
    // A quarter of the fleet arrives late, staggered a barrier apart, so
    // deferred placement decides against a live (and, under "evac",
    // shrinking) load picture rather than an empty fleet.
    if (v % 4 == 3) {
      setup.boot_at = 20 * kMillisecond + static_cast<Nanos>(v / 4) * (10 * kMillisecond);
    }
    spec.vms.push_back(setup);
  }
  return spec;
}

int Run(int argc, char** argv) {
  // Fleet-specific flags come out of argv before the shared parser sees
  // them (it rejects unknown flags with exit(2)).
  Fleet fleet;
  bool fleet_flag = false;
  PlacementPolicy placement = PlacementPolicy::kFirstFit;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  bool smoke = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--fleet=", 8) == 0) {
      int vms = 0;
      int hosts = 0;
      if (std::sscanf(arg + 8, "%dx%d", &vms, &hosts) != 2 || vms < 1 || hosts < 1 ||
          vms % hosts != 0) {
        std::fprintf(stderr, "%s: --fleet needs VxH with V a multiple of H, got '%s'\n",
                     argv[0], arg + 8);
        return 2;
      }
      fleet = Fleet{vms, hosts};
      fleet_flag = true;
    } else if (std::strncmp(arg, "--placement=", 12) == 0) {
      const std::string name = arg + 12;
      if (name != "first-fit" && name != "best-fit" && name != "spread") {
        std::fprintf(stderr, "%s: --placement needs first-fit|best-fit|spread, got '%s'\n",
                     argv[0], name.c_str());
        return 2;
      }
      placement = PlacementPolicyFromName(name);
    } else {
      if (std::strcmp(arg, "--smoke") == 0) {
        smoke = true;
      } else if (std::strcmp(arg, "--full") == 0) {
        full = true;
      }
      passthrough.push_back(arg);
    }
  }
  BenchScale scale = BenchScale::FromArgs(static_cast<int>(passthrough.size()),
                                          passthrough.data());
  if (!scale.faults.empty()) {
    std::fprintf(stderr, "%s: this bench owns its fault schedule; drop --faults\n", argv[0]);
    return 2;
  }
  if (!fleet_flag) {
    fleet = smoke ? Fleet{8, 2} : full ? Fleet{128, 8} : Fleet{32, 4};
  }
  // In this bench --smoke/--full size the FLEET (hosts × VMs); per-VM work
  // stays CI-sized so the fleet dimension is what grows. The shared --full
  // meaning (128 MiB VMs, 2M transactions each) would run a 128-VM fleet
  // for hours without exercising anything the small VMs don't.
  scale.vm_bytes = smoke ? 8 * kMiB : 16 * kMiB;
  scale.transactions = smoke ? 20000 : 50000;
  scale.vcpus = 2;
  // Span several shrink windows per run — an evacuation needs its source VM
  // alive for a few barriers after the window opens.
  scale.transactions *= 2;

  const size_t num_levels = sizeof(kLevels) / sizeof(kLevels[0]);
  const size_t num_policies = sizeof(kPolicies) / sizeof(kPolicies[0]);
  std::printf("Cluster fleet: %zu policies x %zu fault levels, %d VMs on %d hosts, "
              "%s placement (%zu experiments)\n\n",
              num_policies, num_levels, fleet.vms, fleet.hosts,
              PlacementPolicyName(placement), num_policies * num_levels);

  ExperimentRunner runner(RunnerOptionsFor(scale));
  for (const FaultLevel& level : kLevels) {
    for (const PolicyVariant& variant : kPolicies) {
      runner.Submit(FleetSpecFor(scale, fleet, variant, level, placement));
    }
  }
  const std::vector<ExperimentResult> results = runner.RunAll();

  TableSink table;
  for (const ExperimentResult& result : results) {
    table.Consume(result);
  }
  table.Finish();

  // Headline: fleet throughput retention under the evac schedule relative
  // to the same policy's own fault-free fleet run.
  std::printf("\nFleet throughput retention vs fault-free (higher is better):\n");
  std::printf("  %-14s %12s %12s %10s\n", "policy", "none_tps", "evac_tps", "retention");
  for (size_t p = 0; p < num_policies; ++p) {
    double tps[2] = {0.0, 0.0};
    for (size_t l = 0; l < num_levels; ++l) {
      const ExperimentResult& result = results[l * num_policies + p];
      if (result.ok) {
        for (const VmRunResult& vm : result.vms) {
          tps[l] += vm.ThroughputTps();
        }
      }
    }
    std::printf("  %-14s %12.0f %12.0f %9.1f%%\n", kPolicies[p].name, tps[0], tps[1],
                tps[0] > 0.0 ? 100.0 * tps[1] / tps[0] : 0.0);
    DEMETER_CHECK(tps[0] > 0.0) << kPolicies[p].name << ": fault-free fleet produced no work";
  }

  // Migration ledger: the evac schedule must actually drive evacuations,
  // and every VM either stayed put, arrived whole, or bounced back whole.
  std::printf("\nEvacuation ledger (evac level):\n");
  std::printf("  %-14s %8s %9s %8s %9s %11s %12s\n", "policy", "started", "completed",
              "aborted", "cancelled", "pages", "downtime_ms");
  for (size_t p = 0; p < num_policies; ++p) {
    const ExperimentResult& result = results[1 * num_policies + p];
    if (!result.ok) {
      std::printf("  %-14s FAILED: %s\n", kPolicies[p].name, result.error.c_str());
      continue;
    }
    const MetricSnapshot& host = result.host_metrics;
    const uint64_t started = host.CounterValue("cluster/migration/started");
    const uint64_t completed = host.CounterValue("cluster/migration/completed");
    const uint64_t aborted = host.CounterValue("cluster/migration/aborted");
    const uint64_t cancelled = host.CounterValue("cluster/migration/cancelled");
    std::printf("  %-14s %8llu %9llu %8llu %9llu %11llu %12.2f\n", kPolicies[p].name,
                static_cast<unsigned long long>(started),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(aborted),
                static_cast<unsigned long long>(cancelled),
                static_cast<unsigned long long>(
                    host.CounterValue("cluster/migration/pages_copied")),
                static_cast<double>(host.CounterValue("cluster/migration/downtime_ns_total")) /
                    1e6);
    DEMETER_CHECK(started >= 1) << kPolicies[p].name
                                << ": the shrink schedule never drove an evacuation";
    // The fleet drains only when no migration is in flight, so every start
    // resolved one way exactly.
    DEMETER_CHECK(started == completed + aborted + cancelled)
        << kPolicies[p].name << ": unresolved migrations at end of run";
    // Every arrival must be accounted by a VM-side migrated_in counter.
    // Sum over every slot in the fleet snapshot, not just final locations:
    // a VM evacuated twice leaves its first arrival on an intermediate
    // slot it has since migrated out of.
    uint64_t arrivals = 0;
    for (const MetricSample& m : host.samples()) {
      constexpr std::string_view kSuffix = "lifecycle/migrated_in";
      if (m.name.size() > kSuffix.size() &&
          m.name.compare(m.name.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0) {
        arrivals += m.counter;
      }
    }
    DEMETER_CHECK(arrivals == completed)
        << kPolicies[p].name << ": " << completed << " completed migrations but " << arrivals
        << " VM arrivals";
  }

  // Fleet-accounting cross-check, every level: each spec VM ran to its
  // target exactly once, wherever it ended up.
  for (const ExperimentResult& result : results) {
    if (!result.ok) {
      continue;
    }
    for (size_t v = 0; v < result.vms.size(); ++v) {
      DEMETER_CHECK(result.vms[v].transactions >=
                    result.spec.vms[v].target_transactions)
          << result.spec.name << " vm " << v << " fell short of its target";
    }
  }

  MaybeWriteJsonl(scale, results);
  MaybeWriteTrace(scale, results);
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
