// demeter_sim: command-line front end for one-off experiments.
//
//   demeter_sim [--workload NAME] [--policy NAME] [--vms N] [--vm-mib N]
//               [--footprint-mib N] [--txns N] [--smem pmem|cxl]
//               [--provision static|virtio-balloon|demeter-balloon|hotplug]
//               [--overcommit R] [--seed N]
//
// Prints one result row per VM plus aggregates. Example:
//
//   ./build/tools/demeter_sim --workload silo --policy demeter --vms 3

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/harness/machine.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

struct Options {
  std::string workload = "gups";
  std::string policy = "demeter";
  int vms = 1;
  uint64_t vm_mib = 32;
  uint64_t footprint_mib = 24;
  uint64_t txns = 400000;
  std::string smem = "pmem";
  std::string provision = "static";
  // FMEM overcommit ratio: > 1.0 provisions fast-node demand / R of FMEM,
  // adds the far swap tier, and arms the overcommit spill scheduler.
  double overcommit = 1.0;
  uint64_t seed = 42;
};

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) {
        return nullptr;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = next("--workload")) {
      options->workload = v;
    } else if (const char* v = next("--policy")) {
      options->policy = v;
    } else if (const char* v = next("--vms")) {
      options->vms = std::atoi(v);
    } else if (const char* v = next("--vm-mib")) {
      options->vm_mib = std::strtoull(v, nullptr, 10);
    } else if (const char* v = next("--footprint-mib")) {
      options->footprint_mib = std::strtoull(v, nullptr, 10);
    } else if (const char* v = next("--txns")) {
      options->txns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = next("--smem")) {
      options->smem = v;
    } else if (const char* v = next("--provision")) {
      options->provision = v;
    } else if (const char* v = next("--overcommit")) {
      options->overcommit = std::strtod(v, nullptr);
      if (options->overcommit < 1.0) {
        std::fprintf(stderr, "--overcommit needs a ratio >= 1.0, got %s\n", v);
        std::exit(2);
      }
    } else if (const char* v = next("--seed")) {
      options->seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

ProvisionMode ParseProvision(const std::string& name) {
  if (name == "static") {
    return ProvisionMode::kStatic;
  }
  if (name == "virtio-balloon") {
    return ProvisionMode::kVirtioBalloon;
  }
  if (name == "demeter-balloon") {
    return ProvisionMode::kDemeterBalloon;
  }
  if (name == "hotplug") {
    return ProvisionMode::kHotplug;
  }
  std::fprintf(stderr, "unknown provision mode: %s\n", name.c_str());
  std::exit(2);
}

int Run(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    return 2;
  }

  MachineConfig host;
  host.seed = options.seed;
  const uint64_t n = static_cast<uint64_t>(options.vms);
  const uint64_t fmem = PageCeil(static_cast<uint64_t>(
      static_cast<double>(options.vm_mib * kMiB * n) * 0.2 * 1.25 / options.overcommit));
  const uint64_t smem_bytes = options.vm_mib * kMiB * n * 2;
  host.tiers = {TierSpec::LocalDram(fmem), options.smem == "cxl"
                                               ? TierSpec::RemoteDram(smem_bytes)
                                               : TierSpec::Pmem(smem_bytes)};
  if (options.overcommit > 1.0) {
    // Oversubscribed FMEM needs somewhere for the displaced tail to go once
    // SMEM also fills: add the far swap tier and arm the spill scheduler.
    host.tiers.push_back(TierSpec::Zswap(options.vm_mib * kMiB * n));
    host.overcommit.enabled = true;
    host.overcommit.ratio = options.overcommit;
  }
  Machine machine(host);
  for (int v = 0; v < options.vms; ++v) {
    VmSetup setup;
    setup.vm.total_memory_bytes = options.vm_mib * kMiB;
    setup.vm.num_vcpus = 2;
    setup.workload = options.workload;
    setup.footprint_bytes = options.footprint_mib * kMiB;
    setup.target_transactions = options.txns;
    setup.policy = PolicyKindFromName(options.policy);
    setup.provision = ParseProvision(options.provision);
    setup.policy_period = 15 * kMillisecond;
    setup.demeter.range.epoch_length = 10 * kMillisecond;
    setup.demeter.range.split_threshold = 4.0;
    setup.demeter.sample_period = 97;
    machine.AddVm(setup);
  }
  machine.Run();

  std::printf("workload=%s policy=%s vms=%d vm=%lluMiB footprint=%lluMiB smem=%s "
              "provision=%s overcommit=%.2f seed=%llu\n\n",
              options.workload.c_str(), options.policy.c_str(), options.vms,
              static_cast<unsigned long long>(options.vm_mib),
              static_cast<unsigned long long>(options.footprint_mib), options.smem.c_str(),
              options.provision.c_str(), options.overcommit,
              static_cast<unsigned long long>(options.seed));

  TablePrinter table({"vm", "elapsed-s", "txn/s", "fmem-hit", "promoted", "demoted",
                      "tlb-single", "tlb-full", "mgmt-cores", "p99-lat-us"});
  for (int v = 0; v < machine.num_vms(); ++v) {
    const VmRunResult& r = machine.result(v);
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(v)),
                  TablePrinter::Fmt(r.elapsed_s, 3), TablePrinter::Fmt(r.ThroughputTps(), 0),
                  TablePrinter::Fmt(r.fmem_access_fraction * 100, 1) + "%",
                  TablePrinter::Fmt(r.vm_stats.pages_promoted),
                  TablePrinter::Fmt(r.vm_stats.pages_demoted),
                  TablePrinter::Fmt(r.tlb.single_flushes), TablePrinter::Fmt(r.tlb.full_flushes),
                  TablePrinter::Fmt(r.MgmtCores(), 3),
                  TablePrinter::Fmt(static_cast<double>(r.txn_latency_ns.Percentile(99)) / 1000.0,
                                    2)});
  }
  table.Print();
  std::printf("\nmean elapsed %.3fs, total mgmt cores %.3f\n", machine.MeanElapsedSeconds(),
              machine.TotalMgmtCores());
  return 0;
}

}  // namespace
}  // namespace demeter

int main(int argc, char** argv) { return demeter::Run(argc, argv); }
