#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/base/units.h"
#include "src/guest/address_space.h"
#include "src/guest/kernel.h"
#include "src/guest/mpsc_channel.h"
#include "src/guest/numa_node.h"

namespace demeter {
namespace {

// ---- NumaNode --------------------------------------------------------------

TEST(NumaNode, AllocWithinRange) {
  NumaNode node(0, 1000, 100, 50);
  auto gpa = node.AllocPage();
  ASSERT_TRUE(gpa.has_value());
  EXPECT_TRUE(node.ContainsGpa(*gpa));
  EXPECT_EQ(node.free_pages(), 49u);
  EXPECT_EQ(node.used_pages(), 1u);
}

TEST(NumaNode, ExhaustsAtPresentNotSpan) {
  NumaNode node(0, 0, 100, 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(node.AllocPage().has_value());
  }
  EXPECT_FALSE(node.AllocPage().has_value());
}

TEST(NumaNode, FreeRecycles) {
  NumaNode node(0, 0, 10, 1);
  auto gpa = node.AllocPage();
  EXPECT_FALSE(node.AllocPage().has_value());
  node.FreePage(*gpa);
  auto gpa2 = node.AllocPage();
  ASSERT_TRUE(gpa2.has_value());
  EXPECT_EQ(*gpa, *gpa2);
}

TEST(NumaNode, BalloonTakeShrinksPresent) {
  NumaNode node(0, 0, 100, 50);
  std::vector<PageNum> taken;
  EXPECT_EQ(node.BalloonTake(20, &taken), 20u);
  EXPECT_EQ(taken.size(), 20u);
  EXPECT_EQ(node.present_pages(), 30u);
  EXPECT_EQ(node.free_pages(), 30u);
}

TEST(NumaNode, BalloonTakeLimitedByFreePages) {
  NumaNode node(0, 0, 100, 50);
  for (int i = 0; i < 45; ++i) {
    node.AllocPage();
  }
  std::vector<PageNum> taken;
  EXPECT_EQ(node.BalloonTake(20, &taken), 5u) << "only free pages can inflate";
  EXPECT_EQ(node.present_pages(), 45u);
}

TEST(NumaNode, BalloonReturnGrowsPresent) {
  NumaNode node(0, 0, 100, 50);
  std::vector<PageNum> taken;
  node.BalloonTake(30, &taken);
  node.BalloonReturn(taken);
  EXPECT_EQ(node.present_pages(), 50u);
  EXPECT_EQ(node.free_pages(), 50u);
}

TEST(NumaNode, Watermarks) {
  NumaNode node(0, 0, 6400, 6400);
  EXPECT_EQ(node.watermark_min(), 100u);
  EXPECT_EQ(node.watermark_low(), 200u);
  EXPECT_EQ(node.watermark_high(), 400u);
  EXPECT_FALSE(node.BelowLow());
  for (int i = 0; i < 6300; ++i) {
    node.AllocPage();
  }
  EXPECT_TRUE(node.BelowLow());
  EXPECT_FALSE(node.BelowMin());
}

// ---- AddressSpace ----------------------------------------------------------

TEST(AddressSpace, InitialLayout) {
  AddressSpace space;
  ASSERT_EQ(space.vmas().size(), 4u);  // code, data, stack, empty heap.
  EXPECT_EQ(space.brk(), AddressSpace::kStartBrk);
  uint64_t tracked = space.TrackedBytes();
  EXPECT_EQ(tracked, 0u) << "heap empty, no mmap yet";
}

TEST(AddressSpace, SbrkGrowsHeapUpward) {
  AddressSpace space;
  const uint64_t a = space.Sbrk(10 * kPageSize);
  EXPECT_EQ(a, AddressSpace::kStartBrk);
  const uint64_t b = space.Sbrk(5 * kPageSize);
  EXPECT_EQ(b, a + 10 * kPageSize);
  EXPECT_EQ(space.TrackedBytes(), 15 * kPageSize);
  const Vma* vma = space.FindVma(a);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->kind, VmaKind::kHeap);
  EXPECT_TRUE(vma->tracked);
}

TEST(AddressSpace, SbrkRoundsToPages) {
  AddressSpace space;
  space.Sbrk(1);
  EXPECT_EQ(space.brk(), AddressSpace::kStartBrk + kPageSize);
}

TEST(AddressSpace, MmapGrowsDownward) {
  AddressSpace space;
  const uint64_t a = space.Mmap(16 * kPageSize);
  const uint64_t b = space.Mmap(kPageSize);
  EXPECT_LT(b, a);
  EXPECT_LT(a + 16 * kPageSize, AddressSpace::kMmapBase + 1);
  const Vma* vma = space.FindVma(b);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->kind, VmaKind::kMmap);
  EXPECT_TRUE(vma->tracked);
}

TEST(AddressSpace, UntrackedSegmentsExcluded) {
  AddressSpace space;
  const Vma* code = space.FindVma(AddressSpace::kCodeStart);
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(code->kind, VmaKind::kCode);
  EXPECT_FALSE(code->tracked);
  const Vma* stack = space.FindVma(AddressSpace::kStackTop - kPageSize);
  ASSERT_NE(stack, nullptr);
  EXPECT_EQ(stack->kind, VmaKind::kStack);
  EXPECT_FALSE(stack->tracked);
}

TEST(AddressSpace, FindVmaMissReturnsNull) {
  AddressSpace space;
  EXPECT_EQ(space.FindVma(0x1000), nullptr);
}

// ---- GuestKernel -----------------------------------------------------------

GuestKernelConfig SmallKernelConfig(uint64_t fmem = 64, uint64_t smem = 256) {
  GuestKernelConfig config;
  config.num_nodes = 2;
  config.node_span_pages = {fmem + smem, fmem + smem};
  config.node_present_pages = {fmem, smem};
  return config;
}

TEST(GuestKernel, NodeLayout) {
  GuestKernel kernel(SmallKernelConfig());
  EXPECT_EQ(kernel.num_nodes(), 2);
  EXPECT_EQ(kernel.node(0).gpa_base(), 0u);
  EXPECT_EQ(kernel.node(1).gpa_base(), 320u);
  EXPECT_EQ(kernel.NodeOfGpa(5), 0);
  EXPECT_EQ(kernel.NodeOfGpa(321), 1);
  EXPECT_EQ(kernel.NodeOfGpa(100000), -1);
}

TEST(GuestKernel, FaultAllocatesFmemFirst) {
  GuestKernel kernel(SmallKernelConfig());
  GuestProcess& proc = kernel.CreateProcess();
  double cost = 0.0;
  for (int i = 0; i < 64; ++i) {
    auto gpa = kernel.HandleFault(proc, static_cast<PageNum>(1000 + i), &cost);
    ASSERT_TRUE(gpa.has_value());
    EXPECT_EQ(kernel.NodeOfGpa(*gpa), 0) << "fault " << i;
  }
  // FMEM node exhausted: falls back to SMEM.
  auto gpa = kernel.HandleFault(proc, 2000, &cost);
  ASSERT_TRUE(gpa.has_value());
  EXPECT_EQ(kernel.NodeOfGpa(*gpa), 1);
  EXPECT_EQ(kernel.stats().fallback_allocs, 1u);
  EXPECT_GT(cost, 0.0);
}

TEST(GuestKernel, FaultMapsGptAndRmap) {
  GuestKernel kernel(SmallKernelConfig());
  GuestProcess& proc = kernel.CreateProcess();
  double cost = 0.0;
  auto gpa = kernel.HandleFault(proc, 777, &cost);
  ASSERT_TRUE(gpa.has_value());
  EXPECT_EQ(proc.gpt().Lookup(777).target, *gpa);
  const RmapEntry* rmap = kernel.Rmap(*gpa);
  ASSERT_NE(rmap, nullptr);
  EXPECT_EQ(rmap->pid, proc.pid());
  EXPECT_EQ(rmap->vpn, 777u);
  EXPECT_EQ(kernel.mapped_pages(), 1u);
}

TEST(GuestKernel, OomWhenAllNodesDry) {
  GuestKernel kernel(SmallKernelConfig(2, 2));
  GuestProcess& proc = kernel.CreateProcess();
  double cost = 0.0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(kernel.HandleFault(proc, static_cast<PageNum>(i), &cost).has_value());
  }
  EXPECT_FALSE(kernel.HandleFault(proc, 99, &cost).has_value());
  EXPECT_EQ(kernel.stats().oom_failures, 1u);
}

TEST(GuestKernel, OomPathChargesZonelistWalk) {
  // Regression: the failed fallback walk used to charge nothing, making an
  // OOM'd allocation cheaper than a successful one.
  GuestKernel kernel(SmallKernelConfig(2, 2));
  GuestProcess& proc = kernel.CreateProcess();
  double cost = 0.0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(kernel.HandleFault(proc, static_cast<PageNum>(i), &cost).has_value());
  }
  double oom_cost = 0.0;
  EXPECT_FALSE(kernel.AllocGpa(0, /*allow_fallback=*/true, &oom_cost).has_value());
  EXPECT_GT(oom_cost, 0.0) << "the zonelist walk happened; it must be charged";
  // Without fallback there is no walk, so no charge.
  double direct_cost = 0.0;
  EXPECT_FALSE(kernel.AllocGpa(0, /*allow_fallback=*/false, &direct_cost).has_value());
  EXPECT_EQ(direct_cost, 0.0);
}

TEST(GuestKernel, OnPageMovedUpdatesRmap) {
  GuestKernel kernel(SmallKernelConfig());
  GuestProcess& proc = kernel.CreateProcess();
  double cost = 0.0;
  auto old_gpa = kernel.HandleFault(proc, 10, &cost);
  auto new_gpa = kernel.AllocGpa(1, false, &cost);
  ASSERT_TRUE(new_gpa.has_value());
  kernel.OnPageMoved(*old_gpa, *new_gpa);
  EXPECT_EQ(kernel.Rmap(*old_gpa), nullptr);
  const RmapEntry* rmap = kernel.Rmap(*new_gpa);
  ASSERT_NE(rmap, nullptr);
  EXPECT_EQ(rmap->vpn, 10u);
}

TEST(GuestKernel, OnPagesSwappedExchangesOwners) {
  GuestKernel kernel(SmallKernelConfig());
  GuestProcess& proc = kernel.CreateProcess();
  double cost = 0.0;
  auto gpa_a = kernel.HandleFault(proc, 1, &cost);
  auto gpa_b = kernel.HandleFault(proc, 2, &cost);
  kernel.OnPagesSwapped(*gpa_a, *gpa_b);
  EXPECT_EQ(kernel.Rmap(*gpa_a)->vpn, 2u);
  EXPECT_EQ(kernel.Rmap(*gpa_b)->vpn, 1u);
}

TEST(GuestKernel, PickVictimFifoOrder) {
  GuestKernel kernel(SmallKernelConfig());
  GuestProcess& proc = kernel.CreateProcess();
  double cost = 0.0;
  auto first = kernel.HandleFault(proc, 100, &cost);
  kernel.HandleFault(proc, 101, &cost);
  auto victim = kernel.PickVictim(0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, *first) << "oldest allocation demoted first";
}

TEST(GuestKernel, PickVictimSkipsFreedPages) {
  GuestKernel kernel(SmallKernelConfig());
  GuestProcess& proc = kernel.CreateProcess();
  double cost = 0.0;
  auto first = kernel.HandleFault(proc, 100, &cost);
  auto second = kernel.HandleFault(proc, 101, &cost);
  proc.gpt().Unmap(100);
  kernel.FreeGpa(*first);
  auto victim = kernel.PickVictim(0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, *second);
}

TEST(GuestKernel, PickVictimEmptyNode) {
  GuestKernel kernel(SmallKernelConfig());
  EXPECT_FALSE(kernel.PickVictim(0).has_value());
}

TEST(GuestKernel, ContextSwitchHooksCharge) {
  GuestKernel kernel(SmallKernelConfig());
  int calls = 0;
  kernel.RegisterContextSwitchHook([&](int vcpu, Nanos now) {
    EXPECT_EQ(vcpu, 3);
    EXPECT_EQ(now, 500u);
    ++calls;
    return 123.0;
  });
  kernel.RegisterContextSwitchHook([&](int, Nanos) { return 1.0; });
  EXPECT_DOUBLE_EQ(kernel.OnContextSwitch(3, 500), 124.0);
  EXPECT_EQ(calls, 1);
}

// ---- MpscChannel -----------------------------------------------------------

TEST(MpscChannel, PushPopSingleThread) {
  MpscChannel<int> ch(8);
  EXPECT_FALSE(ch.Pop().has_value());
  EXPECT_TRUE(ch.Push(1));
  EXPECT_TRUE(ch.Push(2));
  EXPECT_EQ(ch.Pop().value(), 1);
  EXPECT_EQ(ch.Pop().value(), 2);
  EXPECT_FALSE(ch.Pop().has_value());
}

TEST(MpscChannel, FullDropsAndCounts) {
  MpscChannel<int> ch(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ch.Push(i));
  }
  EXPECT_FALSE(ch.Push(99));
  EXPECT_EQ(ch.dropped(), 1u);
  ch.Pop();
  EXPECT_TRUE(ch.Push(100));
}

TEST(MpscChannel, PopBatch) {
  MpscChannel<int> ch(16);
  for (int i = 0; i < 10; ++i) {
    ch.Push(i);
  }
  std::vector<int> out;
  EXPECT_EQ(ch.PopBatch(&out, 6), 6u);
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(ch.PopBatch(&out, 100), 4u);
  EXPECT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(MpscChannel, MultiProducerStress) {
  MpscChannel<uint64_t> ch(1 << 14);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = (static_cast<uint64_t>(p) << 32) | i;
        while (!ch.Push(value)) {
        }
      }
    });
  }
  std::vector<uint64_t> per_producer_next(kProducers, 0);
  uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    auto v = ch.Pop();
    if (!v.has_value()) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(*v >> 32);
    const uint64_t seq = *v & 0xffffffff;
    // Per-producer FIFO ordering must hold.
    EXPECT_EQ(seq, per_producer_next[static_cast<size_t>(p)]);
    ++per_producer_next[static_cast<size_t>(p)];
    ++received;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(received, kProducers * kPerProducer);
}

}  // namespace
}  // namespace demeter
