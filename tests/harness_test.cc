#include <gtest/gtest.h>

#include "src/harness/machine.h"
#include "src/harness/table.h"

namespace demeter {
namespace {

MachineConfig SmallHost(int vms = 1) {
  MachineConfig config;
  // Host sized so each VM's FMEM node fits its share of DRAM.
  const uint64_t per_vm = 32 * kMiB;
  config.tiers = {TierSpec::LocalDram(per_vm * static_cast<uint64_t>(vms)),
                  TierSpec::Pmem(3 * per_vm * static_cast<uint64_t>(vms))};
  return config;
}

VmSetup SmallVm(PolicyKind policy, const std::string& workload = "gups") {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.fmem_ratio = 0.2;
  setup.vm.num_vcpus = 2;
  setup.workload = workload;
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = 800000;
  setup.policy = policy;
  setup.demeter.range.epoch_length = 10 * kMillisecond;
  setup.demeter.sample_period = 97;  // Scaled-down run: denser sampling.
  setup.demeter.range.split_threshold = 4.0;  // Margin scaled with sample rate.
  setup.policy_period = 15 * kMillisecond;
  return setup;
}

TEST(Machine, RunsToTransactionTarget) {
  Machine machine(SmallHost());
  const int i = machine.AddVm(SmallVm(PolicyKind::kStatic));
  machine.Run();
  const VmRunResult& result = machine.result(i);
  EXPECT_GE(result.transactions, 800000u);
  EXPECT_GT(result.elapsed_s, 0.0);
  EXPECT_GT(result.vm_stats.accesses, 1600000u);
  EXPECT_EQ(result.policy, "static");
  EXPECT_EQ(result.workload, "gups");
  EXPECT_FALSE(result.timeline.empty());
}

TEST(Machine, DeterministicResults) {
  double elapsed[2];
  for (int run = 0; run < 2; ++run) {
    Machine machine(SmallHost());
    const int i = machine.AddVm(SmallVm(PolicyKind::kDemeter));
    machine.Run();
    elapsed[run] = machine.result(i).elapsed_s;
  }
  EXPECT_DOUBLE_EQ(elapsed[0], elapsed[1]);
}

TEST(Machine, DemeterBeatsStaticOnGups) {
  // The headline sanity check: with the hot set born in SMEM, Demeter must
  // outperform no-management by promoting it into FMEM.
  Machine static_machine(SmallHost());
  const int s = static_machine.AddVm(SmallVm(PolicyKind::kStatic));
  static_machine.Run();

  Machine demeter_machine(SmallHost());
  const int d = demeter_machine.AddVm(SmallVm(PolicyKind::kDemeter));
  demeter_machine.Run();

  const double static_s = static_machine.result(s).elapsed_s;
  const double demeter_s = demeter_machine.result(d).elapsed_s;
  EXPECT_LT(demeter_s, static_s * 0.9)
      << "Demeter should be >10% faster (static=" << static_s << "s demeter=" << demeter_s << "s)";
  // And the FMEM hit fraction must be visibly higher.
  EXPECT_GT(demeter_machine.result(d).fmem_access_fraction,
            static_machine.result(s).fmem_access_fraction + 0.1);
}

TEST(Machine, GuestPoliciesAvoidFullFlushes) {
  Machine machine(SmallHost());
  const int i = machine.AddVm(SmallVm(PolicyKind::kDemeter));
  machine.Run();
  EXPECT_EQ(machine.result(i).tlb.full_flushes, 0u);
  EXPECT_GT(machine.result(i).tlb.single_flushes, 0u);
}

TEST(Machine, HypervisorPolicyFullFlushes) {
  Machine machine(SmallHost());
  const int i = machine.AddVm(SmallVm(PolicyKind::kHTpp));
  machine.Run();
  EXPECT_GT(machine.result(i).tlb.full_flushes, 0u) << "invept per MMU-notifier scan";
}

TEST(Machine, MultiVmAllFinish) {
  Machine machine(SmallHost(3));
  for (int v = 0; v < 3; ++v) {
    machine.AddVm(SmallVm(PolicyKind::kTpp));
  }
  machine.Run();
  for (int v = 0; v < 3; ++v) {
    EXPECT_GE(machine.result(v).transactions, 800000u);
  }
  EXPECT_GT(machine.TotalMgmtCores(), 0.0);
  EXPECT_GT(machine.MeanElapsedSeconds(), 0.0);
}

TEST(Machine, DemeterBalloonProvisioningMatchesStaticSizes) {
  Machine machine(SmallHost());
  VmSetup setup = SmallVm(PolicyKind::kStatic);
  setup.provision = ProvisionMode::kDemeterBalloon;
  const int i = machine.AddVm(setup);
  machine.Run();
  Vm& vm = machine.vm(i);
  EXPECT_EQ(vm.kernel().node(0).present_pages(), setup.vm.fmem_pages());
  EXPECT_EQ(vm.kernel().node(1).present_pages(), setup.vm.smem_pages());
  EXPECT_GE(machine.result(i).transactions, 800000u);
}

TEST(Machine, VirtioBalloonUnderProvisionsFmem) {
  Machine machine(SmallHost());
  VmSetup setup = SmallVm(PolicyKind::kStatic);
  setup.provision = ProvisionMode::kVirtioBalloon;
  const int i = machine.AddVm(setup);
  machine.Run();
  Vm& vm = machine.vm(i);
  // Tier-blind inflation ate FMEM: far below the intended 20% share.
  EXPECT_LT(vm.kernel().node(0).present_pages(), setup.vm.fmem_pages() / 2);
}

TEST(Machine, VirtioBalloonSlowerThanDemeterBalloon) {
  double elapsed[2];
  const ProvisionMode modes[2] = {ProvisionMode::kVirtioBalloon, ProvisionMode::kDemeterBalloon};
  for (int m = 0; m < 2; ++m) {
    Machine machine(SmallHost());
    VmSetup setup = SmallVm(PolicyKind::kDemeter);
    setup.provision = modes[m];
    const int i = machine.AddVm(setup);
    machine.Run();
    elapsed[m] = machine.result(i).elapsed_s;
  }
  EXPECT_GT(elapsed[0], elapsed[1] * 1.1) << "FMEM under-provisioning must hurt";
}

TEST(Machine, SiloLatencyPercentilesPopulated) {
  Machine machine(SmallHost());
  VmSetup setup = SmallVm(PolicyKind::kDemeter, "silo");
  setup.target_transactions = 20000;
  const int i = machine.AddVm(setup);
  machine.Run();
  const Histogram& lat = machine.result(i).txn_latency_ns;
  EXPECT_GE(lat.count(), 20000u);
  EXPECT_GT(lat.Percentile(99), lat.Percentile(50));
}

TEST(Machine, MetricsRegistryPopulatedAfterRun) {
  MachineConfig config = SmallHost();
  Machine machine(config);
  const int i = machine.AddVm(SmallVm(PolicyKind::kDemeter));
  machine.Run();

  const MetricSnapshot snap = machine.SnapshotMetrics();
  // Registry values are views over the same cells the legacy accessors read.
  EXPECT_EQ(snap.CounterValue("vm0/stats/accesses"), machine.result(i).vm_stats.accesses);
  EXPECT_EQ(snap.CounterValue("vm0/tlb/misses"), machine.result(i).tlb.misses);
  EXPECT_GT(snap.CounterValue("vm0/vcpu0/tlb/hits"), 0u);
  EXPECT_GT(snap.CounterValue("vm0/vcpu0/pebs/events_counted"), 0u);
  EXPECT_GT(snap.CounterValue("vm0/policy/epochs_run"), 0u);
  EXPECT_GT(snap.CounterValue("vm0/mgmt/total_ns"), 0u);
  EXPECT_GT(snap.CounterValue("host/hyper/ept_populates"), 0u);
  const MetricSample* walk = snap.Find("vm0/mmu/walk_cost_ns");
  ASSERT_NE(walk, nullptr);
  EXPECT_GT(walk->distribution.count, 0u);

  // Per-VM result snapshots are the vm0/ slice with the prefix stripped.
  EXPECT_EQ(machine.result(i).metrics.CounterValue("stats/accesses"),
            machine.result(i).vm_stats.accesses);
}

TEST(Machine, TraceCaptureRecordsEventsWithoutChangingResults) {
  double elapsed[2];
  size_t events = 0;
  for (int pass = 0; pass < 2; ++pass) {
    MachineConfig config = SmallHost();
    config.capture_trace = pass == 1;
    Machine machine(config);
    const int i = machine.AddVm(SmallVm(PolicyKind::kDemeter));
    machine.Run();
    elapsed[pass] = machine.result(i).elapsed_s;
    events = machine.TakeTrace().size();
  }
  // Tracing is pure observability: identical simulation either way.
  EXPECT_DOUBLE_EQ(elapsed[0], elapsed[1]);
  EXPECT_GT(events, 0u) << "enabled tracer should have captured migration/PMI events";
}

TEST(Machine, LongHorizonClockKeepsSubUlpCosts) {
  // At a boot time of 2^57 ns the double ulp is 32 ns: a naive double vCPU
  // clock rounds every ~50 ns op cost to a multiple of 32, systematically
  // drifting virtual time (the same cost always rounds the same way). The
  // compensated SimClock must reproduce the boot_at=0 run: identical access
  // and transaction counts, and elapsed time within rounding noise instead
  // of milliseconds of bias.
  uint64_t accesses[2];
  uint64_t transactions[2];
  double elapsed[2];
  const Nanos far_future = Nanos{1} << 57;
  for (int pass = 0; pass < 2; ++pass) {
    Machine machine(SmallHost());
    VmSetup setup = SmallVm(PolicyKind::kStatic);
    setup.target_transactions = 100000;
    setup.boot_at = pass == 0 ? 0 : far_future;
    const int i = machine.AddVm(setup);
    machine.Run();
    accesses[pass] = machine.result(i).vm_stats.accesses;
    transactions[pass] = machine.result(i).transactions;
    elapsed[pass] = machine.result(i).elapsed_s;
  }
  EXPECT_EQ(transactions[0], transactions[1]);
  EXPECT_EQ(accesses[0], accesses[1]);
  // 32 ns reads at 2^57 bound the per-comparison error; over this run the
  // compensated clock stays within microseconds. The naive accumulator was
  // off by milliseconds here.
  EXPECT_NEAR(elapsed[0], elapsed[1], 1e-4);
}

TEST(Machine, TimelineGrowthCappedUnderPathologicalBucketing) {
  // A 1 ns timeline bucket with a stall schedule used to resize the
  // timeline to one slot per elapsed nanosecond — hundreds of millions of
  // entries. Growth must stop at kMaxTimelineBuckets, with every overflow
  // transaction accounted in the final bucket.
  MachineConfig config = SmallHost();
  const auto plan = FaultPlan::Parse("stall=5ms/20ms");
  ASSERT_TRUE(plan.has_value());
  config.faults = *plan;
  Machine machine(config);
  VmSetup setup = SmallVm(PolicyKind::kStatic);
  setup.target_transactions = 50000;
  setup.timeline_bucket = 1;  // 1 ns: pathological.
  const int i = machine.AddVm(setup);
  machine.Run();
  const VmRunResult& result = machine.result(i);
  EXPECT_LE(result.timeline.size(), kMaxTimelineBuckets);
  uint64_t sum = 0;
  for (const uint64_t b : result.timeline) {
    sum += b;
  }
  EXPECT_EQ(sum, result.transactions);
  // The run outlives the cap by orders of magnitude, so the final bucket
  // must actually have absorbed overflow.
  ASSERT_FALSE(result.timeline.empty());
  EXPECT_GT(result.timeline.back(), 1u);
}

TEST(Machine, PolicyNamesRoundTrip) {
  for (PolicyKind kind : {PolicyKind::kStatic, PolicyKind::kDemeter, PolicyKind::kTpp,
                          PolicyKind::kHTpp, PolicyKind::kMemtis, PolicyKind::kNomad}) {
    EXPECT_EQ(PolicyKindFromName(PolicyKindName(kind)), kind);
  }
  EXPECT_DEATH(PolicyKindFromName("bogus"), "unknown policy");
}

TEST(TablePrinterTest, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{42}), "42");
}

}  // namespace
}  // namespace demeter
