#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <set>
#include <vector>

#include "src/base/units.h"
#include "src/mem/host_memory.h"
#include "src/mem/tier.h"

namespace demeter {
namespace {

HostMemory MakeTwoTier(uint64_t fmem_bytes = 16 * kMiB, uint64_t smem_bytes = 64 * kMiB) {
  return HostMemory({TierSpec::LocalDram(fmem_bytes), TierSpec::Pmem(smem_bytes)});
}

TEST(TierSpec, Table2Defaults) {
  const TierSpec dram = TierSpec::LocalDram(kGiB);
  EXPECT_DOUBLE_EQ(dram.read_latency_ns, 68.7);
  EXPECT_DOUBLE_EQ(dram.read_bw_mbps, 88156.5);

  const TierSpec remote = TierSpec::RemoteDram(kGiB);
  EXPECT_DOUBLE_EQ(remote.read_latency_ns, 121.9);
  EXPECT_DOUBLE_EQ(remote.read_bw_mbps, 53533.8);

  const TierSpec pmem = TierSpec::Pmem(kGiB);
  EXPECT_DOUBLE_EQ(pmem.read_latency_ns, 176.6);
  EXPECT_DOUBLE_EQ(pmem.read_bw_mbps, 21414.5);
  // Asymmetric writes.
  EXPECT_GT(pmem.write_latency_ns, pmem.read_latency_ns);
  EXPECT_LT(pmem.write_bw_mbps, pmem.read_bw_mbps);
}

TEST(TierSpec, CapacityPages) {
  EXPECT_EQ(TierSpec::LocalDram(kGiB).capacity_pages(), kGiB / kPageSize);
}

TEST(MemoryTier, UncontendedLatencyNearBase) {
  MemoryTier tier(TierSpec::LocalDram(kGiB));
  const double cost = tier.AccessCost(0, 64, /*is_write=*/false);
  EXPECT_GE(cost, 68.7);
  EXPECT_LT(cost, 72.0);  // 64B service time is under a nanosecond.
}

TEST(MemoryTier, BandwidthContentionStretchesLatency) {
  MemoryTier tier(TierSpec::Pmem(kGiB));
  // Saturate the 1 ms window: thousands of page writes push utilization to
  // the cap and inflate latency by the queueing factor.
  double last = 0.0;
  for (int i = 0; i < 20000; ++i) {
    last = tier.AccessCost(0, kPageSize, /*is_write=*/true);
  }
  const double single = MemoryTier(TierSpec::Pmem(kGiB)).AccessCost(0, kPageSize, true);
  EXPECT_GT(last, single * 5);
  EXPECT_GT(tier.Utilization(), 0.9);
}

TEST(MemoryTier, ContentionDrainsOverTime) {
  MemoryTier tier(TierSpec::Pmem(kGiB));
  for (int i = 0; i < 20000; ++i) {
    tier.AccessCost(0, kPageSize, true);
  }
  // Two windows later the load estimate has aged out.
  const double later = tier.AccessCost(10 * MemoryTier::kWindowNs, 64, false);
  EXPECT_LT(later, 200.0);
  EXPECT_LT(tier.Utilization(), 0.01);
}

TEST(MemoryTier, SkewedTimestampsDoNotExplodeLatency) {
  // Accesses stamped slightly in the past (vCPU clock skew) must not pay
  // phantom queueing delays.
  MemoryTier tier(TierSpec::Pmem(kGiB));
  tier.AccessCost(5 * MemoryTier::kWindowNs, 64, false);
  const double behind = tier.AccessCost(2 * MemoryTier::kWindowNs, 64, false);
  EXPECT_LT(behind, 200.0);
}

TEST(MemoryTier, TracksBytes) {
  MemoryTier tier(TierSpec::LocalDram(kGiB));
  tier.AccessCost(0, 64, false);
  tier.AccessCost(0, kPageSize, true);
  EXPECT_EQ(tier.bytes_transferred(), 64 + kPageSize);
}

TEST(HostMemory, TierLayout) {
  HostMemory mem = MakeTwoTier();
  EXPECT_EQ(mem.num_tiers(), 2);
  EXPECT_EQ(mem.CapacityPages(kFmemTier), 16 * kMiB / kPageSize);
  EXPECT_EQ(mem.CapacityPages(kSmemTier), 64 * kMiB / kPageSize);
  EXPECT_EQ(mem.total_frames(), (16 + 64) * kMiB / kPageSize);
}

TEST(HostMemory, AllocateFromCorrectTier) {
  HostMemory mem = MakeTwoTier();
  const auto f = mem.Allocate(kFmemTier);
  const auto s = mem.Allocate(kSmemTier);
  ASSERT_TRUE(f.has_value());
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(mem.TierOf(*f), kFmemTier);
  EXPECT_EQ(mem.TierOf(*s), kSmemTier);
  EXPECT_NE(*f, *s);
}

TEST(HostMemory, ExhaustionReturnsNullopt) {
  HostMemory mem({TierSpec::LocalDram(4 * kPageSize), TierSpec::Pmem(4 * kPageSize)});
  std::vector<FrameId> frames;
  for (int i = 0; i < 4; ++i) {
    auto f = mem.Allocate(kFmemTier);
    ASSERT_TRUE(f.has_value());
    frames.push_back(*f);
  }
  EXPECT_FALSE(mem.Allocate(kFmemTier).has_value());
  // SMEM unaffected.
  EXPECT_TRUE(mem.Allocate(kSmemTier).has_value());
  mem.Free(frames[0]);
  EXPECT_TRUE(mem.Allocate(kFmemTier).has_value());
}

TEST(HostMemory, NoDuplicateAllocations) {
  HostMemory mem = MakeTwoTier(kMiB, kMiB);
  std::set<FrameId> seen;
  for (int t = 0; t < 2; ++t) {
    for (;;) {
      auto f = mem.Allocate(t);
      if (!f.has_value()) {
        break;
      }
      EXPECT_TRUE(seen.insert(*f).second) << "duplicate frame " << *f;
    }
  }
  EXPECT_EQ(seen.size(), mem.total_frames());
}

TEST(HostMemory, FreeCountsTrack) {
  HostMemory mem = MakeTwoTier(kMiB, kMiB);
  EXPECT_EQ(mem.FreePages(kFmemTier), 256u);
  EXPECT_EQ(mem.UsedPages(kFmemTier), 0u);
  auto f = mem.Allocate(kFmemTier);
  EXPECT_EQ(mem.FreePages(kFmemTier), 255u);
  EXPECT_EQ(mem.UsedPages(kFmemTier), 1u);
  mem.Free(*f);
  EXPECT_EQ(mem.FreePages(kFmemTier), 256u);
}

TEST(HostMemory, TokensPersistUntilFree) {
  HostMemory mem = MakeTwoTier(kMiB, kMiB);
  auto f = mem.Allocate(kSmemTier);
  EXPECT_EQ(mem.ReadToken(*f), 0u);
  mem.WriteToken(*f, 0xdeadbeef);
  EXPECT_EQ(mem.ReadToken(*f), 0xdeadbeefu);
  mem.Free(*f);
  auto f2 = mem.Allocate(kSmemTier);
  // Freed frames are scrubbed.
  EXPECT_EQ(mem.ReadToken(*f2), 0u);
}

TEST(HostMemory, DoubleFreeAborts) {
  HostMemory mem = MakeTwoTier(kMiB, kMiB);
  auto f = mem.Allocate(kFmemTier);
  mem.Free(*f);
  EXPECT_DEATH(mem.Free(*f), "double free");
}

TEST(MediaKindNames, AllNamed) {
  EXPECT_STREQ(MediaKindName(MediaKind::kLocalDram), "local-dram");
  EXPECT_STREQ(MediaKindName(MediaKind::kRemoteDram), "remote-dram(cxl)");
  EXPECT_STREQ(MediaKindName(MediaKind::kPmem), "pmem");
  EXPECT_STREQ(MediaKindName(MediaKind::kZswap), "zswap");
}

TEST(TierSpec, ZswapIsSlowerThanEveryByteAddressableTier) {
  const TierSpec z = TierSpec::Zswap(kGiB);
  EXPECT_EQ(z.media, MediaKind::kZswap);
  // The compression pass dominates: well above PMem, well below the swap
  // device latencies SwapDevice adds on top.
  EXPECT_GT(z.read_latency_ns, TierSpec::Pmem(kGiB).read_latency_ns);
  EXPECT_GT(z.write_latency_ns, z.read_latency_ns);
  EXPECT_LT(z.read_bw_mbps, TierSpec::Pmem(kGiB).read_bw_mbps);
  EXPECT_EQ(z.capacity_pages(), kGiB / kPageSize);
}

TEST(HostMemory, ThreeTierLayout) {
  HostMemory mem({TierSpec::LocalDram(kMiB), TierSpec::Pmem(kMiB),
                  TierSpec::Zswap(2 * kMiB)});
  EXPECT_EQ(mem.num_tiers(), 3);
  EXPECT_EQ(mem.CapacityPages(kSwapTier), 2 * kMiB / kPageSize);
  auto f = mem.Allocate(kSwapTier);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(mem.TierOf(*f), kSwapTier);
  // Swap frames live above both DRAM tiers in the flat frame space.
  EXPECT_GE(*f, mem.CapacityPages(kFmemTier) + mem.CapacityPages(kSmemTier));
}

// Regression: a degenerate spec (zero bandwidth — e.g. a tiershrink carve
// that took a small tier to nothing) must yield slow-but-finite costs, never
// inf/NaN that would poison every downstream latency accumulator.
TEST(MemoryTier, ZeroBandwidthSpecStaysFinite) {
  TierSpec spec = TierSpec::Pmem(kGiB);
  spec.read_bw_mbps = 0.0;
  spec.write_bw_mbps = 0.0;
  MemoryTier tier(spec);
  const double cost = tier.AccessCost(0, kPageSize, /*is_write=*/true);
  EXPECT_TRUE(std::isfinite(cost));
  EXPECT_GT(cost, 0.0);
  // Clamped to the bandwidth floor: a page takes ~kPageSize/(1 MB/s) = ~4 ms,
  // times at most the capped queueing factor.
  EXPECT_LT(cost, 1e9);
  EXPECT_TRUE(std::isfinite(tier.Utilization()));
}

// Regression: with ~zero window capacity, any traffic pins utilization at
// the cap instead of dividing by ~zero.
TEST(MemoryTier, ZeroCapacitySaturatesUtilization) {
  TierSpec spec = TierSpec::LocalDram(kGiB);
  spec.read_bw_mbps = 0.0;
  spec.write_bw_mbps = 0.0;
  MemoryTier tier(spec);
  EXPECT_DOUBLE_EQ(tier.Utilization(), 0.0);  // No traffic yet: idle.
  tier.AccessCost(0, 64, /*is_write=*/false);
  EXPECT_DOUBLE_EQ(tier.Utilization(), MemoryTier::kMaxUtilization);
}

}  // namespace
}  // namespace demeter
