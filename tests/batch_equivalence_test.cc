// Batched-vs-scalar equivalence: Machine's batched execution path
// (Vm::ExecuteBatch with same-page run coalescing, chunk horizons, and the
// SoA TLB probe) must be a pure execution-strategy change. For every
// workload generator, fault-free and faulted, two- and three-tier, the
// full metric registry — TLB hits/misses/flushes, walk costs, tier access
// counters, fault injections, swap traffic, PEBS/PMI counts, policy
// migrations — and every per-VM result field must be byte-identical to the
// legacy one-ExecuteAccess-per-op path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/harness/machine.h"

namespace demeter {
namespace {

struct RunOutput {
  uint64_t transactions = 0;
  double elapsed_s = 0.0;
  double fmem_access_fraction = 0.0;
  std::vector<uint64_t> timeline;
  std::string metrics_json;  // Full machine registry, stable-ordered.
};

struct RunSpec {
  std::string workload = "gups";
  PolicyKind policy = PolicyKind::kStatic;
  std::string fault_spec;
  bool three_tier = false;
  uint64_t target_transactions = 60000;
};

RunOutput RunOnce(const RunSpec& spec, bool batched) {
  MachineConfig host;
  if (spec.three_tier) {
    // FMEM + SMEM deliberately smaller than the footprint so EPT populates
    // spill into the far swap tier and accesses take the swap-in path.
    host.tiers = {TierSpec::LocalDram(4 * kMiB), TierSpec::Pmem(12 * kMiB),
                  TierSpec::Zswap(64 * kMiB)};
  } else {
    host.tiers = {TierSpec::LocalDram(10 * kMiB), TierSpec::Pmem(64 * kMiB)};
  }
  host.seed = 42;
  host.batched_execution = batched;
  if (!spec.fault_spec.empty()) {
    const auto plan = FaultPlan::Parse(spec.fault_spec);
    EXPECT_TRUE(plan.has_value()) << spec.fault_spec;
    host.faults = *plan;
  }
  Machine machine(host);
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.num_vcpus = 2;
  setup.workload = spec.workload;
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = spec.target_transactions;
  setup.policy = spec.policy;
  setup.policy_period = 15 * kMillisecond;
  setup.demeter.range.epoch_length = 10 * kMillisecond;
  setup.demeter.range.split_threshold = 4.0;
  setup.demeter.sample_period = 97;
  const int i = machine.AddVm(setup);
  machine.Run();

  RunOutput out;
  const VmRunResult& r = machine.result(i);
  out.transactions = r.transactions;
  out.elapsed_s = r.elapsed_s;
  out.fmem_access_fraction = r.fmem_access_fraction;
  out.timeline = r.timeline;
  out.metrics_json = machine.SnapshotMetrics().ToJson();
  return out;
}

void ExpectIdentical(const RunSpec& spec) {
  SCOPED_TRACE(spec.workload + (spec.fault_spec.empty() ? "" : " faults=" + spec.fault_spec) +
               (spec.three_tier ? " three-tier" : ""));
  const RunOutput scalar = RunOnce(spec, /*batched=*/false);
  const RunOutput batched = RunOnce(spec, /*batched=*/true);
  EXPECT_EQ(scalar.transactions, batched.transactions);
  // Bit-identical, not approximately equal: the batched path must perform
  // the exact same floating-point accumulations in the exact same order.
  EXPECT_EQ(scalar.elapsed_s, batched.elapsed_s);
  EXPECT_EQ(scalar.fmem_access_fraction, batched.fmem_access_fraction);
  EXPECT_EQ(scalar.timeline, batched.timeline);
  EXPECT_EQ(scalar.metrics_json, batched.metrics_json);
}

// Every workload generator, fault-free. Access patterns span uniform-random
// (gups), skewed (gups-hot), pointer-chasing (btree, graph500), scans with
// high run-length (bwaves, liblinear) and transactional mixes (silo) — the
// run-coalescing memo fires at very different rates across these.
class BatchEquivalenceWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchEquivalenceWorkloads, ScalarAndBatchedByteIdentical) {
  RunSpec spec;
  spec.workload = GetParam();
  ExpectIdentical(spec);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BatchEquivalenceWorkloads,
                         ::testing::Values("gups", "gups-hot", "btree", "silo", "bwaves",
                                           "xsbench", "graph500", "pagerank", "liblinear"));

// An active policy migrates pages mid-run (PMIs, shootdowns, full flushes),
// exercising the memo-invalidation paths.
TEST(BatchEquivalence, DemeterPolicy) {
  RunSpec spec;
  spec.policy = PolicyKind::kDemeter;
  ExpectIdentical(spec);
}

TEST(BatchEquivalence, SequentialWorkloadWithPolicy) {
  RunSpec spec;
  spec.workload = "bwaves";
  spec.policy = PolicyKind::kDemeter;
  ExpectIdentical(spec);
}

// Faulted: hwpoison on both tiers (per-access Bernoulli draws — the most
// order-sensitive site), stall windows, PEBS sample loss, migration
// failures. Counters include every vm0/fault/<site>_injected cell.
TEST(BatchEquivalence, FaultedPoisonAndStalls) {
  RunSpec spec;
  spec.policy = PolicyKind::kDemeter;
  spec.fault_spec = "poison=0.000002@0,poison=0.000002@1,stall=2ms/40ms,pebsdrop=0.01,migfail=0.05";
  ExpectIdentical(spec);
}

TEST(BatchEquivalence, FaultedSequential) {
  RunSpec spec;
  spec.workload = "bwaves";
  spec.fault_spec = "poison=0.000002@0,poison=0.000002@1";
  ExpectIdentical(spec);
}

// Three-tier host under memory pressure: swap-in retries and in-place far
// accesses (never memoized) flow through the batch path.
TEST(BatchEquivalence, ThreeTierSwapPressure) {
  RunSpec spec;
  spec.three_tier = true;
  spec.target_transactions = 30000;
  ExpectIdentical(spec);
}

TEST(BatchEquivalence, ThreeTierFaulted) {
  RunSpec spec;
  spec.three_tier = true;
  spec.fault_spec = "poison=0.000002@1,swapfail=0.01/1ms";
  spec.target_transactions = 30000;
  ExpectIdentical(spec);
}

}  // namespace
}  // namespace demeter
