#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/virtio/virtqueue.h"

namespace demeter {
namespace {

TEST(Virtqueue, DeliversAfterNotifyLatency) {
  EventQueue events;
  Virtqueue<int> q(&events);
  std::vector<std::pair<int, Nanos>> delivered;
  q.set_consumer([&](int msg, Nanos now) { delivered.emplace_back(msg, now); });

  const double cost = q.Push(7, 100);
  EXPECT_GT(cost, 0.0) << "kick must cost CPU";
  EXPECT_EQ(q.pending(), 1u);

  events.RunUntil(100 + q.costs().notify_latency_ns - 1);
  EXPECT_TRUE(delivered.empty());
  events.RunUntil(100 + q.costs().notify_latency_ns);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, 7);
  EXPECT_EQ(delivered[0].second, 100 + q.costs().notify_latency_ns);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(Virtqueue, PreservesFifoOrder) {
  EventQueue events;
  Virtqueue<int> q(&events);
  std::vector<int> seen;
  q.set_consumer([&](int msg, Nanos) { seen.push_back(msg); });
  for (int i = 0; i < 10; ++i) {
    q.Push(i, static_cast<Nanos>(i));
  }
  events.RunUntil(1000000);
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

TEST(Virtqueue, StatsCount) {
  EventQueue events;
  Virtqueue<std::string> q(&events);
  q.set_consumer([](std::string, Nanos) {});
  q.Push("a", 0);
  q.Push("b", 0);
  EXPECT_EQ(q.stats().pushed, 2u);
  EXPECT_EQ(q.stats().kicks, 2u);
  EXPECT_EQ(q.stats().delivered, 0u);
  events.RunUntil(1000000);
  EXPECT_EQ(q.stats().delivered, 2u);
}

TEST(Virtqueue, ConsumerCanPushToAnotherQueue) {
  // Round trip: request queue -> driver -> completion queue -> device.
  EventQueue events;
  Virtqueue<int> requests(&events);
  Virtqueue<int> completions(&events);
  int completed = -1;
  requests.set_consumer([&](int msg, Nanos now) { completions.Push(msg * 2, now); });
  completions.set_consumer([&](int msg, Nanos) { completed = msg; });
  requests.Push(21, 0);
  events.RunUntil(1000000);
  EXPECT_EQ(completed, 42);
}

TEST(Virtqueue, NoConsumerDropsSilently) {
  EventQueue events;
  Virtqueue<int> q(&events);
  q.Push(1, 0);
  events.RunUntil(1000000);
  EXPECT_EQ(q.stats().delivered, 1u);
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace demeter
