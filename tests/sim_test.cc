#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/cpu_account.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_clock.h"

namespace demeter {
namespace {

TEST(SimClock, MatchesNaiveDoubleSumBelowThreshold) {
  // Below the compensation threshold every read must be bit-identical to
  // the plain double accumulator it replaced — pinned benchmark horizons
  // all live here.
  SimClock clock;
  double naive = 0.0;
  const double costs[] = {53.6, 1.0, 68.7, 0.3, 9000.0, 150.0, 2.5};
  for (int i = 0; i < 100000; ++i) {
    const double c = costs[i % 7];
    clock += c;
    naive += c;
    ASSERT_EQ(clock.value(), naive);
    ASSERT_EQ(clock.now(), static_cast<Nanos>(naive));
  }
}

TEST(SimClock, CompensatesSubUlpCostsAtLongHorizons) {
  // At 2^53 ns the double ulp is 1 ns: adding 0.25 ns to a naive double
  // accumulator is a complete no-op, so virtual time stops advancing. The
  // compensated clock keeps every lost fraction.
  SimClock clock;
  clock = 9007199254740992.0;  // 2^53.
  const double naive_start = clock.value();
  double naive = naive_start;
  for (int i = 0; i < 8; ++i) {
    clock += 0.25;
    naive += 0.25;
  }
  EXPECT_EQ(naive, naive_start) << "naive sum should drop sub-ulp costs";
  EXPECT_EQ(clock.value(), naive_start + 2.0);
  EXPECT_EQ(clock.now(), static_cast<Nanos>(naive_start) + 2);
}

TEST(SimClock, SystematicRoundingBiasIsCompensated) {
  // Repeatedly adding a constant that rounds the same way every time biases
  // a naive sum systematically (not a random walk). Above the threshold the
  // compensated value must stay within one ulp of the exact sum.
  SimClock clock;
  clock = SimClock::kCompensateAboveNs;  // 2^48: ulp is 0.03125 ns.
  double naive = SimClock::kCompensateAboveNs;
  const double cost = 53.6;  // Not representable: every add rounds.
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    clock += cost;
    naive += cost;
  }
  const long double exact = static_cast<long double>(SimClock::kCompensateAboveNs) +
                            static_cast<long double>(cost) * n;
  const double compensated_err = std::abs(static_cast<double>(clock.value() - exact));
  const double naive_err = std::abs(static_cast<double>(naive - exact));
  EXPECT_LE(compensated_err, 0.04);  // Within ~1 ulp of 2^48.
  EXPECT_GT(naive_err, compensated_err);
}

TEST(SimClock, ReassignmentResetsCompensation) {
  SimClock clock;
  clock = 9007199254740992.0;  // 2^53.
  clock += 0.25;
  EXPECT_GT(clock.lost(), 0.0);
  clock = 100.0;  // Boot-time realignment.
  EXPECT_EQ(clock.lost(), 0.0);
  EXPECT_EQ(clock.value(), 100.0);
  clock += 0.5;
  EXPECT_EQ(clock.value(), 100.5);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&](Nanos) { order.push_back(3); });
  q.Schedule(10, [&](Nanos) { order.push_back(1); });
  q.Schedule(20, [&](Nanos) { order.push_back(2); });
  EXPECT_EQ(q.RunUntil(100), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i](Nanos) { order.push_back(i); });
  }
  q.RunUntil(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, RunUntilIsInclusive) {
  EventQueue q;
  int fired = 0;
  q.Schedule(100, [&](Nanos) { ++fired; });
  q.RunUntil(99);
  EXPECT_EQ(fired, 0);
  q.RunUntil(100);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void(Nanos)> tick = [&](Nanos now) {
    ++count;
    if (count < 5) {
      q.Schedule(now + 10, tick);
    }
  };
  q.Schedule(0, tick);
  q.RunUntil(1000);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, ChainedEventDueLaterDoesNotFire) {
  EventQueue q;
  int count = 0;
  q.Schedule(10, [&](Nanos now) {
    ++count;
    q.Schedule(now + 100, [&](Nanos) { ++count; });
  });
  q.RunUntil(50);
  EXPECT_EQ(count, 1);
  q.RunUntil(110);
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const uint64_t id = q.Schedule(10, [&](Nanos) { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  q.RunUntil(100);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(12345));
}

// Regression: Cancel on an id that had ALREADY FIRED used to return true,
// decrement the live count below reality (wedging empty()/size() and any
// loop keyed on them), and park the id in the cancelled list forever. It
// must be a reported no-op.
TEST(EventQueue, CancelAfterFireIsRejectedNoOp) {
  EventQueue q;
  int fired = 0;
  const uint64_t a = q.Schedule(10, [&](Nanos) { ++fired; });
  q.Schedule(20, [&](Nanos) { ++fired; });
  EXPECT_EQ(q.RunUntil(10), 1u);
  EXPECT_FALSE(q.Cancel(a)) << "id already fired";
  EXPECT_EQ(q.size(), 1u) << "live count corrupted by cancel-after-fire";
  EXPECT_EQ(q.RunUntil(100), 1u) << "surviving event must still fire";
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

// Regression: double-cancel used to double-decrement the live count (only a
// saturating guard kept it from wrapping, masking the loss of real events).
TEST(EventQueue, DoubleCancelIsRejected) {
  EventQueue q;
  const uint64_t a = q.Schedule(10, [](Nanos) {});
  q.Schedule(20, [](Nanos) {});
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.RunUntil(100), 1u);
}

TEST(EventQueue, CancelledIdsDoNotAccumulate) {
  EventQueue q;
  // Fire-then-cancel churn: every tombstone must be reclaimed at pop time,
  // and stale ids must never block or break later operations.
  for (int round = 0; round < 100; ++round) {
    const uint64_t id = q.Schedule(static_cast<Nanos>(round), [](Nanos) {});
    if (round % 2 == 0) {
      EXPECT_TRUE(q.Cancel(id));
    }
    q.RunUntil(static_cast<Nanos>(round));
    EXPECT_FALSE(q.Cancel(id)) << "cancelled-or-fired id accepted again";
    EXPECT_TRUE(q.empty());
  }
}

// The hot loop pops events by move; a callback whose captures are expensive
// to copy must not be copied between Schedule and the firing call.
TEST(EventQueue, CallbacksAreNotCopiedOnFire) {
  struct CopyCounter {
    int* copies;
    explicit CopyCounter(int* c) : copies(c) {}
    CopyCounter(const CopyCounter& o) : copies(o.copies) { ++*copies; }
    CopyCounter(CopyCounter&&) = default;
  };
  int copies = 0;
  int fired = 0;
  EventQueue q;
  q.Schedule(1, [counter = CopyCounter(&copies), &fired](Nanos) { ++fired; });
  // One copy is allowed when the lambda is wrapped into std::function at the
  // Schedule call boundary; none may happen afterwards.
  const int copies_after_schedule = copies;
  q.RunUntil(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(copies, copies_after_schedule) << "firing path copied the callback";
}

TEST(EventQueue, NextEventTime) {
  EventQueue q;
  EXPECT_EQ(q.NextEventTime(), EventQueue::kNoEvent);
  q.Schedule(77, [](Nanos) {});
  EXPECT_EQ(q.NextEventTime(), 77u);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  const uint64_t a = q.Schedule(1, [](Nanos) {});
  q.Schedule(2, [](Nanos) {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.RunUntil(10);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CallbackReceivesScheduledTime) {
  EventQueue q;
  Nanos seen = 0;
  q.Schedule(42, [&](Nanos now) { seen = now; });
  q.RunUntil(100);
  EXPECT_EQ(seen, 42u);
}

// The multi-lane queue must be order-equivalent to a single heap: the fire
// sequence is (when, global schedule order) regardless of which lane each
// event was scheduled on.
TEST(EventQueue, MultiLaneFiresInGlobalScheduleOrder) {
  EventQueue multi(4);
  EventQueue single;
  std::vector<int> multi_order;
  std::vector<int> single_order;
  const struct {
    int lane;
    Nanos when;
  } plan[] = {{3, 50}, {0, 10}, {2, 10}, {1, 30}, {0, 30}, {2, 30}, {3, 10}, {1, 50}};
  int tag = 0;
  for (const auto& p : plan) {
    multi.ScheduleOn(p.lane, p.when, [&multi_order, t = tag](Nanos) { multi_order.push_back(t); });
    single.Schedule(p.when, [&single_order, t = tag](Nanos) { single_order.push_back(t); });
    ++tag;
  }
  EXPECT_EQ(multi.RunUntil(100), 8u);
  EXPECT_EQ(single.RunUntil(100), 8u);
  EXPECT_EQ(multi_order, single_order);
  // Same time, different lanes: schedule order wins (tags 1, 2, 6 at t=10).
  EXPECT_EQ(multi_order[0], 1);
  EXPECT_EQ(multi_order[1], 2);
  EXPECT_EQ(multi_order[2], 6);
}

TEST(EventQueue, TakeFiredLanesReportsAndClears) {
  EventQueue q(4);
  q.ScheduleOn(0, 10, [](Nanos) {});
  q.ScheduleOn(2, 10, [](Nanos) {});
  q.ScheduleOn(3, 99, [](Nanos) {});
  q.RunUntil(20);
  EXPECT_EQ(q.TakeFiredLanes(), 0b0101u);  // Lanes 0 and 2 fired.
  EXPECT_EQ(q.TakeFiredLanes(), 0u) << "take must clear the mask";
  q.RunUntil(99);
  EXPECT_EQ(q.TakeFiredLanes(), 0b1000u);
}

TEST(EventQueue, MultiLaneCancelIsLaneAgnostic) {
  EventQueue q(3);
  int fired = 0;
  const uint64_t a = q.ScheduleOn(2, 10, [&](Nanos) { ++fired; });
  q.ScheduleOn(1, 20, [&](Nanos) { ++fired; });
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_EQ(q.RunUntil(100), 1u);
  EXPECT_EQ(fired, 1);
  // A cancelled lane top must not set that lane's fired bit.
  EXPECT_EQ(q.TakeFiredLanes(), 0b010u);
}

TEST(EventQueue, MultiLaneNextEventTimeSpansLanes) {
  EventQueue q(3);
  EXPECT_EQ(q.NextEventTime(), EventQueue::kNoEvent);
  q.ScheduleOn(2, 70, [](Nanos) {});
  EXPECT_EQ(q.NextEventTime(), 70u);
  q.ScheduleOn(1, 40, [](Nanos) {});
  EXPECT_EQ(q.NextEventTime(), 40u);
  q.RunUntil(40);
  EXPECT_EQ(q.NextEventTime(), 70u);
}

TEST(CpuAccount, ChargesPerStage) {
  CpuAccount acc;
  acc.Charge(TmmStage::kTracking, 100);
  acc.Charge(TmmStage::kTracking, 50);
  acc.Charge(TmmStage::kMigration, 25);
  EXPECT_EQ(acc.ForStage(TmmStage::kTracking), 150u);
  EXPECT_EQ(acc.ForStage(TmmStage::kMigration), 25u);
  EXPECT_EQ(acc.ForStage(TmmStage::kClassification), 0u);
  EXPECT_EQ(acc.Total(), 175u);
}

TEST(CpuAccount, CoresOver) {
  CpuAccount acc;
  acc.Charge(TmmStage::kOther, 500);
  EXPECT_DOUBLE_EQ(acc.CoresOver(1000), 0.5);
  EXPECT_DOUBLE_EQ(acc.CoresOver(0), 0.0);
}

TEST(CpuAccount, MergeAndClear) {
  CpuAccount a;
  CpuAccount b;
  a.Charge(TmmStage::kPmi, 10);
  b.Charge(TmmStage::kPmi, 20);
  b.Charge(TmmStage::kClassification, 5);
  a.Merge(b);
  EXPECT_EQ(a.ForStage(TmmStage::kPmi), 30u);
  EXPECT_EQ(a.ForStage(TmmStage::kClassification), 5u);
  a.Clear();
  EXPECT_EQ(a.Total(), 0u);
}

TEST(CpuAccount, StageNames) {
  EXPECT_STREQ(TmmStageName(TmmStage::kTracking), "tracking");
  EXPECT_STREQ(TmmStageName(TmmStage::kClassification), "classification");
  EXPECT_STREQ(TmmStageName(TmmStage::kMigration), "migration");
  EXPECT_STREQ(TmmStageName(TmmStage::kPmi), "pmi");
  EXPECT_STREQ(TmmStageName(TmmStage::kOther), "other");
}

}  // namespace
}  // namespace demeter
