#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/units.h"

namespace demeter {
namespace {

TEST(Units, PageMath) {
  EXPECT_EQ(PagesForBytes(0), 0u);
  EXPECT_EQ(PagesForBytes(1), 1u);
  EXPECT_EQ(PagesForBytes(kPageSize), 1u);
  EXPECT_EQ(PagesForBytes(kPageSize + 1), 2u);
  EXPECT_EQ(PageFloor(kPageSize + 123), kPageSize);
  EXPECT_EQ(PageCeil(kPageSize + 1), 2 * kPageSize);
  EXPECT_EQ(PageCeil(kPageSize), kPageSize);
  EXPECT_EQ(PageOf(2 * kPageSize + 5), 2u);
  EXPECT_EQ(AddrOfPage(3), 3 * kPageSize);
}

TEST(Units, HugePageConstants) {
  EXPECT_EQ(kHugePageSize, 2 * kMiB);
  EXPECT_EQ(kPagesPerHugePage, 512u);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 4093ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRangeRoughlyUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBelow(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ZipfInBounds) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.NextZipf(1000, 0.99), 1000u);
  }
  EXPECT_EQ(rng.NextZipf(1, 0.99), 0u);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng rng(5);
  const int kDraws = 50000;
  int in_top_decile = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextZipf(1000, 0.99) < 100) {
      ++in_top_decile;
    }
  }
  // Zipf(0.99): the top 10% of ranks should absorb well over half the draws.
  EXPECT_GT(in_top_decile, kDraws / 2);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  // Bucketed value is within one sub-bucket of the true value.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 100.0, 100.0 / Histogram::kSubBuckets + 1);
}

TEST(Histogram, PercentilesOrdered) {
  Histogram h;
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextBelow(1000000));
  }
  uint64_t prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(Histogram, UniformMedianNearMidpoint) {
  Histogram h;
  Rng rng(13);
  for (int i = 0; i < 200000; ++i) {
    h.Record(rng.NextBelow(1000000));
  }
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500000.0, 80000.0);
  EXPECT_NEAR(h.Mean(), 500000.0, 20000.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(Histogram, RecordNWeights) {
  Histogram h;
  h.RecordN(8, 99);
  h.RecordN(1 << 20, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.Percentile(50), 8u);
  EXPECT_GT(h.Percentile(100), 1000u);
}

TEST(Histogram, SubBucketShiftMatchesSubBuckets) {
  static_assert(1 << Histogram::kSubBucketShift == Histogram::kSubBuckets);
  EXPECT_EQ(1 << Histogram::kSubBucketShift, Histogram::kSubBuckets);
}

// Regression: Percentile used to return the raw bucket upper edge, which can
// exceed the largest recorded value (and p=0 returned a bucket edge above
// min). Queries must never leave [min, max].
TEST(Histogram, PercentileClampedToRecordedRange) {
  Histogram h;
  h.Record(100);
  // Single sample: every percentile is that sample.
  EXPECT_EQ(h.Percentile(0), 100u);
  EXPECT_EQ(h.Percentile(50), 100u);
  EXPECT_EQ(h.Percentile(100), 100u);
}

TEST(Histogram, PercentileZeroIsMin) {
  Histogram h;
  h.Record(7);
  h.Record(1000);
  EXPECT_EQ(h.Percentile(0), 7u);
}

TEST(Histogram, PercentileTwoExtremeSamples) {
  Histogram h;
  h.Record(7);
  h.Record(1000);
  // p=100 lands in 1000's bucket, whose upper edge (1023) is beyond the
  // recorded max; the clamp must report 1000.
  EXPECT_EQ(h.Percentile(100), 1000u);
  // Every percentile stays inside the recorded range.
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.9, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, 7u) << "p=" << p;
    EXPECT_LE(v, 1000u) << "p=" << p;
  }
}

// Regression: RecordN computed value * count in plain uint64 arithmetic, so
// large weighted records silently wrapped sum(); it now saturates.
TEST(Histogram, RecordNSaturatesSumNearUint64Max) {
  Histogram h;
  const uint64_t big = ~0ULL / 2 + 1;  // 2^63: big * 2 wraps to 0.
  h.RecordN(big, 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), ~0ULL) << "overflowing weighted sum must saturate, not wrap";
  EXPECT_EQ(h.max(), big);
  // Accumulation across calls saturates too.
  h.Record(1);
  EXPECT_EQ(h.sum(), ~0ULL);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, MergeSaturatesInsteadOfWrapping) {
  Histogram a;
  Histogram b;
  a.RecordN(~0ULL, 1);  // sum_ == UINT64_MAX already.
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), ~0ULL);
  EXPECT_EQ(a.max(), ~0ULL);
  EXPECT_EQ(a.min(), 1000u);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 0.001);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(GeometricMean({1.0, 1.0, 1.0}), 1.0, 1e-9);
}

TEST(Stats, LoessSmoothPreservesConstant) {
  std::vector<double> flat(50, 3.0);
  const auto out = LoessSmooth(flat, 5);
  ASSERT_EQ(out.size(), flat.size());
  for (double v : out) {
    EXPECT_NEAR(v, 3.0, 1e-9);
  }
}

TEST(Stats, LoessSmoothReducesNoise) {
  Rng rng(21);
  std::vector<double> noisy;
  for (int i = 0; i < 200; ++i) {
    noisy.push_back(100.0 + (rng.NextDouble() - 0.5) * 20.0);
  }
  const auto out = LoessSmooth(noisy, 10);
  RunningStat raw;
  RunningStat smooth;
  for (size_t i = 0; i < noisy.size(); ++i) {
    raw.Add(noisy[i]);
    smooth.Add(out[i]);
  }
  EXPECT_LT(smooth.StdDev(), raw.StdDev() * 0.6);
}

}  // namespace
}  // namespace demeter
