// src/fault: plan parsing, injector determinism, end-to-end injection
// through the harness, balloon resilience under drops, the Demeter
// degradation state machine, and the cross-layer invariant checker
// (including that it actually catches deliberate corruption).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/fault/invariant_checker.h"
#include "src/harness/machine.h"

namespace demeter {
namespace {

// ------------------------------------------------------------ FaultPlan spec

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  const auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->ToSpec(), "");
}

TEST(FaultPlanTest, FullSpecRoundTrips) {
  const std::string spec =
      "bdelay=0.1/200us,bdrop=0.05,stall=5ms/25ms,crash=50ms/100ms,"
      "vqcap=8,pebsdrop=0.25,migfail=0.1,tierex=0.02";
  std::string error;
  const auto plan = FaultPlan::Parse(spec, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_FALSE(plan->empty());
  EXPECT_DOUBLE_EQ(plan->balloon_delay_p, 0.1);
  EXPECT_EQ(plan->balloon_delay_ns, 200 * kMicrosecond);
  EXPECT_DOUBLE_EQ(plan->balloon_drop_p, 0.05);
  EXPECT_EQ(plan->stall_duration_ns, 5 * kMillisecond);
  EXPECT_EQ(plan->stall_period_ns, 25 * kMillisecond);
  EXPECT_EQ(plan->crash_duration_ns, 50 * kMillisecond);
  EXPECT_EQ(plan->crash_period_ns, 100 * kMillisecond);
  EXPECT_EQ(plan->vq_capacity, 8u);
  EXPECT_DOUBLE_EQ(plan->pebs_drop_p, 0.25);
  EXPECT_DOUBLE_EQ(plan->migration_fail_p, 0.1);
  EXPECT_DOUBLE_EQ(plan->tier_exhaust_p, 0.02);
  // Canonicalization is a fixed point: Parse(ToSpec()) == plan.
  const auto again = FaultPlan::Parse(plan->ToSpec(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(*again, *plan);
  EXPECT_EQ(again->ToSpec(), plan->ToSpec());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "nonsense",            // No key=value shape.
      "bogus=1",             // Unknown key.
      "bdrop=1.5",           // Probability out of range.
      "bdrop=x",             // Not a number.
      "bdelay=0.5",          // Missing the /duration half.
      "bdelay=0.5/0",        // Delay needs a non-zero duration.
      "stall=5ms",           // Missing the /period half.
      "stall=50ms/10ms",     // Duration longer than period.
      "crash=5ms/0",         // Zero period.
      "vqcap=abc",           // Not an integer.
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(FaultPlanTest, ProbabilityPerSite) {
  const auto plan = FaultPlan::Parse("bdrop=0.3,pebsdrop=0.7");
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kBalloonDrop), 0.3);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kPebsSampleLoss), 0.7);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kBalloonDelay), 0.0);
  // Window and capacity sites are not probability-driven.
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kGuestStall), 0.0);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kVirtqueueFull), 0.0);
}

// --------------------------------------------------------------- Injector

std::vector<bool> Draw(FaultInjector& injector, FaultSite site, int vm, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(injector.ShouldInject(site, vm));
  }
  return out;
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  const auto plan = FaultPlan::Parse("bdrop=0.5");
  FaultInjector a(*plan, 42);
  FaultInjector b(*plan, 42);
  EXPECT_EQ(Draw(a, FaultSite::kBalloonDrop, 0, 256), Draw(b, FaultSite::kBalloonDrop, 0, 256));
  FaultInjector c(*plan, 43);
  EXPECT_NE(Draw(a, FaultSite::kBalloonDrop, 0, 256), Draw(c, FaultSite::kBalloonDrop, 0, 256));
}

TEST(FaultInjectorTest, SitesDrawFromIndependentStreams) {
  // Adding a second fault kind to the plan must not perturb the first
  // site's decision stream, even when draws interleave.
  const auto only_drop = FaultPlan::Parse("bdrop=0.3");
  const auto both = FaultPlan::Parse("bdrop=0.3,pebsdrop=0.7");
  FaultInjector a(*only_drop, 42);
  FaultInjector b(*both, 42);
  std::vector<bool> a_drops;
  std::vector<bool> b_drops;
  for (int i = 0; i < 256; ++i) {
    a_drops.push_back(a.ShouldInject(FaultSite::kBalloonDrop, 0));
    b_drops.push_back(b.ShouldInject(FaultSite::kBalloonDrop, 0));
    (void)b.ShouldInject(FaultSite::kPebsSampleLoss, 0);  // Interleave.
  }
  EXPECT_EQ(a_drops, b_drops);
}

TEST(FaultInjectorTest, VmsDrawFromIndependentStreams) {
  const auto plan = FaultPlan::Parse("bdrop=0.5");
  FaultInjector injector(*plan, 42);
  EXPECT_NE(Draw(injector, FaultSite::kBalloonDrop, 0, 256),
            Draw(injector, FaultSite::kBalloonDrop, 1, 256));
}

TEST(FaultInjectorTest, CountsInjections) {
  const auto plan = FaultPlan::Parse("bdrop=1");
  FaultInjector injector(*plan, 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.ShouldInject(FaultSite::kBalloonDrop, 0));
  }
  EXPECT_EQ(injector.injected(FaultSite::kBalloonDrop, 0), 10u);
  EXPECT_EQ(injector.total_injected(FaultSite::kBalloonDrop), 10u);
  EXPECT_EQ(injector.injected(FaultSite::kBalloonDrop, 1), 0u);
}

TEST(FaultInjectorTest, WindowsArePureFunctionsOfTime) {
  const auto plan = FaultPlan::Parse("stall=5ms/20ms,crash=2ms/50ms");
  FaultInjector injector(*plan, 42);
  // Window k covers [k*period, k*period + duration) for k >= 1 — never t=0.
  EXPECT_FALSE(injector.InStallWindow(0));
  EXPECT_FALSE(injector.InStallWindow(3 * kMillisecond));
  EXPECT_TRUE(injector.InStallWindow(20 * kMillisecond));
  EXPECT_TRUE(injector.InStallWindow(25 * kMillisecond - 1));
  EXPECT_FALSE(injector.InStallWindow(25 * kMillisecond));
  EXPECT_TRUE(injector.InStallWindow(40 * kMillisecond));
  EXPECT_EQ(injector.StallWindowEnd(21 * kMillisecond), 25 * kMillisecond);
  EXPECT_FALSE(injector.InCrashWindow(0));
  EXPECT_TRUE(injector.InCrashWindow(50 * kMillisecond));
  EXPECT_FALSE(injector.InCrashWindow(52 * kMillisecond));
  EXPECT_EQ(injector.CrashWindowEnd(50 * kMillisecond), 52 * kMillisecond);
}

// ------------------------------------------------- End-to-end through Machine

MachineConfig FaultHost(const std::string& fault_spec, int vms = 1) {
  MachineConfig config;
  const uint64_t per_vm = 32 * kMiB;
  config.tiers = {TierSpec::LocalDram(10 * kMiB * static_cast<uint64_t>(vms)),
                  TierSpec::Pmem(3 * per_vm * static_cast<uint64_t>(vms))};
  std::string error;
  const auto plan = FaultPlan::Parse(fault_spec, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  config.faults = *plan;
  return config;
}

VmSetup FaultVm(PolicyKind policy) {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.fmem_ratio = 0.2;
  setup.vm.num_vcpus = 2;
  setup.workload = "gups";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = 150000;
  setup.policy = policy;
  setup.provision = ProvisionMode::kDemeterBalloon;
  setup.policy_period = 15 * kMillisecond;
  setup.demeter.range.epoch_length = 2 * kMillisecond;
  setup.demeter.range.split_threshold = 4.0;
  setup.demeter.sample_period = 97;
  return setup;
}

TEST(MachineFaultTest, EmptyPlanCreatesNoInjector) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  EXPECT_EQ(machine.fault_injector(), nullptr);
  // Fault-free runs expose no fault counters at all.
  EXPECT_EQ(machine.result(0).metrics.Find("fault/balloon_drop_injected"), nullptr);
}

TEST(MachineFaultTest, ProbabilitySitesInjectAndAreCounted) {
  // Balloon sites need high probabilities: a steady workload only issues a
  // handful of balloon requests (initial provisioning), so low-probability
  // draws can legitimately never fire there.
  Machine machine(
      FaultHost("bdelay=0.7/100us,bdrop=0.7,pebsdrop=0.25,migfail=0.2,tierex=0.05"));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  ASSERT_NE(machine.fault_injector(), nullptr);
  const MetricSnapshot& m = machine.result(0).metrics;
  EXPECT_GT(m.CounterValue("fault/balloon_delay_injected"), 0u);
  EXPECT_GT(m.CounterValue("fault/balloon_drop_injected"), 0u);
  EXPECT_GT(m.CounterValue("fault/pebs_sample_loss_injected"), 0u);
  EXPECT_GT(m.CounterValue("fault/migration_fail_injected"), 0u);
  EXPECT_GT(m.CounterValue("fault/tier_exhaustion_injected"), 0u);
  // Dropped balloon requests must have forced timeouts and retransmits.
  EXPECT_GT(m.CounterValue("balloon/timeouts"), 0u);
  EXPECT_GT(m.CounterValue("balloon/retries"), 0u);
}

TEST(MachineFaultTest, BalloonSurvivesHeavyDrops) {
  // With every other request lost, the retry/backoff machinery must still
  // converge provisioning (possibly short, never wedged).
  Machine machine(FaultHost("bdrop=0.5"));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  const VmRunResult& result = machine.result(0);
  EXPECT_GE(result.transactions, 150000u);
  EXPECT_GT(result.metrics.CounterValue("balloon/retries"), 0u);
  // Retries are bounded: every abandonment implies max_retries timeouts.
  EXPECT_LE(result.metrics.CounterValue("balloon/retries"),
            result.metrics.CounterValue("balloon/timeouts"));
}

TEST(MachineFaultTest, DegradationEntersAndRecovers) {
  // Crash the guest engine for 4 ms of every 10 ms with 1 ms epochs: the
  // watchdog must degrade during windows and re-delegate after them.
  MachineConfig host = FaultHost("crash=4ms/10ms");
  Machine machine(host);
  VmSetup setup = FaultVm(PolicyKind::kDemeter);
  setup.demeter.range.epoch_length = 1 * kMillisecond;
  setup.demeter.degradation.unresponsive_after = 2 * kMillisecond;
  setup.demeter.degradation.watchdog_period = 1 * kMillisecond;
  setup.target_transactions = 400000;
  machine.AddVm(setup);
  machine.Run();
  const MetricSnapshot& m = machine.result(0).metrics;
  EXPECT_GT(m.CounterValue("policy/degraded_entries"), 0u);
  EXPECT_GT(m.CounterValue("policy/recoveries"), 0u);
  EXPECT_GT(m.CounterValue("policy/epochs_deferred"), 0u);
  EXPECT_LE(m.CounterValue("policy/recoveries"), m.CounterValue("policy/degraded_entries"));
}

TEST(MachineFaultTest, NoFallbackAblationNeverDegrades) {
  MachineConfig host = FaultHost("crash=4ms/10ms");
  Machine machine(host);
  VmSetup setup = FaultVm(PolicyKind::kDemeter);
  setup.demeter.range.epoch_length = 1 * kMillisecond;
  setup.demeter.degradation.enabled = false;
  setup.target_transactions = 400000;
  machine.AddVm(setup);
  machine.Run();
  const MetricSnapshot& m = machine.result(0).metrics;
  // Epochs still defer (the guest suffers the crash), but no watchdog acts.
  EXPECT_GT(m.CounterValue("policy/epochs_deferred"), 0u);
  EXPECT_EQ(m.CounterValue("policy/degraded_entries"), 0u);
  EXPECT_EQ(m.CounterValue("policy/host_migrations"), 0u);
}

// ------------------------------------------------------- Invariant checker

TEST(InvariantCheckerTest, CleanRunPasses) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();
  EXPECT_GT(report.gpt_pages_audited, 0u);
  EXPECT_GT(report.ept_pages_audited, 0u);
}

TEST(InvariantCheckerTest, FaultedRunPasses) {
  // Faults must degrade performance, never consistency.
  Machine machine(FaultHost("bdrop=0.3,stall=2ms/8ms,crash=3ms/20ms,migfail=0.2,tierex=0.05"));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();
}

TEST(InvariantCheckerTest, CatchesEptDoubleMapping) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kStatic));
  machine.Run();
  ASSERT_TRUE(machine.CheckInvariants().ok());
  // Deliberately point one gPA at another's frame: the frame now backs two
  // guest pages, which the EPT/host-allocator bijection must flag.
  std::vector<std::pair<PageNum, uint64_t>> backed;
  machine.vm(0).ept().ForEachPresent(0, PageTable::kMaxPage,
                                     [&](PageNum gpa, uint64_t frame, bool, bool) {
                                       if (backed.size() < 2) {
                                         backed.emplace_back(gpa, frame);
                                       }
                                     });
  ASSERT_GE(backed.size(), 2u);
  ASSERT_TRUE(machine.vm(0).ept().Remap(backed[0].first, backed[1].second));
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_FALSE(report.ok());
}

TEST(InvariantCheckerTest, CatchesFreedBackingFrame) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kStatic));
  machine.Run();
  ASSERT_TRUE(machine.CheckInvariants().ok());
  // Free a frame the EPT still references: a dangling backing pointer.
  std::vector<uint64_t> frames;
  machine.vm(0).ept().ForEachPresent(0, PageTable::kMaxPage,
                                     [&](PageNum, uint64_t frame, bool, bool) {
                                       if (frames.empty()) {
                                         frames.push_back(frame);
                                       }
                                     });
  ASSERT_EQ(frames.size(), 1u);
  machine.hypervisor().memory().Free(frames[0]);
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace demeter
