// src/fault: plan parsing, injector determinism, end-to-end injection
// through the harness, balloon resilience under drops, the Demeter
// degradation state machine, and the cross-layer invariant checker
// (including that it actually catches deliberate corruption).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/fault/invariant_checker.h"
#include "src/harness/machine.h"
#include "src/hyper/hypervisor.h"

namespace demeter {
namespace {

// ------------------------------------------------------------ FaultPlan spec

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  const auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->ToSpec(), "");
}

TEST(FaultPlanTest, FullSpecRoundTrips) {
  const std::string spec =
      "bdelay=0.1/200us,bdrop=0.05,stall=5ms/25ms,crash=50ms/100ms,"
      "vqcap=8,pebsdrop=0.25,migfail=0.1,tierex=0.02";
  std::string error;
  const auto plan = FaultPlan::Parse(spec, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_FALSE(plan->empty());
  EXPECT_DOUBLE_EQ(plan->balloon_delay_p, 0.1);
  EXPECT_EQ(plan->balloon_delay_ns, 200 * kMicrosecond);
  EXPECT_DOUBLE_EQ(plan->balloon_drop_p, 0.05);
  EXPECT_EQ(plan->stall_duration_ns, 5 * kMillisecond);
  EXPECT_EQ(plan->stall_period_ns, 25 * kMillisecond);
  EXPECT_EQ(plan->crash_duration_ns, 50 * kMillisecond);
  EXPECT_EQ(plan->crash_period_ns, 100 * kMillisecond);
  EXPECT_EQ(plan->vq_capacity, 8u);
  EXPECT_DOUBLE_EQ(plan->pebs_drop_p, 0.25);
  EXPECT_DOUBLE_EQ(plan->migration_fail_p, 0.1);
  EXPECT_DOUBLE_EQ(plan->tier_exhaust_p, 0.02);
  // Canonicalization is a fixed point: Parse(ToSpec()) == plan.
  const auto again = FaultPlan::Parse(plan->ToSpec(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(*again, *plan);
  EXPECT_EQ(again->ToSpec(), plan->ToSpec());
}

TEST(FaultPlanTest, PoisonAndShrinkRoundTrip) {
  const std::string spec =
      "poison=0.002@0,poison=0.0005@1,tiershrink=0.3/2ms/10ms@0,"
      "tiershrink=0.25/5ms/20ms@1";
  std::string error;
  const auto plan = FaultPlan::Parse(spec, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_FALSE(plan->empty());
  EXPECT_DOUBLE_EQ(plan->poison_p[0], 0.002);
  EXPECT_DOUBLE_EQ(plan->poison_p[1], 0.0005);
  EXPECT_DOUBLE_EQ(plan->tier_shrink[0].frac, 0.3);
  EXPECT_EQ(plan->tier_shrink[0].duration_ns, 2 * kMillisecond);
  EXPECT_EQ(plan->tier_shrink[0].period_ns, 10 * kMillisecond);
  EXPECT_DOUBLE_EQ(plan->tier_shrink[1].frac, 0.25);
  EXPECT_EQ(plan->tier_shrink[1].duration_ns, 5 * kMillisecond);
  EXPECT_EQ(plan->tier_shrink[1].period_ns, 20 * kMillisecond);
  // Poison probabilities map onto the per-tier fault sites.
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kPoisonFmem), 0.002);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kPoisonSmem), 0.0005);
  const auto again = FaultPlan::Parse(plan->ToSpec(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(*again, *plan);
  EXPECT_EQ(again->ToSpec(), plan->ToSpec());
}

TEST(FaultPlanTest, SwapFailRoundTrips) {
  std::string error;
  const auto plan = FaultPlan::Parse("swapfail=0.3/1ms", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_FALSE(plan->empty());
  EXPECT_DOUBLE_EQ(plan->swap_fail_p, 0.3);
  EXPECT_EQ(plan->swap_retry_backoff_ns, kMillisecond);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kSwapFail), 0.3);
  const auto again = FaultPlan::Parse(plan->ToSpec(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(*again, *plan);
  EXPECT_EQ(again->ToSpec(), plan->ToSpec());
}

TEST(FaultPlanTest, MigrateFailRoundTrips) {
  std::string error;
  const auto plan =
      FaultPlan::Parse("migratefail=0.3/1ms@0,migratefail=0.5/2ms@3", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_FALSE(plan->empty());
  EXPECT_DOUBLE_EQ(plan->migrate_fail_p[0], 0.3);
  EXPECT_EQ(plan->migrate_fail_abort_ns[0], kMillisecond);
  EXPECT_DOUBLE_EQ(plan->migrate_fail_p[3], 0.5);
  EXPECT_EQ(plan->migrate_fail_abort_ns[3], 2 * kMillisecond);
  EXPECT_DOUBLE_EQ(plan->migrate_fail_p[1], 0.0);
  // Per-host site: the flat per-site probability accessor stays zero.
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kLiveMigrateFail), 0.0);
  const auto again = FaultPlan::Parse(plan->ToSpec(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(*again, *plan);
  EXPECT_EQ(again->ToSpec(), plan->ToSpec());
}

TEST(FaultPlanTest, HostFailRoundTrips) {
  std::string error;
  const auto plan = FaultPlan::Parse("hostfail=0.5/8ms@0,hostfail=0.25/40ms@2", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_FALSE(plan->empty());
  EXPECT_DOUBLE_EQ(plan->host_fail_p[0], 0.5);
  EXPECT_EQ(plan->host_fail_down_ns[0], 8 * kMillisecond);
  EXPECT_DOUBLE_EQ(plan->host_fail_p[2], 0.25);
  EXPECT_EQ(plan->host_fail_down_ns[2], 40 * kMillisecond);
  EXPECT_DOUBLE_EQ(plan->host_fail_p[1], 0.0);
  // Per-host site: the flat per-site probability accessor stays zero.
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kHostFail), 0.0);
  const auto again = FaultPlan::Parse(plan->ToSpec(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(*again, *plan);
  EXPECT_EQ(again->ToSpec(), plan->ToSpec());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "nonsense",            // No key=value shape.
      "bogus=1",             // Unknown key.
      "bdrop=1.5",           // Probability out of range.
      "bdrop=x",             // Not a number.
      "bdelay=0.5",          // Missing the /duration half.
      "bdelay=0.5/0",        // Delay needs a non-zero duration.
      "stall=5ms",           // Missing the /period half.
      "stall=50ms/10ms",     // Duration longer than period.
      "crash=5ms/0",         // Zero period.
      "vqcap=abc",           // Not an integer.
      "poison=0.5",          // Tiered key without @tier.
      "poison=0.5@2",        // Tier out of range.
      "poison=0.5@x",        // Tier not an integer.
      "poison=1.5@0",        // Probability out of range.
      "tiershrink=0.5@0",    // Missing duration/period halves.
      "tiershrink=0.5/3ms@0",        // Missing the period half.
      "tiershrink=2/3ms/10ms@0",     // Fraction out of range.
      "tiershrink=0.5/30ms/10ms@0",  // Duration longer than period.
      "tiershrink=0.5/0/10ms@0",     // Zero duration.
      "swapfail=0.5",                // Missing the /backoff half.
      "swapfail=0.5/0",              // Zero retry backoff.
      "swapfail=1.5/1ms",            // Probability out of range.
      "swapfail=x/1ms",              // Not a number.
      "migratefail=0.5/1ms",         // Hosted key without @host.
      "migratefail=0.5/1ms@8",       // Host out of range.
      "migratefail=0.5/1ms@x",       // Host not an integer.
      "migratefail=0.5@0",           // Missing the /abort-threshold half.
      "migratefail=0.5/0@0",         // Zero abort threshold.
      "migratefail=1.5/1ms@0",       // Probability out of range.
      "hostfail=0.5/1ms",            // Hosted key without @host.
      "hostfail=0.5/1ms@8",          // Host out of range.
      "hostfail=0.5/1ms@x",          // Host not an integer.
      "hostfail=0.5@0",              // Missing the /down-duration half.
      "hostfail=0.5/0@0",            // Zero down duration.
      "hostfail=1.5/1ms@0",          // Probability out of range.
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(FaultPlanTest, ErrorsNameTheOffendingToken) {
  // Fail-fast diagnostics: long specs must pinpoint the bad token and the
  // reason, so a typo in one key can't masquerade as a different fault mix.
  struct Case {
    const char* spec;    // Full spec handed to Parse.
    const char* token;   // The token the error must quote.
    const char* detail;  // Substring of the inner diagnostic.
  };
  const Case cases[] = {
      {"bdrop=0.1,bogus=1", "bogus=1", "unknown fault key 'bogus'"},
      {"bdrop=0.1,bdrop=0.2", "bdrop=0.2", "duplicate fault key 'bdrop'"},
      {"poison=0.1@0,poison=0.2@0", "poison=0.2@0", "duplicate fault key 'poison@0'"},
      {"tiershrink=0.1/1ms/2ms@1,tiershrink=0.2/1ms/2ms@1", "tiershrink=0.2/1ms/2ms@1",
       "duplicate fault key 'tiershrink@1'"},
      {"poison=0.5", "poison=0.5", "needs an @tier suffix"},
      {"poison=0.5@7", "poison=0.5@7", "tier must be an integer in [0,1]"},
      {"poison=1.5@0", "poison=1.5@0", "probability must be a number in [0,1]"},
      {"tiershrink=0.5/20ms/10ms@0", "tiershrink=0.5/20ms/10ms@0",
       "tiershrink needs 0 < duration <= period"},
      {"bdrop=9", "bdrop=9", "probability must be a number in [0,1]"},
      {"bdrop=0.1,swapfail=0.5", "swapfail=0.5", "expected 'A/B'"},
      {"swapfail=0.5/0", "swapfail=0.5/0", "swapfail needs a non-zero retry backoff"},
      {"migratefail=0.1/1ms@0,migratefail=0.2/1ms@0", "migratefail=0.2/1ms@0",
       "duplicate fault key 'migratefail@0'"},
      {"migratefail=0.5/1ms", "migratefail=0.5/1ms", "needs an @host suffix"},
      {"migratefail=0.5/1ms@9", "migratefail=0.5/1ms@9", "host must be an integer in [0,7]"},
      {"migratefail=0.5/0@1", "migratefail=0.5/0@1",
       "migratefail needs a non-zero abort threshold"},
      {"hostfail=0.1/1ms@0,hostfail=0.2/1ms@0", "hostfail=0.2/1ms@0",
       "duplicate fault key 'hostfail@0'"},
      {"hostfail=0.5/1ms", "hostfail=0.5/1ms", "needs an @host suffix"},
      {"hostfail=0.5/1ms@9", "hostfail=0.5/1ms@9", "host must be an integer in [0,7]"},
      {"hostfail=0.5/0@1", "hostfail=0.5/0@1", "hostfail needs a non-zero down duration"},
  };
  for (const Case& c : cases) {
    std::string error;
    ASSERT_FALSE(FaultPlan::Parse(c.spec, &error).has_value()) << c.spec;
    EXPECT_NE(error.find(std::string("bad --faults token '") + c.token + "'"),
              std::string::npos)
        << c.spec << " -> " << error;
    EXPECT_NE(error.find(c.detail), std::string::npos) << c.spec << " -> " << error;
  }
  // The same key on *different* tiers (or hosts) is legal, not a duplicate.
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse("poison=0.1@0,poison=0.2@1", &error).has_value()) << error;
  EXPECT_TRUE(FaultPlan::Parse("migratefail=0.1/1ms@0,migratefail=0.2/1ms@1", &error)
                  .has_value())
      << error;
  EXPECT_TRUE(
      FaultPlan::Parse("hostfail=0.1/1ms@0,hostfail=0.2/1ms@1", &error).has_value())
      << error;
  // hostfail and migratefail share the host namespace without colliding.
  EXPECT_TRUE(
      FaultPlan::Parse("migratefail=0.1/1ms@0,hostfail=0.2/1ms@0", &error).has_value())
      << error;
}

TEST(FaultPlanTest, ProbabilityPerSite) {
  const auto plan = FaultPlan::Parse("bdrop=0.3,pebsdrop=0.7");
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kBalloonDrop), 0.3);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kPebsSampleLoss), 0.7);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kBalloonDelay), 0.0);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kSwapFail), 0.0);
  // Window and capacity sites are not probability-driven.
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kGuestStall), 0.0);
  EXPECT_DOUBLE_EQ(plan->probability(FaultSite::kVirtqueueFull), 0.0);
}

// --------------------------------------------------------------- Injector

std::vector<bool> Draw(FaultInjector& injector, FaultSite site, int vm, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(injector.ShouldInject(site, vm));
  }
  return out;
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  const auto plan = FaultPlan::Parse("bdrop=0.5");
  FaultInjector a(*plan, 42);
  FaultInjector b(*plan, 42);
  EXPECT_EQ(Draw(a, FaultSite::kBalloonDrop, 0, 256), Draw(b, FaultSite::kBalloonDrop, 0, 256));
  FaultInjector c(*plan, 43);
  EXPECT_NE(Draw(a, FaultSite::kBalloonDrop, 0, 256), Draw(c, FaultSite::kBalloonDrop, 0, 256));
}

TEST(FaultInjectorTest, MigrationFailuresDrawPerHost) {
  const auto plan = FaultPlan::Parse("migratefail=0.5/1ms@0,migratefail=0.5/1ms@1");
  ASSERT_TRUE(plan.has_value());
  FaultInjector a(*plan, 42);
  FaultInjector b(*plan, 42);
  std::vector<bool> h0a, h0b, h1a;
  for (int i = 0; i < 64; ++i) {
    h0a.push_back(a.ShouldFailMigration(0));
    h1a.push_back(a.ShouldFailMigration(1));
    h0b.push_back(b.ShouldFailMigration(0));
  }
  EXPECT_EQ(h0a, h0b);  // Same seed, same per-host decision stream.
  EXPECT_NE(h0a, h1a);  // Hosts draw from independent streams.
  EXPECT_EQ(a.MigrationAbortAfter(0), kMillisecond);
  EXPECT_GT(a.total_injected(FaultSite::kLiveMigrateFail), 0u);
  // A host with no armed plan never fires.
  const auto one = FaultPlan::Parse("migratefail=1.0/1ms@0");
  ASSERT_TRUE(one.has_value());
  FaultInjector armed(*one, 7);
  EXPECT_TRUE(armed.ShouldFailMigration(0));
  EXPECT_FALSE(armed.ShouldFailMigration(1));
  EXPECT_EQ(armed.MigrationAbortAfter(1), 0u);
}

TEST(FaultInjectorTest, HostFailuresDrawPerHost) {
  const auto plan = FaultPlan::Parse("hostfail=0.5/8ms@0,hostfail=0.5/8ms@1");
  ASSERT_TRUE(plan.has_value());
  FaultInjector a(*plan, 42);
  FaultInjector b(*plan, 42);
  std::vector<bool> h0a, h0b, h1a;
  for (int i = 0; i < 64; ++i) {
    h0a.push_back(a.ShouldFailHost(0));
    h1a.push_back(a.ShouldFailHost(1));
    h0b.push_back(b.ShouldFailHost(0));
  }
  EXPECT_EQ(h0a, h0b);  // Same seed, same per-host decision stream.
  EXPECT_NE(h0a, h1a);  // Hosts draw from independent streams.
  EXPECT_EQ(a.HostFailDuration(0), 8 * kMillisecond);
  EXPECT_GT(a.total_injected(FaultSite::kHostFail), 0u);
  // A host with no armed plan never fires and burns no RNG state.
  const auto one = FaultPlan::Parse("hostfail=1.0/1ms@0");
  ASSERT_TRUE(one.has_value());
  FaultInjector armed(*one, 7);
  EXPECT_TRUE(armed.ShouldFailHost(0));
  EXPECT_FALSE(armed.ShouldFailHost(1));
  EXPECT_EQ(armed.HostFailDuration(1), 0u);
}

TEST(FaultInjectorTest, PreExistingStreamsSurviveSiteTableGrowth) {
  // Golden decision streams captured before the kHostFail site existed.
  // Growing the site enum must never reshuffle the per-(site, id) RNG
  // lanes of earlier sites: every pre-existing fault schedule anywhere
  // (pinned bench baselines included) replays through these streams. If
  // this test fails, a site was added without extending the lane formula
  // in FaultInjector::state() compatibly — fix the formula, don't re-pin.
  const auto plan = FaultPlan::Parse(
      "bdrop=0.37,migratefail=0.41/3ms@0,migratefail=0.41/3ms@1,"
      "migratefail=0.41/3ms@2,migratefail=0.41/3ms@3");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan, 0xd5eedULL);
  struct Golden {
    FaultSite site;
    int id;  // Host for migratefail, VM for bdrop.
    const char* bits;
  };
  const Golden golden[] = {
      {FaultSite::kLiveMigrateFail, 0, "0000011000000000"},
      {FaultSite::kLiveMigrateFail, 1, "0100101010001100"},
      {FaultSite::kLiveMigrateFail, 2, "0111011100001100"},
      {FaultSite::kLiveMigrateFail, 3, "0000110100101100"},
      {FaultSite::kBalloonDrop, 0, "0111001110001100"},
      {FaultSite::kBalloonDrop, 1, "0001010111100111"},
  };
  for (const Golden& g : golden) {
    std::string bits;
    for (int i = 0; i < 16; ++i) {
      const bool fired = g.site == FaultSite::kLiveMigrateFail
                             ? injector.ShouldFailMigration(g.id)
                             : injector.ShouldInject(g.site, g.id);
      bits += fired ? '1' : '0';
    }
    EXPECT_EQ(bits, g.bits) << FaultSiteName(g.site) << " id " << g.id;
  }
}

TEST(FaultInjectorTest, SitesDrawFromIndependentStreams) {
  // Adding a second fault kind to the plan must not perturb the first
  // site's decision stream, even when draws interleave.
  const auto only_drop = FaultPlan::Parse("bdrop=0.3");
  const auto both = FaultPlan::Parse("bdrop=0.3,pebsdrop=0.7");
  FaultInjector a(*only_drop, 42);
  FaultInjector b(*both, 42);
  std::vector<bool> a_drops;
  std::vector<bool> b_drops;
  for (int i = 0; i < 256; ++i) {
    a_drops.push_back(a.ShouldInject(FaultSite::kBalloonDrop, 0));
    b_drops.push_back(b.ShouldInject(FaultSite::kBalloonDrop, 0));
    (void)b.ShouldInject(FaultSite::kPebsSampleLoss, 0);  // Interleave.
  }
  EXPECT_EQ(a_drops, b_drops);
}

TEST(FaultInjectorTest, VmsDrawFromIndependentStreams) {
  const auto plan = FaultPlan::Parse("bdrop=0.5");
  FaultInjector injector(*plan, 42);
  EXPECT_NE(Draw(injector, FaultSite::kBalloonDrop, 0, 256),
            Draw(injector, FaultSite::kBalloonDrop, 1, 256));
}

TEST(FaultInjectorTest, CountsInjections) {
  const auto plan = FaultPlan::Parse("bdrop=1");
  FaultInjector injector(*plan, 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.ShouldInject(FaultSite::kBalloonDrop, 0));
  }
  EXPECT_EQ(injector.injected(FaultSite::kBalloonDrop, 0), 10u);
  EXPECT_EQ(injector.total_injected(FaultSite::kBalloonDrop), 10u);
  EXPECT_EQ(injector.injected(FaultSite::kBalloonDrop, 1), 0u);
}

TEST(FaultInjectorTest, WindowsArePureFunctionsOfTime) {
  const auto plan = FaultPlan::Parse("stall=5ms/20ms,crash=2ms/50ms");
  FaultInjector injector(*plan, 42);
  // Window k covers [k*period, k*period + duration) for k >= 1 — never t=0.
  EXPECT_FALSE(injector.InStallWindow(0));
  EXPECT_FALSE(injector.InStallWindow(3 * kMillisecond));
  EXPECT_TRUE(injector.InStallWindow(20 * kMillisecond));
  EXPECT_TRUE(injector.InStallWindow(25 * kMillisecond - 1));
  EXPECT_FALSE(injector.InStallWindow(25 * kMillisecond));
  EXPECT_TRUE(injector.InStallWindow(40 * kMillisecond));
  EXPECT_EQ(injector.StallWindowEnd(21 * kMillisecond), 25 * kMillisecond);
  EXPECT_FALSE(injector.InCrashWindow(0));
  EXPECT_TRUE(injector.InCrashWindow(50 * kMillisecond));
  EXPECT_FALSE(injector.InCrashWindow(52 * kMillisecond));
  EXPECT_EQ(injector.CrashWindowEnd(50 * kMillisecond), 52 * kMillisecond);
}

TEST(FaultInjectorTest, ShrinkWindowsArePerTierPureFunctionsOfTime) {
  const auto plan = FaultPlan::Parse("tiershrink=0.5/5ms/20ms@1");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan, 42);
  // Tier 0 has no schedule: never in a window, no next start.
  EXPECT_FALSE(injector.InShrinkWindow(0, 0));
  EXPECT_FALSE(injector.InShrinkWindow(0, 20 * kMillisecond));
  EXPECT_EQ(injector.NextShrinkWindowStart(0, 0), 0u);
  // Tier 1: window k covers [k*period, k*period + duration) for k >= 1.
  EXPECT_FALSE(injector.InShrinkWindow(1, 0));
  EXPECT_FALSE(injector.InShrinkWindow(1, 4 * kMillisecond));
  EXPECT_TRUE(injector.InShrinkWindow(1, 20 * kMillisecond));
  EXPECT_TRUE(injector.InShrinkWindow(1, 25 * kMillisecond - 1));
  EXPECT_FALSE(injector.InShrinkWindow(1, 25 * kMillisecond));
  EXPECT_TRUE(injector.InShrinkWindow(1, 40 * kMillisecond));
  EXPECT_EQ(injector.ShrinkWindowEnd(1, 21 * kMillisecond), 25 * kMillisecond);
  EXPECT_EQ(injector.NextShrinkWindowStart(1, 0), 20 * kMillisecond);
  EXPECT_EQ(injector.NextShrinkWindowStart(1, 20 * kMillisecond), 40 * kMillisecond);
  EXPECT_EQ(injector.NextShrinkWindowStart(1, 39 * kMillisecond), 40 * kMillisecond);
}

// ------------------------------------------------- End-to-end through Machine

MachineConfig FaultHost(const std::string& fault_spec, int vms = 1) {
  MachineConfig config;
  const uint64_t per_vm = 32 * kMiB;
  config.tiers = {TierSpec::LocalDram(10 * kMiB * static_cast<uint64_t>(vms)),
                  TierSpec::Pmem(3 * per_vm * static_cast<uint64_t>(vms))};
  std::string error;
  const auto plan = FaultPlan::Parse(fault_spec, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  config.faults = *plan;
  return config;
}

VmSetup FaultVm(PolicyKind policy) {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.fmem_ratio = 0.2;
  setup.vm.num_vcpus = 2;
  setup.workload = "gups";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = 150000;
  setup.policy = policy;
  setup.provision = ProvisionMode::kDemeterBalloon;
  setup.policy_period = 15 * kMillisecond;
  setup.demeter.range.epoch_length = 2 * kMillisecond;
  setup.demeter.range.split_threshold = 4.0;
  setup.demeter.sample_period = 97;
  return setup;
}

TEST(MachineFaultTest, EmptyPlanCreatesNoInjector) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  EXPECT_EQ(machine.fault_injector(), nullptr);
  // Fault-free runs expose no fault counters at all.
  EXPECT_EQ(machine.result(0).metrics.Find("fault/balloon_drop_injected"), nullptr);
}

TEST(MachineFaultTest, ProbabilitySitesInjectAndAreCounted) {
  // Balloon sites need high probabilities: a steady workload only issues a
  // handful of balloon requests (initial provisioning), so low-probability
  // draws can legitimately never fire there.
  Machine machine(
      FaultHost("bdelay=0.7/100us,bdrop=0.7,pebsdrop=0.25,migfail=0.2,tierex=0.05"));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  ASSERT_NE(machine.fault_injector(), nullptr);
  const MetricSnapshot& m = machine.result(0).metrics;
  EXPECT_GT(m.CounterValue("fault/balloon_delay_injected"), 0u);
  EXPECT_GT(m.CounterValue("fault/balloon_drop_injected"), 0u);
  EXPECT_GT(m.CounterValue("fault/pebs_sample_loss_injected"), 0u);
  EXPECT_GT(m.CounterValue("fault/migration_fail_injected"), 0u);
  EXPECT_GT(m.CounterValue("fault/tier_exhaustion_injected"), 0u);
  // Dropped balloon requests must have forced timeouts and retransmits.
  EXPECT_GT(m.CounterValue("balloon/timeouts"), 0u);
  EXPECT_GT(m.CounterValue("balloon/retries"), 0u);
}

TEST(MachineFaultTest, BalloonSurvivesHeavyDrops) {
  // With every other request lost, the retry/backoff machinery must still
  // converge provisioning (possibly short, never wedged).
  Machine machine(FaultHost("bdrop=0.5"));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  const VmRunResult& result = machine.result(0);
  EXPECT_GE(result.transactions, 150000u);
  EXPECT_GT(result.metrics.CounterValue("balloon/retries"), 0u);
  // Retries are bounded: every abandonment implies max_retries timeouts.
  EXPECT_LE(result.metrics.CounterValue("balloon/retries"),
            result.metrics.CounterValue("balloon/timeouts"));
}

TEST(MachineFaultTest, DegradationEntersAndRecovers) {
  // Crash the guest engine for 4 ms of every 10 ms with 1 ms epochs: the
  // watchdog must degrade during windows and re-delegate after them.
  MachineConfig host = FaultHost("crash=4ms/10ms");
  Machine machine(host);
  VmSetup setup = FaultVm(PolicyKind::kDemeter);
  setup.demeter.range.epoch_length = 1 * kMillisecond;
  setup.demeter.degradation.unresponsive_after = 2 * kMillisecond;
  setup.demeter.degradation.watchdog_period = 1 * kMillisecond;
  setup.target_transactions = 400000;
  machine.AddVm(setup);
  machine.Run();
  const MetricSnapshot& m = machine.result(0).metrics;
  EXPECT_GT(m.CounterValue("policy/degraded_entries"), 0u);
  EXPECT_GT(m.CounterValue("policy/recoveries"), 0u);
  EXPECT_GT(m.CounterValue("policy/epochs_deferred"), 0u);
  EXPECT_LE(m.CounterValue("policy/recoveries"), m.CounterValue("policy/degraded_entries"));
}

TEST(MachineFaultTest, NoFallbackAblationNeverDegrades) {
  MachineConfig host = FaultHost("crash=4ms/10ms");
  Machine machine(host);
  VmSetup setup = FaultVm(PolicyKind::kDemeter);
  setup.demeter.range.epoch_length = 1 * kMillisecond;
  setup.demeter.degradation.enabled = false;
  setup.target_transactions = 400000;
  machine.AddVm(setup);
  machine.Run();
  const MetricSnapshot& m = machine.result(0).metrics;
  // Epochs still defer (the guest suffers the crash), but no watchdog acts.
  EXPECT_GT(m.CounterValue("policy/epochs_deferred"), 0u);
  EXPECT_EQ(m.CounterValue("policy/degraded_entries"), 0u);
  EXPECT_EQ(m.CounterValue("policy/host_migrations"), 0u);
}

TEST(MachineFaultTest, PoisonRecoversCleanOrDiscardsDirty) {
  // Memory errors on both tiers: every event must resolve to either a clean
  // migration-recovery or a SIGBUS discard, frames must go offline, and the
  // TMM must never pick a poisoned frame as a migration destination.
  Machine machine(FaultHost("poison=0.0005@0,poison=0.0005@1"));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  const Hypervisor& hyper = machine.hypervisor();
  const Hypervisor::PoisonStats& poison = hyper.poison_stats();
  ASSERT_GT(poison.events, 0u);
  EXPECT_EQ(poison.frames_offlined, poison.events);
  EXPECT_EQ(poison.clean_recoveries + poison.sigbus_deliveries, poison.events);
  EXPECT_EQ(poison.pages_lost, poison.sigbus_deliveries);
  EXPECT_EQ(poison.bad_destination, 0u);
  // Host metrics mirror the stats struct.
  const MetricSnapshot m = machine.SnapshotMetrics();
  EXPECT_EQ(m.CounterValue("host/poison/events"), poison.events);
  EXPECT_EQ(m.CounterValue("host/poison/bad_destination"), 0u);
  // Every SIGBUS discard unmapped a guest page through the kernel.
  EXPECT_EQ(machine.result(0).metrics.CounterValue("kernel/sigbus_discards"),
            poison.sigbus_deliveries);
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();
}

TEST(MachineFaultTest, TierShrinkWindowsCarveAndRestore) {
  // Periodic FMEM shrink windows: capacity leaves, emergency evictions keep
  // the carve honest, and after the run the restored free lists reconcile.
  Machine machine(FaultHost("tiershrink=0.4/3ms/12ms@0"));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  const Hypervisor& hyper = machine.hypervisor();
  const Hypervisor::TierShrinkStats& shrink = hyper.shrink_stats(0);
  EXPECT_GT(shrink.windows, 0u);
  EXPECT_GT(shrink.carved_pages, 0u);
  // Outside any window nothing stays carved.
  EXPECT_EQ(machine.hypervisor().memory().CarvedPages(0), 0u);
  EXPECT_EQ(hyper.poison_stats().bad_destination, 0u);
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();
}

TEST(MachineFaultTest, CrashPlusTierShrinkStaysConsistent) {
  // Satellite regression: a degraded guest (crash windows) while the host
  // simultaneously shrinks FMEM — the host fallback must tolerate shrunk
  // destinations mid-drain and the cross-layer invariants must hold.
  MachineConfig host = FaultHost("crash=4ms/10ms,tiershrink=0.3/3ms/12ms@0");
  Machine machine(host);
  VmSetup setup = FaultVm(PolicyKind::kDemeter);
  setup.demeter.range.epoch_length = 1 * kMillisecond;
  setup.demeter.degradation.unresponsive_after = 2 * kMillisecond;
  setup.demeter.degradation.watchdog_period = 1 * kMillisecond;
  setup.target_transactions = 400000;
  machine.AddVm(setup);
  machine.Run();
  EXPECT_GE(machine.result(0).transactions, 400000u);
  const MetricSnapshot& m = machine.result(0).metrics;
  EXPECT_GT(m.CounterValue("policy/degraded_entries"), 0u);
  const Hypervisor& hyper = machine.hypervisor();
  EXPECT_GT(hyper.shrink_stats(0).windows, 0u);
  EXPECT_EQ(hyper.poison_stats().bad_destination, 0u);
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();
}

// ------------------------------------------------------- Invariant checker

TEST(InvariantCheckerTest, CleanRunPasses) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();
  EXPECT_GT(report.gpt_pages_audited, 0u);
  EXPECT_GT(report.ept_pages_audited, 0u);
}

TEST(InvariantCheckerTest, FaultedRunPasses) {
  // Faults must degrade performance, never consistency.
  Machine machine(FaultHost("bdrop=0.3,stall=2ms/8ms,crash=3ms/20ms,migfail=0.2,tierex=0.05"));
  machine.AddVm(FaultVm(PolicyKind::kDemeter));
  machine.Run();
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();
}

TEST(InvariantCheckerTest, CatchesEptDoubleMapping) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kStatic));
  machine.Run();
  ASSERT_TRUE(machine.CheckInvariants().ok());
  // Deliberately point one gPA at another's frame: the frame now backs two
  // guest pages, which the EPT/host-allocator bijection must flag.
  std::vector<std::pair<PageNum, uint64_t>> backed;
  machine.vm(0).ept().ForEachPresent(0, PageTable::kMaxPage,
                                     [&](PageNum gpa, uint64_t frame, bool, bool) {
                                       if (backed.size() < 2) {
                                         backed.emplace_back(gpa, frame);
                                       }
                                     });
  ASSERT_GE(backed.size(), 2u);
  ASSERT_TRUE(machine.vm(0).ept().Remap(backed[0].first, backed[1].second));
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_FALSE(report.ok());
}

TEST(InvariantCheckerTest, CatchesFreedBackingFrame) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kStatic));
  machine.Run();
  ASSERT_TRUE(machine.CheckInvariants().ok());
  // Free a frame the EPT still references: a dangling backing pointer.
  std::vector<uint64_t> frames;
  machine.vm(0).ept().ForEachPresent(0, PageTable::kMaxPage,
                                     [&](PageNum, uint64_t frame, bool, bool) {
                                       if (frames.empty()) {
                                         frames.push_back(frame);
                                       }
                                     });
  ASSERT_EQ(frames.size(), 1u);
  machine.hypervisor().memory().Free(frames[0]);
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_FALSE(report.ok());
}

TEST(InvariantCheckerTest, CatchesMappingToPoisonedFrame) {
  Machine machine(FaultHost(""));
  machine.AddVm(FaultVm(PolicyKind::kStatic));
  machine.Run();
  ASSERT_TRUE(machine.CheckInvariants().ok());
  // Offline a frame the EPT still maps: hwpoison containment demands no
  // live translation ever points at a poisoned frame.
  std::vector<uint64_t> frames;
  machine.vm(0).ept().ForEachPresent(0, PageTable::kMaxPage,
                                     [&](PageNum, uint64_t frame, bool, bool) {
                                       if (frames.empty()) {
                                         frames.push_back(frame);
                                       }
                                     });
  ASSERT_EQ(frames.size(), 1u);
  machine.hypervisor().memory().Poison(static_cast<FrameId>(frames[0]));
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const std::string& v : report.violations) {
    if (v.find("hw-poisoned") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.Join();
}

}  // namespace
}  // namespace demeter
