#include <gtest/gtest.h>

#include "src/balloon/balloon.h"
#include "src/hyper/hypervisor.h"
#include "src/mem/host_memory.h"
#include "src/sim/event_queue.h"

namespace demeter {
namespace {

class BalloonTest : public ::testing::Test {
 protected:
  BalloonTest()
      : memory_({TierSpec::LocalDram(64 * kMiB), TierSpec::Pmem(128 * kMiB)}),
        hyper_(&memory_, &events_) {}

  Vm& MakeVm(bool start_full = true) {
    VmConfig config;
    config.id = hyper_.num_vms();
    config.total_memory_bytes = 16 * kMiB;  // 4096 pages.
    config.fmem_ratio = 0.25;
    config.cache_hit_rate = 0.0;
    config.start_full = start_full;
    return hyper_.CreateVm(config);
  }

  void Settle() {
    while (!events_.empty()) {
      events_.RunUntil(events_.NextEventTime());
    }
  }

  HostMemory memory_;
  EventQueue events_;
  Hypervisor hyper_;
};

// ---- DemeterBalloon ----------------------------------------------------------

TEST_F(BalloonTest, InflateShrinksExactNode) {
  Vm& vm = MakeVm();
  DemeterBalloon balloon(&vm);
  ASSERT_EQ(vm.kernel().node(1).present_pages(), 4096u);
  balloon.RequestDelta(/*node=*/1, /*delta=*/1000, /*now=*/0);
  Settle();
  EXPECT_EQ(vm.kernel().node(1).present_pages(), 3096u);
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 4096u) << "other node untouched";
  EXPECT_EQ(balloon.stats().pages_inflated, 1000u);
  EXPECT_EQ(balloon.stats().pages_short, 0u);
}

TEST_F(BalloonTest, DeflateRestoresSameNode) {
  Vm& vm = MakeVm();
  DemeterBalloon balloon(&vm);
  balloon.RequestDelta(1, 1000, 0);
  Settle();
  balloon.RequestDelta(1, -400, events_.NextEventTime() + kSecond);
  Settle();
  EXPECT_EQ(vm.kernel().node(1).present_pages(), 3496u);
  EXPECT_EQ(balloon.stats().pages_deflated, 400u);
}

TEST_F(BalloonTest, BootTimeHoldingsAllowDeflateBeyondBoot) {
  // A VM booted at the 1:4 composition can still be grown: the balloon
  // holds the node's non-present span from boot (§3.3: node max = 100%).
  Vm& vm = MakeVm(/*start_full=*/false);
  DemeterBalloon balloon(&vm);
  ASSERT_EQ(vm.kernel().node(0).present_pages(), 1024u);
  balloon.RequestDelta(0, -1024, 0);  // Grow FMEM to 50%.
  Settle();
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 2048u);
}

TEST_F(BalloonTest, ResizeToReachesAbsoluteTarget) {
  Vm& vm = MakeVm();
  DemeterBalloon balloon(&vm);
  balloon.RequestResizeTo(0, 1024, 0);
  balloon.RequestResizeTo(1, 3072, 0);
  Settle();
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 1024u);
  EXPECT_EQ(vm.kernel().node(1).present_pages(), 3072u);
}

TEST_F(BalloonTest, InflateReleasesHostBacking) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  // Touch pages so host frames are allocated in SMEM.
  const uint64_t base = proc.HeapAlloc(512 * kPageSize);
  // Force SMEM allocation by exhausting... simpler: touch everything; first
  // 4096 go to node0.
  for (uint64_t i = 0; i < 512; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
  }
  const uint64_t fmem_used_before = memory_.UsedPages(kFmemTier);
  ASSERT_GT(fmem_used_before, 0u);

  DemeterBalloon balloon(&vm);
  // Inflating node0 with free pages only releases untouched ones; demand
  // more than free so it must demote mapped pages and release their frames.
  balloon.RequestResizeTo(0, 256, 0);
  Settle();
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 256u);
  EXPECT_GT(balloon.stats().demotions_for_inflate, 0u) << "used pages forced demotions";
  EXPECT_LT(memory_.UsedPages(kFmemTier), fmem_used_before + 1)
      << "host frames were returned or moved";
}

TEST_F(BalloonTest, InflatePartialWhenNothingLeft) {
  Vm& vm = MakeVm();
  DemeterBalloon balloon(&vm);
  balloon.RequestDelta(1, static_cast<int64_t>(8000), 0);  // > present.
  Settle();
  EXPECT_GT(balloon.stats().pages_short, 0u);
  EXPECT_LE(vm.kernel().node(1).present_pages(), 4096u);
}

TEST_F(BalloonTest, CompletionCallbackFires) {
  Vm& vm = MakeVm();
  DemeterBalloon balloon(&vm);
  int fired = 0;
  balloon.RequestDelta(1, 10, 0, [&](const BalloonCompletion& completion, Nanos) {
    ++fired;
    EXPECT_TRUE(completion.inflate);
    EXPECT_EQ(completion.pages.size(), 10u);
  });
  EXPECT_EQ(balloon.inflight(), 1u);
  Settle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(balloon.inflight(), 0u);
}

TEST_F(BalloonTest, StatsQueueDeliversTelemetry) {
  Vm& vm = MakeVm();
  DemeterBalloon balloon(&vm);
  GuestMemStats seen;
  bool got = false;
  balloon.QueryStats(0, [&](const GuestMemStats& stats, Nanos) {
    seen = stats;
    got = true;
  });
  Settle();
  ASSERT_TRUE(got);
  EXPECT_EQ(seen.node_present[0], 4096u);
  EXPECT_EQ(seen.node_present[1], 4096u);
}

TEST_F(BalloonTest, ZeroDeltaCompletesImmediately) {
  Vm& vm = MakeVm();
  DemeterBalloon balloon(&vm);
  bool fired = false;
  balloon.RequestDelta(0, 0, 0, [&](const BalloonCompletion&, Nanos) { fired = true; });
  EXPECT_TRUE(fired);
  EXPECT_EQ(balloon.inflight(), 0u);
}

// ---- VirtioBalloon -----------------------------------------------------------

TEST_F(BalloonTest, VirtioInflationEatsFmemFirst) {
  Vm& vm = MakeVm();
  VirtioBalloon balloon(&vm);
  // Ask to remove half the (doubled) memory; tier-blind inflation drains
  // the fast node to its watermark before touching the slow node.
  balloon.RequestDelta(static_cast<int64_t>(4096), 0);
  Settle();
  EXPECT_EQ(balloon.balloon_pages(), 4096u);
  EXPECT_LT(vm.kernel().node(0).present_pages(), 512u) << "FMEM starved";
  EXPECT_GT(vm.kernel().node(1).present_pages(), 3500u) << "SMEM barely touched";
}

TEST_F(BalloonTest, VirtioDeflateReturnsPages) {
  Vm& vm = MakeVm();
  VirtioBalloon balloon(&vm);
  balloon.RequestDelta(2000, 0);
  Settle();
  const uint64_t fmem_after_inflate = vm.kernel().node(0).present_pages();
  balloon.RequestDelta(-2000, kSecond);
  Settle();
  EXPECT_EQ(balloon.balloon_pages(), 0u);
  EXPECT_GT(vm.kernel().node(0).present_pages(), fmem_after_inflate);
  EXPECT_EQ(vm.kernel().node(0).present_pages() + vm.kernel().node(1).present_pages(), 8192u);
}

// ---- HotplugProvisioner --------------------------------------------------------

TEST_F(BalloonTest, HotplugOnlyMovesWholeBlocks) {
  Vm& vm = MakeVm();
  HotplugProvisioner hotplug(&vm, /*block_bytes=*/kMiB);  // 256-page blocks.
  // Target 1000 pages: only 3 whole blocks (768 pages removed -> 3328) fit
  // above the target; exact 1000 is unreachable.
  const uint64_t reached = hotplug.ResizeTo(0, 1000, 0);
  EXPECT_GE(reached, 1000u);
  EXPECT_EQ((4096 - reached) % 256, 0u) << "whole blocks only";
  EXPECT_LT(reached, 1000 + 256u);
}

TEST_F(BalloonTest, HotplugGrowsBackInBlocks) {
  Vm& vm = MakeVm();
  HotplugProvisioner hotplug(&vm, kMiB);
  hotplug.ResizeTo(0, 1024, 0);
  const uint64_t regrown = hotplug.ResizeTo(0, 2048, 0);
  EXPECT_EQ(regrown, 2048u);
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 2048u);
}

TEST_F(BalloonTest, HotplugCannotSplitBlocks) {
  Vm& vm = MakeVm();
  HotplugProvisioner hotplug(&vm, 8 * kMiB);  // 2048-page blocks.
  const uint64_t reached = hotplug.ResizeTo(0, 3000, 0);
  // From 4096, removing one 2048-block would undershoot 3000: nothing moves.
  EXPECT_EQ(reached, 4096u);
}

TEST_F(BalloonTest, HotplugReplugIsLifoWithinNode) {
  // Regression: replug must return the most recently unplugged block first
  // (real hot-remove frees the youngest section first on re-add), not the
  // oldest, and a partial grow must leave the older carve-outs untouched.
  Vm& vm = MakeVm();
  HotplugProvisioner hotplug(&vm, kMiB);  // 256-page blocks.
  hotplug.ResizeTo(0, 4096 - 512, 0);     // Carve two blocks out of node 0.
  const auto& blocks = hotplug.unplugged_blocks(0);
  ASSERT_EQ(blocks.size(), 2u);
  const std::vector<PageNum> oldest = blocks.front();
  const std::vector<PageNum> newest = blocks.back();
  ASSERT_FALSE(oldest.empty());
  ASSERT_FALSE(newest.empty());

  // Grow back exactly one block: the *newest* carve-out must come back.
  EXPECT_EQ(hotplug.ResizeTo(0, 4096 - 256, 0), 4096u - 256u);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks.front(), oldest) << "replug took the wrong (older) block";
  // The replugged pages are allocatable in node 0 again.
  EXPECT_EQ(vm.kernel().NodeOfGpa(newest.front()), 0);
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 4096u - 256u);
}

TEST_F(BalloonTest, HotplugReplugTargetsExactNode) {
  // Blocks carved from one node must never be replugged into another, even
  // when both nodes hold unplugged blocks at the same time.
  Vm& vm = MakeVm();
  HotplugProvisioner hotplug(&vm, kMiB);
  hotplug.ResizeTo(0, 4096 - 256, 0);
  hotplug.ResizeTo(1, 4096 - 512, 0);
  ASSERT_EQ(hotplug.unplugged_blocks(0).size(), 1u);
  ASSERT_EQ(hotplug.unplugged_blocks(1).size(), 2u);

  // Growing node 1 must not disturb node 0's carve-out.
  EXPECT_EQ(hotplug.ResizeTo(1, 4096, 0), 4096u);
  EXPECT_EQ(hotplug.unplugged_blocks(1).size(), 0u);
  EXPECT_EQ(hotplug.unplugged_blocks(0).size(), 1u);
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 4096u - 256u);
  EXPECT_EQ(vm.kernel().node(1).present_pages(), 4096u);
}

TEST_F(BalloonTest, HotplugSubBlockGrowIsRejectedNoOp) {
  // A grow smaller than one block cannot be satisfied without splitting a
  // section: it must change nothing rather than round up silently.
  Vm& vm = MakeVm();
  HotplugProvisioner hotplug(&vm, kMiB);
  hotplug.ResizeTo(0, 4096 - 512, 0);
  ASSERT_EQ(hotplug.unplugged_blocks(0).size(), 2u);
  const uint64_t reached = hotplug.ResizeTo(0, 4096 - 512 + 100, 0);
  EXPECT_EQ(reached, 4096u - 512u) << "sub-block grow must be a no-op";
  EXPECT_EQ(hotplug.unplugged_blocks(0).size(), 2u);
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 4096u - 512u);
}

}  // namespace
}  // namespace demeter
