#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/guest/kernel.h"
#include "src/workloads/db_workloads.h"
#include "src/workloads/graph_workloads.h"
#include "src/workloads/gups.h"
#include "src/workloads/hpc_workloads.h"
#include "src/workloads/ml_workloads.h"
#include "src/workloads/workload.h"

namespace demeter {
namespace {

// Runs Setup in a throwaway process and returns generated ops.
std::vector<AccessOp> Generate(Workload& wl, size_t count, uint64_t seed = 7) {
  GuestKernelConfig kconfig;
  kconfig.num_nodes = 2;
  kconfig.node_span_pages = {1 << 20, 1 << 20};
  kconfig.node_present_pages = {1 << 18, 1 << 19};
  static std::vector<std::unique_ptr<GuestKernel>> kernels;  // Keep processes alive.
  kernels.push_back(std::make_unique<GuestKernel>(kconfig));
  GuestProcess& proc = kernels.back()->CreateProcess();
  Rng rng(seed);
  wl.Setup(proc, rng);
  std::vector<AccessOp> ops;
  for (int w = 0; w < 4; ++w) {
    wl.NextBatch(w, count / 4, rng, &ops);
  }
  // All ops must fall inside tracked VMAs.
  for (const AccessOp& op : ops) {
    const Vma* vma = proc.space().FindVma(op.gva);
    EXPECT_NE(vma, nullptr) << wl.name() << " op outside any VMA: " << op.gva;
    if (vma != nullptr) {
      EXPECT_TRUE(vma->tracked) << wl.name() << " op in untracked VMA";
    }
  }
  return ops;
}

double WriteFraction(const std::vector<AccessOp>& ops) {
  size_t writes = 0;
  for (const auto& op : ops) {
    writes += op.is_write ? 1 : 0;
  }
  return ops.empty() ? 0.0 : static_cast<double>(writes) / static_cast<double>(ops.size());
}

size_t DistinctPages(const std::vector<AccessOp>& ops) {
  std::unordered_set<PageNum> pages;
  for (const auto& op : ops) {
    pages.insert(PageOf(op.gva));
  }
  return pages.size();
}

TEST(Workloads, FactoryBuildsAllNames) {
  for (const auto& name : RealWorldWorkloadNames()) {
    auto wl = MakeWorkload(name, 8 * kMiB);
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(name, wl->name());
    EXPECT_EQ(wl->footprint_bytes(), 8 * kMiB);
  }
  EXPECT_STREQ(MakeWorkload("gups", kMiB)->name(), "gups");
  EXPECT_EQ(RealWorldWorkloadNames().size(), 7u);
}

TEST(Workloads, UnknownNameAborts) {
  EXPECT_DEATH(MakeWorkload("nosuch", kMiB), "unknown workload");
}

TEST(GupsWorkload, HotRegionDominatesAccesses) {
  GupsConfig config;
  config.footprint_bytes = 16 * kMiB;
  GupsHotset gups(config);
  auto ops = Generate(gups, 40000);
  size_t hot = 0;
  for (const auto& op : ops) {
    if (op.gva >= gups.hot_base() && op.gva < gups.hot_base() + gups.hot_bytes()) {
      ++hot;
    }
  }
  // P(hot region) ~= 0.526 by construction plus uniform spillover.
  EXPECT_GT(hot, ops.size() / 2);
  EXPECT_LT(hot, ops.size() * 3 / 4);
  EXPECT_NEAR(WriteFraction(ops), 0.5, 0.01) << "read-modify-write pairs";
}

TEST(GupsWorkload, ReadThenWriteSameAddress) {
  GupsHotset gups(GupsConfig{.footprint_bytes = 4 * kMiB});
  auto ops = Generate(gups, 1000);
  for (size_t i = 0; i + 1 < ops.size(); i += 2) {
    EXPECT_EQ(ops[i].gva, ops[i + 1].gva);
    EXPECT_FALSE(ops[i].is_write);
    EXPECT_TRUE(ops[i + 1].is_write);
  }
}

TEST(BtreeWorkload, TraversalTouchesEveryLevel) {
  BtreeConfig config;
  config.footprint_bytes = 16 * kMiB;
  BtreeWorkload btree(config);
  auto ops = Generate(btree, 10000);
  EXPECT_GT(btree.levels(), 2);
  EXPECT_EQ(ops.size() % static_cast<size_t>(btree.levels()), 0u);
  EXPECT_DOUBLE_EQ(WriteFraction(ops), 0.0) << "lookup-only";
  // Root node (first per lookup) is identical across lookups: hub behaviour.
  std::unordered_set<uint64_t> roots;
  for (size_t i = 0; i < ops.size(); i += static_cast<size_t>(btree.levels())) {
    roots.insert(ops[i].gva);
  }
  EXPECT_EQ(roots.size(), 1u);
}

TEST(SiloWorkload, HotspotDriftsOverTime) {
  SiloConfig config;
  config.footprint_bytes = 16 * kMiB;
  config.drift_period_txns = 500;
  config.drift_step_fraction = 0.3;
  SiloYcsb silo(config);
  // Two widely separated batches should favour different record pages.
  GuestKernelConfig kconfig;
  kconfig.num_nodes = 2;
  kconfig.node_span_pages = {1 << 20, 1 << 20};
  kconfig.node_present_pages = {1 << 18, 1 << 19};
  GuestKernel kernel(kconfig);
  GuestProcess& proc = kernel.CreateProcess();
  Rng rng(3);
  silo.Setup(proc, rng);
  auto top_page = [&](size_t txns) {
    std::vector<AccessOp> ops;
    silo.NextBatch(0, txns * static_cast<size_t>(silo.OpsPerTransaction()), rng, &ops);
    std::unordered_map<PageNum, int> counts;
    for (const auto& op : ops) {
      ++counts[PageOf(op.gva)];
    }
    PageNum best = 0;
    int best_count = 0;
    for (auto& [page, count] : counts) {
      if (count > best_count) {
        best = page;
        best_count = count;
      }
    }
    return best;
  };
  const PageNum early = top_page(400);
  for (int i = 0; i < 10; ++i) {
    top_page(400);  // Advance through several drift periods.
  }
  const PageNum late = top_page(400);
  EXPECT_NE(early, late) << "hotspot must move";
}

TEST(BwavesWorkload, StreamsSequentially) {
  BwavesConfig config;
  config.footprint_bytes = 16 * kMiB;
  BwavesWorkload bwaves(config);
  auto ops = Generate(bwaves, 20000);
  EXPECT_NEAR(WriteFraction(ops), 0.25, 0.02) << "one write per 4-op stencil step";
  // Broad coverage: streaming touches many distinct pages.
  EXPECT_GT(DistinctPages(ops), 100u);
}

TEST(XsbenchWorkload, UnionizedGridIsHot) {
  XsbenchConfig config;
  config.footprint_bytes = 16 * kMiB;
  XsbenchWorkload xs(config);
  auto ops = Generate(xs, 30000);
  size_t hot = 0;
  for (const auto& op : ops) {
    if (op.gva >= xs.unionized_base() && op.gva < xs.unionized_base() + xs.unionized_bytes()) {
      ++hot;
    }
  }
  // 12 of 18 ops per lookup hit the (12%-of-footprint) unionized grid.
  EXPECT_GT(hot, ops.size() / 2);
}

TEST(GraphWorkloads, PowerLawSkew) {
  GraphConfig config;
  config.footprint_bytes = 16 * kMiB;
  Graph500Bfs bfs(config);
  auto ops = Generate(bfs, 30000);
  std::unordered_map<PageNum, int> counts;
  for (const auto& op : ops) {
    ++counts[PageOf(op.gva)];
  }
  // Top 10% of touched pages should hold a disproportionate share.
  std::vector<int> sorted;
  for (auto& [page, count] : counts) {
    sorted.push_back(count);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  size_t top = sorted.size() / 10;
  long top_sum = 0;
  long total = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    if (i < top) {
      top_sum += sorted[i];
    }
  }
  EXPECT_GT(top_sum, total / 4) << "hubs dominate";
}

TEST(PageRankWorkload, MixesSequentialAndScattered) {
  GraphConfig config;
  config.footprint_bytes = 16 * kMiB;
  PageRankWorkload pr(config);
  auto ops = Generate(pr, 30000);
  EXPECT_NEAR(WriteFraction(ops), 1.0 / 3.0, 0.02);
  EXPECT_GT(DistinctPages(ops), 200u);
}

TEST(LiblinearWorkload, ModelVectorIsHot) {
  LiblinearConfig config;
  config.footprint_bytes = 16 * kMiB;
  LiblinearWorkload ll(config);
  auto ops = Generate(ll, 30000);
  size_t in_model = 0;
  for (const auto& op : ops) {
    if (op.gva >= ll.model_base() && op.gva < ll.model_base() + ll.model_bytes()) {
      ++in_model;
    }
  }
  // 2 of 3 ops per feature touch the model vector (6% of footprint).
  EXPECT_NEAR(static_cast<double>(in_model) / static_cast<double>(ops.size()), 2.0 / 3.0, 0.05);
}

TEST(Workloads, DeterministicAcrossRuns) {
  for (const auto& name : RealWorldWorkloadNames()) {
    auto a = MakeWorkload(name, 8 * kMiB);
    auto b = MakeWorkload(name, 8 * kMiB);
    auto ops_a = Generate(*a, 4000, 11);
    auto ops_b = Generate(*b, 4000, 11);
    ASSERT_EQ(ops_a.size(), ops_b.size()) << name;
    for (size_t i = 0; i < ops_a.size(); ++i) {
      ASSERT_EQ(ops_a[i].gva, ops_b[i].gva) << name << " op " << i;
      ASSERT_EQ(ops_a[i].is_write, ops_b[i].is_write) << name;
    }
  }
}

}  // namespace
}  // namespace demeter
