// Full-system determinism: identical configuration => bit-identical results,
// for every policy and for multi-VM runs. Reproducibility is a first-class
// property of the simulation (all randomness is seeded; no wall-clock
// dependence), and every experiment in EXPERIMENTS.md relies on it.

#include <gtest/gtest.h>

#include <string>

#include "src/fault/fault.h"
#include "src/harness/machine.h"

namespace demeter {
namespace {

struct Fingerprint {
  uint64_t transactions;
  double elapsed_s;
  uint64_t accesses;
  uint64_t promoted;
  uint64_t demoted;
  uint64_t single_flushes;
  uint64_t full_flushes;
  uint64_t mgmt_total;

  bool operator==(const Fingerprint& other) const {
    return transactions == other.transactions && elapsed_s == other.elapsed_s &&
           accesses == other.accesses && promoted == other.promoted &&
           demoted == other.demoted && single_flushes == other.single_flushes &&
           full_flushes == other.full_flushes && mgmt_total == other.mgmt_total;
  }
};

Fingerprint RunOnce(PolicyKind policy, int vms, uint64_t seed,
                    const std::string& fault_spec = "") {
  MachineConfig host;
  host.tiers = {TierSpec::LocalDram(10 * kMiB * static_cast<uint64_t>(vms)),
                TierSpec::Pmem(64 * kMiB * static_cast<uint64_t>(vms))};
  host.seed = seed;
  if (!fault_spec.empty()) {
    const auto plan = FaultPlan::Parse(fault_spec);
    EXPECT_TRUE(plan.has_value()) << fault_spec;
    host.faults = *plan;
  }
  Machine machine(host);
  for (int v = 0; v < vms; ++v) {
    VmSetup setup;
    setup.vm.total_memory_bytes = 32 * kMiB;
    setup.vm.num_vcpus = 2;
    setup.workload = "gups";
    setup.footprint_bytes = 24 * kMiB;
    setup.target_transactions = 150000;
    setup.policy = policy;
    setup.policy_period = 15 * kMillisecond;
    setup.demeter.range.epoch_length = 10 * kMillisecond;
    setup.demeter.range.split_threshold = 4.0;
    setup.demeter.sample_period = 97;
    machine.AddVm(setup);
  }
  machine.Run();
  Fingerprint fp{};
  for (int v = 0; v < vms; ++v) {
    const VmRunResult& r = machine.result(v);
    fp.transactions += r.transactions;
    fp.elapsed_s += r.elapsed_s;
    fp.accesses += r.vm_stats.accesses;
    fp.promoted += r.vm_stats.pages_promoted;
    fp.demoted += r.vm_stats.pages_demoted;
    fp.single_flushes += r.tlb.single_flushes;
    fp.full_flushes += r.tlb.full_flushes;
    fp.mgmt_total += r.mgmt.Total();
  }
  return fp;
}

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, IdenticalRunsBitIdentical) {
  const PolicyKind policy = PolicyKindFromName(GetParam());
  const Fingerprint a = RunOnce(policy, 1, 42);
  const Fingerprint b = RunOnce(policy, 1, 42);
  EXPECT_TRUE(a == b) << "same seed must reproduce exactly";
}

TEST_P(DeterminismTest, DifferentSeedsDiffer) {
  const PolicyKind policy = PolicyKindFromName(GetParam());
  const Fingerprint a = RunOnce(policy, 1, 42);
  const Fingerprint b = RunOnce(policy, 1, 43);
  // Access streams differ, so at minimum the timing fingerprint moves.
  EXPECT_NE(a.elapsed_s, b.elapsed_s);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DeterminismTest,
                         ::testing::Values("static", "demeter", "tpp", "tpp-h", "memtis",
                                           "nomad", "damon"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(DeterminismMultiVm, ThreeVmRunReproduces) {
  const Fingerprint a = RunOnce(PolicyKind::kDemeter, 3, 7);
  const Fingerprint b = RunOnce(PolicyKind::kDemeter, 3, 7);
  EXPECT_TRUE(a == b);
}

// Faulted runs are just as deterministic as fault-free ones: the injector's
// per-(site, vm) streams derive from the machine seed, and stall/crash
// windows are pure functions of virtual time.
constexpr char kFaultSpec[] =
    "bdelay=0.2/100us,bdrop=0.3,stall=2ms/8ms,crash=3ms/20ms,"
    "pebsdrop=0.3,migfail=0.2,tierex=0.05,vqcap=4";

TEST(DeterminismFaulted, IdenticalFaultedRunsBitIdentical) {
  const Fingerprint a = RunOnce(PolicyKind::kDemeter, 1, 42, kFaultSpec);
  const Fingerprint b = RunOnce(PolicyKind::kDemeter, 1, 42, kFaultSpec);
  EXPECT_TRUE(a == b) << "same seed + same fault spec must reproduce exactly";
  // And the faults actually engaged — this is not a vacuous pass.
  const Fingerprint clean = RunOnce(PolicyKind::kDemeter, 1, 42);
  EXPECT_NE(a.elapsed_s, clean.elapsed_s);
}

TEST(DeterminismFaulted, FaultedMultiVmReproduces) {
  const Fingerprint a = RunOnce(PolicyKind::kDemeter, 3, 7, kFaultSpec);
  const Fingerprint b = RunOnce(PolicyKind::kDemeter, 3, 7, kFaultSpec);
  EXPECT_TRUE(a == b);
}

TEST(DeterminismFaulted, FaultSeedChangesDecisions) {
  const Fingerprint a = RunOnce(PolicyKind::kDemeter, 1, 42, kFaultSpec);
  const Fingerprint b = RunOnce(PolicyKind::kDemeter, 1, 43, kFaultSpec);
  EXPECT_NE(a.elapsed_s, b.elapsed_s);
}

// Sharding is an ownership structure, not a schedule: the shard count must
// be invisible down to the last byte of the metrics JSON, including under
// lifecycle churn (deferred boots, departures) and faults. This is the
// guarantee that lets bench/dense_host pick shards for locality while every
// pinned baseline stays valid.
std::string ShardedMetricsJson(int shards, int vms, uint64_t seed,
                               const std::string& fault_spec = "") {
  MachineConfig host;
  host.tiers = {TierSpec::LocalDram(2 * kMiB * static_cast<uint64_t>(vms)),
                TierSpec::Pmem(12 * kMiB * static_cast<uint64_t>(vms))};
  host.seed = seed;
  host.shards = shards;
  if (!fault_spec.empty()) {
    const auto plan = FaultPlan::Parse(fault_spec);
    EXPECT_TRUE(plan.has_value()) << fault_spec;
    host.faults = *plan;
  }
  Machine machine(host);
  for (int v = 0; v < vms; ++v) {
    VmSetup setup;
    setup.vm.total_memory_bytes = 8 * kMiB;
    setup.vm.num_vcpus = 2;
    setup.workload = "gups";
    setup.footprint_bytes = 6 * kMiB;
    setup.target_transactions = 4000;
    setup.policy = v % 2 == 0 ? PolicyKind::kDemeter : PolicyKind::kTpp;
    setup.policy_period = 15 * kMillisecond;
    setup.demeter.range.epoch_length = 10 * kMillisecond;
    setup.demeter.sample_period = 97;
    // Churn: every fourth VM boots late (crossing shard refresh paths),
    // every third departs on finish (exercising DeactivateVm mid-run).
    if (v % 4 == 3) {
      setup.boot_at = 5 * kMillisecond * static_cast<Nanos>(1 + v % 3);
    }
    setup.depart_on_finish = v % 3 == 0;
    machine.AddVm(setup);
  }
  machine.Run();
  std::string json;
  machine.SnapshotMetrics().AppendJson(json);
  EXPECT_FALSE(json.empty());
  return json;
}

TEST(DeterminismSharded, ShardCountIsByteInvisibleAt64Vms) {
  const std::string one = ShardedMetricsJson(1, 64, 42);
  EXPECT_EQ(one, ShardedMetricsJson(4, 64, 42));
  EXPECT_EQ(one, ShardedMetricsJson(8, 64, 42));
}

TEST(DeterminismSharded, ShardCountIsByteInvisibleUnderFaults) {
  const std::string one = ShardedMetricsJson(1, 64, 42, kFaultSpec);
  EXPECT_EQ(one, ShardedMetricsJson(4, 64, 42, kFaultSpec));
  EXPECT_EQ(one, ShardedMetricsJson(8, 64, 42, kFaultSpec));
}

}  // namespace
}  // namespace demeter
