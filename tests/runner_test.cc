// Runner subsystem tests: thread-pool semantics (exception isolation,
// cancellation, idle-wait), content-hash seed derivation, result ordering,
// retry policy, and the headline guarantee — the same ExperimentSpec set run
// with --jobs=1 and --jobs=8 yields identical VmRunResults. Run under
// -fsanitize=thread in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/runner/result_sink.h"
#include "src/runner/runner.h"
#include "src/runner/thread_pool.h"

namespace demeter {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ExceptionIsolation) {
  ThreadPool pool(2);
  std::atomic<int> survived{0};
  auto bad = pool.Submit([] { throw std::runtime_error("job failure"); });
  std::vector<std::future<void>> good;
  for (int i = 0; i < 16; ++i) {
    good.push_back(pool.Submit([&survived] { survived.fetch_add(1); }));
  }
  EXPECT_THROW(bad.get(), std::runtime_error);
  for (auto& future : good) {
    future.get();  // Workers outlive the throwing job.
  }
  EXPECT_EQ(survived.load(), 16);
}

TEST(ThreadPoolTest, CancelPendingDropsOnlyUnstartedJobs) {
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::promise<void> started;
  std::atomic<int> ran{0};
  // Occupies the single worker until the gate opens.
  auto blocker = pool.Submit([open, &started, &ran] {
    started.set_value();
    open.wait();
    ran.fetch_add(1);
  });
  started.get_future().wait();  // The blocker is in flight, not queued.
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 8; ++i) {
    queued.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  const size_t dropped = pool.CancelPending();
  EXPECT_EQ(dropped, 8u);
  gate.set_value();
  blocker.get();
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);  // Only the in-flight job ran.
  for (auto& future : queued) {
    EXPECT_THROW(future.get(), std::future_error);  // broken_promise
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, DestructorAbandonsPendingJobs) {
  auto pool = std::make_unique<ThreadPool>(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::promise<void> started;
  auto blocker = pool->Submit([open, &started] {
    started.set_value();
    open.wait();
  });
  started.get_future().wait();  // Worker is busy; the next job must queue.
  std::future<void> queued = pool->Submit([] {});
  // Destroy the pool while the worker is blocked: the destructor must break
  // the queued job's promise before joining. The destructor itself blocks on
  // the worker, so run it on a helper thread and release the gate only after
  // the abandonment is observable.
  std::thread destroyer([&pool] { pool.reset(); });
  queued.wait();  // Ready (with broken_promise) once the queue is cleared.
  gate.set_value();
  destroyer.join();
  blocker.get();
  EXPECT_THROW(queued.get(), std::future_error);
}

// ---------------------------------------------------- Spec hashing and seeds

ExperimentSpec SmallSpec(const std::string& name, const std::string& workload,
                         PolicyKind policy, uint64_t transactions = 100000) {
  ExperimentSpec spec;
  spec.name = name;
  spec.tag = workload;
  spec.config.tiers = {TierSpec::LocalDram(10 * kMiB), TierSpec::Pmem(64 * kMiB)};
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.num_vcpus = 2;
  setup.workload = workload;
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = transactions;
  setup.policy = policy;
  setup.policy_period = 15 * kMillisecond;
  setup.demeter.range.epoch_length = 10 * kMillisecond;
  setup.demeter.range.split_threshold = 4.0;
  setup.demeter.sample_period = 97;
  spec.vms.push_back(setup);
  return spec;
}

TEST(ExperimentSpecTest, ContentHashIsContentOnly) {
  const ExperimentSpec a = SmallSpec("x", "gups", PolicyKind::kDemeter);
  const ExperimentSpec b = SmallSpec("x", "gups", PolicyKind::kDemeter);
  EXPECT_EQ(SpecContentHash(a), SpecContentHash(b));
  EXPECT_EQ(DeriveSeed(a), DeriveSeed(b));
}

TEST(ExperimentSpecTest, EmptyFaultPlanLeavesHashUnchanged) {
  // An empty plan must hash exactly like a spec that predates the fault
  // subsystem, so every pre-existing experiment keeps its seed (and thus
  // its bit-identical results).
  const ExperimentSpec base = SmallSpec("x", "gups", PolicyKind::kDemeter);
  ExperimentSpec with_empty = base;
  with_empty.config.faults = FaultPlan{};
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(with_empty));
}

TEST(ExperimentSpecTest, FaultPlanAndDegradationReseed) {
  const ExperimentSpec base = SmallSpec("x", "gups", PolicyKind::kDemeter);
  ExperimentSpec faulted = base;
  faulted.config.faults = *FaultPlan::Parse("bdrop=0.1");
  EXPECT_NE(SpecContentHash(base), SpecContentHash(faulted));
  ExperimentSpec other_fault = faulted;
  other_fault.config.faults = *FaultPlan::Parse("bdrop=0.2");
  EXPECT_NE(SpecContentHash(faulted), SpecContentHash(other_fault));
  // Observability toggles must NOT reseed: they observe the run, they are
  // not part of it.
  ExperimentSpec checked = base;
  checked.config.check_invariants = true;
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(checked));
  // Non-default degradation settings are behaviour, so they do reseed.
  ExperimentSpec degraded = base;
  degraded.vms[0].demeter.degradation.host_batch_pages = 64;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(degraded));
  ExperimentSpec ablation = base;
  ablation.vms[0].demeter.degradation.enabled = false;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(ablation));
}

TEST(ExperimentSpecTest, AnyFieldChangeReseeds) {
  const ExperimentSpec base = SmallSpec("x", "gups", PolicyKind::kDemeter);
  ExperimentSpec renamed = base;
  renamed.name = "y";
  ExperimentSpec repoliced = base;
  repoliced.vms[0].policy = PolicyKind::kTpp;
  ExperimentSpec reseeded = base;
  reseeded.config.seed = 43;
  ExperimentSpec resized = base;
  resized.vms[0].footprint_bytes += kPageSize;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(renamed));
  EXPECT_NE(SpecContentHash(base), SpecContentHash(repoliced));
  EXPECT_NE(SpecContentHash(base), SpecContentHash(reseeded));
  EXPECT_NE(SpecContentHash(base), SpecContentHash(resized));
}

// --------------------------------------------------------- Runner mechanics

RunnerOptions QuietOptions(int jobs) {
  RunnerOptions options;
  options.jobs = jobs;
  options.progress = false;
  return options;
}

TEST(RunnerTest, ResultsComeBackInSpecOrder) {
  // Jobs finish in reverse submission order (later specs sleep less); the
  // result vector must still match submission order.
  RunnerOptions options = QuietOptions(4);
  options.run_fn = [](const ExperimentSpec& spec) {
    const int index = spec.name.back() - '0';
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * (4 - index)));
    ExperimentResult result;
    result.spec = spec;
    result.ok = true;
    return result;
  };
  ExperimentRunner runner(options);
  for (int i = 0; i < 4; ++i) {
    runner.Submit(SmallSpec("spec" + std::to_string(i), "gups", PolicyKind::kStatic));
  }
  const std::vector<ExperimentResult> results = runner.RunAll();
  ASSERT_EQ(results.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].spec.name, "spec" + std::to_string(i));
    EXPECT_TRUE(results[static_cast<size_t>(i)].ok);
  }
}

TEST(RunnerTest, TransientFailureIsRetriedOnce) {
  std::mutex mu;
  std::map<std::string, int> tries;
  RunnerOptions options = QuietOptions(2);
  options.run_fn = [&](const ExperimentSpec& spec) -> ExperimentResult {
    int attempt;
    {
      std::lock_guard<std::mutex> lock(mu);
      attempt = ++tries[spec.name];
    }
    if (spec.name == "flaky" && attempt == 1) {
      throw std::runtime_error("transient");
    }
    if (spec.name == "broken") {
      throw std::runtime_error("permanent");
    }
    ExperimentResult result;
    result.spec = spec;
    result.ok = true;
    return result;
  };
  ExperimentRunner runner(options);
  runner.Submit(SmallSpec("flaky", "gups", PolicyKind::kStatic));
  runner.Submit(SmallSpec("broken", "gups", PolicyKind::kStatic));
  runner.Submit(SmallSpec("fine", "gups", PolicyKind::kStatic));
  const std::vector<ExperimentResult> results = runner.RunAll();
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].attempts, 2);
  EXPECT_EQ(results[1].error, "permanent");
  EXPECT_TRUE(results[2].ok);
  EXPECT_EQ(results[2].attempts, 1);
}

// ----------------------------------------------- Determinism across --jobs=N

std::vector<ExperimentSpec> DeterminismSpecs() {
  std::vector<ExperimentSpec> specs = {
      SmallSpec("a", "gups", PolicyKind::kDemeter, 80000),
      SmallSpec("b", "gups", PolicyKind::kTpp, 80000),
      SmallSpec("c", "btree", PolicyKind::kDemeter, 60000),
      SmallSpec("d", "gups", PolicyKind::kMemtis, 80000),
  };
  // A faulted spec rides along so --jobs determinism covers the injector
  // (its streams must key off the spec seed, never thread identity).
  ExperimentSpec faulted = SmallSpec("e", "gups", PolicyKind::kDemeter, 80000);
  faulted.config.faults =
      *FaultPlan::Parse("bdrop=0.3,stall=2ms/8ms,crash=3ms/20ms,pebsdrop=0.3,migfail=0.2");
  specs.push_back(faulted);
  return specs;
}

std::vector<ExperimentResult> RunWithJobs(int jobs) {
  ExperimentRunner runner(QuietOptions(jobs));
  runner.SubmitAll(DeterminismSpecs());
  return runner.RunAll();
}

TEST(RunnerDeterminismTest, SameResultsWithOneAndEightJobs) {
  const std::vector<ExperimentResult> serial = RunWithJobs(1);
  const std::vector<ExperimentResult> parallel = RunWithJobs(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const ExperimentResult& a = serial[i];
    const ExperimentResult& b = parallel[i];
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.seed, b.seed);
    ASSERT_EQ(a.vms.size(), b.vms.size());
    for (size_t v = 0; v < a.vms.size(); ++v) {
      const VmRunResult& x = a.vms[v];
      const VmRunResult& y = b.vms[v];
      EXPECT_EQ(x.transactions, y.transactions);
      EXPECT_EQ(x.elapsed_s, y.elapsed_s);  // Bit-identical, not approximate.
      EXPECT_EQ(x.tlb.hits, y.tlb.hits);
      EXPECT_EQ(x.tlb.misses, y.tlb.misses);
      EXPECT_EQ(x.tlb.single_flushes, y.tlb.single_flushes);
      EXPECT_EQ(x.tlb.full_flushes, y.tlb.full_flushes);
      EXPECT_EQ(x.vm_stats.accesses, y.vm_stats.accesses);
      EXPECT_EQ(x.vm_stats.pages_promoted, y.vm_stats.pages_promoted);
      EXPECT_EQ(x.vm_stats.pages_demoted, y.vm_stats.pages_demoted);
      EXPECT_EQ(x.txn_latency_ns.count(), y.txn_latency_ns.count());
      EXPECT_EQ(x.txn_latency_ns.Percentile(50), y.txn_latency_ns.Percentile(50));
      EXPECT_EQ(x.txn_latency_ns.Percentile(90), y.txn_latency_ns.Percentile(90));
      EXPECT_EQ(x.txn_latency_ns.Percentile(99), y.txn_latency_ns.Percentile(99));
      EXPECT_EQ(x.txn_latency_ns.Percentile(99.9), y.txn_latency_ns.Percentile(99.9));
    }
    // The structured serialization is byte-identical too.
    EXPECT_EQ(JsonLinesSink::ToJsonLines(a), JsonLinesSink::ToJsonLines(b));
  }
}

TEST(RunnerDeterminismTest, SeedIndependentOfSubmissionOrder) {
  std::vector<ExperimentSpec> specs = DeterminismSpecs();
  ExperimentRunner forward(QuietOptions(2));
  forward.SubmitAll(specs);
  ExperimentRunner backward(QuietOptions(2));
  for (auto it = specs.rbegin(); it != specs.rend(); ++it) {
    backward.Submit(*it);
  }
  const std::vector<ExperimentResult> f = forward.RunAll();
  const std::vector<ExperimentResult> b = backward.RunAll();
  ASSERT_EQ(f.size(), b.size());
  for (size_t i = 0; i < f.size(); ++i) {
    const ExperimentResult& fwd = f[i];
    const ExperimentResult& bwd = b[f.size() - 1 - i];
    EXPECT_EQ(fwd.spec.name, bwd.spec.name);
    EXPECT_EQ(fwd.seed, bwd.seed);
    EXPECT_EQ(fwd.vms[0].elapsed_s, bwd.vms[0].elapsed_s);
  }
}

}  // namespace
}  // namespace demeter
