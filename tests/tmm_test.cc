#include <gtest/gtest.h>

#include <memory>

#include "src/base/units.h"
#include "src/fault/invariant_checker.h"
#include "src/hyper/hypervisor.h"
#include "src/mem/host_memory.h"
#include "src/sim/event_queue.h"
#include "src/tmm/damon.h"
#include "src/tmm/htpp.h"
#include "src/tmm/memtis.h"
#include "src/tmm/nomad.h"
#include "src/tmm/policy_util.h"
#include "src/tmm/static_policy.h"
#include "src/tmm/tpp.h"

namespace demeter {
namespace {

class TmmTest : public ::testing::Test {
 protected:
  TmmTest()
      : memory_({TierSpec::LocalDram(64 * kMiB), TierSpec::Pmem(256 * kMiB)}),
        hyper_(&memory_, &events_) {}

  Vm& MakeVm() {
    VmConfig config;
    config.id = hyper_.num_vms();
    config.total_memory_bytes = 16 * kMiB;
    config.fmem_ratio = 0.25;
    config.cache_hit_rate = 0.0;
    config.num_vcpus = 2;
    return hyper_.CreateVm(config);
  }

  // Touches all pages of a freshly allocated heap region, returns base.
  uint64_t FillHeap(Vm& vm, GuestProcess& proc, uint64_t pages) {
    const uint64_t base = proc.HeapAlloc(pages * kPageSize);
    for (uint64_t i = 0; i < pages; ++i) {
      vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
    }
    return base;
  }

  // Drives `rounds` of: access the hot region `reps` times, advance time,
  // run due policy events.
  void DriveHot(Vm& vm, GuestProcess& proc, uint64_t hot_base, uint64_t hot_pages, int rounds,
                int reps = 4) {
    for (int r = 0; r < rounds; ++r) {
      for (int rep = 0; rep < reps; ++rep) {
        for (uint64_t i = 0; i < hot_pages; ++i) {
          const auto res = vm.ExecuteAccess(0, proc, hot_base + i * kPageSize, false);
          vm.vcpu(0).clock_ns += res.ns + 500;  // Pace out virtual time.
        }
      }
      vm.vcpu(0).clock_ns += 30 * kMillisecond;
      events_.RunUntil(vm.vcpu(0).now());
    }
  }

  HostMemory memory_;
  EventQueue events_;
  Hypervisor hyper_;
};

TEST_F(TmmTest, PolicyUtilTrackedRanges) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  proc.HeapAlloc(8 * kPageSize);
  proc.MmapAlloc(4 * kPageSize);
  auto ranges = TrackedPageRanges(proc);
  ASSERT_EQ(ranges.size(), 2u);
}

TEST_F(TmmTest, DemoteForHeadroomMovesOldestPages) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t base = FillHeap(vm, proc, 1024);  // FMEM holds 1024 pages.
  ASSERT_EQ(vm.kernel().node(0).free_pages(), 0u);
  double cost = 0.0;
  EXPECT_EQ(DemoteForHeadroom(vm, 10, 0, &cost), 10u);
  EXPECT_EQ(vm.kernel().node(0).free_pages(), 10u);
  EXPECT_GT(cost, 0.0);
  // The first touched (oldest) pages were demoted.
  EXPECT_EQ(vm.NodeOfVpn(proc, PageOf(base)), 1);
}

TEST_F(TmmTest, StaticPolicyDoesNothing) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  StaticPolicy policy;
  policy.Attach(vm, proc, 0);
  EXPECT_TRUE(events_.empty());
  EXPECT_STREQ(policy.name(), "static");
}

TEST_F(TmmTest, TppPromotesRepeatedlyAccessedSmemPages) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t total = vm.config().total_pages() * 7 / 8;
  const uint64_t base = FillHeap(vm, proc, total);
  // Hot: 128 pages near the end (SMEM after first touch).
  const uint64_t hot_base = base + (total - 256) * kPageSize;
  ASSERT_EQ(vm.NodeOfVpn(proc, PageOf(hot_base)), 1);

  TppPolicy policy;
  policy.Attach(vm, proc, vm.vcpu(0).now());
  DriveHot(vm, proc, hot_base, 128, 50);

  EXPECT_GT(policy.scans_run(), 5u);
  EXPECT_GT(policy.total_promoted(), 64u);
  EXPECT_EQ(vm.NodeOfVpn(proc, PageOf(hot_base)), 0) << "hot page promoted to FMEM";
  // Guest-side: single flushes only.
  EXPECT_EQ(vm.AggregateTlbStats().full_flushes, 0u);
  EXPECT_GT(vm.AggregateTlbStats().single_flushes, 0u);
  EXPECT_GT(vm.mgmt_account().ForStage(TmmStage::kTracking), 0u);
  EXPECT_GT(vm.mgmt_account().ForStage(TmmStage::kMigration), 0u);
}

TEST_F(TmmTest, HTppPromotesViaEptMigration) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t total = vm.config().total_pages() * 7 / 8;
  const uint64_t base = FillHeap(vm, proc, total);
  const uint64_t hot_base = base + (total - 256) * kPageSize;

  HTppPolicy policy;
  policy.Attach(vm, proc, vm.vcpu(0).now());
  DriveHot(vm, proc, hot_base, 128, 50);

  EXPECT_GT(policy.scans_run(), 5u);
  EXPECT_GT(policy.total_promoted(), 32u);
  // Guest mapping unchanged, but the backing frame moved to the DRAM tier.
  const PageNum gpa = proc.gpt().Lookup(PageOf(hot_base)).target;
  EXPECT_EQ(vm.kernel().NodeOfGpa(gpa), 1) << "guest still thinks it is SMEM";
  const FrameId frame = vm.ept().Lookup(gpa).target;
  EXPECT_EQ(memory_.TierOf(frame), kFmemTier) << "host moved it under the covers";
  // Hypervisor-based: full flushes, many of them.
  EXPECT_GT(vm.AggregateTlbStats().full_flushes, 10u);
}

TEST_F(TmmTest, MemtisSamplesAndPromotes) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t total = vm.config().total_pages() * 7 / 8;
  const uint64_t base = FillHeap(vm, proc, total);
  const uint64_t hot_base = base + (total - 256) * kPageSize;

  MemtisConfig config;
  config.sample_period = 19;  // Dense for a short test.
  config.classify_period = 100 * kMillisecond;
  config.hot_count_threshold = 1.0;
  MemtisPolicy policy(config);
  policy.Attach(vm, proc, vm.vcpu(0).now());
  DriveHot(vm, proc, hot_base, 128, 50);

  EXPECT_GT(policy.samples_processed(), 500u);
  EXPECT_GT(policy.total_promoted(), 32u);
  EXPECT_EQ(vm.NodeOfVpn(proc, PageOf(hot_base)), 0);
  EXPECT_GT(vm.mgmt_account().ForStage(TmmStage::kTracking), 0u)
      << "dedicated polling thread burns CPU";
}

TEST_F(TmmTest, NomadTransactionsAbortAndRetry) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t total = vm.config().total_pages() * 7 / 8;
  const uint64_t base = FillHeap(vm, proc, total);
  const uint64_t hot_base = base + (total - 256) * kPageSize;

  NomadConfig config;
  config.dirty_abort_probability = 0.5;  // Force visible abort traffic.
  NomadPolicy policy(config);
  policy.Attach(vm, proc, vm.vcpu(0).now());
  DriveHot(vm, proc, hot_base, 128, 50);

  EXPECT_GT(policy.total_promoted(), 16u);
  EXPECT_GT(policy.transaction_aborts(), 0u) << "shadow copies race writers";
}

TEST_F(TmmTest, NomadMigrationCostExceedsTpp) {
  // Same scenario under both policies: Nomad's shadow copies and aborts must
  // cost more migration CPU per promoted page.
  double tpp_cost_per_page;
  double nomad_cost_per_page;
  {
    Vm& vm = MakeVm();
    GuestProcess& proc = vm.kernel().CreateProcess();
    const uint64_t total = vm.config().total_pages() * 7 / 8;
    const uint64_t base = FillHeap(vm, proc, total);
    TppPolicy policy;
    policy.Attach(vm, proc, vm.vcpu(0).now());
    DriveHot(vm, proc, base + (total - 256) * kPageSize, 128, 25);
    tpp_cost_per_page = static_cast<double>(vm.mgmt_account().ForStage(TmmStage::kMigration)) /
                        std::max<uint64_t>(1, policy.total_promoted() + policy.total_demoted());
  }
  {
    Vm& vm = MakeVm();
    GuestProcess& proc = vm.kernel().CreateProcess();
    const uint64_t total = vm.config().total_pages() * 7 / 8;
    const uint64_t base = FillHeap(vm, proc, total);
    NomadPolicy policy;
    policy.Attach(vm, proc, vm.vcpu(0).now());
    DriveHot(vm, proc, base + (total - 256) * kPageSize, 128, 25);
    nomad_cost_per_page = static_cast<double>(vm.mgmt_account().ForStage(TmmStage::kMigration)) /
                          std::max<uint64_t>(1, policy.total_promoted() + policy.total_demoted());
  }
  EXPECT_GT(nomad_cost_per_page, tpp_cost_per_page);
}

TEST_F(TmmTest, StoppedPoliciesCeaseWork) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  FillHeap(vm, proc, 512);
  TppPolicy policy;
  policy.Attach(vm, proc, 0);
  policy.Stop();
  vm.vcpu(0).clock_ns += static_cast<double>(10 * kSecond);
  events_.RunUntil(vm.vcpu(0).now());
  EXPECT_LE(policy.scans_run(), 1u);
}

// ----------------------------------------------------- Three-tier placement

// A host whose DRAM tiers are smaller than the VM, so first-touch spill
// continues the chain into the far swap tier and every policy has both
// swap-backed pages to promote and far headroom to demote into.
class ThreeTierTmmTest : public ::testing::Test {
 protected:
  ThreeTierTmmTest()
      : memory_({TierSpec::LocalDram(4 * kMiB), TierSpec::Pmem(6 * kMiB),
                 TierSpec::Zswap(64 * kMiB)}),
        hyper_(&memory_, &events_) {
    hyper_.EnableSwap(SwapDeviceConfig{});
  }

  Vm& MakeVm() {
    VmConfig config;
    config.id = hyper_.num_vms();
    config.total_memory_bytes = 16 * kMiB;
    config.fmem_ratio = 0.25;
    config.cache_hit_rate = 0.0;
    config.num_vcpus = 2;
    return hyper_.CreateVm(config);
  }

  uint64_t FillHeap(Vm& vm, GuestProcess& proc, uint64_t pages) {
    const uint64_t base = proc.HeapAlloc(pages * kPageSize);
    for (uint64_t i = 0; i < pages; ++i) {
      vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
    }
    return base;
  }

  void DriveHot(Vm& vm, GuestProcess& proc, uint64_t hot_base, uint64_t hot_pages, int rounds,
                int reps = 4) {
    for (int r = 0; r < rounds; ++r) {
      for (int rep = 0; rep < reps; ++rep) {
        for (uint64_t i = 0; i < hot_pages; ++i) {
          const auto res = vm.ExecuteAccess(0, proc, hot_base + i * kPageSize, false);
          vm.vcpu(0).clock_ns += res.ns + 500;
        }
      }
      vm.vcpu(0).clock_ns += 30 * kMillisecond;
      events_.RunUntil(vm.vcpu(0).now());
    }
  }

  HostMemory memory_;
  EventQueue events_;
  Hypervisor hyper_;
};

TEST_F(ThreeTierTmmTest, FarDemoteForHeadroomMovesColdSmemPagesOnly) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  FillHeap(vm, proc, 2048);  // 1024 FMEM + 1024 SMEM, every EPT A bit set.
  ASSERT_EQ(memory_.UsedPages(kSwapTier), 0u);

  // Every page was just touched, so the first (arming) call only clears
  // A bits and must refuse to demote.
  double cost = 0.0;
  EXPECT_EQ(FarDemoteForHeadroom(vm, 64, 0, &cost), 0u);

  // Re-touch a handful of hot pages; the next call picks only cold SMEM
  // victims — never the hot ones, never FMEM.
  const uint64_t base = proc.space().vmas()[0].start;
  const uint64_t hot = base + 1500 * kPageSize;  // SMEM-backed region.
  for (uint64_t i = 0; i < 16; ++i) {
    vm.ExecuteAccess(0, proc, hot + i * kPageSize, false);
  }
  const uint64_t moved = FarDemoteForHeadroom(vm, 64, 0, &cost);
  EXPECT_EQ(moved, 64u);
  EXPECT_GT(cost, 0.0);
  EXPECT_EQ(memory_.UsedPages(kSwapTier), 64u);
  EXPECT_EQ(hyper_.swap()->ActiveSlots(), 64u) << "every far demotion opened a slot";
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(SwapBacked(vm, proc, PageOf(hot) + i)) << "hot page " << i << " demoted";
  }
  EXPECT_TRUE(InvariantChecker::Check(hyper_, {}).ok());
}

TEST_F(ThreeTierTmmTest, SwapBackedSeesOnlyFarPages) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t base = FillHeap(vm, proc, 3584);  // Overflows into swap.
  ASSERT_GT(memory_.UsedPages(kSwapTier), 0u);
  EXPECT_FALSE(SwapBacked(vm, proc, PageOf(base))) << "first touch landed in FMEM";
  EXPECT_TRUE(SwapBacked(vm, proc, PageOf(base) + 3583)) << "last touch spilled far";
  EXPECT_FALSE(SwapBacked(vm, proc, PageOf(base) + 4000)) << "unmapped page is not far";
}

TEST_F(ThreeTierTmmTest, TppFarDemotesWhenSmemIsTight) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t total = 3584;
  const uint64_t base = FillHeap(vm, proc, total);
  const uint64_t hot_base = base + (total - 256) * kPageSize;
  ASSERT_TRUE(SwapBacked(vm, proc, PageOf(hot_base)));

  TppPolicy policy;
  policy.Attach(vm, proc, vm.vcpu(0).now());
  DriveHot(vm, proc, hot_base, 128, 50);

  // The chain ran in both directions: cold SMEM pages continued down to
  // swap (SMEM has no free headroom), and the hot far pages came back up.
  EXPECT_GT(policy.total_far_demoted(), 0u) << "SMEM -> swap leg never ran";
  EXPECT_GT(policy.total_promoted(), 0u);
  EXPECT_FALSE(SwapBacked(vm, proc, PageOf(hot_base))) << "hot page still far";
  EXPECT_TRUE(InvariantChecker::Check(hyper_, {}).ok());
}

// Every delegated policy must promote a hot swap-backed page back up the
// chain, and leave the cross-layer state (rmap, slots, TLBs) consistent.
TEST_F(ThreeTierTmmTest, EveryPolicyPromotesHotSwapBackedPages) {
  struct Entry {
    const char* name;
    std::unique_ptr<TmmPolicy> policy;
  };
  MemtisConfig memtis_config;
  memtis_config.sample_period = 19;
  memtis_config.classify_period = 100 * kMillisecond;
  memtis_config.hot_count_threshold = 1.0;
  Entry entries[] = {
      {"tpp", std::make_unique<TppPolicy>()},
      {"htpp", std::make_unique<HTppPolicy>()},
      {"memtis", std::make_unique<MemtisPolicy>(memtis_config)},
      {"nomad", std::make_unique<NomadPolicy>()},
      {"damon", std::make_unique<DamonPolicy>()},
  };
  for (Entry& entry : entries) {
    Vm& vm = MakeVm();
    GuestProcess& proc = vm.kernel().CreateProcess();
    const uint64_t total = 3584;
    const uint64_t base = FillHeap(vm, proc, total);
    const uint64_t hot_base = base + (total - 128) * kPageSize;
    ASSERT_TRUE(SwapBacked(vm, proc, PageOf(hot_base))) << entry.name;

    entry.policy->Attach(vm, proc, vm.vcpu(0).now());
    DriveHot(vm, proc, hot_base, 64, 50);
    entry.policy->Stop();

    EXPECT_FALSE(SwapBacked(vm, proc, PageOf(hot_base)))
        << entry.name << ": hot page still swap-backed after 50 scan rounds";
    // The guest mapping survived the round trip: the rmap still names the
    // page, and no TLB anywhere went stale.
    const PageNum gpa = proc.gpt().Lookup(PageOf(hot_base)).target;
    const RmapEntry* rmap = vm.kernel().Rmap(gpa);
    ASSERT_NE(rmap, nullptr) << entry.name;
    EXPECT_EQ(rmap->vpn, PageOf(hot_base)) << entry.name;
    EXPECT_TRUE(InvariantChecker::Check(hyper_, {}).ok()) << entry.name;

    // Each policy gets the host to itself: the finished VM departs, which
    // must return every frame and release every swap slot it held.
    hyper_.ReclaimVm(vm);
    EXPECT_EQ(hyper_.swap()->ActiveSlotsForVm(vm.id()), 0u)
        << entry.name << ": departure leaked swap slots";
    EXPECT_TRUE(InvariantChecker::Check(hyper_, {}).ok()) << entry.name << " post-departure";
  }
}

}  // namespace
}  // namespace demeter
