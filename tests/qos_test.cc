#include <gtest/gtest.h>

#include "src/balloon/balloon.h"
#include "src/hyper/hypervisor.h"
#include "src/qos/qos_manager.h"
#include "src/sim/event_queue.h"

namespace demeter {
namespace {

class QosTest : public ::testing::Test {
 protected:
  QosTest()
      : memory_({TierSpec::LocalDram(64 * kMiB), TierSpec::Pmem(256 * kMiB)}),
        hyper_(&memory_, &events_) {}

  Vm& MakeVm() {
    VmConfig config;
    config.id = hyper_.num_vms();
    config.total_memory_bytes = 16 * kMiB;
    config.fmem_ratio = 0.25;  // 1024 FMEM pages.
    config.cache_hit_rate = 0.0;
    return hyper_.CreateVm(config);
  }

  // Makes `vm` look demanding: FMEM full, promotions happening.
  void MakeDemanding(Vm& vm) {
    GuestProcess& proc = vm.kernel().CreateProcess();
    const uint64_t pages = vm.config().total_pages() * 3 / 4;
    const uint64_t base = proc.HeapAlloc(pages * kPageSize);
    for (uint64_t i = 0; i < pages; ++i) {
      vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
    }
    vm.stats().pages_promoted += 100;  // Simulated recent promotion activity.
  }

  void Settle() {
    while (!events_.empty()) {
      events_.RunUntil(events_.NextEventTime());
    }
  }

  HostMemory memory_;
  EventQueue events_;
  Hypervisor hyper_;
};

TEST_F(QosTest, ShiftsFmemFromIdleToDemanding) {
  Vm& busy = MakeVm();
  Vm& idle = MakeVm();
  MakeDemanding(busy);
  DemeterBalloon busy_balloon(&busy);
  DemeterBalloon idle_balloon(&idle);

  QosConfig config;
  config.period = 10 * kMillisecond;
  QosManager qos(2048, config);
  qos.AddTenant(&busy, &busy_balloon, /*weight=*/2.0);
  qos.AddTenant(&idle, &idle_balloon, /*weight=*/1.0);

  // Two rounds: the first gathers telemetry, the second acts on it.
  qos.Rebalance(0);
  Settle();
  qos.Rebalance(kSecond);
  Settle();

  EXPECT_GT(qos.pages_shifted(), 0u);
  EXPECT_GT(busy.kernel().node(0).present_pages(), 1024u) << "receiver grew";
  EXPECT_LT(idle.kernel().node(0).present_pages(), 1024u) << "donor shrank";
}

TEST_F(QosTest, NoShiftWhenNobodyDemands) {
  Vm& a = MakeVm();
  Vm& b = MakeVm();
  DemeterBalloon balloon_a(&a);
  DemeterBalloon balloon_b(&b);
  QosManager qos(2048);
  qos.AddTenant(&a, &balloon_a, 1.0);
  qos.AddTenant(&b, &balloon_b, 1.0);
  qos.Rebalance(0);
  Settle();
  qos.Rebalance(kSecond);
  Settle();
  EXPECT_EQ(qos.pages_shifted(), 0u);
  EXPECT_EQ(a.kernel().node(0).present_pages(), 1024u);
  EXPECT_EQ(b.kernel().node(0).present_pages(), 1024u);
}

TEST_F(QosTest, NoShiftWhenEveryoneDemands) {
  Vm& a = MakeVm();
  Vm& b = MakeVm();
  MakeDemanding(a);
  MakeDemanding(b);
  DemeterBalloon balloon_a(&a);
  DemeterBalloon balloon_b(&b);
  QosManager qos(2048);
  qos.AddTenant(&a, &balloon_a, 1.0);
  qos.AddTenant(&b, &balloon_b, 1.0);
  qos.Rebalance(0);
  Settle();
  qos.Rebalance(kSecond);
  Settle();
  EXPECT_EQ(qos.pages_shifted(), 0u) << "no slack to redistribute";
}

TEST_F(QosTest, DonorKeepsGuarantee) {
  Vm& busy = MakeVm();
  Vm& idle = MakeVm();
  MakeDemanding(busy);
  DemeterBalloon busy_balloon(&busy);
  DemeterBalloon idle_balloon(&idle);
  QosConfig config;
  config.guaranteed_fraction = 0.5;
  config.max_shift_fraction = 1.0;  // No per-round cap: test the guarantee.
  QosManager qos(2048, config);
  qos.AddTenant(&busy, &busy_balloon, 1.0);
  qos.AddTenant(&idle, &idle_balloon, 1.0);
  for (int round = 0; round < 8; ++round) {
    qos.Rebalance(static_cast<Nanos>(round) * kSecond);
    Settle();
  }
  // Fair share 1024, guarantee 512: the idle donor never dips below it.
  EXPECT_GE(idle.kernel().node(0).present_pages(), 512u);
}

TEST_F(QosTest, PeriodicOperationViaEventQueue) {
  Vm& busy = MakeVm();
  Vm& idle = MakeVm();
  MakeDemanding(busy);
  DemeterBalloon busy_balloon(&busy);
  DemeterBalloon idle_balloon(&idle);
  QosConfig config;
  config.period = 10 * kMillisecond;
  QosManager qos(2048, config);
  qos.AddTenant(&busy, &busy_balloon, 4.0);
  qos.AddTenant(&idle, &idle_balloon, 1.0);
  qos.Start(&events_, 0);
  events_.RunUntil(100 * kMillisecond);
  EXPECT_GE(qos.rebalance_rounds(), 5u);
  qos.Stop();
  const uint64_t rounds = qos.rebalance_rounds();
  events_.RunUntil(kSecond);
  EXPECT_EQ(qos.rebalance_rounds(), rounds) << "stopped manager stays stopped";
}

}  // namespace
}  // namespace demeter
