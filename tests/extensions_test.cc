#include <gtest/gtest.h>

#include "src/core/api.h"
#include "src/harness/machine.h"
#include "src/mmu/tlb.h"
#include "src/tmm/damon.h"

namespace demeter {
namespace {

// ---- Cold-walk factor after full invalidation ---------------------------------

TEST(TlbColdWalk, FullFlushCoolsWalkCaches) {
  Tlb tlb(2, 2);
  EXPECT_DOUBLE_EQ(tlb.ConsumeWalkFactor(), 1.0) << "warm before any flush";
  tlb.InvalidateAll();
  EXPECT_GT(tlb.ConsumeWalkFactor(), 1.0);
}

TEST(TlbColdWalk, RewarmsAfterCapacityMisses) {
  Tlb tlb(2, 2);  // Capacity 4.
  tlb.InvalidateAll();
  int cold = 0;
  for (int i = 0; i < 64; ++i) {
    if (tlb.ConsumeWalkFactor() > 1.0) {
      ++cold;
    }
  }
  EXPECT_EQ(cold, 4) << "exactly `capacity` misses pay the cold factor";
  EXPECT_DOUBLE_EQ(tlb.ConsumeWalkFactor(), 1.0);
}

TEST(TlbColdWalk, BackToBackFlushesResetRatherThanStack) {
  // Regression (inverted): budgets used to stack across flushes, charging up
  // to 4x capacity cold walks after a flush burst. A flush empties the TLB;
  // rewarming it costs exactly `capacity` walks no matter how many flushes
  // preceded it.
  Tlb tlb(2, 2);
  for (int i = 0; i < 100; ++i) {
    tlb.InvalidateAll();
  }
  int cold = 0;
  while (tlb.ConsumeWalkFactor() > 1.0) {
    ++cold;
  }
  EXPECT_EQ(cold, static_cast<int>(tlb.capacity()))
      << "repeated InvalidateAll must restart the rewarm window, not extend it";
}

TEST(TlbColdWalk, SingleFlushDoesNotCool) {
  Tlb tlb(2, 2);
  tlb.Insert(1, 1);
  tlb.InvalidatePage(1);
  EXPECT_DOUBLE_EQ(tlb.ConsumeWalkFactor(), 1.0);
}

// ---- DAMON-style policy ---------------------------------------------------------

class DamonTest : public ::testing::Test {
 protected:
  DamonTest()
      : memory_({TierSpec::LocalDram(32 * kMiB), TierSpec::Pmem(128 * kMiB)}),
        hyper_(&memory_, &events_) {}

  HostMemory memory_;
  EventQueue events_;
  Hypervisor hyper_;
};

TEST_F(DamonTest, PromotesSampledHotRegion) {
  VmConfig config;
  config.total_memory_bytes = 16 * kMiB;
  config.fmem_ratio = 0.25;
  config.cache_hit_rate = 0.0;
  Vm& vm = hyper_.CreateVm(config);
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t pages = vm.config().total_pages() * 7 / 8;
  const uint64_t base = proc.HeapAlloc(pages * kPageSize);
  for (uint64_t i = 0; i < pages; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
  }
  const uint64_t hot_base = base + (pages - 256) * kPageSize;
  ASSERT_EQ(vm.NodeOfVpn(proc, PageOf(hot_base)), 1);

  DamonConfig dconfig;
  dconfig.sample_interval = 1 * kMillisecond;
  dconfig.aggregation_interval = 10 * kMillisecond;
  dconfig.hot_score = 2;
  DamonPolicy policy(dconfig);
  policy.Attach(vm, proc, vm.vcpu(0).now());

  Rng rng(3);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 512; ++i) {
      const uint64_t addr = hot_base + rng.NextBelow(256 * kPageSize - 8);
      const auto r = vm.ExecuteAccess(0, proc, addr, false);
      vm.vcpu(0).clock_ns += r.ns + 500;
    }
    vm.vcpu(0).clock_ns += static_cast<double>(5 * kMillisecond);
    events_.RunUntil(vm.vcpu(0).now());
  }
  EXPECT_GT(policy.probes(), 1000u);
  EXPECT_GT(policy.total_promoted(), 64u);
  EXPECT_LE(policy.regions().size(), 100u) << "region budget respected";
  // A-bit based: must issue single flushes, never full ones.
  EXPECT_GT(vm.AggregateTlbStats().single_flushes, 0u);
  EXPECT_EQ(vm.AggregateTlbStats().full_flushes, 0u);
}

TEST_F(DamonTest, RegionsCoverTrackedSpace) {
  VmConfig config;
  config.total_memory_bytes = 16 * kMiB;
  Vm& vm = hyper_.CreateVm(config);
  GuestProcess& proc = vm.kernel().CreateProcess();
  proc.HeapAlloc(4 * kMiB);
  proc.MmapAlloc(2 * kMiB);
  DamonPolicy policy;
  policy.Attach(vm, proc, 0);
  uint64_t covered = 0;
  for (const auto& region : policy.regions()) {
    covered += region.end - region.start;
  }
  EXPECT_GE(covered, 6 * kMiB);
}

// ---- Demeter ablation configurations --------------------------------------------

MachineConfig AblationHost() {
  MachineConfig config;
  config.tiers = {TierSpec::LocalDram(10 * kMiB), TierSpec::Pmem(64 * kMiB)};
  return config;
}

VmSetup AblationVm(const DemeterConfig& dconfig) {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.num_vcpus = 2;
  setup.workload = "gups";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = 400000;
  setup.policy = PolicyKind::kDemeter;
  setup.demeter = dconfig;
  return setup;
}

DemeterConfig ScaledConfig() {
  DemeterConfig config;
  config.range.epoch_length = 10 * kMillisecond;
  config.range.split_threshold = 4.0;
  config.sample_period = 97;
  return config;
}

TEST(DemeterAblation, SequentialMigrationStillCorrectButPaysMore) {
  DemeterConfig sequential = ScaledConfig();
  sequential.relocator.balanced_swap = false;
  Machine machine(AblationHost());
  const int i = machine.AddVm(AblationVm(sequential));
  machine.Run();
  EXPECT_GT(machine.result(i).vm_stats.pages_promoted, 300u) << "still converges";

  Machine balanced(AblationHost());
  const int j = balanced.AddVm(AblationVm(ScaledConfig()));
  balanced.Run();
  EXPECT_GT(ToSeconds(machine.result(i).mgmt.ForStage(TmmStage::kMigration)),
            ToSeconds(balanced.result(j).mgmt.ForStage(TmmStage::kMigration)))
      << "sequential migration costs more CPU than balanced swaps";
}

TEST(DemeterAblation, PhysicalClassificationIsWorse) {
  DemeterConfig physical = ScaledConfig();
  physical.classify_virtual = false;
  Machine phys_machine(AblationHost());
  const int i = phys_machine.AddVm(AblationVm(physical));
  phys_machine.Run();

  Machine virt_machine(AblationHost());
  const int j = virt_machine.AddVm(AblationVm(ScaledConfig()));
  virt_machine.Run();

  // The Figure 4 insight, quantified: fragmented gPA space carries no
  // locality, so the classifier targets fewer of the right pages.
  EXPECT_GT(phys_machine.result(i).elapsed_s, virt_machine.result(j).elapsed_s);
  EXPECT_LT(phys_machine.result(i).fmem_access_fraction,
            virt_machine.result(j).fmem_access_fraction);
}

TEST(DemeterAblation, PollingModeStillConverges) {
  DemeterConfig polling = ScaledConfig();
  polling.drain_on_context_switch = false;
  Machine machine(AblationHost());
  const int i = machine.AddVm(AblationVm(polling));
  machine.Run();
  EXPECT_GT(machine.result(i).vm_stats.pages_promoted, 300u);
  EXPECT_GT(machine.result(i).mgmt.ForStage(TmmStage::kTracking), 0u)
      << "the polling thread charges tracking time";
}

// ---- Custom policies through the harness ----------------------------------------

class CountingPolicy : public TmmPolicy {
 public:
  const char* name() const override { return "counting"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override {
    (void)process;
    attached_vm_id = vm.id();
    attach_time = start;
  }
  int attached_vm_id = -1;
  Nanos attach_time = 0;
};

TEST(MachineCustomPolicy, AttachedAndReported) {
  Machine machine(AblationHost());
  VmSetup setup = AblationVm(ScaledConfig());
  setup.target_transactions = 50000;
  const int i = machine.AddVm(setup);
  auto policy = std::make_unique<CountingPolicy>();
  CountingPolicy* raw = policy.get();
  machine.SetCustomPolicy(i, std::move(policy));
  machine.Run();
  EXPECT_EQ(raw->attached_vm_id, i);
  EXPECT_EQ(machine.result(i).policy, "counting");
}

TEST(MachineProvisioning, HotplugModeRuns) {
  Machine machine(AblationHost());
  VmSetup setup = AblationVm(ScaledConfig());
  setup.target_transactions = 50000;
  setup.provision = ProvisionMode::kHotplug;
  const int i = machine.AddVm(setup);
  machine.Run();
  EXPECT_GE(machine.result(i).transactions, 50000u);
  // Hotplug reached (approximately) the 1:5 composition in whole blocks.
  const uint64_t fmem = machine.vm(i).kernel().node(0).present_pages();
  EXPECT_NEAR(static_cast<double>(fmem), 1638.0, 128.0);
}

TEST(MachineDamon, RunsViaPolicyKind) {
  Machine machine(AblationHost());
  VmSetup setup = AblationVm(ScaledConfig());
  setup.policy = PolicyKind::kDamon;
  setup.target_transactions = 200000;
  setup.policy_period = 10 * kMillisecond;
  const int i = machine.AddVm(setup);
  machine.Run();
  EXPECT_GE(machine.result(i).transactions, 200000u);
  EXPECT_EQ(machine.result(i).policy, "damon");
  EXPECT_GT(machine.result(i).mgmt.Total(), 0u);
}

}  // namespace
}  // namespace demeter
