#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/fault/invariant_checker.h"
#include "src/harness/machine.h"
#include "src/hyper/hypervisor.h"
#include "src/hyper/overcommit.h"
#include "src/hyper/vm.h"
#include "src/mem/host_memory.h"
#include "src/sim/event_queue.h"

namespace demeter {
namespace {

class HyperTest : public ::testing::Test {
 protected:
  HyperTest()
      : memory_({TierSpec::LocalDram(32 * kMiB), TierSpec::Pmem(128 * kMiB)}),
        hyper_(&memory_, &events_) {}

  Vm& MakeVm(uint64_t total_bytes = 8 * kMiB, double fmem_ratio = 0.25,
             double cache_hit_rate = 0.0) {
    VmConfig config;
    config.id = hyper_.num_vms();
    config.num_vcpus = 2;
    config.total_memory_bytes = total_bytes;
    config.fmem_ratio = fmem_ratio;
    config.cache_hit_rate = cache_hit_rate;
    return hyper_.CreateVm(config);
  }

  HostMemory memory_;
  EventQueue events_;
  Hypervisor hyper_;
};

TEST_F(HyperTest, VmNodeSizing) {
  Vm& vm = MakeVm(8 * kMiB, 0.25);
  EXPECT_EQ(vm.kernel().node(0).present_pages(), 512u);   // 2 MiB FMEM.
  EXPECT_EQ(vm.kernel().node(1).present_pages(), 1536u);  // 6 MiB SMEM.
  // Node spans are each 100% of VM memory.
  EXPECT_EQ(vm.kernel().node(0).span_pages(), 2048u);
  EXPECT_EQ(vm.kernel().node(1).span_pages(), 2048u);
}

TEST_F(HyperTest, FirstAccessFaultsThenHits) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);

  AccessResult first = vm.ExecuteAccess(0, proc, addr, false);
  EXPECT_EQ(vm.stats().guest_faults, 1u);
  EXPECT_EQ(vm.stats().ept_faults, 1u);
  EXPECT_GT(first.ns, 10000.0) << "first touch pays both faults";
  EXPECT_EQ(first.tier, kFmemTier) << "fault allocates FMEM first";

  AccessResult second = vm.ExecuteAccess(0, proc, addr, false);
  EXPECT_EQ(vm.stats().guest_faults, 1u);
  EXPECT_LT(second.ns, 100.0) << "TLB hit plus DRAM latency";
}

TEST_F(HyperTest, SpillToSmemWhenFmemNodeFull) {
  Vm& vm = MakeVm(8 * kMiB, 0.25);
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t base = proc.HeapAlloc(2048 * kPageSize);
  // Touch every page: 512 land in FMEM, the rest in SMEM.
  for (uint64_t i = 0; i < 2048; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
  }
  EXPECT_EQ(vm.kernel().node(0).free_pages(), 0u);
  EXPECT_EQ(vm.stats().fmem_accesses, 512u);
  EXPECT_EQ(vm.stats().smem_accesses, 1536u);
}

TEST_F(HyperTest, EptPopulatesMatchingTier) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, false);
  const PageNum gpa = proc.gpt().Lookup(PageOf(addr)).target;
  EXPECT_EQ(hyper_.NodeOfGpa(vm, gpa), 0);
  const FrameId frame = vm.ept().Lookup(gpa).target;
  EXPECT_EQ(memory_.TierOf(frame), kFmemTier);
}

TEST_F(HyperTest, LazyBacking) {
  Vm& vm = MakeVm();
  EXPECT_EQ(memory_.UsedPages(kFmemTier), 0u) << "no eager backing";
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t base = proc.HeapAlloc(10 * kPageSize);
  for (int i = 0; i < 3; ++i) {
    vm.ExecuteAccess(0, proc, base + static_cast<uint64_t>(i) * kPageSize, false);
  }
  EXPECT_EQ(memory_.UsedPages(kFmemTier), 3u) << "only touched pages backed";
}

TEST_F(HyperTest, MovePagePreservesContentsAndChangesTier) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, true);
  const PageNum vpn = PageOf(addr);
  const PageNum old_gpa = proc.gpt().Lookup(vpn).target;
  const FrameId old_frame = vm.ept().Lookup(old_gpa).target;
  memory_.WriteToken(old_frame, 0xfeed);

  double cost = 0.0;
  ASSERT_TRUE(vm.MovePage(proc, vpn, /*dst_node=*/1, /*now=*/0, &cost));
  EXPECT_GT(cost, 0.0);
  EXPECT_EQ(vm.NodeOfVpn(proc, vpn), 1);
  const PageNum new_gpa = proc.gpt().Lookup(vpn).target;
  EXPECT_NE(new_gpa, old_gpa);
  const FrameId new_frame = vm.ept().Lookup(new_gpa).target;
  EXPECT_EQ(memory_.TierOf(new_frame), kSmemTier);
  EXPECT_EQ(memory_.ReadToken(new_frame), 0xfeedu) << "contents must move";
  EXPECT_EQ(vm.stats().pages_demoted, 1u);
  // Old backing was released to the host.
  EXPECT_FALSE(vm.ept().Lookup(old_gpa).present);
}

TEST_F(HyperTest, MovePageFlushesGvaOnAllVcpus) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, false);
  vm.ExecuteAccess(1, proc, addr, false);
  const auto before = vm.AggregateTlbStats();
  double cost = 0.0;
  ASSERT_TRUE(vm.MovePage(proc, PageOf(addr), 1, 0, &cost));
  const auto after = vm.AggregateTlbStats();
  EXPECT_EQ(after.single_flushes - before.single_flushes, 2u) << "one invlpg per vCPU";
  EXPECT_EQ(after.full_flushes, before.full_flushes);
  // Post-move access resolves to the new tier.
  AccessResult r = vm.ExecuteAccess(0, proc, addr, false);
  EXPECT_EQ(r.tier, kSmemTier);
}

TEST_F(HyperTest, MovePageFailsWhenDstNodeFull) {
  Vm& vm = MakeVm(8 * kMiB, 0.25);
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t base = proc.HeapAlloc(2048 * kPageSize);
  for (uint64_t i = 0; i < 2048; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, false);
  }
  // Both nodes fully allocated: no free page in node 1.
  double cost = 0.0;
  EXPECT_FALSE(vm.MovePage(proc, PageOf(base), 1, 0, &cost));
}

TEST_F(HyperTest, SwapPagesExchangesTiersAndContents) {
  Vm& vm = MakeVm(8 * kMiB, 0.25);
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t base = proc.HeapAlloc(2048 * kPageSize);
  for (uint64_t i = 0; i < 2048; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, false);
  }
  const PageNum vpn_fast = PageOf(base);                      // First touch: FMEM.
  const PageNum vpn_slow = PageOf(base + 1000 * kPageSize);   // Later: SMEM.
  ASSERT_EQ(vm.NodeOfVpn(proc, vpn_fast), 0);
  ASSERT_EQ(vm.NodeOfVpn(proc, vpn_slow), 1);

  const FrameId frame_fast = vm.ept().Lookup(proc.gpt().Lookup(vpn_fast).target).target;
  const FrameId frame_slow = vm.ept().Lookup(proc.gpt().Lookup(vpn_slow).target).target;
  memory_.WriteToken(frame_fast, 0xaaaa);
  memory_.WriteToken(frame_slow, 0xbbbb);

  const uint64_t fmem_used_before = memory_.UsedPages(kFmemTier);
  double cost = 0.0;
  ASSERT_TRUE(vm.SwapPages(proc, vpn_slow, proc, vpn_fast, 0, &cost));

  EXPECT_EQ(vm.NodeOfVpn(proc, vpn_slow), 0) << "hot page promoted";
  EXPECT_EQ(vm.NodeOfVpn(proc, vpn_fast), 1) << "cold page demoted";
  // No allocation: host usage unchanged (the paper's balanced property).
  EXPECT_EQ(memory_.UsedPages(kFmemTier), fmem_used_before);
  // Contents followed their virtual pages.
  const FrameId new_frame_slow = vm.ept().Lookup(proc.gpt().Lookup(vpn_slow).target).target;
  const FrameId new_frame_fast = vm.ept().Lookup(proc.gpt().Lookup(vpn_fast).target).target;
  EXPECT_EQ(memory_.ReadToken(new_frame_slow), 0xbbbbu);
  EXPECT_EQ(memory_.ReadToken(new_frame_fast), 0xaaaau);
  EXPECT_EQ(vm.stats().pages_promoted, 1u);
  EXPECT_EQ(vm.stats().pages_demoted, 1u);
}

TEST_F(HyperTest, SwapUnmappedFails) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(2 * kPageSize);
  vm.ExecuteAccess(0, proc, addr, false);
  double cost = 0.0;
  EXPECT_FALSE(vm.SwapPages(proc, PageOf(addr), proc, PageOf(addr) + 1, 0, &cost));
}

TEST_F(HyperTest, HostMigrationUsesFullFlush) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, true);
  const PageNum gpa = proc.gpt().Lookup(PageOf(addr)).target;
  const FrameId old_frame = vm.ept().Lookup(gpa).target;
  memory_.WriteToken(old_frame, 0x1234);

  double cost = 0.0;
  ASSERT_TRUE(hyper_.MigrateGpa(vm, gpa, kSmemTier, 0, &cost));
  vm.FullFlushAll();  // Hypervisor-side designs batch-flush with invept.
  EXPECT_EQ(vm.AggregateTlbStats().full_flushes, 2u);

  const FrameId new_frame = vm.ept().Lookup(gpa).target;
  EXPECT_EQ(memory_.TierOf(new_frame), kSmemTier);
  EXPECT_EQ(memory_.ReadToken(new_frame), 0x1234u);
  // Guest view is unchanged: same gPA.
  EXPECT_EQ(proc.gpt().Lookup(PageOf(addr)).target, gpa);
  // Access now lands in SMEM even though the guest did nothing.
  AccessResult r = vm.ExecuteAccess(0, proc, addr, false);
  EXPECT_EQ(r.tier, kSmemTier);
}

TEST_F(HyperTest, MigrateGpaRejectsSameTierAndUnbacked) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, false);
  const PageNum gpa = proc.gpt().Lookup(PageOf(addr)).target;
  double cost = 0.0;
  EXPECT_FALSE(hyper_.MigrateGpa(vm, gpa, kFmemTier, 0, &cost)) << "already in FMEM";
  EXPECT_FALSE(hyper_.MigrateGpa(vm, gpa + 1, kSmemTier, 0, &cost)) << "unbacked";
}

TEST_F(HyperTest, EptScanSeesAccessedBitsAndFullFlushes) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t base = proc.HeapAlloc(10 * kPageSize);
  for (int i = 0; i < 10; ++i) {
    vm.ExecuteAccess(0, proc, base + static_cast<uint64_t>(i) * kPageSize, false);
  }
  int accessed = 0;
  hyper_.ScanEptAccessedAndFlush(vm, [&](PageNum, FrameId, bool a) {
    if (a) {
      ++accessed;
    }
  });
  EXPECT_EQ(accessed, 10);
  EXPECT_EQ(vm.AggregateTlbStats().full_flushes, 2u) << "invept on every vCPU";

  // Without re-access, a second scan sees nothing.
  accessed = 0;
  hyper_.ScanEptAccessedAndFlush(vm, [&](PageNum, FrameId, bool a) {
    if (a) {
      ++accessed;
    }
  });
  EXPECT_EQ(accessed, 0);

  // Re-access (after the full flush forces a re-walk) re-arms the bits.
  vm.ExecuteAccess(0, proc, base, false);
  accessed = 0;
  hyper_.ScanEptAccessedAndFlush(vm, [&](PageNum, FrameId, bool a) {
    if (a) {
      ++accessed;
    }
  });
  EXPECT_EQ(accessed, 1);
}

TEST_F(HyperTest, WithoutFullFlushAbitsStayDark) {
  // The core of §2.3.1: TLB hits skip the page-table walk, so A bits are
  // not re-set unless the translations are flushed.
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, false);
  const PageNum gpa = proc.gpt().Lookup(PageOf(addr)).target;
  // Clear A bit without flushing the TLB.
  vm.ept().TestAndClearAccessed(gpa);
  vm.ExecuteAccess(0, proc, addr, false);  // TLB hit.
  EXPECT_FALSE(vm.ept().Lookup(gpa).was_accessed) << "TLB hit leaves A bit clear";
}

TEST_F(HyperTest, CacheHitsBypassMemory) {
  Vm& vm = MakeVm(8 * kMiB, 0.25, /*cache_hit_rate=*/1.0);
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  AccessResult r = vm.ExecuteAccess(0, proc, addr, false);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_DOUBLE_EQ(r.ns, kL2HitLatencyNs);
  EXPECT_EQ(vm.stats().guest_faults, 0u) << "cache hit never reaches the MMU model";
}

TEST_F(HyperTest, ContextSwitchChargesAndCounts) {
  Vm& vm = MakeVm();
  const double cost = vm.OnContextSwitch(0, 1000);
  EXPECT_GT(cost, 0.0);
  EXPECT_EQ(vm.stats().context_switches, 1u);
}

TEST_F(HyperTest, PebsIsolationAcrossVms) {
  // §2.3.2: samples generated by one VM land only in that VM's buffers.
  VmConfig config_a;
  config_a.id = 0;
  config_a.total_memory_bytes = 4 * kMiB;
  config_a.cache_hit_rate = 0.0;
  config_a.pebs.sample_period = 1;
  VmConfig config_b = config_a;
  config_b.id = 1;
  Vm& vm_a = hyper_.CreateVm(config_a);
  Vm& vm_b = hyper_.CreateVm(config_b);
  vm_a.vcpu(0).pebs->set_enabled(true);
  vm_b.vcpu(0).pebs->set_enabled(true);

  GuestProcess& proc_a = vm_a.kernel().CreateProcess();
  const uint64_t addr = proc_a.HeapAlloc(kPageSize);
  vm_a.ExecuteAccess(0, proc_a, addr, false);
  vm_a.ExecuteAccess(0, proc_a, addr, false);

  EXPECT_GT(vm_a.vcpu(0).pebs->stats().records_written, 0u);
  EXPECT_EQ(vm_b.vcpu(0).pebs->stats().records_written, 0u)
      << "guest-private buffers must not leak across VMs";
}

TEST_F(HyperTest, HostTierFallbackUnderPressure) {
  // A VM whose FMEM node exceeds the host FMEM tier spills to SMEM frames.
  VmConfig config;
  config.id = 0;
  config.total_memory_bytes = 64 * kMiB;
  config.fmem_ratio = 1.0;  // Wants everything in FMEM; host has 32 MiB.
  config.cache_hit_rate = 0.0;
  Vm& vm = hyper_.CreateVm(config);
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t pages = 12 * kMiB / kPageSize;
  const uint64_t base = proc.HeapAlloc(pages * kPageSize);
  for (uint64_t i = 0; i < pages; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, false);
  }
  Vm& vm2 = MakeVm(64 * kMiB, 1.0);
  GuestProcess& proc2 = vm2.kernel().CreateProcess();
  const uint64_t pages2 = 24 * kMiB / kPageSize;
  const uint64_t base2 = proc2.HeapAlloc(pages2 * kPageSize);
  for (uint64_t i = 0; i < pages2; ++i) {
    vm2.ExecuteAccess(0, proc2, base2 + i * kPageSize, false);
  }
  EXPECT_GT(hyper_.stats().host_tier_fallbacks, 0u);
  EXPECT_EQ(vm.stats().accesses + vm2.stats().accesses, pages + pages2);
}

TEST(HyperFallbackAccounting, FallbacksCountOnlySuccessfulSpills) {
  // Regression: a spill attempt that found every tier dry used to bump
  // host_tier_fallbacks anyway, so the counter overstated off-tier
  // placements under total exhaustion.
  HostMemory memory({TierSpec::LocalDram(4 * kPageSize), TierSpec::Pmem(4 * kPageSize)});
  EventQueue events;
  Hypervisor hyper(&memory, &events);
  VmConfig config;
  config.id = 0;
  config.total_memory_bytes = 16 * kPageSize;
  Vm& vm = hyper.CreateVm(config);
  // FMEM-node gPAs 0..3 fill the DRAM tier exactly: no fallback.
  for (PageNum gpa = 0; gpa < 4; ++gpa) {
    EXPECT_NE(hyper.PopulateEpt(vm, gpa), kInvalidFrame);
  }
  EXPECT_EQ(hyper.stats().host_tier_fallbacks, 0u);
  // Four more FMEM-node gPAs spill to pmem: one fallback per placement.
  for (PageNum gpa = 4; gpa < 8; ++gpa) {
    EXPECT_NE(hyper.PopulateEpt(vm, gpa), kInvalidFrame);
  }
  EXPECT_EQ(hyper.stats().host_tier_fallbacks, 4u);
  // Both tiers dry: host OOM must NOT count as a fallback.
  EXPECT_EQ(hyper.PopulateEpt(vm, 8), kInvalidFrame);
  EXPECT_EQ(hyper.PopulateEpt(vm, 9), kInvalidFrame);
  EXPECT_EQ(hyper.stats().host_tier_fallbacks, 4u);
  EXPECT_EQ(hyper.stats().ept_populates, 8u);
}

// ------------------------------------------------- Overcommit arbitration

// Builds a host whose 4 MiB FMEM tier (1024 frames) is fully backed by
// VM 0's node-0 pages, so every Arbitrate pass sees free_frac == 0 — well
// under the low watermark — and the fair-share divisor is the only thing
// deciding whether VM 0 looks over budget.
struct OvercommitRig {
  OvercommitRig()
      : memory({TierSpec::LocalDram(4 * kMiB), TierSpec::Pmem(64 * kMiB)}),
        hyper(&memory, &events) {}

  Vm& AddVm(uint64_t touch_pages) {
    VmConfig config;
    config.id = hyper.num_vms();
    config.num_vcpus = 1;
    config.total_memory_bytes = 8 * kMiB;
    config.fmem_ratio = 0.5;   // node 0 holds 1024 present pages.
    config.cache_hit_rate = 0;  // Every touch faults: residency == touches.
    Vm& vm = hyper.CreateVm(config);
    if (touch_pages > 0) {
      GuestProcess& proc = vm.kernel().CreateProcess();
      const uint64_t base = proc.HeapAlloc(touch_pages * kPageSize);
      for (uint64_t i = 0; i < touch_pages; ++i) {
        vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
      }
    }
    return vm;
  }

  HostMemory memory;
  EventQueue events;
  Hypervisor hyper;
};

TEST(OvercommitArbitration, UnbootedVmsDoNotDiluteFairShare) {
  // Regression: the divisor counted every non-departed VM, so two
  // not-yet-booted tenants (zero pages held) shrank VM 0's fair share from
  // the full tier to a third of it and the scheduler squeezed a VM that was
  // using exactly what it was entitled to.
  OvercommitRig rig;
  rig.AddVm(1024);  // VM 0 backs the whole tier.
  rig.AddVm(0);     // Deferred boots: created, not booted, holding nothing.
  rig.AddVm(0);
  OvercommitScheduler scheduler(&rig.hyper, OvercommitConfig{});
  std::vector<int> squeezed;
  scheduler.set_spill_request([&](int vm, int64_t delta, Nanos) {
    if (delta > 0) {
      squeezed.push_back(vm);
    }
    return true;
  });

  // Old behaviour (no resident predicate): fair = 1024/3, VM 0 is "over".
  scheduler.Arbitrate(0);
  ASSERT_EQ(squeezed.size(), 1u);
  EXPECT_EQ(squeezed[0], 0);
  EXPECT_EQ(scheduler.stats().spill_requests, 1u);

  // Fixed behaviour: only VM 0 is resident, fair = the whole tier, and a
  // VM at exactly its fair share must not be squeezed.
  scheduler.set_resident([](int vm) { return vm == 0; });
  scheduler.Arbitrate(kMillisecond);
  EXPECT_EQ(squeezed.size(), 1u) << "no new spill once the divisor is honest";
  EXPECT_EQ(scheduler.stats().no_victim, 1u);
}

TEST(OvercommitArbitration, DepartureMidRunRestoresFairShare) {
  // The divisor must be recomputed over live VMs every tick: after VM 1
  // departs, VM 0's fair share doubles and the pressure on it stops, even
  // though the tier is still below the low watermark.
  OvercommitRig rig;
  rig.AddVm(600);  // VM 0: over a half-tier share, under a full-tier one.
  rig.AddVm(424);  // VM 1 takes the remaining frames.
  OvercommitScheduler scheduler(&rig.hyper, OvercommitConfig{});
  bool vm1_departed = false;
  scheduler.set_resident([&](int vm) { return vm == 0 || !vm1_departed; });
  uint64_t asked = 0;
  scheduler.set_spill_request([&](int vm, int64_t delta, Nanos) {
    EXPECT_EQ(vm, 0) << "only the over-share VM may be squeezed";
    asked += static_cast<uint64_t>(delta);
    return true;
  });

  scheduler.Arbitrate(0);  // fair = 512: VM 0 is 88 pages over.
  EXPECT_EQ(scheduler.stats().spill_requests, 1u);
  EXPECT_EQ(asked, 88u);

  vm1_departed = true;  // Mid-run churn.
  scheduler.Arbitrate(kMillisecond);  // fair = 1024: VM 0 is under.
  EXPECT_EQ(scheduler.stats().spill_requests, 1u);
  EXPECT_EQ(scheduler.stats().no_victim, 1u);
}

// ----------------------------------------------------- VM lifecycle churn

MachineConfig LifecycleHost(int vms) {
  MachineConfig config;
  const uint64_t per_vm = 32 * kMiB;
  config.tiers = {TierSpec::LocalDram(10 * kMiB * static_cast<uint64_t>(vms)),
                  TierSpec::Pmem(3 * per_vm * static_cast<uint64_t>(vms))};
  return config;
}

VmSetup LifecycleVm(PolicyKind policy) {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.fmem_ratio = 0.2;
  setup.vm.num_vcpus = 2;
  setup.workload = "gups";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = 150000;
  setup.policy = policy;
  setup.provision = ProvisionMode::kDemeterBalloon;
  setup.policy_period = 15 * kMillisecond;
  setup.demeter.range.epoch_length = 2 * kMillisecond;
  setup.demeter.sample_period = 97;
  return setup;
}

TEST(MachineLifecycleTest, DepartingVmLeavesNoResidue) {
  // vm0 finishes early and departs mid-run while vm1 keeps executing; every
  // page, mapping, and TLB entry of the departed VM must be gone.
  Machine machine(LifecycleHost(2));
  VmSetup early = LifecycleVm(PolicyKind::kDemeter);
  early.target_transactions = 60000;
  early.depart_on_finish = true;
  machine.AddVm(early);
  machine.AddVm(LifecycleVm(PolicyKind::kDemeter));
  machine.Run();

  Vm& departed = machine.vm(0);
  EXPECT_TRUE(departed.departed());
  EXPECT_EQ(departed.kernel().mapped_pages(), 0u) << "rmap entries leaked";
  EXPECT_EQ(departed.ept().mapped_count(), 0u) << "EPT mappings leaked";
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(departed.kernel().node(n).used_pages(), 0u)
        << "node " << n << " still counts pages";
  }
  uint64_t live_tlb = 0;
  for (int c = 0; c < departed.num_vcpus(); ++c) {
    departed.vcpu(c).tlb.ForEachValid([&](PageNum, const auto&) { ++live_tlb; });
  }
  EXPECT_EQ(live_tlb, 0u) << "stale translations survived departure";

  // The survivor ran to completion and the cross-layer audit is clean.
  EXPECT_GE(machine.result(1).transactions, 150000u);
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();

  // Lifecycle accounting: one departure, with real pages reclaimed.
  const MetricSnapshot m = machine.SnapshotMetrics();
  EXPECT_EQ(m.CounterValue("vm0/lifecycle/departures"), 1u);
  EXPECT_GT(m.CounterValue("vm0/lifecycle/reclaimed_ept_pages"), 0u);
  EXPECT_EQ(m.CounterValue("vm1/lifecycle/departures"), 0u);
}

TEST(MachineLifecycleTest, DeferredVmBootsMidRunAndFinishes) {
  Machine machine(LifecycleHost(2));
  machine.AddVm(LifecycleVm(PolicyKind::kDemeter));
  VmSetup late = LifecycleVm(PolicyKind::kDemeter);
  late.boot_at = 20 * kMillisecond;
  late.target_transactions = 80000;
  machine.AddVm(late);
  machine.Run();

  EXPECT_GE(machine.result(0).transactions, 150000u);
  EXPECT_GE(machine.result(1).transactions, 80000u);
  const MetricSnapshot m = machine.SnapshotMetrics();
  EXPECT_EQ(m.CounterValue("vm1/lifecycle/boots"), 1u);
  EXPECT_GE(m.CounterValue("vm1/lifecycle/boot_ns"), 20 * kMillisecond);
  const InvariantReport report = machine.CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Join();
}

TEST(MachineLifecycleTest, SkippedReclaimIsCaughtByChecker) {
  // A teardown path that marks the VM gone without reclaiming must trip the
  // departed-emptiness audit — this is the guard against silent leaks.
  Machine machine(LifecycleHost(1));
  machine.AddVm(LifecycleVm(PolicyKind::kStatic));
  machine.Run();
  ASSERT_TRUE(machine.CheckInvariants().ok());
  machine.vm(0).set_departed(true);  // Deliberately skip ReclaimVm.
  const InvariantReport report = machine.CheckInvariants();
  ASSERT_FALSE(report.ok());
  bool mentions_departed = false;
  for (const std::string& v : report.violations) {
    if (v.find("departed") != std::string::npos) {
      mentions_departed = true;
    }
  }
  EXPECT_TRUE(mentions_departed) << report.Join();
}

// ----------------------------------------------------- Three-tier placement

class ThreeTierTest : public ::testing::Test {
 protected:
  ThreeTierTest()
      : memory_({TierSpec::LocalDram(8 * kPageSize), TierSpec::Pmem(16 * kPageSize),
                 TierSpec::Zswap(64 * kPageSize)}),
        hyper_(&memory_, &events_) {
    hyper_.EnableSwap(SwapDeviceConfig{});
  }

  Vm& MakeVm(uint64_t total_bytes = 64 * kPageSize) {
    VmConfig config;
    config.id = hyper_.num_vms();
    config.num_vcpus = 2;
    config.total_memory_bytes = total_bytes;
    config.fmem_ratio = 0.25;
    config.cache_hit_rate = 0.0;
    return hyper_.CreateVm(config);
  }

  HostMemory memory_;
  EventQueue events_;
  Hypervisor hyper_;
};

TEST_F(ThreeTierTest, DemotionChainRetainsFlagsAndSlot) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, /*is_write=*/true);  // Sets A and D.
  const PageNum vpn = PageOf(addr);
  const PageNum gpa = proc.gpt().Lookup(vpn).target;
  const FrameId fmem_frame = vm.ept().Lookup(gpa).target;
  ASSERT_EQ(memory_.TierOf(fmem_frame), kFmemTier);
  memory_.WriteToken(fmem_frame, 0xcafe);

  // Full chain: FMEM -> SMEM -> swap, each hop host-side with the
  // caller-owned flush the MigrateGpa contract requires.
  double cost = 0.0;
  ASSERT_TRUE(hyper_.MigrateGpa(vm, gpa, kSmemTier, 0, &cost));
  ASSERT_TRUE(hyper_.MigrateGpa(vm, gpa, kSwapTier, 0, &cost));
  vm.FullFlushAll();
  const FrameId swap_frame = vm.ept().Lookup(gpa).target;
  EXPECT_EQ(memory_.TierOf(swap_frame), kSwapTier);
  EXPECT_TRUE(hyper_.swap()->HasSlot(swap_frame));
  EXPECT_EQ(hyper_.swap()->SlotOwner(swap_frame), vm.id());
  EXPECT_EQ(memory_.ReadToken(swap_frame), 0xcafeu) << "contents travel the chain";

  // Promote back to FMEM (level skip): slot released, W/A/D flags and the
  // guest mapping (same gpa, same rmap entry) intact end to end.
  ASSERT_TRUE(hyper_.MigrateGpa(vm, gpa, kFmemTier, 0, &cost));
  vm.FullFlushAll();
  const auto ept = vm.ept().Lookup(gpa);
  EXPECT_EQ(memory_.TierOf(ept.target), kFmemTier);
  EXPECT_TRUE(ept.was_accessed) << "A flag must survive the round trip";
  EXPECT_TRUE(ept.was_dirty) << "D flag must survive the round trip";
  EXPECT_EQ(hyper_.swap()->ActiveSlots(), 0u) << "slot released on swap-in";
  EXPECT_EQ(memory_.UsedPages(kSwapTier), 0u);
  EXPECT_EQ(proc.gpt().Lookup(vpn).target, gpa) << "guest view never changed";
  const RmapEntry* rmap = vm.kernel().Rmap(gpa);
  ASSERT_NE(rmap, nullptr);
  EXPECT_EQ(rmap->vpn, vpn);
  EXPECT_TRUE(InvariantChecker::Check(hyper_, {}).ok());
}

TEST_F(ThreeTierTest, AccessToSwapPageSwapsInToFmem) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, true);
  const PageNum gpa = proc.gpt().Lookup(PageOf(addr)).target;
  double cost = 0.0;
  ASSERT_TRUE(hyper_.MigrateGpa(vm, gpa, kSwapTier, 0, &cost));
  vm.FullFlushAll();

  // FMEM has headroom: the major fault promotes straight to FMEM,
  // skipping SMEM (level-skip swap-in).
  const AccessResult r = vm.ExecuteAccess(0, proc, addr, false);
  EXPECT_EQ(r.tier, kFmemTier);
  EXPECT_EQ(vm.stats().swap_ins, 1u);
  EXPECT_EQ(vm.stats().swap_accesses, 0u) << "served after promotion, not in place";
  EXPECT_EQ(hyper_.swap()->ActiveSlots(), 0u);
  EXPECT_GT(r.ns, 1000.0) << "the access pays the device/staging cost";
  EXPECT_TRUE(InvariantChecker::Check(hyper_, {}).ok());
}

TEST_F(ThreeTierTest, SwapInFallsBackToSmemWhenFmemFull) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  // Fill the tiny FMEM tier (8 frames) plus one SMEM page.
  const uint64_t base = proc.HeapAlloc(10 * kPageSize);
  for (uint64_t i = 0; i < 9; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, false);
  }
  ASSERT_EQ(memory_.FreePages(kFmemTier), 0u);

  // Swap out page 0 (frees its FMEM frame), then refill FMEM with a fresh
  // touch so the level-skip target is dry again.
  const PageNum gpa = proc.gpt().Lookup(PageOf(base)).target;
  double cost = 0.0;
  ASSERT_TRUE(hyper_.MigrateGpa(vm, gpa, kSwapTier, 0, &cost));
  vm.FullFlushAll();
  vm.ExecuteAccess(0, proc, base + 9 * kPageSize, false);
  ASSERT_EQ(memory_.FreePages(kFmemTier), 0u);

  const AccessResult r = vm.ExecuteAccess(0, proc, base, false);
  EXPECT_EQ(r.tier, kSmemTier) << "no FMEM headroom: swap-in lands in SMEM";
  EXPECT_EQ(vm.stats().swap_ins, 1u);
  EXPECT_TRUE(InvariantChecker::Check(hyper_, {}).ok());
}

TEST_F(ThreeTierTest, TlbHitSwapInMigratesTheFaultingPage) {
  // Regression: a TLB hit short-circuits the 2D walk, so the translation
  // result's gpa_page field is unset (0). The swap-in path used to pass it
  // to SwapInGpa verbatim, migrating whatever page happened to be gpa 0 —
  // and leaving every TLB entry for gpa 0's vpn stale (no flush), since
  // SwapInGpa's caller only flushes the vpn it thinks it promoted.
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t base = proc.HeapAlloc(25 * kPageSize);
  // Exhaust FMEM and SMEM with the first 24 pages.
  for (uint64_t i = 0; i < 24; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, i == 0);
  }
  ASSERT_EQ(memory_.FreePages(kFmemTier), 0u);
  ASSERT_EQ(memory_.FreePages(kSmemTier), 0u);
  // Whichever page owns gpa 0 is the one the buggy path used to migrate.
  PageNum zero_vpn = ~static_cast<PageNum>(0);
  for (uint64_t i = 0; i < 24; ++i) {
    if (proc.gpt().Lookup(PageOf(base) + i).target == 0) {
      zero_vpn = PageOf(base) + i;
    }
  }
  ASSERT_NE(zero_vpn, ~static_cast<PageNum>(0)) << "gpa 0 unmapped; regression scenario void";
  const FrameId zero_frame = vm.ept().Lookup(0).target;
  // Page 24 can only be backed far; its swap-in attempt finds no room, so
  // the access runs in place and the TLB caches the swap-tier frame.
  const uint64_t addr = base + 24 * kPageSize;
  vm.ExecuteAccess(0, proc, addr, false);
  const PageNum gpa = proc.gpt().Lookup(PageOf(addr)).target;
  ASSERT_EQ(memory_.TierOf(vm.ept().Lookup(gpa).target), kSwapTier);
  ASSERT_EQ(vm.stats().swap_accesses, 1u) << "accessed in place, TLB caches far frame";

  // Free one FMEM frame by swapping out an FMEM-backed page that is NOT
  // gpa 0, then re-access: the TLB hit on the far frame must swap in THE
  // FAULTING page, not gpa 0.
  PageNum victim_vpn = ~static_cast<PageNum>(0);
  for (uint64_t i = 0; i < 24 && victim_vpn == ~static_cast<PageNum>(0); ++i) {
    const PageNum cand_gpa = proc.gpt().Lookup(PageOf(base) + i).target;
    if (cand_gpa != 0 && memory_.TierOf(vm.ept().Lookup(cand_gpa).target) == kFmemTier) {
      victim_vpn = PageOf(base) + i;
    }
  }
  ASSERT_NE(victim_vpn, ~static_cast<PageNum>(0));
  double cost = 0.0;
  ASSERT_TRUE(
      hyper_.MigrateGpa(vm, proc.gpt().Lookup(victim_vpn).target, kSwapTier, 0, &cost));
  vm.FlushGvaAll(victim_vpn);
  const AccessResult r = vm.ExecuteAccess(0, proc, addr, false);
  EXPECT_EQ(r.tier, kFmemTier) << "swap-in promoted the faulting page";
  EXPECT_EQ(memory_.TierOf(vm.ept().Lookup(gpa).target), kFmemTier);
  // gpa 0's backing never moved, and no TLB entry anywhere went stale.
  EXPECT_EQ(vm.ept().Lookup(0).target, zero_frame);
  EXPECT_TRUE(InvariantChecker::Check(hyper_, {}).ok()) << "no stale TLB entries";
}

TEST_F(ThreeTierTest, UnbackReleasesSlotWithoutRead) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t addr = proc.HeapAlloc(kPageSize);
  vm.ExecuteAccess(0, proc, addr, false);
  const PageNum gpa = proc.gpt().Lookup(PageOf(addr)).target;
  double cost = 0.0;
  ASSERT_TRUE(hyper_.MigrateGpa(vm, gpa, kSwapTier, 0, &cost));
  vm.FullFlushAll();
  ASSERT_EQ(hyper_.swap()->ActiveSlots(), 1u);
  // The page dies under its slot (balloon reclaim / VM teardown path):
  // no device read, the slot just drops.
  hyper_.UnbackGpa(vm, gpa, /*flush=*/true);
  EXPECT_EQ(hyper_.swap()->ActiveSlots(), 0u);
  EXPECT_EQ(memory_.UsedPages(kSwapTier), 0u);
}

}  // namespace
}  // namespace demeter
