#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/core/api.h"

namespace demeter {
namespace {

RangeTreeConfig FastConfig() {
  RangeTreeConfig config;
  config.alpha = 2.0;
  config.split_threshold = 15.0;
  config.merge_threshold = 4;
  config.min_range_bytes = kHugePageSize;
  return config;
}

// ---- RangeTree --------------------------------------------------------------

TEST(RangeTree, StartsWithOneLeafPerRegion) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 64 * kMiB);
  tree.AddRegion(kGiB, kGiB + 32 * kMiB);
  EXPECT_EQ(tree.leaves().size(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RangeTree, RejectsOverlappingRegions) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 64 * kMiB);
  EXPECT_DEATH(tree.AddRegion(32 * kMiB, 128 * kMiB), "overlapping");
}

TEST(RangeTree, SamplesOutsideRegionsIgnored) {
  RangeTree tree(FastConfig());
  tree.AddRegion(kMiB, 2 * kMiB);
  tree.RecordSample(0);
  tree.RecordSample(3 * kMiB);
  EXPECT_EQ(tree.samples_ignored(), 2u);
  EXPECT_EQ(tree.samples_recorded(), 0u);
  tree.RecordSample(kMiB + 5);
  EXPECT_EQ(tree.samples_recorded(), 1u);
}

TEST(RangeTree, HotRangeSplitsDownToGranularityFloor) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 64 * kMiB);
  const int vcpus = 4;
  // Hammer a 2 MiB hotspot at offset 10 MiB; everything else cold.
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (int i = 0; i < 2000; ++i) {
      tree.RecordSample(10 * kMiB + static_cast<uint64_t>(i) % kHugePageSize);
    }
    tree.EndEpoch(vcpus);
    ASSERT_TRUE(tree.CheckInvariants()) << "epoch " << epoch;
  }
  // The hottest leaf is small (at or near the floor) and contains the spot.
  const auto ranked = tree.Ranked();
  ASSERT_FALSE(ranked.empty());
  EXPECT_LE(ranked[0].size(), 4 * kHugePageSize);
  EXPECT_LE(ranked[0].start, 10 * kMiB);
  EXPECT_GT(ranked[0].end, 10 * kMiB);
  EXPECT_GT(tree.total_splits(), 3u);
  // No leaf ever splits below 2 MiB.
  for (const auto& leaf : tree.leaves()) {
    EXPECT_GE(leaf.size(), kHugePageSize);
  }
}

TEST(RangeTree, ColdRegionStaysCoarse) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, kGiB);
  for (int epoch = 0; epoch < 10; ++epoch) {
    tree.RecordSample(5 * kMiB);  // One sample per epoch: insignificant.
    tree.EndEpoch(4);
  }
  EXPECT_EQ(tree.leaves().size(), 1u) << "cold memory remains one large range";
}

TEST(RangeTree, CountsDecayToZero) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 4 * kMiB);
  for (int i = 0; i < 100; ++i) {
    tree.RecordSample(kMiB);
  }
  tree.EndEpoch(1);
  EXPECT_GT(tree.leaves()[0].access_count, 0.0);
  for (int epoch = 0; epoch < 8; ++epoch) {
    tree.EndEpoch(1);
  }
  EXPECT_DOUBLE_EQ(tree.leaves()[0].access_count, 0.0);
}

TEST(RangeTree, QuietNeighborsMergeAfterThreshold) {
  RangeTreeConfig config = FastConfig();
  RangeTree tree(config);
  tree.AddRegion(0, 64 * kMiB);
  // Create splits with a moving hotspot, then go silent.
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 1000; ++i) {
      tree.RecordSample((static_cast<uint64_t>(epoch % 3) * 8 + 2) * kMiB);
    }
    tree.EndEpoch(4);
  }
  const size_t peak_leaves = tree.leaves().size();
  ASSERT_GT(peak_leaves, 1u);
  for (int epoch = 0; epoch < 20; ++epoch) {
    tree.EndEpoch(4);
    ASSERT_TRUE(tree.CheckInvariants());
  }
  EXPECT_EQ(tree.leaves().size(), 1u) << "silence collapses the tree";
  EXPECT_GT(tree.total_merges(), 0u);
}

TEST(RangeTree, SplitHalvesCounts) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 8 * kMiB);
  for (int i = 0; i < 1000; ++i) {
    tree.RecordSample(kMiB);
  }
  tree.EndEpoch(1);
  ASSERT_EQ(tree.leaves().size(), 2u);
  // Each half got 1000/2 = 500, then decayed by half = 250.
  EXPECT_DOUBLE_EQ(tree.leaves()[0].access_count, 250.0);
  EXPECT_DOUBLE_EQ(tree.leaves()[1].access_count, 250.0);
}

TEST(RangeTree, ExtendRegionCoversGrowth) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 4 * kMiB);
  tree.ExtendRegion(0, 16 * kMiB);
  EXPECT_TRUE(tree.CheckInvariants());
  tree.RecordSample(10 * kMiB);
  EXPECT_EQ(tree.samples_recorded(), 1u);
  // Extending to a smaller/equal end is a no-op.
  tree.ExtendRegion(0, 8 * kMiB);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RangeTree, RankedOrdersByFrequencyDensity) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 16 * kMiB);           // Will receive many accesses.
  tree.AddRegion(kGiB, kGiB + 512 * kMiB);  // Same count spread over more pages.
  for (int i = 0; i < 5000; ++i) {
    tree.RecordSample(kMiB);
    tree.RecordSample(kGiB + kMiB);
  }
  auto ranked = tree.Ranked();
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_LT(ranked[0].start, 16 * kMiB) << "denser (smaller) range ranks hotter";
}

TEST(RangeTree, RankTiebreakPrefersNewerRanges) {
  HotRange old_range;
  old_range.start = 0;
  old_range.end = kHugePageSize;
  old_range.access_count = 10.0;
  old_range.created_epoch = 1;
  HotRange new_range = old_range;
  new_range.start = kHugePageSize;
  new_range.end = 2 * kHugePageSize;
  new_range.created_epoch = 7;
  RangeTree tree(FastConfig());
  // Rank via the static path by constructing the vector directly.
  std::vector<HotRange> ranked = {old_range, new_range};
  std::stable_sort(ranked.begin(), ranked.end(), [](const HotRange& a, const HotRange& b) {
    if (a.Frequency() != b.Frequency()) {
      return a.Frequency() > b.Frequency();
    }
    return a.created_epoch > b.created_epoch;
  });
  EXPECT_EQ(ranked[0].created_epoch, 7u);
}

TEST(RangeTree, HotPrefixRespectsFmemBudget) {
  std::vector<HotRange> ranked;
  for (int i = 0; i < 4; ++i) {
    HotRange r;
    r.start = static_cast<uint64_t>(i) * kHugePageSize;
    r.end = r.start + kHugePageSize;  // 512 pages each.
    ranked.push_back(r);
  }
  EXPECT_EQ(RangeTree::HotPrefix(ranked, 512), 1u);
  EXPECT_EQ(RangeTree::HotPrefix(ranked, 1024), 2u);
  EXPECT_EQ(RangeTree::HotPrefix(ranked, 100), 0u);
  EXPECT_EQ(RangeTree::HotPrefix(ranked, 1u << 30), 4u);
}

TEST(RangeTree, LeafCountStaysSmallUnderSkewedLoad) {
  // §3.2.1: "creating fewer than 50 ranges" even for deep refinement.
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 2 * kGiB);
  Rng rng(3);
  for (int epoch = 0; epoch < 60; ++epoch) {
    for (int i = 0; i < 3000; ++i) {
      // 90% of accesses to a 4 MiB hotspot, 10% uniform.
      const uint64_t addr = rng.NextBool(0.9)
                                ? 512 * kMiB + rng.NextBelow(4 * kMiB)
                                : rng.NextBelow(2 * kGiB);
      tree.RecordSample(addr);
    }
    tree.EndEpoch(4);
    ASSERT_TRUE(tree.CheckInvariants());
  }
  EXPECT_LT(tree.leaves().size(), 50u);
  const auto ranked = tree.Ranked();
  EXPECT_LE(ranked[0].start, 512 * kMiB + 4 * kMiB);
  EXPECT_GE(ranked[0].end, 512 * kMiB);
}

TEST(RangeTree, InvariantsFuzz) {
  RangeTree tree(FastConfig());
  tree.AddRegion(0, 256 * kMiB);
  tree.AddRegion(kGiB, kGiB + 256 * kMiB);
  Rng rng(99);
  for (int epoch = 0; epoch < 100; ++epoch) {
    const int samples = static_cast<int>(rng.NextBelow(3000));
    for (int i = 0; i < samples; ++i) {
      const uint64_t region_base = rng.NextBool(0.5) ? 0 : kGiB;
      // Zipf-ish skew inside the region.
      const uint64_t offset = rng.NextZipf(256 * kMiB / 64, 0.9) * 64;
      tree.RecordSample(region_base + offset);
    }
    tree.EndEpoch(1 + static_cast<int>(rng.NextBelow(8)));
    ASSERT_TRUE(tree.CheckInvariants()) << "epoch " << epoch;
  }
}

// ---- BalancedRelocator --------------------------------------------------------

class RelocatorTest : public ::testing::Test {
 protected:
  RelocatorTest()
      : memory_({TierSpec::LocalDram(64 * kMiB), TierSpec::Pmem(256 * kMiB)}),
        hyper_(&memory_, &events_) {}

  Vm& MakeVm(uint64_t total = 16 * kMiB, double ratio = 0.25) {
    VmConfig config;
    config.id = hyper_.num_vms();
    config.total_memory_bytes = total;
    config.fmem_ratio = ratio;
    config.cache_hit_rate = 0.0;
    return hyper_.CreateVm(config);
  }

  HostMemory memory_;
  EventQueue events_;
  Hypervisor hyper_;
};

TEST_F(RelocatorTest, PromotesHotRangeViaSwaps) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t pages = vm.config().total_pages();  // 4096 pages.
  const uint64_t base = proc.HeapAlloc(pages * kPageSize);
  for (uint64_t i = 0; i < pages; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
  }
  // First-touch: low vpns in FMEM. Declare a *late* range as hot.
  const uint64_t hot_start = base + 3000 * kPageSize;
  const uint64_t hot_end = hot_start + 512 * kPageSize;
  std::vector<HotRange> ranked;
  HotRange hot;
  hot.start = hot_start;
  hot.end = hot_end;
  hot.access_count = 1000;
  ranked.push_back(hot);
  HotRange cold;
  cold.start = base;
  cold.end = hot_start;
  ranked.push_back(cold);
  HotRange tail;
  tail.start = hot_end;
  tail.end = base + pages * kPageSize;
  ranked.push_back(tail);

  RelocatorConfig config;
  config.max_batch_pages = 600;
  BalancedRelocator relocator(config);
  const uint64_t fmem_before = memory_.UsedPages(kFmemTier);
  auto result = relocator.Relocate(vm, proc, ranked, /*hot_prefix=*/1, /*now=*/0);
  EXPECT_EQ(result.promoted, 512u);
  EXPECT_EQ(result.demoted, 512u);
  EXPECT_EQ(result.swaps, 512u) << "FMEM was full: all promotions are swaps";
  EXPECT_EQ(memory_.UsedPages(kFmemTier), fmem_before) << "balanced: no net allocation";
  // Every hot page now in node 0.
  for (uint64_t i = 0; i < 512; ++i) {
    EXPECT_EQ(vm.NodeOfVpn(proc, PageOf(hot_start) + i), 0);
  }
  EXPECT_GT(result.cost_ns, 0.0);
  EXPECT_GT(result.ptes_scanned, 0u);
}

TEST_F(RelocatorTest, UsesFreeFmemBeforeSwapping) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  // Touch only a small working set that lands entirely in FMEM, then demote
  // it all manually so FMEM has free space and the hot data sits in SMEM.
  const uint64_t base = proc.HeapAlloc(256 * kPageSize);
  for (uint64_t i = 0; i < 256; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, false);
  }
  double cost = 0.0;
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(vm.MovePage(proc, PageOf(base) + i, 1, 0, &cost));
  }
  ASSERT_GT(vm.kernel().node(0).free_pages(), 200u);

  std::vector<HotRange> ranked;
  HotRange hot;
  hot.start = base;
  hot.end = base + 128 * kPageSize;
  hot.access_count = 500;
  ranked.push_back(hot);
  BalancedRelocator relocator;
  auto result = relocator.Relocate(vm, proc, ranked, 1, 0);
  EXPECT_EQ(result.promoted, 128u);
  EXPECT_EQ(result.swaps, 0u) << "free headroom: plain moves, no demotions";
  EXPECT_EQ(result.demoted, 0u);
}

TEST_F(RelocatorTest, EmptyHotPrefixDoesNothing) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  proc.HeapAlloc(kPageSize);
  std::vector<HotRange> ranked;
  BalancedRelocator relocator;
  auto result = relocator.Relocate(vm, proc, ranked, 0, 0);
  EXPECT_EQ(result.promoted, 0u);
  EXPECT_EQ(result.swaps, 0u);
}

TEST_F(RelocatorTest, BatchCapLimitsWork) {
  Vm& vm = MakeVm();
  GuestProcess& proc = vm.kernel().CreateProcess();
  const uint64_t pages = vm.config().total_pages();
  const uint64_t base = proc.HeapAlloc(pages * kPageSize);
  for (uint64_t i = 0; i < pages; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, false);
  }
  std::vector<HotRange> ranked;
  HotRange hot;
  hot.start = base + 2048 * kPageSize;  // In SMEM.
  hot.end = base + 4096 * kPageSize;
  hot.access_count = 1000;
  ranked.push_back(hot);
  HotRange cold;
  cold.start = base;
  cold.end = base + 2048 * kPageSize;
  ranked.push_back(cold);
  RelocatorConfig config;
  config.max_batch_pages = 64;
  BalancedRelocator relocator(config);
  auto result = relocator.Relocate(vm, proc, ranked, 1, 0);
  EXPECT_LE(result.promoted, 64u);
}

// ---- DemeterPolicy end to end -------------------------------------------------

TEST(DemeterPolicy, ConvergesHotSetIntoFmem) {
  HostMemory memory({TierSpec::LocalDram(64 * kMiB), TierSpec::Pmem(256 * kMiB)});
  EventQueue events;
  Hypervisor hyper(&memory, &events);
  VmConfig config;
  config.total_memory_bytes = 32 * kMiB;
  config.fmem_ratio = 0.25;
  config.cache_hit_rate = 0.0;
  config.num_vcpus = 2;
  config.pebs.sample_period = 97;  // Dense sampling for a short test.
  Vm& vm = hyper.CreateVm(config);
  GuestProcess& proc = vm.kernel().CreateProcess();

  const uint64_t pages = vm.config().total_pages();  // 8192.
  const uint64_t base = proc.HeapAlloc(pages * kPageSize);
  // Fill all pages cold-first so the hot set starts in SMEM.
  for (uint64_t i = 0; i < pages; ++i) {
    vm.ExecuteAccess(0, proc, base + i * kPageSize, true);
  }

  DemeterConfig dconfig;
  dconfig.sample_period = 97;
  dconfig.range.epoch_length = 10 * kMillisecond;
  dconfig.relocator.max_batch_pages = 1024;
  DemeterPolicy policy(dconfig);
  policy.Attach(vm, proc, /*start=*/static_cast<Nanos>(vm.vcpu(0).clock_ns));

  // Hot set: the LAST eighth of the heap (in SMEM after first touch).
  const uint64_t hot_base = base + (pages * 7 / 8) * kPageSize;
  const uint64_t hot_pages = pages / 8;
  Rng rng(5);
  for (int round = 0; round < 80; ++round) {
    for (int i = 0; i < 3000; ++i) {
      const uint64_t addr = hot_base + rng.NextBelow(hot_pages) * kPageSize;
      const auto r = vm.ExecuteAccess(0, proc, addr, false);
      vm.vcpu(0).clock_ns += r.ns;
    }
    // Periodic context switch drains PEBS; then run due epochs.
    vm.vcpu(0).clock_ns += vm.OnContextSwitch(0, vm.vcpu(0).now());
    events.RunUntil(vm.vcpu(0).now());
  }

  EXPECT_GE(policy.epochs_run(), 5u);
  EXPECT_GT(policy.total_promoted(), hot_pages / 2) << "hot set largely promoted";
  // Most of the hot set should now be FMEM-resident.
  uint64_t in_fmem = 0;
  for (uint64_t i = 0; i < hot_pages; ++i) {
    if (vm.NodeOfVpn(proc, PageOf(hot_base) + i) == 0) {
      ++in_fmem;
    }
  }
  EXPECT_GT(in_fmem, hot_pages * 6 / 10);
  EXPECT_TRUE(policy.tree().CheckInvariants());
  EXPECT_GT(vm.mgmt_account().Total(), 0u);
  // Guest-delegated: no full EPT flushes during steady-state management.
  EXPECT_EQ(vm.AggregateTlbStats().full_flushes, 0u);
}

TEST(DemeterPolicy, RequiresEptFriendlyPebsUnderLazyBacking) {
  HostMemory memory({TierSpec::LocalDram(8 * kMiB), TierSpec::Pmem(32 * kMiB)});
  EventQueue events;
  Hypervisor hyper(&memory, &events);
  VmConfig config;
  config.total_memory_bytes = 4 * kMiB;
  config.pebs.ept_friendly = false;  // Pre-v5 PMU.
  config.lazily_backed = true;
  Vm& vm = hyper.CreateVm(config);
  GuestProcess& proc = vm.kernel().CreateProcess();
  DemeterPolicy policy;
  EXPECT_DEATH(policy.Attach(vm, proc, 0), "EPT-friendly");
}

}  // namespace
}  // namespace demeter
