// src/cluster: placement scoring, telemetry namespacing, the single-host
// byte-identity regression, spec-hash gating for cluster topology, and the
// three live-migration resolution paths (complete / abort / cancel) with
// page-conservation audits on both ends.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/fault/fault.h"
#include "src/fault/invariant_checker.h"
#include "src/harness/machine.h"
#include "src/runner/experiment.h"
#include "src/telemetry/metrics.h"

namespace demeter {
namespace {

// ------------------------------------------------------ PlacementController

HostLoad Roomy(uint64_t fmem, uint64_t far = 0) {
  HostLoad load;
  load.fmem_free_pages = fmem;
  load.far_free_pages = far;
  return load;
}

TEST(PlacementTest, PolicyNamesRoundTrip) {
  for (PlacementPolicy policy :
       {PlacementPolicy::kFirstFit, PlacementPolicy::kBestFit, PlacementPolicy::kSpread}) {
    EXPECT_EQ(PlacementPolicyFromName(PlacementPolicyName(policy)), policy);
  }
}

TEST(PlacementTest, FirstFitPacksLeft) {
  PlacementController placer(PlacementPolicy::kFirstFit);
  std::vector<HostLoad> loads = {Roomy(100), Roomy(5000), Roomy(5000)};
  EXPECT_EQ(placer.PickHost(loads, 50), 0);   // Host 0 has room: packed left.
  EXPECT_EQ(placer.PickHost(loads, 500), 1);  // Host 0 too small: next fit.
  EXPECT_EQ(placer.stats().placements, 2u);
}

TEST(PlacementTest, BestFitPicksTightestSufficientHeadroom) {
  PlacementController placer(PlacementPolicy::kBestFit);
  std::vector<HostLoad> loads = {Roomy(5000), Roomy(300), Roomy(800)};
  EXPECT_EQ(placer.PickHost(loads, 200), 1);
}

TEST(PlacementTest, SpreadBalancesResidentVms) {
  PlacementController placer(PlacementPolicy::kSpread);
  std::vector<HostLoad> loads = {Roomy(5000), Roomy(400), Roomy(400)};
  loads[0].resident_vms = 3;
  loads[1].resident_vms = 1;
  loads[2].resident_vms = 1;
  // Fewest VMs wins; the resident-count tie between hosts 1 and 2 breaks on
  // score, which is equal, so the lowest index wins.
  EXPECT_EQ(placer.PickHost(loads, 100), 1);
  loads[2].fmem_free_pages = 600;
  EXPECT_EQ(placer.PickHost(loads, 100), 2);  // Same VMs, more headroom.
}

TEST(PlacementTest, ShrinkingAndExcludedHostsAreIneligible) {
  PlacementController placer(PlacementPolicy::kFirstFit);
  std::vector<HostLoad> loads = {Roomy(5000), Roomy(5000), Roomy(5000)};
  loads[0].shrinking = true;  // Evacuation source: never a target.
  loads[1].excluded = true;
  EXPECT_EQ(placer.PickHost(loads, 100), 2);
  loads[2].shrinking = true;
  EXPECT_EQ(placer.PickHost(loads, 100), -1);
  EXPECT_EQ(placer.stats().rejects, 1u);
}

TEST(PlacementTest, FmemShareMustFitInNearTier) {
  // Host 0 has acres of far-tier room but its FMEM is committed; byte count
  // alone would pack it forever while every hot set thrashes. The
  // newcomer's hot-set share must fit in uncommitted FMEM.
  PlacementController placer(PlacementPolicy::kFirstFit);
  std::vector<HostLoad> loads = {Roomy(300, 100000), Roomy(2000, 100000)};
  EXPECT_EQ(placer.PickHost(loads, 2048, /*fmem_pages_needed=*/400), 1);
  // With no FMEM requirement the same request packs left again.
  EXPECT_EQ(placer.PickHost(loads, 2048), 0);
}

TEST(PlacementTest, HeadroomReserveRejectsNearFullHosts) {
  // Both hosts can hold the pages, but host 0's capacity is so committed
  // that placing there would eat into the 10% reserve that absorbs shrink
  // carves and lazy-backing growth.
  PlacementController placer(PlacementPolicy::kFirstFit, /*headroom=*/0.1);
  std::vector<HostLoad> loads = {Roomy(500), Roomy(500)};
  loads[0].capacity_pages = 10000;  // Reserve: 1000 > 500 free.
  loads[1].capacity_pages = 1000;   // Reserve: 100, leaves 400 usable.
  EXPECT_EQ(placer.PickHost(loads, 100), 1);
}

TEST(PlacementTest, DamageHistoryLosesTiebreaks) {
  // Equal free memory, but host 0 has lost frames to poison/shrink: best-fit
  // must prefer the undamaged host even though both are eligible.
  HostLoad battered;
  battered.fmem_free_pages = 1000;
  battered.poisoned_pages = 200;
  battered.carved_pages = 100;
  EXPECT_LT(PlacementController::Score(battered), PlacementController::Score(Roomy(1000)));
}

// -------------------------------------------------- Telemetry namespacing

TEST(TelemetryRebaseTest, RebaseScopesHostAndVmTrees) {
  std::vector<MetricSample> samples(3);
  samples[0].name = "host/mem/free";
  samples[1].name = "vm0/lifecycle/migrated_in";
  samples[2].name = "vm0/transactions";
  const MetricSnapshot rebased =
      RebaseMetricSnapshot(MetricSnapshot(std::move(samples)), "host3");
  ASSERT_EQ(rebased.size(), 3u);
  // "host/" collapses into the scope; per-VM trees nest under it.
  EXPECT_EQ(rebased.samples()[0].name, "host3/mem/free");
  EXPECT_EQ(rebased.samples()[1].name, "host3/vm0/lifecycle/migrated_in");
  EXPECT_EQ(rebased.samples()[2].name, "host3/vm0/transactions");
}

TEST(TelemetryRebaseTest, MergeSortsAcrossParts) {
  std::vector<MetricSample> a(1), b(1);
  a[0].name = "host1/x";
  b[0].name = "host0/x";
  const MetricSnapshot merged = MergeMetricSnapshots({MetricSnapshot(std::move(a)),
                                                      MetricSnapshot(std::move(b))});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.samples()[0].name, "host0/x");
  EXPECT_EQ(merged.samples()[1].name, "host1/x");
}

// ---------------------------------------------------------------- Fixtures

MachineConfig FleetHost(int vms = 2) {
  MachineConfig config;
  const uint64_t per_vm = 32 * kMiB;
  config.tiers = {TierSpec::LocalDram(10 * kMiB * static_cast<uint64_t>(vms)),
                  TierSpec::Pmem(3 * per_vm * static_cast<uint64_t>(vms))};
  config.seed = 42;
  config.check_invariants = true;  // Every test audits page conservation.
  return config;
}

VmSetup FleetVm(uint64_t transactions = 150000) {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.fmem_ratio = 0.2;
  setup.vm.num_vcpus = 2;
  setup.workload = "gups";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = transactions;
  setup.policy = PolicyKind::kDemeter;
  setup.provision = ProvisionMode::kDemeterBalloon;
  setup.policy_period = 15 * kMillisecond;
  setup.demeter.range.epoch_length = 2 * kMillisecond;
  setup.demeter.range.split_threshold = 4.0;
  setup.demeter.sample_period = 97;
  return setup;
}

FaultPlan MustParse(const std::string& spec) {
  std::string error;
  const auto plan = FaultPlan::Parse(spec, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(FaultPlan{});
}

// A shrink plan whose first carve window ([20ms, 26ms)) straddles the 20ms
// barrier, so evacuation triggers early in every test run.
constexpr char kShrinkSpec[] = "tiershrink=0.3/6ms/20ms@0";

// ------------------------------------------- Single-host byte-identity

TEST(ClusterTest, SingleHostIsByteIdenticalToBareMachine) {
  // The degenerate cluster must not perturb the simulation at all: host 0
  // runs the cluster seed unchanged, deferred boots go straight to
  // Machine::AddVm, and the snapshot is the machine's verbatim.
  const MachineConfig config = FleetHost(2);
  VmSetup deferred = FleetVm();
  deferred.boot_at = 20 * kMillisecond;

  Machine machine(config);
  machine.AddVm(FleetVm());
  machine.AddVm(deferred);
  machine.Run();

  ClusterSetup setup;
  setup.num_hosts = 1;
  Cluster cluster(config, setup);
  cluster.AddVm(FleetVm());
  cluster.AddVm(deferred);
  cluster.Run();

  ASSERT_EQ(cluster.num_vms(), 2);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.location(i).host, 0);
    EXPECT_EQ(cluster.location(i).index, i);
    const VmRunResult& bare = machine.result(i);
    const VmRunResult& fleet = cluster.result(i);
    EXPECT_EQ(fleet.transactions, bare.transactions);
    EXPECT_DOUBLE_EQ(fleet.elapsed_s, bare.elapsed_s);
    EXPECT_DOUBLE_EQ(fleet.fmem_access_fraction, bare.fmem_access_fraction);
    EXPECT_EQ(fleet.metrics.ToJson(), bare.metrics.ToJson());
  }
  EXPECT_EQ(cluster.SnapshotMetrics().ToJson(), machine.SnapshotMetrics().ToJson());
}

// ----------------------------------------------------- Multi-host fleet

TEST(ClusterTest, MultiHostRunsAreDeterministic) {
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    ClusterSetup setup;
    setup.num_hosts = 2;
    Cluster cluster(FleetHost(2), setup);
    for (int i = 0; i < 4; ++i) {
      cluster.AddVm(FleetVm());
    }
    cluster.Run();
    json[run] = cluster.SnapshotMetrics().ToJson();
  }
  EXPECT_EQ(json[0], json[1]);
}

TEST(ClusterTest, SnapshotNamespacesHostsAndRollup) {
  ClusterSetup setup;
  setup.num_hosts = 2;
  Cluster cluster(FleetHost(1), setup);
  cluster.AddVm(FleetVm());
  cluster.AddVm(FleetVm());
  cluster.Run();
  const MetricSnapshot snapshot = cluster.SnapshotMetrics();
  // Spread-free first-fit still splits 2 VMs over 2 hosts when host 0's
  // FMEM can only hold one — but regardless of placement, both host scopes
  // and the fleet roll-up must be present and disjoint.
  EXPECT_FALSE(snapshot.FilterPrefix("host0/", false).empty());
  EXPECT_FALSE(snapshot.FilterPrefix("cluster/", false).empty());
  const MetricSample* hosts = snapshot.Find("cluster/hosts");
  ASSERT_NE(hosts, nullptr);
  EXPECT_EQ(hosts->gauge, 2.0);
  // Nothing leaks through un-namespaced.
  for (const MetricSample& sample : snapshot.samples()) {
    EXPECT_TRUE(sample.name.rfind("host", 0) == 0 || sample.name.rfind("cluster/", 0) == 0)
        << sample.name;
  }
}

// ------------------------------------------------ Migration resolutions

// After Run the fleet is drained: every in-flight migration resolved, so
// every destination's commitment ledger must be back to zero. A nonzero
// entry here is a charge whose release was skipped (the headroom leak the
// per-destination ledger exists to make impossible).
void ExpectNoResidualCommitments(const Cluster& cluster) {
  const std::vector<LiveMigrator::Commitment>& held = cluster.migrator().DstCommitments();
  ASSERT_EQ(held.size(), static_cast<size_t>(cluster.num_hosts()));
  for (size_t h = 0; h < held.size(); ++h) {
    EXPECT_EQ(held[h].fmem_pages, 0u) << "host " << h;
    EXPECT_EQ(held[h].far_pages, 0u) << "host " << h;
  }
  EXPECT_TRUE(cluster.migrator().AuditCommitments().ok());
}

TEST(CommitmentConservationTest, LedgerMismatchesAreReported) {
  // Invariant 9 over plain data: ledger == per-destination in-flight sums,
  // both directions.
  InvariantReport balanced;
  InvariantChecker::CheckCommitmentConservation({{1, 10, 20}, {1, 5, 0}, {2, 7, 7}},
                                                {{0, 0, 0}, {1, 15, 20}, {2, 7, 7}}, &balanced);
  EXPECT_TRUE(balanced.ok()) << balanced.Join();

  // An aborted migration's charge left on the books: nothing in flight but
  // the ledger still holds pages.
  InvariantReport stale;
  InvariantChecker::CheckCommitmentConservation({}, {{0, 0, 0}, {1, 15, 20}}, &stale);
  ASSERT_EQ(stale.violations.size(), 1u);
  EXPECT_NE(stale.violations[0].find("host1"), std::string::npos);

  // The mirror leak: an in-flight claim the ledger never charged.
  InvariantReport missing;
  InvariantChecker::CheckCommitmentConservation({{1, 5, 5}}, {{0, 0, 0}}, &missing);
  EXPECT_EQ(missing.violations.size(), 1u);
}

TEST(ClusterTest, EvacuationCompletesAndConservesVms) {
  // Host 0 shrinks; its VMs must be pre-copied onto host 1 and finish
  // there, with the lifecycle ledger balancing exactly.
  MachineConfig config = FleetHost(2);
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};
  // A huge stop-copy threshold converges every migration on its first
  // Advance round, so completions are guaranteed even for dirty workloads.
  setup.migration.stop_copy_pages = 1u << 30;

  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    cluster.AddVm(FleetVm(400000));
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.started, 1u);
  EXPECT_GE(stats.completed, 1u);
  EXPECT_EQ(stats.started, stats.completed + stats.aborted + stats.cancelled);
  EXPECT_GT(stats.pages_copied, 0u);
  EXPECT_GT(stats.downtime_ns_total, 0u);

  uint64_t arrivals = 0;
  for (int i = 0; i < cluster.num_vms(); ++i) {
    const VmRunResult& result = cluster.result(i);
    EXPECT_GE(result.transactions, 400000u) << "vm " << i;
    arrivals += result.metrics.CounterValue("lifecycle/migrated_in");
    // The recorded location must actually hold this VM's result.
    EXPECT_GE(cluster.location(i).host, 0);
    EXPECT_GE(cluster.location(i).index, 0);
  }
  EXPECT_EQ(arrivals, stats.completed);
  ExpectNoResidualCommitments(cluster);
}

TEST(ClusterTest, AbortedMigrationLeavesVmOnSource) {
  // migratefail with a 1us budget kills every attempt during the round-0
  // full copy — strictly before ExtractVm, so the source VM is untouched,
  // no frames leak (config.check_invariants audits both hosts), and every
  // VM still finishes where it was placed.
  MachineConfig config = FleetHost(2);
  config.faults = MustParse("migratefail=1.0/1us@0");
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};

  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    cluster.AddVm(FleetVm(400000));
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.started, 1u);
  EXPECT_EQ(stats.aborted, stats.started);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  for (int i = 0; i < cluster.num_vms(); ++i) {
    const VmRunResult& result = cluster.result(i);
    EXPECT_GE(result.transactions, 400000u) << "vm " << i;
    // No VM ever moved.
    EXPECT_EQ(result.metrics.CounterValue("lifecycle/migrated_in"), 0u) << "vm " << i;
  }
  EXPECT_GT(cluster.SnapshotMetrics().CounterValue("cluster/fault/live_migrate_fail_injected"),
            0u);
  // The regression this pins: aborts released their destination charge
  // exactly once, so no stale commitment inflates placement's view.
  ExpectNoResidualCommitments(cluster);
}

TEST(ClusterTest, DepartedMidMigrationIsCancelledCleanly) {
  // Migrations that can never converge (stop_copy_pages == 0 and an
  // unreachable round cap) ride along until the victim VM finishes and
  // departs; the migrator must cancel, and the departed-VM emptiness audit
  // (config.check_invariants) must pass on both hosts.
  MachineConfig config = FleetHost(2);
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};
  setup.migration.stop_copy_pages = 0;
  setup.migration.max_precopy_rounds = 1 << 20;

  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    VmSetup vm = FleetVm(400000);
    vm.depart_on_finish = true;
    cluster.AddVm(vm);
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.started, 1u);
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.started, stats.completed + stats.aborted + stats.cancelled);
  for (int i = 0; i < cluster.num_vms(); ++i) {
    EXPECT_GE(cluster.result(i).transactions, 400000u) << "vm " << i;
  }
  ExpectNoResidualCommitments(cluster);
}

// ------------------------------------------------ Host-failure recovery

TEST(PlacementTest, FallbackPrefersHealthyThenShrinkingThenQuarantined) {
  // Tiered last-resort ordering: healthy beats shrinking beats quarantined,
  // roomiest within a tier, lowest index on ties — and down/excluded hosts
  // are never eligible, even as a last resort.
  std::vector<HostLoad> loads(4);
  loads[0] = Roomy(9000);
  loads[0].down = true;  // Roomiest of all, but fenced.
  loads[1] = Roomy(5000);
  loads[1].quarantined = true;
  loads[2] = Roomy(3000);
  loads[2].shrinking = true;
  loads[3] = Roomy(10);  // Tiny but healthy: still wins.
  EXPECT_EQ(PlacementController::PickFallbackHost(loads), 3);

  loads[3].excluded = true;  // No healthy host: shrinking beats quarantined.
  EXPECT_EQ(PlacementController::PickFallbackHost(loads), 2);

  loads[2].down = true;  // Only the quarantined host is live.
  EXPECT_EQ(PlacementController::PickFallbackHost(loads), 1);

  loads[1].down = true;  // Everything fenced: defer the boot.
  EXPECT_EQ(PlacementController::PickFallbackHost(loads), -1);

  // Within a tier the roomiest host wins; equal room breaks to the lowest
  // index.
  std::vector<HostLoad> tiered = {Roomy(100), Roomy(300), Roomy(300)};
  EXPECT_EQ(PlacementController::PickFallbackHost(tiered), 1);
}

TEST(PlacementTest, DownAndQuarantinedHostsAreIneligible) {
  PlacementController placer(PlacementPolicy::kFirstFit);
  std::vector<HostLoad> loads = {Roomy(5000), Roomy(5000), Roomy(5000)};
  loads[0].down = true;
  loads[1].quarantined = true;
  EXPECT_EQ(placer.PickHost(loads, 100), 2);
}

TEST(PlacementTest, FailureHistoryLosesTiebreaks) {
  // A host that has crashed (or whose migrations keep aborting) scores
  // below an identical clean host, so strict placement steers around it.
  HostLoad crashed = Roomy(1000);
  crashed.failures = 1;
  EXPECT_LT(PlacementController::Score(crashed), PlacementController::Score(Roomy(1000)));
  HostLoad flaky = Roomy(1000);
  flaky.migration_aborts = 3;
  EXPECT_LT(PlacementController::Score(flaky), PlacementController::Score(Roomy(1000)));
  // Whole-host failures dominate abort history.
  EXPECT_LT(PlacementController::Score(crashed), PlacementController::Score(flaky));
}

TEST(HaInvariantTest, HostFencingCatchesResidue) {
  // Family 10 over plain data: a down host must hold no active VMs, touch
  // no in-flight route at either end, and keep no commitment residue.
  const std::vector<bool> down = {true, false};
  InvariantReport clean;
  InvariantChecker::CheckHostFencing(down, {0, 3}, {{1, 1}}, {{0, 0, 0}, {1, 5, 5}}, &clean);
  EXPECT_TRUE(clean.ok()) << clean.Join();

  InvariantReport residents;
  InvariantChecker::CheckHostFencing(down, {2, 3}, {}, {}, &residents);
  EXPECT_FALSE(residents.ok());

  InvariantReport route_src;
  InvariantChecker::CheckHostFencing(down, {0, 3}, {{0, 1}}, {}, &route_src);
  EXPECT_FALSE(route_src.ok());
  InvariantReport route_dst;
  InvariantChecker::CheckHostFencing(down, {0, 3}, {{1, 0}}, {}, &route_dst);
  EXPECT_FALSE(route_dst.ok());

  InvariantReport residue;
  InvariantChecker::CheckHostFencing(down, {0, 3}, {}, {{0, 4, 0}, {1, 0, 0}}, &residue);
  EXPECT_FALSE(residue.ok());
}

TEST(HaInvariantTest, RestartConservationBalances) {
  // Family 11: killed == restarted + queued + lost, violated either way.
  InvariantReport balanced;
  InvariantChecker::CheckRestartConservation(5, 3, 1, 1, &balanced);
  EXPECT_TRUE(balanced.ok()) << balanced.Join();
  InvariantReport leaked;
  InvariantChecker::CheckRestartConservation(5, 3, 0, 1, &leaked);
  EXPECT_FALSE(leaked.ok());
  InvariantReport conjured;
  InvariantChecker::CheckRestartConservation(2, 3, 0, 0, &conjured);
  EXPECT_FALSE(conjured.ok());
}

TEST(ClusterHaTest, HostFailureKillsFencesAndRestarts) {
  // hostfail=1.0 fells host 0 at the first barrier: every resident VM is
  // killed, re-placed on host 1 through the restart queue, and reruns to
  // its full target from zero. check_invariants audits fencing and restart
  // conservation at every barrier. Run twice: HA recovery must be
  // deterministic.
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    MachineConfig config = FleetHost(4);
    config.faults = MustParse("hostfail=1.0/8ms@0");
    ClusterSetup setup;
    setup.num_hosts = 2;
    Cluster cluster(config, setup);
    for (int i = 0; i < 4; ++i) {
      cluster.AddVm(FleetVm());
    }
    cluster.Run();

    EXPECT_GE(cluster.hosts_failed(), 1u);
    EXPECT_GE(cluster.vms_killed(), 1u);
    EXPECT_EQ(cluster.vms_restarted(), cluster.vms_killed());
    EXPECT_EQ(cluster.vms_lost(), 0u);
    EXPECT_EQ(cluster.restart_queue_depth(), 0u);
    EXPECT_GT(cluster.restart_latency_ns_total(), 0u);
    uint64_t restarts = 0;
    for (int i = 0; i < cluster.num_vms(); ++i) {
      const VmRunResult& result = cluster.result(i);
      EXPECT_GE(result.transactions, 150000u) << "vm " << i;
      // Every survivor lives on host 1 — host 0 re-fails every time it
      // resurrects, and nothing may be placed on a down host.
      EXPECT_EQ(cluster.location(i).host, 1) << "vm " << i;
      restarts += result.metrics.CounterValue("lifecycle/restarts");
    }
    EXPECT_EQ(restarts, cluster.vms_restarted());
    const MetricSnapshot snapshot = cluster.SnapshotMetrics();
    EXPECT_EQ(snapshot.CounterValue("cluster/ha/vms_killed"), cluster.vms_killed());
    EXPECT_EQ(snapshot.CounterValue("cluster/ha/vms_restarted"), cluster.vms_restarted());
    EXPECT_GT(snapshot.CounterValue("cluster/fault/host_fail_injected"), 0u);
    ExpectNoResidualCommitments(cluster);
    json[run] = snapshot.ToJson();
  }
  EXPECT_EQ(json[0], json[1]);
}

TEST(ClusterHaTest, NoRecoveryAblationLosesEveryKill) {
  MachineConfig config = FleetHost(4);
  config.faults = MustParse("hostfail=1.0/8ms@0");
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.ha.restart = false;
  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    cluster.AddVm(FleetVm());
  }
  cluster.Run();

  EXPECT_GE(cluster.vms_killed(), 1u);
  EXPECT_EQ(cluster.vms_restarted(), 0u);
  EXPECT_EQ(cluster.vms_lost(), cluster.vms_killed());
  EXPECT_EQ(cluster.restart_queue_depth(), 0u);
  // A lost VM committed nothing (its kill predates any real progress here);
  // the survivors on host 1 still run to target.
  uint64_t finished = 0;
  for (int i = 0; i < cluster.num_vms(); ++i) {
    if (cluster.result(i).transactions >= 150000u) {
      ++finished;
    }
  }
  EXPECT_EQ(finished, static_cast<uint64_t>(cluster.num_vms()) - cluster.vms_lost());
  ExpectNoResidualCommitments(cluster);
}

TEST(ClusterHaTest, RestartAdmissionControlBoundsAttemptsThenGivesUp) {
  // A 90% placement headroom reserve makes strict placement reject every
  // host, so boot-time placement goes through the fallback while restarts
  // (strict by design — no fallback) back off and are abandoned after
  // restart_max_attempts. The ledger must still balance.
  MachineConfig config = FleetHost(4);
  config.faults = MustParse("hostfail=1.0/8ms@0");
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.placement_headroom = 0.9;
  setup.ha.restart_max_attempts = 2;
  setup.ha.restart_backoff_epochs = 1;
  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    cluster.AddVm(FleetVm());
  }
  cluster.Run();

  EXPECT_GE(cluster.vms_killed(), 1u);
  EXPECT_EQ(cluster.vms_restarted(), 0u);  // Strict placement never admits.
  EXPECT_EQ(cluster.vms_lost(), cluster.vms_killed());
  EXPECT_EQ(cluster.restart_queue_depth(), 0u);
}

TEST(ClusterHaTest, MigrationRetriesAccumulateAndExhaust) {
  // Every migration aborts in its round-0 copy (1us budget), so each
  // retry re-aborts immediately: attempts must accumulate across re-launches
  // (not reset), hitting retry_exhausted instead of retrying forever.
  MachineConfig config = FleetHost(2);
  config.faults = MustParse("migratefail=1.0/1us@0,migratefail=1.0/1us@1");
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};
  setup.migration.max_retries = 2;
  setup.migration.retry_backoff_epochs = 1;
  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    cluster.AddVm(FleetVm(400000));
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.started, 1u);
  EXPECT_EQ(stats.aborted, stats.started);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_GE(cluster.migration_retries(), 1u);
  EXPECT_GE(cluster.migration_retries_exhausted(), 1u);
  for (int i = 0; i < cluster.num_vms(); ++i) {
    EXPECT_GE(cluster.result(i).transactions, 400000u) << "vm " << i;
  }
  ExpectNoResidualCommitments(cluster);
}

TEST(ClusterHaTest, FencedDestinationIsReplannedToFreshHost) {
  // Three hosts: host 0 evacuates under shrink, host 1 (the first-fit
  // destination) fail-stops intermittently, host 2 never fails. Migrations
  // in flight toward host 1 when it dies must be fenced — commitment
  // released, counted as fenced, never aborted — and re-planned through
  // the retry queue toward host 2.
  MachineConfig config = FleetHost(4);
  // Low per-barrier probability: host 1 survives long enough to be picked
  // as the first-fit destination, then dies during the endless pre-copy.
  config.faults = MustParse("hostfail=0.1/8ms@1");
  ClusterSetup setup;
  setup.num_hosts = 3;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}, FaultPlan{}};
  // Never-converging pre-copy: migrations stay in flight until fenced or
  // cancelled, maximizing exposure to the destination's failure window.
  setup.migration.stop_copy_pages = 0;
  setup.migration.max_precopy_rounds = 1 << 20;
  setup.migration.max_retries = 3;
  setup.migration.retry_backoff_epochs = 1;
  // Short quarantine keeps host 1 cycling back into the destination pool,
  // so migrations keep landing on it right before its next failure draw.
  setup.ha.quarantine_epochs = 1;
  Cluster cluster(config, setup);
  for (int i = 0; i < 6; ++i) {
    cluster.AddVm(FleetVm(400000));
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.fenced, 1u);
  EXPECT_GE(cluster.migration_retries(), 1u);
  EXPECT_EQ(stats.started, stats.completed + stats.aborted + stats.cancelled + stats.fenced);
  EXPECT_EQ(cluster.SnapshotMetrics().CounterValue("cluster/migration/fenced"), stats.fenced);
  // Every VM that survived (host 1's residents may die and restart) ran to
  // target; conservation across kill/restart is audited every barrier.
  EXPECT_EQ(cluster.vms_killed(), cluster.vms_restarted() + cluster.vms_lost());
  ExpectNoResidualCommitments(cluster);
}

TEST(ClusterTest, BlockedEvacuationReattemptsAfterCooldown) {
  // max_inflight=1 with several VMs on the shrinking host: the first
  // barrier in the window starts one evacuation and the rest are blocked by
  // the inflight cap — NOT counted as "no destination". After the inflight
  // migration completes and the source's cooldown expires, evacuation must
  // re-attempt and move another VM.
  MachineConfig config = FleetHost(4);
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};
  setup.migration.stop_copy_pages = 1u << 30;  // Complete on first Advance.
  setup.migration.max_inflight = 1;
  setup.migration.cooldown_epochs = 1;
  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    cluster.AddVm(FleetVm(400000));
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.started, 2u) << "capped evacuation never re-attempted";
  EXPECT_EQ(cluster.evacuations_without_destination(), 0u);
  EXPECT_EQ(stats.started, stats.completed + stats.aborted + stats.cancelled);
  for (int i = 0; i < cluster.num_vms(); ++i) {
    EXPECT_GE(cluster.result(i).transactions, 400000u) << "vm " << i;
  }
  ExpectNoResidualCommitments(cluster);
}

// ----------------------------------------------------- Spec hash gating

ExperimentSpec ClusterSpec(int num_hosts) {
  ExperimentSpec spec;
  spec.name = "fleet";
  spec.tag = "test";
  spec.config = FleetHost(2);
  spec.vms = {FleetVm(), FleetVm()};
  spec.cluster.num_hosts = num_hosts;
  return spec;
}

TEST(ClusterSpecHashTest, DefaultTopologyKeepsPreExistingSeeds) {
  // A default ClusterSetup must hash exactly like a spec that predates the
  // cluster subsystem, so every pre-existing experiment keeps its seed (the
  // bench baselines pin the actual values across builds; this pins the
  // gating mechanism).
  const ExperimentSpec base = ClusterSpec(0);
  ExperimentSpec with_default = base;
  with_default.cluster = ClusterSetup{};
  EXPECT_TRUE(base.cluster.IsDefault());
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(with_default));

  // Any topology field flipping the setup off default reseeds — even with
  // num_hosts still 0, because a non-default setup is new behaviour space.
  ExperimentSpec fleet = base;
  fleet.cluster.num_hosts = 1;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(fleet));
  ExperimentSpec tuned = base;
  tuned.cluster.migration.wire_ns_per_page += 1.0;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(tuned));
  ExperimentSpec hosted = base;
  hosted.cluster.host_faults.push_back(FaultPlan{});
  EXPECT_NE(SpecContentHash(base), SpecContentHash(hosted));

  // Restoring the default restores the original seed bit-for-bit.
  fleet.cluster = ClusterSetup{};
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(fleet));
}

TEST(ClusterSpecHashTest, DistinctTopologiesReseedDistinctly) {
  const uint64_t one = SpecContentHash(ClusterSpec(1));
  const uint64_t two = SpecContentHash(ClusterSpec(2));
  EXPECT_NE(one, two);
  ExperimentSpec spread = ClusterSpec(2);
  spread.cluster.placement = PlacementPolicy::kSpread;
  EXPECT_NE(SpecContentHash(spread), two);
}

TEST(ClusterSpecHashTest, RetryAndHaKnobsGateTheHash) {
  // Default retry/HA knobs must contribute nothing to the hash (so every
  // pre-HA experiment keeps its seed), while any non-default value reseeds.
  const ExperimentSpec base = ClusterSpec(2);
  ExperimentSpec explicit_defaults = base;
  explicit_defaults.cluster.migration.max_retries = MigrationConfig{}.max_retries;
  explicit_defaults.cluster.ha = HaConfig{};
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(explicit_defaults));

  ExperimentSpec retried = base;
  retried.cluster.migration.max_retries = 3;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(retried));
  ExperimentSpec backoff = base;
  backoff.cluster.migration.retry_backoff_epochs += 1;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(backoff));

  ExperimentSpec norec = base;
  norec.cluster.ha.restart = false;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(norec));
  ExperimentSpec quarantine = base;
  quarantine.cluster.ha.quarantine_epochs += 4;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(quarantine));
  EXPECT_NE(SpecContentHash(norec), SpecContentHash(quarantine));

  // Restoring defaults restores the original seed bit-for-bit.
  retried.cluster.migration.max_retries = 0;
  norec.cluster.ha = HaConfig{};
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(retried));
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(norec));
}

// ------------------------------------------------- RunExperiment plumbing

TEST(ClusterExperimentTest, RunnerTakesClusterPath) {
  ExperimentSpec spec = ClusterSpec(2);
  spec.cluster.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};
  spec.cluster.migration.stop_copy_pages = 1u << 30;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.vms.size(), 2u);
  for (const VmRunResult& vm : result.vms) {
    EXPECT_GE(vm.transactions, 150000u);
  }
  // Multi-host metrics keep their full namespacing.
  EXPECT_NE(result.host_metrics.Find("cluster/hosts"), nullptr);
  EXPECT_FALSE(result.host_metrics.FilterPrefix("host0/", false).empty());

  // Single-host cluster specs strip "host/" exactly like the classic path.
  const ExperimentResult single = RunExperiment(ClusterSpec(1));
  ASSERT_TRUE(single.ok);
  EXPECT_EQ(single.host_metrics.Find("cluster/hosts"), nullptr);
  EXPECT_FALSE(single.host_metrics.FilterPrefix("hyper/", false).empty());
}

}  // namespace
}  // namespace demeter
