// src/cluster: placement scoring, telemetry namespacing, the single-host
// byte-identity regression, spec-hash gating for cluster topology, and the
// three live-migration resolution paths (complete / abort / cancel) with
// page-conservation audits on both ends.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/fault/fault.h"
#include "src/harness/machine.h"
#include "src/runner/experiment.h"
#include "src/telemetry/metrics.h"

namespace demeter {
namespace {

// ------------------------------------------------------ PlacementController

HostLoad Roomy(uint64_t fmem, uint64_t far = 0) {
  HostLoad load;
  load.fmem_free_pages = fmem;
  load.far_free_pages = far;
  return load;
}

TEST(PlacementTest, PolicyNamesRoundTrip) {
  for (PlacementPolicy policy :
       {PlacementPolicy::kFirstFit, PlacementPolicy::kBestFit, PlacementPolicy::kSpread}) {
    EXPECT_EQ(PlacementPolicyFromName(PlacementPolicyName(policy)), policy);
  }
}

TEST(PlacementTest, FirstFitPacksLeft) {
  PlacementController placer(PlacementPolicy::kFirstFit);
  std::vector<HostLoad> loads = {Roomy(100), Roomy(5000), Roomy(5000)};
  EXPECT_EQ(placer.PickHost(loads, 50), 0);   // Host 0 has room: packed left.
  EXPECT_EQ(placer.PickHost(loads, 500), 1);  // Host 0 too small: next fit.
  EXPECT_EQ(placer.stats().placements, 2u);
}

TEST(PlacementTest, BestFitPicksTightestSufficientHeadroom) {
  PlacementController placer(PlacementPolicy::kBestFit);
  std::vector<HostLoad> loads = {Roomy(5000), Roomy(300), Roomy(800)};
  EXPECT_EQ(placer.PickHost(loads, 200), 1);
}

TEST(PlacementTest, SpreadBalancesResidentVms) {
  PlacementController placer(PlacementPolicy::kSpread);
  std::vector<HostLoad> loads = {Roomy(5000), Roomy(400), Roomy(400)};
  loads[0].resident_vms = 3;
  loads[1].resident_vms = 1;
  loads[2].resident_vms = 1;
  // Fewest VMs wins; the resident-count tie between hosts 1 and 2 breaks on
  // score, which is equal, so the lowest index wins.
  EXPECT_EQ(placer.PickHost(loads, 100), 1);
  loads[2].fmem_free_pages = 600;
  EXPECT_EQ(placer.PickHost(loads, 100), 2);  // Same VMs, more headroom.
}

TEST(PlacementTest, ShrinkingAndExcludedHostsAreIneligible) {
  PlacementController placer(PlacementPolicy::kFirstFit);
  std::vector<HostLoad> loads = {Roomy(5000), Roomy(5000), Roomy(5000)};
  loads[0].shrinking = true;  // Evacuation source: never a target.
  loads[1].excluded = true;
  EXPECT_EQ(placer.PickHost(loads, 100), 2);
  loads[2].shrinking = true;
  EXPECT_EQ(placer.PickHost(loads, 100), -1);
  EXPECT_EQ(placer.stats().rejects, 1u);
}

TEST(PlacementTest, FmemShareMustFitInNearTier) {
  // Host 0 has acres of far-tier room but its FMEM is committed; byte count
  // alone would pack it forever while every hot set thrashes. The
  // newcomer's hot-set share must fit in uncommitted FMEM.
  PlacementController placer(PlacementPolicy::kFirstFit);
  std::vector<HostLoad> loads = {Roomy(300, 100000), Roomy(2000, 100000)};
  EXPECT_EQ(placer.PickHost(loads, 2048, /*fmem_pages_needed=*/400), 1);
  // With no FMEM requirement the same request packs left again.
  EXPECT_EQ(placer.PickHost(loads, 2048), 0);
}

TEST(PlacementTest, HeadroomReserveRejectsNearFullHosts) {
  // Both hosts can hold the pages, but host 0's capacity is so committed
  // that placing there would eat into the 10% reserve that absorbs shrink
  // carves and lazy-backing growth.
  PlacementController placer(PlacementPolicy::kFirstFit, /*headroom=*/0.1);
  std::vector<HostLoad> loads = {Roomy(500), Roomy(500)};
  loads[0].capacity_pages = 10000;  // Reserve: 1000 > 500 free.
  loads[1].capacity_pages = 1000;   // Reserve: 100, leaves 400 usable.
  EXPECT_EQ(placer.PickHost(loads, 100), 1);
}

TEST(PlacementTest, DamageHistoryLosesTiebreaks) {
  // Equal free memory, but host 0 has lost frames to poison/shrink: best-fit
  // must prefer the undamaged host even though both are eligible.
  HostLoad battered;
  battered.fmem_free_pages = 1000;
  battered.poisoned_pages = 200;
  battered.carved_pages = 100;
  EXPECT_LT(PlacementController::Score(battered), PlacementController::Score(Roomy(1000)));
}

// -------------------------------------------------- Telemetry namespacing

TEST(TelemetryRebaseTest, RebaseScopesHostAndVmTrees) {
  std::vector<MetricSample> samples(3);
  samples[0].name = "host/mem/free";
  samples[1].name = "vm0/lifecycle/migrated_in";
  samples[2].name = "vm0/transactions";
  const MetricSnapshot rebased =
      RebaseMetricSnapshot(MetricSnapshot(std::move(samples)), "host3");
  ASSERT_EQ(rebased.size(), 3u);
  // "host/" collapses into the scope; per-VM trees nest under it.
  EXPECT_EQ(rebased.samples()[0].name, "host3/mem/free");
  EXPECT_EQ(rebased.samples()[1].name, "host3/vm0/lifecycle/migrated_in");
  EXPECT_EQ(rebased.samples()[2].name, "host3/vm0/transactions");
}

TEST(TelemetryRebaseTest, MergeSortsAcrossParts) {
  std::vector<MetricSample> a(1), b(1);
  a[0].name = "host1/x";
  b[0].name = "host0/x";
  const MetricSnapshot merged = MergeMetricSnapshots({MetricSnapshot(std::move(a)),
                                                      MetricSnapshot(std::move(b))});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.samples()[0].name, "host0/x");
  EXPECT_EQ(merged.samples()[1].name, "host1/x");
}

// ---------------------------------------------------------------- Fixtures

MachineConfig FleetHost(int vms = 2) {
  MachineConfig config;
  const uint64_t per_vm = 32 * kMiB;
  config.tiers = {TierSpec::LocalDram(10 * kMiB * static_cast<uint64_t>(vms)),
                  TierSpec::Pmem(3 * per_vm * static_cast<uint64_t>(vms))};
  config.seed = 42;
  config.check_invariants = true;  // Every test audits page conservation.
  return config;
}

VmSetup FleetVm(uint64_t transactions = 150000) {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.fmem_ratio = 0.2;
  setup.vm.num_vcpus = 2;
  setup.workload = "gups";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = transactions;
  setup.policy = PolicyKind::kDemeter;
  setup.provision = ProvisionMode::kDemeterBalloon;
  setup.policy_period = 15 * kMillisecond;
  setup.demeter.range.epoch_length = 2 * kMillisecond;
  setup.demeter.range.split_threshold = 4.0;
  setup.demeter.sample_period = 97;
  return setup;
}

FaultPlan MustParse(const std::string& spec) {
  std::string error;
  const auto plan = FaultPlan::Parse(spec, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(FaultPlan{});
}

// A shrink plan whose first carve window ([20ms, 26ms)) straddles the 20ms
// barrier, so evacuation triggers early in every test run.
constexpr char kShrinkSpec[] = "tiershrink=0.3/6ms/20ms@0";

// ------------------------------------------- Single-host byte-identity

TEST(ClusterTest, SingleHostIsByteIdenticalToBareMachine) {
  // The degenerate cluster must not perturb the simulation at all: host 0
  // runs the cluster seed unchanged, deferred boots go straight to
  // Machine::AddVm, and the snapshot is the machine's verbatim.
  const MachineConfig config = FleetHost(2);
  VmSetup deferred = FleetVm();
  deferred.boot_at = 20 * kMillisecond;

  Machine machine(config);
  machine.AddVm(FleetVm());
  machine.AddVm(deferred);
  machine.Run();

  ClusterSetup setup;
  setup.num_hosts = 1;
  Cluster cluster(config, setup);
  cluster.AddVm(FleetVm());
  cluster.AddVm(deferred);
  cluster.Run();

  ASSERT_EQ(cluster.num_vms(), 2);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.location(i).host, 0);
    EXPECT_EQ(cluster.location(i).index, i);
    const VmRunResult& bare = machine.result(i);
    const VmRunResult& fleet = cluster.result(i);
    EXPECT_EQ(fleet.transactions, bare.transactions);
    EXPECT_DOUBLE_EQ(fleet.elapsed_s, bare.elapsed_s);
    EXPECT_DOUBLE_EQ(fleet.fmem_access_fraction, bare.fmem_access_fraction);
    EXPECT_EQ(fleet.metrics.ToJson(), bare.metrics.ToJson());
  }
  EXPECT_EQ(cluster.SnapshotMetrics().ToJson(), machine.SnapshotMetrics().ToJson());
}

// ----------------------------------------------------- Multi-host fleet

TEST(ClusterTest, MultiHostRunsAreDeterministic) {
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    ClusterSetup setup;
    setup.num_hosts = 2;
    Cluster cluster(FleetHost(2), setup);
    for (int i = 0; i < 4; ++i) {
      cluster.AddVm(FleetVm());
    }
    cluster.Run();
    json[run] = cluster.SnapshotMetrics().ToJson();
  }
  EXPECT_EQ(json[0], json[1]);
}

TEST(ClusterTest, SnapshotNamespacesHostsAndRollup) {
  ClusterSetup setup;
  setup.num_hosts = 2;
  Cluster cluster(FleetHost(1), setup);
  cluster.AddVm(FleetVm());
  cluster.AddVm(FleetVm());
  cluster.Run();
  const MetricSnapshot snapshot = cluster.SnapshotMetrics();
  // Spread-free first-fit still splits 2 VMs over 2 hosts when host 0's
  // FMEM can only hold one — but regardless of placement, both host scopes
  // and the fleet roll-up must be present and disjoint.
  EXPECT_FALSE(snapshot.FilterPrefix("host0/", false).empty());
  EXPECT_FALSE(snapshot.FilterPrefix("cluster/", false).empty());
  const MetricSample* hosts = snapshot.Find("cluster/hosts");
  ASSERT_NE(hosts, nullptr);
  EXPECT_EQ(hosts->gauge, 2.0);
  // Nothing leaks through un-namespaced.
  for (const MetricSample& sample : snapshot.samples()) {
    EXPECT_TRUE(sample.name.rfind("host", 0) == 0 || sample.name.rfind("cluster/", 0) == 0)
        << sample.name;
  }
}

// ------------------------------------------------ Migration resolutions

// After Run the fleet is drained: every in-flight migration resolved, so
// every destination's commitment ledger must be back to zero. A nonzero
// entry here is a charge whose release was skipped (the headroom leak the
// per-destination ledger exists to make impossible).
void ExpectNoResidualCommitments(const Cluster& cluster) {
  const std::vector<LiveMigrator::Commitment>& held = cluster.migrator().DstCommitments();
  ASSERT_EQ(held.size(), static_cast<size_t>(cluster.num_hosts()));
  for (size_t h = 0; h < held.size(); ++h) {
    EXPECT_EQ(held[h].fmem_pages, 0u) << "host " << h;
    EXPECT_EQ(held[h].far_pages, 0u) << "host " << h;
  }
  EXPECT_TRUE(cluster.migrator().AuditCommitments().ok());
}

TEST(CommitmentConservationTest, LedgerMismatchesAreReported) {
  // Invariant 9 over plain data: ledger == per-destination in-flight sums,
  // both directions.
  InvariantReport balanced;
  InvariantChecker::CheckCommitmentConservation({{1, 10, 20}, {1, 5, 0}, {2, 7, 7}},
                                                {{0, 0, 0}, {1, 15, 20}, {2, 7, 7}}, &balanced);
  EXPECT_TRUE(balanced.ok()) << balanced.Join();

  // An aborted migration's charge left on the books: nothing in flight but
  // the ledger still holds pages.
  InvariantReport stale;
  InvariantChecker::CheckCommitmentConservation({}, {{0, 0, 0}, {1, 15, 20}}, &stale);
  ASSERT_EQ(stale.violations.size(), 1u);
  EXPECT_NE(stale.violations[0].find("host1"), std::string::npos);

  // The mirror leak: an in-flight claim the ledger never charged.
  InvariantReport missing;
  InvariantChecker::CheckCommitmentConservation({{1, 5, 5}}, {{0, 0, 0}}, &missing);
  EXPECT_EQ(missing.violations.size(), 1u);
}

TEST(ClusterTest, EvacuationCompletesAndConservesVms) {
  // Host 0 shrinks; its VMs must be pre-copied onto host 1 and finish
  // there, with the lifecycle ledger balancing exactly.
  MachineConfig config = FleetHost(2);
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};
  // A huge stop-copy threshold converges every migration on its first
  // Advance round, so completions are guaranteed even for dirty workloads.
  setup.migration.stop_copy_pages = 1u << 30;

  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    cluster.AddVm(FleetVm(400000));
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.started, 1u);
  EXPECT_GE(stats.completed, 1u);
  EXPECT_EQ(stats.started, stats.completed + stats.aborted + stats.cancelled);
  EXPECT_GT(stats.pages_copied, 0u);
  EXPECT_GT(stats.downtime_ns_total, 0u);

  uint64_t arrivals = 0;
  for (int i = 0; i < cluster.num_vms(); ++i) {
    const VmRunResult& result = cluster.result(i);
    EXPECT_GE(result.transactions, 400000u) << "vm " << i;
    arrivals += result.metrics.CounterValue("lifecycle/migrated_in");
    // The recorded location must actually hold this VM's result.
    EXPECT_GE(cluster.location(i).host, 0);
    EXPECT_GE(cluster.location(i).index, 0);
  }
  EXPECT_EQ(arrivals, stats.completed);
  ExpectNoResidualCommitments(cluster);
}

TEST(ClusterTest, AbortedMigrationLeavesVmOnSource) {
  // migratefail with a 1us budget kills every attempt during the round-0
  // full copy — strictly before ExtractVm, so the source VM is untouched,
  // no frames leak (config.check_invariants audits both hosts), and every
  // VM still finishes where it was placed.
  MachineConfig config = FleetHost(2);
  config.faults = MustParse("migratefail=1.0/1us@0");
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};

  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    cluster.AddVm(FleetVm(400000));
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.started, 1u);
  EXPECT_EQ(stats.aborted, stats.started);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  for (int i = 0; i < cluster.num_vms(); ++i) {
    const VmRunResult& result = cluster.result(i);
    EXPECT_GE(result.transactions, 400000u) << "vm " << i;
    // No VM ever moved.
    EXPECT_EQ(result.metrics.CounterValue("lifecycle/migrated_in"), 0u) << "vm " << i;
  }
  EXPECT_GT(cluster.SnapshotMetrics().CounterValue("cluster/fault/live_migrate_fail_injected"),
            0u);
  // The regression this pins: aborts released their destination charge
  // exactly once, so no stale commitment inflates placement's view.
  ExpectNoResidualCommitments(cluster);
}

TEST(ClusterTest, DepartedMidMigrationIsCancelledCleanly) {
  // Migrations that can never converge (stop_copy_pages == 0 and an
  // unreachable round cap) ride along until the victim VM finishes and
  // departs; the migrator must cancel, and the departed-VM emptiness audit
  // (config.check_invariants) must pass on both hosts.
  MachineConfig config = FleetHost(2);
  ClusterSetup setup;
  setup.num_hosts = 2;
  setup.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};
  setup.migration.stop_copy_pages = 0;
  setup.migration.max_precopy_rounds = 1 << 20;

  Cluster cluster(config, setup);
  for (int i = 0; i < 4; ++i) {
    VmSetup vm = FleetVm(400000);
    vm.depart_on_finish = true;
    cluster.AddVm(vm);
  }
  cluster.Run();

  const LiveMigrator::Stats& stats = cluster.migration_stats();
  EXPECT_GE(stats.started, 1u);
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.started, stats.completed + stats.aborted + stats.cancelled);
  for (int i = 0; i < cluster.num_vms(); ++i) {
    EXPECT_GE(cluster.result(i).transactions, 400000u) << "vm " << i;
  }
  ExpectNoResidualCommitments(cluster);
}

// ----------------------------------------------------- Spec hash gating

ExperimentSpec ClusterSpec(int num_hosts) {
  ExperimentSpec spec;
  spec.name = "fleet";
  spec.tag = "test";
  spec.config = FleetHost(2);
  spec.vms = {FleetVm(), FleetVm()};
  spec.cluster.num_hosts = num_hosts;
  return spec;
}

TEST(ClusterSpecHashTest, DefaultTopologyKeepsPreExistingSeeds) {
  // A default ClusterSetup must hash exactly like a spec that predates the
  // cluster subsystem, so every pre-existing experiment keeps its seed (the
  // bench baselines pin the actual values across builds; this pins the
  // gating mechanism).
  const ExperimentSpec base = ClusterSpec(0);
  ExperimentSpec with_default = base;
  with_default.cluster = ClusterSetup{};
  EXPECT_TRUE(base.cluster.IsDefault());
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(with_default));

  // Any topology field flipping the setup off default reseeds — even with
  // num_hosts still 0, because a non-default setup is new behaviour space.
  ExperimentSpec fleet = base;
  fleet.cluster.num_hosts = 1;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(fleet));
  ExperimentSpec tuned = base;
  tuned.cluster.migration.wire_ns_per_page += 1.0;
  EXPECT_NE(SpecContentHash(base), SpecContentHash(tuned));
  ExperimentSpec hosted = base;
  hosted.cluster.host_faults.push_back(FaultPlan{});
  EXPECT_NE(SpecContentHash(base), SpecContentHash(hosted));

  // Restoring the default restores the original seed bit-for-bit.
  fleet.cluster = ClusterSetup{};
  EXPECT_EQ(SpecContentHash(base), SpecContentHash(fleet));
}

TEST(ClusterSpecHashTest, DistinctTopologiesReseedDistinctly) {
  const uint64_t one = SpecContentHash(ClusterSpec(1));
  const uint64_t two = SpecContentHash(ClusterSpec(2));
  EXPECT_NE(one, two);
  ExperimentSpec spread = ClusterSpec(2);
  spread.cluster.placement = PlacementPolicy::kSpread;
  EXPECT_NE(SpecContentHash(spread), two);
}

// ------------------------------------------------- RunExperiment plumbing

TEST(ClusterExperimentTest, RunnerTakesClusterPath) {
  ExperimentSpec spec = ClusterSpec(2);
  spec.cluster.host_faults = {MustParse(kShrinkSpec), FaultPlan{}};
  spec.cluster.migration.stop_copy_pages = 1u << 30;
  const ExperimentResult result = RunExperiment(spec);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.vms.size(), 2u);
  for (const VmRunResult& vm : result.vms) {
    EXPECT_GE(vm.transactions, 150000u);
  }
  // Multi-host metrics keep their full namespacing.
  EXPECT_NE(result.host_metrics.Find("cluster/hosts"), nullptr);
  EXPECT_FALSE(result.host_metrics.FilterPrefix("host0/", false).empty());

  // Single-host cluster specs strip "host/" exactly like the classic path.
  const ExperimentResult single = RunExperiment(ClusterSpec(1));
  ASSERT_TRUE(single.ok);
  EXPECT_EQ(single.host_metrics.Find("cluster/hosts"), nullptr);
  EXPECT_FALSE(single.host_metrics.FilterPrefix("hyper/", false).empty());
}

}  // namespace
}  // namespace demeter
