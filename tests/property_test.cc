// Property-based invariants, swept over (policy x workload) combinations
// and over range-tree parameter grids with parameterized gtest.
//
// The central property: NO tiered-memory-management policy may ever lose,
// duplicate, or corrupt a page. We stamp every backed frame with a token
// derived from its owning gVA, run the policy hard enough to force
// migrations, and verify that afterwards every mapped page still carries
// its own data — plus structural invariants (rmap consistency, node
// accounting, host-frame conservation).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/harness/machine.h"
#include "src/workloads/workload.h"

namespace demeter {
namespace {

// ---- Policy x workload integrity sweep ---------------------------------------

using PolicyWorkload = std::tuple<std::string, std::string>;

class PolicyIntegrityTest : public ::testing::TestWithParam<PolicyWorkload> {};

TEST_P(PolicyIntegrityTest, NoPageLostOrCorrupted) {
  const auto& [policy_name, workload_name] = GetParam();

  HostMemory memory({TierSpec::LocalDram(10 * kMiB), TierSpec::Pmem(64 * kMiB)});
  EventQueue events;
  Hypervisor hyper(&memory, &events);
  VmConfig config;
  config.total_memory_bytes = 16 * kMiB;
  config.fmem_ratio = 0.25;
  config.num_vcpus = 2;
  config.cache_hit_rate = 0.0;  // Every init touch must reach the MMU (stamping relies on it).
  Vm& vm = hyper.CreateVm(config);
  GuestProcess& proc = vm.kernel().CreateProcess();

  auto workload = MakeWorkload(workload_name, 12 * kMiB);
  Rng rng(42);
  workload->Setup(proc, rng);

  // Init pass + stamp every backed frame with a token derived from its gVA.
  for (const Vma& vma : proc.space().vmas()) {
    if (!vma.tracked || vma.size() == 0) {
      continue;
    }
    for (uint64_t addr = vma.start; addr < vma.end; addr += kPageSize) {
      vm.ExecuteAccess(0, proc, addr, true);
    }
  }
  uint64_t stamped = 0;
  proc.gpt().ForEachPresent(0, PageTable::kMaxPage, [&](PageNum vpn, uint64_t gpa, bool, bool) {
    const auto ept = vm.ept().Lookup(gpa);
    ASSERT_TRUE(ept.present) << "mapped page must be backed after init";
    memory.WriteToken(ept.target, vpn * 1000003ULL);
    ++stamped;
  });
  ASSERT_GT(stamped, 1000u);

  // Attach the policy and drive the workload through migrations.
  DemeterConfig dconfig;
  dconfig.range.epoch_length = 10 * kMillisecond;
  dconfig.range.split_threshold = 4.0;
  dconfig.sample_period = 97;
  auto policy = MakePolicy(PolicyKindFromName(policy_name), dconfig, 10 * kMillisecond);
  policy->Attach(vm, proc, vm.vcpu(0).now());

  std::vector<AccessOp> ops;
  for (int round = 0; round < 60; ++round) {
    ops.clear();
    workload->NextBatch(round % 2, 2000, rng, &ops);
    for (const AccessOp& op : ops) {
      const AccessResult r = vm.ExecuteAccess(round % 2, proc, op.gva, op.is_write);
      vm.vcpu(round % 2).clock_ns += r.ns;
    }
    Vcpu& vcpu = vm.vcpu(round % 2);
    vcpu.clock_ns += vm.OnContextSwitch(round % 2, vcpu.now());
    vcpu.clock_ns += static_cast<double>(5 * kMillisecond);
    vm.vcpu((round + 1) % 2).clock_ns = vcpu.clock_ns;
    events.RunUntil(vcpu.now());
  }
  policy->Stop();

  // Property 1: every originally mapped page still holds its own data.
  uint64_t verified = 0;
  std::set<uint64_t> gpas;
  std::set<FrameId> frames;
  proc.gpt().ForEachPresent(0, PageTable::kMaxPage, [&](PageNum vpn, uint64_t gpa, bool, bool) {
    EXPECT_TRUE(gpas.insert(gpa).second) << "gPA double-mapped";
    const auto ept = vm.ept().Lookup(gpa);
    ASSERT_TRUE(ept.present);
    EXPECT_TRUE(frames.insert(ept.target).second) << "host frame double-mapped";
    EXPECT_EQ(memory.ReadToken(ept.target), vpn * 1000003ULL)
        << "page contents corrupted for vpn " << vpn;
    ++verified;
  });
  EXPECT_EQ(verified, stamped) << "pages lost or appeared";

  // Property 2: rmap agrees with the page table.
  proc.gpt().ForEachPresent(0, PageTable::kMaxPage, [&](PageNum vpn, uint64_t gpa, bool, bool) {
    const RmapEntry* rmap = vm.kernel().Rmap(gpa);
    ASSERT_NE(rmap, nullptr);
    EXPECT_EQ(rmap->vpn, vpn);
    EXPECT_EQ(rmap->pid, proc.pid());
  });
  EXPECT_EQ(vm.kernel().mapped_pages(), stamped);

  // Property 3: node accounting balances.
  for (int n = 0; n < 2; ++n) {
    const NumaNode& node = vm.kernel().node(n);
    EXPECT_EQ(node.used_pages() + node.free_pages(), node.present_pages());
  }
  // All used guest pages are rmapped.
  EXPECT_EQ(vm.kernel().node(0).used_pages() + vm.kernel().node(1).used_pages(), stamped);

  // Property 4: host frame conservation — every backed EPT entry uses a
  // distinct frame, and host used counts match exactly.
  EXPECT_EQ(frames.size(), memory.UsedPages(kFmemTier) + memory.UsedPages(kSmemTier));
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndWorkloads, PolicyIntegrityTest,
    ::testing::Combine(::testing::Values("static", "demeter", "tpp", "tpp-h", "memtis", "nomad",
                                         "damon"),
                       ::testing::Values("gups", "silo", "xsbench", "graph500")),
    [](const ::testing::TestParamInfo<PolicyWorkload>& info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// ---- Range tree parameter grid -------------------------------------------------

using TreeParams = std::tuple<double, double, uint64_t>;  // alpha, tau, granularity.

class RangeTreeParamTest : public ::testing::TestWithParam<TreeParams> {};

TEST_P(RangeTreeParamTest, InvariantsHoldUnderSkewedLoad) {
  const auto& [alpha, tau, granularity] = GetParam();
  RangeTreeConfig config;
  config.alpha = alpha;
  config.split_threshold = tau;
  config.min_range_bytes = granularity;
  RangeTree tree(config);
  tree.AddRegion(0, 512 * kMiB);
  tree.AddRegion(kGiB, kGiB + 128 * kMiB);

  Rng rng(alpha * 1000 + tau);
  for (int epoch = 0; epoch < 50; ++epoch) {
    const int samples = 500 + static_cast<int>(rng.NextBelow(2000));
    for (int i = 0; i < samples; ++i) {
      const uint64_t addr = rng.NextBool(0.8)
                                ? 100 * kMiB + rng.NextBelow(8 * kMiB)  // Hot spot.
                                : rng.NextBelow(512 * kMiB);            // Background.
      tree.RecordSample(addr);
    }
    tree.EndEpoch(4);
    ASSERT_TRUE(tree.CheckInvariants()) << "epoch " << epoch;
    for (const HotRange& leaf : tree.leaves()) {
      // No leaf below the floor unless it is a region remnant smaller than
      // the floor itself.
      if (leaf.size() < granularity) {
        EXPECT_EQ(leaf.size() % kPageSize, 0u);
      }
      EXPECT_GE(leaf.access_count, 0.0);
    }
  }
  // The hot spot must rank first whenever any splits happened.
  if (tree.total_splits() > 2) {
    const auto ranked = tree.Ranked();
    EXPECT_LT(ranked[0].start, 512 * kMiB);
    EXPECT_GT(ranked[0].end, 100 * kMiB);
    EXPECT_LT(ranked[0].start, 108 * kMiB);
  }
  // Leaf population stays manageable regardless of parameters (§3.2.1).
  EXPECT_LT(tree.leaves().size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, RangeTreeParamTest,
    ::testing::Combine(::testing::Values(1.0, 2.0, 4.0),          // alpha
                       ::testing::Values(2.0, 15.0, 30.0),        // tau_split
                       ::testing::Values(kPageSize, kHugePageSize, 16 * kMiB)),
    [](const ::testing::TestParamInfo<TreeParams>& info) {
      return "a" + std::to_string(static_cast<int>(std::get<0>(info.param))) + "_t" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) + "_g" +
             std::to_string(std::get<2>(info.param) / kPageSize);
    });

// ---- PEBS parameter grid --------------------------------------------------------

using PebsParams = std::tuple<uint64_t, double>;  // period, threshold.

class PebsParamTest : public ::testing::TestWithParam<PebsParams> {};

TEST_P(PebsParamTest, SampleRateMatchesPeriod) {
  const auto& [period, threshold] = GetParam();
  PebsConfig config;
  config.sample_period = period;
  config.latency_threshold_ns = threshold;
  config.buffer_capacity = 1 << 20;  // No PMI interference.
  PebsUnit unit(config);
  unit.set_enabled(true);
  const int kLoads = 2000000;
  for (int i = 0; i < kLoads; ++i) {
    unit.OnAccess(static_cast<uint64_t>(i) * 64, 176.6, false, 0);
  }
  // All loads pass a threshold below PMEM latency; none pass one above it.
  const uint64_t expected = threshold <= 176.6 ? kLoads / period : 0;
  EXPECT_EQ(unit.stats().records_written, expected);
}

INSTANTIATE_TEST_SUITE_P(PeriodsAndThresholds, PebsParamTest,
                         ::testing::Combine(::testing::Values(61, 509, 4093, 65537),
                                            ::testing::Values(64.0, 1000.0)),
                         [](const ::testing::TestParamInfo<PebsParams>& info) {
                           return "p" + std::to_string(std::get<0>(info.param)) + "_t" +
                                  std::to_string(static_cast<int>(std::get<1>(info.param)));
                         });

}  // namespace
}  // namespace demeter
