#include <gtest/gtest.h>

#include <vector>

#include "src/pebs/pebs.h"

namespace demeter {
namespace {

PebsConfig SmallConfig() {
  PebsConfig config;
  config.sample_period = 10;
  config.latency_threshold_ns = 64.0;
  config.buffer_capacity = 4;
  return config;
}

TEST(Pebs, DisabledProducesNothing) {
  PebsUnit unit(SmallConfig());
  for (int i = 0; i < 100; ++i) {
    unit.OnAccess(0x1000, 200.0, false, 0);
  }
  EXPECT_EQ(unit.stats().records_written, 0u);
  EXPECT_EQ(unit.buffered(), 0u);
}

TEST(Pebs, SamplesEveryPeriod) {
  PebsUnit unit(SmallConfig());
  unit.set_enabled(true);
  for (int i = 0; i < 35; ++i) {
    unit.OnAccess(0x1000, 200.0, false, static_cast<Nanos>(i));
  }
  EXPECT_EQ(unit.stats().events_counted, 35u);
  EXPECT_EQ(unit.stats().records_written, 3u);
}

TEST(Pebs, LatencyThresholdFiltersCacheHits) {
  PebsUnit unit(SmallConfig());
  unit.set_enabled(true);
  // 53.6 ns (L2 hit) stays below the 64 ns threshold -> no records.
  for (int i = 0; i < 100; ++i) {
    unit.OnAccess(0x1000, 53.6, false, 0);
  }
  EXPECT_EQ(unit.stats().records_written, 0u);
  // 68.7 ns (DRAM read) passes.
  for (int i = 0; i < 100; ++i) {
    unit.OnAccess(0x1000, 68.7, false, 0);
  }
  EXPECT_GT(unit.stats().records_written, 0u);
}

TEST(Pebs, StoresDoNotCountForLoadLatencyEvent) {
  PebsUnit unit(SmallConfig());
  unit.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    unit.OnAccess(0x1000, 200.0, /*is_store=*/true, 0);
  }
  EXPECT_EQ(unit.stats().events_counted, 0u);
  EXPECT_EQ(unit.stats().records_written, 0u);
}

TEST(Pebs, RecordsCarryGuestVirtualAddress) {
  PebsUnit unit(SmallConfig());
  unit.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    unit.OnAccess(0xabcd000 + static_cast<uint64_t>(i), 200.0, false, 42);
  }
  auto records = unit.Drain();
  ASSERT_EQ(records.size(), 1u);
  // The 10th access (index 9) triggered the sample.
  EXPECT_EQ(records[0].gva, 0xabcd000u + 9);
  EXPECT_EQ(records[0].timestamp, 42u);
  EXPECT_DOUBLE_EQ(records[0].latency_ns, 200.0);
}

TEST(Pebs, DrainEmptiesBuffer) {
  PebsUnit unit(SmallConfig());
  unit.set_enabled(true);
  for (int i = 0; i < 30; ++i) {
    unit.OnAccess(0x1000, 200.0, false, 0);
  }
  EXPECT_EQ(unit.Drain().size(), 3u);
  EXPECT_EQ(unit.buffered(), 0u);
  EXPECT_TRUE(unit.Drain().empty());
}

TEST(Pebs, PmiFiresOnBufferFullAndChargesCost) {
  PebsUnit unit(SmallConfig());
  unit.set_enabled(true);
  std::vector<PebsRecord> via_pmi;
  unit.set_pmi_handler([&](std::vector<PebsRecord>&& records, Nanos) {
    for (const auto& r : records) {
      via_pmi.push_back(r);
    }
  });
  double pmi_cost = 0.0;
  // 4-record buffer, period 10: the 40th access fills it.
  for (int i = 0; i < 40; ++i) {
    pmi_cost += unit.OnAccess(0x1000, 200.0, false, 0);
  }
  EXPECT_EQ(unit.stats().pmis, 1u);
  EXPECT_DOUBLE_EQ(pmi_cost, unit.config().pmi_cost_ns);
  EXPECT_EQ(via_pmi.size(), 4u);
  EXPECT_EQ(unit.buffered(), 0u);
}

TEST(Pebs, WithoutHandlerPmiDropsRecords) {
  PebsUnit unit(SmallConfig());
  unit.set_enabled(true);
  for (int i = 0; i < 40; ++i) {
    unit.OnAccess(0x1000, 200.0, false, 0);
  }
  EXPECT_EQ(unit.stats().pmis, 1u);
  EXPECT_EQ(unit.stats().records_dropped, 4u);
}

TEST(Pebs, LowFrequencyAvoidsPmis) {
  // Demeter's design point: small constant frequency + context-switch drains
  // keep the buffer from ever overshooting.
  PebsConfig config;
  config.sample_period = 4093;
  config.buffer_capacity = 512;
  PebsUnit unit(config);
  unit.set_enabled(true);
  for (int i = 0; i < 1000000; ++i) {
    unit.OnAccess(0x1000, 200.0, false, 0);
    if (i % 100000 == 0) {
      unit.Drain();  // Context-switch drain.
    }
  }
  EXPECT_EQ(unit.stats().pmis, 0u);
  EXPECT_GT(unit.stats().records_written, 0u);
}

TEST(Pebs, HighFrequencyWithoutDrainsPmisHeavily) {
  PebsConfig config;
  config.sample_period = 7;
  config.buffer_capacity = 64;
  PebsUnit unit(config);
  unit.set_enabled(true);
  unit.set_pmi_handler([](std::vector<PebsRecord>&&, Nanos) {});
  double total_pmi_cost = 0.0;
  for (int i = 0; i < 1000000; ++i) {
    total_pmi_cost += unit.OnAccess(0x1000, 200.0, false, 0);
  }
  EXPECT_GT(unit.stats().pmis, 1000u);
  EXPECT_GT(total_pmi_cost, 1e6);
}

TEST(Pebs, EptFriendlinessGate) {
  PebsConfig v5;
  v5.ept_friendly = true;
  PebsConfig legacy;
  legacy.ept_friendly = false;
  // With lazily-backed guest memory (overcommit), only PEBS v5 is usable.
  EXPECT_TRUE(PebsUnit(v5).UsableInGuest(/*lazily_backed=*/true));
  EXPECT_FALSE(PebsUnit(legacy).UsableInGuest(/*lazily_backed=*/true));
  // Eager backing works around the architectural bug.
  EXPECT_TRUE(PebsUnit(legacy).UsableInGuest(/*lazily_backed=*/false));
}

TEST(Pebs, PaperDefaults) {
  PebsConfig config;
  EXPECT_EQ(config.sample_period, 4093u);
  EXPECT_DOUBLE_EQ(config.latency_threshold_ns, 64.0);
  EXPECT_EQ(config.event, PebsEvent::kLoadLatency);
}

}  // namespace
}  // namespace demeter
