#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/base/rng.h"
#include "src/mmu/page_table.h"
#include "src/mmu/tlb.h"
#include "src/mmu/walker.h"

namespace demeter {
namespace {

TEST(PageTable, MapLookupUnmap) {
  PageTable pt;
  EXPECT_TRUE(pt.Map(100, 555, true));
  EXPECT_FALSE(pt.Map(100, 777, true)) << "remap via Map must fail";
  auto r = pt.Lookup(100);
  EXPECT_TRUE(r.present);
  EXPECT_EQ(r.target, 555u);
  EXPECT_EQ(pt.mapped_count(), 1u);
  EXPECT_EQ(pt.Unmap(100), 555u);
  EXPECT_FALSE(pt.Lookup(100).present);
  EXPECT_EQ(pt.mapped_count(), 0u);
  EXPECT_EQ(pt.Unmap(100), ~0ULL);
}

TEST(PageTable, RemapChangesTarget) {
  PageTable pt;
  pt.Map(7, 1, true);
  EXPECT_TRUE(pt.Remap(7, 2));
  EXPECT_EQ(pt.Lookup(7).target, 2u);
  EXPECT_FALSE(pt.Remap(8, 3));
}

// Regression: Remap used to rebuild the PTE from scratch, silently clearing
// Accessed and Dirty — every migration of a dirty page lost the "written
// since last writeback/track" fact (Linux migration entries preserve both).
TEST(PageTable, RemapPreservesAccessedAndDirty) {
  PageTable pt;
  pt.Map(7, 1, true);
  pt.Translate(7, /*is_write=*/true, /*set_bits=*/true);  // Sets A and D.
  ASSERT_TRUE(pt.Remap(7, 2));
  const auto r = pt.Lookup(7);
  EXPECT_TRUE(r.present);
  EXPECT_EQ(r.target, 2u);
  EXPECT_TRUE(r.was_accessed) << "migration must not lose the young bit";
  EXPECT_TRUE(r.was_dirty) << "migration must not lose the dirty bit";
  EXPECT_EQ(pt.remap_count(), 1u);
  EXPECT_EQ(pt.remap_dirty_lost(), 0u);
}

TEST(PageTable, RemapDoesNotInventDirtiness) {
  PageTable pt;
  pt.Map(7, 1, true);
  pt.Translate(7, /*is_write=*/false, /*set_bits=*/true);  // A only.
  ASSERT_TRUE(pt.Remap(7, 2));
  const auto r = pt.Lookup(7);
  EXPECT_TRUE(r.was_accessed);
  EXPECT_FALSE(r.was_dirty) << "a clean page stays clean across migration";
  EXPECT_EQ(pt.remap_dirty_lost(), 0u);
}

TEST(PageTable, TranslateSetsAccessedAndDirty) {
  PageTable pt;
  pt.Map(42, 9, true);
  auto r1 = pt.Translate(42, /*is_write=*/false, /*set_bits=*/true);
  EXPECT_TRUE(r1.present);
  EXPECT_FALSE(r1.was_accessed) << "first walk sees clear A bit";
  auto r2 = pt.Translate(42, /*is_write=*/true, /*set_bits=*/true);
  EXPECT_TRUE(r2.was_accessed);
  EXPECT_FALSE(r2.was_dirty);
  auto r3 = pt.Lookup(42);
  EXPECT_TRUE(r3.was_accessed);
  EXPECT_TRUE(r3.was_dirty);
}

TEST(PageTable, TranslateWithoutSetBitsIsPure) {
  PageTable pt;
  pt.Map(42, 9, true);
  pt.Translate(42, true, /*set_bits=*/false);
  EXPECT_FALSE(pt.Lookup(42).was_accessed);
  EXPECT_FALSE(pt.Lookup(42).was_dirty);
}

TEST(PageTable, TestAndClearAccessed) {
  PageTable pt;
  pt.Map(1, 2, true);
  EXPECT_FALSE(pt.TestAndClearAccessed(1));
  pt.Translate(1, false, true);
  EXPECT_TRUE(pt.TestAndClearAccessed(1));
  EXPECT_FALSE(pt.TestAndClearAccessed(1)) << "clear must stick";
  EXPECT_FALSE(pt.TestAndClearAccessed(999)) << "unmapped";
}

TEST(PageTable, TestAndClearDirty) {
  PageTable pt;
  pt.Map(1, 2, true);
  pt.Translate(1, true, true);
  EXPECT_TRUE(pt.TestAndClearDirty(1));
  EXPECT_FALSE(pt.TestAndClearDirty(1));
}

TEST(PageTable, LevelsTouched) {
  PageTable pt;
  pt.Map(0, 1, true);
  EXPECT_EQ(pt.Translate(0, false, false).levels_touched, PageTable::kLevels);
  // A page in a completely unpopulated subtree stops at level 1.
  EXPECT_EQ(pt.Translate(PageTable::kMaxPage - 1, false, false).levels_touched, 1);
}

// The memoized leaf-node cache must be invisible: repeated translations
// return identical results (including levels_touched, which feeds cost
// accounting), and structural changes are never served stale.
TEST(PageTable, WalkCacheRepeatTranslateIsIdentical) {
  PageTable pt;
  pt.Map(12345, 9, true);
  const auto cold = pt.Translate(12345, true, true);
  const auto warm = pt.Translate(12345, true, true);  // Cache hit path.
  EXPECT_EQ(warm.present, cold.present);
  EXPECT_EQ(warm.target, cold.target);
  EXPECT_EQ(warm.levels_touched, cold.levels_touched);
  EXPECT_EQ(warm.levels_touched, PageTable::kLevels);
}

TEST(PageTable, WalkCacheSeesUnmapImmediately) {
  PageTable pt;
  pt.Map(12345, 9, true);
  pt.Translate(12345, false, false);  // Warm the leaf cache.
  pt.Unmap(12345);
  const auto r = pt.Translate(12345, false, false);
  EXPECT_FALSE(r.present);
  // The subtree still exists (nodes are never freed), so the walk still
  // touches every level — cost accounting is structure-based, not
  // presence-based.
  EXPECT_EQ(r.levels_touched, PageTable::kLevels);
}

TEST(PageTable, WalkCacheSurvivesMapIntoNewSubtree) {
  PageTable pt;
  pt.Map(0, 1, true);
  pt.Translate(0, false, false);  // Cache leaf for vpn 0.
  // Mapping far away allocates nodes -> structure epoch bumps; the cached
  // leaf for vpn 0 must be re-validated, not served stale or wrongly missed.
  pt.Map(PageTable::kMaxPage - 1, 2, true);
  EXPECT_TRUE(pt.Translate(0, false, false).present);
  EXPECT_TRUE(pt.Translate(PageTable::kMaxPage - 1, false, false).present);
}

TEST(PageTable, ForEachPresentVisitsRange) {
  PageTable pt;
  for (PageNum p = 10; p < 20; ++p) {
    pt.Map(p, p * 2, true);
  }
  pt.Map(1000000, 5, true);
  std::vector<PageNum> seen;
  pt.ForEachPresent(0, 100, [&](PageNum vpn, uint64_t target, bool, bool) {
    seen.push_back(vpn);
    EXPECT_EQ(target, vpn * 2);
  });
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 10u);
  EXPECT_EQ(seen.back(), 19u);
}

TEST(PageTable, ForEachPresentRespectsBounds) {
  PageTable pt;
  for (PageNum p = 0; p < 100; ++p) {
    pt.Map(p, p, true);
  }
  int count = 0;
  pt.ForEachPresent(25, 75, [&](PageNum, uint64_t, bool, bool) { ++count; });
  EXPECT_EQ(count, 50);
}

TEST(PageTable, ScanAndClearAccessedReportsAndClears) {
  PageTable pt;
  for (PageNum p = 0; p < 50; ++p) {
    pt.Map(p, p, true);
  }
  for (PageNum p = 0; p < 50; p += 2) {
    pt.Translate(p, false, true);
  }
  int accessed = 0;
  pt.ScanAndClearAccessed(0, 50, [&](PageNum, uint64_t, bool a, bool) {
    if (a) {
      ++accessed;
    }
  });
  EXPECT_EQ(accessed, 25);
  // Second scan: all clear.
  accessed = 0;
  pt.ScanAndClearAccessed(0, 50, [&](PageNum, uint64_t, bool a, bool) {
    if (a) {
      ++accessed;
    }
  });
  EXPECT_EQ(accessed, 0);
}

TEST(PageTable, ScanCostScalesWithMappedPages) {
  PageTable small;
  PageTable large;
  for (PageNum p = 0; p < 10; ++p) {
    small.Map(p, p, true);
  }
  for (PageNum p = 0; p < 10000; ++p) {
    large.Map(p, p, true);
  }
  const uint64_t small_cost = small.ScanAndClearAccessed(0, PageTable::kMaxPage,
                                                         [](PageNum, uint64_t, bool, bool) {});
  const uint64_t large_cost = large.ScanAndClearAccessed(0, PageTable::kMaxPage,
                                                         [](PageNum, uint64_t, bool, bool) {});
  // 10 pages fit in one 512-entry leaf node; 10000 pages span ~20 leaf
  // nodes, each scanned in full (as hardware page-table scans do).
  EXPECT_GT(large_cost, small_cost * 15);
}

TEST(PageTable, SparseRandomPropertyCheck) {
  PageTable pt;
  std::map<PageNum, uint64_t> model;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    const PageNum vpn = rng.NextBelow(PageTable::kMaxPage);
    const uint64_t target = rng.Next() & 0xffffffffff;
    if (pt.Map(vpn, target, true)) {
      EXPECT_TRUE(model.emplace(vpn, target).second);
    } else {
      EXPECT_TRUE(model.count(vpn));
    }
  }
  EXPECT_EQ(pt.mapped_count(), model.size());
  for (const auto& [vpn, target] : model) {
    auto r = pt.Lookup(vpn);
    ASSERT_TRUE(r.present);
    EXPECT_EQ(r.target, target);
  }
  // Full-range visitation sees exactly the model.
  size_t visited = 0;
  pt.ForEachPresent(0, PageTable::kMaxPage, [&](PageNum vpn, uint64_t target, bool, bool) {
    ++visited;
    auto it = model.find(vpn);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(it->second, target);
  });
  EXPECT_EQ(visited, model.size());
}

TEST(Tlb, HitAfterInsert) {
  Tlb tlb;
  EXPECT_EQ(tlb.Lookup(5), kInvalidFrame);
  tlb.Insert(5, 99);
  EXPECT_EQ(tlb.Lookup(5), 99u);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, InsertUpdatesExisting) {
  Tlb tlb;
  tlb.Insert(5, 1);
  tlb.Insert(5, 2);
  EXPECT_EQ(tlb.Lookup(5), 2u);
}

TEST(Tlb, InvalidatePageCountsAndEvicts) {
  Tlb tlb;
  tlb.Insert(5, 99);
  tlb.InvalidatePage(5);
  EXPECT_EQ(tlb.stats().single_flushes, 1u);
  EXPECT_EQ(tlb.Lookup(5), kInvalidFrame);
  // Invalidating an absent page still costs an instruction.
  tlb.InvalidatePage(123);
  EXPECT_EQ(tlb.stats().single_flushes, 2u);
}

TEST(Tlb, InvalidateAllFlushesEverything) {
  Tlb tlb;
  for (PageNum p = 0; p < 100; ++p) {
    tlb.Insert(p, p);
  }
  tlb.InvalidateAll();
  EXPECT_EQ(tlb.stats().full_flushes, 1u);
  for (PageNum p = 0; p < 100; ++p) {
    EXPECT_EQ(tlb.Lookup(p), kInvalidFrame);
  }
}

// The O(1) epoch-bump InvalidateAll must be indistinguishable from the old
// entry-by-entry sweep: stale entries are invisible to audits, cannot
// resurrect, and their slots are reusable.
TEST(Tlb, InvalidateAllHidesEntriesFromForEachValid) {
  Tlb tlb;
  for (PageNum p = 0; p < 100; ++p) {
    tlb.Insert(p, p);
  }
  tlb.InvalidateAll();
  int visited = 0;
  tlb.ForEachValid([&](PageNum, FrameId) { ++visited; });
  EXPECT_EQ(visited, 0) << "stale-epoch entries leaked into an audit walk";
}

TEST(Tlb, ReinsertAfterInvalidateAllDoesNotResurrectNeighbors) {
  Tlb tlb(/*num_sets=*/1, /*ways=*/4);  // One set: all entries collide.
  for (PageNum p = 0; p < 4; ++p) {
    tlb.Insert(p, p + 100);
  }
  tlb.InvalidateAll();
  tlb.Insert(0, 200);
  EXPECT_EQ(tlb.Lookup(0), 200u);
  for (PageNum p = 1; p < 4; ++p) {
    EXPECT_EQ(tlb.Lookup(p), kInvalidFrame) << "stale entry " << p << " resurrected";
  }
  int visited = 0;
  tlb.ForEachValid([&](PageNum vpn, FrameId frame) {
    ++visited;
    EXPECT_EQ(vpn, 0u);
    EXPECT_EQ(frame, 200u);
  });
  EXPECT_EQ(visited, 1);
}

TEST(Tlb, StaleSlotsAreReusedBeforeEvictingLiveEntries) {
  Tlb tlb(/*num_sets=*/1, /*ways=*/4);
  for (PageNum p = 0; p < 4; ++p) {
    tlb.Insert(p, p);
  }
  tlb.InvalidateAll();
  // After the flush the whole set is stale; four fresh inserts must all fit
  // (stale slots are victims before any live entry is).
  for (PageNum p = 10; p < 14; ++p) {
    tlb.Insert(p, p);
  }
  for (PageNum p = 10; p < 14; ++p) {
    EXPECT_NE(tlb.Lookup(p), kInvalidFrame) << "live entry " << p << " was evicted";
  }
}

TEST(Tlb, InvalidatePageStillWorksAcrossEpochs) {
  Tlb tlb;
  tlb.Insert(5, 50);
  tlb.InvalidateAll();
  tlb.Insert(5, 51);
  tlb.InvalidatePage(5);
  EXPECT_EQ(tlb.Lookup(5), kInvalidFrame);
  EXPECT_EQ(tlb.stats().single_flushes, 1u);
}

TEST(Tlb, CapacityEvictsLru) {
  Tlb tlb(2, 2);  // 4 entries.
  EXPECT_EQ(tlb.capacity(), 4);
  for (PageNum p = 0; p < 100; ++p) {
    tlb.Insert(p, p);
  }
  int resident = 0;
  for (PageNum p = 0; p < 100; ++p) {
    if (tlb.Lookup(p) != kInvalidFrame) {
      ++resident;
    }
  }
  EXPECT_LE(resident, 4);
  EXPECT_GT(resident, 0);
}

TEST(Tlb, ColdWalkBudgetMatchesCapacity) {
  Tlb tlb(/*num_sets=*/2, /*ways=*/2);
  tlb.InvalidateAll();
  // Exactly capacity() misses pay the cold-walk multiplier, then it decays.
  for (int i = 0; i < tlb.capacity(); ++i) {
    EXPECT_GT(tlb.ConsumeWalkFactor(), 1.0) << "miss " << i;
  }
  EXPECT_DOUBLE_EQ(tlb.ConsumeWalkFactor(), 1.0);
}

// Regression: back-to-back full invalidations (chunked MMU-notifier scans
// issue one invept per chunk) used to STACK the cold-walk budget — 4 flushes
// charged 4x capacity of cold walks. Already-cold paging-structure caches
// cannot get colder; a repeat flush only restarts the rewarm window, so the
// budget must reset to one capacity.
TEST(Tlb, RepeatedInvalidateAllResetsColdWalkBudget) {
  Tlb tlb(/*num_sets=*/2, /*ways=*/2);
  for (int flush = 0; flush < 4; ++flush) {
    tlb.InvalidateAll();
  }
  uint64_t cold = 0;
  while (tlb.ConsumeWalkFactor() > 1.0) {
    ++cold;
    ASSERT_LE(cold, static_cast<uint64_t>(4 * tlb.capacity())) << "budget never drained";
  }
  EXPECT_EQ(cold, static_cast<uint64_t>(tlb.capacity()));
}

TEST(Tlb, InvalidateAllMidRewarmRestartsWindow) {
  Tlb tlb(/*num_sets=*/2, /*ways=*/2);
  tlb.InvalidateAll();
  // Partially rewarm, then flush again: the full budget returns (reset), not
  // the partial remainder plus another capacity (stack).
  EXPECT_GT(tlb.ConsumeWalkFactor(), 1.0);
  tlb.InvalidateAll();
  for (int i = 0; i < tlb.capacity(); ++i) {
    EXPECT_GT(tlb.ConsumeWalkFactor(), 1.0) << "miss " << i;
  }
  EXPECT_DOUBLE_EQ(tlb.ConsumeWalkFactor(), 1.0);
}

TEST(Tlb, StatsMerge) {
  TlbStats a;
  TlbStats b;
  a.hits = 1;
  b.hits = 2;
  b.full_flushes = 3;
  a.Merge(b);
  EXPECT_EQ(a.hits, 3u);
  EXPECT_EQ(a.full_flushes, 3u);
}

class WalkerTest : public ::testing::Test {
 protected:
  Tlb tlb_;
  PageTable gpt_;
  PageTable ept_;
  MmuCosts costs_;
};

TEST_F(WalkerTest, FullTranslationAndTlbFill) {
  gpt_.Map(10, 200, true);
  ept_.Map(200, 3000, true);
  auto r = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  EXPECT_EQ(r.status, TranslateStatus::kOk);
  EXPECT_EQ(r.gpa_page, 200u);
  EXPECT_EQ(r.frame, 3000u);
  EXPECT_FALSE(r.tlb_hit);
  EXPECT_GT(r.cost_ns, costs_.tlb_hit_ns);

  // Second translation hits the TLB and is much cheaper.
  auto r2 = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  EXPECT_TRUE(r2.tlb_hit);
  EXPECT_EQ(r2.frame, 3000u);
  EXPECT_DOUBLE_EQ(r2.cost_ns, costs_.tlb_hit_ns);
}

TEST_F(WalkerTest, GuestFaultWhenGptUnmapped) {
  auto r = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  EXPECT_EQ(r.status, TranslateStatus::kGuestFault);
}

TEST_F(WalkerTest, EptFaultWhenEptUnmapped) {
  gpt_.Map(10, 200, true);
  auto r = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  EXPECT_EQ(r.status, TranslateStatus::kEptFault);
  EXPECT_EQ(r.gpa_page, 200u);
}

TEST_F(WalkerTest, WalkSetsBitsInBothDimensions) {
  gpt_.Map(10, 200, true);
  ept_.Map(200, 3000, true);
  Translate2D(tlb_, gpt_, ept_, 10, /*is_write=*/true, costs_);
  EXPECT_TRUE(gpt_.Lookup(10).was_accessed);
  EXPECT_TRUE(gpt_.Lookup(10).was_dirty);
  EXPECT_TRUE(ept_.Lookup(200).was_accessed);
  EXPECT_TRUE(ept_.Lookup(200).was_dirty);
}

// Regression: the TLB-hit write path updated the GPT leaf's D bit but threw
// away the gPA, so the EPT leaf never learned about writes that hit the TLB.
// Hypervisor-side dirty tracking (which can only see EPT A/D) was blind to
// every such write between full flushes.
TEST_F(WalkerTest, TlbHitWriteSetsEptDirty) {
  gpt_.Map(10, 200, true);
  ept_.Map(200, 3000, true);
  // Fill the TLB with a read: A set in both dimensions, D in neither.
  Translate2D(tlb_, gpt_, ept_, 10, /*is_write=*/false, costs_);
  ASSERT_FALSE(ept_.Lookup(200).was_dirty);
  ASSERT_TRUE(ept_.TestAndClearAccessed(200)) << "fill walk set A";
  // Write that hits the TLB: the microcode walk must set D in BOTH tables.
  auto r = Translate2D(tlb_, gpt_, ept_, 10, /*is_write=*/true, costs_);
  ASSERT_TRUE(r.tlb_hit);
  EXPECT_TRUE(gpt_.Lookup(10).was_dirty);
  EXPECT_TRUE(ept_.TestAndClearDirty(200)) << "EPT missed a TLB-hit write";
  EXPECT_TRUE(ept_.Lookup(200).was_accessed) << "micro-walk also re-sets A";
}

// Guest-fault cost charges the levels the walk actually touched, each
// multiplied by the nested EPT translations of the page-table pages.
TEST_F(WalkerTest, GuestFaultCostChargesPartialWalk) {
  // Empty GPT: the walk dies at level 1 (root's child absent).
  auto shallow = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  ASSERT_EQ(shallow.status, TranslateStatus::kGuestFault);
  EXPECT_DOUBLE_EQ(shallow.cost_ns,
                   1.0 * (PageTable::kLevels + 1) * costs_.pt_touch_ns);
  // Fully-built subtree with a non-present leaf: all levels touched.
  gpt_.Map(10, 200, true);
  gpt_.Unmap(10);
  auto deep = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  ASSERT_EQ(deep.status, TranslateStatus::kGuestFault);
  EXPECT_DOUBLE_EQ(deep.cost_ns, static_cast<double>(PageTable::kLevels) *
                                     (PageTable::kLevels + 1) * costs_.pt_touch_ns);
}

// The cold-walk multiplier is consumed exactly once per miss — including
// misses that end in a fault. A capacity-1 TLB makes the budget observable:
// one cold miss, then costs return to warm pricing.
TEST_F(WalkerTest, ColdWalkFactorConsumedOncePerFaultingMiss) {
  Tlb tiny(/*num_sets=*/1, /*ways=*/1);
  tiny.InvalidateAll();
  const double warm_fault = 1.0 * (PageTable::kLevels + 1) * costs_.pt_touch_ns;
  auto first = Translate2D(tiny, gpt_, ept_, 10, false, costs_);
  ASSERT_EQ(first.status, TranslateStatus::kGuestFault);
  EXPECT_GT(first.cost_ns, warm_fault) << "faulting miss must pay the cold multiplier";
  auto second = Translate2D(tiny, gpt_, ept_, 10, false, costs_);
  EXPECT_DOUBLE_EQ(second.cost_ns, warm_fault)
      << "budget of 1 was not consumed by the faulting miss";
}

TEST_F(WalkerTest, MissCostExceedsHitCostSubstantially) {
  gpt_.Map(10, 200, true);
  ept_.Map(200, 3000, true);
  auto miss = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  auto hit = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  EXPECT_GT(miss.cost_ns, hit.cost_ns * 20);
}

TEST_F(WalkerTest, FullFlushForcesRewalk) {
  gpt_.Map(10, 200, true);
  ept_.Map(200, 3000, true);
  Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  tlb_.InvalidateAll();
  auto r = Translate2D(tlb_, gpt_, ept_, 10, false, costs_);
  EXPECT_FALSE(r.tlb_hit);
}

}  // namespace
}  // namespace demeter
