// src/swap: the far-tier device model — slot lifecycle, the bounded async
// writeback queue, in-flight-buffer hits vs full device reads, seeded
// determinism, and swapfail retry/backoff behavior.

#include <gtest/gtest.h>

#include <vector>

#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/swap/swap_device.h"

namespace demeter {
namespace {

SwapDeviceConfig QuietConfig() {
  SwapDeviceConfig config;
  config.latency_jitter = 0.0;  // Deterministic latencies for exact asserts.
  return config;
}

TEST(SwapDeviceTest, SlotLifecycle) {
  SwapDevice dev(QuietConfig(), nullptr);
  EXPECT_EQ(dev.ActiveSlots(), 0u);
  EXPECT_FALSE(dev.HasSlot(42));
  EXPECT_EQ(dev.SlotOwner(42), -1);

  dev.SlotStore(42, /*vm=*/3, /*now=*/0);
  EXPECT_TRUE(dev.HasSlot(42));
  EXPECT_EQ(dev.SlotOwner(42), 3);
  EXPECT_EQ(dev.ActiveSlots(), 1u);
  EXPECT_EQ(dev.ActiveSlotsForVm(3), 1u);
  EXPECT_EQ(dev.ActiveSlotsForVm(0), 0u);

  dev.SlotLoad(42, 3, kMillisecond);
  EXPECT_FALSE(dev.HasSlot(42));
  EXPECT_EQ(dev.ActiveSlots(), 0u);
}

TEST(SwapDeviceTest, SlotDropReleasesWithoutRead) {
  SwapDevice dev(QuietConfig(), nullptr);
  dev.SlotStore(7, 0, 0);
  dev.SlotDrop(7, 0);
  EXPECT_FALSE(dev.HasSlot(7));
  // Dropping a frame without a slot is a no-op (frees of never-swapped
  // frames route through here too).
  dev.SlotDrop(7, 0);
  dev.SlotDrop(99, 1);
  EXPECT_EQ(dev.ActiveSlots(), 0u);
}

TEST(SwapDeviceTest, DoubleStoreAborts) {
  SwapDevice dev(QuietConfig(), nullptr);
  dev.SlotStore(7, 0, 0);
  EXPECT_DEATH(dev.SlotStore(7, 0, 0), "");
}

TEST(SwapDeviceTest, LoadWithoutSlotAborts) {
  SwapDevice dev(QuietConfig(), nullptr);
  EXPECT_DEATH(dev.SlotLoad(7, 0, 0), "");
}

TEST(SwapDeviceTest, InflightHitVsDeviceRead) {
  SwapDeviceConfig config = QuietConfig();
  SwapDevice dev(config, nullptr);

  // Swap-in immediately after the store: the writeback (80 us) has not
  // completed, so the load is a cheap staging-buffer hit.
  dev.SlotStore(1, 0, 0);
  EXPECT_TRUE(dev.WritebackPending(1, kMicrosecond));
  const double hit = dev.SlotLoad(1, 0, kMicrosecond);
  EXPECT_DOUBLE_EQ(hit, config.inflight_hit_ns);

  // Swap-in long after the store: the writeback drained, so the load pays
  // the full device read.
  dev.SlotStore(2, 0, 0);
  EXPECT_FALSE(dev.WritebackPending(2, kSecond));
  const double read = dev.SlotLoad(2, 0, kSecond);
  EXPECT_DOUBLE_EQ(read, config.read_latency_ns);
}

TEST(SwapDeviceTest, BoundedQueueStallsWhenFull) {
  SwapDeviceConfig config = QuietConfig();
  config.queue_depth = 2;
  SwapDevice dev(config, nullptr);

  // Two writebacks fill the queue; the serial device finishes them at
  // 1x and 2x the write latency.
  EXPECT_DOUBLE_EQ(dev.SlotStore(1, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dev.SlotStore(2, 0, 0), 0.0);
  // The third store at t=0 must wait for the oldest writeback to drain.
  const double stall = dev.SlotStore(3, 0, 0);
  EXPECT_DOUBLE_EQ(stall, config.write_latency_ns);

  // Once enough virtual time has passed, completed writebacks retire
  // lazily and stores stop stalling.
  EXPECT_DOUBLE_EQ(dev.SlotStore(4, 0, kSecond), 0.0);
}

TEST(SwapDeviceTest, SerialDeviceSerializesWritebacks) {
  SwapDeviceConfig config = QuietConfig();
  SwapDevice dev(config, nullptr);
  dev.SlotStore(1, 0, 0);
  dev.SlotStore(2, 0, 0);
  // Frame 2's writeback starts only after frame 1's: still pending at a
  // time where a lone writeback would have finished.
  const Nanos between = static_cast<Nanos>(1.5 * config.write_latency_ns);
  EXPECT_FALSE(dev.WritebackPending(1, between));
  EXPECT_TRUE(dev.WritebackPending(2, between));
}

TEST(SwapDeviceTest, SameSeedSameCosts) {
  SwapDeviceConfig config;  // Default jitter: latencies are seeded draws.
  config.seed = 1234;
  SwapDevice a(config, nullptr);
  SwapDevice b(config, nullptr);
  std::vector<double> costs_a;
  std::vector<double> costs_b;
  for (FrameId f = 0; f < 32; ++f) {
    costs_a.push_back(a.SlotStore(f, 0, 0));
    costs_b.push_back(b.SlotStore(f, 0, 0));
  }
  for (FrameId f = 0; f < 32; ++f) {
    costs_a.push_back(a.SlotLoad(f, 0, kSecond));
    costs_b.push_back(b.SlotLoad(f, 0, kSecond));
  }
  EXPECT_EQ(costs_a, costs_b);
  // A different seed yields a different latency stream.
  config.seed = 4321;
  SwapDevice c(config, nullptr);
  std::vector<double> costs_c;
  for (FrameId f = 0; f < 32; ++f) {
    costs_c.push_back(c.SlotStore(f, 0, 0));
  }
  for (FrameId f = 0; f < 32; ++f) {
    costs_c.push_back(c.SlotLoad(f, 0, kSecond));
  }
  EXPECT_NE(costs_a, costs_c);
}

TEST(SwapDeviceTest, SwapFailRetriesWithBackoff) {
  const auto plan = FaultPlan::Parse("swapfail=1/1ms");  // Always inject.
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan, /*seed=*/7);
  SwapDeviceConfig config = QuietConfig();
  SwapDevice dev(config, &injector);

  // With p=1 every operation burns all max_retries attempts, each costing a
  // wasted device op plus the 1 ms backoff — and then succeeds anyway
  // (transient faults never lose data).
  dev.SlotStore(1, 0, 0);
  EXPECT_TRUE(dev.HasSlot(1));
  const double read = dev.SlotLoad(1, 0, kSecond);
  const double expect = config.read_latency_ns +
                        config.max_retries *
                            (config.read_latency_ns + static_cast<double>(kMillisecond));
  EXPECT_DOUBLE_EQ(read, expect);

  // The in-flight fast path never touches the device, so swapfail cannot
  // fire on it.
  dev.SlotStore(2, 0, 2 * kSecond);
  EXPECT_DOUBLE_EQ(dev.SlotLoad(2, 0, 2 * kSecond), config.inflight_hit_ns);
}

TEST(SwapDeviceTest, FaultFreeInjectorDrawsNothing) {
  // A null injector and an empty-plan injector cost exactly the same: the
  // swapfail site must not perturb the device's seeded latency stream.
  const auto empty = FaultPlan::Parse("");
  ASSERT_TRUE(empty.has_value());
  FaultInjector injector(*empty, 7);
  SwapDeviceConfig config;
  config.seed = 99;
  SwapDevice with(config, &injector);
  SwapDevice without(config, nullptr);
  for (FrameId f = 0; f < 16; ++f) {
    EXPECT_DOUBLE_EQ(with.SlotStore(f, 0, 0), without.SlotStore(f, 0, 0));
  }
  for (FrameId f = 0; f < 16; ++f) {
    EXPECT_DOUBLE_EQ(with.SlotLoad(f, 0, kSecond), without.SlotLoad(f, 0, kSecond));
  }
}

TEST(SwapDeviceTest, PerVmSlotAccounting) {
  SwapDevice dev(QuietConfig(), nullptr);
  dev.SlotStore(1, 0, 0);
  dev.SlotStore(2, 1, 0);
  dev.SlotStore(3, 1, 0);
  EXPECT_EQ(dev.ActiveSlotsForVm(0), 1u);
  EXPECT_EQ(dev.ActiveSlotsForVm(1), 2u);
  EXPECT_EQ(dev.ActiveSlots(), 3u);
  // VM 1 departs: both its slots drop, VM 0's survives.
  dev.SlotDrop(2, 1);
  dev.SlotDrop(3, 1);
  EXPECT_EQ(dev.ActiveSlotsForVm(1), 0u);
  EXPECT_EQ(dev.ActiveSlotsForVm(0), 1u);
  EXPECT_EQ(dev.SlotOwner(1), 0);
}

}  // namespace
}  // namespace demeter
