#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/histogram.h"
#include "src/telemetry/json.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/tracer.h"

namespace demeter {
namespace {

// ---- JSON helpers -----------------------------------------------------------

TEST(Json, EscapesSpecials) {
  std::string out;
  AppendJsonEscaped(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
}

TEST(Json, KeyValueForms) {
  std::string out;
  out += '{';
  AppendJsonStr(out, "s", "v");
  out += ',';
  AppendJsonU64(out, "u", 18446744073709551615ULL);
  out += ',';
  AppendJsonF64(out, "f", 0.25);
  out += '}';
  EXPECT_EQ(out, "{\"s\":\"v\",\"u\":18446744073709551615,\"f\":0.25}");
}

// ---- Histogram merge edge cases ---------------------------------------------

TEST(HistogramMerge, IntoEmptyAdoptsRangeExactly) {
  // min_ initializes to ~0ULL; merging a populated histogram into a fresh
  // one must adopt the source's true min/max instead of keeping sentinels.
  Histogram src;
  src.Record(100);
  src.Record(900000);
  Histogram dst;
  dst.Merge(src);
  EXPECT_EQ(dst.count(), 2u);
  EXPECT_EQ(dst.sum(), 900100u);
  EXPECT_EQ(dst.min(), 100u);
  EXPECT_EQ(dst.max(), 900000u);
  EXPECT_EQ(dst.Percentile(0), 100u);
  EXPECT_LE(dst.Percentile(100), 900000u) << "percentiles clamp to recorded range";
}

TEST(HistogramMerge, EmptySourceIsIdentity) {
  // The mirror case: an empty source (min_ still ~0ULL, max_ 0) must not
  // clobber the destination's range or counts.
  Histogram dst;
  dst.Record(50);
  dst.Record(7000);
  const Histogram empty;
  dst.Merge(empty);
  EXPECT_EQ(dst.count(), 2u);
  EXPECT_EQ(dst.sum(), 7050u);
  EXPECT_EQ(dst.min(), 50u);
  EXPECT_EQ(dst.max(), 7000u);
}

TEST(HistogramMerge, BothEmptyStaysEmpty) {
  Histogram dst;
  dst.Merge(Histogram{});
  EXPECT_EQ(dst.count(), 0u);
  EXPECT_EQ(dst.min(), 0u) << "empty histogram reports 0, not the sentinel";
  EXPECT_EQ(dst.max(), 0u);
  EXPECT_EQ(dst.Percentile(50), 0u);
}

TEST(HistogramMerge, DisjointRangesMatchSequentialRecords) {
  // Non-overlapping value ranges: merge must be exactly equivalent to
  // having recorded both streams into one histogram (buckets are globally
  // log-linear indexed, so index-wise add is exact, not approximate).
  Histogram low;
  Histogram high;
  Histogram combined;
  for (uint64_t v = 1; v <= 64; ++v) {
    low.Record(v);
    combined.Record(v);
  }
  for (uint64_t v = 1 << 20; v < (1 << 20) + 64; ++v) {
    high.Record(v);
    combined.Record(v);
  }
  low.Merge(high);
  EXPECT_EQ(low.count(), combined.count());
  EXPECT_EQ(low.sum(), combined.sum());
  EXPECT_EQ(low.min(), combined.min());
  EXPECT_EQ(low.max(), combined.max());
  for (const double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_EQ(low.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramMerge, SumSaturatesInsteadOfWrapping) {
  Histogram a;
  Histogram b;
  a.RecordN(~0ULL, 1);  // sum saturates at UINT64_MAX already.
  b.Record(12345);
  a.Merge(b);
  EXPECT_EQ(a.sum(), ~0ULL) << "merge must saturate like RecordN";
  EXPECT_EQ(a.count(), 2u);
}

// ---- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistry, OwnedCounterGaugeDistribution) {
  MetricRegistry registry;
  uint64_t& c = registry.Counter("a/count");
  double& g = registry.Gauge("a/level");
  Histogram& d = registry.Distribution("a/latency");
  c += 3;
  g = 1.5;
  d.Record(100);

  // Get-or-create returns the same storage.
  EXPECT_EQ(&registry.Counter("a/count"), &c);
  registry.Counter("a/count") += 1;

  const MetricSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("a/count"), 4u);
  const MetricSample* level = snap.Find("a/level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(level->gauge, 1.5);
  const MetricSample* latency = snap.Find("a/latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->kind, MetricKind::kDistribution);
  EXPECT_EQ(latency->distribution.count, 1u);
  EXPECT_EQ(latency->distribution.min, 100u);
}

TEST(MetricRegistry, RegisteredViewsReadThrough) {
  MetricRegistry registry;
  uint64_t hits = 0;
  double level = 0.0;
  Histogram hist;
  registry.RegisterCounter("tlb/hits", &hits);
  registry.RegisterGauge("mem/level", &level);
  registry.RegisterDistribution("walk", &hist);
  registry.RegisterCounterFn("derived", [&hits] { return hits * 2; });

  // Mutate through the subsystem's own storage — the legacy `++field` path.
  hits = 7;
  level = 0.5;
  hist.Record(42);

  const MetricSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("tlb/hits"), 7u);
  EXPECT_EQ(snap.CounterValue("derived"), 14u);
  EXPECT_DOUBLE_EQ(snap.Find("mem/level")->gauge, 0.5);
  EXPECT_EQ(snap.Find("walk")->distribution.count, 1u);
}

TEST(MetricRegistry, SnapshotPrefixMatchesFilteredFullSnapshot) {
  // SnapshotPrefix reads only the matching subtree (the per-VM finish path
  // depends on this being O(subtree), not O(registry)); its output must be
  // byte-equivalent to the old snapshot-everything-then-filter route.
  MetricRegistry registry;
  registry.Counter("vm1/transactions") = 5;
  registry.Counter("vm10/transactions") = 7;  // Shares the "vm1" prefix.
  registry.Counter("vm2/policy/promotions") = 3;
  registry.Gauge("vm2/level") = 0.5;
  registry.Distribution("vm2/lat").Record(42);

  const MetricSnapshot direct = registry.SnapshotPrefix("vm2/", /*strip=*/true);
  const MetricSnapshot filtered = registry.Snapshot().FilterPrefix("vm2", true);
  EXPECT_EQ(direct.ToJson(), filtered.ToJson());
  EXPECT_EQ(direct.CounterValue("policy/promotions"), 3u);
  // Prefix matching is exact: "vm1/" must not pick up "vm10/".
  EXPECT_EQ(registry.SnapshotPrefix("vm1/", true).size(), 1u);
}

TEST(MetricRegistry, SnapshotIsNameSorted) {
  MetricRegistry registry;
  registry.Counter("z");
  registry.Counter("a/b");
  registry.Counter("a");
  registry.Counter("m");
  const MetricSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap.samples()[i - 1].name, snap.samples()[i].name);
  }
}

TEST(MetricScope, PrefixesCompose) {
  MetricRegistry registry;
  MetricScope root(&registry, "vm0");
  MetricScope tlb = root.Sub("tlb");
  EXPECT_EQ(tlb.Name("hits"), "vm0/tlb/hits");
  tlb.Counter("hits") = 5;
  EXPECT_EQ(registry.Snapshot().CounterValue("vm0/tlb/hits"), 5u);
}

TEST(MetricSnapshot, DiffSubtractsCountersSaturating) {
  MetricRegistry registry;
  uint64_t& c = registry.Counter("ops");
  registry.Gauge("level") = 3.0;
  c = 10;
  const MetricSnapshot before = registry.Snapshot();
  c = 25;
  registry.Gauge("level") = 9.0;
  const MetricSnapshot after = registry.Snapshot();

  const MetricSnapshot diff = after.Diff(before);
  EXPECT_EQ(diff.CounterValue("ops"), 15u);
  // Gauges keep their current value — they are not accumulative.
  EXPECT_DOUBLE_EQ(diff.Find("level")->gauge, 9.0);

  // A reset (smaller current than earlier) saturates to zero, not 2^64-ish.
  const MetricSnapshot regressed = before.Diff(after);
  EXPECT_EQ(regressed.CounterValue("ops"), 0u);
}

TEST(MetricSnapshot, FilterPrefixStrips) {
  MetricRegistry registry;
  registry.Counter("vm0/tlb/hits") = 1;
  registry.Counter("vm0/stats/ops") = 2;
  registry.Counter("vm1/tlb/hits") = 3;
  registry.Counter("host/populates") = 4;

  const MetricSnapshot vm0 = registry.Snapshot().FilterPrefix("vm0/", /*strip=*/true);
  EXPECT_EQ(vm0.size(), 2u);
  EXPECT_EQ(vm0.CounterValue("tlb/hits"), 1u);
  EXPECT_EQ(vm0.CounterValue("stats/ops"), 2u);
  EXPECT_EQ(vm0.Find("vm1/tlb/hits"), nullptr);
}

TEST(MetricSnapshot, JsonIsStableAndTyped) {
  MetricRegistry registry;
  registry.Counter("b/count") = 2;
  registry.Gauge("a/level") = 0.5;
  Histogram& h = registry.Distribution("c/lat");
  h.Record(10);
  h.Record(1000);

  const std::string json = registry.Snapshot().ToJson();
  // Name-sorted keys; counters as integers, gauges as floats, distributions
  // as nested objects.
  EXPECT_EQ(json.find("{\"a/level\":0.5,\"b/count\":2,\"c/lat\":{"), 0u) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"min\":10"), std::string::npos);
  // Byte-identical across snapshots of the same state.
  EXPECT_EQ(json, registry.Snapshot().ToJson());
}

TEST(DistributionSummary, FromHistogramQuantiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  const DistributionSummary s = DistributionSummary::FromHistogram(h);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_NEAR(static_cast<double>(s.p50), 500.0, 500.0 / Histogram::kSubBuckets + 1);
  EXPECT_GE(s.p999, s.p99);
  EXPECT_GE(s.p99, s.p90);
  EXPECT_GE(s.p90, s.p50);
  EXPECT_LE(s.p999, s.max);
}

// ---- Tracer -----------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  tracer.Instant("cat", "event", 100, 0, 0);
  tracer.Span("cat", "span", 100, 50.0, 0, 0);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, RecordsInstantsAndSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.Instant("tlb", "full_flush", 100, /*pid=*/1, /*tid=*/0,
                 TraceArgs().Add("vcpus", uint64_t{2}).str());
  tracer.Span("tmm", "demeter", 200, 50.5, /*pid=*/1, /*tid=*/0);
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].phase, 'i');
  EXPECT_EQ(tracer.events()[0].args, "\"vcpus\":2");
  EXPECT_EQ(tracer.events()[1].phase, 'X');
  EXPECT_DOUBLE_EQ(tracer.events()[1].dur_ns, 50.5);
}

TEST(Tracer, BoundedWithDropCount) {
  Tracer tracer(/*max_events=*/3);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.Instant("cat", "e", i, 0, 0);
  }
  EXPECT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.dropped(), 7u);
}

TEST(Tracer, TakeEventsMovesOut) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.Instant("cat", "e", 1, 0, 0);
  const std::vector<TraceEvent> events = tracer.TakeEvents();
  EXPECT_EQ(events.size(), 1u);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(ChromeTrace, JsonShapeAndPidRebase) {
  Tracer a;
  a.set_enabled(true);
  a.Instant("tlb", "full_flush", 1500, /*pid=*/0, /*tid=*/1);
  a.Span("tmm", "tpp", 2000, 250.0, /*pid=*/1, /*tid=*/0,
         TraceArgs().Add("promoted", uint64_t{4}).str());
  Tracer b;
  b.set_enabled(true);
  b.Instant("pebs", "pmi_drain", 3000, /*pid=*/0, /*tid=*/0);

  const std::vector<TraceEvent> ea = a.TakeEvents();
  const std::vector<TraceEvent> eb = b.TakeEvents();
  const std::string json =
      ChromeTraceJson({NamedTrace{"spec-a", &ea}, NamedTrace{"spec-b", &eb}});

  EXPECT_EQ(json.find("{\"displayTimeUnit\":"), 0u) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Process metadata names each (trace, pid) lane.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("spec-a/vm1"), std::string::npos);
  // Second trace's pid 0 is rebased into its own block.
  const std::string rebased = "\"pid\":" + std::to_string(kTracePidStride);
  EXPECT_NE(json.find(rebased), std::string::npos) << json;
  // Phases and timestamps (microseconds: 1500 ns -> 1.500).
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  // Balanced braces/brackets (cheap structural validity check; the CI smoke
  // job additionally parses real output with a JSON parser).
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(ChromeTrace, EmptyTraceListIsValid) {
  const std::string json = ChromeTraceJson({});
  EXPECT_EQ(json.find("{\"displayTimeUnit\":"), 0u);
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

}  // namespace
}  // namespace demeter
