// Cloud consolidation: QoS-driven FMEM rebalancing with the Demeter double
// balloon (§3.3).
//
// Two tenants share a host. Both start with the default 1:5 FMEM ratio.
// Mid-run, the premium tenant's telemetry (via the balloon statistics
// queue) shows FMEM pressure, so the host shifts fast memory from the
// best-effort VM to the premium VM — page-granular, asynchronous, and
// tier-aware: exactly the elasticity a coarse hotplug or a tier-blind
// balloon cannot deliver.
//
// Build & run:  ./build/examples/cloud_consolidation

#include <algorithm>
#include <cstdio>

#include "src/core/api.h"
#include "src/workloads/gups.h"
#include "src/workloads/workload.h"

namespace demeter {
namespace {

struct Tenant {
  const char* name;
  Vm* vm = nullptr;
  GuestProcess* process = nullptr;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<DemeterPolicy> policy;
  std::unique_ptr<DemeterBalloon> balloon;
  std::vector<AccessOp> ops;
  size_t pos = 0;
  uint64_t phase_accesses = 0;
  double phase_ns = 0.0;
};

// Advances one tenant by `slice_ns` of virtual time.
void RunSlice(Tenant& tenant, Rng& rng, double slice_ns) {
  Vm& vm = *tenant.vm;
  const double deadline = vm.vcpu(0).clock_ns + slice_ns;
  int vcpu = 0;
  while (vm.vcpu(0).clock_ns < deadline) {
    if (tenant.pos >= tenant.ops.size()) {
      tenant.ops.clear();
      tenant.pos = 0;
      tenant.workload->NextBatch(vcpu, 1024, rng, &tenant.ops);
    }
    const AccessOp op = tenant.ops[tenant.pos++];
    const AccessResult r = vm.ExecuteAccess(vcpu, *tenant.process, op.gva, op.is_write);
    vm.vcpu(vcpu).clock_ns += r.ns;
    tenant.phase_ns += r.ns;
    ++tenant.phase_accesses;
    Vcpu& v = vm.vcpu(vcpu);
    if (v.clock_ns >= static_cast<double>(v.next_context_switch)) {
      v.clock_ns += vm.OnContextSwitch(vcpu, v.now());
      v.next_context_switch += vm.config().context_switch_period;
    }
    vcpu = (vcpu + 1) % vm.num_vcpus();
  }
}

// Runs both tenants concurrently (interleaved 1 ms slices) for `budget_ns`.
void RunPhase(EventQueue& events, Tenant* tenants, Rng& rng, double budget_ns) {
  for (double done = 0; done < budget_ns; done += 1e6) {
    for (int i = 0; i < 2; ++i) {
      RunSlice(tenants[i], rng, 1e6);
    }
    const Nanos now = static_cast<Nanos>(
        std::min(tenants[0].vm->vcpu(0).clock_ns, tenants[1].vm->vcpu(0).clock_ns));
    events.RunUntil(now);
  }
}

int Run() {
  std::printf("== Cloud consolidation with the Demeter double balloon ==\n\n");

  HostMemory memory({TierSpec::LocalDram(24 * kMiB), TierSpec::Pmem(128 * kMiB)});
  EventQueue events;
  Hypervisor hyper(&memory, &events);

  Tenant tenants[2] = {{"premium"}, {"best-effort"}};
  for (int i = 0; i < 2; ++i) {
    VmConfig config;
    config.id = i;
    config.num_vcpus = 2;
    config.total_memory_bytes = 32 * kMiB;
    config.fmem_ratio = 0.2;
    config.cache_hit_rate = 0.05;
    config.rng_seed = 1000 + static_cast<uint64_t>(i);
    Tenant& tenant = tenants[i];
    tenant.vm = &hyper.CreateVm(config);
    tenant.process = &tenant.vm->kernel().CreateProcess();
    // A hot set deliberately larger than the default FMEM share, so extra
    // fast memory translates directly into throughput.
    GupsConfig gups;
    gups.footprint_bytes = 24 * kMiB;
    gups.hot_fraction = 0.38;
    gups.hot_offset_fraction = 0.55;
    tenant.workload = std::make_unique<GupsHotset>(gups);
    Rng rng(static_cast<uint64_t>(i) + 5);
    tenant.workload->Setup(*tenant.process, rng);
    // Init pass: first-touch placement.
    for (const Vma& vma : tenant.process->space().vmas()) {
      if (!vma.tracked || vma.size() == 0) {
        continue;
      }
      for (uint64_t addr = vma.start; addr < vma.end; addr += kPageSize) {
        tenant.vm->ExecuteAccess(0, *tenant.process, addr, true);
      }
    }
    DemeterConfig dconfig;
    dconfig.range.epoch_length = 10 * kMillisecond;
    dconfig.range.split_threshold = 4.0;
    dconfig.sample_period = 97;
    tenant.policy = std::make_unique<DemeterPolicy>(dconfig);
    tenant.policy->Attach(*tenant.vm, *tenant.process, tenant.vm->vcpu(0).now());
    tenant.balloon = std::make_unique<DemeterBalloon>(tenant.vm);
  }

  Rng rng(99);
  auto report = [&](const char* phase) {
    std::printf("%s\n", phase);
    for (Tenant& tenant : tenants) {
      const double mps = tenant.phase_ns > 0
                             ? static_cast<double>(tenant.phase_accesses) / tenant.phase_ns * 1e3
                             : 0.0;
      std::printf("  %-12s fmem=%5.1f MiB  throughput=%7.2f M acc/s\n", tenant.name,
                  static_cast<double>(tenant.vm->kernel().node(0).present_pages() * kPageSize) /
                      static_cast<double>(kMiB),
                  mps);
      tenant.phase_accesses = 0;
      tenant.phase_ns = 0.0;
    }
    std::printf("\n");
  };

  // Phase 1: both tenants run with the default composition.
  RunPhase(events, tenants, rng, 150e6);
  report("Phase 1 (equal FMEM shares):");

  // QoS decision: read the premium tenant's telemetry, then rebalance.
  const Nanos now = static_cast<Nanos>(tenants[0].vm->vcpu(0).clock_ns);
  tenants[0].balloon->QueryStats(now, [](const GuestMemStats& stats, Nanos) {
    std::printf("Premium telemetry: fmem present=%llu pages free=%llu, promoted=%llu — "
                "hot set exceeds FMEM; requesting more fast memory.\n\n",
                static_cast<unsigned long long>(stats.node_present[0]),
                static_cast<unsigned long long>(stats.node_free[0]),
                static_cast<unsigned long long>(stats.pages_promoted));
  });
  events.RunUntil(now + kSecond);

  // Shift half of the best-effort tenant's FMEM to the premium tenant:
  // inflate B's fast-node balloon, deflate A's by the same amount.
  const uint64_t shift = tenants[1].vm->kernel().node(0).present_pages() / 2;
  tenants[1].balloon->RequestDelta(0, static_cast<int64_t>(shift), now);
  tenants[0].balloon->RequestDelta(0, -static_cast<int64_t>(shift), now);
  events.RunUntil(now + kSecond);
  std::printf("Rebalanced: moved %.1f MiB of FMEM from best-effort to premium.\n\n",
              static_cast<double>(shift * kPageSize) / static_cast<double>(kMiB));

  // Phase 2: the premium tenant's TMM can now hold its whole hot set.
  RunPhase(events, tenants, rng, 150e6);
  report("Phase 2 (premium holds 1.5x FMEM):");

  std::printf("The premium tenant gains throughput at the best-effort tenant's\n"
              "expense — page-granular, applied online, with no VM restarts.\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main() { return demeter::Run(); }
