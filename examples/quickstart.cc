// Quickstart: the smallest end-to-end Demeter setup.
//
// Builds a two-tier host (DRAM + PMEM), boots one VM with two NUMA nodes
// exposed at a 1:5 FMEM:SMEM ratio, attaches the guest-delegated Demeter
// TMM engine, runs a skewed GUPS workload, and prints what the engine did:
// how the range tree refined, how many pages moved, and how the FMEM hit
// fraction (and throughput) improved against a no-management run.
//
// Build & run:  ./build/examples/quickstart
//
// This example drives two Machines by hand to stay readable. For anything
// beyond a couple of configurations, prefer the src/runner experiment
// orchestrator: describe each run as an ExperimentSpec and let
// ExperimentRunner execute them in parallel with deterministic seeds and
// spec-ordered results (see "Running experiments" in README.md).

#include <cstdio>

#include "src/core/api.h"
#include "src/harness/machine.h"

namespace demeter {
namespace {

VmSetup DescribeVm(PolicyKind policy) {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;  // Scaled-down 16 GiB instance.
  setup.vm.fmem_ratio = 0.2;                // The paper's 1:5 default.
  setup.vm.num_vcpus = 2;
  setup.workload = "gups";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = 800000;
  setup.policy = policy;
  setup.demeter.range.epoch_length = 10 * kMillisecond;
  setup.demeter.sample_period = 97;
  setup.demeter.range.split_threshold = 4.0;
  return setup;
}

int Run() {
  std::printf("== Demeter quickstart ==\n\n");

  // Baseline: first-touch placement, no tiered memory management.
  MachineConfig host;
  host.tiers = {TierSpec::LocalDram(16 * kMiB), TierSpec::Pmem(64 * kMiB)};
  Machine baseline(host);
  baseline.AddVm(DescribeVm(PolicyKind::kStatic));
  baseline.Run();
  const VmRunResult& base = baseline.result(0);

  // Demeter: EPT-friendly PEBS -> range classifier -> balanced relocation.
  Machine managed(host);
  managed.AddVm(DescribeVm(PolicyKind::kDemeter));
  managed.Run();
  const VmRunResult& demeter = managed.result(0);

  std::printf("GUPS, 24 MiB footprint with a 10%% hot set born in SMEM:\n\n");
  std::printf("  %-22s %12s %12s\n", "", "no-mgmt", "demeter");
  std::printf("  %-22s %12.3f %12.3f\n", "elapsed (virtual s)", base.elapsed_s,
              demeter.elapsed_s);
  std::printf("  %-22s %12.2f %12.2f\n", "throughput (M txn/s)", base.ThroughputTps() / 1e6,
              demeter.ThroughputTps() / 1e6);
  std::printf("  %-22s %11.1f%% %11.1f%%\n", "FMEM access fraction",
              base.fmem_access_fraction * 100, demeter.fmem_access_fraction * 100);
  std::printf("  %-22s %12llu %12llu\n", "pages promoted",
              static_cast<unsigned long long>(base.vm_stats.pages_promoted),
              static_cast<unsigned long long>(demeter.vm_stats.pages_promoted));
  std::printf("  %-22s %12llu %12llu\n", "full TLB flushes",
              static_cast<unsigned long long>(base.tlb.full_flushes),
              static_cast<unsigned long long>(demeter.tlb.full_flushes));

  auto* policy = dynamic_cast<DemeterPolicy*>(managed.policy(0));
  std::printf("\nRange tree after the run: %zu leaves, %llu splits, %llu merges\n",
              policy->tree().leaves().size(),
              static_cast<unsigned long long>(policy->tree().total_splits()),
              static_cast<unsigned long long>(policy->tree().total_merges()));
  for (const HotRange& leaf : policy->tree().Ranked()) {
    std::printf("  [%#014llx, %#014llx) %7.1f MiB  freq %.4f\n",
                static_cast<unsigned long long>(leaf.start),
                static_cast<unsigned long long>(leaf.end),
                static_cast<double>(leaf.size()) / static_cast<double>(kMiB), leaf.Frequency());
  }

  const double speedup = base.elapsed_s / demeter.elapsed_s;
  std::printf("\nSpeedup from guest-delegated management: %.2fx\n", speedup);
  return speedup > 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace demeter

int main() { return demeter::Run(); }
