// Policy playground: writing a custom TMM policy against the public API.
//
// Demeter's policy interface (TmmPolicy) is deliberately small: attach to a
// VM, register hooks, steal the CPU time your bookkeeping costs. This
// example implements a naive "random promoter" policy in ~60 lines and races
// it against no management and the full Demeter engine — a template for
// experimenting with your own classification or migration ideas.
//
// Build & run:  ./build/examples/policy_playground

#include <cstdio>

#include "src/core/api.h"
#include "src/harness/machine.h"

namespace demeter {
namespace {

// A deliberately naive policy: every period, promote a few random SMEM
// pages and demote FIFO victims to make room. No access tracking at all —
// the floor any real classifier must beat.
class RandomPromoter : public TmmPolicy {
 public:
  const char* name() const override { return "random-promoter"; }

  void Attach(Vm& vm, GuestProcess& process, Nanos start) override {
    vm_ = &vm;
    process_ = &process;
    Schedule(start);
  }

 private:
  void Schedule(Nanos now) {
    if (stopped_) {
      return;
    }
    vm_->host().events().Schedule(now + 20 * kMillisecond,
                                  [this, alive = alive_](Nanos fire) {
                                    if (*alive) {
                                      Tick(fire);
                                    }
                                  });
  }

  void Tick(Nanos now) {
    if (stopped_) {
      return;
    }
    double cost = 0.0;
    GuestKernel& kernel = vm_->kernel();
    for (int i = 0; i < 64; ++i) {
      // Pick a random mapped page; promote it if it lives in SMEM.
      auto victim = kernel.PickVictim(1);
      if (!victim.has_value()) {
        break;
      }
      const RmapEntry* rmap = kernel.Rmap(*victim);
      if (kernel.node(0).free_pages() < 8) {
        auto fmem_victim = kernel.PickVictim(0);
        if (fmem_victim.has_value()) {
          const RmapEntry* fr = kernel.Rmap(*fmem_victim);
          vm_->MovePage(*kernel.process(fr->pid), fr->vpn, 1, now, &cost);
        }
      }
      vm_->MovePage(*kernel.process(rmap->pid), rmap->vpn, 0, now, &cost);
    }
    vm_->vcpu(0).clock_ns += cost;
    vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(cost));
    Schedule(now);
  }

  Vm* vm_ = nullptr;
  GuestProcess* process_ = nullptr;
};

double RunWith(const char* label, std::unique_ptr<TmmPolicy> policy) {
  MachineConfig host;
  host.tiers = {TierSpec::LocalDram(10 * kMiB), TierSpec::Pmem(64 * kMiB)};
  Machine machine(host);
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.num_vcpus = 2;
  setup.workload = "xsbench";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = 120000;
  setup.demeter.range.epoch_length = 10 * kMillisecond;
  setup.demeter.range.split_threshold = 4.0;
  setup.demeter.sample_period = 97;
  // The harness builds its own policy from `setup.policy`; for a custom one
  // we attach by hand after construction — so run with kStatic and attach.
  setup.policy = PolicyKind::kStatic;
  const int i = machine.AddVm(setup);
  if (policy != nullptr) {
    machine.SetCustomPolicy(i, std::move(policy));
  }
  machine.Run();
  const VmRunResult& result = machine.result(i);
  std::printf("  %-18s elapsed=%.3fs  fmem-hit=%4.1f%%  promoted=%llu\n", label,
              result.elapsed_s, result.fmem_access_fraction * 100,
              static_cast<unsigned long long>(result.vm_stats.pages_promoted));
  return result.elapsed_s;
}

int Run() {
  std::printf("== Policy playground: plug your own TMM policy into the VM ==\n\n");
  std::printf("XSBench (static hotspot), 24 MiB footprint, FMEM 1:5:\n\n");
  const double baseline = RunWith("no-management", nullptr);
  const double random = RunWith("random-promoter", std::make_unique<RandomPromoter>());
  const double demeter = RunWith("demeter", std::make_unique<DemeterPolicy>([] {
                                   DemeterConfig config;
                                   config.range.epoch_length = 10 * kMillisecond;
                                   config.range.split_threshold = 4.0;
                                   config.sample_period = 97;
                                   return config;
                                 }()));
  std::printf("\nSpeedup vs no-management: random %.2fx, demeter %.2fx\n",
              baseline / random, baseline / demeter);
  std::printf("Moving pages without hotness information barely helps (or hurts);\n"
              "classification quality is what pays.\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main() { return demeter::Run(); }
