// Database tiering: an OLTP engine (Silo running a YCSB-like mix) on tiered
// memory, comparing tail latency under guest-delegated designs.
//
// Interactive services care about p99, not averages: this example shows how
// Demeter's balanced relocation (no reclaim storms, no fault-driven
// promotion on the critical path) keeps the tail short while the hotspot
// drifts through the keyspace.
//
// Build & run:  ./build/examples/database_tiering

#include <cstdio>

#include "src/base/histogram.h"
#include "src/harness/machine.h"

namespace demeter {
namespace {

VmSetup DatabaseVm(PolicyKind policy) {
  VmSetup setup;
  setup.vm.total_memory_bytes = 32 * kMiB;
  setup.vm.fmem_ratio = 0.2;
  setup.vm.num_vcpus = 2;
  setup.workload = "silo";
  setup.footprint_bytes = 24 * kMiB;
  setup.target_transactions = 150000;
  setup.policy = policy;
  setup.policy_period = 15 * kMillisecond;
  setup.demeter.range.epoch_length = 10 * kMillisecond;
  setup.demeter.range.split_threshold = 4.0;
  setup.demeter.sample_period = 97;
  return setup;
}

int Run() {
  std::printf("== OLTP on tiered memory: Silo/YCSB transaction latency ==\n\n");
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "policy", "p50(us)", "p95(us)", "p99(us)",
              "mean(us)", "txn/s");

  for (PolicyKind policy :
       {PolicyKind::kStatic, PolicyKind::kTpp, PolicyKind::kMemtis, PolicyKind::kDemeter}) {
    MachineConfig host;
    host.tiers = {TierSpec::LocalDram(10 * kMiB), TierSpec::Pmem(64 * kMiB)};
    Machine machine(host);
    machine.AddVm(DatabaseVm(policy));
    machine.Run();
    const VmRunResult& result = machine.result(0);
    const Histogram& lat = result.txn_latency_ns;
    std::printf("%-10s %10.2f %10.2f %10.2f %10.2f %12.0f\n", result.policy.c_str(),
                static_cast<double>(lat.Percentile(50)) / 1000.0,
                static_cast<double>(lat.Percentile(95)) / 1000.0,
                static_cast<double>(lat.Percentile(99)) / 1000.0, lat.Mean() / 1000.0,
                result.ThroughputTps());
  }

  std::printf(
      "\nThe drifting YCSB hotspot forces continuous re-classification; designs\n"
      "that migrate through page faults or reclaim inflate p99 the most.\n");
  return 0;
}

}  // namespace
}  // namespace demeter

int main() { return demeter::Run(); }
