// Memory-tier performance model.
//
// Tier latency/bandwidth figures default to the paper's Table 2 (measured on
// the authors' testbed with Intel Memory Latency Checker):
//   L2 hit          53.6 ns
//   local DRAM      68.7 ns   88156.5 MB/s
//   remote DRAM    121.9 ns   53533.8 MB/s   (used to emulate CXL.mem, as Pond does)
//   local PMEM     176.6 ns   21414.5 MB/s
//
// A utilization-based queueing model adds contention: transferred bytes are
// accounted into coarse virtual-time windows, and the latency of an access
// is inflated by an M/M/1-style factor of the tier's recent utilization.
// The window (1 ms) is wider than any scheduling skew between vCPU clocks,
// so loosely synchronized callers see a consistent load estimate. PMEM
// writes are additionally penalized (Optane write latency/bandwidth
// asymmetry, per "An Empirical Guide to the Behavior and Use of Scalable
// Persistent Memory").

#ifndef DEMETER_SRC_MEM_TIER_H_
#define DEMETER_SRC_MEM_TIER_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "src/base/units.h"

namespace demeter {

enum class MediaKind : int {
  kLocalDram = 0,
  kRemoteDram = 1,  // Also CXL.mem emulation.
  kPmem = 2,
  kZswap = 3,  // Compressed-RAM/SSD far tier (swap backend).
};

struct TierSpec {
  MediaKind media = MediaKind::kLocalDram;
  double read_latency_ns = 68.7;
  double write_latency_ns = 68.7;
  double read_bw_mbps = 88156.5;
  double write_bw_mbps = 88156.5;
  uint64_t capacity_bytes = 0;

  uint64_t capacity_pages() const { return capacity_bytes / kPageSize; }

  static TierSpec LocalDram(uint64_t capacity_bytes);
  static TierSpec RemoteDram(uint64_t capacity_bytes);  // CXL.mem emulation.
  static TierSpec Pmem(uint64_t capacity_bytes);
  static TierSpec Zswap(uint64_t capacity_bytes);  // Far tier (swap backend).
};

// Cache-hit latency (does not reach any memory tier).
inline constexpr double kL2HitLatencyNs = 53.6;

const char* MediaKindName(MediaKind media);

// Runtime state of one tier: the static spec plus a bandwidth-queueing
// horizon. AccessCost() is the only mutator; it both returns the effective
// latency of a transfer issued at `now` and advances the horizon.
class MemoryTier {
 public:
  explicit MemoryTier(const TierSpec& spec) : spec_(spec) {
    // Hot-path constants. The spec is fixed for the tier's lifetime, so the
    // direction bandwidths, the 64-byte (cacheline) service times, and the
    // utilization window capacity are computed once here — with exactly the
    // expressions AccessCost()/Utilization() used to evaluate per call, so
    // every returned latency is bit-identical to the uncached arithmetic.
    read_bytes_per_ns_ = std::max(spec_.read_bw_mbps, kMinBandwidthMbps) * 1e-3;
    write_bytes_per_ns_ = std::max(spec_.write_bw_mbps, kMinBandwidthMbps) * 1e-3;
    service_read_line_ = static_cast<double>(kLineBytes) / read_bytes_per_ns_;
    service_write_line_ = static_cast<double>(kLineBytes) / write_bytes_per_ns_;
    const double avg_bw = (2.0 * spec_.read_bw_mbps + spec_.write_bw_mbps) / 3.0;
    window_capacity_bytes_ = (avg_bw * 1e-3) * 2.0 * static_cast<double>(kWindowNs);
  }

  const TierSpec& spec() const { return spec_; }

  // Effective latency in ns of transferring `bytes` at virtual time `now`:
  // (base latency + service time) inflated by recent-utilization queueing.
  // Defined inline below: this runs once per simulated access and is the
  // single hottest leaf of the whole pipeline.
  double AccessCost(Nanos now, uint64_t bytes, bool is_write);

  // Current utilization estimate in [0, kMaxUtilization].
  double Utilization() const;

  // Total bytes moved through this tier (reads + writes).
  uint64_t bytes_transferred() const { return bytes_transferred_; }

  void ResetContention();

  static constexpr Nanos kWindowNs = kMillisecond;
  static constexpr double kMaxUtilization = 0.95;
  // Guards against degenerate specs / fully-carved tiers: a direction
  // bandwidth below this floor is clamped (AccessCost stays finite), and a
  // per-window byte capacity below kMinWindowCapacityBytes pins Utilization
  // at kMaxUtilization whenever any traffic is present (no divide-by-~zero).
  static constexpr double kMinBandwidthMbps = 1.0;
  static constexpr double kMinWindowCapacityBytes = 1.0;
  // Transfer size of a demand access (one cacheline); its service time is
  // precomputed because virtually every AccessCost call uses it.
  static constexpr uint64_t kLineBytes = 64;

 private:
  TierSpec spec_;
  uint64_t current_window_ = 0;
  uint64_t window_bytes_ = 0;
  uint64_t prev_window_bytes_ = 0;
  uint64_t bytes_transferred_ = 0;
  // Constants derived from spec_ at construction (see ctor).
  double read_bytes_per_ns_ = 0.0;
  double write_bytes_per_ns_ = 0.0;
  double service_read_line_ = 0.0;
  double service_write_line_ = 0.0;
  double window_capacity_bytes_ = 0.0;
};

inline double MemoryTier::Utilization() const {
  // Average read/write bandwidth weighted 2:1 toward reads as the capacity
  // reference (precomputed in the ctor); precise per-direction accounting is
  // below the model's noise.
  // A tier whose effective capacity has collapsed (a tiershrink carve taking
  // a small tier to empty, or a degenerate spec) must saturate, not divide
  // by ~zero: any traffic against no capacity is full contention.
  if (window_capacity_bytes_ < kMinWindowCapacityBytes) {
    return (window_bytes_ + prev_window_bytes_) > 0 ? kMaxUtilization : 0.0;
  }
  const double util =
      static_cast<double>(window_bytes_ + prev_window_bytes_) / window_capacity_bytes_;
  return std::min(util, kMaxUtilization);
}

inline double MemoryTier::AccessCost(Nanos now, uint64_t bytes, bool is_write) {
  const double base = is_write ? spec_.write_latency_ns : spec_.read_latency_ns;
  // Direction bandwidths are floored at construction so a zero/near-zero
  // spec yields a very slow but finite service time instead of inf/NaN
  // poisoning every downstream cost accumulator. The cacheline service time
  // is precomputed: demand accesses dominate and all transfer 64 bytes.
  const double service =
      bytes == kLineBytes
          ? (is_write ? service_write_line_ : service_read_line_)
          : static_cast<double>(bytes) / (is_write ? write_bytes_per_ns_ : read_bytes_per_ns_);

  const uint64_t window = now / kWindowNs;
  if (window > current_window_) {
    prev_window_bytes_ = (window == current_window_ + 1) ? window_bytes_ : 0;
    current_window_ = window;
    window_bytes_ = 0;
  }
  // Accesses timestamped behind the newest window (vCPU clock skew) fold
  // into the current window: load is load, wherever the clock says it came
  // from.
  window_bytes_ += bytes;
  bytes_transferred_ += bytes;

  const double util = Utilization();
  const double queue_factor = util * util / (1.0 - util);  // M/M/1-flavoured.
  return (base + service) * (1.0 + queue_factor);
}

}  // namespace demeter

#endif  // DEMETER_SRC_MEM_TIER_H_
