// Memory-tier performance model.
//
// Tier latency/bandwidth figures default to the paper's Table 2 (measured on
// the authors' testbed with Intel Memory Latency Checker):
//   L2 hit          53.6 ns
//   local DRAM      68.7 ns   88156.5 MB/s
//   remote DRAM    121.9 ns   53533.8 MB/s   (used to emulate CXL.mem, as Pond does)
//   local PMEM     176.6 ns   21414.5 MB/s
//
// A utilization-based queueing model adds contention: transferred bytes are
// accounted into coarse virtual-time windows, and the latency of an access
// is inflated by an M/M/1-style factor of the tier's recent utilization.
// The window (1 ms) is wider than any scheduling skew between vCPU clocks,
// so loosely synchronized callers see a consistent load estimate. PMEM
// writes are additionally penalized (Optane write latency/bandwidth
// asymmetry, per "An Empirical Guide to the Behavior and Use of Scalable
// Persistent Memory").

#ifndef DEMETER_SRC_MEM_TIER_H_
#define DEMETER_SRC_MEM_TIER_H_

#include <cstdint>
#include <string>

#include "src/base/units.h"

namespace demeter {

enum class MediaKind : int {
  kLocalDram = 0,
  kRemoteDram = 1,  // Also CXL.mem emulation.
  kPmem = 2,
  kZswap = 3,  // Compressed-RAM/SSD far tier (swap backend).
};

struct TierSpec {
  MediaKind media = MediaKind::kLocalDram;
  double read_latency_ns = 68.7;
  double write_latency_ns = 68.7;
  double read_bw_mbps = 88156.5;
  double write_bw_mbps = 88156.5;
  uint64_t capacity_bytes = 0;

  uint64_t capacity_pages() const { return capacity_bytes / kPageSize; }

  static TierSpec LocalDram(uint64_t capacity_bytes);
  static TierSpec RemoteDram(uint64_t capacity_bytes);  // CXL.mem emulation.
  static TierSpec Pmem(uint64_t capacity_bytes);
  static TierSpec Zswap(uint64_t capacity_bytes);  // Far tier (swap backend).
};

// Cache-hit latency (does not reach any memory tier).
inline constexpr double kL2HitLatencyNs = 53.6;

const char* MediaKindName(MediaKind media);

// Runtime state of one tier: the static spec plus a bandwidth-queueing
// horizon. AccessCost() is the only mutator; it both returns the effective
// latency of a transfer issued at `now` and advances the horizon.
class MemoryTier {
 public:
  explicit MemoryTier(const TierSpec& spec) : spec_(spec) {}

  const TierSpec& spec() const { return spec_; }

  // Effective latency in ns of transferring `bytes` at virtual time `now`:
  // (base latency + service time) inflated by recent-utilization queueing.
  double AccessCost(Nanos now, uint64_t bytes, bool is_write);

  // Current utilization estimate in [0, kMaxUtilization].
  double Utilization() const;

  // Total bytes moved through this tier (reads + writes).
  uint64_t bytes_transferred() const { return bytes_transferred_; }

  void ResetContention();

  static constexpr Nanos kWindowNs = kMillisecond;
  static constexpr double kMaxUtilization = 0.95;
  // Guards against degenerate specs / fully-carved tiers: a direction
  // bandwidth below this floor is clamped (AccessCost stays finite), and a
  // per-window byte capacity below kMinWindowCapacityBytes pins Utilization
  // at kMaxUtilization whenever any traffic is present (no divide-by-~zero).
  static constexpr double kMinBandwidthMbps = 1.0;
  static constexpr double kMinWindowCapacityBytes = 1.0;

 private:
  TierSpec spec_;
  uint64_t current_window_ = 0;
  uint64_t window_bytes_ = 0;
  uint64_t prev_window_bytes_ = 0;
  uint64_t bytes_transferred_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_MEM_TIER_H_
