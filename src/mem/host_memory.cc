#include "src/mem/host_memory.h"

#include "src/base/logging.h"

namespace demeter {

HostMemory::HostMemory(std::vector<TierSpec> tiers) {
  DEMETER_CHECK(!tiers.empty());
  FrameId base = 0;
  for (const TierSpec& spec : tiers) {
    tiers_.emplace_back(spec);
    TierState state;
    state.base = base;
    state.num_frames = spec.capacity_pages();
    state.free_list.reserve(state.num_frames);
    // Push in reverse so the LIFO hands out low frame numbers first.
    for (uint64_t i = state.num_frames; i > 0; --i) {
      state.free_list.push_back(base + i - 1);
    }
    state.allocated.assign(state.num_frames, false);
    state.poisoned.assign(state.num_frames, false);
    base += state.num_frames;
    states_.push_back(std::move(state));
  }
  total_frames_ = base;
  tokens_.assign(total_frames_, 0);
}

std::optional<FrameId> HostMemory::Allocate(TierIndex t) {
  TierState& state = states_[static_cast<size_t>(t)];
  if (state.free_list.empty()) {
    return std::nullopt;
  }
  const FrameId frame = state.free_list.back();
  state.free_list.pop_back();
  state.allocated[frame - state.base] = true;
  return frame;
}

void HostMemory::Free(FrameId frame) {
  const TierIndex t = TierOf(frame);
  TierState& state = states_[static_cast<size_t>(t)];
  DEMETER_CHECK(!state.poisoned[frame - state.base]) << "free of poisoned frame " << frame;
  DEMETER_CHECK(state.allocated[frame - state.base]) << "double free of frame " << frame;
  state.allocated[frame - state.base] = false;
  state.free_list.push_back(frame);
  tokens_[frame] = 0;
}

void HostMemory::Poison(FrameId frame) {
  const TierIndex t = TierOf(frame);
  TierState& state = states_[static_cast<size_t>(t)];
  DEMETER_CHECK(state.allocated[frame - state.base]) << "poison of unallocated frame " << frame;
  DEMETER_CHECK(!state.poisoned[frame - state.base]) << "double poison of frame " << frame;
  state.allocated[frame - state.base] = false;
  state.poisoned[frame - state.base] = true;
  ++state.poisoned_count;
  tokens_[frame] = 0;
}

bool HostMemory::IsPoisoned(FrameId frame) const {
  const TierIndex t = TierOf(frame);
  const TierState& state = states_[static_cast<size_t>(t)];
  return state.poisoned[frame - state.base];
}

uint64_t HostMemory::PoisonedPages(TierIndex t) const {
  return states_[static_cast<size_t>(t)].poisoned_count;
}

uint64_t HostMemory::CarveFree(TierIndex t, uint64_t max_frames) {
  TierState& state = states_[static_cast<size_t>(t)];
  uint64_t carved = 0;
  while (carved < max_frames && !state.free_list.empty()) {
    state.carved.push_back(state.free_list.back());
    state.free_list.pop_back();
    ++carved;
  }
  return carved;
}

void HostMemory::RestoreCarved(TierIndex t) {
  TierState& state = states_[static_cast<size_t>(t)];
  // Push back in reverse carve order so the free list ends up exactly as it
  // was before the carve (the last frame carved returns to the top).
  while (!state.carved.empty()) {
    state.free_list.push_back(state.carved.back());
    state.carved.pop_back();
  }
}

uint64_t HostMemory::CarvedPages(TierIndex t) const {
  return states_[static_cast<size_t>(t)].carved.size();
}

bool HostMemory::IsAllocated(FrameId frame) const {
  const TierIndex t = TierOf(frame);
  const TierState& state = states_[static_cast<size_t>(t)];
  return state.allocated[frame - state.base];
}

uint64_t HostMemory::CapacityPages(TierIndex t) const {
  return states_[static_cast<size_t>(t)].num_frames;
}

uint64_t HostMemory::FreePages(TierIndex t) const {
  return states_[static_cast<size_t>(t)].free_list.size();
}

uint64_t HostMemory::UsedPages(TierIndex t) const {
  return CapacityPages(t) - FreePages(t) - PoisonedPages(t) - CarvedPages(t);
}

uint64_t HostMemory::ReadToken(FrameId frame) const {
  DEMETER_CHECK_LT(frame, total_frames_);
  return tokens_[frame];
}

void HostMemory::WriteToken(FrameId frame, uint64_t token) {
  DEMETER_CHECK_LT(frame, total_frames_);
  tokens_[frame] = token;
}

}  // namespace demeter
