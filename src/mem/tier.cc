#include "src/mem/tier.h"

#include <algorithm>

namespace demeter {

TierSpec TierSpec::LocalDram(uint64_t capacity_bytes) {
  TierSpec spec;
  spec.media = MediaKind::kLocalDram;
  spec.read_latency_ns = 68.7;
  spec.write_latency_ns = 68.7;
  spec.read_bw_mbps = 88156.5;
  spec.write_bw_mbps = 88156.5;
  spec.capacity_bytes = capacity_bytes;
  return spec;
}

TierSpec TierSpec::RemoteDram(uint64_t capacity_bytes) {
  TierSpec spec;
  spec.media = MediaKind::kRemoteDram;
  spec.read_latency_ns = 121.9;
  spec.write_latency_ns = 121.9;
  spec.read_bw_mbps = 53533.8;
  spec.write_bw_mbps = 53533.8;
  spec.capacity_bytes = capacity_bytes;
  return spec;
}

TierSpec TierSpec::Pmem(uint64_t capacity_bytes) {
  TierSpec spec;
  spec.media = MediaKind::kPmem;
  spec.read_latency_ns = 176.6;
  // Optane writes land in the on-DIMM buffer but sustained write bandwidth is
  // roughly a quarter of read bandwidth; latency under load is much worse.
  spec.write_latency_ns = 220.0;
  spec.read_bw_mbps = 21414.5;
  spec.write_bw_mbps = 7700.0;
  spec.capacity_bytes = capacity_bytes;
  return spec;
}

TierSpec TierSpec::Zswap(uint64_t capacity_bytes) {
  TierSpec spec;
  spec.media = MediaKind::kZswap;
  // Compressed-RAM pool fronting an SSD: the base store/load cost is the
  // (de)compression pass, a couple of orders of magnitude above DRAM but far
  // below the swap device itself (modeled separately by SwapDevice). lzo-rle
  // class throughput on one core.
  spec.read_latency_ns = 1500.0;
  spec.write_latency_ns = 2500.0;
  spec.read_bw_mbps = 4000.0;
  spec.write_bw_mbps = 3000.0;
  spec.capacity_bytes = capacity_bytes;
  return spec;
}

const char* MediaKindName(MediaKind media) {
  switch (media) {
    case MediaKind::kLocalDram:
      return "local-dram";
    case MediaKind::kRemoteDram:
      return "remote-dram(cxl)";
    case MediaKind::kPmem:
      return "pmem";
    case MediaKind::kZswap:
      return "zswap";
  }
  return "?";
}

void MemoryTier::ResetContention() {
  current_window_ = 0;
  window_bytes_ = 0;
  prev_window_bytes_ = 0;
}

}  // namespace demeter
