#include "src/mem/tier.h"

#include <algorithm>

namespace demeter {

TierSpec TierSpec::LocalDram(uint64_t capacity_bytes) {
  TierSpec spec;
  spec.media = MediaKind::kLocalDram;
  spec.read_latency_ns = 68.7;
  spec.write_latency_ns = 68.7;
  spec.read_bw_mbps = 88156.5;
  spec.write_bw_mbps = 88156.5;
  spec.capacity_bytes = capacity_bytes;
  return spec;
}

TierSpec TierSpec::RemoteDram(uint64_t capacity_bytes) {
  TierSpec spec;
  spec.media = MediaKind::kRemoteDram;
  spec.read_latency_ns = 121.9;
  spec.write_latency_ns = 121.9;
  spec.read_bw_mbps = 53533.8;
  spec.write_bw_mbps = 53533.8;
  spec.capacity_bytes = capacity_bytes;
  return spec;
}

TierSpec TierSpec::Pmem(uint64_t capacity_bytes) {
  TierSpec spec;
  spec.media = MediaKind::kPmem;
  spec.read_latency_ns = 176.6;
  // Optane writes land in the on-DIMM buffer but sustained write bandwidth is
  // roughly a quarter of read bandwidth; latency under load is much worse.
  spec.write_latency_ns = 220.0;
  spec.read_bw_mbps = 21414.5;
  spec.write_bw_mbps = 7700.0;
  spec.capacity_bytes = capacity_bytes;
  return spec;
}

TierSpec TierSpec::Zswap(uint64_t capacity_bytes) {
  TierSpec spec;
  spec.media = MediaKind::kZswap;
  // Compressed-RAM pool fronting an SSD: the base store/load cost is the
  // (de)compression pass, a couple of orders of magnitude above DRAM but far
  // below the swap device itself (modeled separately by SwapDevice). lzo-rle
  // class throughput on one core.
  spec.read_latency_ns = 1500.0;
  spec.write_latency_ns = 2500.0;
  spec.read_bw_mbps = 4000.0;
  spec.write_bw_mbps = 3000.0;
  spec.capacity_bytes = capacity_bytes;
  return spec;
}

const char* MediaKindName(MediaKind media) {
  switch (media) {
    case MediaKind::kLocalDram:
      return "local-dram";
    case MediaKind::kRemoteDram:
      return "remote-dram(cxl)";
    case MediaKind::kPmem:
      return "pmem";
    case MediaKind::kZswap:
      return "zswap";
  }
  return "?";
}

double MemoryTier::Utilization() const {
  // Average read/write bandwidth weighted 2:1 toward reads as the capacity
  // reference; precise per-direction accounting is below the model's noise.
  const double bw = (2.0 * spec_.read_bw_mbps + spec_.write_bw_mbps) / 3.0;
  const double bytes_per_ns = bw * 1e-3;  // MB/s -> bytes/ns.
  const double capacity = bytes_per_ns * 2.0 * static_cast<double>(kWindowNs);
  // A tier whose effective capacity has collapsed (a tiershrink carve taking
  // a small tier to empty, or a degenerate spec) must saturate, not divide
  // by ~zero: any traffic against no capacity is full contention.
  if (capacity < kMinWindowCapacityBytes) {
    return (window_bytes_ + prev_window_bytes_) > 0 ? kMaxUtilization : 0.0;
  }
  const double util =
      static_cast<double>(window_bytes_ + prev_window_bytes_) / capacity;
  return std::min(util, kMaxUtilization);
}

double MemoryTier::AccessCost(Nanos now, uint64_t bytes, bool is_write) {
  const double base = is_write ? spec_.write_latency_ns : spec_.read_latency_ns;
  // Floor the direction bandwidth so a zero/near-zero spec (or a carve that
  // leaves no effective capacity) yields a very slow but finite service
  // time instead of inf/NaN poisoning every downstream cost accumulator.
  const double bw = std::max(is_write ? spec_.write_bw_mbps : spec_.read_bw_mbps,
                             kMinBandwidthMbps);
  const double bytes_per_ns = bw * 1e-3;  // MB/s -> bytes/ns.
  const double service = static_cast<double>(bytes) / bytes_per_ns;

  const uint64_t window = now / kWindowNs;
  if (window > current_window_) {
    prev_window_bytes_ = (window == current_window_ + 1) ? window_bytes_ : 0;
    current_window_ = window;
    window_bytes_ = 0;
  }
  // Accesses timestamped behind the newest window (vCPU clock skew) fold
  // into the current window: load is load, wherever the clock says it came
  // from.
  window_bytes_ += bytes;
  bytes_transferred_ += bytes;

  const double util = Utilization();
  const double queue_factor = util * util / (1.0 - util);  // M/M/1-flavoured.
  return (base + service) * (1.0 + queue_factor);
}

void MemoryTier::ResetContention() {
  current_window_ = 0;
  window_bytes_ = 0;
  prev_window_bytes_ = 0;
}

}  // namespace demeter
