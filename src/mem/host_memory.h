// Host tiered physical memory: per-tier frame allocators plus a contents
// token per frame.
//
// Frames are identified by a global FrameId; each tier owns a contiguous
// FrameId range so TierOf() is a range lookup. The contents token is a
// 64-bit value logically representing the data stored in the frame — page
// migration must preserve tokens, which the test suite verifies end to end.

#ifndef DEMETER_SRC_MEM_HOST_MEMORY_H_
#define DEMETER_SRC_MEM_HOST_MEMORY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/logging.h"
#include "src/base/units.h"
#include "src/mem/tier.h"

namespace demeter {

using FrameId = uint64_t;
inline constexpr FrameId kInvalidFrame = ~static_cast<FrameId>(0);

// Index of a tier within a HostMemory. By convention, tier 0 is FMEM
// (fast) and tier 1 is SMEM (slow); three-tier setups add tier 2, the far
// swap tier (compressed RAM / SSD, see src/swap). Two-tier hosts never see
// kSwapTier: every swap path is gated on num_tiers() > kSwapTier.
using TierIndex = int;
inline constexpr TierIndex kFmemTier = 0;
inline constexpr TierIndex kSmemTier = 1;
inline constexpr TierIndex kSwapTier = 2;

class HostMemory {
 public:
  explicit HostMemory(std::vector<TierSpec> tiers);

  int num_tiers() const { return static_cast<int>(tiers_.size()); }
  MemoryTier& tier(TierIndex t) { return tiers_[static_cast<size_t>(t)]; }
  const MemoryTier& tier(TierIndex t) const { return tiers_[static_cast<size_t>(t)]; }

  // Allocates one frame from tier `t`; nullopt when the tier is exhausted.
  std::optional<FrameId> Allocate(TierIndex t);
  void Free(FrameId frame);

  // Inline: called once per memory access on the hot path; with 2-3 tiers
  // the range scan is a couple of compares.
  TierIndex TierOf(FrameId frame) const {
    DEMETER_CHECK_LT(frame, total_frames_);
    for (size_t i = 0; i < states_.size(); ++i) {
      const TierState& state = states_[i];
      if (frame >= state.base && frame < state.base + state.num_frames) {
        return static_cast<TierIndex>(i);
      }
    }
    DEMETER_CHECK(false) << "frame " << frame << " not in any tier";
    return -1;
  }

  // True when `frame` is currently handed out by its tier's allocator.
  bool IsAllocated(FrameId frame) const;

  // ---- hwpoison (uncorrectable memory errors) -----------------------------
  // Marks an allocated frame as poisoned: it leaves the allocator for good
  // (never re-enters the free list) and its token is destroyed. The caller
  // (hypervisor MCE handler) is responsible for unmapping it first.
  void Poison(FrameId frame);
  bool IsPoisoned(FrameId frame) const;
  uint64_t PoisonedPages(TierIndex t) const;

  // ---- capacity hot-shrink (co-tenant pressure) ---------------------------
  // Carves up to `max_frames` free frames out of tier `t` (they become
  // unallocatable until restored); returns the number carved. RestoreCarved
  // returns every carved frame, reproducing the exact pre-carve free-list
  // order so a shrink window that never forces an eviction is invisible to
  // later allocation patterns.
  uint64_t CarveFree(TierIndex t, uint64_t max_frames);
  void RestoreCarved(TierIndex t);
  uint64_t CarvedPages(TierIndex t) const;

  uint64_t CapacityPages(TierIndex t) const;
  uint64_t FreePages(TierIndex t) const;
  // Frames currently handed out to mappings: capacity minus free minus
  // poisoned minus carved. The invariant checker asserts EPT-mapped counts
  // equal this, so offline frames must not be counted as "used".
  uint64_t UsedPages(TierIndex t) const;

  // Contents token of a frame (logical page data identity).
  uint64_t ReadToken(FrameId frame) const;
  void WriteToken(FrameId frame, uint64_t token);

  // Total frames across all tiers.
  uint64_t total_frames() const { return total_frames_; }

 private:
  struct TierState {
    FrameId base = 0;
    uint64_t num_frames = 0;
    std::vector<FrameId> free_list;  // LIFO.
    std::vector<bool> allocated;
    std::vector<bool> poisoned;
    uint64_t poisoned_count = 0;
    std::vector<FrameId> carved;  // Stack of frames removed by CarveFree.
  };

  std::vector<MemoryTier> tiers_;
  std::vector<TierState> states_;
  std::vector<uint64_t> tokens_;
  uint64_t total_frames_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_MEM_HOST_MEMORY_H_
