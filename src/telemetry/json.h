// Minimal deterministic JSON emission helpers shared by the telemetry layer
// and the runner's result sinks.
//
// All output is append-to-string: no allocation surprises, no locale
// dependence, and fixed float formatting (%.9g) so identical inputs always
// serialize to identical bytes — the property the runner's cross---jobs
// determinism guarantee rests on.

#ifndef DEMETER_SRC_TELEMETRY_JSON_H_
#define DEMETER_SRC_TELEMETRY_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace demeter {

// Appends `s` with JSON string escaping (quotes, backslash, control chars).
void AppendJsonEscaped(std::string& out, std::string_view s);

// Appends `"key":` (key must not need escaping — ASCII identifiers/paths).
void AppendJsonKey(std::string& out, std::string_view key);

// Appends `"key":"value"` with the value escaped.
void AppendJsonStr(std::string& out, std::string_view key, std::string_view value);

// Appends `"key":123`.
void AppendJsonU64(std::string& out, std::string_view key, uint64_t value);

// Appends `"key":1.5` with fixed %.9g formatting: deterministic for a given
// build, compact, and more precision than any simulated metric is
// meaningful to.
void AppendJsonF64(std::string& out, std::string_view key, double value);

}  // namespace demeter

#endif  // DEMETER_SRC_TELEMETRY_JSON_H_
