#include "src/telemetry/metrics.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/telemetry/json.h"

namespace demeter {
namespace {

// Names are slash-separated paths of lowercase identifiers; rejecting
// anything else keeps serialized keys escape-free and greppable.
bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '-' ||
         c == '.' || c == '/';
}

void CheckName(std::string_view name) {
  DEMETER_CHECK(!name.empty()) << "empty metric name";
  DEMETER_CHECK(name.front() != '/' && name.back() != '/') << "metric name '" << std::string(name)
                                                           << "' has a leading/trailing slash";
  for (char c : name) {
    DEMETER_CHECK(ValidNameChar(c))
        << "metric name '" << std::string(name) << "' has invalid character '" << c << "'";
  }
}

uint64_t SaturatingSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kDistribution:
      return "distribution";
  }
  return "?";
}

DistributionSummary DistributionSummary::FromHistogram(const Histogram& histogram) {
  DistributionSummary s;
  s.count = histogram.count();
  s.sum = histogram.sum();
  s.min = histogram.min();
  s.max = histogram.max();
  s.mean = histogram.Mean();
  s.p50 = histogram.Percentile(50);
  s.p90 = histogram.Percentile(90);
  s.p99 = histogram.Percentile(99);
  s.p999 = histogram.Percentile(99.9);
  return s;
}

// ---- MetricSnapshot ---------------------------------------------------------

MetricSnapshot::MetricSnapshot(std::vector<MetricSample> samples)
    : samples_(std::move(samples)) {
  for (size_t i = 1; i < samples_.size(); ++i) {
    DEMETER_CHECK_LT(samples_[i - 1].name, samples_[i].name)
        << "snapshot samples not sorted/unique";
  }
}

const MetricSample* MetricSnapshot::Find(std::string_view name) const {
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), name,
      [](const MetricSample& s, std::string_view n) { return s.name < n; });
  return it != samples_.end() && it->name == name ? &*it : nullptr;
}

uint64_t MetricSnapshot::CounterValue(std::string_view name, uint64_t fallback) const {
  const MetricSample* s = Find(name);
  return s != nullptr && s->kind == MetricKind::kCounter ? s->counter : fallback;
}

MetricSnapshot MetricSnapshot::Diff(const MetricSnapshot& earlier) const {
  std::vector<MetricSample> out;
  out.reserve(samples_.size());
  for (const MetricSample& sample : samples_) {
    MetricSample d = sample;
    const MetricSample* base = earlier.Find(sample.name);
    if (base != nullptr && base->kind == sample.kind) {
      switch (sample.kind) {
        case MetricKind::kCounter:
          d.counter = SaturatingSub(sample.counter, base->counter);
          break;
        case MetricKind::kGauge:
          break;  // Gauges are levels, not accumulators: keep current.
        case MetricKind::kDistribution:
          d.distribution.count = SaturatingSub(sample.distribution.count,
                                               base->distribution.count);
          d.distribution.sum = SaturatingSub(sample.distribution.sum, base->distribution.sum);
          // min/max/mean/quantiles describe the full population; a bucket
          // subtraction would be needed for interval quantiles, which the
          // summary no longer carries. Keep current values.
          break;
      }
    }
    out.push_back(std::move(d));
  }
  return MetricSnapshot(std::move(out));
}

MetricSnapshot MetricSnapshot::FilterPrefix(std::string_view prefix, bool strip) const {
  std::vector<MetricSample> out;
  for (const MetricSample& sample : samples_) {
    if (sample.name.size() < prefix.size() ||
        std::string_view(sample.name).substr(0, prefix.size()) != prefix) {
      continue;
    }
    MetricSample kept = sample;
    if (strip) {
      kept.name.erase(0, prefix.size());
      // Also drop a separator left at the front ("vm0/" given prefix "vm0").
      if (!kept.name.empty() && kept.name.front() == '/') {
        kept.name.erase(0, 1);
      }
    }
    out.push_back(std::move(kept));
  }
  return MetricSnapshot(std::move(out));
}

void MetricSnapshot::AppendJson(std::string& out) const {
  out += '{';
  bool first = true;
  for (const MetricSample& sample : samples_) {
    if (!first) {
      out += ',';
    }
    first = false;
    switch (sample.kind) {
      case MetricKind::kCounter:
        AppendJsonU64(out, sample.name, sample.counter);
        break;
      case MetricKind::kGauge:
        AppendJsonF64(out, sample.name, sample.gauge);
        break;
      case MetricKind::kDistribution: {
        AppendJsonKey(out, sample.name);
        out += '{';
        const DistributionSummary& d = sample.distribution;
        AppendJsonU64(out, "count", d.count);
        out += ',';
        AppendJsonU64(out, "sum", d.sum);
        out += ',';
        AppendJsonU64(out, "min", d.min);
        out += ',';
        AppendJsonU64(out, "max", d.max);
        out += ',';
        AppendJsonF64(out, "mean", d.mean);
        out += ',';
        AppendJsonU64(out, "p50", d.p50);
        out += ',';
        AppendJsonU64(out, "p90", d.p90);
        out += ',';
        AppendJsonU64(out, "p99", d.p99);
        out += ',';
        AppendJsonU64(out, "p999", d.p999);
        out += '}';
        break;
      }
    }
  }
  out += '}';
}

std::string MetricSnapshot::ToJson() const {
  std::string out;
  AppendJson(out);
  return out;
}

// ---- MetricRegistry ---------------------------------------------------------

MetricRegistry::Cell& MetricRegistry::NewCell(std::string_view name, MetricKind kind) {
  CheckName(name);
  auto [it, inserted] = cells_.try_emplace(std::string(name));
  if (!inserted) {
    DEMETER_CHECK(false) << "metric '" << std::string(name) << "' already registered as "
                         << MetricKindName(it->second.kind);
  }
  it->second.kind = kind;
  return it->second;
}

uint64_t& MetricRegistry::Counter(std::string_view name) {
  const auto it = cells_.find(name);
  if (it != cells_.end()) {
    DEMETER_CHECK(it->second.kind == MetricKind::kCounter &&
                  it->second.ext_counter == nullptr && !it->second.fn_counter)
        << "metric '" << std::string(name) << "' is not an owned counter";
    return it->second.counter;
  }
  return NewCell(name, MetricKind::kCounter).counter;
}

double& MetricRegistry::Gauge(std::string_view name) {
  const auto it = cells_.find(name);
  if (it != cells_.end()) {
    DEMETER_CHECK(it->second.kind == MetricKind::kGauge && it->second.ext_gauge == nullptr &&
                  !it->second.fn_gauge)
        << "metric '" << std::string(name) << "' is not an owned gauge";
    return it->second.gauge;
  }
  return NewCell(name, MetricKind::kGauge).gauge;
}

Histogram& MetricRegistry::Distribution(std::string_view name) {
  const auto it = cells_.find(name);
  if (it != cells_.end()) {
    DEMETER_CHECK(it->second.kind == MetricKind::kDistribution &&
                  it->second.ext_distribution == nullptr)
        << "metric '" << std::string(name) << "' is not an owned distribution";
    return *it->second.distribution;
  }
  Cell& cell = NewCell(name, MetricKind::kDistribution);
  cell.distribution = std::make_unique<Histogram>();
  return *cell.distribution;
}

void MetricRegistry::RegisterCounter(std::string_view name, const uint64_t* cell) {
  DEMETER_CHECK(cell != nullptr);
  NewCell(name, MetricKind::kCounter).ext_counter = cell;
}

void MetricRegistry::RegisterCounterFn(std::string_view name, std::function<uint64_t()> read) {
  DEMETER_CHECK(read != nullptr);
  NewCell(name, MetricKind::kCounter).fn_counter = std::move(read);
}

void MetricRegistry::RegisterGauge(std::string_view name, const double* cell) {
  DEMETER_CHECK(cell != nullptr);
  NewCell(name, MetricKind::kGauge).ext_gauge = cell;
}

void MetricRegistry::RegisterGaugeFn(std::string_view name, std::function<double()> read) {
  DEMETER_CHECK(read != nullptr);
  NewCell(name, MetricKind::kGauge).fn_gauge = std::move(read);
}

void MetricRegistry::RegisterDistribution(std::string_view name, const Histogram* histogram) {
  DEMETER_CHECK(histogram != nullptr);
  NewCell(name, MetricKind::kDistribution).ext_distribution = histogram;
}

bool MetricRegistry::Contains(std::string_view name) const {
  return cells_.find(name) != cells_.end();
}

MetricSample MetricRegistry::SampleCell(const std::string& name, const Cell& cell) {
  MetricSample sample;
  sample.name = name;
  sample.kind = cell.kind;
  switch (cell.kind) {
    case MetricKind::kCounter:
      sample.counter = cell.fn_counter                   ? cell.fn_counter()
                       : cell.ext_counter != nullptr     ? *cell.ext_counter
                                                         : cell.counter;
      break;
    case MetricKind::kGauge:
      sample.gauge = cell.fn_gauge                 ? cell.fn_gauge()
                     : cell.ext_gauge != nullptr   ? *cell.ext_gauge
                                                   : cell.gauge;
      break;
    case MetricKind::kDistribution: {
      const Histogram* h =
          cell.ext_distribution != nullptr ? cell.ext_distribution : cell.distribution.get();
      sample.distribution = DistributionSummary::FromHistogram(*h);
      break;
    }
  }
  return sample;
}

MetricSnapshot MetricRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  samples.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) {
    samples.push_back(SampleCell(name, cell));
  }
  return MetricSnapshot(std::move(samples));
}

MetricSnapshot MetricRegistry::SnapshotPrefix(std::string_view prefix, bool strip) const {
  std::vector<MetricSample> samples;
  for (auto it = cells_.lower_bound(prefix); it != cells_.end(); ++it) {
    const std::string_view name = it->first;
    if (name.substr(0, prefix.size()) != prefix) {
      break;  // Sorted map: past the last name sharing the prefix.
    }
    MetricSample sample = SampleCell(it->first, it->second);
    if (strip) {
      sample.name.erase(0, prefix.size());
      // Also drop a separator left at the front ("vm0/" given prefix "vm0").
      if (!sample.name.empty() && sample.name.front() == '/') {
        sample.name.erase(0, 1);
      }
    }
    samples.push_back(std::move(sample));
  }
  return MetricSnapshot(std::move(samples));
}

// ---- MetricScope ------------------------------------------------------------

MetricScope::MetricScope(MetricRegistry* registry, std::string prefix)
    : registry_(registry), prefix_(std::move(prefix)) {
  DEMETER_CHECK(registry != nullptr);
  while (!prefix_.empty() && prefix_.back() == '/') {
    prefix_.pop_back();
  }
}

MetricScope MetricScope::Sub(std::string_view name) const {
  return MetricScope(registry_, Name(name));
}

std::string MetricScope::Name(std::string_view name) const {
  if (prefix_.empty()) {
    return std::string(name);
  }
  std::string full = prefix_;
  full += '/';
  full += name;
  return full;
}

uint64_t& MetricScope::Counter(std::string_view name) const {
  return registry_->Counter(Name(name));
}

double& MetricScope::Gauge(std::string_view name) const { return registry_->Gauge(Name(name)); }

Histogram& MetricScope::Distribution(std::string_view name) const {
  return registry_->Distribution(Name(name));
}

void MetricScope::RegisterCounter(std::string_view name, const uint64_t* cell) const {
  registry_->RegisterCounter(Name(name), cell);
}

void MetricScope::RegisterCounterFn(std::string_view name, std::function<uint64_t()> read) const {
  registry_->RegisterCounterFn(Name(name), std::move(read));
}

void MetricScope::RegisterGauge(std::string_view name, const double* cell) const {
  registry_->RegisterGauge(Name(name), cell);
}

void MetricScope::RegisterGaugeFn(std::string_view name, std::function<double()> read) const {
  registry_->RegisterGaugeFn(Name(name), std::move(read));
}

void MetricScope::RegisterDistribution(std::string_view name, const Histogram* histogram) const {
  registry_->RegisterDistribution(Name(name), histogram);
}

MetricSnapshot RebaseMetricSnapshot(const MetricSnapshot& snapshot, std::string_view host_scope) {
  std::vector<MetricSample> samples;
  samples.reserve(snapshot.size());
  for (const MetricSample& sample : snapshot.samples()) {
    MetricSample rebased = sample;
    std::string_view rest = sample.name;
    if (rest.rfind("host/", 0) == 0) {
      rest.remove_prefix(5);
    }
    rebased.name = std::string(host_scope);
    rebased.name += '/';
    rebased.name += rest;
    samples.push_back(std::move(rebased));
  }
  // Stripping "host/" from some names but not others breaks sortedness
  // ("host/x" and "vm0/x" both land under the scope), so re-sort.
  std::stable_sort(samples.begin(), samples.end(),
                   [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return MetricSnapshot(std::move(samples));
}

MetricSnapshot MergeMetricSnapshots(std::vector<MetricSnapshot> parts) {
  std::vector<MetricSample> samples;
  size_t total = 0;
  for (const MetricSnapshot& part : parts) {
    total += part.size();
  }
  samples.reserve(total);
  for (const MetricSnapshot& part : parts) {
    samples.insert(samples.end(), part.samples().begin(), part.samples().end());
  }
  std::stable_sort(samples.begin(), samples.end(),
                   [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return MetricSnapshot(std::move(samples));
}

}  // namespace demeter
