// Simulated-time tracer: records spans and instant events (TLB full
// flushes, PEBS PMI drains, migration batches, balloon inflate/deflate,
// QoS rounds) against virtual-time timestamps, and exports them as Chrome
// trace_event JSON (chrome://tracing / Perfetto "JSON Object Format":
// {"traceEvents":[...]}).
//
// The tracer is an observer only: whether it is enabled MUST NOT influence
// simulation behaviour. Event pids are VM ids within one simulation; the
// Chrome exporter re-bases each simulation's events into its own pid block
// so one file can hold a whole sweep. Recording is bounded (max_events);
// overflow drops events and counts them rather than growing without bound.
//
// Not thread-safe: one Tracer per Machine, used single-threaded; the
// parallel runner gives every job its own and merges in spec order, which
// keeps trace files deterministic across --jobs values.

#ifndef DEMETER_SRC_TELEMETRY_TRACER_H_
#define DEMETER_SRC_TELEMETRY_TRACER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/units.h"

namespace demeter {

struct TraceEvent {
  std::string name;
  const char* category = "";  // Static string: categories are compile-time.
  char phase = 'i';           // 'X' complete span, 'i' instant.
  Nanos ts = 0;
  double dur_ns = 0.0;  // 'X' only.
  int pid = 0;          // VM id within the owning simulation.
  int tid = 0;          // vCPU id, or 0 for VM-level events.
  // Pre-rendered JSON object body for "args" (no surrounding braces), e.g.
  // "\"pages\":42,\"node\":1". Empty = no args.
  std::string args;
};

// Builder for TraceEvent::args with the fixed formatting the JSON layer
// uses everywhere: TraceArgs().Add("pages", n).Add("node", 1).str().
class TraceArgs {
 public:
  TraceArgs& Add(const char* key, uint64_t value);
  TraceArgs& Add(const char* key, double value);
  TraceArgs& Add(const char* key, const char* value);
  std::string str() && { return std::move(out_); }
  const std::string& str() const& { return out_; }

 private:
  std::string out_;
};

class Tracer {
 public:
  static constexpr size_t kDefaultMaxEvents = 1 << 20;

  explicit Tracer(size_t max_events = kDefaultMaxEvents);

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Both record only when enabled; otherwise they are cheap no-ops, so call
  // sites need no guards beyond avoiding expensive argument construction.
  void Instant(const char* category, std::string name, Nanos ts, int pid, int tid,
               std::string args = {});
  void Span(const char* category, std::string name, Nanos ts, double dur_ns, int pid, int tid,
            std::string args = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> TakeEvents();
  uint64_t dropped() const { return dropped_; }
  void Clear();

 private:
  void Push(TraceEvent event);

  bool enabled_ = false;
  size_t max_events_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

// One simulation's worth of events under a display name (e.g. the
// experiment spec name). Used to merge a sweep into one trace file.
struct NamedTrace {
  std::string name;
  const std::vector<TraceEvent>* events = nullptr;
};

// Pid block size per NamedTrace in the merged file: trace i's VM p becomes
// pid i * kTracePidStride + p.
inline constexpr int kTracePidStride = 100;

// Serializes to Chrome trace_event JSON with process_name metadata per
// (trace, pid) so the viewer labels each VM. Timestamps convert to the
// format's microseconds with fixed 3-decimal formatting (ns resolution).
std::string ChromeTraceJson(const std::vector<NamedTrace>& traces);

// Writes ChromeTraceJson to `path` (truncates); aborts if unwritable.
void WriteChromeTraceFile(const std::string& path, const std::vector<NamedTrace>& traces);

}  // namespace demeter

#endif  // DEMETER_SRC_TELEMETRY_TRACER_H_
