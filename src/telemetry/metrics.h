// Unified metrics layer: every per-subsystem counter, gauge, and latency
// distribution in the simulator hangs off one MetricRegistry under a
// hierarchical slash-separated name ("vm0/tlb/full_flushes",
// "host/hyper/ept_populates"), replacing the N divergent ad-hoc stats
// structs as the export path for experiment results.
//
// Two binding styles coexist:
//   * owned metrics    — the registry is the storage; callers mutate the
//     returned reference (Counter/Gauge/Distribution).
//   * registered views — the subsystem keeps its existing stats struct (the
//     hot path stays a plain `++field`), and registers a pointer or a read
//     callback; snapshots read through it. This is how the legacy structs
//     (TlbStats, VmStats, PebsUnit::Stats, BalloonStats, policy counters)
//     were migrated without touching their increment sites: the old
//     accessor APIs remain as thin views over the same cells the registry
//     exports.
//
// Determinism guarantee: a snapshot is an ordered list sorted by metric
// name (std::map iteration), and serialization uses fixed formatting, so
// identical simulations produce byte-identical snapshot JSON regardless of
// registration order, --jobs value, or platform.

#ifndef DEMETER_SRC_TELEMETRY_METRICS_H_
#define DEMETER_SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/histogram.h"

namespace demeter {

enum class MetricKind { kCounter, kGauge, kDistribution };

const char* MetricKindName(MetricKind kind);

// Point-in-time summary of a Histogram-backed distribution.
struct DistributionSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;

  static DistributionSummary FromHistogram(const Histogram& histogram);
};

// One metric at snapshot time. Exactly the field matching `kind` is
// meaningful.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;
  double gauge = 0.0;
  DistributionSummary distribution;
};

// Immutable, name-sorted capture of a registry (or a filtered part of one).
class MetricSnapshot {
 public:
  MetricSnapshot() = default;
  // `samples` must already be sorted by name (the registry guarantees it).
  explicit MetricSnapshot(std::vector<MetricSample> samples);

  const std::vector<MetricSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }

  // Sample by exact name, or nullptr.
  const MetricSample* Find(std::string_view name) const;
  // Counter value by name; `fallback` when absent or not a counter.
  uint64_t CounterValue(std::string_view name, uint64_t fallback = 0) const;

  // Delta since `earlier`: counters and distribution count/sum subtract
  // (saturating at zero — a reset metric reads as zero progress, never as
  // an underflowed giant); gauges and distribution min/max/quantiles keep
  // their current values, since they are not accumulative. Metrics absent
  // from `earlier` are treated as having started at zero.
  MetricSnapshot Diff(const MetricSnapshot& earlier) const;

  // Samples whose name starts with `prefix`; when `strip` the prefix is
  // removed from the returned names (sortedness is preserved either way
  // because every retained name shares the same prefix).
  MetricSnapshot FilterPrefix(std::string_view prefix, bool strip = true) const;

  // Stable-ordered JSON object: {"a/b":1,"c":2.5,"d":{"count":...}}.
  // Counters are integers, gauges %.9g floats, distributions nested
  // objects with count/sum/min/max/mean/p50/p90/p99/p999.
  void AppendJson(std::string& out) const;
  std::string ToJson() const;

 private:
  std::vector<MetricSample> samples_;
};

// The registry. Not thread-safe: each simulation (Machine) owns one and
// runs single-threaded; the parallel runner gives every job its own.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;
  // Movable so sharded owners can keep registries in contiguous storage.
  // Cell addresses are map nodes, so references handed out before the move
  // stay valid afterwards.
  MetricRegistry(MetricRegistry&&) = default;
  MetricRegistry& operator=(MetricRegistry&&) = default;

  // ---- Owned metrics (registry is the storage) -------------------------
  // Get-or-create; the returned reference is stable for the registry's
  // lifetime. Re-requesting an existing name with a different kind aborts.
  uint64_t& Counter(std::string_view name);
  double& Gauge(std::string_view name);
  Histogram& Distribution(std::string_view name);

  // ---- Registered views over subsystem-owned stats ---------------------
  // The pointed-to cell (or callback captures) must outlive every
  // Snapshot() call. Registering an already-bound name aborts.
  void RegisterCounter(std::string_view name, const uint64_t* cell);
  void RegisterCounterFn(std::string_view name, std::function<uint64_t()> read);
  void RegisterGauge(std::string_view name, const double* cell);
  void RegisterGaugeFn(std::string_view name, std::function<double()> read);
  void RegisterDistribution(std::string_view name, const Histogram* histogram);

  size_t size() const { return cells_.size(); }
  bool Contains(std::string_view name) const;

  // Reads every metric (through registered views where bound) into a
  // name-sorted snapshot.
  MetricSnapshot Snapshot() const;

  // Snapshot of only the metrics whose name starts with `prefix`, read via a
  // range scan over the sorted map — O(matches + log n), never the whole
  // registry. When `strip` the prefix (and a following '/') is removed from
  // the returned names. Equivalent to Snapshot().FilterPrefix(prefix, strip).
  MetricSnapshot SnapshotPrefix(std::string_view prefix, bool strip = true) const;

 private:
  struct Cell {
    MetricKind kind = MetricKind::kCounter;
    // Owned storage (used when no external source is bound).
    uint64_t counter = 0;
    double gauge = 0.0;
    std::unique_ptr<Histogram> distribution;
    // External sources; at most one is set.
    const uint64_t* ext_counter = nullptr;
    const double* ext_gauge = nullptr;
    const Histogram* ext_distribution = nullptr;
    std::function<uint64_t()> fn_counter;
    std::function<double()> fn_gauge;
  };

  Cell& NewCell(std::string_view name, MetricKind kind);
  // Reads one cell (through its registered view where bound) into a sample.
  static MetricSample SampleCell(const std::string& name, const Cell& cell);

  // std::map: stable cell addresses (node-based) and name-sorted iteration,
  // which is what makes snapshots deterministic.
  std::map<std::string, Cell, std::less<>> cells_;
};

// Prefix-scoped handle: Scope("vm0").Sub("tlb").Counter("hits") touches
// "vm0/tlb/hits". Cheap to copy; does not own the registry.
class MetricScope {
 public:
  MetricScope(MetricRegistry* registry, std::string prefix);

  MetricScope Sub(std::string_view name) const;
  const std::string& prefix() const { return prefix_; }
  MetricRegistry& registry() const { return *registry_; }

  // Full name under this scope's prefix.
  std::string Name(std::string_view name) const;

  uint64_t& Counter(std::string_view name) const;
  double& Gauge(std::string_view name) const;
  Histogram& Distribution(std::string_view name) const;
  void RegisterCounter(std::string_view name, const uint64_t* cell) const;
  void RegisterCounterFn(std::string_view name, std::function<uint64_t()> read) const;
  void RegisterGauge(std::string_view name, const double* cell) const;
  void RegisterGaugeFn(std::string_view name, std::function<double()> read) const;
  void RegisterDistribution(std::string_view name, const Histogram* histogram) const;

 private:
  MetricRegistry* registry_;
  std::string prefix_;  // Without trailing slash; may be empty (root).
};

// ---- multi-host composition -----------------------------------------------
// Re-namespaces a single-machine snapshot under a host scope: the host tree
// "host/X" becomes "<host_scope>/X" (the scope replaces the generic "host"),
// and every other name N (the per-VM "vm<i>/..." trees) becomes
// "<host_scope>/N". Names are re-sorted, so the result is a valid snapshot.
MetricSnapshot RebaseMetricSnapshot(const MetricSnapshot& snapshot, std::string_view host_scope);

// Concatenates several snapshots into one name-sorted snapshot. Callers keep
// names disjoint (distinct host scopes); equal names sort stably in input
// order.
MetricSnapshot MergeMetricSnapshots(std::vector<MetricSnapshot> parts);

}  // namespace demeter

#endif  // DEMETER_SRC_TELEMETRY_METRICS_H_
