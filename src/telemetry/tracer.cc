#include "src/telemetry/tracer.h"

#include <map>
#include <utility>

#include "src/base/logging.h"
#include "src/telemetry/json.h"

namespace demeter {
namespace {

// trace_event timestamps are microseconds; emit with ns resolution.
void AppendTraceTs(std::string& out, std::string_view key, double ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1000.0);
  AppendJsonKey(out, key);
  out += buf;
}

void AppendEvent(std::string& out, const TraceEvent& event, int pid_base) {
  out += '{';
  AppendJsonStr(out, "name", event.name);
  out += ',';
  AppendJsonStr(out, "cat", event.category[0] != '\0' ? event.category : "sim");
  out += ",\"ph\":\"";
  out += event.phase;
  out += "\",";
  AppendTraceTs(out, "ts", static_cast<double>(event.ts));
  out += ',';
  if (event.phase == 'X') {
    AppendTraceTs(out, "dur", event.dur_ns);
    out += ',';
  }
  if (event.phase == 'i') {
    out += "\"s\":\"t\",";  // Instant scope: thread.
  }
  AppendJsonU64(out, "pid", static_cast<uint64_t>(pid_base + event.pid));
  out += ',';
  AppendJsonU64(out, "tid", static_cast<uint64_t>(event.tid));
  if (!event.args.empty()) {
    out += ",\"args\":{";
    out += event.args;
    out += '}';
  }
  out += '}';
}

void AppendProcessName(std::string& out, int pid, const std::string& name) {
  out += "{\"name\":\"process_name\",\"ph\":\"M\",";
  AppendJsonU64(out, "pid", static_cast<uint64_t>(pid));
  out += ",\"tid\":0,\"args\":{";
  AppendJsonStr(out, "name", name);
  out += "}}";
}

}  // namespace

TraceArgs& TraceArgs::Add(const char* key, uint64_t value) {
  if (!out_.empty()) {
    out_ += ',';
  }
  AppendJsonU64(out_, key, value);
  return *this;
}

TraceArgs& TraceArgs::Add(const char* key, double value) {
  if (!out_.empty()) {
    out_ += ',';
  }
  AppendJsonF64(out_, key, value);
  return *this;
}

TraceArgs& TraceArgs::Add(const char* key, const char* value) {
  if (!out_.empty()) {
    out_ += ',';
  }
  AppendJsonStr(out_, key, value);
  return *this;
}

Tracer::Tracer(size_t max_events) : max_events_(max_events) {}

void Tracer::Instant(const char* category, std::string name, Nanos ts, int pid, int tid,
                     std::string args) {
  if (!enabled_) {
    return;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'i';
  event.ts = ts;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  Push(std::move(event));
}

void Tracer::Span(const char* category, std::string name, Nanos ts, double dur_ns, int pid,
                  int tid, std::string args) {
  if (!enabled_) {
    return;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.ts = ts;
  event.dur_ns = dur_ns;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  Push(std::move(event));
}

void Tracer::Push(TraceEvent event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::TakeEvents() {
  std::vector<TraceEvent> out = std::move(events_);
  events_.clear();
  return out;
}

void Tracer::Clear() {
  events_.clear();
  dropped_ = 0;
}

std::string ChromeTraceJson(const std::vector<NamedTrace>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (size_t t = 0; t < traces.size(); ++t) {
    const NamedTrace& trace = traces[t];
    DEMETER_CHECK(trace.events != nullptr);
    const int pid_base = static_cast<int>(t) * kTracePidStride;

    // Name every pid seen in this trace "<trace name>/vm<pid>" (sorted for
    // deterministic output).
    std::map<int, bool> pids;
    for (const TraceEvent& event : *trace.events) {
      pids.emplace(event.pid, true);
    }
    for (const auto& [pid, unused] : pids) {
      (void)unused;
      if (!first) {
        out += ',';
      }
      first = false;
      AppendProcessName(out, pid_base + pid,
                        trace.name + "/vm" + std::to_string(pid));
    }
    for (const TraceEvent& event : *trace.events) {
      DEMETER_CHECK_LT(event.pid, kTracePidStride) << "trace pid exceeds merge stride";
      if (!first) {
        out += ',';
      }
      first = false;
      AppendEvent(out, event, pid_base);
    }
  }
  out += "]}";
  return out;
}

void WriteChromeTraceFile(const std::string& path, const std::vector<NamedTrace>& traces) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  DEMETER_CHECK(out != nullptr) << "cannot open " << path << " for writing";
  const std::string json = ChromeTraceJson(traces);
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
}

}  // namespace demeter
