#include "src/telemetry/json.h"

#include <cinttypes>
#include <cstdio>

namespace demeter {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendJsonKey(std::string& out, std::string_view key) {
  out += '"';
  out += key;
  out += "\":";
}

void AppendJsonStr(std::string& out, std::string_view key, std::string_view value) {
  AppendJsonKey(out, key);
  out += '"';
  AppendJsonEscaped(out, value);
  out += '"';
}

void AppendJsonU64(std::string& out, std::string_view key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  AppendJsonKey(out, key);
  out += buf;
}

void AppendJsonF64(std::string& out, std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  AppendJsonKey(out, key);
  out += buf;
}

}  // namespace demeter
