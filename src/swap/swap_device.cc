#include "src/swap/swap_device.h"

#include <algorithm>

#include "src/base/logging.h"

namespace demeter {

SwapDevice::SwapDevice(const SwapDeviceConfig& config, FaultInjector* injector)
    : config_(config), injector_(injector), rng_(config.seed) {}

SwapDevice::VmStats& SwapDevice::vm_stats(int vm) {
  DEMETER_CHECK_GE(vm, 0);
  while (vms_.size() <= static_cast<size_t>(vm)) {
    vms_.push_back(std::make_unique<VmStats>());
  }
  return *vms_[static_cast<size_t>(vm)];
}

double SwapDevice::DrawLatency(double mean_ns) {
  const double jitter = config_.latency_jitter;
  return mean_ns * (1.0 + jitter * (2.0 * rng_.NextDouble() - 1.0));
}

int SwapDevice::DrawRetries(int vm) {
  if (injector_ == nullptr) {
    return 0;
  }
  int failed = 0;
  while (failed < config_.max_retries &&
         injector_->ShouldInject(FaultSite::kSwapFail, vm)) {
    ++failed;
  }
  return failed;
}

double SwapDevice::SlotStore(FrameId frame, int vm, Nanos now) {
  DEMETER_CHECK(slots_.count(frame) == 0);

  // Retire writebacks that completed before `now`; they no longer occupy
  // queue entries.
  const double now_ns = static_cast<double>(now);
  while (!pending_.empty() && pending_.front() <= now_ns) {
    pending_.pop_front();
  }

  // Bounded queue: with queue_depth writebacks in flight the demotion
  // stalls until the oldest drains, and the stall is returned to be charged
  // to the migration.
  double stall_ns = 0.0;
  if (config_.queue_depth > 0 && pending_.size() >= config_.queue_depth) {
    stall_ns = pending_.front() - now_ns;
    pending_.pop_front();
    ++writeback_stalls_;
    writeback_stall_ns_ += static_cast<uint64_t>(stall_ns);
  }

  // The serial device starts this writeback when it is free; each injected
  // swapfail costs a full (wasted) write plus the retry backoff.
  const double write_ns = DrawLatency(config_.write_latency_ns);
  const int failed = DrawRetries(vm);
  const double backoff =
      static_cast<double>(injector_ != nullptr ? injector_->plan().swap_retry_backoff_ns : 0);
  const double start = std::max(now_ns + stall_ns, busy_until_ns_);
  const double done = start + write_ns + failed * (write_ns + backoff);
  busy_until_ns_ = done;
  pending_.push_back(done);

  slots_.emplace(frame, Slot{vm, done});
  ++stores_;
  retries_ += static_cast<uint64_t>(failed);
  peak_slots_ = std::max(peak_slots_, static_cast<uint64_t>(slots_.size()));
  VmStats& s = vm_stats(vm);
  ++s.stores;
  s.retries += static_cast<uint64_t>(failed);
  return stall_ns;
}

double SwapDevice::SlotLoad(FrameId frame, int vm, Nanos now) {
  auto it = slots_.find(frame);
  DEMETER_CHECK(it != slots_.end());
  const bool inflight = static_cast<double>(now) < it->second.writeback_done_ns;
  // The pending writeback entry stays in the queue either way: the serial
  // device has already committed to the write (wasted bandwidth when the
  // page is swapped back in first), it just no longer backs a slot.
  slots_.erase(it);

  ++loads_;
  VmStats& s = vm_stats(vm);
  ++s.loads;
  if (inflight) {
    // Contents still in the compressed staging buffer; no device read, no
    // rng draw (keeps the device stream untouched on this fast path).
    ++inflight_hits_;
    ++s.inflight_hits;
    return config_.inflight_hit_ns;
  }
  const double read_ns = DrawLatency(config_.read_latency_ns);
  const int failed = DrawRetries(vm);
  const double backoff =
      static_cast<double>(injector_ != nullptr ? injector_->plan().swap_retry_backoff_ns : 0);
  ++device_reads_;
  ++s.device_reads;
  retries_ += static_cast<uint64_t>(failed);
  s.retries += static_cast<uint64_t>(failed);
  return read_ns + failed * (read_ns + backoff);
}

void SwapDevice::SlotDrop(FrameId frame, int vm) {
  auto it = slots_.find(frame);
  if (it == slots_.end()) {
    return;
  }
  slots_.erase(it);
  ++drops_;
  ++vm_stats(vm).drops;
}

int SwapDevice::SlotOwner(FrameId frame) const {
  auto it = slots_.find(frame);
  return it == slots_.end() ? -1 : it->second.vm;
}

uint64_t SwapDevice::ActiveSlotsForVm(int vm) const {
  uint64_t count = 0;
  for (const auto& [frame, slot] : slots_) {
    if (slot.vm == vm) {
      ++count;
    }
  }
  return count;
}

bool SwapDevice::WritebackPending(FrameId frame, Nanos now) const {
  auto it = slots_.find(frame);
  return it != slots_.end() && static_cast<double>(now) < it->second.writeback_done_ns;
}

void SwapDevice::RegisterHostMetrics(MetricScope scope) {
  scope.RegisterCounter("stores", &stores_);
  scope.RegisterCounter("loads", &loads_);
  scope.RegisterCounter("inflight_hits", &inflight_hits_);
  scope.RegisterCounter("device_reads", &device_reads_);
  scope.RegisterCounter("writeback_stalls", &writeback_stalls_);
  scope.RegisterCounter("writeback_stall_ns", &writeback_stall_ns_);
  scope.RegisterCounter("retries", &retries_);
  scope.RegisterCounter("drops", &drops_);
  scope.RegisterCounter("peak_slots", &peak_slots_);
  scope.RegisterCounterFn("active_slots", [this]() { return ActiveSlots(); });
}

void SwapDevice::RegisterVmMetrics(MetricScope scope, int vm) {
  VmStats& s = vm_stats(vm);
  scope.RegisterCounter("stores", &s.stores);
  scope.RegisterCounter("loads", &s.loads);
  scope.RegisterCounter("inflight_hits", &s.inflight_hits);
  scope.RegisterCounter("device_reads", &s.device_reads);
  scope.RegisterCounter("retries", &s.retries);
  scope.RegisterCounter("drops", &s.drops);
}

}  // namespace demeter
