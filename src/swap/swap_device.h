// Far-tier swap backend: compressed-RAM/SSD device model with a bounded
// async writeback queue and per-frame slot accounting.
//
// The swap tier (kSwapTier) stores page contents like any other HostMemory
// tier, but sits behind a slow device: demoting a page into it enqueues an
// asynchronous writeback (the dirty contents drain to the device over
// simulated time), and swapping a page back in pays either a cheap
// in-flight-buffer hit — the writeback has not completed yet, so the
// contents are still in the compressed-RAM staging buffer — or a full
// device read with latency drawn from a seeded distribution.
//
// The device is modeled analytically rather than with EventQueue events: a
// single busy-until accumulator serializes writebacks, and each writeback's
// completion time is computed at enqueue. "Writeback pending at `now`" is
// then a pure comparison (`now < completion`), which keeps the model exact
// under the simulator's loosely-synchronized vCPU clocks and byte-identical
// across --jobs values. The queue is bounded: when `queue_depth` writebacks
// are in flight, a demotion stalls until the oldest completes, and the
// stall is charged to the demotion's migration cost.
//
// Slot lifecycle (the InvariantChecker cross-checks this against the
// HostMemory allocator): every allocated swap-tier frame has exactly one
// active slot, created when the frame is populated (SlotStore) and released
// on swap-in (SlotLoad) or frame free (SlotDrop, e.g. VM departure via
// ReclaimVm). No slot survives its frame.
//
// Fault hook: FaultSite::kSwapFail injects transient device I/O errors.
// A failed writeback attempt occupies the device for the full write and is
// retried after a backoff; a failed swap-in read is retried the same way.
// Both paths give up injecting after kMaxRetries and succeed (the fault is
// transient by definition — data is never lost).

#ifndef DEMETER_SRC_SWAP_SWAP_DEVICE_H_
#define DEMETER_SRC_SWAP_SWAP_DEVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/mem/host_memory.h"
#include "src/telemetry/metrics.h"

namespace demeter {

struct SwapDeviceConfig {
  // Writebacks in flight before demotions stall (bounded async queue).
  uint64_t queue_depth = 64;
  // Mean device latencies; per-operation draws are uniform in
  // mean * [1 - jitter, 1 + jitter] from the device's seeded stream.
  double write_latency_ns = 80'000.0;
  double read_latency_ns = 60'000.0;
  double latency_jitter = 0.5;
  // Swap-in cost when the page's writeback is still in flight: the
  // contents are read back from the compressed staging buffer.
  double inflight_hit_ns = 2'000.0;
  // Injected swapfail errors per operation before the device succeeds
  // regardless (transient faults never lose data).
  int max_retries = 4;
  uint64_t seed = 0;
};

class SwapDevice {
 public:
  // `injector` may be null (fault-free run); only FaultSite::kSwapFail is
  // consulted, on its own per-VM streams.
  SwapDevice(const SwapDeviceConfig& config, FaultInjector* injector);

  const SwapDeviceConfig& config() const { return config_; }

  // Creates the slot for `frame` (must not already have one) and enqueues
  // its async writeback at `now` on behalf of `vm`. Returns the stall in ns
  // the caller must charge to the demotion (non-zero only when the bounded
  // queue was full).
  double SlotStore(FrameId frame, int vm, Nanos now);

  // Swap-in: releases `frame`'s slot (must exist) and returns the device
  // cost in ns — the in-flight-buffer hit when the writeback is still
  // pending at `now`, else a full seeded device read (plus swapfail
  // retry backoffs when injected).
  double SlotLoad(FrameId frame, int vm, Nanos now);

  // Releases `frame`'s slot without a device read (frame freed under the
  // page, e.g. VM departure). No-op when the frame has no slot.
  void SlotDrop(FrameId frame, int vm);

  bool HasSlot(FrameId frame) const { return slots_.count(frame) != 0; }
  int SlotOwner(FrameId frame) const;  // VM id, or -1 when no slot.
  uint64_t ActiveSlots() const { return slots_.size(); }
  uint64_t ActiveSlotsForVm(int vm) const;

  // True when `frame`'s writeback has not completed by `now`.
  bool WritebackPending(FrameId frame, Nanos now) const;

  // Registers host-wide counters under `scope` (the harness passes
  // "host/swap") and per-VM counters ("vm<i>/swap").
  void RegisterHostMetrics(MetricScope scope);
  void RegisterVmMetrics(MetricScope scope, int vm);

 private:
  struct Slot {
    int vm = -1;
    double writeback_done_ns = 0.0;  // Completion time of the writeback.
  };
  struct VmStats {
    uint64_t stores = 0;         // Pages swapped out (slots created).
    uint64_t loads = 0;          // Pages swapped back in.
    uint64_t inflight_hits = 0;  // Swap-ins served from the staging buffer.
    uint64_t device_reads = 0;   // Swap-ins that paid the full device read.
    uint64_t retries = 0;        // swapfail retry attempts (both directions).
    uint64_t drops = 0;          // Slots released without a read.
  };

  VmStats& vm_stats(int vm);
  double DrawLatency(double mean_ns);
  // Failed attempts for one operation: 0 when no injector / no injection.
  int DrawRetries(int vm);

  SwapDeviceConfig config_;
  FaultInjector* injector_;  // Not owned; may be null.
  Rng rng_;

  std::unordered_map<FrameId, Slot> slots_;
  // Completion times of in-flight writebacks, ascending (the device is
  // serial, so each enqueue completes after every earlier one). Entries
  // whose time has passed are lazily popped on the next enqueue.
  std::deque<double> pending_;
  double busy_until_ns_ = 0.0;

  // Host-wide counters (registered views; hot path stays ++field).
  uint64_t stores_ = 0;
  uint64_t loads_ = 0;
  uint64_t inflight_hits_ = 0;
  uint64_t device_reads_ = 0;
  uint64_t writeback_stalls_ = 0;
  uint64_t writeback_stall_ns_ = 0;
  uint64_t retries_ = 0;
  uint64_t drops_ = 0;
  uint64_t peak_slots_ = 0;

  // unique_ptr elements keep counter addresses stable across growth (the
  // metric registry holds raw pointers into VmStats).
  std::vector<std::unique_ptr<VmStats>> vms_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_SWAP_SWAP_DEVICE_H_
