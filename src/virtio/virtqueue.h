// VirtIO virtqueue model.
//
// A virtqueue carries typed messages between a device (hypervisor side) and
// a driver (guest side) with asynchronous, event-driven delivery: pushing a
// message schedules the consumer callback after a notification latency
// (doorbell kick / interrupt injection). The Demeter balloon uses three
// queues (requests, completions, statistics), matching §3.3's "fully
// asynchronous architecture" built on VirtIO + workqueues + epoll.

#ifndef DEMETER_SRC_VIRTIO_VIRTQUEUE_H_
#define DEMETER_SRC_VIRTIO_VIRTQUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "src/base/logging.h"
#include "src/base/units.h"
#include "src/sim/event_queue.h"

namespace demeter {

struct VirtqueueStats {
  uint64_t pushed = 0;
  uint64_t delivered = 0;
  uint64_t kicks = 0;  // Doorbell notifications (VM exits / interrupts).
  uint64_t backpressure = 0;  // TryPush refusals with the ring at capacity.
};

// Default costs: a doorbell write causing a VM exit is ~4 us; interrupt
// injection into a running guest ~6 us end to end.
struct VirtqueueCosts {
  Nanos notify_latency_ns = 6000;
  double kick_cost_ns = 4000.0;  // Charged to the pusher.
};

template <typename Msg>
class Virtqueue {
 public:
  using Consumer = std::function<void(Msg msg, Nanos now)>;

  Virtqueue(EventQueue* events, VirtqueueCosts costs = VirtqueueCosts{})
      : events_(events), costs_(costs) {
    DEMETER_CHECK(events != nullptr);
  }

  void set_consumer(Consumer consumer) { consumer_ = std::move(consumer); }

  // Enqueues a message at virtual time `now`; the consumer runs at
  // now + notify_latency. Returns the CPU cost charged to the pusher.
  double Push(Msg msg, Nanos now) {
    ++stats_.pushed;
    ++stats_.kicks;
    pending_.push_back(std::move(msg));
    events_->Schedule(now + costs_.notify_latency_ns, [this](Nanos fire_time) {
      if (pending_.empty()) {
        return;  // Already drained by an earlier delivery batch.
      }
      Msg head = std::move(pending_.front());
      pending_.pop_front();
      ++stats_.delivered;
      if (consumer_) {
        consumer_(std::move(head), fire_time);
      }
    });
    return costs_.kick_cost_ns;
  }

  // Bounds the ring for fault experiments; 0 (the default) keeps the
  // pre-existing unbounded behaviour. Only TryPush honours the bound.
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  bool full() const { return capacity_ > 0 && pending_.size() >= capacity_; }

  // Like Push, but refuses (recording backpressure) when the ring is at
  // capacity. Returns true and charges *cost_ns on success.
  bool TryPush(Msg msg, Nanos now, double* cost_ns) {
    if (full()) {
      ++stats_.backpressure;
      return false;
    }
    const double cost = Push(std::move(msg), now);
    if (cost_ns != nullptr) {
      *cost_ns += cost;
    }
    return true;
  }

  size_t pending() const { return pending_.size(); }
  const VirtqueueStats& stats() const { return stats_; }
  const VirtqueueCosts& costs() const { return costs_; }

 private:
  EventQueue* events_;
  VirtqueueCosts costs_;
  size_t capacity_ = 0;  // 0 = unbounded.
  Consumer consumer_;
  std::deque<Msg> pending_;
  VirtqueueStats stats_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_VIRTIO_VIRTQUEUE_H_
