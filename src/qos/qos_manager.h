// Host-side QoS manager: priority-weighted FMEM rebalancing across VMs.
//
// The paper's Demeter balloon exposes guest telemetry through a statistics
// queue and leaves the actual policy "deliberately policy-agnostic ...
// detailed policy design remaining an avenue for future exploration"
// (§3.3). This module implements one such policy as an extension:
//
//   * every period, query each VM's balloon stats (present/free pages,
//     promotion activity, pressure);
//   * compute a demand signal per VM (FMEM fully used + recent promotion
//     activity or pressure => wants more);
//   * redistribute the host FMEM budget proportionally to priority weights
//     among demanding VMs, subject to a per-VM guaranteed minimum, and issue
//     the page-granular balloon deltas to converge on the new shares.
//
// The manager is deliberately conservative: it only shifts memory between
// VMs whose demand signals differ, it moves at most `max_shift_fraction`
// of a VM's FMEM per period, and it never takes a VM below its guarantee.

#ifndef DEMETER_SRC_QOS_QOS_MANAGER_H_
#define DEMETER_SRC_QOS_QOS_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/balloon/balloon.h"
#include "src/base/units.h"
#include "src/hyper/vm.h"

namespace demeter {

struct QosConfig {
  Nanos period = 100 * kMillisecond;
  // Fraction of a donor VM's FMEM that may move per period.
  double max_shift_fraction = 0.25;
  // Every VM keeps at least this fraction of its fair FMEM share.
  double guaranteed_fraction = 0.5;
  // A VM counts as "demanding" when its FMEM free fraction is below this
  // AND its TMM promoted at least `demand_promotions` pages since the last
  // round — i.e. misplaced hot data still exists that more FMEM would fix.
  // (First-touch fills FMEM in every VM, so fullness alone signals nothing.)
  double pressure_free_fraction = 0.02;
  uint64_t demand_promotions = 16;
};

class QosManager {
 public:
  struct TenantState {
    Vm* vm = nullptr;
    DemeterBalloon* balloon = nullptr;
    double weight = 1.0;
    // Last telemetry snapshot.
    GuestMemStats stats;
    uint64_t last_promoted = 0;
    bool demanding = false;
    // FMEM pages this tenant is entitled to right now.
    uint64_t target_fmem_pages = 0;
  };

  // `host_fmem_pages`: total FMEM budget the manager distributes.
  QosManager(uint64_t host_fmem_pages, QosConfig config = QosConfig{});
  ~QosManager() { *alive_ = false; }

  // Registers a VM with its balloon and priority weight. All registrations
  // must happen before Start().
  void AddTenant(Vm* vm, DemeterBalloon* balloon, double weight);

  // Begins periodic rebalancing on the hypervisor event queue.
  void Start(EventQueue* events, Nanos now);
  void Stop() { stopped_ = true; }

  // One rebalance round (also called by the periodic timer). Exposed for
  // tests and manual driving.
  void Rebalance(Nanos now);

  const std::vector<TenantState>& tenants() const { return tenants_; }
  uint64_t rebalance_rounds() const { return rounds_; }
  uint64_t pages_shifted() const { return pages_shifted_; }

  // Registers QoS counters under `scope` (the harness passes "qos").
  void RegisterMetrics(MetricScope scope) {
    scope.RegisterCounter("rounds", &rounds_);
    scope.RegisterCounter("pages_shifted", &pages_shifted_);
  }

 private:
  // Fair share of tenant i under current weights (pages).
  uint64_t FairShare(size_t i) const;

  uint64_t host_fmem_pages_;
  QosConfig config_;
  std::vector<TenantState> tenants_;
  EventQueue* events_ = nullptr;
  bool stopped_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  uint64_t rounds_ = 0;
  uint64_t pages_shifted_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_QOS_QOS_MANAGER_H_
