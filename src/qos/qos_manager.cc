#include "src/qos/qos_manager.h"

#include <algorithm>

#include "src/base/logging.h"

namespace demeter {

QosManager::QosManager(uint64_t host_fmem_pages, QosConfig config)
    : host_fmem_pages_(host_fmem_pages), config_(config) {
  DEMETER_CHECK_GT(host_fmem_pages, 0u);
}

void QosManager::AddTenant(Vm* vm, DemeterBalloon* balloon, double weight) {
  DEMETER_CHECK(vm != nullptr && balloon != nullptr);
  DEMETER_CHECK_GT(weight, 0.0);
  TenantState tenant;
  tenant.vm = vm;
  tenant.balloon = balloon;
  tenant.weight = weight;
  tenant.target_fmem_pages = vm->kernel().node(0).present_pages();
  tenants_.push_back(tenant);
}

void QosManager::Start(EventQueue* events, Nanos now) {
  DEMETER_CHECK(events != nullptr);
  events_ = events;
  events_->Schedule(now + config_.period, [this, alive = alive_](Nanos fire) {
    if (!*alive || stopped_) {
      return;
    }
    Rebalance(fire);
    // Reschedule from inside so periods chain even if Rebalance is slow.
    Start(events_, fire);
  });
}

uint64_t QosManager::FairShare(size_t i) const {
  double total_weight = 0.0;
  for (const TenantState& tenant : tenants_) {
    total_weight += tenant.weight;
  }
  return static_cast<uint64_t>(static_cast<double>(host_fmem_pages_) * tenants_[i].weight /
                               total_weight);
}

void QosManager::Rebalance(Nanos now) {
  ++rounds_;
  const uint64_t shifted_before = pages_shifted_;
  // Marks rebalance activity in the trace (pid 0 slots host-level events
  // next to the VMs' lanes). Emitted on exit so the shift total is known.
  struct RoundTrace {
    QosManager* self;
    Nanos now;
    uint64_t before;
    ~RoundTrace() {
      if (self->tenants_.empty()) {
        return;
      }
      Tracer* tracer = self->tenants_.front().vm->host().tracer();
      if (tracer == nullptr || !tracer->enabled()) {
        return;
      }
      tracer->Instant("qos", "rebalance", now, /*pid=*/0, /*tid=*/0,
                      TraceArgs()
                          .Add("round", self->rounds_)
                          .Add("pages_shifted", self->pages_shifted_ - before)
                          .str());
    }
  } round_trace{this, now, shifted_before};
  // Refresh telemetry. The stats queue is asynchronous; we use the snapshot
  // that arrives by the next round (one-period-old data, as a real
  // cluster-level controller would).
  for (TenantState& tenant : tenants_) {
    TenantState* slot = &tenant;
    tenant.balloon->QueryStats(now, [slot](const GuestMemStats& stats, Nanos) {
      slot->stats = stats;
    });
  }

  // Classify demand from the freshest snapshots we have.
  for (TenantState& tenant : tenants_) {
    const uint64_t present = tenant.stats.node_present[0];
    const uint64_t free = tenant.stats.node_free[0];
    const bool fmem_tight =
        present > 0 && static_cast<double>(free) <
                           config_.pressure_free_fraction * static_cast<double>(present);
    const bool promoting =
        tenant.stats.pages_promoted >= tenant.last_promoted + config_.demand_promotions;
    tenant.last_promoted = tenant.stats.pages_promoted;
    tenant.demanding = fmem_tight && promoting;
  }

  // Nothing to do unless demand differs: either some VM wants more while
  // another does not, or an over-guarantee imbalance exists.
  bool any_demand = false;
  bool any_slack = false;
  for (const TenantState& tenant : tenants_) {
    if (tenant.demanding) {
      any_demand = true;
    } else {
      any_slack = true;
    }
  }
  if (!any_demand || !any_slack) {
    return;
  }

  // Donors: non-demanding VMs above their guarantee. Receivers: demanding
  // VMs below their weighted entitlement among demanders.
  for (size_t d = 0; d < tenants_.size(); ++d) {
    TenantState& donor = tenants_[d];
    if (donor.demanding) {
      continue;
    }
    const uint64_t present = donor.vm->kernel().node(0).present_pages();
    const uint64_t guarantee = static_cast<uint64_t>(
        config_.guaranteed_fraction * static_cast<double>(FairShare(d)));
    if (present <= guarantee) {
      continue;
    }
    uint64_t movable = std::min<uint64_t>(
        present - guarantee,
        static_cast<uint64_t>(config_.max_shift_fraction * static_cast<double>(present)));
    if (movable == 0) {
      continue;
    }
    // Give to the highest-weight demanding tenant.
    TenantState* receiver = nullptr;
    for (TenantState& tenant : tenants_) {
      if (tenant.demanding && (receiver == nullptr || tenant.weight > receiver->weight)) {
        receiver = &tenant;
      }
    }
    if (receiver == nullptr) {
      break;
    }
    donor.balloon->RequestDelta(0, static_cast<int64_t>(movable), now);
    receiver->balloon->RequestDelta(0, -static_cast<int64_t>(movable), now);
    pages_shifted_ += movable;
    donor.target_fmem_pages = present - movable;
    receiver->target_fmem_pages += movable;
  }
}

}  // namespace demeter
