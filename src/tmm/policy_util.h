// Shared helpers for guest-side TMM baseline policies.

#ifndef DEMETER_SRC_TMM_POLICY_UTIL_H_
#define DEMETER_SRC_TMM_POLICY_UTIL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/units.h"
#include "src/guest/process.h"
#include "src/hyper/vm.h"

namespace demeter {

// Page ranges of the process's tracked (heap + mmap) VMAs.
std::vector<std::pair<PageNum, PageNum>> TrackedPageRanges(const GuestProcess& process);

// Demotes up to `count` FIFO victims out of node 0 so allocations (or
// promotions) have headroom. Returns pages actually demoted; accumulates
// CPU cost.
uint64_t DemoteForHeadroom(Vm& vm, uint64_t count, Nanos now, double* cost_ns);

// True while the host is carving capacity out of FMEM (a tiershrink
// window). Promotions into node 0 would be rejected with backpressure page
// by page; policies check once per round and skip their promote loop,
// retrying the candidates on the next scan. Always false on fault-free
// runs (no window can be scheduled).
bool PromotionThrottled(Vm& vm);

}  // namespace demeter

#endif  // DEMETER_SRC_TMM_POLICY_UTIL_H_
