// Shared helpers for guest-side TMM baseline policies.

#ifndef DEMETER_SRC_TMM_POLICY_UTIL_H_
#define DEMETER_SRC_TMM_POLICY_UTIL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/units.h"
#include "src/guest/process.h"
#include "src/hyper/vm.h"

namespace demeter {

// Page ranges of the process's tracked (heap + mmap) VMAs.
std::vector<std::pair<PageNum, PageNum>> TrackedPageRanges(const GuestProcess& process);

// Demotes up to `count` FIFO victims out of node 0 so allocations (or
// promotions) have headroom. Returns pages actually demoted; accumulates
// CPU cost.
uint64_t DemoteForHeadroom(Vm& vm, uint64_t count, Nanos now, double* cost_ns);

// True while the host is carving capacity out of FMEM (a tiershrink
// window). Promotions into node 0 would be rejected with backpressure page
// by page; policies check once per round and skip their promote loop,
// retrying the candidates on the next scan. Always false on fault-free
// runs (no window can be scheduled).
bool PromotionThrottled(Vm& vm);

// True when `vpn`'s backing frame sits in the far swap tier. The guest
// observes this as major-fault latency on the page, so delegated policies
// may treat such pages as top promotion candidates (a swap-in skips levels
// straight to FMEM when it has headroom). Always false on two-tier hosts.
bool SwapBacked(Vm& vm, const GuestProcess& process, PageNum vpn);

// Second-level demotion (three-tier hosts only): host-migrates up to
// `count` of this VM's cold SMEM-backed pages down to the far swap tier,
// in deterministic EPT order, so first-level demotions out of FMEM have
// somewhere near to land. Coldness is clock-style over the EPT A bits:
// each call clears the bits it finds set and demotes pages whose bit
// stayed clear since the previous call (the first call only arms the
// scan). Returns pages moved; 0 when the host has no swap device.
// Accumulates CPU cost including its own batched full TLB flush.
uint64_t FarDemoteForHeadroom(Vm& vm, uint64_t count, Nanos now, double* cost_ns);

}  // namespace demeter

#endif  // DEMETER_SRC_TMM_POLICY_UTIL_H_
