// H-TPP: TPP's PTE.A scanning backend ported to the hypervisor via the KVM
// MMU-notifier interface — the paper's hypervisor-based comparison point
// (§2.3.1, §5.4).
//
// The hypervisor sees only gPA/hPA. Every scan must therefore end with a
// full EPT invalidation (invept) on every vCPU to re-arm A-bit observation
// — the destructive flush Table 1 measures — and host-side migrations
// (EPT remaps) need another full flush per batch. Scan and migration CPU
// time burns host cores (recorded in the management account) instead of
// stealing guest time, which is why the paper gives TPP-H extra DRAM
// headroom: the real damage is done through TLB misses in the guest.

#ifndef DEMETER_SRC_TMM_HTPP_H_
#define DEMETER_SRC_TMM_HTPP_H_

#include <cstdint>
#include <unordered_map>

#include "src/base/units.h"
#include "src/core/policy.h"

namespace demeter {

struct HTppConfig {
  Nanos scan_period = 200 * kMillisecond;
  int promote_after_hits = 2;
  uint64_t max_promote_per_scan = 256;
  double classify_ns_per_page = 6.0;
  // Present PTEs per MMU-notifier invalidation chunk (one invept each).
  uint64_t flush_chunk_pages = 1024;
};

class HTppPolicy : public TmmPolicy {
 public:
  explicit HTppPolicy(HTppConfig config = HTppConfig{});

  const char* name() const override { return "tpp-h"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override;

  void RegisterMetrics(MetricScope scope) override {
    scope.RegisterCounter("scans_run", &scans_run_);
    scope.RegisterCounter("pages_promoted", &total_promoted_);
    scope.RegisterCounter("pages_demoted", &total_demoted_);
  }

  uint64_t scans_run() const { return scans_run_; }
  uint64_t total_promoted() const { return total_promoted_; }
  uint64_t total_demoted() const { return total_demoted_; }

 private:
  void RunScan(Nanos now);
  void ScheduleNext(Nanos now);

  HTppConfig config_;
  Vm* vm_ = nullptr;
  std::unordered_map<PageNum, uint8_t> hit_streak_;  // gPA -> consecutive hits.
  uint64_t scans_run_ = 0;
  uint64_t total_promoted_ = 0;
  uint64_t total_demoted_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_TMM_HTPP_H_
