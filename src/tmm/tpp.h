// G-TPP: the kernel-based TPP design (ASPLOS'23) run directly inside the
// guest, as the paper's strongest guest-based baseline.
//
// Tracking uses PTE.A-bit scanning over the guest page table: each scan
// clears A bits, which requires a single-gVA TLB invalidation per cleared
// entry to re-arm observation (the guest knows the gVA, so no full flush —
// the G-TPP row of Table 1). Promotion is NUMA-hint-fault driven: a page
// observed accessed in `promote_after_hits` consecutive scans takes a
// hint fault and migrates to FMEM. Proactive demotion keeps a free-page
// headroom in FMEM, migrating FIFO victims to SMEM. Migrations are
// sequential allocate-copy-remap (temporary-page style), not balanced swaps.
// On three-tier hosts the demotion chain continues per TPP's per-tier
// watermarks: when host SMEM headroom runs low, cold SMEM-backed frames are
// host-migrated down to the far swap tier (FMEM -> CXL -> swap, never
// FMEM -> swap directly), and swap-backed pages skip the hit-streak
// threshold on promotion (every access is a major fault).

#ifndef DEMETER_SRC_TMM_TPP_H_
#define DEMETER_SRC_TMM_TPP_H_

#include <cstdint>
#include <unordered_map>

#include "src/base/units.h"
#include "src/core/policy.h"

namespace demeter {

struct TppConfig {
  Nanos scan_period = 200 * kMillisecond;
  int promote_after_hits = 2;
  uint64_t max_promote_per_scan = 128;
  uint64_t max_demote_per_scan = 256;
  double classify_ns_per_page = 6.0;  // LRU list maintenance per scanned page.
  // Address-space pages covered per scan round (NUMA-balancing-style rate
  // limit); the cursor wraps across scans.
  uint64_t scan_chunk_pages = 4096;
};

class TppPolicy : public TmmPolicy {
 public:
  explicit TppPolicy(TppConfig config = TppConfig{});

  const char* name() const override { return "tpp"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override;

  void RegisterMetrics(MetricScope scope) override {
    scope.RegisterCounter("scans_run", &scans_run_);
    scope.RegisterCounter("pages_promoted", &total_promoted_);
    scope.RegisterCounter("pages_demoted", &total_demoted_);
    scope.RegisterCounter("pages_far_demoted", &total_far_demoted_);
  }

  uint64_t scans_run() const { return scans_run_; }
  uint64_t total_promoted() const { return total_promoted_; }
  uint64_t total_demoted() const { return total_demoted_; }
  uint64_t total_far_demoted() const { return total_far_demoted_; }

 private:
  void RunScan(Nanos now);
  void ScheduleNext(Nanos now);

  TppConfig config_;
  Vm* vm_ = nullptr;
  GuestProcess* process_ = nullptr;
  std::unordered_map<PageNum, uint8_t> hit_streak_;  // vpn -> consecutive scans accessed.
  uint64_t scan_cursor_ = 0;  // Page offset into the concatenated tracked span.
  uint64_t scans_run_ = 0;
  uint64_t total_promoted_ = 0;
  uint64_t total_demoted_ = 0;
  uint64_t total_far_demoted_ = 0;  // SMEM -> swap (three-tier hosts only).
};

}  // namespace demeter

#endif  // DEMETER_SRC_TMM_TPP_H_
