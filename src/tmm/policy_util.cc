#include "src/tmm/policy_util.h"

#include "src/hyper/hypervisor.h"

namespace demeter {

std::vector<std::pair<PageNum, PageNum>> TrackedPageRanges(const GuestProcess& process) {
  std::vector<std::pair<PageNum, PageNum>> ranges;
  for (const Vma& vma : process.space().vmas()) {
    if (vma.tracked && vma.size() > 0) {
      ranges.emplace_back(PageOf(vma.start), PageOf(vma.end));
    }
  }
  return ranges;
}

uint64_t DemoteForHeadroom(Vm& vm, uint64_t count, Nanos now, double* cost_ns) {
  GuestKernel& kernel = vm.kernel();
  uint64_t demoted = 0;
  while (demoted < count) {
    auto victim = kernel.PickVictim(0);
    if (!victim.has_value()) {
      break;
    }
    const RmapEntry* rmap = kernel.Rmap(*victim);
    GuestProcess* proc = kernel.process(rmap->pid);
    if (proc == nullptr || !vm.MovePage(*proc, rmap->vpn, /*dst_node=*/1, now, cost_ns)) {
      break;
    }
    ++demoted;
  }
  return demoted;
}

bool PromotionThrottled(Vm& vm) {
  return vm.host().TierUnderShrink(vm.host().TierForNode(0));
}

}  // namespace demeter
