#include "src/tmm/policy_util.h"

#include "src/hyper/hypervisor.h"

namespace demeter {

std::vector<std::pair<PageNum, PageNum>> TrackedPageRanges(const GuestProcess& process) {
  std::vector<std::pair<PageNum, PageNum>> ranges;
  for (const Vma& vma : process.space().vmas()) {
    if (vma.tracked && vma.size() > 0) {
      ranges.emplace_back(PageOf(vma.start), PageOf(vma.end));
    }
  }
  return ranges;
}

uint64_t DemoteForHeadroom(Vm& vm, uint64_t count, Nanos now, double* cost_ns) {
  GuestKernel& kernel = vm.kernel();
  uint64_t demoted = 0;
  while (demoted < count) {
    auto victim = kernel.PickVictim(0);
    if (!victim.has_value()) {
      break;
    }
    const RmapEntry* rmap = kernel.Rmap(*victim);
    GuestProcess* proc = kernel.process(rmap->pid);
    if (proc == nullptr || !vm.MovePage(*proc, rmap->vpn, /*dst_node=*/1, now, cost_ns)) {
      break;
    }
    ++demoted;
  }
  return demoted;
}

bool PromotionThrottled(Vm& vm) {
  return vm.host().TierUnderShrink(vm.host().TierForNode(0));
}

bool SwapBacked(Vm& vm, const GuestProcess& process, PageNum vpn) {
  if (vm.host().swap() == nullptr) {
    return false;
  }
  const auto gpt = process.gpt().Lookup(vpn);
  if (!gpt.present) {
    return false;
  }
  const auto ept = vm.ept().Lookup(gpt.target);
  return ept.present && vm.host().memory().TierOf(ept.target) == kSwapTier;
}

uint64_t FarDemoteForHeadroom(Vm& vm, uint64_t count, Nanos now, double* cost_ns) {
  Hypervisor& host = vm.host();
  if (host.swap() == nullptr || count == 0) {
    return 0;
  }
  HostMemory& memory = host.memory();
  // Clock-style cold scan over the EPT: an entry whose A bit is still set
  // since the previous call is hot — clear the bit so the next call can
  // observe it afresh; an entry whose bit stayed clear is a cold SMEM
  // victim. Guest-side policies never touch EPT A bits, so without the
  // clearing half nothing would ever look cold here. The bit-clears and
  // remaps become visible with one batched invept (charged below), the
  // same flush an MMU-notifier scan pays.
  std::vector<PageNum> victims;
  uint64_t cleared = 0;
  vm.ept().ScanAndClearAccessed(0, PageTable::kMaxPage,
                                [&](PageNum gpa, uint64_t frame, bool accessed, bool) {
                                  if (accessed) {
                                    ++cleared;
                                    return;
                                  }
                                  if (victims.size() < count &&
                                      memory.TierOf(static_cast<FrameId>(frame)) == kSmemTier) {
                                    victims.push_back(gpa);
                                  }
                                });
  uint64_t moved = 0;
  for (PageNum gpa : victims) {
    if (host.MigrateGpa(vm, gpa, kSwapTier, now, cost_ns)) {
      ++moved;
    }
  }
  if (cleared + moved > 0) {
    vm.FullFlushAll();
    *cost_ns += vm.FullFlushCost();
  }
  return moved;
}

}  // namespace demeter
