#include "src/tmm/tpp.h"

#include <algorithm>
#include <vector>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"
#include "src/tmm/policy_util.h"

namespace demeter {

TppPolicy::TppPolicy(TppConfig config) : config_(config) {}

void TppPolicy::Attach(Vm& vm, GuestProcess& process, Nanos start) {
  DEMETER_CHECK(vm_ == nullptr);
  vm_ = &vm;
  process_ = &process;
  ScheduleNext(start);
}

void TppPolicy::RunScan(Nanos now) {
  if (stopped_) {
    return;
  }
  ++scans_run_;
  const uint64_t promoted_before = total_promoted_;
  const uint64_t demoted_before = total_demoted_;
  double tracking_ns = 0.0;
  double classify_ns = 0.0;
  double migrate_ns = 0.0;
  GuestKernel& kernel = vm_->kernel();
  const MmuCosts& costs = vm_->config().mmu_costs;

  // Rate-limited A-bit scan over the tracked VMAs: a cursor sweeps
  // scan_chunk_pages of address space per round (NUMA-balancing style).
  // Every cleared bit needs a single-gVA shootdown so the next access
  // re-walks and re-sets it.
  std::vector<PageNum> promote_candidates;
  uint64_t scanned_pages = 0;
  const auto visitor = [&](PageNum vpn, uint64_t gpa, bool accessed, bool) {
    ++scanned_pages;
    if (!accessed) {
      hit_streak_.erase(vpn);
      return;
    }
    vm_->FlushGvaAll(vpn);
    tracking_ns += vm_->SingleFlushCost();
    if (kernel.NodeOfGpa(gpa) != 0) {
      const int streak = ++hit_streak_[vpn];
      // A swap-backed page qualifies on its first observed hit: every
      // access it takes is a major fault, so making it wait out the
      // streak threshold costs device reads, not just SMEM latency.
      // (Always false on two-tier hosts.)
      if ((streak >= config_.promote_after_hits || SwapBacked(*vm_, *process_, vpn)) &&
          promote_candidates.size() < config_.max_promote_per_scan) {
        promote_candidates.push_back(vpn);
      }
    }
  };
  const auto ranges = TrackedPageRanges(*process_);
  uint64_t span_total = 0;
  for (const auto& [begin, end] : ranges) {
    span_total += end - begin;
  }
  if (span_total > 0) {
    uint64_t offset = scan_cursor_ % span_total;
    uint64_t remaining = std::min<uint64_t>(config_.scan_chunk_pages, span_total);
    scan_cursor_ = (offset + remaining) % span_total;
    uint64_t range_base = 0;  // Offset of the current range in the span.
    // Two sweeps handle cursor wrap-around.
    for (int sweep = 0; sweep < 2 && remaining > 0; ++sweep) {
      for (const auto& [begin, end] : ranges) {
        const uint64_t len = end - begin;
        if (offset < range_base + len && remaining > 0) {
          const uint64_t local = offset > range_base ? offset - range_base : 0;
          const uint64_t take = std::min<uint64_t>(remaining, len - local);
          const uint64_t touched = process_->gpt().ScanAndClearAccessed(
              begin + local, begin + local + take, visitor);
          tracking_ns += static_cast<double>(touched) * costs.pte_scan_ns;
          remaining -= take;
          offset += take;
        }
        range_base += len;
      }
      offset = 0;
      range_base = 0;
    }
  }
  classify_ns += static_cast<double>(scanned_pages) * config_.classify_ns_per_page;

  // Proactive demotion: keep the FMEM free-page headroom TPP relies on.
  NumaNode& fmem = kernel.node(0);
  const uint64_t target_free = fmem.watermark_high() + promote_candidates.size();
  if (fmem.free_pages() < target_free) {
    const uint64_t need = target_free - fmem.free_pages();
    total_demoted_ += DemoteForHeadroom(
        *vm_, std::min<uint64_t>(need, config_.max_demote_per_scan), now, &migrate_ns);
  }

  // Three-tier hosts: continue the chain one level down, TPP's per-tier
  // wmark demotion generalized. Only once the far tier is actually in use
  // (a host that never spilled must not start taking major faults on its
  // own) and SMEM is out of headroom: proactively push this VM's cold
  // SMEM-backed frames to swap so demotions out of FMEM keep a near tier
  // to land in (FMEM -> CXL -> swap). The helper clock-scans EPT A bits
  // and pays its own batched flush.
  Hypervisor& host = vm_->host();
  if (host.swap() != nullptr && host.memory().UsedPages(kSwapTier) > 0 &&
      host.memory().FreePages(kSmemTier) < config_.max_demote_per_scan) {
    total_far_demoted_ +=
        FarDemoteForHeadroom(*vm_, config_.max_demote_per_scan, now, &migrate_ns);
  }

  // Hint-fault-driven promotion: each promotion pays a software page fault
  // before the sequential migrate (the dominant TPP cost in Figure 7).
  // Skipped wholesale while the host shrinks FMEM; the hit streaks survive
  // so candidates re-qualify immediately on the next scan.
  if (PromotionThrottled(*vm_)) {
    promote_candidates.clear();
  }
  for (PageNum vpn : promote_candidates) {
    migrate_ns += costs.guest_fault_ns;
    if (vm_->MovePage(*process_, vpn, /*dst_node=*/0, now, &migrate_ns)) {
      ++total_promoted_;
      hit_streak_.erase(vpn);
    } else {
      break;  // FMEM dry despite demotion; retry next scan.
    }
  }

  const double total = tracking_ns + classify_ns + migrate_ns;
  vm_->vcpu(0).clock_ns += total;
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(tracking_ns));
  vm_->mgmt_account().Charge(TmmStage::kClassification, static_cast<Nanos>(classify_ns));
  vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(migrate_ns));
  TraceMigrationBatch(*vm_, name(), now, migrate_ns, total_promoted_ - promoted_before,
                      total_demoted_ - demoted_before);

  ScheduleNext(now);
}

void TppPolicy::ScheduleNext(Nanos now) {
  if (stopped_) {
    return;
  }
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.scan_period, [this, alive = alive_](Nanos fire) {
    if (*alive) {
      RunScan(fire);
    }
  });
}

}  // namespace demeter
