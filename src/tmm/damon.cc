#include "src/tmm/damon.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"
#include "src/tmm/policy_util.h"

namespace demeter {

DamonPolicy::DamonPolicy(DamonConfig config) : config_(config) {}

void DamonPolicy::Attach(Vm& vm, GuestProcess& process, Nanos start) {
  DEMETER_CHECK(vm_ == nullptr);
  vm_ = &vm;
  process_ = &process;
  SyncRegions();
  vm.host().ScheduleVmEvent(vm.id(), start + config_.sample_interval,
                              [this, alive = alive_](Nanos fire) {
                                if (*alive) {
                                  RunSample(fire);
                                }
                              });
  vm.host().ScheduleVmEvent(vm.id(), start + config_.aggregation_interval,
                              [this, alive = alive_](Nanos fire) {
                                if (*alive) {
                                  RunAggregation(fire);
                                }
                              });
}

void DamonPolicy::SyncRegions() {
  // Cover every tracked VMA; new/grown VMAs get appended as fresh regions.
  for (const auto& [begin, end] : TrackedPageRanges(*process_)) {
    const uint64_t start_addr = AddrOfPage(begin);
    const uint64_t end_addr = AddrOfPage(end);
    if (end_addr <= covered_end_) {
      continue;
    }
    const uint64_t from = std::max(start_addr, covered_end_);
    if (from < end_addr) {
      regions_.push_back(Region{from, end_addr, 0});
      covered_end_ = end_addr;
    }
  }
}

void DamonPolicy::RunSample(Nanos now) {
  if (stopped_) {
    return;
  }
  double cost = 0.0;
  for (Region& region : regions_) {
    if (region.pages() == 0) {
      continue;
    }
    // Probe one page of the region: the sampled A bit stands for them all.
    const PageNum vpn = PageOf(region.start) + rng_.NextBelow(region.pages());
    ++probes_;
    cost += config_.probe_cost_ns;
    if (process_->gpt().TestAndClearAccessed(vpn)) {
      ++region.score;
      // Re-arm observation: flush the probed translation.
      vm_->FlushGvaAll(vpn);
      cost += vm_->SingleFlushCost();
    }
  }
  vm_->vcpu(0).clock_ns += cost;
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(cost));
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.sample_interval,
                                [this, alive = alive_](Nanos fire) {
                                  if (*alive) {
                                    RunSample(fire);
                                  }
                                });
}

void DamonPolicy::SplitAndMerge() {
  // Merge adjacent regions with similar scores (keeps the set bounded).
  for (size_t i = 0; i + 1 < regions_.size() && regions_.size() > config_.min_regions;) {
    Region& a = regions_[i];
    const Region& b = regions_[i + 1];
    const uint32_t diff = a.score > b.score ? a.score - b.score : b.score - a.score;
    if (a.end == b.start && diff <= config_.merge_threshold) {
      a.end = b.end;
      a.score = std::max(a.score, b.score);
      regions_.erase(regions_.begin() + static_cast<long>(i) + 1);
    } else {
      ++i;
    }
  }
  // Split: each region splits once at a random point (exploration) while
  // the region budget allows.
  std::vector<Region> split;
  split.reserve(regions_.size() * 2);
  size_t budget = config_.max_regions > regions_.size()
                      ? config_.max_regions - regions_.size()
                      : 0;
  for (const Region& region : regions_) {
    if (budget == 0 || region.pages() < 2) {
      split.push_back(region);
      continue;
    }
    const uint64_t cut_page = 1 + rng_.NextBelow(region.pages() - 1);
    const uint64_t cut = region.start + cut_page * kPageSize;
    split.push_back(Region{region.start, cut, region.score});
    split.push_back(Region{cut, region.end, region.score});
    --budget;
  }
  regions_ = std::move(split);
}

void DamonPolicy::RunAggregation(Nanos now) {
  if (stopped_) {
    return;
  }
  const uint64_t promoted_before = total_promoted_;
  const uint64_t demoted_before = total_demoted_;
  double migrate_ns = 0.0;
  double classify_ns = static_cast<double>(regions_.size()) * 30.0;
  GuestKernel& kernel = vm_->kernel();
  SyncRegions();

  // DAMOS scheme: promote hot regions' SMEM pages; demote to make room from
  // zero-score regions.
  uint64_t migrated = 0;
  std::vector<const Region*> hot;
  std::vector<const Region*> cold;
  for (const Region& region : regions_) {
    if (region.score >= config_.hot_score) {
      hot.push_back(&region);
    } else if (region.score == 0) {
      cold.push_back(&region);
    }
  }
  size_t cold_idx = 0;
  PageNum cold_cursor = cold.empty() ? 0 : PageOf(cold[0]->start);
  auto demote_one = [&]() -> bool {
    while (cold_idx < cold.size()) {
      const Region& region = *cold[cold_idx];
      for (; cold_cursor < PageOf(region.end); ++cold_cursor) {
        if (vm_->NodeOfVpn(*process_, cold_cursor) == 0) {
          if (vm_->MovePage(*process_, cold_cursor, 1, now, &migrate_ns)) {
            ++total_demoted_;
            ++cold_cursor;
            return true;
          }
        }
      }
      ++cold_idx;
      cold_cursor = cold_idx < cold.size() ? PageOf(cold[cold_idx]->start) : 0;
    }
    return false;
  };
  // Region scores reset each window regardless, so sitting out a shrink
  // window costs nothing: hot regions re-score and retry next aggregation.
  if (PromotionThrottled(*vm_)) {
    hot.clear();
  }
  // Region granularity hides which pages are far: within a hot region,
  // spend the migration budget on swap-backed pages first (every access to
  // one is a device read), then the SMEM rest. Two-tier hosts have no far
  // pass and run the single pass exactly as before.
  const bool has_far = vm_->host().swap() != nullptr;
  for (int pass = has_far ? 0 : 1; pass < 2; ++pass) {
    const bool far_pass = has_far && pass == 0;
    for (const Region* region : hot) {
      for (PageNum vpn = PageOf(region->start);
           vpn < PageOf(region->end) && migrated < config_.max_migrate_per_aggregation;
           ++vpn) {
        if (vm_->NodeOfVpn(*process_, vpn) != 1) {
          continue;
        }
        if (far_pass != SwapBacked(*vm_, *process_, vpn)) {
          continue;
        }
        if (kernel.node(0).free_pages() <= kernel.node(0).watermark_min() && !demote_one()) {
          migrated = config_.max_migrate_per_aggregation;
          break;
        }
        if (vm_->MovePage(*process_, vpn, 0, now, &migrate_ns)) {
          ++total_promoted_;
          ++migrated;
        }
      }
    }
  }

  // New aggregation window.
  SplitAndMerge();
  for (Region& region : regions_) {
    region.score = 0;
  }

  vm_->vcpu(0).clock_ns += classify_ns + migrate_ns;
  vm_->mgmt_account().Charge(TmmStage::kClassification, static_cast<Nanos>(classify_ns));
  vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(migrate_ns));
  TraceMigrationBatch(*vm_, name(), now, migrate_ns, total_promoted_ - promoted_before,
                      total_demoted_ - demoted_before);
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.aggregation_interval,
                                [this, alive = alive_](Nanos fire) {
                                  if (*alive) {
                                    RunAggregation(fire);
                                  }
                                });
}

}  // namespace demeter
