// Nomad (OSDI'24) run inside the guest: non-exclusive tiering via
// transactional page migration with shadow copies.
//
// Tracking is A-bit-scan based like TPP, but promotion is aggressive (one
// observed access suffices), producing the migration thrashing the paper
// attributes Nomad's tail performance to (§5.3). Each migration is a
// transaction: the page stays mapped while a shadow copy is made; if the
// page is dirtied mid-copy the transaction aborts and retries (paying the
// copy again plus fault handling), and the shadow temporarily consumes a
// free destination page either way.

#ifndef DEMETER_SRC_TMM_NOMAD_H_
#define DEMETER_SRC_TMM_NOMAD_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/core/policy.h"

namespace demeter {

struct NomadConfig {
  Nanos scan_period = 200 * kMillisecond;
  uint64_t max_promote_per_scan = 256;
  uint64_t max_demote_per_scan = 512;
  double classify_ns_per_page = 6.0;
  double shadow_setup_fault_ns = 4000.0;  // Write-protect fault per transaction.
  int max_copy_retries = 2;
  double dirty_abort_probability = 0.25;  // Chance a copy races a write.
};

class NomadPolicy : public TmmPolicy {
 public:
  explicit NomadPolicy(NomadConfig config = NomadConfig{});

  const char* name() const override { return "nomad"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override;

  void RegisterMetrics(MetricScope scope) override {
    scope.RegisterCounter("transaction_aborts", &transaction_aborts_);
    scope.RegisterCounter("pages_promoted", &total_promoted_);
    scope.RegisterCounter("pages_demoted", &total_demoted_);
  }

  uint64_t total_promoted() const { return total_promoted_; }
  uint64_t total_demoted() const { return total_demoted_; }
  uint64_t transaction_aborts() const { return transaction_aborts_; }

 private:
  void RunScan(Nanos now);
  void ScheduleNext(Nanos now);
  // Transactional migrate of vpn to dst_node; models shadow copy + retries.
  bool TransactionalMove(PageNum vpn, int dst_node, Nanos now, double* cost_ns);

  NomadConfig config_;
  Vm* vm_ = nullptr;
  GuestProcess* process_ = nullptr;
  uint64_t total_promoted_ = 0;
  uint64_t total_demoted_ = 0;
  uint64_t transaction_aborts_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_TMM_NOMAD_H_
