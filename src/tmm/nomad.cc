#include "src/tmm/nomad.h"

#include <vector>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"
#include "src/tmm/policy_util.h"

namespace demeter {

NomadPolicy::NomadPolicy(NomadConfig config) : config_(config) {}

void NomadPolicy::Attach(Vm& vm, GuestProcess& process, Nanos start) {
  DEMETER_CHECK(vm_ == nullptr);
  vm_ = &vm;
  process_ = &process;
  ScheduleNext(start);
}

bool NomadPolicy::TransactionalMove(PageNum vpn, int dst_node, Nanos now, double* cost_ns) {
  const MmuCosts& costs = vm_->config().mmu_costs;
  // Shadow setup: write-protect the page (fault on next store).
  *cost_ns += config_.shadow_setup_fault_ns;
  // Copy attempts: a concurrent write dirties the page mid-copy and aborts.
  HostMemory& memory = vm_->host().memory();
  const auto gpt_entry = process_->gpt().Lookup(vpn);
  if (!gpt_entry.present) {
    return false;
  }
  const auto ept_entry = vm_->ept().Lookup(gpt_entry.target);
  const TierIndex src_tier =
      ept_entry.present ? memory.TierOf(ept_entry.target) : kFmemTier;
  // A swapped-out page has no writers — nothing can dirty it mid-copy, so
  // the shadow copy trivially commits and the dirty-abort lottery is
  // skipped (MovePage below pays the device swap-in). Three-tier only.
  if (src_tier == kSwapTier) {
    return vm_->MovePage(*process_, vpn, dst_node, now, cost_ns);
  }
  for (int attempt = 0; attempt < config_.max_copy_retries; ++attempt) {
    // Shadow copy of the page contents while still mapped.
    *cost_ns += memory.tier(src_tier).AccessCost(now, kPageSize, /*is_write=*/false);
    if (!vm_->rng().NextBool(config_.dirty_abort_probability)) {
      break;  // Copy committed cleanly.
    }
    ++transaction_aborts_;
    *cost_ns += costs.guest_fault_ns;  // Abort handling.
    if (attempt + 1 == config_.max_copy_retries) {
      return false;  // Give up this scan round.
    }
  }
  return vm_->MovePage(*process_, vpn, dst_node, now, cost_ns);
}

void NomadPolicy::RunScan(Nanos now) {
  if (stopped_) {
    return;
  }
  const uint64_t promoted_before = total_promoted_;
  const uint64_t demoted_before = total_demoted_;
  double tracking_ns = 0.0;
  double classify_ns = 0.0;
  double migrate_ns = 0.0;
  GuestKernel& kernel = vm_->kernel();
  const MmuCosts& costs = vm_->config().mmu_costs;

  // A-bit scan; aggressive: one observed access makes a promotion candidate.
  std::vector<PageNum> promote;
  uint64_t scanned = 0;
  for (const auto& [begin, end] : TrackedPageRanges(*process_)) {
    const uint64_t touched = process_->gpt().ScanAndClearAccessed(
        begin, end, [&](PageNum vpn, uint64_t gpa, bool accessed, bool) {
          ++scanned;
          if (!accessed) {
            return;
          }
          vm_->FlushGvaAll(vpn);
          tracking_ns += vm_->SingleFlushCost();
          if (kernel.NodeOfGpa(gpa) != 0 && promote.size() < config_.max_promote_per_scan) {
            promote.push_back(vpn);
          }
        });
    tracking_ns += static_cast<double>(touched) * costs.pte_scan_ns;
  }
  classify_ns += static_cast<double>(scanned) * config_.classify_ns_per_page;

  // Room for shadows + promotions.
  NumaNode& fmem = kernel.node(0);
  const uint64_t target_free = fmem.watermark_high() + promote.size();
  if (fmem.free_pages() < target_free) {
    const uint64_t need = target_free - fmem.free_pages();
    uint64_t budget = std::min<uint64_t>(need, config_.max_demote_per_scan);
    uint64_t done = 0;
    while (done < budget) {
      auto victim = kernel.PickVictim(0);
      if (!victim.has_value()) {
        break;
      }
      const RmapEntry* rmap = kernel.Rmap(*victim);
      GuestProcess* proc = kernel.process(rmap->pid);
      if (proc == nullptr || !TransactionalMove(rmap->vpn, 1, now, &migrate_ns)) {
        break;
      }
      ++total_demoted_;
      ++done;
    }
  }

  // Shadow copies into a shrinking FMEM would abort against backpressure
  // after paying their setup faults; cheaper to sit the round out.
  if (!PromotionThrottled(*vm_)) {
    for (PageNum vpn : promote) {
      if (TransactionalMove(vpn, 0, now, &migrate_ns)) {
        ++total_promoted_;
      }
    }
  }

  const double total = tracking_ns + classify_ns + migrate_ns;
  vm_->vcpu(0).clock_ns += total;
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(tracking_ns));
  vm_->mgmt_account().Charge(TmmStage::kClassification, static_cast<Nanos>(classify_ns));
  vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(migrate_ns));
  TraceMigrationBatch(*vm_, name(), now, migrate_ns, total_promoted_ - promoted_before,
                      total_demoted_ - demoted_before);

  ScheduleNext(now);
}

void NomadPolicy::ScheduleNext(Nanos now) {
  if (stopped_) {
    return;
  }
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.scan_period, [this, alive = alive_](Nanos fire) {
    if (*alive) {
      RunScan(fire);
    }
  });
}

}  // namespace demeter
