// No-op policy: first-touch placement only (no management). Baseline for
// isolating TMM benefit and for pure provisioning comparisons. Trivially
// robust to host elasticity events (poison, tiershrink): it never migrates,
// so it can neither fight a shrink window nor pick a migration destination.

#ifndef DEMETER_SRC_TMM_STATIC_POLICY_H_
#define DEMETER_SRC_TMM_STATIC_POLICY_H_

#include "src/core/policy.h"

namespace demeter {

class StaticPolicy : public TmmPolicy {
 public:
  const char* name() const override { return "static"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override {
    (void)vm;
    (void)process;
    (void)start;
  }
};

}  // namespace demeter

#endif  // DEMETER_SRC_TMM_STATIC_POLICY_H_
