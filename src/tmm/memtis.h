// Memtis (SOSP'23) run inside the guest: the strongest PEBS-based baseline.
//
// Differences from Demeter that this model reproduces (§3.2.2, Figures 2/7/8):
//   * higher sample frequency with a dedicated collection kthread that polls
//     the PEBS buffers on a short period — CPU burn that scales with VM count;
//   * physical-page-centric hotness: every sample's gVA is translated to a
//     page (a software page-table walk per sample) and counted in a
//     page-granular histogram — locality across neighbouring pages is not
//     aggregated, so identifying the hot set needs many more samples;
//   * migration via sequential allocate-copy-remap with demotion for room.

#ifndef DEMETER_SRC_TMM_MEMTIS_H_
#define DEMETER_SRC_TMM_MEMTIS_H_

#include <cstdint>
#include <unordered_map>

#include "src/base/units.h"
#include "src/core/policy.h"

namespace demeter {

struct MemtisConfig {
  uint64_t sample_period = 509;            // Higher frequency than Demeter.
  double latency_threshold_ns = 64.0;
  Nanos poll_period = 1 * kMillisecond;    // Dedicated kthread polling.
  Nanos classify_period = 1 * kSecond;     // Histogram cooling + migration.
  double poll_fixed_ns = 2000.0;           // Wakeup + buffer check per poll.
  double translate_ns_per_sample = 170.0;  // gVA->page walk per sample.
  double histogram_ns_per_sample = 30.0;
  uint64_t max_migrate_per_epoch = 256;
  double hot_count_threshold = 4.0;        // Min decayed count to promote.
};

class MemtisPolicy : public TmmPolicy {
 public:
  explicit MemtisPolicy(MemtisConfig config = MemtisConfig{});

  const char* name() const override { return "memtis"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override;

  void RegisterMetrics(MetricScope scope) override {
    scope.RegisterCounter("samples_processed", &samples_processed_);
    scope.RegisterCounter("pages_promoted", &total_promoted_);
    scope.RegisterCounter("pages_demoted", &total_demoted_);
  }

  uint64_t total_promoted() const { return total_promoted_; }
  uint64_t total_demoted() const { return total_demoted_; }
  uint64_t samples_processed() const { return samples_processed_; }

 private:
  void RunPoll(Nanos now);
  void RunClassify(Nanos now);

  MemtisConfig config_;
  Vm* vm_ = nullptr;
  GuestProcess* process_ = nullptr;
  std::unordered_map<PageNum, double> page_counts_;  // vpn -> decayed count.
  uint64_t total_promoted_ = 0;
  uint64_t total_demoted_ = 0;
  uint64_t samples_processed_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_TMM_MEMTIS_H_
