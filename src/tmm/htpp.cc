#include "src/tmm/htpp.h"

#include <vector>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"
#include "src/tmm/policy_util.h"

namespace demeter {

HTppPolicy::HTppPolicy(HTppConfig config) : config_(config) {}

void HTppPolicy::Attach(Vm& vm, GuestProcess& process, Nanos start) {
  (void)process;  // Hypervisor-based: the guest interior is opaque.
  DEMETER_CHECK(vm_ == nullptr);
  vm_ = &vm;
  ScheduleNext(start);
}

void HTppPolicy::RunScan(Nanos now) {
  if (stopped_) {
    return;
  }
  ++scans_run_;
  const uint64_t promoted_before = total_promoted_;
  const uint64_t demoted_before = total_demoted_;
  double tracking_ns = 0.0;
  double classify_ns = 0.0;
  double migrate_ns = 0.0;
  Hypervisor& host = vm_->host();
  HostMemory& memory = host.memory();
  const MmuCosts& costs = vm_->config().mmu_costs;

  // MMU-notifier scan of the EPT: collect A bits per backed gPA, then the
  // unavoidable full invept on every vCPU (issued by the helper).
  struct Seen {
    PageNum gpa;
    bool accessed;
    TierIndex tier;
  };
  std::vector<Seen> snapshot;
  const uint64_t touched = host.ScanEptAccessedAndFlush(*vm_, [&](PageNum gpa, FrameId frame,
                                                                  bool accessed) {
    snapshot.push_back(Seen{gpa, accessed, memory.TierOf(frame)});
  });
  tracking_ns += static_cast<double>(touched) * costs.pte_scan_ns;
  tracking_ns += vm_->FullFlushCost();
  // MMU notifiers invalidate as they go: one invept per scanned chunk, not
  // one per scan, and the chunks land throughout the scan period — so the
  // guest's paging-structure caches never get a chance to stay warm.
  const size_t extra_flushes =
      snapshot.size() > config_.flush_chunk_pages
          ? (snapshot.size() - 1) / config_.flush_chunk_pages
          : 0;
  for (size_t f = 1; f <= extra_flushes; ++f) {
    const Nanos when = now + static_cast<Nanos>(f) * config_.scan_period /
                                 static_cast<Nanos>(extra_flushes + 1);
    vm_->host().ScheduleVmEvent(vm_->id(), when, [this, alive = alive_](Nanos) {
      if (*alive && !stopped_) {
        vm_->FullFlushAll();
      }
    });
    tracking_ns += vm_->FullFlushCost();
  }
  classify_ns += static_cast<double>(snapshot.size()) * config_.classify_ns_per_page;

  // Classification by gPA access streaks (no gVA locality available). The
  // promote list already covers the far swap tier (`tier != kFmemTier`), so
  // a hot swapped-out page skips levels straight to FMEM; cold SMEM pages
  // feed the second level of the demotion chain on three-tier hosts.
  const bool has_far = host.swap() != nullptr;
  std::vector<PageNum> promote;
  std::vector<PageNum> demote;
  std::vector<PageNum> far_demote;  // Cold SMEM pages: SMEM -> swap victims.
  for (const Seen& s : snapshot) {
    if (s.accessed) {
      const int streak = ++hit_streak_[s.gpa];
      if (s.tier != kFmemTier && streak >= config_.promote_after_hits &&
          promote.size() < config_.max_promote_per_scan) {
        promote.push_back(s.gpa);
      }
    } else {
      hit_streak_.erase(s.gpa);
      if (s.tier == kFmemTier) {
        demote.push_back(s.gpa);
      } else if (has_far && s.tier == kSmemTier) {
        far_demote.push_back(s.gpa);
      }
    }
  }

  // Sequential migration with temporary frames: demote first to make room,
  // then promote. One extra full flush covers the batch of EPT remaps.
  // While the host shrinks FMEM, skip promotions (streaks persist, so the
  // pages re-qualify next scan) — the shrink engine is evicting anyway.
  if (PromotionThrottled(*vm_)) {
    promote.clear();
  }
  size_t demoted_this_scan = 0;
  size_t next_demote = 0;
  size_t next_far_demote = 0;
  uint64_t migrated = 0;
  for (PageNum gpa : promote) {
    if (memory.FreePages(kFmemTier) == 0) {
      // Make room by demoting a cold FMEM page of this VM. On a three-tier
      // host a full SMEM continues the chain: push a cold SMEM page down to
      // the far swap tier first, then retry the FMEM victim into the frame
      // that freed (FMEM -> SMEM -> swap, never FMEM -> swap directly).
      bool made_room = false;
      while (next_demote < demote.size()) {
        const PageNum victim = demote[next_demote++];
        if (host.MigrateGpa(*vm_, victim, kSmemTier, now, &migrate_ns)) {
          ++total_demoted_;
          ++demoted_this_scan;
          made_room = true;
          break;
        }
        while (next_far_demote < far_demote.size()) {
          if (host.MigrateGpa(*vm_, far_demote[next_far_demote++], kSwapTier, now,
                              &migrate_ns)) {
            ++demoted_this_scan;
            break;
          }
        }
        if (host.MigrateGpa(*vm_, victim, kSmemTier, now, &migrate_ns)) {
          ++total_demoted_;
          ++demoted_this_scan;
          made_room = true;
          break;
        }
      }
      if (!made_room) {
        break;
      }
    }
    if (host.MigrateGpa(*vm_, gpa, kFmemTier, now, &migrate_ns)) {
      ++total_promoted_;
      ++migrated;
      hit_streak_.erase(gpa);
    }
  }
  if (migrated + demoted_this_scan > 0) {
    vm_->FullFlushAll();
    migrate_ns += vm_->FullFlushCost();
  }

  // All of this ran on host cores (no vCPU time stolen).
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(tracking_ns));
  vm_->mgmt_account().Charge(TmmStage::kClassification, static_cast<Nanos>(classify_ns));
  vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(migrate_ns));
  TraceMigrationBatch(*vm_, name(), now, migrate_ns, total_promoted_ - promoted_before,
                      total_demoted_ - demoted_before);

  ScheduleNext(now);
}

void HTppPolicy::ScheduleNext(Nanos now) {
  if (stopped_) {
    return;
  }
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.scan_period, [this, alive = alive_](Nanos fire) {
    if (*alive) {
      RunScan(fire);
    }
  });
}

}  // namespace demeter
