// DAMON-style guest TMM (§6.3): region-based access monitoring with
// sampled PTE.A-bit checks, plus a DAMOS-like promote/demote scheme.
//
// DAMON keeps a bounded number of regions over the monitored address space.
// Each sampling interval it checks ONE page per region (test-and-clear the
// Accessed bit, with the single-gVA flush that re-arms it) and counts the
// region as accessed if that page was. Every aggregation interval regions
// are split (to explore) and adjacent regions with similar scores merged
// (to stay bounded), then the scheme migrates hot regions to FMEM and cold
// regions out.
//
// Relative to Demeter this keeps the virtual-address-space advantage but
// (a) relies on TLB-flush-heavy A bits rather than PEBS and (b) sees only
// one page per region per interval, so convergence is slower and accuracy
// coarser — the limitations §6.3 lists for DAMON-based tiering.

#ifndef DEMETER_SRC_TMM_DAMON_H_
#define DEMETER_SRC_TMM_DAMON_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/core/policy.h"

namespace demeter {

struct DamonConfig {
  Nanos sample_interval = 2 * kMillisecond;       // One A-bit probe per region.
  Nanos aggregation_interval = 20 * kMillisecond; // Split/merge + scheme.
  size_t min_regions = 10;
  size_t max_regions = 100;
  // Regions merge when |score_a - score_b| <= merge_threshold.
  uint32_t merge_threshold = 1;
  // DAMOS scheme: promote regions whose score (accessed samples per
  // aggregation) is at least this; demote regions scoring zero.
  uint32_t hot_score = 3;
  uint64_t max_migrate_per_aggregation = 256;
  double probe_cost_ns = 150.0;  // Page-table probe + bookkeeping.
};

class DamonPolicy : public TmmPolicy {
 public:
  explicit DamonPolicy(DamonConfig config = DamonConfig{});

  const char* name() const override { return "damon"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override;

  void RegisterMetrics(MetricScope scope) override {
    scope.RegisterCounter("probes", &probes_);
    scope.RegisterCounter("pages_promoted", &total_promoted_);
    scope.RegisterCounter("pages_demoted", &total_demoted_);
  }

  struct Region {
    uint64_t start = 0;
    uint64_t end = 0;
    uint32_t score = 0;  // Accessed probes this aggregation window.

    uint64_t pages() const { return (end - start) / kPageSize; }
  };

  const std::vector<Region>& regions() const { return regions_; }
  uint64_t total_promoted() const { return total_promoted_; }
  uint64_t total_demoted() const { return total_demoted_; }
  uint64_t probes() const { return probes_; }

 private:
  void SyncRegions();
  void RunSample(Nanos now);
  void RunAggregation(Nanos now);
  void SplitAndMerge();

  DamonConfig config_;
  Vm* vm_ = nullptr;
  GuestProcess* process_ = nullptr;
  std::vector<Region> regions_;
  Rng rng_{0xda3074};
  uint64_t covered_end_ = 0;
  uint64_t total_promoted_ = 0;
  uint64_t total_demoted_ = 0;
  uint64_t probes_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_TMM_DAMON_H_
