#include "src/tmm/memtis.h"

#include <algorithm>
#include <vector>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"
#include "src/tmm/policy_util.h"

namespace demeter {

MemtisPolicy::MemtisPolicy(MemtisConfig config) : config_(config) {}

void MemtisPolicy::Attach(Vm& vm, GuestProcess& process, Nanos start) {
  DEMETER_CHECK(vm_ == nullptr);
  vm_ = &vm;
  process_ = &process;
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    PebsConfig pebs = vm.config().pebs;
    pebs.sample_period = config_.sample_period;
    pebs.latency_threshold_ns = config_.latency_threshold_ns;
    vm.vcpu(i).pebs = std::make_unique<PebsUnit>(pebs);
    vm.vcpu(i).pebs->BindFault(vm.host().fault_injector(), vm.id());
    vm.vcpu(i).pebs->set_enabled(true);
    // PMI handler processes the overflowing buffer inline (translation +
    // histogram), charging the interrupted vCPU — at this sample frequency
    // overshoots are common (§3.2.2).
    Vcpu* vcpu = &vm.vcpu(i);
    vm.vcpu(i).pebs->set_pmi_handler([this, alive = alive_,
                                      vcpu](std::vector<PebsRecord>&& records, Nanos) {
      if (!*alive) {
        return;
      }
      const double cost =
          static_cast<double>(records.size()) *
          (config_.translate_ns_per_sample + config_.histogram_ns_per_sample);
      vcpu->clock_ns += cost;
      vm_->mgmt_account().Charge(TmmStage::kPmi, static_cast<Nanos>(cost));
      for (const PebsRecord& r : records) {
        page_counts_[PageOf(r.gva)] += 1.0;
        ++samples_processed_;
      }
    });
  }
  vm.host().ScheduleVmEvent(vm.id(), start + config_.poll_period, [this, alive = alive_](Nanos fire) {
    if (*alive) {
      RunPoll(fire);
    }
  });
  vm.host().ScheduleVmEvent(vm.id(), start + config_.classify_period,
                              [this, alive = alive_](Nanos fire) {
                                if (*alive) {
                                  RunClassify(fire);
                                }
                              });
}

void MemtisPolicy::RunPoll(Nanos now) {
  if (stopped_) {
    return;
  }
  // Dedicated collection kthread: wake, drain every vCPU buffer, translate
  // each sample to a physical page, update the histogram.
  double cost = config_.poll_fixed_ns;
  for (int i = 0; i < vm_->num_vcpus(); ++i) {
    auto records = vm_->vcpu(i).pebs->Drain();
    cost += static_cast<double>(records.size()) *
            (config_.translate_ns_per_sample + config_.histogram_ns_per_sample);
    for (const PebsRecord& r : records) {
      page_counts_[PageOf(r.gva)] += 1.0;
      ++samples_processed_;
    }
  }
  vm_->vcpu(0).clock_ns += cost;  // The kthread occupies a vCPU.
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(cost));
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.poll_period, [this, alive = alive_](Nanos fire) {
    if (*alive) {
      RunPoll(fire);
    }
  });
}

void MemtisPolicy::RunClassify(Nanos now) {
  if (stopped_) {
    return;
  }
  const uint64_t promoted_before = total_promoted_;
  const uint64_t demoted_before = total_demoted_;
  double classify_ns = 0.0;
  double migrate_ns = 0.0;
  GuestKernel& kernel = vm_->kernel();

  // Page-granular histogram: promote pages whose decayed count clears the
  // hot threshold, hottest first, within the FMEM budget.
  std::vector<std::pair<PageNum, double>> hot;
  for (const auto& [vpn, count] : page_counts_) {
    if (count >= config_.hot_count_threshold) {
      hot.emplace_back(vpn, count);
    }
  }
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  // Three-tier hosts: swap-backed hot pages jump the queue. Each sampled
  // access to one was a device read, so per unit of hotness they buy back
  // far more latency than an SMEM page (level-skip promotion).
  if (vm_->host().swap() != nullptr) {
    std::stable_partition(hot.begin(), hot.end(), [this](const auto& entry) {
      return SwapBacked(*vm_, *process_, entry.first);
    });
  }
  classify_ns += static_cast<double>(page_counts_.size()) * 20.0;

  uint64_t migrated = 0;
  // The histogram halves below either way, so a throttled round costs no
  // accuracy — the still-hot pages re-cross the threshold next epoch.
  const bool throttled = PromotionThrottled(*vm_);
  for (const auto& [vpn, count] : hot) {
    if (throttled || migrated >= config_.max_migrate_per_epoch) {
      break;
    }
    if (vm_->NodeOfVpn(*process_, vpn) != 1) {
      continue;  // Already in FMEM (or unmapped).
    }
    // Sequential migration: demote for room when FMEM is tight.
    if (kernel.node(0).free_pages() <= kernel.node(0).watermark_min()) {
      if (DemoteForHeadroom(*vm_, 1, now, &migrate_ns) == 0) {
        break;
      }
      ++total_demoted_;
    }
    if (vm_->MovePage(*process_, vpn, /*dst_node=*/0, now, &migrate_ns)) {
      ++total_promoted_;
      ++migrated;
    }
  }

  // Histogram cooling.
  for (auto it = page_counts_.begin(); it != page_counts_.end();) {
    it->second /= 2.0;
    if (it->second < 0.5) {
      it = page_counts_.erase(it);
    } else {
      ++it;
    }
  }

  vm_->vcpu(0).clock_ns += classify_ns + migrate_ns;
  vm_->mgmt_account().Charge(TmmStage::kClassification, static_cast<Nanos>(classify_ns));
  vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(migrate_ns));
  TraceMigrationBatch(*vm_, name(), now, migrate_ns, total_promoted_ - promoted_before,
                      total_demoted_ - demoted_before);
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.classify_period,
                                [this, alive = alive_](Nanos fire) {
                                  if (*alive) {
                                    RunClassify(fire);
                                  }
                                });
}

}  // namespace demeter
