// Process virtual address space: VMAs with Linux-style layout.
//
// The heap grows upward from start_brk and the mmap area grows downward
// from mmap_base. Demeter tracks hotness only in these two regions (§3.2.1):
// code/data/stack are small and inherently hot, so they are excluded from
// range classification (Vma::tracked is false for them).

#ifndef DEMETER_SRC_GUEST_ADDRESS_SPACE_H_
#define DEMETER_SRC_GUEST_ADDRESS_SPACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/units.h"

namespace demeter {

enum class VmaKind {
  kCode,
  kData,
  kStack,
  kHeap,
  kMmap,
};

struct Vma {
  uint64_t start = 0;  // Inclusive, page-aligned.
  uint64_t end = 0;    // Exclusive, page-aligned.
  VmaKind kind = VmaKind::kHeap;
  bool tracked = false;  // Subject to range-based hotness classification.

  uint64_t size() const { return end - start; }
  bool Contains(uint64_t addr) const { return addr >= start && addr < end; }
};

const char* VmaKindName(VmaKind kind);

class AddressSpace {
 public:
  // Linux-x86-64-flavoured layout constants.
  static constexpr uint64_t kCodeStart = 0x0000000000400000;  // 4 MiB.
  static constexpr uint64_t kCodeSize = 2 * kMiB;
  static constexpr uint64_t kDataSize = 4 * kMiB;
  static constexpr uint64_t kStartBrk = 0x0000000010000000;   // 256 MiB.
  static constexpr uint64_t kMmapBase = 0x00007f0000000000;   // Grows down.
  static constexpr uint64_t kStackTop = 0x00007ffffffff000;
  static constexpr uint64_t kStackSize = 8 * kMiB;

  AddressSpace();

  // Extends the heap by `bytes` (page-rounded); returns the start address of
  // the new region (the old brk).
  uint64_t Sbrk(uint64_t bytes);

  // Maps a fresh anonymous region of `bytes` below previous mappings;
  // returns its start address.
  uint64_t Mmap(uint64_t bytes);

  uint64_t brk() const { return brk_; }
  uint64_t mmap_floor() const { return mmap_floor_; }

  const std::vector<Vma>& vmas() const { return vmas_; }
  const Vma* FindVma(uint64_t addr) const;

  // Replaces this space's layout with one captured on another host (live
  // migration restore). Only legal on a freshly constructed space — the
  // workload's region addresses were assigned under the source layout, so
  // the destination must reproduce it exactly before any allocation here.
  void RestoreLayout(const std::vector<Vma>& vmas, uint64_t brk, uint64_t mmap_floor);

  // Total bytes in tracked (heap + mmap) VMAs.
  uint64_t TrackedBytes() const;

 private:
  std::vector<Vma> vmas_;
  uint64_t brk_;
  uint64_t mmap_floor_;  // Lowest address handed out by Mmap so far.
  size_t heap_vma_index_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_GUEST_ADDRESS_SPACE_H_
