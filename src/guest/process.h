// A guest process: address space plus guest page table (GPT).

#ifndef DEMETER_SRC_GUEST_PROCESS_H_
#define DEMETER_SRC_GUEST_PROCESS_H_

#include <cstdint>

#include "src/guest/address_space.h"
#include "src/mmu/page_table.h"

namespace demeter {

class GuestProcess {
 public:
  explicit GuestProcess(int pid) : pid_(pid) {}

  GuestProcess(const GuestProcess&) = delete;
  GuestProcess& operator=(const GuestProcess&) = delete;

  int pid() const { return pid_; }
  AddressSpace& space() { return space_; }
  const AddressSpace& space() const { return space_; }
  PageTable& gpt() { return gpt_; }
  const PageTable& gpt() const { return gpt_; }

  // Convenience allocators returning the base address of the new region.
  uint64_t HeapAlloc(uint64_t bytes) { return space_.Sbrk(bytes); }
  uint64_t MmapAlloc(uint64_t bytes) { return space_.Mmap(bytes); }

 private:
  int pid_;
  AddressSpace space_;
  PageTable gpt_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_GUEST_PROCESS_H_
