#include "src/guest/numa_node.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/rng.h"

namespace demeter {

NumaNode::NumaNode(int id, PageNum gpa_base, uint64_t span_pages, uint64_t present_pages,
                   uint64_t shuffle_seed)
    : id_(id),
      gpa_base_(gpa_base),
      span_pages_(span_pages),
      present_pages_(present_pages),
      initial_present_pages_(present_pages) {
  DEMETER_CHECK_LE(present_pages, span_pages);
  free_list_.reserve(present_pages);
  // Low gPAs first out of the LIFO.
  for (uint64_t i = present_pages; i > 0; --i) {
    free_list_.push_back(gpa_base + i - 1);
  }
  if (shuffle_seed != 0 && present_pages > 1) {
    // Fisher-Yates with the node's seed: deterministic fragmentation.
    Rng rng(shuffle_seed + static_cast<uint64_t>(id));
    for (uint64_t i = present_pages - 1; i > 0; --i) {
      std::swap(free_list_[i], free_list_[rng.NextBelow(i + 1)]);
    }
  }
}

std::optional<PageNum> NumaNode::AllocPage() {
  if (free_list_.empty()) {
    return std::nullopt;
  }
  const PageNum gpa = free_list_.back();
  free_list_.pop_back();
  return gpa;
}

void NumaNode::FreePage(PageNum gpa) {
  DEMETER_CHECK(ContainsGpa(gpa)) << "page " << gpa << " not in node " << id_;
  DEMETER_CHECK_LT(free_list_.size(), present_pages_);
  free_list_.push_back(gpa);
}

uint64_t NumaNode::BalloonTake(uint64_t n, std::vector<PageNum>* taken) {
  const uint64_t count = std::min<uint64_t>(n, free_list_.size());
  for (uint64_t i = 0; i < count; ++i) {
    taken->push_back(free_list_.back());
    free_list_.pop_back();
  }
  present_pages_ -= count;
  return count;
}

void NumaNode::BalloonReturn(const std::vector<PageNum>& pages) {
  for (PageNum gpa : pages) {
    DEMETER_CHECK(ContainsGpa(gpa));
    free_list_.push_back(gpa);
  }
  present_pages_ += pages.size();
  DEMETER_CHECK_LE(present_pages_, span_pages_);
}

}  // namespace demeter
