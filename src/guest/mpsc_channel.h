// Lock-free bounded multi-producer single-consumer channel.
//
// Demeter feeds PEBS samples from per-vCPU context-switch drains into the
// single range-classifier thread through this channel (§3.2.2). The
// implementation is Vyukov's bounded MPMC ring (each slot carries a sequence
// number), used here in MPSC mode. Push never blocks: when the ring is full
// the sample is dropped and counted, exactly as a fixed sample channel in a
// kernel would shed load.

#ifndef DEMETER_SRC_GUEST_MPSC_CHANNEL_H_
#define DEMETER_SRC_GUEST_MPSC_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/logging.h"

namespace demeter {

template <typename T>
class MpscChannel {
 public:
  explicit MpscChannel(size_t capacity_pow2) : mask_(capacity_pow2 - 1) {
    DEMETER_CHECK_GT(capacity_pow2, 0u);
    DEMETER_CHECK_EQ(capacity_pow2 & mask_, 0u) << "capacity must be a power of two";
    slots_ = std::vector<Slot>(capacity_pow2);
    for (size_t i = 0; i < capacity_pow2; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  // Producer side; safe to call from multiple threads concurrently.
  // Returns false (and counts a drop) when the channel is full.
  bool Push(const T& value) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.value = value;
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;  // Full.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Consumer side; single thread only.
  std::optional<T> Pop() {
    const uint64_t pos = head_;
    Slot& slot = slots_[pos & mask_];
    const uint64_t seq = slot.sequence.load(std::memory_order_acquire);
    const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
    if (diff < 0) {
      return std::nullopt;  // Empty.
    }
    T value = std::move(slot.value);
    slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
    ++head_;
    return value;
  }

  // Drains up to `max` items into `out`; returns the count. Consumer only.
  size_t PopBatch(std::vector<T>* out, size_t max) {
    size_t n = 0;
    while (n < max) {
      auto v = Pop();
      if (!v.has_value()) {
        break;
      }
      out->push_back(std::move(*v));
      ++n;
    }
    return n;
  }

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<uint64_t> sequence{0};
    T value{};
  };

  size_t mask_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> tail_{0};  // Producers claim slots here.
  uint64_t head_ = 0;              // Single consumer cursor.
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace demeter

#endif  // DEMETER_SRC_GUEST_MPSC_CHANNEL_H_
