#include "src/guest/address_space.h"

#include "src/base/logging.h"

namespace demeter {

const char* VmaKindName(VmaKind kind) {
  switch (kind) {
    case VmaKind::kCode:
      return "code";
    case VmaKind::kData:
      return "data";
    case VmaKind::kStack:
      return "stack";
    case VmaKind::kHeap:
      return "heap";
    case VmaKind::kMmap:
      return "mmap";
  }
  return "?";
}

AddressSpace::AddressSpace() : brk_(kStartBrk), mmap_floor_(kMmapBase) {
  vmas_.push_back(Vma{kCodeStart, kCodeStart + kCodeSize, VmaKind::kCode, false});
  vmas_.push_back(
      Vma{kCodeStart + kCodeSize, kCodeStart + kCodeSize + kDataSize, VmaKind::kData, false});
  vmas_.push_back(Vma{kStackTop - kStackSize, kStackTop, VmaKind::kStack, false});
  // Heap VMA starts empty and grows with Sbrk.
  vmas_.push_back(Vma{kStartBrk, kStartBrk, VmaKind::kHeap, true});
  heap_vma_index_ = vmas_.size() - 1;
}

uint64_t AddressSpace::Sbrk(uint64_t bytes) {
  const uint64_t old_brk = brk_;
  brk_ = PageCeil(brk_ + bytes);
  DEMETER_CHECK_LT(brk_, mmap_floor_) << "heap ran into mmap area";
  vmas_[heap_vma_index_].end = brk_;
  return old_brk;
}

uint64_t AddressSpace::Mmap(uint64_t bytes) {
  const uint64_t size = PageCeil(bytes);
  DEMETER_CHECK_GT(size, 0u);
  // One guard page between mappings, like the kernel's gap.
  const uint64_t start = mmap_floor_ - size - kPageSize;
  DEMETER_CHECK_GT(start, brk_) << "mmap area ran into heap";
  mmap_floor_ = start;
  vmas_.push_back(Vma{start, start + size, VmaKind::kMmap, true});
  return start;
}

void AddressSpace::RestoreLayout(const std::vector<Vma>& vmas, uint64_t brk,
                                 uint64_t mmap_floor) {
  DEMETER_CHECK(brk_ == kStartBrk && mmap_floor_ == kMmapBase)
      << "RestoreLayout on a used address space";
  DEMETER_CHECK_GE(brk, kStartBrk);
  DEMETER_CHECK_LE(mmap_floor, kMmapBase);
  vmas_ = vmas;
  brk_ = brk;
  mmap_floor_ = mmap_floor;
  heap_vma_index_ = vmas_.size();
  for (size_t i = 0; i < vmas_.size(); ++i) {
    if (vmas_[i].kind == VmaKind::kHeap) {
      heap_vma_index_ = i;
      break;
    }
  }
  DEMETER_CHECK_LT(heap_vma_index_, vmas_.size()) << "restored layout has no heap VMA";
}

const Vma* AddressSpace::FindVma(uint64_t addr) const {
  for (const Vma& vma : vmas_) {
    if (vma.Contains(addr)) {
      return &vma;
    }
  }
  return nullptr;
}

uint64_t AddressSpace::TrackedBytes() const {
  uint64_t total = 0;
  for (const Vma& vma : vmas_) {
    if (vma.tracked) {
      total += vma.size();
    }
  }
  return total;
}

}  // namespace demeter
