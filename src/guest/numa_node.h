// Guest NUMA node: a range of guest-physical pages corresponding to one
// host memory tier (§3.3 "NUMA-Based Tier Exposure").
//
// Each node's gPA span equals 100% of the VM's total memory so the balloon
// can shift composition smoothly between all-FMEM and all-SMEM; only
// `present` pages are usable at any moment. The node hands out pages LIFO
// and exposes the balloon take/return interface plus Linux-style
// min/low/high watermarks that drive reclaim.

#ifndef DEMETER_SRC_GUEST_NUMA_NODE_H_
#define DEMETER_SRC_GUEST_NUMA_NODE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/units.h"

namespace demeter {

class NumaNode {
 public:
  // `span_pages`: size of the node's gPA window (the balloon maximum).
  // `present_pages`: pages initially usable (the rest start ballooned out).
  // A non-zero `shuffle_seed` randomizes the free-list order, modelling the
  // fragmentation of a previously used kernel allocator — the reason
  // physical placement follows access order rather than address order
  // (Figure 4).
  NumaNode(int id, PageNum gpa_base, uint64_t span_pages, uint64_t present_pages,
           uint64_t shuffle_seed = 0);

  int id() const { return id_; }
  PageNum gpa_base() const { return gpa_base_; }
  PageNum gpa_end() const { return gpa_base_ + span_pages_; }
  bool ContainsGpa(PageNum gpa) const { return gpa >= gpa_base() && gpa < gpa_end(); }

  // Page allocation (guest kernel buddy front end).
  std::optional<PageNum> AllocPage();
  void FreePage(PageNum gpa);

  // Balloon interface: removes up to `n` free pages from the node (inflate)
  // or returns previously taken pages (deflate). Inflation can only take
  // free pages; the caller reclaims first if it wants more.
  uint64_t BalloonTake(uint64_t n, std::vector<PageNum>* taken);
  void BalloonReturn(const std::vector<PageNum>& pages);

  uint64_t span_pages() const { return span_pages_; }
  uint64_t present_pages() const { return present_pages_; }
  // Boot-time present size; present + balloon-held must always equal this
  // (the conservation invariant the checker audits).
  uint64_t initial_present_pages() const { return initial_present_pages_; }
  uint64_t free_pages() const { return free_list_.size(); }
  uint64_t used_pages() const { return present_pages_ - free_pages(); }

  // Linux-style watermarks, as fractions of present pages.
  uint64_t watermark_min() const { return present_pages_ / 64; }
  uint64_t watermark_low() const { return present_pages_ / 32; }
  uint64_t watermark_high() const { return present_pages_ / 16; }
  bool BelowLow() const { return free_pages() < watermark_low(); }
  bool BelowMin() const { return free_pages() < watermark_min(); }

 private:
  int id_;
  PageNum gpa_base_;
  uint64_t span_pages_;
  uint64_t present_pages_;
  uint64_t initial_present_pages_;
  std::vector<PageNum> free_list_;  // LIFO.
};

}  // namespace demeter

#endif  // DEMETER_SRC_GUEST_NUMA_NODE_H_
