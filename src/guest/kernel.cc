#include "src/guest/kernel.h"

#include <utility>

#include "src/base/logging.h"

namespace demeter {

GuestKernel::GuestKernel(const GuestKernelConfig& config) : config_(config) {
  DEMETER_CHECK_EQ(config.node_span_pages.size(), static_cast<size_t>(config.num_nodes));
  DEMETER_CHECK_EQ(config.node_present_pages.size(), static_cast<size_t>(config.num_nodes));
  PageNum base = 0;
  for (int i = 0; i < config.num_nodes; ++i) {
    const uint64_t span = config.node_span_pages[static_cast<size_t>(i)];
    const uint64_t present = config.node_present_pages[static_cast<size_t>(i)];
    nodes_.emplace_back(i, base, span, present, config.free_list_shuffle_seed);
    base += span;
  }
  alloc_fifo_.resize(static_cast<size_t>(config.num_nodes));
}

int GuestKernel::NodeOfGpa(PageNum gpa) const {
  for (const NumaNode& node : nodes_) {
    if (node.ContainsGpa(gpa)) {
      return node.id();
    }
  }
  return -1;
}

GuestProcess& GuestKernel::CreateProcess() {
  const int pid = static_cast<int>(processes_.size()) + 1;
  processes_.push_back(std::make_unique<GuestProcess>(pid));
  return *processes_.back();
}

GuestProcess* GuestKernel::process(int pid) {
  for (auto& p : processes_) {
    if (p->pid() == pid) {
      return p.get();
    }
  }
  return nullptr;
}

std::optional<PageNum> GuestKernel::AllocGpa(int preferred_node, bool allow_fallback,
                                             double* cost_ns) {
  std::optional<PageNum> gpa;
  if (fault_ != nullptr && fault_->ShouldInject(FaultSite::kTierExhaustion, vm_id_)) {
    // Transient exhaustion: the preferred node's free list looks dry for
    // this one allocation, forcing the fallback (or OOM) path below.
  } else {
    gpa = node(preferred_node).AllocPage();
  }
  if (gpa.has_value()) {
    return gpa;
  }
  if (!allow_fallback) {
    return std::nullopt;
  }
  // Fallback in node-id order (node 0 = FMEM is always preferred first by
  // callers; the fallback chain mirrors Linux zonelist ordering).
  for (int i = 0; i < num_nodes(); ++i) {
    if (i == preferred_node) {
      continue;
    }
    gpa = node(i).AllocPage();
    if (gpa.has_value()) {
      ++stats_.fallback_allocs;
      if (cost_ns != nullptr) {
        *cost_ns += 300.0;  // Zonelist walk + remote allocation.
      }
      return gpa;
    }
  }
  ++stats_.oom_failures;
  if (cost_ns != nullptr) {
    // The failed zonelist walk costs the same kernel work as a successful
    // fallback; previously the OOM path charged nothing.
    *cost_ns += 300.0;
  }
  return std::nullopt;
}

void GuestKernel::FreeGpa(PageNum gpa) {
  const int n = NodeOfGpa(gpa);
  DEMETER_CHECK_GE(n, 0);
  rmap_.erase(gpa);
  node(n).FreePage(gpa);
}

void GuestKernel::DiscardPage(GuestProcess& process, PageNum vpn, PageNum gpa) {
  const uint64_t old = process.gpt().Unmap(vpn);
  DEMETER_CHECK_EQ(old, gpa) << "discard of vpn " << vpn << " mapped elsewhere";
  FreeGpa(gpa);
  ++stats_.sigbus_discards;
}

void GuestKernel::RecordAlloc(PageNum gpa, int pid, PageNum vpn) {
  rmap_[gpa] = RmapEntry{pid, vpn};
  const int n = NodeOfGpa(gpa);
  alloc_fifo_[static_cast<size_t>(n)].push_back(gpa);
}

std::optional<PageNum> GuestKernel::HandleFault(GuestProcess& process, PageNum vpn,
                                                double* cost_ns) {
  ++stats_.faults;
  auto gpa = AllocGpa(/*preferred_node=*/0, /*allow_fallback=*/true, cost_ns);
  if (!gpa.has_value()) {
    return std::nullopt;
  }
  DEMETER_CHECK(process.gpt().Map(vpn, *gpa, /*writable=*/true));
  RecordAlloc(*gpa, process.pid(), vpn);
  return gpa;
}

std::optional<PageNum> GuestKernel::AdoptPage(GuestProcess& process, PageNum vpn,
                                              int preferred_node, double* cost_ns) {
  auto gpa = AllocGpa(preferred_node, /*allow_fallback=*/true, cost_ns);
  if (!gpa.has_value()) {
    return std::nullopt;
  }
  DEMETER_CHECK(process.gpt().Map(vpn, *gpa, /*writable=*/true));
  RecordAlloc(*gpa, process.pid(), vpn);
  return gpa;
}

const RmapEntry* GuestKernel::Rmap(PageNum gpa) const {
  auto it = rmap_.find(gpa);
  return it == rmap_.end() ? nullptr : &it->second;
}

void GuestKernel::OnPageMoved(PageNum old_gpa, PageNum new_gpa) {
  auto it = rmap_.find(old_gpa);
  DEMETER_CHECK(it != rmap_.end()) << "moved page has no rmap entry";
  const RmapEntry entry = it->second;
  rmap_.erase(it);
  rmap_[new_gpa] = entry;
  const int n = NodeOfGpa(new_gpa);
  alloc_fifo_[static_cast<size_t>(n)].push_back(new_gpa);
}

void GuestKernel::OnPagesSwapped(PageNum gpa_a, PageNum gpa_b) {
  auto it_a = rmap_.find(gpa_a);
  auto it_b = rmap_.find(gpa_b);
  DEMETER_CHECK(it_a != rmap_.end() && it_b != rmap_.end()) << "swapping unmapped gPAs";
  std::swap(it_a->second, it_b->second);
}

std::optional<PageNum> GuestKernel::PickVictim(int node_id) {
  auto& fifo = alloc_fifo_[static_cast<size_t>(node_id)];
  while (!fifo.empty()) {
    const PageNum gpa = fifo.front();
    fifo.pop_front();
    // Lazily skip pages that were freed or migrated away since enqueue.
    auto it = rmap_.find(gpa);
    if (it != rmap_.end() && NodeOfGpa(gpa) == node_id) {
      // Re-enqueue at the back so repeated picks cycle through the node.
      fifo.push_back(gpa);
      return gpa;
    }
  }
  return std::nullopt;
}

double GuestKernel::OnContextSwitch(int vcpu, Nanos now) {
  double cost = 0.0;
  for (const CtxHook& hook : ctx_hooks_) {
    cost += hook(vcpu, now);
  }
  return cost;
}

}  // namespace demeter
