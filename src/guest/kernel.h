// Guest kernel: NUMA nodes, processes, lazy page-fault allocation, reverse
// map, victim selection, and context-switch hooks.
//
// Lazy first-touch allocation is the mechanism behind Figure 4: physical
// placement follows access order, not spatial order, so locality visible in
// gVA space is destroyed in gPA/hPA space. The kernel allocates from the
// fast node until it runs dry, then falls back to the slow node (Linux
// local-first mempolicy on a tiered topology).

#ifndef DEMETER_SRC_GUEST_KERNEL_H_
#define DEMETER_SRC_GUEST_KERNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/guest/numa_node.h"
#include "src/guest/process.h"

namespace demeter {

struct RmapEntry {
  int pid = -1;
  PageNum vpn = 0;
};

struct GuestKernelConfig {
  int num_nodes = 2;
  // Per-node gPA span (balloon maximum) and initially present pages.
  std::vector<uint64_t> node_span_pages;
  std::vector<uint64_t> node_present_pages;
  double reclaim_cost_ns = 3000.0;  // Direct-reclaim path per page.
  // Non-zero: shuffle each node's free list (allocator fragmentation).
  uint64_t free_list_shuffle_seed = 0;
};

class GuestKernel {
 public:
  struct Stats {
    uint64_t faults = 0;
    uint64_t fallback_allocs = 0;  // Preferred node dry; spilled to another.
    uint64_t reclaim_events = 0;
    uint64_t oom_failures = 0;
    uint64_t sigbus_discards = 0;  // Pages dropped after a host MCE (hwpoison).
  };

  explicit GuestKernel(const GuestKernelConfig& config);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  NumaNode& node(int i) { return nodes_[static_cast<size_t>(i)]; }
  const NumaNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }

  // Node containing a gPA, or -1.
  int NodeOfGpa(PageNum gpa) const;

  GuestProcess& CreateProcess();
  GuestProcess* process(int pid);
  const std::vector<std::unique_ptr<GuestProcess>>& processes() const { return processes_; }

  // Page-fault path: allocates a gPA (fast node first, slow fallback), maps
  // vpn -> gpa in the process GPT, and records the reverse mapping.
  // Returns nullopt on OOM. `cost_ns` accumulates extra kernel work
  // (fallback search, reclaim).
  std::optional<PageNum> HandleFault(GuestProcess& process, PageNum vpn, double* cost_ns);

  // Live-migration restore: like the fault path, but the node preference
  // comes from the source host's placement instead of first-touch policy,
  // and no fault is counted (the guest never faulted — the page arrived
  // mapped). Falls back across nodes when the preferred one is dry.
  std::optional<PageNum> AdoptPage(GuestProcess& process, PageNum vpn, int preferred_node,
                                   double* cost_ns);

  // Raw allocation with fallback; used by fault path and by migration.
  // `preferred` only (no fallback) when `allow_fallback` is false.
  std::optional<PageNum> AllocGpa(int preferred_node, bool allow_fallback, double* cost_ns);
  void FreeGpa(PageNum gpa);

  // SIGBUS handler for an uncorrectable host memory error: drops the
  // mapping and the page (contents are gone; a later touch refaults onto a
  // fresh zero page). Mirrors Linux's memory_failure() -> kill path.
  void DiscardPage(GuestProcess& process, PageNum vpn, PageNum gpa);

  // Reverse map: gPA -> owning (pid, vpn); nullptr when gPA is free.
  const RmapEntry* Rmap(PageNum gpa) const;

  // Bookkeeping for migrations: the page previously at old_gpa now lives at
  // new_gpa (same owner).
  void OnPageMoved(PageNum old_gpa, PageNum new_gpa);

  // Bookkeeping for a balanced swap: the owners of gpa_a and gpa_b have been
  // exchanged (contents moved with them).
  void OnPagesSwapped(PageNum gpa_a, PageNum gpa_b);

  // Oldest allocated page in `node` (FIFO — an approximation of inactive-LRU
  // eviction order). Used as the demotion victim source by reclaim.
  std::optional<PageNum> PickVictim(int node);

  // Context-switch hooks (Demeter's PEBS drain attaches here). The returned
  // double is extra CPU cost in ns charged to the switching vCPU.
  using CtxHook = std::function<double(int vcpu, Nanos now)>;
  void RegisterContextSwitchHook(CtxHook hook) { ctx_hooks_.push_back(std::move(hook)); }
  double OnContextSwitch(int vcpu, Nanos now);

  const Stats& stats() const { return stats_; }

  // Wires the shared fault injector (null = fault-free). With an injector,
  // AllocGpa's preferred-node attempt can transiently fail (tier
  // exhaustion), exercising the fallback / reclaim machinery.
  void BindFault(FaultInjector* fault, int vm_id) {
    fault_ = fault;
    vm_id_ = vm_id;
  }

  // Total pages currently mapped by any process (== rmap size).
  uint64_t mapped_pages() const { return rmap_.size(); }

 private:
  void RecordAlloc(PageNum gpa, int pid, PageNum vpn);

  GuestKernelConfig config_;
  std::vector<NumaNode> nodes_;
  std::vector<std::unique_ptr<GuestProcess>> processes_;
  std::unordered_map<PageNum, RmapEntry> rmap_;
  // Per-node allocation FIFO for victim selection; lazily pruned.
  std::vector<std::deque<PageNum>> alloc_fifo_;
  std::vector<CtxHook> ctx_hooks_;
  FaultInjector* fault_ = nullptr;
  int vm_id_ = 0;
  Stats stats_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_GUEST_KERNEL_H_
