// Deterministic discrete-event queue over virtual time.
//
// Events scheduled at the same timestamp fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulation runs
// are exactly reproducible.
//
// Lanes: the queue is internally split into one or more lanes, each with its
// own heap. Lane 0 is the host lane (the default for Schedule()); callers
// that know an event only touches one shard of per-VM state route it to that
// shard's lane with ScheduleOn(). RunUntil() merges the lanes by popping the
// globally smallest (when, seq) top each step, so the fire order is
// *identical* to a single-heap queue for any lane count — lanes are an
// ownership index, not a reordering. The payoff is TakeFiredLanes(): after a
// drain the caller learns exactly which lanes fired callbacks and can skip
// refreshing cached per-shard state for the lanes that stayed quiet.
//
// Cancellation is exact: ids are unique for the queue's lifetime (a monotone
// counter doubles as a generation id), and the queue tracks the live id set
// in a hash set. Cancel() on an id that already fired, was already
// cancelled, or never existed returns false and changes nothing — the
// earlier lazy scheme returned true for fired ids, decremented the live
// count for events no longer in the heap, and left the tombstone in the
// cancelled list forever (every later Cancel paid a linear scan over it).

#ifndef DEMETER_SRC_SIM_EVENT_QUEUE_H_
#define DEMETER_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/base/units.h"

namespace demeter {

class EventQueue {
 public:
  using Callback = std::function<void(Nanos now)>;

  // At most 64 lanes so a fired-lane set fits in one word.
  static constexpr int kMaxLanes = 64;

  explicit EventQueue(int lanes = 1);

  // Schedules `cb` to run at virtual time `when` on the host lane (lane 0).
  // Returns an id that can be used to cancel the event before it fires.
  uint64_t Schedule(Nanos when, Callback cb);

  // Schedules on a specific lane. The lane changes nothing about *when* the
  // event fires relative to others — only which bit TakeFiredLanes() sets.
  uint64_t ScheduleOn(int lane, Nanos when, Callback cb);

  // Cancels a pending event. Returns false (and is a no-op) if the event
  // already fired, was already cancelled, or the id was never issued.
  // Lane-agnostic: the entry stays in its heap and is dropped at pop time.
  bool Cancel(uint64_t id);

  // Runs all events with time <= until, in (time, seq) order across every
  // lane. Events may schedule further events; those also run if due.
  // Returns the number of events fired.
  size_t RunUntil(Nanos until);

  // Time of the earliest pending event across all lanes, or kNoEvent when
  // empty. Cancelled events may still occupy a heap top, so this is a lower
  // bound — safe for lock-step advancement.
  static constexpr Nanos kNoEvent = ~static_cast<Nanos>(0);
  Nanos NextEventTime() const;

  // Bitmask of lanes whose callbacks fired since the last call (bit L for
  // lane L); clears the set. Cancelled entries discarded at pop time do not
  // count as fires.
  uint64_t TakeFiredLanes() { return std::exchange(fired_lanes_, 0); }

  int lanes() const { return static_cast<int>(lanes_.size()); }
  bool empty() const { return live_.empty(); }
  size_t size() const { return live_.size(); }

 private:
  struct Event {
    Nanos when;
    uint64_t seq;
    uint64_t id;
    Callback cb;
  };
  // Min-heap order on (when, seq) for std::push_heap/std::pop_heap, which
  // want a max-heap comparator — hence the inversion.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  // Raw vectors + heap algorithms instead of std::priority_queue: top() is
  // const so popping an event used to copy its std::function (an allocation
  // per fired event on the hottest simulation loop); here the event is moved
  // out.
  std::vector<std::vector<Event>> lanes_;
  std::unordered_set<uint64_t> live_;       // Scheduled, not fired/cancelled.
  std::unordered_set<uint64_t> cancelled_;  // Cancelled, still in a heap.
  uint64_t fired_lanes_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace demeter

#endif  // DEMETER_SRC_SIM_EVENT_QUEUE_H_
