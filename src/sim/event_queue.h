// Deterministic discrete-event queue over virtual time.
//
// Events scheduled at the same timestamp fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulation runs
// are exactly reproducible.

#ifndef DEMETER_SRC_SIM_EVENT_QUEUE_H_
#define DEMETER_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/units.h"

namespace demeter {

class EventQueue {
 public:
  using Callback = std::function<void(Nanos now)>;

  // Schedules `cb` to run at virtual time `when`. Returns an id that can be
  // used to cancel the event before it fires.
  uint64_t Schedule(Nanos when, Callback cb);

  // Cancels a pending event. Returns false if it already fired or was
  // already cancelled.
  bool Cancel(uint64_t id);

  // Runs all events with time <= until, in (time, seq) order. Events may
  // schedule further events; those also run if due. Returns the number of
  // events fired.
  size_t RunUntil(Nanos until);

  // Time of the earliest pending event, or kNoEvent when empty.
  static constexpr Nanos kNoEvent = ~static_cast<Nanos>(0);
  Nanos NextEventTime() const;

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

 private:
  struct Event {
    Nanos when;
    uint64_t seq;
    uint64_t id;
    Callback cb;
    bool operator>(const Event& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  // Ids of cancelled events awaiting lazy removal.
  std::vector<uint64_t> cancelled_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  size_t live_count_ = 0;

  bool IsCancelled(uint64_t id) const;
  void ForgetCancelled(uint64_t id);
};

}  // namespace demeter

#endif  // DEMETER_SRC_SIM_EVENT_QUEUE_H_
