// Deterministic discrete-event queue over virtual time.
//
// Events scheduled at the same timestamp fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulation runs
// are exactly reproducible.
//
// Cancellation is exact: ids are unique for the queue's lifetime (a monotone
// counter doubles as a generation id), and the queue tracks the live id set
// in a hash set. Cancel() on an id that already fired, was already
// cancelled, or never existed returns false and changes nothing — the
// earlier lazy scheme returned true for fired ids, decremented the live
// count for events no longer in the heap, and left the tombstone in the
// cancelled list forever (every later Cancel paid a linear scan over it).

#ifndef DEMETER_SRC_SIM_EVENT_QUEUE_H_
#define DEMETER_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/base/units.h"

namespace demeter {

class EventQueue {
 public:
  using Callback = std::function<void(Nanos now)>;

  // Schedules `cb` to run at virtual time `when`. Returns an id that can be
  // used to cancel the event before it fires.
  uint64_t Schedule(Nanos when, Callback cb);

  // Cancels a pending event. Returns false (and is a no-op) if the event
  // already fired, was already cancelled, or the id was never issued.
  bool Cancel(uint64_t id);

  // Runs all events with time <= until, in (time, seq) order. Events may
  // schedule further events; those also run if due. Returns the number of
  // events fired.
  size_t RunUntil(Nanos until);

  // Time of the earliest pending event, or kNoEvent when empty. Cancelled
  // events may still occupy the heap top, so this is a lower bound — safe
  // for lock-step advancement.
  // Inline: the harness polls this once per execution chunk to compute the
  // batch horizon.
  static constexpr Nanos kNoEvent = ~static_cast<Nanos>(0);
  Nanos NextEventTime() const { return heap_.empty() ? kNoEvent : heap_.front().when; }

  bool empty() const { return live_.empty(); }
  size_t size() const { return live_.size(); }

 private:
  struct Event {
    Nanos when;
    uint64_t seq;
    uint64_t id;
    Callback cb;
  };
  // Min-heap order on (when, seq) for std::push_heap/std::pop_heap, which
  // want a max-heap comparator — hence the inversion.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  // Raw vector + heap algorithms instead of std::priority_queue: top() is
  // const so popping an event used to copy its std::function (an allocation
  // per fired event on the hottest simulation loop); here the event is moved
  // out.
  std::vector<Event> heap_;
  std::unordered_set<uint64_t> live_;       // Scheduled, not fired/cancelled.
  std::unordered_set<uint64_t> cancelled_;  // Cancelled, still in heap_.
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace demeter

#endif  // DEMETER_SRC_SIM_EVENT_QUEUE_H_
