#include "src/sim/cpu_account.h"

namespace demeter {

const char* TmmStageName(TmmStage stage) {
  switch (stage) {
    case TmmStage::kTracking:
      return "tracking";
    case TmmStage::kClassification:
      return "classification";
    case TmmStage::kMigration:
      return "migration";
    case TmmStage::kPmi:
      return "pmi";
    case TmmStage::kOther:
      return "other";
  }
  return "?";
}

}  // namespace demeter
