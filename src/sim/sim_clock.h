// Compensated virtual clock for vCPU time and latency accumulation.
//
// The simulation advances vCPU clocks by fractional-nanosecond costs
// billions of times per run. A plain `double` accumulator silently loses
// sub-ulp cost once the clock magnitude grows: at 2^53 ns (~104 days of
// virtual time) the ulp is 1 ns and every sub-ns cost vanishes entirely;
// well before that, repeated rounding of workload-constant costs (e.g. the
// 53.6 ns cache hit) biases the clock systematically because the same value
// always rounds the same way.
//
// SimClock fixes the long-horizon drift without perturbing short runs:
//   * The primary accumulator `ns_` is the *naive* double sum — every
//     operator+= performs exactly the addition the legacy `double clock_ns`
//     performed, so all existing pinned results (whose clocks stay far below
//     the threshold) are bit-identical.
//   * Each addition's exact rounding error is captured on the side with a
//     TwoSum (Knuth 4.2.2) and accumulated in `lost_`.
//   * value() returns the naive sum below kCompensateAboveNs and the
//     error-compensated sum `ns_ + lost_` above it, where the naive sum
//     alone would be visibly wrong.
//
// This is a error-free-transformation flavour of fixed-point: the pair
// (ns_, lost_) represents the mathematically exact sum to ~double-double
// precision at any magnitude, while the observable value stays bit-equal to
// the legacy behaviour for every existing benchmark.

#ifndef DEMETER_SRC_SIM_SIM_CLOCK_H_
#define DEMETER_SRC_SIM_SIM_CLOCK_H_

#include "src/base/units.h"

namespace demeter {

class SimClock {
 public:
  // 2^48 ns ~ 3.26 days of virtual time: far above any pinned benchmark's
  // horizon (so those stay on the bit-identical naive sum) yet low enough
  // that the naive sum's accumulated error is still tiny when compensation
  // takes over, making the regime switch seamless.
  static constexpr double kCompensateAboveNs = 281474976710656.0;  // 2^48.

  constexpr SimClock() = default;
  constexpr explicit SimClock(double ns) : ns_(ns) {}

  // Advance by a (possibly fractional) cost. The primary sum is the same
  // naive `ns_ + cost` the legacy double clock computed; the TwoSum below
  // recovers that addition's exact rounding error into lost_.
  SimClock& operator+=(double cost) {
    const double sum = ns_ + cost;
    const double bp = sum - ns_;
    lost_ += (ns_ - (sum - bp)) + (cost - bp);
    ns_ = sum;
    return *this;
  }

  // Reassignment (boot / clock alignment) starts a fresh accumulation.
  SimClock& operator=(double ns) {
    ns_ = ns;
    lost_ = 0.0;
    return *this;
  }

  // Observable clock value in ns. Below the threshold this is bit-identical
  // to the legacy naive double sum; above it the compensated sum restores
  // the sub-ulp cost the naive sum dropped.
  double value() const { return ns_ < kCompensateAboveNs ? ns_ : ns_ + lost_; }

  // Truncation to integer virtual nanoseconds, matching the legacy
  // static_cast<Nanos>(clock_ns).
  Nanos now() const { return static_cast<Nanos>(value()); }

  // Implicit read as double: the clock participates in cost arithmetic and
  // deadline comparisons exactly like the plain double it replaces.
  operator double() const { return value(); }

  // Exact rounding error the naive sum has accumulated (test hook).
  double lost() const { return lost_; }

 private:
  double ns_ = 0.0;    // Naive sum: legacy-identical primary accumulator.
  double lost_ = 0.0;  // Exact accumulated rounding error of ns_.
};

}  // namespace demeter

#endif  // DEMETER_SRC_SIM_SIM_CLOCK_H_
