// CPU-time accounting for tiered-memory-management overhead.
//
// Every policy action charges virtual CPU nanoseconds to a stage account.
// "Cores wasted" (Figure 2) is total management time divided by wall time;
// Figure 7 reports the per-stage breakdown directly.

#ifndef DEMETER_SRC_SIM_CPU_ACCOUNT_H_
#define DEMETER_SRC_SIM_CPU_ACCOUNT_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/base/units.h"

namespace demeter {

enum class TmmStage : int {
  kTracking = 0,        // PTE scans, PEBS drains, sample handling.
  kClassification = 1,  // Sorting, LRU maintenance, range-tree work.
  kMigration = 2,       // Page copies, remaps, fault handling.
  kPmi = 3,             // Performance-monitoring-interrupt servicing.
  kOther = 4,
};

inline constexpr int kNumTmmStages = 5;

class CpuAccount {
 public:
  void Charge(TmmStage stage, Nanos ns) { stage_ns_[static_cast<size_t>(stage)] += ns; }

  Nanos ForStage(TmmStage stage) const { return stage_ns_[static_cast<size_t>(stage)]; }

  Nanos Total() const {
    Nanos total = 0;
    for (Nanos ns : stage_ns_) {
      total += ns;
    }
    return total;
  }

  // Average number of CPU cores consumed by management work over `wall`.
  double CoresOver(Nanos wall) const {
    return wall == 0 ? 0.0 : static_cast<double>(Total()) / static_cast<double>(wall);
  }

  void Clear() { stage_ns_.fill(0); }

  void Merge(const CpuAccount& other) {
    for (size_t i = 0; i < stage_ns_.size(); ++i) {
      stage_ns_[i] += other.stage_ns_[i];
    }
  }

 private:
  std::array<Nanos, kNumTmmStages> stage_ns_{};
};

const char* TmmStageName(TmmStage stage);

}  // namespace demeter

#endif  // DEMETER_SRC_SIM_CPU_ACCOUNT_H_
