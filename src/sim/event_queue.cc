#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/base/logging.h"

namespace demeter {

uint64_t EventQueue::Schedule(Nanos when, Callback cb) {
  const uint64_t id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(cb)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(uint64_t id) {
  if (id == 0 || id >= next_id_ || IsCancelled(id)) {
    return false;
  }
  // Lazy cancellation: remember the id; the event is dropped when popped.
  // We cannot verify liveness cheaply, so over-approximating is fine — a
  // cancel of an already-fired id is detected at pop time (id not present)
  // and the entry ages out of `cancelled_` on the next pop cycle.
  cancelled_.push_back(id);
  if (live_count_ > 0) {
    --live_count_;
  }
  return true;
}

bool EventQueue::IsCancelled(uint64_t id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end();
}

void EventQueue::ForgetCancelled(uint64_t id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end()) {
    cancelled_.erase(it);
  }
}

size_t EventQueue::RunUntil(Nanos until) {
  size_t fired = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    Event ev = heap_.top();
    heap_.pop();
    if (IsCancelled(ev.id)) {
      ForgetCancelled(ev.id);
      continue;
    }
    --live_count_;
    ++fired;
    ev.cb(ev.when);
  }
  return fired;
}

Nanos EventQueue::NextEventTime() const {
  // Cancelled events may sit at the top; callers treat this as a lower
  // bound, which is safe for lock-step advancement.
  return heap_.empty() ? kNoEvent : heap_.top().when;
}

}  // namespace demeter
