#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"

namespace demeter {

EventQueue::EventQueue(int lanes) {
  DEMETER_CHECK(lanes >= 1 && lanes <= kMaxLanes)
      << "EventQueue lanes must be in [1, " << kMaxLanes << "], got " << lanes;
  lanes_.resize(static_cast<size_t>(lanes));
}

uint64_t EventQueue::Schedule(Nanos when, Callback cb) {
  return ScheduleOn(0, when, std::move(cb));
}

uint64_t EventQueue::ScheduleOn(int lane, Nanos when, Callback cb) {
  DEMETER_CHECK(lane >= 0 && lane < lanes())
      << "lane " << lane << " out of range [0, " << lanes() << ")";
  const uint64_t id = next_id_++;
  std::vector<Event>& heap = lanes_[static_cast<size_t>(lane)];
  heap.push_back(Event{when, next_seq_++, id, std::move(cb)});
  std::push_heap(heap.begin(), heap.end(), Later{});
  live_.insert(id);
  return id;
}

bool EventQueue::Cancel(uint64_t id) {
  if (live_.erase(id) == 0) {
    return false;
  }
  // The heap entry stays put and is dropped at pop time; the hash set makes
  // that check O(1) and the tombstone is erased exactly once.
  cancelled_.insert(id);
  return true;
}

Nanos EventQueue::NextEventTime() const {
  Nanos next = kNoEvent;
  for (const std::vector<Event>& heap : lanes_) {
    if (!heap.empty() && heap.front().when < next) {
      next = heap.front().when;
    }
  }
  return next;
}

size_t EventQueue::RunUntil(Nanos until) {
  size_t fired = 0;
  for (;;) {
    // Pop the globally smallest (when, seq) top. Sequence numbers are unique
    // across lanes, so this replays the exact single-heap order regardless
    // of how events were distributed over lanes.
    std::vector<Event>* best = nullptr;
    size_t best_lane = 0;
    for (size_t l = 0; l < lanes_.size(); ++l) {
      std::vector<Event>& heap = lanes_[l];
      if (heap.empty()) {
        continue;
      }
      const Event& top = heap.front();
      if (best == nullptr || top.when < best->front().when ||
          (top.when == best->front().when && top.seq < best->front().seq)) {
        best = &heap;
        best_lane = l;
      }
    }
    if (best == nullptr || best->front().when > until) {
      break;
    }
    std::pop_heap(best->begin(), best->end(), Later{});
    Event ev = std::move(best->back());
    best->pop_back();
    if (cancelled_.erase(ev.id) > 0) {
      continue;
    }
    live_.erase(ev.id);
    fired_lanes_ |= uint64_t{1} << best_lane;
    ++fired;
    ev.cb(ev.when);
  }
  return fired;
}

}  // namespace demeter
