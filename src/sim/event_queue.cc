#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace demeter {

uint64_t EventQueue::Schedule(Nanos when, Callback cb) {
  const uint64_t id = next_id_++;
  heap_.push_back(Event{when, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return id;
}

bool EventQueue::Cancel(uint64_t id) {
  if (live_.erase(id) == 0) {
    return false;
  }
  // The heap entry stays put and is dropped at pop time; the hash set makes
  // that check O(1) and the tombstone is erased exactly once.
  cancelled_.insert(id);
  return true;
}

size_t EventQueue::RunUntil(Nanos until) {
  size_t fired = 0;
  while (!heap_.empty() && heap_.front().when <= until) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.erase(ev.id) > 0) {
      continue;
    }
    live_.erase(ev.id);
    ++fired;
    ev.cb(ev.when);
  }
  return fired;
}

}  // namespace demeter
