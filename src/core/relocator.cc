#include "src/core/relocator.h"

#include "src/base/logging.h"

namespace demeter {

RelocationResult BalancedRelocator::Relocate(Vm& vm, GuestProcess& process,
                                             const std::vector<HotRange>& ranked,
                                             size_t hot_prefix, Nanos now) {
  RelocationResult result;
  GuestKernel& kernel = vm.kernel();

  struct Candidate {
    PageNum vpn;
    double freq;  // Frequency of the range the page belongs to.
  };

  // Phase 1: promotion candidates — pages inside hot ranges currently in
  // SMEM, hottest range first.
  std::vector<Candidate> promote;
  for (size_t f = 0; f < hot_prefix && promote.size() < config_.max_batch_pages; ++f) {
    const HotRange& range = ranked[f];
    const double freq = range.Frequency();
    if (freq <= 0.0) {
      break;  // Nothing below this rank carries hotness information.
    }
    result.ptes_scanned += process.gpt().ForEachPresent(
        PageOf(range.start), PageOf(range.end),
        [&](PageNum vpn, uint64_t gpa, bool, bool) {
          if (promote.size() < config_.max_batch_pages && kernel.NodeOfGpa(gpa) != 0) {
            promote.push_back(Candidate{vpn, freq});
          }
        });
  }
  if (promote.empty()) {
    return result;
  }

  // Fast path: free FMEM headroom absorbs promotions without demotion.
  size_t next = 0;
  while (next < promote.size() &&
         kernel.node(0).free_pages() > config_.fmem_free_reserve_pages) {
    if (vm.MovePage(process, promote[next].vpn, /*dst_node=*/0, now, &result.cost_ns)) {
      ++result.promoted;
    }
    ++next;
  }

  // Phase 2: demotion candidates — walk coldest ranges in reverse rank order
  // for exactly as many FMEM-resident pages as promotions remain.
  const size_t need = promote.size() - next;
  std::vector<Candidate> demote;
  for (size_t r = ranked.size(); r-- > hot_prefix && demote.size() < need;) {
    const HotRange& range = ranked[r];
    const double freq = range.Frequency();
    result.ptes_scanned += process.gpt().ForEachPresent(
        PageOf(range.start), PageOf(range.end),
        [&](PageNum vpn, uint64_t gpa, bool, bool) {
          if (demote.size() < need && kernel.NodeOfGpa(gpa) == 0) {
            demote.push_back(Candidate{vpn, freq});
          }
        });
  }

  // Phase 3: batched, balanced swap of equal-length lists. Promote freq is
  // non-increasing and demote freq non-decreasing, so the first pair that
  // fails the hotness margin ends the batch.
  const size_t pairs = std::min(promote.size() - next, demote.size());
  for (size_t i = 0; i < pairs; ++i) {
    const Candidate& p = promote[next + i];
    const Candidate& d = demote[i];
    if (p.freq < config_.demote_margin * d.freq) {
      break;
    }
    if (config_.balanced_swap) {
      if (vm.SwapPages(process, p.vpn, process, d.vpn, now, &result.cost_ns)) {
        ++result.swaps;
        ++result.promoted;
        ++result.demoted;
      }
    } else {
      // Sequential style (ablation): demote first to create a free page,
      // then promote into it — two allocate-copy-remap migrations plus the
      // transient allocation the balanced swap avoids.
      if (vm.MovePage(process, d.vpn, /*dst_node=*/1, now, &result.cost_ns)) {
        ++result.demoted;
        if (vm.MovePage(process, p.vpn, /*dst_node=*/0, now, &result.cost_ns)) {
          ++result.promoted;
        }
      }
    }
  }
  return result;
}

}  // namespace demeter
