#include "src/core/range_tree.h"

#include <algorithm>

#include "src/base/logging.h"

namespace demeter {

RangeTree::RangeTree(RangeTreeConfig config) : config_(config) {
  DEMETER_CHECK_GE(config.min_range_bytes, kPageSize);
}

void RangeTree::AddRegion(uint64_t start, uint64_t end) {
  DEMETER_CHECK_EQ(start % kPageSize, 0u);
  DEMETER_CHECK_EQ(end % kPageSize, 0u);
  DEMETER_CHECK_LT(start, end);
  for (const Region& r : regions_) {
    DEMETER_CHECK(end <= r.start || start >= r.end) << "overlapping region";
  }
  regions_.push_back(Region{start, end});
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.start < b.start; });

  HotRange leaf;
  leaf.start = start;
  leaf.end = end;
  leaf.created_epoch = epoch_;
  leaf.last_active_epoch = epoch_;
  leaves_.push_back(leaf);
  std::sort(leaves_.begin(), leaves_.end(),
            [](const HotRange& a, const HotRange& b) { return a.start < b.start; });
}

void RangeTree::ExtendRegion(uint64_t start, uint64_t new_end) {
  DEMETER_CHECK_EQ(new_end % kPageSize, 0u);
  for (Region& r : regions_) {
    if (start >= r.start && start < r.end) {
      if (new_end <= r.end) {
        return;  // Already covered.
      }
      // Append a fresh leaf for the growth; it merges with its neighbour
      // once both go quiet, so fragmentation stays bounded.
      const uint64_t old_end = r.end;
      r.end = new_end;
      HotRange leaf;
      leaf.start = old_end;
      leaf.end = new_end;
      leaf.created_epoch = epoch_;
      leaf.last_active_epoch = epoch_;
      leaves_.push_back(leaf);
      std::sort(leaves_.begin(), leaves_.end(),
                [](const HotRange& a, const HotRange& b) { return a.start < b.start; });
      return;
    }
  }
  DEMETER_CHECK(false) << "ExtendRegion: no region contains " << start;
}

int RangeTree::FindLeaf(uint64_t addr) const {
  // First leaf with start > addr, minus one.
  auto it = std::upper_bound(leaves_.begin(), leaves_.end(), addr,
                             [](uint64_t a, const HotRange& r) { return a < r.start; });
  if (it == leaves_.begin()) {
    return -1;
  }
  const int idx = static_cast<int>(std::distance(leaves_.begin(), it)) - 1;
  const HotRange& leaf = leaves_[static_cast<size_t>(idx)];
  return addr < leaf.end ? idx : -1;
}

void RangeTree::RecordSample(uint64_t addr) {
  const int idx = FindLeaf(addr);
  if (idx < 0) {
    ++samples_ignored_;
    return;
  }
  HotRange& leaf = leaves_[static_cast<size_t>(idx)];
  leaf.access_count += 1.0;
  leaf.last_active_epoch = epoch_ + 1;
  ++samples_recorded_;
}

bool RangeTree::SameRegion(const HotRange& a, const HotRange& b) const {
  for (const Region& r : regions_) {
    if (a.start >= r.start && a.end <= r.end) {
      return b.start >= r.start && b.end <= r.end;
    }
  }
  return false;
}

void RangeTree::EndEpoch(int vcpus) {
  ++epoch_;
  last_vcpus_ = vcpus;
  SplitPass();
  DecayPass();
  MergePass();
}

void RangeTree::SplitPass() {
  const double margin = config_.SplitMargin(last_vcpus_);
  // Decide on the pre-split snapshot, then apply back to front so indices
  // stay valid.
  std::vector<size_t> to_split;
  for (size_t i = 0; i < leaves_.size(); ++i) {
    const HotRange& leaf = leaves_[i];
    if (leaf.size() < 2 * config_.min_range_bytes) {
      continue;  // Granularity floor.
    }
    bool significant = true;
    bool has_neighbor = false;
    if (i > 0 && SameRegion(leaves_[i - 1], leaf)) {
      has_neighbor = true;
      significant = significant && (leaf.access_count - leaves_[i - 1].access_count >= margin);
    }
    if (i + 1 < leaves_.size() && SameRegion(leaf, leaves_[i + 1])) {
      has_neighbor = true;
      significant = significant && (leaf.access_count - leaves_[i + 1].access_count >= margin);
    }
    if (!has_neighbor) {
      // A region's sole range splits once it is hot at all (bootstrap).
      significant = leaf.access_count >= margin;
    }
    if (significant) {
      to_split.push_back(i);
    }
  }
  for (auto it = to_split.rbegin(); it != to_split.rend(); ++it) {
    const size_t i = *it;
    HotRange parent = leaves_[i];
    // Midpoint aligned down to the granularity floor, relative to start.
    uint64_t half = parent.size() / 2;
    half -= half % config_.min_range_bytes;
    if (half == 0) {
      half = config_.min_range_bytes;
    }
    const uint64_t mid = parent.start + half;
    HotRange left = parent;
    HotRange right = parent;
    left.end = mid;
    right.start = mid;
    left.access_count = parent.access_count / 2;
    right.access_count = parent.access_count / 2;
    left.created_epoch = epoch_;
    right.created_epoch = epoch_;
    leaves_[i] = left;
    leaves_.insert(leaves_.begin() + static_cast<long>(i) + 1, right);
    ++total_splits_;
  }
}

void RangeTree::DecayPass() {
  for (HotRange& leaf : leaves_) {
    if (leaf.last_active_epoch >= epoch_) {
      leaf.quiet_epochs = 0;
    } else {
      ++leaf.quiet_epochs;
    }
    leaf.access_count /= 2.0;
    if (leaf.access_count < 1.0) {
      leaf.access_count = 0.0;
    }
  }
}

void RangeTree::MergePass() {
  auto mergeable = [&](const HotRange& leaf) {
    return leaf.access_count == 0.0 && leaf.quiet_epochs >= config_.merge_threshold;
  };
  for (size_t i = 0; i + 1 < leaves_.size();) {
    HotRange& a = leaves_[i];
    const HotRange& b = leaves_[i + 1];
    if (a.end == b.start && SameRegion(a, b) && mergeable(a) && mergeable(b)) {
      a.end = b.end;
      a.created_epoch = std::min(a.created_epoch, b.created_epoch);
      a.last_active_epoch = std::max(a.last_active_epoch, b.last_active_epoch);
      a.quiet_epochs = std::min(a.quiet_epochs, b.quiet_epochs);
      leaves_.erase(leaves_.begin() + static_cast<long>(i) + 1);
      ++total_merges_;
      // Stay at i: the grown leaf may merge with the next one too.
    } else {
      ++i;
    }
  }
}

std::vector<HotRange> RangeTree::Ranked() const {
  std::vector<HotRange> ranked = leaves_;
  std::stable_sort(ranked.begin(), ranked.end(), [](const HotRange& a, const HotRange& b) {
    const double fa = a.Frequency();
    const double fb = b.Frequency();
    if (fa != fb) {
      return fa > fb;
    }
    // Equal frequency: newer ranges first (temporal locality, §3.2.1).
    if (a.created_epoch != b.created_epoch) {
      return a.created_epoch > b.created_epoch;
    }
    return a.start < b.start;
  });
  return ranked;
}

size_t RangeTree::HotPrefix(const std::vector<HotRange>& ranked, uint64_t fmem_pages) {
  uint64_t total = 0;
  for (size_t f = 0; f < ranked.size(); ++f) {
    total += ranked[f].pages();
    if (total > fmem_pages) {
      return f;
    }
  }
  return ranked.size();
}

bool RangeTree::CheckInvariants() const {
  size_t leaf = 0;
  for (const Region& region : regions_) {
    uint64_t cursor = region.start;
    while (cursor < region.end) {
      if (leaf >= leaves_.size()) {
        return false;
      }
      const HotRange& r = leaves_[leaf];
      if (r.start != cursor || r.end > region.end || r.end <= r.start) {
        return false;
      }
      if (r.access_count < 0.0) {
        return false;
      }
      cursor = r.end;
      ++leaf;
    }
    if (cursor != region.end) {
      return false;
    }
  }
  return leaf == leaves_.size();
}

}  // namespace demeter
