// Tiered memory management policy interface.
//
// A policy attaches to a VM (and the guest process whose memory it manages),
// registers its hooks (PEBS handlers, context-switch drains, epoch timers on
// the hypervisor event queue), and from then on steals the CPU time its
// bookkeeping costs: in-guest policies add their work to vCPU clocks
// (reducing workload throughput), hypervisor-side policies burn host cores.
// Either way the work is recorded in the VM's management CpuAccount, which
// Figure 2 ("cores wasted") and Figure 7 (per-stage breakdown) report.

#ifndef DEMETER_SRC_CORE_POLICY_H_
#define DEMETER_SRC_CORE_POLICY_H_

#include <memory>

#include "src/base/units.h"
#include "src/guest/process.h"
#include "src/hyper/hypervisor.h"
#include "src/hyper/vm.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/tracer.h"

namespace demeter {

// Emits a migration-batch span on the VM's tracer for one policy epoch or
// scan round: `ts` is the batch start, `dur_ns` its charged CPU time, and
// promoted/demoted the batch's page counts. Empty batches are skipped; the
// whole call is a no-op when the VM is not tracing.
inline void TraceMigrationBatch(Vm& vm, const char* policy, Nanos ts, double dur_ns,
                                uint64_t promoted, uint64_t demoted) {
  Tracer* tracer = vm.host().tracer();
  if (tracer == nullptr || !tracer->enabled() || (promoted == 0 && demoted == 0)) {
    return;
  }
  tracer->Span("tmm", policy, ts, dur_ns, vm.id(), 0,
               TraceArgs().Add("promoted", promoted).Add("demoted", demoted).str());
}

class TmmPolicy {
 public:
  virtual ~TmmPolicy() { *alive_ = false; }

  virtual const char* name() const = 0;

  // Attaches to `vm`, managing `process`. Periodic work begins at `start`.
  virtual void Attach(Vm& vm, GuestProcess& process, Nanos start) = 0;

  // Registers the policy's counters under `scope` (the harness passes
  // "vm<i>/policy"). Called after Attach; registered cells/callbacks must
  // stay valid for the policy's lifetime. Default: nothing to export.
  virtual void RegisterMetrics(MetricScope scope) { (void)scope; }

  // Stops periodic work (the attached VM's workload finished).
  virtual void Stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

 protected:
  // Deferred callbacks (event-queue timers, PMI handlers, context-switch
  // hooks) can outlive the policy object; every callback must capture
  // `alive_` by value and bail out once it reads false.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool stopped_ = false;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CORE_POLICY_H_
