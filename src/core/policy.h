// Tiered memory management policy interface.
//
// A policy attaches to a VM (and the guest process whose memory it manages),
// registers its hooks (PEBS handlers, context-switch drains, epoch timers on
// the hypervisor event queue), and from then on steals the CPU time its
// bookkeeping costs: in-guest policies add their work to vCPU clocks
// (reducing workload throughput), hypervisor-side policies burn host cores.
// Either way the work is recorded in the VM's management CpuAccount, which
// Figure 2 ("cores wasted") and Figure 7 (per-stage breakdown) report.

#ifndef DEMETER_SRC_CORE_POLICY_H_
#define DEMETER_SRC_CORE_POLICY_H_

#include <memory>

#include "src/base/units.h"
#include "src/guest/process.h"
#include "src/hyper/vm.h"

namespace demeter {

class TmmPolicy {
 public:
  virtual ~TmmPolicy() { *alive_ = false; }

  virtual const char* name() const = 0;

  // Attaches to `vm`, managing `process`. Periodic work begins at `start`.
  virtual void Attach(Vm& vm, GuestProcess& process, Nanos start) = 0;

  // Stops periodic work (the attached VM's workload finished).
  virtual void Stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

 protected:
  // Deferred callbacks (event-queue timers, PMI handlers, context-switch
  // hooks) can outlive the policy object; every callback must capture
  // `alive_` by value and bail out once it reads false.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool stopped_ = false;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CORE_POLICY_H_
