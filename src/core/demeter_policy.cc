#include "src/core/demeter_policy.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"

namespace demeter {

DemeterPolicy::DemeterPolicy(DemeterConfig config)
    : config_(config), relocator_(config.relocator) {}

void DemeterPolicy::Attach(Vm& vm, GuestProcess& process, Nanos start) {
  DEMETER_CHECK(vm_ == nullptr) << "policy already attached";
  vm_ = &vm;
  process_ = &process;
  tree_ = std::make_unique<RangeTree>(config_.range);
  samples_ = std::make_unique<MpscChannel<uint64_t>>(1 << 16);

  // EPT-friendly PEBS on every vCPU: small constant frequency, load-latency
  // event, threshold between L2-hit and DRAM latency.
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    PebsConfig pebs = vm.config().pebs;
    pebs.sample_period = config_.sample_period;
    pebs.latency_threshold_ns = config_.latency_threshold_ns;
    DEMETER_CHECK(PebsUnit(pebs).UsableInGuest(vm.config().lazily_backed))
        << "guest PEBS requires an EPT-friendly PMU under lazy backing";
    vm.vcpu(i).pebs = std::make_unique<PebsUnit>(pebs);
    vm.vcpu(i).pebs->BindFault(vm.host().fault_injector(), vm.id());
    vm.vcpu(i).pebs->set_enabled(true);
    // PMIs are rare at this frequency, but when one fires its buffer goes
    // into the same channel (the PMI cost is charged at the access site).
    vm.vcpu(i).pebs->set_pmi_handler(
        [this, alive = alive_](std::vector<PebsRecord>&& records, Nanos) {
          if (!*alive) {
            return;
          }
          for (const PebsRecord& r : records) {
            samples_->Push(r.gva);
          }
        });
  }

  if (config_.drain_on_context_switch) {
    // Context-switch drain: no dedicated collection thread (§3.2.2).
    vm.kernel().RegisterContextSwitchHook([this, alive = alive_, &vm](int vcpu_id, Nanos) {
      if (!*alive) {
        return 0.0;
      }
      auto records = vm.vcpu(vcpu_id).pebs->Drain();
      for (const PebsRecord& r : records) {
        samples_->Push(r.gva);
      }
      const double cost = config_.drain_ns_per_record * static_cast<double>(records.size());
      vm.mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(cost));
      return cost;
    });
  } else {
    // Ablation: HeMem/Memtis-style dedicated polling kthread.
    vm.host().ScheduleVmEvent(vm.id(), start + config_.poll_period,
                                [this, alive = alive_](Nanos fire) {
                                  if (*alive) {
                                    RunPoll(fire);
                                  }
                                });
  }

  if (config_.classify_virtual) {
    SyncRegions();
  } else {
    SyncPhysicalRegions();
  }

  FaultInjector* fault = vm.host().fault_injector();
  injector_armed_ = fault != nullptr && fault->active();
  watchdog_armed_ = injector_armed_ && config_.degradation.enabled;
  last_epoch_done_ = start;
  unresponsive_after_ = config_.degradation.unresponsive_after > 0
                            ? config_.degradation.unresponsive_after
                            : 3 * config_.range.epoch_length;
  watchdog_period_ = config_.degradation.watchdog_period > 0 ? config_.degradation.watchdog_period
                                                             : config_.range.epoch_length;
  host_round_period_ = config_.degradation.host_round_period > 0
                           ? config_.degradation.host_round_period
                           : 3 * watchdog_period_;
  if (watchdog_armed_) {
    vm.host().ScheduleVmEvent(vm.id(), start + watchdog_period_, [this, alive = alive_](Nanos fire) {
      if (*alive) {
        RunWatchdog(fire);
      }
    });
  }

  ScheduleNext(start);
}

void DemeterPolicy::RunPoll(Nanos now) {
  if (stopped_) {
    return;
  }
  double cost = config_.poll_fixed_ns;
  for (int i = 0; i < vm_->num_vcpus(); ++i) {
    auto records = vm_->vcpu(i).pebs->Drain();
    cost += config_.drain_ns_per_record * static_cast<double>(records.size());
    for (const PebsRecord& r : records) {
      samples_->Push(r.gva);
    }
  }
  vm_->vcpu(0).clock_ns += cost;
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(cost));
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.poll_period, [this, alive = alive_](Nanos fire) {
    if (*alive) {
      RunPoll(fire);
    }
  });
}

void DemeterPolicy::SyncRegions() {
  const AddressSpace& space = process_->space();
  // Heap growth.
  const uint64_t brk = space.brk();
  if (brk > AddressSpace::kStartBrk) {
    if (heap_synced_end_ == 0) {
      tree_->AddRegion(AddressSpace::kStartBrk, brk);
    } else if (brk > heap_synced_end_) {
      tree_->ExtendRegion(AddressSpace::kStartBrk, brk);
    }
    heap_synced_end_ = brk;
  }
  // New mmap VMAs.
  const auto& vmas = space.vmas();
  for (; vmas_synced_ < vmas.size(); ++vmas_synced_) {
    const Vma& vma = vmas[vmas_synced_];
    if (vma.tracked && vma.kind == VmaKind::kMmap && vma.size() > 0) {
      tree_->AddRegion(vma.start, vma.end);
    }
  }
}

void DemeterPolicy::SyncPhysicalRegions() {
  if (heap_synced_end_ != 0) {
    return;  // Physical node spans never grow.
  }
  for (int n = 0; n < vm_->kernel().num_nodes(); ++n) {
    const NumaNode& node = vm_->kernel().node(n);
    tree_->AddRegion(AddrOfPage(node.gpa_base()), AddrOfPage(node.gpa_end()));
  }
  heap_synced_end_ = 1;  // Marker: physical regions registered.
}

RelocationResult DemeterPolicy::RelocatePhysical(const std::vector<HotRange>& ranked,
                                                 size_t hot_prefix, Nanos now) {
  RelocationResult result;
  GuestKernel& kernel = vm_->kernel();
  const double scan_ns = vm_->config().mmu_costs.pte_scan_ns;

  struct Candidate {
    PageNum vpn;
    int pid;
    double freq;
  };
  auto collect = [&](const HotRange& range, int want_node, size_t cap,
                     std::vector<Candidate>* out) {
    const double freq = range.Frequency();
    for (PageNum gpa = PageOf(range.start); gpa < PageOf(range.end) && out->size() < cap;
         ++gpa) {
      ++result.ptes_scanned;
      const RmapEntry* rmap = kernel.Rmap(gpa);
      if (rmap != nullptr && kernel.NodeOfGpa(gpa) == want_node) {
        out->push_back(Candidate{rmap->vpn, rmap->pid, freq});
      }
    }
  };

  std::vector<Candidate> promote;
  for (size_t f = 0; f < hot_prefix && promote.size() < config_.relocator.max_batch_pages; ++f) {
    if (ranked[f].Frequency() <= 0.0) {
      break;
    }
    collect(ranked[f], /*want_node=*/1, config_.relocator.max_batch_pages, &promote);
  }
  std::vector<Candidate> demote;
  for (size_t r = ranked.size(); r-- > hot_prefix && demote.size() < promote.size();) {
    collect(ranked[r], /*want_node=*/0, promote.size(), &demote);
  }
  const size_t pairs = std::min(promote.size(), demote.size());
  for (size_t i = 0; i < pairs; ++i) {
    const Candidate& p = promote[i];
    const Candidate& d = demote[i];
    if (p.freq < config_.relocator.demote_margin * d.freq) {
      break;
    }
    GuestProcess* proc_p = kernel.process(p.pid);
    GuestProcess* proc_d = kernel.process(d.pid);
    if (proc_p != nullptr && proc_d != nullptr &&
        vm_->SwapPages(*proc_p, p.vpn, *proc_d, d.vpn, now, &result.cost_ns)) {
      ++result.swaps;
      ++result.promoted;
      ++result.demoted;
    }
  }
  result.cost_ns += static_cast<double>(result.ptes_scanned) * scan_ns;
  return result;
}

void DemeterPolicy::RunEpoch(Nanos now) {
  if (stopped_) {
    return;
  }
  if (injector_armed_) {
    // The engine is a guest kernel thread: while the guest is stalled or
    // crashed it makes no progress. Defer the whole epoch to the window
    // end — which is exactly the unresponsiveness the watchdog detects.
    FaultInjector* fault = vm_->host().fault_injector();
    const bool crashed = fault->InCrashWindow(now);
    if (crashed || fault->InStallWindow(now)) {
      ++epochs_deferred_;
      const Nanos resume = crashed ? fault->CrashWindowEnd(now) : fault->StallWindowEnd(now);
      vm_->host().ScheduleVmEvent(vm_->id(), resume, [this, alive = alive_](Nanos fire) {
        if (*alive) {
          RunEpoch(fire);
        }
      });
      return;
    }
  }
  double tracking_ns = 0.0;
  double classify_ns = 0.0;
  double migrate_ns = 0.0;

  // Consume the sample channel. In the default (virtual) mode, gVAs feed
  // the classifier directly — no address translation per sample (the
  // Memtis/HeMem cost we avoid). The physical ablation pays a software
  // walk per sample and loses the gVA locality.
  std::vector<uint64_t> drained;
  samples_->PopBatch(&drained, 1 << 16);
  tracking_ns += config_.classify_ns_per_sample * static_cast<double>(drained.size());

  if (config_.classify_virtual) {
    SyncRegions();
    for (uint64_t gva : drained) {
      tree_->RecordSample(gva);
    }
  } else {
    SyncPhysicalRegions();
    tracking_ns += config_.translate_ns_per_sample * static_cast<double>(drained.size());
    for (uint64_t gva : drained) {
      const auto walk = process_->gpt().Lookup(PageOf(gva));
      if (walk.present) {
        tree_->RecordSample(AddrOfPage(walk.target) + (gva & (kPageSize - 1)));
      }
    }
  }
  tree_->EndEpoch(vm_->num_vcpus());
  const std::vector<HotRange> ranked = tree_->Ranked();
  classify_ns += config_.classify_ns_per_range * static_cast<double>(ranked.size());

  const uint64_t fmem_budget = vm_->kernel().node(0).present_pages();
  const size_t hot_prefix = RangeTree::HotPrefix(ranked, fmem_budget);
  if (config_.classify_virtual) {
    last_relocation_ = relocator_.Relocate(*vm_, *process_, ranked, hot_prefix, now);
    migrate_ns += last_relocation_.cost_ns +
                  static_cast<double>(last_relocation_.ptes_scanned) *
                      vm_->config().mmu_costs.pte_scan_ns;
  } else {
    last_relocation_ = RelocatePhysical(ranked, hot_prefix, now);
    migrate_ns += last_relocation_.cost_ns;
  }
  total_promoted_ += last_relocation_.promoted;
  total_demoted_ += last_relocation_.demoted;
  ++epochs_run_;

  // Engine work runs on a guest kernel thread: steal vCPU 0 time.
  vm_->vcpu(0).clock_ns += tracking_ns + classify_ns + migrate_ns;
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(tracking_ns));
  vm_->mgmt_account().Charge(TmmStage::kClassification, static_cast<Nanos>(classify_ns));
  vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(migrate_ns));
  TraceMigrationBatch(*vm_, name(), now, migrate_ns, last_relocation_.promoted,
                      last_relocation_.demoted);

  last_epoch_done_ = now;
  ScheduleNext(now);
}

void DemeterPolicy::RunWatchdog(Nanos now) {
  if (stopped_) {
    return;
  }
  Tracer* tracer = vm_->host().tracer();
  if (!degraded_) {
    if (now >= last_epoch_done_ && now - last_epoch_done_ >= unresponsive_after_) {
      degraded_ = true;
      degraded_since_ = now;
      ++degraded_entries_;
      if (tracer != nullptr && tracer->enabled()) {
        tracer->Instant("demeter", "degrade", now, vm_->id(), 0,
                        TraceArgs().Add("idle_ns", static_cast<uint64_t>(now - last_epoch_done_))
                            .str());
      }
    }
  } else if (last_epoch_done_ > degraded_since_) {
    // The guest engine completed an epoch since we degraded: re-delegate.
    degraded_ = false;
    ++recoveries_;
    degraded_ns_ += now - degraded_since_;
    // Next degradation starts with an immediate first host round.
    next_host_round_ = 0;
    if (tracer != nullptr && tracer->enabled()) {
      tracer->Instant("demeter", "recover", now, vm_->id(), 0,
                      TraceArgs().Add("degraded_ns", static_cast<uint64_t>(now - degraded_since_))
                          .str());
    }
  }
  if (degraded_ && now >= next_host_round_) {
    HostManageRound(now);
    next_host_round_ = now + host_round_period_;
  }
  vm_->host().ScheduleVmEvent(vm_->id(), now + watchdog_period_, [this, alive = alive_](Nanos fire) {
    if (*alive) {
      RunWatchdog(fire);
    }
  });
}

void DemeterPolicy::HostManageRound(Nanos now) {
  // Hypervisor-side fallback. The guest classifier is out, but Demeter's
  // sample channel lives in guest kernel memory the hypervisor can read
  // (it defined the protocol), and the guest's context-switch drain keeps
  // filling it. The host consumes the channel, pays the software gVA->gPA
  // walk the delegated engine avoids by design (§3.2), and re-tiers by
  // sample frequency. EPT A bits are deliberately NOT used: at memory-bound
  // access rates every resident page is touched within any practical scan
  // window, so a single bit cannot rank pages. All work is charged to the
  // management account but NOT to vCPU clocks: the host burns its own core
  // while the guest is out.
  Hypervisor& host = vm_->host();
  double work_ns = 0.0;

  std::vector<uint64_t> gvas;
  while (auto gva = samples_->Pop()) {
    gvas.push_back(*gva);
  }
  // Steal whatever still sits in the per-vCPU PEBS buffers too.
  for (int i = 0; i < vm_->num_vcpus(); ++i) {
    auto records = vm_->vcpu(i).pebs->Drain();
    work_ns += config_.drain_ns_per_record * static_cast<double>(records.size());
    for (const PebsRecord& r : records) {
      gvas.push_back(r.gva);
    }
  }

  // Sample frequency per guest-virtual page. Clustering happens in gVA
  // space deliberately: a few dozen samples per round cannot rank thousands
  // of pages individually, but Demeter's own insight (§3.2) — hot pages are
  // contiguous in virtual address space — lets sparse samples identify
  // whole hot extents. The host pays a software translation per sample and
  // a page-table walk per expanded page; the delegated engine avoids both.
  std::unordered_map<PageNum, uint32_t> vpn_counts;
  for (uint64_t gva : gvas) {
    ++vpn_counts[PageOf(gva)];
  }
  work_ns += config_.translate_ns_per_sample * static_cast<double>(gvas.size());

  std::vector<PageNum> vpns;
  vpns.reserve(vpn_counts.size());
  for (const auto& [vpn, count] : vpn_counts) {
    vpns.push_back(vpn);
  }
  std::sort(vpns.begin(), vpns.end());

  // Merge sampled pages closer than kGapPages into extents; extents with
  // fewer than kMinSamples are sampling noise and are ignored.
  struct Extent {
    PageNum lo;
    PageNum hi;
    uint32_t samples;
  };
  constexpr PageNum kGapPages = 32;
  constexpr uint32_t kMinSamples = 3;
  std::vector<Extent> extents;
  for (PageNum vpn : vpns) {
    if (!extents.empty() && vpn - extents.back().hi <= kGapPages) {
      extents.back().hi = vpn;
      extents.back().samples += vpn_counts[vpn];
    } else {
      extents.push_back(Extent{vpn, vpn, vpn_counts[vpn]});
    }
  }
  // Densest extents first (ties: lowest address) — the ranking the guest's
  // range tree would have produced.
  std::sort(extents.begin(), extents.end(), [](const Extent& a, const Extent& b) {
    const double da = static_cast<double>(a.samples) / static_cast<double>(a.hi - a.lo + 1);
    const double db = static_cast<double>(b.samples) / static_cast<double>(b.hi - b.lo + 1);
    if (da != db) {
      return da > db;
    }
    return a.lo < b.lo;
  });

  // Expand extents to gPA pages through the guest page table (software
  // walks, charged per page). Expansion stops once the hot set could not
  // possibly be consumed this round.
  struct HotPage {
    PageNum vpn;
    PageNum gpa;
  };
  const uint64_t expand_cap = 8 * config_.degradation.host_batch_pages;
  std::unordered_set<PageNum> hot_gpas;
  std::vector<std::vector<HotPage>> extent_pages(extents.size());
  uint64_t walked = 0;
  for (size_t e = 0; e < extents.size() && walked < expand_cap; ++e) {
    if (extents[e].samples < kMinSamples) {
      continue;
    }
    for (PageNum vpn = extents[e].lo; vpn <= extents[e].hi && walked < expand_cap; ++vpn) {
      ++walked;
      const auto gpt = process_->gpt().Lookup(vpn);
      if (gpt.present) {
        extent_pages[e].push_back(HotPage{vpn, gpt.target});
        hot_gpas.insert(gpt.target);
      }
    }
  }
  work_ns += static_cast<double>(walked) * vm_->config().mmu_costs.pte_scan_ns;

  // Demotion victims: FMEM-backed pages outside every hot extent, in
  // deterministic EPT walk order. On a three-tier host the same walk also
  // collects cold SMEM pages — the second level of the demotion chain.
  const bool has_far = host.swap() != nullptr;
  std::vector<PageNum> cold_fmem;
  std::vector<PageNum> cold_smem;
  const uint64_t ept_touched = vm_->ept().ForEachPresent(
      0, PageTable::kMaxPage, [&](PageNum gpa, uint64_t frame, bool, bool) {
        if (hot_gpas.count(gpa) != 0) {
          return;
        }
        const TierIndex t = host.memory().TierOf(static_cast<FrameId>(frame));
        if (t == kFmemTier) {
          cold_fmem.push_back(gpa);
        } else if (has_far && t == kSmemTier) {
          cold_smem.push_back(gpa);
        }
      });
  work_ns += static_cast<double>(ept_touched) * vm_->config().mmu_costs.pte_scan_ns;

  // Migrate with single-address shootdowns, not invept: a pure
  // hypervisor-side design must full-flush after host migration because it
  // lacks the gVA (§2.3.1), but this fallback just translated the gVAs it
  // promotes, and the victims' gVAs sit in the guest's rmap — readable the
  // same way the sample channel is. A full flush per round at this cadence
  // would keep the TLBs permanently cold.
  double migrate_ns = 0.0;
  uint64_t promoted = 0;
  uint64_t demoted = 0;
  size_t demote_idx = 0;
  // Mid-drain elasticity: while a shrink window carves FMEM, the host is
  // already evicting out of the tier, and any promotion we force in would
  // either fail or be re-evicted within the window. Skip this round's
  // re-tiering entirely (the hot set is recounted from fresh samples next
  // round, so nothing is charged and nothing double-counts).
  const bool fmem_shrinking = host.TierUnderShrink(kFmemTier);
  if (fmem_shrinking) {
    ++host_rounds_throttled_;
  }
  // Demotes the next coverable cold-FMEM victim; returns false when none
  // remain. The rmap read that recovers the victim's gVA for the shootdown
  // is another guest-metadata walk the host pays for.
  // Three-tier chain: when SMEM is full, push a cold SMEM page down to the
  // far swap tier so the FMEM victim has a near frame to land in. The rmap
  // shootdown mirrors the first-level demotion; no-op on two-tier hosts.
  size_t far_demote_idx = 0;
  auto make_far_room = [&]() -> bool {
    while (far_demote_idx < cold_smem.size()) {
      const PageNum victim = cold_smem[far_demote_idx++];
      work_ns += config_.translate_ns_per_sample;
      const RmapEntry* rmap = vm_->kernel().Rmap(victim);
      if (rmap == nullptr) {
        continue;
      }
      if (host.MigrateGpa(*vm_, victim, kSwapTier, now, &migrate_ns)) {
        vm_->FlushGvaAll(rmap->vpn);
        migrate_ns += vm_->SingleFlushCost();
        ++demoted;
        return true;
      }
    }
    return false;
  };
  auto make_room = [&]() -> bool {
    while (demote_idx < cold_fmem.size()) {
      const PageNum victim = cold_fmem[demote_idx++];
      work_ns += config_.translate_ns_per_sample;
      const RmapEntry* rmap = vm_->kernel().Rmap(victim);
      if (rmap == nullptr) {
        continue;  // Not process-mapped; leave it alone.
      }
      if (host.MigrateGpa(*vm_, victim, kSmemTier, now, &migrate_ns) ||
          (make_far_room() && host.MigrateGpa(*vm_, victim, kSmemTier, now, &migrate_ns))) {
        vm_->FlushGvaAll(rmap->vpn);
        migrate_ns += vm_->SingleFlushCost();
        ++demoted;
        return true;
      }
    }
    return false;
  };
  // Shrink-aware headroom: with a shrink schedule armed for FMEM, never
  // promote into the slice the next window will carve. Demoting first keeps
  // the tier's free count above the carve size, so windows reclaim idle
  // frames instead of evicting the pages this round just moved — the
  // promote-evict ping-pong would otherwise cost more than the fallback
  // earns. Zero when no schedule is armed, so fault-free rounds never
  // demote preemptively.
  const uint64_t fmem_reserve = host.ShrinkReservePages(kFmemTier);
  for (size_t e = 0; !fmem_shrinking && e < extents.size() &&
                     promoted < config_.degradation.host_batch_pages;
       ++e) {
    for (const HotPage& page : extent_pages[e]) {
      if (promoted >= config_.degradation.host_batch_pages) {
        break;
      }
      const auto entry = vm_->ept().Lookup(page.gpa);
      // A page can vanish between expansion and migration — a concurrent
      // hwpoison SIGBUS discards it from both tables. Lookup-then-skip
      // keeps the round tolerant: only successful moves are counted below.
      if (!entry.present ||
          host.memory().TierOf(static_cast<FrameId>(entry.target)) == kFmemTier) {
        continue;  // Already fast.
      }
      if (fmem_reserve > 0 && host.memory().FreePages(kFmemTier) <= fmem_reserve &&
          !make_room()) {
        continue;
      }
      if (!host.MigrateGpa(*vm_, page.gpa, kFmemTier, now, &migrate_ns)) {
        // FMEM full: demote a page no extent covers, then retry once.
        if (!make_room() || !host.MigrateGpa(*vm_, page.gpa, kFmemTier, now, &migrate_ns)) {
          continue;
        }
      }
      vm_->FlushGvaAll(page.vpn);
      migrate_ns += vm_->SingleFlushCost();
      ++promoted;
    }
  }
  host_migrations_ += promoted + demoted;
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(work_ns));
  vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(migrate_ns));
  TraceMigrationBatch(*vm_, "demeter-host", now, work_ns + migrate_ns, promoted, demoted);
}

void DemeterPolicy::ScheduleNext(Nanos now) {
  if (stopped_) {
    return;
  }
  vm_->host().ScheduleVmEvent(vm_->id(), now + config_.range.epoch_length,
                                [this, alive = alive_](Nanos fire) {
                                  if (*alive) {
                                    RunEpoch(fire);
                                  }
                                });
}

}  // namespace demeter
