#include "src/core/demeter_policy.h"

#include <vector>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"

namespace demeter {

DemeterPolicy::DemeterPolicy(DemeterConfig config)
    : config_(config), relocator_(config.relocator) {}

void DemeterPolicy::Attach(Vm& vm, GuestProcess& process, Nanos start) {
  DEMETER_CHECK(vm_ == nullptr) << "policy already attached";
  vm_ = &vm;
  process_ = &process;
  tree_ = std::make_unique<RangeTree>(config_.range);
  samples_ = std::make_unique<MpscChannel<uint64_t>>(1 << 16);

  // EPT-friendly PEBS on every vCPU: small constant frequency, load-latency
  // event, threshold between L2-hit and DRAM latency.
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    PebsConfig pebs = vm.config().pebs;
    pebs.sample_period = config_.sample_period;
    pebs.latency_threshold_ns = config_.latency_threshold_ns;
    DEMETER_CHECK(PebsUnit(pebs).UsableInGuest(vm.config().lazily_backed))
        << "guest PEBS requires an EPT-friendly PMU under lazy backing";
    vm.vcpu(i).pebs = std::make_unique<PebsUnit>(pebs);
    vm.vcpu(i).pebs->set_enabled(true);
    // PMIs are rare at this frequency, but when one fires its buffer goes
    // into the same channel (the PMI cost is charged at the access site).
    vm.vcpu(i).pebs->set_pmi_handler(
        [this, alive = alive_](std::vector<PebsRecord>&& records, Nanos) {
          if (!*alive) {
            return;
          }
          for (const PebsRecord& r : records) {
            samples_->Push(r.gva);
          }
        });
  }

  if (config_.drain_on_context_switch) {
    // Context-switch drain: no dedicated collection thread (§3.2.2).
    vm.kernel().RegisterContextSwitchHook([this, alive = alive_, &vm](int vcpu_id, Nanos) {
      if (!*alive) {
        return 0.0;
      }
      auto records = vm.vcpu(vcpu_id).pebs->Drain();
      for (const PebsRecord& r : records) {
        samples_->Push(r.gva);
      }
      const double cost = config_.drain_ns_per_record * static_cast<double>(records.size());
      vm.mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(cost));
      return cost;
    });
  } else {
    // Ablation: HeMem/Memtis-style dedicated polling kthread.
    vm.host().events().Schedule(start + config_.poll_period,
                                [this, alive = alive_](Nanos fire) {
                                  if (*alive) {
                                    RunPoll(fire);
                                  }
                                });
  }

  if (config_.classify_virtual) {
    SyncRegions();
  } else {
    SyncPhysicalRegions();
  }
  ScheduleNext(start);
}

void DemeterPolicy::RunPoll(Nanos now) {
  if (stopped_) {
    return;
  }
  double cost = config_.poll_fixed_ns;
  for (int i = 0; i < vm_->num_vcpus(); ++i) {
    auto records = vm_->vcpu(i).pebs->Drain();
    cost += config_.drain_ns_per_record * static_cast<double>(records.size());
    for (const PebsRecord& r : records) {
      samples_->Push(r.gva);
    }
  }
  vm_->vcpu(0).clock_ns += cost;
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(cost));
  vm_->host().events().Schedule(now + config_.poll_period, [this, alive = alive_](Nanos fire) {
    if (*alive) {
      RunPoll(fire);
    }
  });
}

void DemeterPolicy::SyncRegions() {
  const AddressSpace& space = process_->space();
  // Heap growth.
  const uint64_t brk = space.brk();
  if (brk > AddressSpace::kStartBrk) {
    if (heap_synced_end_ == 0) {
      tree_->AddRegion(AddressSpace::kStartBrk, brk);
    } else if (brk > heap_synced_end_) {
      tree_->ExtendRegion(AddressSpace::kStartBrk, brk);
    }
    heap_synced_end_ = brk;
  }
  // New mmap VMAs.
  const auto& vmas = space.vmas();
  for (; vmas_synced_ < vmas.size(); ++vmas_synced_) {
    const Vma& vma = vmas[vmas_synced_];
    if (vma.tracked && vma.kind == VmaKind::kMmap && vma.size() > 0) {
      tree_->AddRegion(vma.start, vma.end);
    }
  }
}

void DemeterPolicy::SyncPhysicalRegions() {
  if (heap_synced_end_ != 0) {
    return;  // Physical node spans never grow.
  }
  for (int n = 0; n < vm_->kernel().num_nodes(); ++n) {
    const NumaNode& node = vm_->kernel().node(n);
    tree_->AddRegion(AddrOfPage(node.gpa_base()), AddrOfPage(node.gpa_end()));
  }
  heap_synced_end_ = 1;  // Marker: physical regions registered.
}

RelocationResult DemeterPolicy::RelocatePhysical(const std::vector<HotRange>& ranked,
                                                 size_t hot_prefix, Nanos now) {
  RelocationResult result;
  GuestKernel& kernel = vm_->kernel();
  const double scan_ns = vm_->config().mmu_costs.pte_scan_ns;

  struct Candidate {
    PageNum vpn;
    int pid;
    double freq;
  };
  auto collect = [&](const HotRange& range, int want_node, size_t cap,
                     std::vector<Candidate>* out) {
    const double freq = range.Frequency();
    for (PageNum gpa = PageOf(range.start); gpa < PageOf(range.end) && out->size() < cap;
         ++gpa) {
      ++result.ptes_scanned;
      const RmapEntry* rmap = kernel.Rmap(gpa);
      if (rmap != nullptr && kernel.NodeOfGpa(gpa) == want_node) {
        out->push_back(Candidate{rmap->vpn, rmap->pid, freq});
      }
    }
  };

  std::vector<Candidate> promote;
  for (size_t f = 0; f < hot_prefix && promote.size() < config_.relocator.max_batch_pages; ++f) {
    if (ranked[f].Frequency() <= 0.0) {
      break;
    }
    collect(ranked[f], /*want_node=*/1, config_.relocator.max_batch_pages, &promote);
  }
  std::vector<Candidate> demote;
  for (size_t r = ranked.size(); r-- > hot_prefix && demote.size() < promote.size();) {
    collect(ranked[r], /*want_node=*/0, promote.size(), &demote);
  }
  const size_t pairs = std::min(promote.size(), demote.size());
  for (size_t i = 0; i < pairs; ++i) {
    const Candidate& p = promote[i];
    const Candidate& d = demote[i];
    if (p.freq < config_.relocator.demote_margin * d.freq) {
      break;
    }
    GuestProcess* proc_p = kernel.process(p.pid);
    GuestProcess* proc_d = kernel.process(d.pid);
    if (proc_p != nullptr && proc_d != nullptr &&
        vm_->SwapPages(*proc_p, p.vpn, *proc_d, d.vpn, now, &result.cost_ns)) {
      ++result.swaps;
      ++result.promoted;
      ++result.demoted;
    }
  }
  result.cost_ns += static_cast<double>(result.ptes_scanned) * scan_ns;
  return result;
}

void DemeterPolicy::RunEpoch(Nanos now) {
  if (stopped_) {
    return;
  }
  double tracking_ns = 0.0;
  double classify_ns = 0.0;
  double migrate_ns = 0.0;

  // Consume the sample channel. In the default (virtual) mode, gVAs feed
  // the classifier directly — no address translation per sample (the
  // Memtis/HeMem cost we avoid). The physical ablation pays a software
  // walk per sample and loses the gVA locality.
  std::vector<uint64_t> drained;
  samples_->PopBatch(&drained, 1 << 16);
  tracking_ns += config_.classify_ns_per_sample * static_cast<double>(drained.size());

  if (config_.classify_virtual) {
    SyncRegions();
    for (uint64_t gva : drained) {
      tree_->RecordSample(gva);
    }
  } else {
    SyncPhysicalRegions();
    tracking_ns += config_.translate_ns_per_sample * static_cast<double>(drained.size());
    for (uint64_t gva : drained) {
      const auto walk = process_->gpt().Lookup(PageOf(gva));
      if (walk.present) {
        tree_->RecordSample(AddrOfPage(walk.target) + (gva & (kPageSize - 1)));
      }
    }
  }
  tree_->EndEpoch(vm_->num_vcpus());
  const std::vector<HotRange> ranked = tree_->Ranked();
  classify_ns += config_.classify_ns_per_range * static_cast<double>(ranked.size());

  const uint64_t fmem_budget = vm_->kernel().node(0).present_pages();
  const size_t hot_prefix = RangeTree::HotPrefix(ranked, fmem_budget);
  if (config_.classify_virtual) {
    last_relocation_ = relocator_.Relocate(*vm_, *process_, ranked, hot_prefix, now);
    migrate_ns += last_relocation_.cost_ns +
                  static_cast<double>(last_relocation_.ptes_scanned) *
                      vm_->config().mmu_costs.pte_scan_ns;
  } else {
    last_relocation_ = RelocatePhysical(ranked, hot_prefix, now);
    migrate_ns += last_relocation_.cost_ns;
  }
  total_promoted_ += last_relocation_.promoted;
  total_demoted_ += last_relocation_.demoted;
  ++epochs_run_;

  // Engine work runs on a guest kernel thread: steal vCPU 0 time.
  vm_->vcpu(0).clock_ns += tracking_ns + classify_ns + migrate_ns;
  vm_->mgmt_account().Charge(TmmStage::kTracking, static_cast<Nanos>(tracking_ns));
  vm_->mgmt_account().Charge(TmmStage::kClassification, static_cast<Nanos>(classify_ns));
  vm_->mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(migrate_ns));
  TraceMigrationBatch(*vm_, name(), now, migrate_ns, last_relocation_.promoted,
                      last_relocation_.demoted);

  ScheduleNext(now);
}

void DemeterPolicy::ScheduleNext(Nanos now) {
  if (stopped_) {
    return;
  }
  vm_->host().events().Schedule(now + config_.range.epoch_length,
                                [this, alive = alive_](Nanos fire) {
                                  if (*alive) {
                                    RunEpoch(fire);
                                  }
                                });
}

}  // namespace demeter
