// Range-based hotness classification in guest virtual address space (§3.2.1).
//
// The classifier maintains a partition of each tracked region (heap, mmap)
// into contiguous ranges — the leaves of a segment-tree-like structure.
// Cold memory stays in large ranges; hot memory is progressively refined by
// splitting a leaf whose access count exceeds both neighbours' by the
// significance margin alpha * tau_split * vcpus. Splits halve the range (and
// its count) down to a 2 MiB granularity floor. Counts decay by half every
// epoch; fully decayed neighbours merge back after tau_merge quiet epochs,
// keeping the total leaf count small even over TiB-scale address spaces.
//
// Ranking orders leaves by access frequency (count / size), breaking ties
// toward newer ranges (temporal locality). The hot prefix is the longest
// ranked prefix whose page total fits the FMEM budget.

#ifndef DEMETER_SRC_CORE_RANGE_TREE_H_
#define DEMETER_SRC_CORE_RANGE_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/units.h"

namespace demeter {

struct RangeTreeConfig {
  Nanos epoch_length = 500 * kMillisecond;    // t_split.
  double alpha = 2.0;                         // Significance factor.
  double split_threshold = 15.0;              // tau_split.
  int merge_threshold = 4;                    // tau_merge (quiet epochs before merge).
  uint64_t min_range_bytes = kHugePageSize;   // Split granularity floor (2 MiB).

  // Access-count margin required to out-access a neighbour before a split.
  double SplitMargin(int vcpus) const {
    return alpha * split_threshold * static_cast<double>(vcpus);
  }
};

struct HotRange {
  uint64_t start = 0;
  uint64_t end = 0;
  double access_count = 0.0;     // Decayed count.
  uint64_t created_epoch = 0;    // Age: when the range was created by a split.
  uint64_t last_active_epoch = 0;
  int quiet_epochs = 0;          // Consecutive epochs with zero accesses.

  uint64_t size() const { return end - start; }
  uint64_t pages() const { return size() / kPageSize; }
  double Frequency() const {
    return size() == 0 ? 0.0 : access_count / static_cast<double>(pages());
  }
};

class RangeTree {
 public:
  explicit RangeTree(RangeTreeConfig config = RangeTreeConfig{});

  // Registers a tracked region [start, end) (page-aligned). Regions must not
  // overlap existing ones. Typically called for the heap and mmap VMAs.
  void AddRegion(uint64_t start, uint64_t end);

  // Extends a previously added region whose end grew (heap growth). No-op if
  // already covered.
  void ExtendRegion(uint64_t start, uint64_t new_end);

  // Records one access sample at gVA `addr`. Samples outside tracked regions
  // are ignored (code/data/stack exclusion). O(log leaves).
  void RecordSample(uint64_t addr);

  // Ends the current epoch: performs split checks, decay, and merges.
  // `vcpus` scales the significance margin (samples arrive from all vCPUs).
  void EndEpoch(int vcpus);

  // Leaves ranked hottest-first: frequency desc, then newer creation age.
  std::vector<HotRange> Ranked() const;

  // Index f into Ranked(): the longest prefix whose cumulative page count
  // fits within fmem_pages (§3.2.3 step 1).
  static size_t HotPrefix(const std::vector<HotRange>& ranked, uint64_t fmem_pages);

  const std::vector<HotRange>& leaves() const { return leaves_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t total_splits() const { return total_splits_; }
  uint64_t total_merges() const { return total_merges_; }
  uint64_t samples_recorded() const { return samples_recorded_; }
  uint64_t samples_ignored() const { return samples_ignored_; }
  const RangeTreeConfig& config() const { return config_; }

  // Verifies structural invariants (used by tests): leaves sorted, disjoint,
  // exactly covering the registered regions.
  bool CheckInvariants() const;

 private:
  struct Region {
    uint64_t start;
    uint64_t end;
  };

  // Index of the leaf containing addr, or -1.
  int FindLeaf(uint64_t addr) const;
  bool SameRegion(const HotRange& a, const HotRange& b) const;
  void SplitPass();
  void DecayPass();
  void MergePass();

  RangeTreeConfig config_;
  std::vector<Region> regions_;      // Sorted by start.
  std::vector<HotRange> leaves_;     // Sorted by start; partition of regions.
  uint64_t epoch_ = 0;
  uint64_t total_splits_ = 0;
  uint64_t total_merges_ = 0;
  uint64_t samples_recorded_ = 0;
  uint64_t samples_ignored_ = 0;
  int last_vcpus_ = 1;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CORE_RANGE_TREE_H_
