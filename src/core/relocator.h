// Balanced page relocation (§3.2.3).
//
// Given the ranked ranges and the hot prefix f, the relocator:
//   1. walks the process page table inside hot ranges [0, f) collecting
//      pages misplaced in SMEM (the promotion list, length m);
//   2. walks the coldest ranges in reverse rank order collecting exactly m
//      pages misplaced in FMEM (the demotion list);
//   3. swaps the two lists pairwise with Vm::SwapPages — contents exchanged
//      through a buffer, no page allocation, no reclaim pressure, one
//      single-gVA shootdown per side.
// When FMEM has free headroom, promotion uses it directly (MovePage) before
// falling back to balanced swapping, so a freshly ballooned-up node fills
// without forcing demotions.

#ifndef DEMETER_SRC_CORE_RELOCATOR_H_
#define DEMETER_SRC_CORE_RELOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/core/range_tree.h"
#include "src/guest/process.h"
#include "src/hyper/vm.h"

namespace demeter {

struct RelocatorConfig {
  uint64_t max_batch_pages = 256;  // Promotion-list cap per epoch.
  // Free pages to leave in FMEM when promoting via MovePage (watermark).
  uint64_t fmem_free_reserve_pages = 16;
  // A swap only happens when the promoted page's range is at least this much
  // hotter than the demoted page's range. Prevents churn between
  // equal-frequency ranges (e.g. uniformly streamed data).
  double demote_margin = 2.0;
  // Ablation: when false, pairs migrate sequentially through temporary
  // pages (demote to free a slot, then promote into it) instead of the
  // balanced in-place swap — the migration style of prior systems, which
  // needs transient free memory and can trigger reclaim (§3.2.3).
  bool balanced_swap = true;
};

struct RelocationResult {
  uint64_t promoted = 0;
  uint64_t demoted = 0;
  uint64_t swaps = 0;
  uint64_t ptes_scanned = 0;
  double cost_ns = 0.0;
};

class BalancedRelocator {
 public:
  explicit BalancedRelocator(RelocatorConfig config = RelocatorConfig{}) : config_(config) {}

  RelocationResult Relocate(Vm& vm, GuestProcess& process, const std::vector<HotRange>& ranked,
                            size_t hot_prefix, Nanos now);

  const RelocatorConfig& config() const { return config_; }

 private:
  RelocatorConfig config_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CORE_RELOCATOR_H_
