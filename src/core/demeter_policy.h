// The Demeter guest-delegated TMM engine (§3.2).
//
// Wiring, per attached VM:
//   * every vCPU's PEBS unit is enabled with the load-latency event at a
//     small constant sample period (default 1/4093) and a 64 ns latency
//     threshold;
//   * samples drain at context switches (no dedicated polling thread) into
//     a lock-free MPSC channel; PMIs also drain (they are rare by design);
//   * every epoch (t_split = 500 ms) the classifier consumes the channel —
//     gVA samples feed the range tree directly, with NO per-sample address
//     translation — then splits/decays/merges, ranks ranges, and runs
//     balanced relocation against the current FMEM budget (balloon-aware:
//     the budget is node 0's present size).
//
// All engine work is charged to vCPU 0's clock (a kernel thread stealing
// guest time) and recorded per stage in the VM's management account.

#ifndef DEMETER_SRC_CORE_DEMETER_POLICY_H_
#define DEMETER_SRC_CORE_DEMETER_POLICY_H_

#include <cstdint>
#include <memory>

#include "src/base/units.h"
#include "src/core/policy.h"
#include "src/core/range_tree.h"
#include "src/core/relocator.h"
#include "src/guest/mpsc_channel.h"
#include "src/pebs/pebs.h"

namespace demeter {

// Host-side fallback for unresponsive guests. Only active on faulted runs
// (the harness arms it when a fault plan exists): a watchdog on the
// hypervisor side observes epoch progress; when the guest engine has made
// none for `unresponsive_after`, the host takes over tiering — it drains
// the PEBS sample channel itself, pays the software gVA->gPA translation
// the delegated engine avoids, and migrates host-side by sample frequency
// until the guest catches up.
struct DegradationConfig {
  bool enabled = true;               // false = no-fallback ablation.
  Nanos unresponsive_after = 0;      // 0 -> 3 * epoch_length at attach.
  Nanos watchdog_period = 0;         // 0 -> epoch_length at attach.
  // Cadence of host management rounds while degraded. Defaults to a
  // multiple of the watchdog period; benches that know the workload's
  // drift rate set it to the guest's own epoch length.
  Nanos host_round_period = 0;       // 0 -> 3 * watchdog_period at attach.
  uint64_t host_batch_pages = 128;   // Promotions per host round.

  bool IsDefault() const {
    return enabled && unresponsive_after == 0 && watchdog_period == 0 &&
           host_round_period == 0 && host_batch_pages == 128;
  }
  friend bool operator==(const DegradationConfig&, const DegradationConfig&) = default;
};

struct DemeterConfig {
  RangeTreeConfig range;
  RelocatorConfig relocator;
  // PEBS parameters applied to every vCPU at attach (overriding VmConfig).
  uint64_t sample_period = 4093;
  double latency_threshold_ns = 64.0;
  // Cost constants for engine work.
  double drain_ns_per_record = 15.0;       // Context-switch buffer drain.
  double classify_ns_per_sample = 25.0;    // Channel pop + tree update.
  double classify_ns_per_range = 40.0;     // Split/merge/rank per leaf.

  // ---- Ablation switches (each disables one Demeter design decision) ----
  // false: a dedicated polling kthread drains PEBS buffers on a short
  // period instead of the context-switch hook (HeMem/Memtis style).
  bool drain_on_context_switch = true;
  Nanos poll_period = 1 * kMillisecond;  // Used when polling.
  double poll_fixed_ns = 2000.0;
  // false: classify in guest-PHYSICAL address space — every sample pays a
  // software translation, and (with a fragmented allocator) gPA ranges
  // carry no locality, so refinement stalls (the Figure 4 insight).
  bool classify_virtual = true;
  double translate_ns_per_sample = 170.0;

  DegradationConfig degradation;
};

class DemeterPolicy : public TmmPolicy {
 public:
  explicit DemeterPolicy(DemeterConfig config = DemeterConfig{});

  const char* name() const override { return "demeter"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override;

  void RegisterMetrics(MetricScope scope) override {
    scope.RegisterCounter("epochs_run", &epochs_run_);
    scope.RegisterCounter("pages_promoted", &total_promoted_);
    scope.RegisterCounter("pages_demoted", &total_demoted_);
    // Degradation counters only exist on faulted runs, so fault-free
    // metric output is unchanged.
    if (injector_armed_) {
      scope.RegisterCounter("epochs_deferred", &epochs_deferred_);
    }
    if (watchdog_armed_) {
      scope.RegisterCounter("degraded_entries", &degraded_entries_);
      scope.RegisterCounter("recoveries", &recoveries_);
      scope.RegisterCounter("host_migrations", &host_migrations_);
      scope.RegisterCounter("degraded_ns", &degraded_ns_);
      scope.RegisterCounter("host_rounds_throttled", &host_rounds_throttled_);
    }
  }

  const RangeTree& tree() const { return *tree_; }
  const RelocationResult& last_relocation() const { return last_relocation_; }
  uint64_t total_promoted() const { return total_promoted_; }
  uint64_t total_demoted() const { return total_demoted_; }
  uint64_t epochs_run() const { return epochs_run_; }

  // Degradation observability (for tests and the resilience bench).
  bool degraded() const { return degraded_; }
  uint64_t degraded_entries() const { return degraded_entries_; }
  uint64_t recoveries() const { return recoveries_; }
  uint64_t degraded_ns() const { return degraded_ns_; }
  uint64_t epochs_deferred() const { return epochs_deferred_; }

 private:
  void SyncRegions();
  void SyncPhysicalRegions();
  void RunEpoch(Nanos now);
  void RunPoll(Nanos now);
  void ScheduleNext(Nanos now);
  // Degradation machinery (faulted runs only).
  void RunWatchdog(Nanos now);
  void HostManageRound(Nanos now);
  // Relocation driven by gPA ranges (classify_virtual == false).
  RelocationResult RelocatePhysical(const std::vector<HotRange>& ranked, size_t hot_prefix,
                                    Nanos now);

  DemeterConfig config_;
  Vm* vm_ = nullptr;
  GuestProcess* process_ = nullptr;
  std::unique_ptr<RangeTree> tree_;
  BalancedRelocator relocator_;
  std::unique_ptr<MpscChannel<uint64_t>> samples_;
  RelocationResult last_relocation_;
  uint64_t total_promoted_ = 0;
  uint64_t total_demoted_ = 0;
  uint64_t epochs_run_ = 0;
  uint64_t heap_synced_end_ = 0;
  size_t vmas_synced_ = 0;
  // DegradationState: kDelegated (guest engine runs) <-> kDegraded (host
  // fallback manages). Armed flags split observation from actuation so the
  // no-fallback ablation still *suffers* stalls without recovering.
  bool injector_armed_ = false;  // A fault plan exists: epochs can defer.
  bool watchdog_armed_ = false;  // injector_armed_ && degradation.enabled.
  bool degraded_ = false;
  Nanos last_epoch_done_ = 0;
  Nanos degraded_since_ = 0;
  Nanos unresponsive_after_ = 0;
  Nanos watchdog_period_ = 0;
  Nanos host_round_period_ = 0;
  Nanos next_host_round_ = 0;
  uint64_t epochs_deferred_ = 0;
  uint64_t degraded_entries_ = 0;
  uint64_t recoveries_ = 0;
  // Host rounds that found FMEM mid-shrink and skipped re-tiering.
  uint64_t host_rounds_throttled_ = 0;
  uint64_t host_migrations_ = 0;
  uint64_t degraded_ns_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CORE_DEMETER_POLICY_H_
