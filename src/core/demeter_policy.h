// The Demeter guest-delegated TMM engine (§3.2).
//
// Wiring, per attached VM:
//   * every vCPU's PEBS unit is enabled with the load-latency event at a
//     small constant sample period (default 1/4093) and a 64 ns latency
//     threshold;
//   * samples drain at context switches (no dedicated polling thread) into
//     a lock-free MPSC channel; PMIs also drain (they are rare by design);
//   * every epoch (t_split = 500 ms) the classifier consumes the channel —
//     gVA samples feed the range tree directly, with NO per-sample address
//     translation — then splits/decays/merges, ranks ranges, and runs
//     balanced relocation against the current FMEM budget (balloon-aware:
//     the budget is node 0's present size).
//
// All engine work is charged to vCPU 0's clock (a kernel thread stealing
// guest time) and recorded per stage in the VM's management account.

#ifndef DEMETER_SRC_CORE_DEMETER_POLICY_H_
#define DEMETER_SRC_CORE_DEMETER_POLICY_H_

#include <cstdint>
#include <memory>

#include "src/base/units.h"
#include "src/core/policy.h"
#include "src/core/range_tree.h"
#include "src/core/relocator.h"
#include "src/guest/mpsc_channel.h"
#include "src/pebs/pebs.h"

namespace demeter {

struct DemeterConfig {
  RangeTreeConfig range;
  RelocatorConfig relocator;
  // PEBS parameters applied to every vCPU at attach (overriding VmConfig).
  uint64_t sample_period = 4093;
  double latency_threshold_ns = 64.0;
  // Cost constants for engine work.
  double drain_ns_per_record = 15.0;       // Context-switch buffer drain.
  double classify_ns_per_sample = 25.0;    // Channel pop + tree update.
  double classify_ns_per_range = 40.0;     // Split/merge/rank per leaf.

  // ---- Ablation switches (each disables one Demeter design decision) ----
  // false: a dedicated polling kthread drains PEBS buffers on a short
  // period instead of the context-switch hook (HeMem/Memtis style).
  bool drain_on_context_switch = true;
  Nanos poll_period = 1 * kMillisecond;  // Used when polling.
  double poll_fixed_ns = 2000.0;
  // false: classify in guest-PHYSICAL address space — every sample pays a
  // software translation, and (with a fragmented allocator) gPA ranges
  // carry no locality, so refinement stalls (the Figure 4 insight).
  bool classify_virtual = true;
  double translate_ns_per_sample = 170.0;
};

class DemeterPolicy : public TmmPolicy {
 public:
  explicit DemeterPolicy(DemeterConfig config = DemeterConfig{});

  const char* name() const override { return "demeter"; }
  void Attach(Vm& vm, GuestProcess& process, Nanos start) override;

  void RegisterMetrics(MetricScope scope) override {
    scope.RegisterCounter("epochs_run", &epochs_run_);
    scope.RegisterCounter("pages_promoted", &total_promoted_);
    scope.RegisterCounter("pages_demoted", &total_demoted_);
  }

  const RangeTree& tree() const { return *tree_; }
  const RelocationResult& last_relocation() const { return last_relocation_; }
  uint64_t total_promoted() const { return total_promoted_; }
  uint64_t total_demoted() const { return total_demoted_; }
  uint64_t epochs_run() const { return epochs_run_; }

 private:
  void SyncRegions();
  void SyncPhysicalRegions();
  void RunEpoch(Nanos now);
  void RunPoll(Nanos now);
  void ScheduleNext(Nanos now);
  // Relocation driven by gPA ranges (classify_virtual == false).
  RelocationResult RelocatePhysical(const std::vector<HotRange>& ranked, size_t hot_prefix,
                                    Nanos now);

  DemeterConfig config_;
  Vm* vm_ = nullptr;
  GuestProcess* process_ = nullptr;
  std::unique_ptr<RangeTree> tree_;
  BalancedRelocator relocator_;
  std::unique_ptr<MpscChannel<uint64_t>> samples_;
  RelocationResult last_relocation_;
  uint64_t total_promoted_ = 0;
  uint64_t total_demoted_ = 0;
  uint64_t epochs_run_ = 0;
  uint64_t heap_synced_end_ = 0;
  size_t vmas_synced_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CORE_DEMETER_POLICY_H_
