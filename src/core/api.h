// Demeter public API umbrella header.
//
// Pulls in everything a downstream user needs to build a tiered-memory
// simulation: the host (HostMemory, Hypervisor, Vm), provisioning
// (DemeterBalloon, VirtioBalloon, HotplugProvisioner), and the
// guest-delegated TMM engine (DemeterPolicy with its RangeTree classifier
// and BalancedRelocator).
//
// Quickstart:
//
//   HostMemory memory({TierSpec::LocalDram(fmem), TierSpec::Pmem(smem)});
//   EventQueue events;
//   Hypervisor hyper(&memory, &events);
//   Vm& vm = hyper.CreateVm(VmConfig{...});
//   GuestProcess& proc = vm.kernel().CreateProcess();
//   DemeterPolicy demeter;
//   demeter.Attach(vm, proc, /*start=*/0);
//   ... drive accesses via vm.ExecuteAccess() or the harness Machine ...
//
// See examples/quickstart.cc for the full flow. For multi-configuration
// sweeps (many workloads/policies/VM counts), the preferred entry point is
// the src/runner experiment orchestrator: build ExperimentSpecs and submit
// them to an ExperimentRunner (src/runner/runner.h), which runs them on a
// worker pool with content-hash-derived seeds and spec-ordered results.

#ifndef DEMETER_SRC_CORE_API_H_
#define DEMETER_SRC_CORE_API_H_

#include "src/balloon/balloon.h"
#include "src/core/demeter_policy.h"
#include "src/core/policy.h"
#include "src/core/range_tree.h"
#include "src/core/relocator.h"
#include "src/hyper/hypervisor.h"
#include "src/hyper/vm.h"
#include "src/mem/host_memory.h"
#include "src/mem/tier.h"
#include "src/sim/event_queue.h"

#endif  // DEMETER_SRC_CORE_API_H_
