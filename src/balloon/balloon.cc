#include "src/balloon/balloon.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/cpu_account.h"

namespace demeter {

namespace {

constexpr int OtherNode(int node) { return node == 0 ? 1 : 0; }

}  // namespace

// ---- DemeterBalloon ---------------------------------------------------------

DemeterBalloon::DemeterBalloon(Vm* vm, BalloonCosts costs)
    : vm_(vm),
      costs_(costs),
      request_queue_(&vm->host().events(), costs.queue),
      completion_queue_(&vm->host().events(), costs.queue),
      stats_queue_(&vm->host().events(), costs.queue) {
  request_queue_.set_consumer(
      [this](BalloonRequest request, Nanos now) { HandleRequest(std::move(request), now); });
  completion_queue_.set_consumer([this](BalloonCompletion completion, Nanos now) {
    HandleCompletion(std::move(completion), now);
  });
  stats_queue_.set_consumer([this](GuestMemStats snapshot, Nanos now) {
    for (auto& cb : pending_stats_) {
      cb(snapshot, now);
    }
    pending_stats_.clear();
  });
  // Boot-time holdings: each node's span is 100% of VM memory, and whatever
  // is not presently usable sits inside the balloon — so the host can
  // deflate (grow the node) up to the span without ever having inflated.
  for (int n = 0; n < vm->kernel().num_nodes() && n < 2; ++n) {
    const NumaNode& node = vm->kernel().node(n);
    auto& held = held_pages_[static_cast<size_t>(n)];
    for (PageNum gpa = node.gpa_base() + node.present_pages(); gpa < node.gpa_end(); ++gpa) {
      held.push_back(gpa);
    }
  }
  fault_ = vm->host().fault_injector();
  armed_ = fault_ != nullptr && fault_->active();
  if (armed_ && fault_->plan().vq_capacity > 0) {
    request_queue_.set_capacity(fault_->plan().vq_capacity);
  }
}

void DemeterBalloon::RequestDelta(int node, int64_t delta_pages, Nanos now,
                                  CompletionCallback callback) {
  if (delta_pages == 0) {
    if (callback) {
      callback(BalloonCompletion{}, now);
    }
    return;
  }
  BalloonRequest request;
  request.request_id = next_request_id_++;
  request.node = node;
  request.delta_pages = delta_pages;
  if (armed_) {
    if (inflight_ >= costs_.resilience.max_inflight) {
      ++stats_.deferred;
      deferred_.emplace_back(request, std::move(callback));
      return;
    }
    StartRequest(request, std::move(callback), now);
    return;
  }
  ++stats_.requests;
  ++inflight_;
  if (callback) {
    pending_callbacks_.emplace_back(request.request_id, std::move(callback));
  }
  request_queue_.Push(request, now);
}

void DemeterBalloon::StartRequest(BalloonRequest request, CompletionCallback callback, Nanos now) {
  ++stats_.requests;
  ++inflight_;
  PendingRequest pending;
  pending.request = request;
  pending.callback = std::move(callback);
  pending_.push_back(std::move(pending));
  SendWire(request.request_id, now);
}

void DemeterBalloon::SendWire(uint64_t request_id, Nanos now) {
  for (PendingRequest& p : pending_) {
    if (p.request.request_id != request_id) {
      continue;
    }
    double ignored_cost = 0.0;
    if (!request_queue_.TryPush(p.request, now, &ignored_cost)) {
      // Ring full: the kick is refused and this attempt is lost on the
      // floor; the timeout below retransmits. Charged nowhere — the
      // doorbell write never left the core.
      fault_->Count(FaultSite::kVirtqueueFull, vm_->id());
    }
    // Exponential backoff: timeout * backoff^(attempts-1), computed by
    // repeated multiplication for cross-platform determinism.
    double delay = static_cast<double>(costs_.resilience.request_timeout_ns);
    for (int i = 1; i < p.attempts; ++i) {
      delay *= costs_.resilience.backoff;
    }
    p.timeout_event = vm_->host().events().Schedule(
        now + static_cast<Nanos>(delay),
        [this, request_id](Nanos fire) { OnRequestTimeout(request_id, fire); });
    return;
  }
}

void DemeterBalloon::OnRequestTimeout(uint64_t request_id, Nanos now) {
  auto it = pending_.begin();
  for (; it != pending_.end(); ++it) {
    if (it->request.request_id == request_id) {
      break;
    }
  }
  if (it == pending_.end()) {
    return;  // Completed between timer fire and delivery.
  }
  ++stats_.timeouts;
  if (it->attempts > costs_.resilience.max_retries) {
    // Give up: synthesize a timed-out completion so the policy layer can
    // observe the failure instead of waiting forever.
    ++stats_.abandoned;
    BalloonCompletion completion;
    completion.request_id = request_id;
    completion.node = it->request.node;
    completion.inflate = it->request.delta_pages > 0;
    completion.timed_out = true;
    auto callback = std::move(it->callback);
    pending_.erase(it);
    DEMETER_CHECK_GT(inflight_, 0u);
    --inflight_;
    if (callback) {
      callback(completion, now);
    }
    PumpDeferred(now);
    return;
  }
  ++it->attempts;
  ++stats_.retries;
  SendWire(request_id, now);
}

void DemeterBalloon::PumpDeferred(Nanos now) {
  while (!deferred_.empty() && inflight_ < costs_.resilience.max_inflight) {
    auto [request, callback] = std::move(deferred_.front());
    deferred_.pop_front();
    StartRequest(request, std::move(callback), now);
  }
}

void DemeterBalloon::RequestResizeTo(int node, uint64_t target_present_pages, Nanos now,
                                     CompletionCallback callback) {
  const uint64_t present = vm_->kernel().node(node).present_pages();
  const int64_t delta = static_cast<int64_t>(present) - static_cast<int64_t>(target_present_pages);
  RequestDelta(node, delta, now, std::move(callback));
}

bool DemeterBalloon::DemoteOnePage(int node, Nanos now) {
  GuestKernel& kernel = vm_->kernel();
  auto victim = kernel.PickVictim(node);
  if (!victim.has_value()) {
    return false;
  }
  const RmapEntry* rmap = kernel.Rmap(*victim);
  DEMETER_CHECK(rmap != nullptr);
  GuestProcess* proc = kernel.process(rmap->pid);
  DEMETER_CHECK(proc != nullptr);
  double cost = 0.0;
  if (!vm_->MovePage(*proc, rmap->vpn, OtherNode(node), now, &cost)) {
    return false;
  }
  vm_->mgmt_account().Charge(TmmStage::kOther, static_cast<Nanos>(cost));
  ++stats_.demotions_for_inflate;
  return true;
}

void DemeterBalloon::HandleRequest(BalloonRequest request, Nanos now) {
  if (vm_->departed()) {
    return;  // The guest is gone; late queue deliveries drop on the floor.
  }
  if (armed_) {
    // Delivery-side faults, in severity order. A crashed guest loses the
    // request outright; a stalled one services it when the window ends.
    if (fault_->InCrashWindow(now)) {
      fault_->Count(FaultSite::kGuestCrash, vm_->id());
      return;
    }
    if (fault_->ShouldInject(FaultSite::kBalloonDrop, vm_->id())) {
      return;
    }
    if (fault_->InStallWindow(now)) {
      fault_->Count(FaultSite::kGuestStall, vm_->id());
      vm_->host().events().Schedule(
          fault_->StallWindowEnd(now),
          [this, request](Nanos fire) mutable { ProcessRequest(std::move(request), fire); });
      return;
    }
    if (fault_->ShouldInject(FaultSite::kBalloonDelay, vm_->id())) {
      vm_->host().events().Schedule(
          now + fault_->plan().balloon_delay_ns,
          [this, request](Nanos fire) mutable { ProcessRequest(std::move(request), fire); });
      return;
    }
  }
  ProcessRequest(std::move(request), now);
}

void DemeterBalloon::ProcessRequest(BalloonRequest request, Nanos now) {
  if (vm_->departed()) {
    return;  // Stalled/delayed deliveries can outlive the guest.
  }
  if (armed_ && !processed_ids_.insert(request.request_id).second) {
    // A retransmit of a request this driver already executed (the original
    // was merely slow, not lost). Idempotence: drop it.
    ++stats_.duplicates_ignored;
    return;
  }
  // Guest driver context: dispatch the actual reservation/restoration to the
  // workqueue (modelled as an extra per-page delay before completion).
  GuestKernel& kernel = vm_->kernel();
  NumaNode& node = kernel.node(request.node);
  BalloonCompletion completion;
  completion.request_id = request.request_id;
  completion.node = request.node;

  if (request.delta_pages > 0) {
    // Inflate: reserve pages from exactly this node, demoting victims into
    // the other node when the free list runs short (tier-aware reclaim).
    completion.inflate = true;
    const uint64_t want = static_cast<uint64_t>(request.delta_pages);
    uint64_t got = node.BalloonTake(want, &completion.pages);
    while (got < want) {
      if (!DemoteOnePage(request.node, now)) {
        break;
      }
      got += node.BalloonTake(want - got, &completion.pages);
    }
    stats_.pages_short += want - got;
  } else {
    // Deflate: restore previously reserved pages to this node.
    completion.inflate = false;
    const uint64_t want = static_cast<uint64_t>(-request.delta_pages);
    auto& held = held_pages_[static_cast<size_t>(request.node)];
    const uint64_t give = std::min<uint64_t>(want, held.size());
    for (uint64_t i = 0; i < give; ++i) {
      completion.pages.push_back(held.back());
      held.pop_back();
    }
    node.BalloonReturn(completion.pages);
    stats_.pages_short += want - give;
  }
  if (completion.inflate) {
    auto& held = held_pages_[static_cast<size_t>(request.node)];
    held.insert(held.end(), completion.pages.begin(), completion.pages.end());
  }

  const double work =
      costs_.driver_work_per_page_ns * static_cast<double>(completion.pages.size());
  vm_->mgmt_account().Charge(TmmStage::kOther, static_cast<Nanos>(work));
  vm_->host().events().Schedule(now + static_cast<Nanos>(work),
                                [this, completion](Nanos fire) mutable {
                                  completion_queue_.Push(std::move(completion), fire);
                                });
}

void DemeterBalloon::ApplyCompletionPages(const BalloonCompletion& completion, Nanos now) {
  Tracer* tracer = vm_->host().tracer();
  if (tracer != nullptr && tracer->enabled()) {
    tracer->Instant("balloon", completion.inflate ? "inflate" : "deflate", now, vm_->id(), 0,
                    TraceArgs()
                        .Add("node", static_cast<uint64_t>(completion.node))
                        .Add("pages", static_cast<uint64_t>(completion.pages.size()))
                        .str());
  }
  if (completion.inflate) {
    // Release host backing of every reserved page; one batched invept.
    for (PageNum gpa : completion.pages) {
      vm_->host().UnbackGpa(*vm_, gpa, /*flush=*/false);
    }
    if (!completion.pages.empty()) {
      vm_->FullFlushAll();
    }
    stats_.pages_inflated += completion.pages.size();
  } else {
    // Deflated pages are backed lazily on next guest touch.
    stats_.pages_deflated += completion.pages.size();
  }
}

void DemeterBalloon::HandleCompletion(BalloonCompletion completion, Nanos now) {
  if (vm_->departed()) {
    return;  // ReclaimVm already released every frame this would touch.
  }
  if (armed_) {
    auto it = pending_.begin();
    for (; it != pending_.end(); ++it) {
      if (it->request.request_id == completion.request_id) {
        break;
      }
    }
    if (it == pending_.end()) {
      // The host already abandoned this request; the guest-side page
      // movement still happened, so apply the host-side effects to keep
      // frame accounting conserved, but fire no callback.
      ++stats_.stale_completions;
      ApplyCompletionPages(completion, now);
      return;
    }
    ++stats_.completions;
    vm_->host().events().Cancel(it->timeout_event);
    auto callback = std::move(it->callback);
    pending_.erase(it);
    DEMETER_CHECK_GT(inflight_, 0u);
    --inflight_;
    ApplyCompletionPages(completion, now);
    if (callback) {
      callback(completion, now);
    }
    PumpDeferred(now);
    return;
  }
  ++stats_.completions;
  DEMETER_CHECK_GT(inflight_, 0u);
  --inflight_;
  ApplyCompletionPages(completion, now);
  for (auto it = pending_callbacks_.begin(); it != pending_callbacks_.end(); ++it) {
    if (it->first == completion.request_id) {
      auto callback = std::move(it->second);
      pending_callbacks_.erase(it);
      callback(completion, now);
      break;
    }
  }
}

void DemeterBalloon::QueryStats(Nanos now, StatsCallback callback) {
  pending_stats_.push_back(std::move(callback));
  GuestMemStats snapshot;
  snapshot.timestamp = now;
  for (int n = 0; n < 2; ++n) {
    snapshot.node_present[n] = vm_->kernel().node(n).present_pages();
    snapshot.node_free[n] = vm_->kernel().node(n).free_pages();
  }
  snapshot.pages_promoted = vm_->stats().pages_promoted;
  snapshot.pages_demoted = vm_->stats().pages_demoted;
  snapshot.guest_faults = vm_->stats().guest_faults;
  snapshot.under_pressure = vm_->kernel().node(0).BelowLow() || vm_->kernel().node(1).BelowLow();
  stats_queue_.Push(snapshot, now);
}

// ---- VirtioBalloon ----------------------------------------------------------

VirtioBalloon::VirtioBalloon(Vm* vm, BalloonCosts costs)
    : vm_(vm),
      costs_(costs),
      request_queue_(&vm->host().events(), costs.queue),
      completion_queue_(&vm->host().events(), costs.queue) {
  request_queue_.set_consumer(
      [this](BalloonRequest request, Nanos now) { HandleRequest(std::move(request), now); });
  completion_queue_.set_consumer([this](BalloonCompletion completion, Nanos now) {
    HandleCompletion(std::move(completion), now);
  });
  fault_ = vm->host().fault_injector();
  armed_ = fault_ != nullptr && fault_->active();
  if (armed_ && fault_->plan().vq_capacity > 0) {
    request_queue_.set_capacity(fault_->plan().vq_capacity);
  }
}

void VirtioBalloon::RequestDelta(int64_t delta_pages, Nanos now) {
  if (delta_pages == 0) {
    return;
  }
  BalloonRequest request;
  request.request_id = next_request_id_++;
  request.delta_pages = delta_pages;
  ++stats_.requests;
  if (armed_) {
    double ignored_cost = 0.0;
    if (!request_queue_.TryPush(request, now, &ignored_cost)) {
      // No retry machinery in the classic balloon: a refused kick is a lost
      // request, which is exactly the wedging Demeter's resilience avoids.
      fault_->Count(FaultSite::kVirtqueueFull, vm_->id());
    }
    return;
  }
  request_queue_.Push(request, now);
}

void VirtioBalloon::HandleRequest(BalloonRequest request, Nanos now) {
  if (vm_->departed()) {
    return;
  }
  if (armed_) {
    if (fault_->InCrashWindow(now)) {
      fault_->Count(FaultSite::kGuestCrash, vm_->id());
      return;
    }
    if (fault_->ShouldInject(FaultSite::kBalloonDrop, vm_->id())) {
      return;
    }
    if (fault_->InStallWindow(now)) {
      fault_->Count(FaultSite::kGuestStall, vm_->id());
      vm_->host().events().Schedule(
          fault_->StallWindowEnd(now),
          [this, request](Nanos fire) mutable { ProcessRequest(std::move(request), fire); });
      return;
    }
    if (fault_->ShouldInject(FaultSite::kBalloonDelay, vm_->id())) {
      vm_->host().events().Schedule(
          now + fault_->plan().balloon_delay_ns,
          [this, request](Nanos fire) mutable { ProcessRequest(std::move(request), fire); });
      return;
    }
  }
  ProcessRequest(std::move(request), now);
}

void VirtioBalloon::ProcessRequest(BalloonRequest request, Nanos now) {
  if (vm_->departed()) {
    return;
  }
  if (armed_ && !processed_ids_.insert(request.request_id).second) {
    ++stats_.duplicates_ignored;
    return;
  }
  GuestKernel& kernel = vm_->kernel();
  BalloonCompletion completion;
  completion.request_id = request.request_id;

  if (request.delta_pages > 0) {
    // Tier-unaware inflation: balloon pages come from alloc_page(), whose
    // local-first policy drains the fast node down to its low watermark
    // before spilling to the slow node — regardless of which tier the host
    // actually wanted to reclaim. This is the FMEM-eating behaviour §5.2.1
    // measures.
    completion.inflate = true;
    uint64_t want = static_cast<uint64_t>(request.delta_pages);
    NumaNode& fast = kernel.node(0);
    const uint64_t reserve = fast.watermark_low();  // Snapshot before draining.
    if (fast.free_pages() > reserve) {
      const uint64_t budget = std::min<uint64_t>(want, fast.free_pages() - reserve);
      want -= fast.BalloonTake(budget, &completion.pages);
    }
    if (want > 0) {
      want -= kernel.node(1).BalloonTake(want, &completion.pages);
    }
    if (want > 0) {
      // Both preferred sources dry: dig below the fast node's watermark.
      want -= fast.BalloonTake(want, &completion.pages);
    }
    stats_.pages_short += want;
    held_.insert(held_.end(), completion.pages.begin(), completion.pages.end());
  } else {
    completion.inflate = false;
    uint64_t want = static_cast<uint64_t>(-request.delta_pages);
    const uint64_t give = std::min<uint64_t>(want, held_.size());
    for (uint64_t i = 0; i < give; ++i) {
      completion.pages.push_back(held_.back());
      held_.pop_back();
    }
    // Return each page to its owning node.
    for (PageNum gpa : completion.pages) {
      kernel.node(kernel.NodeOfGpa(gpa)).BalloonReturn({gpa});
    }
    stats_.pages_short += want - give;
  }

  const double work =
      costs_.driver_work_per_page_ns * static_cast<double>(completion.pages.size());
  vm_->mgmt_account().Charge(TmmStage::kOther, static_cast<Nanos>(work));
  vm_->host().events().Schedule(now + static_cast<Nanos>(work),
                                [this, completion](Nanos fire) mutable {
                                  completion_queue_.Push(std::move(completion), fire);
                                });
}

void VirtioBalloon::HandleCompletion(BalloonCompletion completion, Nanos now) {
  (void)now;
  if (vm_->departed()) {
    return;
  }
  ++stats_.completions;
  if (completion.inflate) {
    for (PageNum gpa : completion.pages) {
      vm_->host().UnbackGpa(*vm_, gpa, /*flush=*/false);
    }
    if (!completion.pages.empty()) {
      vm_->FullFlushAll();
    }
    stats_.pages_inflated += completion.pages.size();
  } else {
    stats_.pages_deflated += completion.pages.size();
  }
}

// ---- HotplugProvisioner -------------------------------------------------------

HotplugProvisioner::HotplugProvisioner(Vm* vm, uint64_t block_bytes)
    : vm_(vm), block_pages_(block_bytes / kPageSize) {
  DEMETER_CHECK_GT(block_pages_, 0u);
}

uint64_t HotplugProvisioner::ResizeTo(int node_id, uint64_t target_present_pages, Nanos now) {
  (void)now;
  GuestKernel& kernel = vm_->kernel();
  NumaNode& node = kernel.node(node_id);
  auto& blocks = unplugged_[static_cast<size_t>(node_id)];
  if (vm_->departed()) {
    return node.present_pages();  // The guest is gone; nothing to resize.
  }

  // Grow smaller than one whole block: the device cannot split a block, so
  // the request is rejected outright (no silent rounding, no state change).
  if (target_present_pages > node.present_pages() &&
      target_present_pages < node.present_pages() + block_pages_) {
    return node.present_pages();
  }

  // Shrink: unplug whole blocks while doing so does not undershoot target.
  while (node.present_pages() >= target_present_pages + block_pages_) {
    std::vector<PageNum> taken;
    if (node.BalloonTake(block_pages_, &taken) < block_pages_) {
      // Cannot assemble a whole free block: put partial back and stop.
      node.BalloonReturn(taken);
      break;
    }
    for (PageNum gpa : taken) {
      vm_->host().UnbackGpa(*vm_, gpa, /*flush=*/false);
    }
    vm_->FullFlushAll();
    blocks.push_back(std::move(taken));
  }
  // Grow: replug whole blocks, most recently unplugged first (LIFO), each
  // to the exact node it was carved from, while staying at or below target.
  while (!blocks.empty() && node.present_pages() + block_pages_ <= target_present_pages) {
    const std::vector<PageNum>& block = blocks.back();
    DEMETER_CHECK(!block.empty() && kernel.NodeOfGpa(block.front()) == node_id)
        << "replugging a block carved from another node";
    node.BalloonReturn(block);
    blocks.pop_back();
  }
  return node.present_pages();
}

}  // namespace demeter
