// Tiered memory provisioning (TMP) mechanisms.
//
// Three provisioners are modelled:
//
//  * VirtioBalloon — the classic tier-unaware balloon. Inflation allocates
//    guest pages wherever the guest allocator prefers (fast node first),
//    so a request intended to trim SMEM ends up reserving FMEM: the
//    under-provisioning pathology Figure 6 quantifies.
//
//  * DemeterBalloon — the paper's double balloon (§3.3): one balloon per
//    guest NUMA node, page-granular, fully asynchronous over VirtIO queues
//    (request queue -> guest workqueue -> completion queue -> host epoll),
//    plus a statistics queue exposing guest telemetry for QoS policies.
//    Inflating a node that has no free pages first demotes victims to the
//    other node, preserving tier intent.
//
//  * HotplugProvisioner — virtio-mem-style memory hot(un)plug, which can
//    only resize a node in coarse block multiples (128 MiB on x86-64);
//    included as the granularity baseline the paper contrasts against.
//
// All host-frame bookkeeping is exact: inflated pages are unbacked from the
// EPT (frames returned to the host tier); deflated pages are backed lazily
// on next touch.

#ifndef DEMETER_SRC_BALLOON_BALLOON_H_
#define DEMETER_SRC_BALLOON_BALLOON_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/hyper/hypervisor.h"
#include "src/hyper/vm.h"
#include "src/virtio/virtqueue.h"

namespace demeter {

// Host-side request resilience knobs. Only exercised when the Machine runs
// with a fault plan (the armed path); fault-free runs never start timers.
struct BalloonResilience {
  Nanos request_timeout_ns = 1 * kMillisecond;  // Before first retransmit.
  double backoff = 2.0;                         // Timeout multiplier per retry.
  int max_retries = 4;                          // Retransmits before giving up.
  uint64_t max_inflight = 4;                    // Window; excess requests queue.
};

struct BalloonCosts {
  double driver_work_per_page_ns = 120.0;  // Guest workqueue per-page work.
  double host_work_per_page_ns = 60.0;     // EPT unmap / free per page.
  VirtqueueCosts queue;
  BalloonResilience resilience;
};

struct BalloonRequest {
  uint64_t request_id = 0;
  int node = 0;            // Ignored by the tier-unaware balloon.
  int64_t delta_pages = 0; // >0: inflate (take from guest); <0: deflate.
};

struct BalloonCompletion {
  uint64_t request_id = 0;
  int node = 0;
  bool inflate = false;
  bool timed_out = false;      // Synthesized by the host after giving up.
  std::vector<PageNum> pages;  // Taken (inflate) or restored (deflate).
};

// Guest telemetry snapshot carried on the statistics queue (§3.3 "QoS
// Policy Support").
struct GuestMemStats {
  Nanos timestamp = 0;
  uint64_t node_present[2] = {0, 0};
  uint64_t node_free[2] = {0, 0};
  uint64_t pages_promoted = 0;
  uint64_t pages_demoted = 0;
  uint64_t guest_faults = 0;
  bool under_pressure = false;
};

struct BalloonStats {
  uint64_t requests = 0;
  uint64_t completions = 0;
  uint64_t pages_inflated = 0;
  uint64_t pages_deflated = 0;
  uint64_t pages_short = 0;  // Requested but not obtainable (partial fill).
  uint64_t demotions_for_inflate = 0;
  // Resilience counters; only non-zero (and only registered) when armed.
  uint64_t retries = 0;             // Retransmissions after a timeout.
  uint64_t timeouts = 0;            // Timer expiries (includes final one).
  uint64_t abandoned = 0;           // Requests given up after max_retries.
  uint64_t deferred = 0;            // Requests held back by the window.
  uint64_t duplicates_ignored = 0;  // Guest-side dedup of retransmits.
  uint64_t stale_completions = 0;   // Completions for abandoned requests.
};

// ---- Demeter double balloon -------------------------------------------------

class DemeterBalloon {
 public:
  using CompletionCallback = std::function<void(const BalloonCompletion&, Nanos now)>;

  DemeterBalloon(Vm* vm, BalloonCosts costs = BalloonCosts{});

  // Host side: ask the guest to remove (delta>0) or restore (delta<0)
  // |delta| pages of node `node`. Asynchronous; optional callback fires on
  // completion.
  void RequestDelta(int node, int64_t delta_pages, Nanos now,
                    CompletionCallback callback = nullptr);

  // Host side: resize node to an absolute present-page target.
  void RequestResizeTo(int node, uint64_t target_present_pages, Nanos now,
                       CompletionCallback callback = nullptr);

  // Host side: asynchronous telemetry query over the stats queue.
  using StatsCallback = std::function<void(const GuestMemStats&, Nanos now)>;
  void QueryStats(Nanos now, StatsCallback callback);

  uint64_t inflight() const { return inflight_; }
  const BalloonStats& stats() const { return stats_; }

  // Pages the balloon driver currently holds out of `node` (its boot-time
  // holdings plus inflations, minus deflations).
  uint64_t held_pages(int node) const { return held_pages_[static_cast<size_t>(node)].size(); }

  // Registers balloon counters under `scope` (the harness passes
  // "vm<i>/balloon"). Resilience counters exist only on armed (faulted)
  // runs, keeping fault-free metric output unchanged.
  void RegisterMetrics(MetricScope scope) {
    scope.RegisterCounter("requests", &stats_.requests);
    scope.RegisterCounter("completions", &stats_.completions);
    scope.RegisterCounter("pages_inflated", &stats_.pages_inflated);
    scope.RegisterCounter("pages_deflated", &stats_.pages_deflated);
    scope.RegisterCounter("pages_short", &stats_.pages_short);
    scope.RegisterCounter("demotions_for_inflate", &stats_.demotions_for_inflate);
    if (armed_) {
      scope.RegisterCounter("retries", &stats_.retries);
      scope.RegisterCounter("timeouts", &stats_.timeouts);
      scope.RegisterCounter("abandoned", &stats_.abandoned);
      scope.RegisterCounter("deferred", &stats_.deferred);
      scope.RegisterCounter("duplicates_ignored", &stats_.duplicates_ignored);
      scope.RegisterCounter("stale_completions", &stats_.stale_completions);
      scope.RegisterCounter("vq_backpressure", &request_queue_.stats().backpressure);
    }
  }

 private:
  struct PendingRequest {
    BalloonRequest request;
    CompletionCallback callback;
    int attempts = 1;
    uint64_t timeout_event = 0;
  };

  // Armed-path machinery (timeout/retry/window). Never runs fault-free.
  void StartRequest(BalloonRequest request, CompletionCallback callback, Nanos now);
  void SendWire(uint64_t request_id, Nanos now);
  void OnRequestTimeout(uint64_t request_id, Nanos now);
  void PumpDeferred(Nanos now);

  void HandleRequest(BalloonRequest request, Nanos now);
  // Guest-side execution of a (possibly delayed/retransmitted) request.
  void ProcessRequest(BalloonRequest request, Nanos now);
  void HandleCompletion(BalloonCompletion completion, Nanos now);
  // Host-side page effects of a completion (trace, unback, page counters).
  void ApplyCompletionPages(const BalloonCompletion& completion, Nanos now);
  // Guest-side: demote one page out of `node` to make a free page.
  bool DemoteOnePage(int node, Nanos now);

  Vm* vm_;
  BalloonCosts costs_;
  Virtqueue<BalloonRequest> request_queue_;
  Virtqueue<BalloonCompletion> completion_queue_;
  Virtqueue<GuestMemStats> stats_queue_;
  uint64_t next_request_id_ = 1;
  uint64_t inflight_ = 0;
  std::vector<PageNum> held_pages_[2];  // Driver-side balloon contents per node.
  std::vector<std::pair<uint64_t, CompletionCallback>> pending_callbacks_;
  std::vector<StatsCallback> pending_stats_;
  BalloonStats stats_;
  // Armed-path state.
  FaultInjector* fault_ = nullptr;
  bool armed_ = false;
  std::vector<PendingRequest> pending_;
  std::deque<std::pair<BalloonRequest, CompletionCallback>> deferred_;
  std::unordered_set<uint64_t> processed_ids_;
};

// ---- Classic (tier-unaware) VirtIO balloon -----------------------------------

class VirtioBalloon {
 public:
  explicit VirtioBalloon(Vm* vm, BalloonCosts costs = BalloonCosts{});

  // Host side: grow/shrink the balloon by |delta| pages of *some* guest
  // memory — the device has no tier notion. delta>0 inflates.
  void RequestDelta(int64_t delta_pages, Nanos now);

  uint64_t balloon_pages() const { return held_.size(); }
  const std::vector<PageNum>& held() const { return held_; }
  const BalloonStats& stats() const { return stats_; }

 private:
  void HandleRequest(BalloonRequest request, Nanos now);
  void ProcessRequest(BalloonRequest request, Nanos now);
  void HandleCompletion(BalloonCompletion completion, Nanos now);

  Vm* vm_;
  BalloonCosts costs_;
  Virtqueue<BalloonRequest> request_queue_;
  Virtqueue<BalloonCompletion> completion_queue_;
  uint64_t next_request_id_ = 1;
  std::vector<PageNum> held_;  // Pages currently inside the balloon (LIFO).
  BalloonStats stats_;
  FaultInjector* fault_ = nullptr;
  bool armed_ = false;
  std::unordered_set<uint64_t> processed_ids_;
};

// ---- virtio-mem-style hotplug -------------------------------------------------

class HotplugProvisioner {
 public:
  // Paper: 128 MiB blocks on x86-64. Scaled-down simulations pass smaller
  // blocks keeping the coarseness ratio.
  HotplugProvisioner(Vm* vm, uint64_t block_bytes = 128 * kMiB);

  // Resizes node toward `target_present_pages`, rounded DOWN to whole
  // blocks for growth and UP for shrink (the device cannot split a block).
  // Returns the achieved present size.
  uint64_t ResizeTo(int node, uint64_t target_present_pages, Nanos now);

  uint64_t block_pages() const { return block_pages_; }

  // Unplugged blocks of `node`, oldest first (ResizeTo replugs from the
  // back). Exposed for tests and invariant assembly.
  const std::vector<std::vector<PageNum>>& unplugged_blocks(int node) const {
    return unplugged_[static_cast<size_t>(node)];
  }

  // Pages currently unplugged from `node`.
  uint64_t unplugged_pages(int node) const {
    uint64_t total = 0;
    for (const auto& block : unplugged_[static_cast<size_t>(node)]) {
      total += block.size();
    }
    return total;
  }

 private:
  Vm* vm_;
  uint64_t block_pages_;
  // Pages unplugged per node, in block-sized batches (LIFO).
  std::vector<std::vector<PageNum>> unplugged_[2];
};

}  // namespace demeter

#endif  // DEMETER_SRC_BALLOON_BALLOON_H_
