// Processor Event-Based Sampling (PEBS) model.
//
// Each vCPU owns a PebsUnit. The unit counts sampled events (loads for the
// MEM_TRANS_RETIRED.LOAD_LATENCY event) and, every `sample_period` events,
// writes a record carrying the *guest virtual address* into a buffer that is
// private to the virtual machine (hardware switches buffers through
// vmcs.debugctl, so samples never cross the virtualization boundary —
// §2.3.2 "PEBS Isolation").
//
// The load-latency event filters through MSR_PEBS_LD_LAT_THRESHOLD: only
// accesses whose latency meets the threshold produce records, which is how
// Demeter excludes cache hits (the paper sets 64 ns between the 53.6 ns L2
// hit and the 68.7 ns DRAM read).
//
// When the buffer fills before software drains it, a Performance Monitoring
// Interrupt fires; PMI servicing is expensive, and designs that push the
// sample frequency high (HeMem-style adaptive collection) pay for it
// (§3.2.2). EPT-friendliness models the pre-PEBS-v5 architectural bug: with
// an EPT-unfriendly PMU, guest PEBS requires eagerly-backed guest memory.

#ifndef DEMETER_SRC_PEBS_PEBS_H_
#define DEMETER_SRC_PEBS_PEBS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/telemetry/tracer.h"

namespace demeter {

enum class PebsEvent {
  kLoadLatency,  // MEM_TRANS_RETIRED.LOAD_LATENCY — media-agnostic, loads only.
  kL3Miss,       // MEM_LOAD_L3_MISS_RETIRED — DRAM/PMEM only; needs one event per tier.
};

struct PebsConfig {
  PebsEvent event = PebsEvent::kLoadLatency;
  uint64_t sample_period = 4093;       // Events between records (paper default).
  double latency_threshold_ns = 64.0;  // MSR_PEBS_LD_LAT_THRESHOLD.
  size_t buffer_capacity = 512;        // Records before PMI.
  double pmi_cost_ns = 4000.0;         // PMI + handler entry/exit.
  bool ept_friendly = true;            // PEBS v5 (Sapphire Rapids+).
};

struct PebsRecord {
  uint64_t gva = 0;
  double latency_ns = 0.0;
  bool is_store = false;
  Nanos timestamp = 0;
};

class PebsUnit {
 public:
  struct Stats {
    uint64_t events_counted = 0;
    uint64_t records_written = 0;
    uint64_t records_dropped = 0;  // Buffer full, no PMI handler installed.
    uint64_t pmis = 0;
  };

  // The PMI handler receives the full buffer contents (drained).
  using PmiHandler = std::function<void(std::vector<PebsRecord>&& records, Nanos now)>;

  explicit PebsUnit(const PebsConfig& config);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void set_pmi_handler(PmiHandler handler) { pmi_handler_ = std::move(handler); }

  // Attaches an optional tracer; PMI drains emit instant events stamped with
  // the owning VM (`pid`) and vCPU (`tid`). Null disables tracing.
  void BindTrace(Tracer* tracer, int pid, int tid) {
    tracer_ = tracer;
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

  // Attaches the shared fault injector (null = fault-free). When armed,
  // threshold-passing records can be lost before reaching the buffer
  // (counted as records_dropped), modelling DS-area overflow races.
  void BindFault(FaultInjector* fault, int vm_id) {
    fault_ = fault;
    fault_vm_ = vm_id;
  }

  // Observes one memory access by the owning vCPU while in guest mode.
  // Returns the PMI cost in ns when this access triggered a PMI, else 0.
  // The counting fast path (all but one access in sample_period) is inline;
  // only the every-4093rd sampled event takes the out-of-line slow path.
  double OnAccess(uint64_t gva, double latency_ns, bool is_store, Nanos now) {
    if (!enabled_) {
      return 0.0;
    }
    // The load-latency and L3-miss events count loads only.
    if (is_store) {
      return 0.0;
    }
    ++stats_.events_counted;
    if (--countdown_ != 0) {
      return 0.0;
    }
    countdown_ = config_.sample_period;
    return OnSampledEvent(gva, latency_ns, now);
  }

  // Proactive drain (polling designs, or Demeter's context-switch drain).
  std::vector<PebsRecord> Drain();

  size_t buffered() const { return buffer_.size(); }
  const PebsConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }

  // Whether guest PEBS can be safely enabled given the VM's backing policy
  // (lazily-populated EPT requires an EPT-friendly PMU; see §2.3.2).
  bool UsableInGuest(bool lazily_backed) const {
    return config_.ept_friendly || !lazily_backed;
  }

 private:
  // Slow path of OnAccess, entered once per sample_period loads: threshold
  // filter, injected sample loss, record write, and the PMI when the buffer
  // fills. Returns the PMI cost (0 when no PMI fired).
  double OnSampledEvent(uint64_t gva, double latency_ns, Nanos now);

  PebsConfig config_;
  bool enabled_ = false;
  uint64_t countdown_;
  std::vector<PebsRecord> buffer_;
  PmiHandler pmi_handler_;
  Stats stats_;
  Tracer* tracer_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
  FaultInjector* fault_ = nullptr;
  int fault_vm_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_PEBS_PEBS_H_
