#include "src/pebs/pebs.h"

#include <utility>

#include "src/base/logging.h"

namespace demeter {

PebsUnit::PebsUnit(const PebsConfig& config) : config_(config), countdown_(config.sample_period) {
  DEMETER_CHECK_GT(config.sample_period, 0u);
  DEMETER_CHECK_GT(config.buffer_capacity, 0u);
  buffer_.reserve(config.buffer_capacity);
}

double PebsUnit::OnSampledEvent(uint64_t gva, double latency_ns, Nanos now) {
  // Threshold filter: cache hits do not produce records.
  if (config_.event == PebsEvent::kLoadLatency && latency_ns < config_.latency_threshold_ns) {
    return 0.0;
  }

  // Injected sample loss: the record is lost before reaching the DS area.
  if (fault_ != nullptr && fault_->ShouldInject(FaultSite::kPebsSampleLoss, fault_vm_)) {
    ++stats_.records_dropped;
    return 0.0;
  }

  // is_store is always false here: stores never reach the sampled path.
  buffer_.push_back(PebsRecord{gva, latency_ns, /*is_store=*/false, now});
  ++stats_.records_written;

  if (buffer_.size() < config_.buffer_capacity) {
    return 0.0;
  }

  // Buffer overshoot: PMI fires.
  ++stats_.pmis;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("pebs", "pmi_drain", now, trace_pid_, trace_tid_,
                     TraceArgs().Add("records", static_cast<uint64_t>(buffer_.size())).str());
  }
  if (pmi_handler_) {
    std::vector<PebsRecord> drained;
    drained.swap(buffer_);
    buffer_.reserve(config_.buffer_capacity);
    pmi_handler_(std::move(drained), now);
  } else {
    stats_.records_dropped += buffer_.size();
    buffer_.clear();
  }
  return config_.pmi_cost_ns;
}

std::vector<PebsRecord> PebsUnit::Drain() {
  std::vector<PebsRecord> drained;
  drained.swap(buffer_);
  buffer_.reserve(config_.buffer_capacity);
  return drained;
}

}  // namespace demeter
