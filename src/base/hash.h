// Order-sensitive content hashing for deterministic seed derivation.
//
// HashStream folds a sequence of typed values into one 64-bit digest via
// FNV-1a over the value bytes, with a SplitMix64 finalizer for avalanche.
// Doubles are hashed by bit pattern (after normalizing -0.0 to 0.0) so that
// equal configurations always hash equally. The experiment runner uses this
// to derive every job's RNG seed from its spec's *content*, never from
// submission order or scheduling.

#ifndef DEMETER_SRC_BASE_HASH_H_
#define DEMETER_SRC_BASE_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/base/rng.h"

namespace demeter {

class HashStream {
 public:
  static constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

  HashStream& Bytes(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      state_ = (state_ ^ p[i]) * kFnvPrime;
    }
    return *this;
  }

  HashStream& U64(uint64_t v) { return Bytes(&v, sizeof(v)); }
  HashStream& I64(int64_t v) { return U64(static_cast<uint64_t>(v)); }
  HashStream& I32(int v) { return I64(v); }
  HashStream& Bool(bool v) { return U64(v ? 1 : 0); }

  HashStream& F64(double v) {
    if (v == 0.0) {
      v = 0.0;  // Collapse -0.0 and +0.0 to one bit pattern.
    }
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return U64(bits);
  }

  // Length-prefixed so ("ab","c") and ("a","bc") hash differently.
  HashStream& Str(std::string_view s) {
    U64(s.size());
    return Bytes(s.data(), s.size());
  }

  // Finalized digest; the stream remains usable for further folding.
  uint64_t Digest() const {
    uint64_t sm = state_;
    return SplitMix64(sm);
  }

 private:
  uint64_t state_ = kFnvOffset;
};

}  // namespace demeter

#endif  // DEMETER_SRC_BASE_HASH_H_
