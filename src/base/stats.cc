#include "src/base/stats.h"

#include <cmath>

namespace demeter {

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::vector<double> LoessSmooth(const std::vector<double>& series, int half_window) {
  const int n = static_cast<int>(series.size());
  std::vector<double> out(series.size(), 0.0);
  if (half_window <= 0) {
    return series;
  }
  for (int i = 0; i < n; ++i) {
    double weight_sum = 0.0;
    double value_sum = 0.0;
    const int lo = i - half_window < 0 ? 0 : i - half_window;
    const int hi = i + half_window >= n ? n - 1 : i + half_window;
    for (int j = lo; j <= hi; ++j) {
      const double d = static_cast<double>(j - i) / static_cast<double>(half_window + 1);
      const double a = 1.0 - std::abs(d) * std::abs(d) * std::abs(d);
      const double w = a * a * a;  // Tricube kernel.
      weight_sum += w;
      value_sum += w * series[static_cast<size_t>(j)];
    }
    out[static_cast<size_t>(i)] = weight_sum > 0.0 ? value_sum / weight_sum : series[static_cast<size_t>(i)];
  }
  return out;
}

}  // namespace demeter
