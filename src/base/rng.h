// Deterministic pseudo-random number generation.
//
// All simulation randomness flows through Rng so that experiments are exactly
// reproducible from a seed. The core generator is xoshiro256**, seeded via
// SplitMix64 (the initialization recommended by its authors).

#ifndef DEMETER_SRC_BASE_RNG_H_
#define DEMETER_SRC_BASE_RNG_H_

#include <cstdint>

namespace demeter {

// SplitMix64 step; also usable standalone for cheap hashing.
constexpr uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be non-zero.
  uint64_t NextBelow(uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is adequate here:
    // the slight modulo bias of a plain multiply-high is far below the noise
    // floor of every experiment, and it is branch-free.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * static_cast<__uint128_t>(bound)) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Zipfian rank in [0, n) with exponent theta, via the rejection-inversion
  // method of Hörmann & Derflinger. Suitable for large n.
  uint64_t NextZipf(uint64_t n, double theta);

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  // The rejection-inversion setup needs five pow() evaluations that depend
  // only on (n, theta). Workloads draw millions of ranks from a handful of
  // fixed distributions, so a small cache of those constants removes the
  // dominant libm cost of every Zipf draw. Pure memoization: the cached
  // values are produced by exactly the expressions the uncached path runs,
  // so every draw consumes the same uniforms and returns the same rank.
  struct ZipfSetup {
    uint64_t n = 0;
    double theta = 0.0;
    bool valid = false;
    double q = 0.0;
    double one_minus_q = 0.0;
    double one_minus_q_inv = 0.0;
    double h_x1 = 0.0;
    double h_n = 0.0;
    double s = 0.0;
  };
  static constexpr int kZipfCacheSlots = 4;

  uint64_t state_[4];
  ZipfSetup zipf_cache_[kZipfCacheSlots];
  int zipf_next_slot_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_BASE_RNG_H_
