#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace demeter {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Strip the directory prefix for readability.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), base, line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace demeter
