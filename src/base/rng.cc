#include "src/base/rng.h"

#include <cmath>

namespace demeter {

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  // Rejection-inversion sampling (Hörmann & Derflinger 1996). theta != 1 is
  // assumed for the closed-form H; theta == 1 is nudged slightly.
  if (n <= 1) {
    return 0;
  }

  // Setup constants are a pure function of (n, theta); look them up before
  // paying five pow() calls to rebuild them.
  ZipfSetup* setup = nullptr;
  for (ZipfSetup& slot : zipf_cache_) {
    if (slot.valid && slot.n == n && slot.theta == theta) {
      setup = &slot;
      break;
    }
  }
  if (setup == nullptr) {
    setup = &zipf_cache_[zipf_next_slot_];
    zipf_next_slot_ = (zipf_next_slot_ + 1) % kZipfCacheSlots;

    double q = theta;
    if (q == 1.0) {
      q = 1.0 + 1e-9;
    }
    const double one_minus_q = 1.0 - q;
    const double one_minus_q_inv = 1.0 / one_minus_q;
    auto h = [&](double x) { return std::pow(x, one_minus_q) * one_minus_q_inv; };
    auto h_inv = [&](double x) { return std::pow(one_minus_q * x, 1.0 / one_minus_q); };

    setup->n = n;
    setup->theta = theta;
    setup->q = q;
    setup->one_minus_q = one_minus_q;
    setup->one_minus_q_inv = one_minus_q_inv;
    setup->h_x1 = h(1.5) - 1.0;
    setup->h_n = h(static_cast<double>(n) + 0.5);
    setup->s = 2.0 - h_inv(h(2.5) - std::pow(2.0, -q));
    setup->valid = true;
  }

  const double q = setup->q;
  const double one_minus_q = setup->one_minus_q;
  const double one_minus_q_inv = setup->one_minus_q_inv;
  const double h_x1 = setup->h_x1;
  const double h_n = setup->h_n;
  const double s = setup->s;
  auto h = [&](double x) { return std::pow(x, one_minus_q) * one_minus_q_inv; };
  auto h_inv = [&](double x) { return std::pow(one_minus_q * x, 1.0 / one_minus_q); };

  for (;;) {
    const double u = h_n + NextDouble() * (h_x1 - h_n);
    const double x = h_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n) {
      k = n;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s || u >= h(kd + 0.5) - std::pow(kd, -q)) {
      return k - 1;
    }
  }
}

}  // namespace demeter
