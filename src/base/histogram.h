// Log-bucketed latency histogram with percentile queries.
//
// Used for per-transaction latency tracking (Figure 12) and for internal
// distributions (walk costs, migration batch sizes). Buckets grow
// geometrically so the histogram covers nanoseconds to seconds in ~90 buckets
// with bounded relative error.

#ifndef DEMETER_SRC_BASE_HISTOGRAM_H_
#define DEMETER_SRC_BASE_HISTOGRAM_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace demeter {

class Histogram {
 public:
  // Sub-bucket resolution: each power of two is divided into kSubBuckets
  // linear sub-buckets, bounding relative error to 1/kSubBuckets.
  static constexpr int kSubBuckets = 16;
  // Shift that implements "divide a power-of-two range into kSubBuckets":
  // derived, not hard-coded, so the bucket math can never desync from
  // kSubBuckets.
  static constexpr int kSubBucketShift =
      std::bit_width(static_cast<unsigned>(kSubBuckets)) - 1;
  static_assert((1 << kSubBucketShift) == kSubBuckets,
                "kSubBuckets must be a power of two");

  Histogram();

  void Record(uint64_t value);
  // Records `value` `count` times. The running sum saturates at UINT64_MAX
  // instead of silently wrapping when value * count (or the accumulated
  // total) overflows; count() stays exact until UINT64_MAX samples.
  void RecordN(uint64_t value, uint64_t count);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Value at percentile p in [0, 100]. Returns the upper edge of the bucket
  // containing the p-th sample, clamped to [min(), max()] so a query can
  // never report a value outside the recorded range; Percentile(0) is
  // exactly min(). Returns 0 when empty.
  uint64_t Percentile(double p) const;

  void Clear();

  // Merge another histogram into this one. Sums saturate at UINT64_MAX like
  // RecordN rather than wrapping.
  void Merge(const Histogram& other);

 private:
  static int BucketIndex(uint64_t value);
  static uint64_t BucketUpperEdge(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_BASE_HISTOGRAM_H_
