// Small statistics helpers: streaming mean/variance, geometric mean, and the
// locally-weighted smoothing used when reporting throughput timelines
// (Figure 8 uses "locally estimated smoothing").

#ifndef DEMETER_SRC_BASE_STATS_H_
#define DEMETER_SRC_BASE_STATS_H_

#include <cstdint>
#include <vector>

namespace demeter {

// Welford's online mean and variance.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }
  double StdDev() const;

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Geometric mean of strictly positive values; returns 0 for an empty input.
double GeometricMean(const std::vector<double>& values);

// Tricube-weighted local smoothing of a series (a light-weight LOESS):
// each output point is the weighted average of inputs within `half_window`
// positions. Returns a series of the same length.
std::vector<double> LoessSmooth(const std::vector<double>& series, int half_window);

}  // namespace demeter

#endif  // DEMETER_SRC_BASE_STATS_H_
