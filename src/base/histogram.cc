#include "src/base/histogram.h"

#include <algorithm>
#include <bit>

#include "src/base/logging.h"

namespace demeter {

namespace {
// 64 powers of two, kSubBuckets sub-buckets each.
constexpr int kMaxBuckets = 64 * Histogram::kSubBuckets;
}  // namespace

Histogram::Histogram() : buckets_(kMaxBuckets, 0) {}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int log2 = 63 - std::countl_zero(value);
  // Position within the power-of-two range, scaled to kSubBuckets slots.
  const int sub =
      static_cast<int>((value >> (log2 - kSubBucketShift)) & (kSubBuckets - 1));
  const int index = log2 * kSubBuckets + sub;
  return index < kMaxBuckets ? index : kMaxBuckets - 1;
}

uint64_t Histogram::BucketUpperEdge(int index) {
  if (index < kSubBuckets) {
    return static_cast<uint64_t>(index);
  }
  const int log2 = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return (1ULL << log2) +
         (static_cast<uint64_t>(sub + 1) << (log2 - kSubBucketShift)) - 1;
}

void Histogram::Record(uint64_t value) { RecordN(value, 1); }

namespace {

// a + b, saturating at UINT64_MAX instead of wrapping.
uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t out = 0;
  return __builtin_add_overflow(a, b, &out) ? ~0ULL : out;
}

}  // namespace

void Histogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  uint64_t& bucket = buckets_[static_cast<size_t>(BucketIndex(value))];
  bucket = SaturatingAdd(bucket, count);
  count_ = SaturatingAdd(count_, count);
  uint64_t weighted = 0;
  if (__builtin_mul_overflow(value, count, &weighted)) {
    weighted = ~0ULL;
  }
  sum_ = SaturatingAdd(sum_, weighted);
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  DEMETER_CHECK_GE(p, 0.0);
  DEMETER_CHECK_LE(p, 100.0);
  // p = 0 asks for the smallest recorded value; the bucket upper edge would
  // overstate it by up to one sub-bucket width.
  if (p == 0.0) {
    return min_;
  }
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (static_cast<double>(seen) >= target && seen > 0) {
      // Clamp: a bucket's upper edge can lie below min_ (low percentile of a
      // sparse histogram) or above max_ (the recorded maximum sits inside
      // its bucket); neither is a value that was ever recorded.
      return std::clamp(BucketUpperEdge(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kMaxBuckets; ++i) {
    uint64_t& bucket = buckets_[static_cast<size_t>(i)];
    bucket = SaturatingAdd(bucket, other.buckets_[static_cast<size_t>(i)]);
  }
  count_ = SaturatingAdd(count_, other.count_);
  sum_ = SaturatingAdd(sum_, other.sum_);
  if (other.count_ > 0 && other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
}

}  // namespace demeter
