// Minimal logging and invariant-checking support.
//
// DEMETER_CHECK(cond) aborts on violation in every build type: simulation
// invariants (page accounting, tree structure) must never be silently wrong,
// since every experiment result depends on them.

#ifndef DEMETER_SRC_BASE_LOGGING_H_
#define DEMETER_SRC_BASE_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace demeter {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global log threshold; messages below it are discarded. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: stream-collecting message sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Discards everything streamed into it; used for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace demeter

#define DEMETER_LOG(level)                                                          \
  if (static_cast<int>(::demeter::LogLevel::k##level) <                             \
      static_cast<int>(::demeter::GetLogLevel())) {                                 \
  } else                                                                            \
    ::demeter::LogMessage(::demeter::LogLevel::k##level, __FILE__, __LINE__).stream()

#define DEMETER_CHECK(cond)                                                         \
  if (cond) {                                                                       \
  } else                                                                            \
    ::demeter::LogMessage(::demeter::LogLevel::kFatal, __FILE__, __LINE__).stream() \
        << "Check failed: " #cond " "

#define DEMETER_CHECK_EQ(a, b) DEMETER_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DEMETER_CHECK_NE(a, b) DEMETER_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DEMETER_CHECK_LE(a, b) DEMETER_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DEMETER_CHECK_LT(a, b) DEMETER_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DEMETER_CHECK_GE(a, b) DEMETER_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DEMETER_CHECK_GT(a, b) DEMETER_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // DEMETER_SRC_BASE_LOGGING_H_
