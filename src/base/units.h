// Size and time units used throughout Demeter.
//
// All simulated time is expressed in virtual nanoseconds (Nanos, uint64_t).
// All memory sizes are byte counts (uint64_t); page-granular quantities use
// PageNum (an index of a 4 KiB page within some address space).

#ifndef DEMETER_SRC_BASE_UNITS_H_
#define DEMETER_SRC_BASE_UNITS_H_

#include <cstdint>

namespace demeter {

using Nanos = uint64_t;   // Virtual nanoseconds.
using PageNum = uint64_t; // Index of a 4 KiB page.

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kPageShift = 12;

// Range-split granularity floor (the paper's 2 MiB hugepage-aligned floor).
inline constexpr uint64_t kHugePageSize = 2 * kMiB;
inline constexpr uint64_t kPagesPerHugePage = kHugePageSize / kPageSize;

inline constexpr Nanos kMicrosecond = 1000;
inline constexpr Nanos kMillisecond = 1000 * kMicrosecond;
inline constexpr Nanos kSecond = 1000 * kMillisecond;

constexpr uint64_t PagesForBytes(uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

constexpr uint64_t PageFloor(uint64_t addr) { return addr & ~(kPageSize - 1); }
constexpr uint64_t PageCeil(uint64_t addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}
constexpr PageNum PageOf(uint64_t addr) { return addr >> kPageShift; }
constexpr uint64_t AddrOfPage(PageNum page) { return page << kPageShift; }

constexpr double ToSeconds(Nanos ns) { return static_cast<double>(ns) / 1e9; }
constexpr double ToMillis(Nanos ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace demeter

#endif  // DEMETER_SRC_BASE_UNITS_H_
