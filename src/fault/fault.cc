#include "src/fault/fault.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/base/logging.h"

namespace demeter {

namespace {

// Shortest decimal form that parses back to exactly the same double, so
// ToSpec() is canonical and Parse(ToSpec()) round-trips bit-exactly.
std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

bool ParseProbability(const std::string& text, double* out, std::string* error) {
  char* end = nullptr;
  const double p = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    if (error != nullptr) {
      *error = "probability must be a number in [0,1], got '" + text + "'";
    }
    return false;
  }
  *out = p;
  return true;
}

bool ParseDuration(const std::string& text, Nanos* out, std::string* error) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  uint64_t scale = 1;
  if (std::strcmp(end, "ns") == 0 || *end == '\0') {
    scale = 1;
  } else if (std::strcmp(end, "us") == 0) {
    scale = 1000;
  } else if (std::strcmp(end, "ms") == 0) {
    scale = 1000 * 1000;
  } else if (std::strcmp(end, "s") == 0) {
    scale = 1000ULL * 1000 * 1000;
  } else {
    end = nullptr;  // Unknown suffix.
  }
  if (end == nullptr || end == text.c_str()) {
    if (error != nullptr) {
      *error = "duration must be an integer with optional ns/us/ms/s suffix, got '" + text + "'";
    }
    return false;
  }
  *out = static_cast<Nanos>(value) * scale;
  return true;
}

// Splits "A/B" into its halves; fails when there is no '/' separator.
bool SplitPair(const std::string& text, std::string* a, std::string* b, std::string* error) {
  const size_t slash = text.find('/');
  if (slash == std::string::npos) {
    if (error != nullptr) {
      *error = "expected 'A/B', got '" + text + "'";
    }
    return false;
  }
  *a = text.substr(0, slash);
  *b = text.substr(slash + 1);
  return true;
}

bool InWindow(Nanos now, Nanos duration, Nanos period) {
  if (duration == 0 || period == 0 || now < period) {
    return false;
  }
  return now % period < duration;
}

Nanos WindowEnd(Nanos now, Nanos duration, Nanos period) {
  return (now / period) * period + duration;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kBalloonDelay:
      return "balloon_delay";
    case FaultSite::kBalloonDrop:
      return "balloon_drop";
    case FaultSite::kGuestStall:
      return "guest_stall";
    case FaultSite::kGuestCrash:
      return "guest_crash";
    case FaultSite::kVirtqueueFull:
      return "virtqueue_full";
    case FaultSite::kPebsSampleLoss:
      return "pebs_sample_loss";
    case FaultSite::kMigrationFail:
      return "migration_fail";
    case FaultSite::kTierExhaustion:
      return "tier_exhaustion";
  }
  return "?";
}

bool FaultPlan::empty() const { return *this == FaultPlan{}; }

double FaultPlan::probability(FaultSite site) const {
  switch (site) {
    case FaultSite::kBalloonDelay:
      return balloon_delay_p;
    case FaultSite::kBalloonDrop:
      return balloon_drop_p;
    case FaultSite::kPebsSampleLoss:
      return pebs_drop_p;
    case FaultSite::kMigrationFail:
      return migration_fail_p;
    case FaultSite::kTierExhaustion:
      return tier_exhaust_p;
    case FaultSite::kGuestStall:
    case FaultSite::kGuestCrash:
    case FaultSite::kVirtqueueFull:
      return 0.0;
  }
  return 0.0;
}

std::string FaultPlan::ToSpec() const {
  std::string spec;
  auto append = [&spec](const std::string& token) {
    if (!spec.empty()) {
      spec += ',';
    }
    spec += token;
  };
  char buf[96];
  if (balloon_delay_p > 0.0) {
    std::snprintf(buf, sizeof(buf), "bdelay=%s/%" PRIu64, FormatDouble(balloon_delay_p).c_str(),
                  balloon_delay_ns);
    append(buf);
  }
  if (balloon_drop_p > 0.0) {
    append("bdrop=" + FormatDouble(balloon_drop_p));
  }
  if (stall_duration_ns > 0) {
    std::snprintf(buf, sizeof(buf), "stall=%" PRIu64 "/%" PRIu64, stall_duration_ns,
                  stall_period_ns);
    append(buf);
  }
  if (crash_duration_ns > 0) {
    std::snprintf(buf, sizeof(buf), "crash=%" PRIu64 "/%" PRIu64, crash_duration_ns,
                  crash_period_ns);
    append(buf);
  }
  if (vq_capacity > 0) {
    std::snprintf(buf, sizeof(buf), "vqcap=%" PRIu64, vq_capacity);
    append(buf);
  }
  if (pebs_drop_p > 0.0) {
    append("pebsdrop=" + FormatDouble(pebs_drop_p));
  }
  if (migration_fail_p > 0.0) {
    append("migfail=" + FormatDouble(migration_fail_p));
  }
  if (tier_exhaust_p > 0.0) {
    append("tierex=" + FormatDouble(tier_exhaust_p));
  }
  return spec;
}

std::optional<FaultPlan> FaultPlan::Parse(const std::string& spec, std::string* error) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) {
      continue;
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = "expected key=value, got '" + token + "'";
      }
      return std::nullopt;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "bdelay") {
      std::string p, d;
      if (!SplitPair(value, &p, &d, error) ||
          !ParseProbability(p, &plan.balloon_delay_p, error) ||
          !ParseDuration(d, &plan.balloon_delay_ns, error)) {
        return std::nullopt;
      }
      if (plan.balloon_delay_p > 0.0 && plan.balloon_delay_ns == 0) {
        if (error != nullptr) {
          *error = "bdelay needs a non-zero duration";
        }
        return std::nullopt;
      }
    } else if (key == "bdrop") {
      if (!ParseProbability(value, &plan.balloon_drop_p, error)) {
        return std::nullopt;
      }
    } else if (key == "stall" || key == "crash") {
      std::string d, per;
      Nanos duration = 0;
      Nanos period = 0;
      if (!SplitPair(value, &d, &per, error) || !ParseDuration(d, &duration, error) ||
          !ParseDuration(per, &period, error)) {
        return std::nullopt;
      }
      if (duration > 0 && (period == 0 || duration > period)) {
        if (error != nullptr) {
          *error = key + " needs duration <= period and period > 0";
        }
        return std::nullopt;
      }
      if (key == "stall") {
        plan.stall_duration_ns = duration;
        plan.stall_period_ns = duration > 0 ? period : 0;
      } else {
        plan.crash_duration_ns = duration;
        plan.crash_period_ns = duration > 0 ? period : 0;
      }
    } else if (key == "vqcap") {
      char* end = nullptr;
      const unsigned long long cap = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        if (error != nullptr) {
          *error = "vqcap must be a non-negative integer, got '" + value + "'";
        }
        return std::nullopt;
      }
      plan.vq_capacity = cap;
    } else if (key == "pebsdrop") {
      if (!ParseProbability(value, &plan.pebs_drop_p, error)) {
        return std::nullopt;
      }
    } else if (key == "migfail") {
      if (!ParseProbability(value, &plan.migration_fail_p, error)) {
        return std::nullopt;
      }
    } else if (key == "tierex") {
      if (!ParseProbability(value, &plan.tier_exhaust_p, error)) {
        return std::nullopt;
      }
    } else {
      if (error != nullptr) {
        *error = "unknown fault key '" + key + "'";
      }
      return std::nullopt;
    }
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed) : plan_(plan), seed_(seed) {}

FaultInjector::VmState& FaultInjector::state(int vm) {
  DEMETER_CHECK_GE(vm, 0);
  while (vms_.size() <= static_cast<size_t>(vm)) {
    const uint64_t id = static_cast<uint64_t>(vms_.size());
    auto vm_state = std::make_unique<VmState>();
    for (int s = 0; s < kNumFaultSites; ++s) {
      // One independent stream per (vm, site): the golden-ratio stride
      // separates neighbouring streams before SplitMix64 whitening inside
      // Rng::Seed.
      vm_state->rngs[static_cast<size_t>(s)].Seed(
          seed_ + 0x9e3779b97f4a7c15ULL * (id * kNumFaultSites + static_cast<uint64_t>(s) + 1));
    }
    vms_.push_back(std::move(vm_state));
  }
  return *vms_[static_cast<size_t>(vm)];
}

bool FaultInjector::ShouldInject(FaultSite site, int vm) {
  const double p = plan_.probability(site);
  if (p <= 0.0) {
    return false;
  }
  VmState& s = state(vm);
  if (!s.rngs[static_cast<size_t>(site)].NextBool(p)) {
    return false;
  }
  ++s.injected[static_cast<size_t>(site)];
  return true;
}

void FaultInjector::Count(FaultSite site, int vm) {
  ++state(vm).injected[static_cast<size_t>(site)];
}

bool FaultInjector::InStallWindow(Nanos now) const {
  return InWindow(now, plan_.stall_duration_ns, plan_.stall_period_ns);
}

Nanos FaultInjector::StallWindowEnd(Nanos now) const {
  return WindowEnd(now, plan_.stall_duration_ns, plan_.stall_period_ns);
}

bool FaultInjector::InCrashWindow(Nanos now) const {
  return InWindow(now, plan_.crash_duration_ns, plan_.crash_period_ns);
}

Nanos FaultInjector::CrashWindowEnd(Nanos now) const {
  return WindowEnd(now, plan_.crash_duration_ns, plan_.crash_period_ns);
}

uint64_t FaultInjector::injected(FaultSite site, int vm) const {
  if (vm < 0 || static_cast<size_t>(vm) >= vms_.size()) {
    return 0;
  }
  return vms_[static_cast<size_t>(vm)]->injected[static_cast<size_t>(site)];
}

uint64_t FaultInjector::total_injected(FaultSite site) const {
  uint64_t total = 0;
  for (const auto& vm_state : vms_) {
    total += vm_state->injected[static_cast<size_t>(site)];
  }
  return total;
}

void FaultInjector::RegisterVmMetrics(MetricScope scope, int vm) {
  VmState& s = state(vm);
  for (int i = 0; i < kNumFaultSites; ++i) {
    scope.RegisterCounter(std::string(FaultSiteName(static_cast<FaultSite>(i))) + "_injected",
                          &s.injected[static_cast<size_t>(i)]);
  }
}

}  // namespace demeter
