#include "src/fault/fault.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/base/logging.h"

namespace demeter {

namespace {

// Shortest decimal form that parses back to exactly the same double, so
// ToSpec() is canonical and Parse(ToSpec()) round-trips bit-exactly.
std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

bool ParseProbability(const std::string& text, double* out, std::string* error) {
  char* end = nullptr;
  const double p = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    if (error != nullptr) {
      *error = "probability must be a number in [0,1], got '" + text + "'";
    }
    return false;
  }
  *out = p;
  return true;
}

bool ParseDuration(const std::string& text, Nanos* out, std::string* error) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  uint64_t scale = 1;
  if (std::strcmp(end, "ns") == 0 || *end == '\0') {
    scale = 1;
  } else if (std::strcmp(end, "us") == 0) {
    scale = 1000;
  } else if (std::strcmp(end, "ms") == 0) {
    scale = 1000 * 1000;
  } else if (std::strcmp(end, "s") == 0) {
    scale = 1000ULL * 1000 * 1000;
  } else {
    end = nullptr;  // Unknown suffix.
  }
  if (end == nullptr || end == text.c_str()) {
    if (error != nullptr) {
      *error = "duration must be an integer with optional ns/us/ms/s suffix, got '" + text + "'";
    }
    return false;
  }
  *out = static_cast<Nanos>(value) * scale;
  return true;
}

// Splits "A/B" into its halves; fails when there is no '/' separator.
bool SplitPair(const std::string& text, std::string* a, std::string* b, std::string* error) {
  const size_t slash = text.find('/');
  if (slash == std::string::npos) {
    if (error != nullptr) {
      *error = "expected 'A/B', got '" + text + "'";
    }
    return false;
  }
  *a = text.substr(0, slash);
  *b = text.substr(slash + 1);
  return true;
}

bool InWindow(Nanos now, Nanos duration, Nanos period) {
  if (duration == 0 || period == 0 || now < period) {
    return false;
  }
  return now % period < duration;
}

Nanos WindowEnd(Nanos now, Nanos duration, Nanos period) {
  return (now / period) * period + duration;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kBalloonDelay:
      return "balloon_delay";
    case FaultSite::kBalloonDrop:
      return "balloon_drop";
    case FaultSite::kGuestStall:
      return "guest_stall";
    case FaultSite::kGuestCrash:
      return "guest_crash";
    case FaultSite::kVirtqueueFull:
      return "virtqueue_full";
    case FaultSite::kPebsSampleLoss:
      return "pebs_sample_loss";
    case FaultSite::kMigrationFail:
      return "migration_fail";
    case FaultSite::kTierExhaustion:
      return "tier_exhaustion";
    case FaultSite::kPoisonFmem:
      return "poison_fmem";
    case FaultSite::kPoisonSmem:
      return "poison_smem";
    case FaultSite::kSwapFail:
      return "swap_fail";
    case FaultSite::kLiveMigrateFail:
      return "live_migrate_fail";
    case FaultSite::kHostFail:
      return "host_fail";
  }
  return "?";
}

bool FaultPlan::empty() const { return *this == FaultPlan{}; }

double FaultPlan::probability(FaultSite site) const {
  switch (site) {
    case FaultSite::kBalloonDelay:
      return balloon_delay_p;
    case FaultSite::kBalloonDrop:
      return balloon_drop_p;
    case FaultSite::kPebsSampleLoss:
      return pebs_drop_p;
    case FaultSite::kMigrationFail:
      return migration_fail_p;
    case FaultSite::kTierExhaustion:
      return tier_exhaust_p;
    case FaultSite::kPoisonFmem:
      return poison_p[0];
    case FaultSite::kPoisonSmem:
      return poison_p[1];
    case FaultSite::kSwapFail:
      return swap_fail_p;
    case FaultSite::kGuestStall:
    case FaultSite::kGuestCrash:
    case FaultSite::kVirtqueueFull:
    case FaultSite::kLiveMigrateFail:  // Per-host; see ShouldFailMigration.
    case FaultSite::kHostFail:         // Per-host; see ShouldFailHost.
      return 0.0;
  }
  return 0.0;
}

std::string FaultPlan::ToSpec() const {
  std::string spec;
  auto append = [&spec](const std::string& token) {
    if (!spec.empty()) {
      spec += ',';
    }
    spec += token;
  };
  char buf[96];
  if (balloon_delay_p > 0.0) {
    std::snprintf(buf, sizeof(buf), "bdelay=%s/%" PRIu64, FormatDouble(balloon_delay_p).c_str(),
                  balloon_delay_ns);
    append(buf);
  }
  if (balloon_drop_p > 0.0) {
    append("bdrop=" + FormatDouble(balloon_drop_p));
  }
  if (stall_duration_ns > 0) {
    std::snprintf(buf, sizeof(buf), "stall=%" PRIu64 "/%" PRIu64, stall_duration_ns,
                  stall_period_ns);
    append(buf);
  }
  if (crash_duration_ns > 0) {
    std::snprintf(buf, sizeof(buf), "crash=%" PRIu64 "/%" PRIu64, crash_duration_ns,
                  crash_period_ns);
    append(buf);
  }
  if (vq_capacity > 0) {
    std::snprintf(buf, sizeof(buf), "vqcap=%" PRIu64, vq_capacity);
    append(buf);
  }
  if (pebs_drop_p > 0.0) {
    append("pebsdrop=" + FormatDouble(pebs_drop_p));
  }
  if (migration_fail_p > 0.0) {
    append("migfail=" + FormatDouble(migration_fail_p));
  }
  if (tier_exhaust_p > 0.0) {
    append("tierex=" + FormatDouble(tier_exhaust_p));
  }
  for (int t = 0; t < kMaxFaultTiers; ++t) {
    if (poison_p[static_cast<size_t>(t)] > 0.0) {
      std::snprintf(buf, sizeof(buf), "poison=%s@%d",
                    FormatDouble(poison_p[static_cast<size_t>(t)]).c_str(), t);
      append(buf);
    }
  }
  for (int t = 0; t < kMaxFaultTiers; ++t) {
    const TierShrink& shrink = tier_shrink[static_cast<size_t>(t)];
    if (shrink.frac > 0.0) {
      std::snprintf(buf, sizeof(buf), "tiershrink=%s/%" PRIu64 "/%" PRIu64 "@%d",
                    FormatDouble(shrink.frac).c_str(), shrink.duration_ns, shrink.period_ns, t);
      append(buf);
    }
  }
  if (swap_fail_p > 0.0) {
    std::snprintf(buf, sizeof(buf), "swapfail=%s/%" PRIu64, FormatDouble(swap_fail_p).c_str(),
                  swap_retry_backoff_ns);
    append(buf);
  }
  for (int h = 0; h < kMaxFaultHosts; ++h) {
    if (migrate_fail_p[static_cast<size_t>(h)] > 0.0) {
      std::snprintf(buf, sizeof(buf), "migratefail=%s/%" PRIu64 "@%d",
                    FormatDouble(migrate_fail_p[static_cast<size_t>(h)]).c_str(),
                    migrate_fail_abort_ns[static_cast<size_t>(h)], h);
      append(buf);
    }
  }
  for (int h = 0; h < kMaxFaultHosts; ++h) {
    if (host_fail_p[static_cast<size_t>(h)] > 0.0) {
      std::snprintf(buf, sizeof(buf), "hostfail=%s/%" PRIu64 "@%d",
                    FormatDouble(host_fail_p[static_cast<size_t>(h)]).c_str(),
                    host_fail_down_ns[static_cast<size_t>(h)], h);
      append(buf);
    }
  }
  return spec;
}

std::optional<FaultPlan> FaultPlan::Parse(const std::string& spec, std::string* error) {
  FaultPlan plan;
  // Every parse failure names the offending token so a long spec pinpoints
  // its bad element. Duplicate keys are rejected (last-wins would silently
  // mask typos); tiered keys dedup on "key@tier" so each tier gets one slot.
  std::vector<std::string> seen;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) {
      continue;
    }
    std::string detail;  // Inner message; wrapped with the token on failure.
    std::string* err = error != nullptr ? &detail : nullptr;
    auto fail = [&]() {
      if (error != nullptr) {
        *error = "bad --faults token '" + token + "': " + detail;
      }
      return std::nullopt;
    };
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      detail = "expected key=value";
      return fail();
    }
    const std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);

    // Tiered keys carry an `@tier` suffix on the value.
    int tier = -1;
    const bool tiered = key == "poison" || key == "tiershrink";
    if (tiered) {
      const size_t at = value.find('@');
      if (at == std::string::npos) {
        detail = key + " needs an @tier suffix (0=FMEM, 1=SMEM)";
        return fail();
      }
      const std::string tier_text = value.substr(at + 1);
      char* end = nullptr;
      const long t = std::strtol(tier_text.c_str(), &end, 10);
      if (end == tier_text.c_str() || *end != '\0' || t < 0 || t >= kMaxFaultTiers) {
        detail = "tier must be an integer in [0," + std::to_string(kMaxFaultTiers - 1) +
                 "], got '" + tier_text + "'";
        return fail();
      }
      tier = static_cast<int>(t);
      value = value.substr(0, at);
    }

    // Per-host keys carry an `@host` suffix on the value.
    int host = -1;
    const bool hosted = key == "migratefail" || key == "hostfail";
    if (hosted) {
      const size_t at = value.find('@');
      if (at == std::string::npos) {
        detail = key + " needs an @host suffix (0.." + std::to_string(kMaxFaultHosts - 1) + ")";
        return fail();
      }
      const std::string host_text = value.substr(at + 1);
      char* end = nullptr;
      const long h = std::strtol(host_text.c_str(), &end, 10);
      if (end == host_text.c_str() || *end != '\0' || h < 0 || h >= kMaxFaultHosts) {
        detail = "host must be an integer in [0," + std::to_string(kMaxFaultHosts - 1) +
                 "], got '" + host_text + "'";
        return fail();
      }
      host = static_cast<int>(h);
      value = value.substr(0, at);
    }

    const std::string dedup_key = tiered  ? key + "@" + std::to_string(tier)
                                  : hosted ? key + "@" + std::to_string(host)
                                           : key;
    if (std::find(seen.begin(), seen.end(), dedup_key) != seen.end()) {
      detail = "duplicate fault key '" + dedup_key + "'";
      return fail();
    }
    seen.push_back(dedup_key);

    if (key == "bdelay") {
      std::string p, d;
      if (!SplitPair(value, &p, &d, err) || !ParseProbability(p, &plan.balloon_delay_p, err) ||
          !ParseDuration(d, &plan.balloon_delay_ns, err)) {
        return fail();
      }
      if (plan.balloon_delay_p > 0.0 && plan.balloon_delay_ns == 0) {
        detail = "bdelay needs a non-zero duration";
        return fail();
      }
    } else if (key == "bdrop") {
      if (!ParseProbability(value, &plan.balloon_drop_p, err)) {
        return fail();
      }
    } else if (key == "stall" || key == "crash") {
      std::string d, per;
      Nanos duration = 0;
      Nanos period = 0;
      if (!SplitPair(value, &d, &per, err) || !ParseDuration(d, &duration, err) ||
          !ParseDuration(per, &period, err)) {
        return fail();
      }
      if (duration > 0 && (period == 0 || duration > period)) {
        detail = key + " needs duration <= period and period > 0";
        return fail();
      }
      if (key == "stall") {
        plan.stall_duration_ns = duration;
        plan.stall_period_ns = duration > 0 ? period : 0;
      } else {
        plan.crash_duration_ns = duration;
        plan.crash_period_ns = duration > 0 ? period : 0;
      }
    } else if (key == "vqcap") {
      char* end = nullptr;
      const unsigned long long cap = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        detail = "vqcap must be a non-negative integer, got '" + value + "'";
        return fail();
      }
      plan.vq_capacity = cap;
    } else if (key == "pebsdrop") {
      if (!ParseProbability(value, &plan.pebs_drop_p, err)) {
        return fail();
      }
    } else if (key == "migfail") {
      if (!ParseProbability(value, &plan.migration_fail_p, err)) {
        return fail();
      }
    } else if (key == "tierex") {
      if (!ParseProbability(value, &plan.tier_exhaust_p, err)) {
        return fail();
      }
    } else if (key == "poison") {
      if (!ParseProbability(value, &plan.poison_p[static_cast<size_t>(tier)], err)) {
        return fail();
      }
    } else if (key == "tiershrink") {
      std::string f, rest, d, per;
      TierShrink shrink;
      if (!SplitPair(value, &f, &rest, err) || !SplitPair(rest, &d, &per, err) ||
          !ParseProbability(f, &shrink.frac, err) || !ParseDuration(d, &shrink.duration_ns, err) ||
          !ParseDuration(per, &shrink.period_ns, err)) {
        return fail();
      }
      if (shrink.frac > 0.0 &&
          (shrink.duration_ns == 0 || shrink.period_ns == 0 ||
           shrink.duration_ns > shrink.period_ns)) {
        detail = "tiershrink needs 0 < duration <= period";
        return fail();
      }
      if (shrink.frac > 0.0) {
        plan.tier_shrink[static_cast<size_t>(tier)] = shrink;
      }
    } else if (key == "swapfail") {
      std::string p, d;
      if (!SplitPair(value, &p, &d, err) || !ParseProbability(p, &plan.swap_fail_p, err) ||
          !ParseDuration(d, &plan.swap_retry_backoff_ns, err)) {
        return fail();
      }
      if (plan.swap_fail_p > 0.0 && plan.swap_retry_backoff_ns == 0) {
        detail = "swapfail needs a non-zero retry backoff";
        return fail();
      }
    } else if (key == "migratefail") {
      std::string p, d;
      if (!SplitPair(value, &p, &d, err) ||
          !ParseProbability(p, &plan.migrate_fail_p[static_cast<size_t>(host)], err) ||
          !ParseDuration(d, &plan.migrate_fail_abort_ns[static_cast<size_t>(host)], err)) {
        return fail();
      }
      if (plan.migrate_fail_p[static_cast<size_t>(host)] > 0.0 &&
          plan.migrate_fail_abort_ns[static_cast<size_t>(host)] == 0) {
        detail = "migratefail needs a non-zero abort threshold";
        return fail();
      }
    } else if (key == "hostfail") {
      std::string p, d;
      if (!SplitPair(value, &p, &d, err) ||
          !ParseProbability(p, &plan.host_fail_p[static_cast<size_t>(host)], err) ||
          !ParseDuration(d, &plan.host_fail_down_ns[static_cast<size_t>(host)], err)) {
        return fail();
      }
      if (plan.host_fail_p[static_cast<size_t>(host)] > 0.0 &&
          plan.host_fail_down_ns[static_cast<size_t>(host)] == 0) {
        detail = "hostfail needs a non-zero down duration";
        return fail();
      }
    } else {
      detail = "unknown fault key '" + key + "'";
      return fail();
    }
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed) : plan_(plan), seed_(seed) {}

FaultInjector::VmState& FaultInjector::state(int vm) {
  DEMETER_CHECK_GE(vm, 0);
  while (vms_.size() <= static_cast<size_t>(vm)) {
    const uint64_t id = static_cast<uint64_t>(vms_.size());
    auto vm_state = std::make_unique<VmState>();
    // One independent stream per (vm, site): the golden-ratio stride
    // separates neighbouring streams before SplitMix64 whitening inside
    // Rng::Seed. The legacy stride is pinned at 11 (the site count when
    // these streams were first baselined) so adding sites never reshuffles
    // existing streams; sites beyond the legacy range seed from the
    // disjoint negative domain (~x == -x - 1, so the two never collide),
    // with the post-legacy site index in the high half of the lane so the
    // formula — unlike the original `kNumFaultSites - kLegacyStride`
    // multiplier — is independent of the site count forever. For the first
    // post-legacy site (s == 11) the lane is ~id either way, which keeps
    // every stream baselined under the old formula byte-identical.
    constexpr uint64_t kLegacyStride = 11;
    for (int s = 0; s < kNumFaultSites; ++s) {
      const uint64_t lane =
          s < static_cast<int>(kLegacyStride)
              ? id * kLegacyStride + static_cast<uint64_t>(s) + 1
              : ~(id + ((static_cast<uint64_t>(s) - kLegacyStride) << 32));
      vm_state->rngs[static_cast<size_t>(s)].Seed(seed_ + 0x9e3779b97f4a7c15ULL * lane);
    }
    vms_.push_back(std::move(vm_state));
  }
  return *vms_[static_cast<size_t>(vm)];
}

bool FaultInjector::ShouldInject(FaultSite site, int vm) {
  const double p = plan_.probability(site);
  if (p <= 0.0) {
    return false;
  }
  VmState& s = state(vm);
  if (!s.rngs[static_cast<size_t>(site)].NextBool(p)) {
    return false;
  }
  ++s.injected[static_cast<size_t>(site)];
  return true;
}

void FaultInjector::Count(FaultSite site, int vm) {
  ++state(vm).injected[static_cast<size_t>(site)];
}

bool FaultInjector::ShouldFailMigration(int host) {
  DEMETER_CHECK_GE(host, 0);
  DEMETER_CHECK_LT(host, kMaxFaultHosts);
  const double p = plan_.migrate_fail_p[static_cast<size_t>(host)];
  if (p <= 0.0) {
    return false;
  }
  // The per-host stream reuses the VmState machinery with `host` as the
  // state index — the site is cluster-scoped, so no per-VM stream exists.
  VmState& s = state(host);
  if (!s.rngs[static_cast<size_t>(FaultSite::kLiveMigrateFail)].NextBool(p)) {
    return false;
  }
  ++s.injected[static_cast<size_t>(FaultSite::kLiveMigrateFail)];
  return true;
}

Nanos FaultInjector::MigrationAbortAfter(int host) const {
  DEMETER_CHECK_GE(host, 0);
  DEMETER_CHECK_LT(host, kMaxFaultHosts);
  return plan_.migrate_fail_abort_ns[static_cast<size_t>(host)];
}

bool FaultInjector::ShouldFailHost(int host) {
  DEMETER_CHECK_GE(host, 0);
  DEMETER_CHECK_LT(host, kMaxFaultHosts);
  const double p = plan_.host_fail_p[static_cast<size_t>(host)];
  if (p <= 0.0) {
    return false;
  }
  // Like ShouldFailMigration, the per-host stream reuses the VmState
  // machinery with `host` as the state index.
  VmState& s = state(host);
  if (!s.rngs[static_cast<size_t>(FaultSite::kHostFail)].NextBool(p)) {
    return false;
  }
  ++s.injected[static_cast<size_t>(FaultSite::kHostFail)];
  return true;
}

Nanos FaultInjector::HostFailDuration(int host) const {
  DEMETER_CHECK_GE(host, 0);
  DEMETER_CHECK_LT(host, kMaxFaultHosts);
  return plan_.host_fail_down_ns[static_cast<size_t>(host)];
}

bool FaultInjector::InStallWindow(Nanos now) const {
  return InWindow(now, plan_.stall_duration_ns, plan_.stall_period_ns);
}

Nanos FaultInjector::StallWindowEnd(Nanos now) const {
  return WindowEnd(now, plan_.stall_duration_ns, plan_.stall_period_ns);
}

bool FaultInjector::InCrashWindow(Nanos now) const {
  return InWindow(now, plan_.crash_duration_ns, plan_.crash_period_ns);
}

Nanos FaultInjector::CrashWindowEnd(Nanos now) const {
  return WindowEnd(now, plan_.crash_duration_ns, plan_.crash_period_ns);
}

bool FaultInjector::InShrinkWindow(int tier, Nanos now) const {
  DEMETER_CHECK_GE(tier, 0);
  DEMETER_CHECK_LT(tier, kMaxFaultTiers);
  const TierShrink& shrink = plan_.tier_shrink[static_cast<size_t>(tier)];
  return shrink.frac > 0.0 && InWindow(now, shrink.duration_ns, shrink.period_ns);
}

Nanos FaultInjector::ShrinkWindowEnd(int tier, Nanos now) const {
  const TierShrink& shrink = plan_.tier_shrink[static_cast<size_t>(tier)];
  return WindowEnd(now, shrink.duration_ns, shrink.period_ns);
}

Nanos FaultInjector::NextShrinkWindowStart(int tier, Nanos now) const {
  DEMETER_CHECK_GE(tier, 0);
  DEMETER_CHECK_LT(tier, kMaxFaultTiers);
  const TierShrink& shrink = plan_.tier_shrink[static_cast<size_t>(tier)];
  if (shrink.frac <= 0.0 || shrink.period_ns == 0) {
    return 0;
  }
  // Window k starts at k*period for k >= 1; first start strictly after now.
  const Nanos k = now / shrink.period_ns + 1;
  return k * shrink.period_ns;
}

uint64_t FaultInjector::injected(FaultSite site, int vm) const {
  if (vm < 0 || static_cast<size_t>(vm) >= vms_.size()) {
    return 0;
  }
  return vms_[static_cast<size_t>(vm)]->injected[static_cast<size_t>(site)];
}

uint64_t FaultInjector::total_injected(FaultSite site) const {
  uint64_t total = 0;
  for (const auto& vm_state : vms_) {
    total += vm_state->injected[static_cast<size_t>(site)];
  }
  return total;
}

void FaultInjector::RegisterVmMetrics(MetricScope scope, int vm) {
  VmState& s = state(vm);
  for (int i = 0; i < kNumFaultSites; ++i) {
    scope.RegisterCounter(std::string(FaultSiteName(static_cast<FaultSite>(i))) + "_injected",
                          &s.injected[static_cast<size_t>(i)]);
  }
}

}  // namespace demeter
