#include "src/fault/invariant_checker.h"

#include <unordered_map>
#include <unordered_set>

#include "src/hyper/hypervisor.h"
#include "src/hyper/vm.h"

namespace demeter {

namespace {

// Formatting helper: "vm2: " prefix for every per-VM violation.
std::string VmPrefix(int vm) { return "vm" + std::to_string(vm) + ": "; }

}  // namespace

void InvariantChecker::CheckCommitmentConservation(const std::vector<CommitmentEntry>& inflight,
                                                   const std::vector<CommitmentEntry>& ledger,
                                                   InvariantReport* report) {
  // Recompute per-destination sums from first principles, then require the
  // ledger to match exactly — both directions, so an omitted host and a
  // stale nonzero entry are equally visible.
  std::unordered_map<int, CommitmentEntry> expected;
  for (const CommitmentEntry& claim : inflight) {
    CommitmentEntry& sum = expected[claim.dst_host];
    sum.dst_host = claim.dst_host;
    sum.fmem_pages += claim.fmem_pages;
    sum.far_pages += claim.far_pages;
  }
  for (const CommitmentEntry& held : ledger) {
    CommitmentEntry sum;
    auto it = expected.find(held.dst_host);
    if (it != expected.end()) {
      sum = it->second;
      expected.erase(it);
    }
    if (held.fmem_pages != sum.fmem_pages || held.far_pages != sum.far_pages) {
      report->violations.push_back(
          "host" + std::to_string(held.dst_host) + ": commitment ledger holds {fmem " +
          std::to_string(held.fmem_pages) + ", far " + std::to_string(held.far_pages) +
          "} but in-flight migrations claim {fmem " + std::to_string(sum.fmem_pages) + ", far " +
          std::to_string(sum.far_pages) + "}");
    }
  }
  for (const auto& [host, sum] : expected) {
    report->violations.push_back("host" + std::to_string(host) +
                                 ": in-flight migrations claim {fmem " +
                                 std::to_string(sum.fmem_pages) + ", far " +
                                 std::to_string(sum.far_pages) + "} but the ledger has no entry");
  }
}

void InvariantChecker::CheckHostFencing(const std::vector<bool>& down,
                                        const std::vector<int>& active_vms,
                                        const std::vector<RouteEntry>& routes,
                                        const std::vector<CommitmentEntry>& ledger,
                                        InvariantReport* report) {
  for (size_t h = 0; h < down.size(); ++h) {
    if (!down[h]) {
      continue;
    }
    const std::string host = "host" + std::to_string(h);
    if (h < active_vms.size() && active_vms[h] > 0) {
      report->violations.push_back(host + ": down but still runs " +
                                   std::to_string(active_vms[h]) + " active VM(s)");
    }
    for (const RouteEntry& route : routes) {
      if (route.src_host == static_cast<int>(h) || route.dst_host == static_cast<int>(h)) {
        report->violations.push_back(host + ": down but an in-flight migration routes " +
                                     std::to_string(route.src_host) + " -> " +
                                     std::to_string(route.dst_host));
      }
    }
    for (const CommitmentEntry& held : ledger) {
      if (held.dst_host == static_cast<int>(h) && (held.fmem_pages > 0 || held.far_pages > 0)) {
        report->violations.push_back(host + ": down but the commitment ledger holds {fmem " +
                                     std::to_string(held.fmem_pages) + ", far " +
                                     std::to_string(held.far_pages) + "} against it");
      }
    }
  }
}

void InvariantChecker::CheckRestartConservation(uint64_t killed, uint64_t restarted,
                                                uint64_t queued, uint64_t lost,
                                                InvariantReport* report) {
  if (killed != restarted + queued + lost) {
    report->violations.push_back(
        "restart ledger: killed " + std::to_string(killed) + " != restarted " +
        std::to_string(restarted) + " + queued " + std::to_string(queued) + " + lost " +
        std::to_string(lost));
  }
}

std::string InvariantReport::Join(size_t max_items) const {
  std::string joined;
  for (size_t i = 0; i < violations.size() && i < max_items; ++i) {
    if (!joined.empty()) {
      joined += "; ";
    }
    joined += violations[i];
  }
  if (violations.size() > max_items) {
    joined += "; ... (" + std::to_string(violations.size() - max_items) + " more)";
  }
  return joined;
}

InvariantReport InvariantChecker::Check(Hypervisor& hyper, const std::vector<VmView>& views) {
  InvariantReport report;
  HostMemory& memory = hyper.memory();
  SwapDevice* swap = hyper.swap();
  // Frames claimed by any VM's EPT, for global uniqueness (4).
  std::unordered_map<FrameId, int> frame_owner;
  std::vector<uint64_t> tier_mapped(static_cast<size_t>(memory.num_tiers()), 0);

  for (int i = 0; i < hyper.num_vms(); ++i) {
    Vm& vm = hyper.vm(i);
    GuestKernel& kernel = vm.kernel();
    const std::string prefix = VmPrefix(i);
    const bool departed =
        static_cast<size_t>(i) < views.size() && views[static_cast<size_t>(i)].departed;

    // ---- 1 + 2: GPT <-> rmap and node accounting -------------------------
    uint64_t node_mapped[2] = {0, 0};
    uint64_t gpt_total = 0;
    for (const auto& process : kernel.processes()) {
      const int pid = process->pid();
      process->gpt().ForEachPresent(
          0, PageTable::kMaxPage, [&](PageNum vpn, uint64_t gpa, bool, bool) {
            ++gpt_total;
            ++report.gpt_pages_audited;
            const int node = kernel.NodeOfGpa(gpa);
            if (node < 0) {
              report.violations.push_back(prefix + "pid " + std::to_string(pid) + " vpn " +
                                          std::to_string(vpn) + " maps gpa " +
                                          std::to_string(gpa) + " outside every node span");
              return;
            }
            ++node_mapped[static_cast<size_t>(node)];
            const RmapEntry* rmap = kernel.Rmap(gpa);
            if (rmap == nullptr || rmap->pid != pid || rmap->vpn != vpn) {
              report.violations.push_back(prefix + "rmap for gpa " + std::to_string(gpa) +
                                          " does not name (pid " + std::to_string(pid) +
                                          ", vpn " + std::to_string(vpn) + ")");
            }
          });
    }
    if (gpt_total != kernel.mapped_pages()) {
      // Every GPT entry matched a distinct rmap entry above, so a size
      // mismatch can only mean orphaned rmap entries.
      report.violations.push_back(prefix + "rmap holds " + std::to_string(kernel.mapped_pages()) +
                                  " entries but GPTs map " + std::to_string(gpt_total) +
                                  " pages");
    }
    for (int n = 0; n < kernel.num_nodes() && n < 2; ++n) {
      const NumaNode& node = kernel.node(n);
      if (node.used_pages() != node_mapped[static_cast<size_t>(n)]) {
        report.violations.push_back(prefix + "node " + std::to_string(n) + " used_pages " +
                                    std::to_string(node.used_pages()) + " != mapped count " +
                                    std::to_string(node_mapped[static_cast<size_t>(n)]));
      }
      // ---- 3: balloon page conservation ---------------------------------
      const uint64_t held = static_cast<size_t>(i) < views.size()
                                ? views[static_cast<size_t>(i)].held_pages[static_cast<size_t>(n)]
                                : 0;
      if (!departed && node.present_pages() + held != node.initial_present_pages()) {
        report.violations.push_back(
            prefix + "node " + std::to_string(n) + " conservation: present " +
            std::to_string(node.present_pages()) + " + held " + std::to_string(held) +
            " != provisioned " + std::to_string(node.initial_present_pages()));
      }
    }

    // ---- 4: EPT <-> host accounting --------------------------------------
    uint64_t vm_swap_mapped = 0;
    vm.ept().ForEachPresent(0, PageTable::kMaxPage, [&](PageNum gpa, uint64_t frame, bool, bool) {
      ++report.ept_pages_audited;
      if (kernel.NodeOfGpa(gpa) < 0) {
        report.violations.push_back(prefix + "EPT backs gpa " + std::to_string(gpa) +
                                    " outside every node span");
      }
      if (frame >= memory.total_frames()) {
        report.violations.push_back(prefix + "EPT maps gpa " + std::to_string(gpa) +
                                    " to out-of-range frame " + std::to_string(frame));
        return;
      }
      // ---- 6: poison containment ----------------------------------------
      if (memory.IsPoisoned(frame)) {
        report.violations.push_back(prefix + "EPT maps gpa " + std::to_string(gpa) +
                                    " to hw-poisoned frame " + std::to_string(frame));
      } else if (!memory.IsAllocated(frame)) {
        report.violations.push_back(prefix + "EPT maps gpa " + std::to_string(gpa) +
                                    " to frame " + std::to_string(frame) +
                                    " the host allocator considers free");
      }
      auto [it, inserted] = frame_owner.emplace(frame, i);
      if (!inserted) {
        report.violations.push_back(prefix + "frame " + std::to_string(frame) +
                                    " double-mapped (also backing vm" +
                                    std::to_string(it->second) + ")");
      }
      const TierIndex tier = memory.TierOf(frame);
      ++tier_mapped[static_cast<size_t>(tier)];
      // ---- 8: swap-slot accounting --------------------------------------
      // Every EPT-backed far-tier frame carries exactly one slot, owned by
      // the mapping VM (slot uniqueness per frame is structural: the device
      // keys slots by frame).
      if (swap != nullptr && tier == kSwapTier) {
        ++vm_swap_mapped;
        if (!swap->HasSlot(frame)) {
          report.violations.push_back(prefix + "swap frame " + std::to_string(frame) +
                                      " backing gpa " + std::to_string(gpa) + " has no slot");
        } else if (swap->SlotOwner(frame) != i) {
          report.violations.push_back(prefix + "swap frame " + std::to_string(frame) +
                                      "'s slot is owned by vm" +
                                      std::to_string(swap->SlotOwner(frame)));
        }
      }
    });
    if (swap != nullptr && swap->ActiveSlotsForVm(i) != vm_swap_mapped) {
      // Covers departed VMs too: zero mapped far pages must mean zero slots
      // (ReclaimVm drains every backing through UnbackGpa's SlotDrop).
      report.violations.push_back(prefix + "swap device holds " +
                                  std::to_string(swap->ActiveSlotsForVm(i)) +
                                  " slots but the EPT maps " + std::to_string(vm_swap_mapped) +
                                  " far-tier pages");
    }

    // ---- 4b: migrations never lose dirty state ---------------------------
    // Remap preserves A/D by construction; the counters make any future
    // regression visible on every --check run, across both dimensions.
    if (vm.ept().remap_dirty_lost() != 0) {
      report.violations.push_back(prefix + "EPT dropped a Dirty bit on " +
                                  std::to_string(vm.ept().remap_dirty_lost()) + " of " +
                                  std::to_string(vm.ept().remap_count()) + " remaps");
    }
    for (const auto& process : kernel.processes()) {
      if (process->gpt().remap_dirty_lost() != 0) {
        report.violations.push_back(prefix + "pid " + std::to_string(process->pid()) +
                                    " GPT dropped a Dirty bit on " +
                                    std::to_string(process->gpt().remap_dirty_lost()) + " of " +
                                    std::to_string(process->gpt().remap_count()) + " remaps");
      }
    }

    // ---- 7: departed-VM emptiness -----------------------------------------
    if (departed) {
      if (kernel.mapped_pages() != 0) {
        report.violations.push_back(prefix + "departed but rmap still holds " +
                                    std::to_string(kernel.mapped_pages()) + " entries");
      }
      for (int n = 0; n < kernel.num_nodes(); ++n) {
        if (kernel.node(n).used_pages() != 0) {
          report.violations.push_back(prefix + "departed but node " + std::to_string(n) +
                                      " still counts " +
                                      std::to_string(kernel.node(n).used_pages()) +
                                      " used pages");
        }
      }
      if (vm.ept().mapped_count() != 0) {
        report.violations.push_back(prefix + "departed but EPT still maps " +
                                    std::to_string(vm.ept().mapped_count()) + " pages");
      }
      uint64_t tlb_live = 0;
      for (int v = 0; v < vm.num_vcpus(); ++v) {
        vm.vcpu(v).tlb.ForEachValid([&](PageNum, FrameId) { ++tlb_live; });
      }
      if (tlb_live != 0) {
        report.violations.push_back(prefix + "departed but " + std::to_string(tlb_live) +
                                    " TLB entries are still live");
      }
    }

    // ---- 5: TLB validity --------------------------------------------------
    for (int v = 0; v < vm.num_vcpus(); ++v) {
      vm.vcpu(v).tlb.ForEachValid([&](PageNum vpn, FrameId frame) {
        ++report.tlb_entries_audited;
        for (const auto& process : kernel.processes()) {
          const auto gpt = process->gpt().Lookup(vpn);
          if (!gpt.present) {
            continue;
          }
          const auto ept = vm.ept().Lookup(gpt.target);
          if (ept.present && ept.target == frame) {
            return;  // Entry agrees with a live translation.
          }
        }
        report.violations.push_back(prefix + "vcpu " + std::to_string(v) +
                                    " TLB caches stale vpn " + std::to_string(vpn) +
                                    " -> frame " + std::to_string(frame));
      });
    }
  }

  // Allocated frames and EPT-backed frames are in bijection, so per-tier
  // mapped counts must equal the allocator's used counts.
  for (TierIndex t = 0; t < memory.num_tiers(); ++t) {
    if (tier_mapped[static_cast<size_t>(t)] != memory.UsedPages(t)) {
      report.violations.push_back("tier " + std::to_string(t) + " allocator reports " +
                                  std::to_string(memory.UsedPages(t)) +
                                  " used frames but EPTs map " +
                                  std::to_string(tier_mapped[static_cast<size_t>(t)]));
    }
  }
  // 8 (global): with per-frame and per-VM slot checks above, a total mismatch
  // can only mean leaked slots — frames freed without SlotDrop.
  if (swap != nullptr && swap->ActiveSlots() != memory.UsedPages(kSwapTier)) {
    report.violations.push_back("swap device holds " + std::to_string(swap->ActiveSlots()) +
                                " slots but tier " + std::to_string(kSwapTier) + " has " +
                                std::to_string(memory.UsedPages(kSwapTier)) +
                                " used frames (slot leak)");
  }
  return report;
}

}  // namespace demeter
