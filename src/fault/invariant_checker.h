// Cross-layer invariant audit over a live simulated host.
//
// The simulation maintains redundant state on purpose — GPT and reverse map,
// per-node free lists and present counts, EPT mappings and per-tier frame
// allocators, TLB entries caching flattened translations. The checker walks
// all of it and cross-validates:
//
//   1. GPT <-> rmap consistency: every present GPT mapping targets a gPA
//      inside a node span, and the reverse map names exactly that (pid, vpn);
//      the rmap has no orphan entries.
//   2. Guest node accounting: each node's used_pages equals the number of
//      mapped gPAs it contains.
//   3. Balloon page conservation: present + provisioner-held == the node's
//      boot-time present size, per node (inflated + resident = provisioned).
//   4. EPT <-> host accounting: every backed gPA maps a frame that the host
//      allocator marks allocated; no frame backs two gPAs (within or across
//      VMs); per-tier mapped counts equal HostMemory::UsedPages.
//   5. TLB validity: every valid TLB entry agrees with the current GPT∘EPT
//      composition of some process in the owning VM.
//   6. Poison containment: no EPT leaf maps a frame HostMemory has marked
//      hw-poisoned (offlined frames must be unmapped before the audit).
//   7. Departed-VM emptiness: a VM the harness removed mid-run holds
//      nothing — zero rmap entries, zero node used_pages, zero EPT
//      mappings, zero live TLB entries.
//   8. Swap-slot accounting (three-tier hosts): every EPT-backed far-tier
//      frame has exactly one device slot owned by the mapping VM; each VM's
//      slot count equals its mapped far-tier pages (so a departed VM holds
//      zero slots after ReclaimVm); the device's total slot count equals the
//      far tier's used frames — any excess is a leaked slot.
//   9. Migration-commitment conservation (fleet-level, checked via
//      CheckCommitmentConservation): for every destination host, the
//      migrator's commitment ledger equals the sum of the in-flight
//      migrations' claims toward that host. A charge without a matching
//      release (aborted migration left on the books) or a double release
//      shows up as a mismatch — including the degenerate leak of a nonzero
//      ledger with nothing in flight.
//  10. Down-host fencing (fleet-level, CheckHostFencing): a fail-stopped
//      host holds nothing the control plane could act on — zero active VMs,
//      zero in-flight migration routes touching it (either endpoint), and
//      zero commitment residue in the destination ledger.
//  11. Restart-ledger conservation (fleet-level,
//      CheckRestartConservation): every VM kill resolves to exactly one
//      recovery outcome, killed == restarted + queued + lost.
//
// The audit is strictly read-only (const page-table walks; never the
// A/D-clearing scan) and runs between events, so it cannot perturb the
// simulation — which is why the harness excludes it from the spec content
// hash, like capture_trace.

#ifndef DEMETER_SRC_FAULT_INVARIANT_CHECKER_H_
#define DEMETER_SRC_FAULT_INVARIANT_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace demeter {

class Hypervisor;

struct InvariantReport {
  std::vector<std::string> violations;
  uint64_t gpt_pages_audited = 0;
  uint64_t ept_pages_audited = 0;
  uint64_t tlb_entries_audited = 0;

  bool ok() const { return violations.empty(); }
  // First `max_items` violations joined for DEMETER_CHECK messages.
  std::string Join(size_t max_items = 8) const;
};

class InvariantChecker {
 public:
  // Per-VM provisioner holdings, assembled by the harness: pages the
  // balloon / hotplug device currently holds out of each guest node.
  struct VmView {
    uint64_t held_pages[2] = {0, 0};
    // The harness removed this VM mid-run: it must hold no memory at all,
    // and balloon conservation no longer applies (the guest is gone).
    bool departed = false;
  };

  // Audits every VM of `hyper`. `views` is indexed by VM id; missing
  // entries mean "no provisioner holdings" (static provisioning).
  static InvariantReport Check(Hypervisor& hyper, const std::vector<VmView>& views);

  // One destination-host commitment tuple for invariant 9. Plain data:
  // the fault layer audits what the migrator reports without depending on
  // cluster types.
  struct CommitmentEntry {
    int dst_host = -1;
    uint64_t fmem_pages = 0;
    uint64_t far_pages = 0;
  };

  // Invariant 9: appends a violation to `report` for every host where the
  // `ledger` entry disagrees with the per-destination sums recomputed from
  // `inflight`, and for every in-flight destination the ledger omits.
  static void CheckCommitmentConservation(const std::vector<CommitmentEntry>& inflight,
                                          const std::vector<CommitmentEntry>& ledger,
                                          InvariantReport* report);

  // One in-flight migration route for invariant 10 (dst_vm omitted — the
  // destination index exists only after stop-and-copy).
  struct RouteEntry {
    int src_host = -1;
    int dst_host = -1;
  };

  // Invariant 10: for every host flagged down in `down` (indexed by host),
  // appends a violation when that host still has active VMs
  // (`active_vms[host]` > 0), appears at either end of an in-flight
  // `route`, or holds nonzero commitment residue in `ledger`.
  static void CheckHostFencing(const std::vector<bool>& down,
                               const std::vector<int>& active_vms,
                               const std::vector<RouteEntry>& routes,
                               const std::vector<CommitmentEntry>& ledger,
                               InvariantReport* report);

  // Invariant 11: killed == restarted + queued + lost, where `queued` is
  // the restart queue's current depth. Violated either way the ledger
  // leaks (a kill with no recorded outcome, or an outcome with no kill).
  static void CheckRestartConservation(uint64_t killed, uint64_t restarted, uint64_t queued,
                                       uint64_t lost, InvariantReport* report);
};

}  // namespace demeter

#endif  // DEMETER_SRC_FAULT_INVARIANT_CHECKER_H_
