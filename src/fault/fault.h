// Deterministic fault injection for the simulated stack.
//
// A FaultPlan is a declarative schedule of fault behaviours — balloon
// request delay/drop, guest stall and crash windows, virtqueue-full
// backpressure, PEBS sample loss, migration failure, and transient tier
// exhaustion — parsed from the `--faults=SPEC` bench flag. The plan is pure
// data: it participates in the runner's spec content hash (when non-empty),
// so faulted and fault-free runs never collide on a seed.
//
// A FaultInjector turns the plan into deterministic decisions. Probability
// sites draw from a dedicated Rng stream per (site, vm) — streams never
// interleave, so adding a fault kind to the plan perturbs only its own
// site — and time-window sites (stall/crash) are pure functions of virtual
// time with no randomness at all. Sites with zero probability never draw,
// which keeps an armed-but-irrelevant site from consuming stream state.
//
// Everything here is observer-plus-actuator for the subsystems that opt in
// via explicit hooks (src/balloon, src/virtio, src/pebs, src/hyper/vm.cc,
// src/guest/kernel.cc). With an empty plan no injector exists at all and
// every hook is a null-pointer check — fault-free runs stay byte-identical
// to a build without this subsystem.

#ifndef DEMETER_SRC_FAULT_FAULT_H_
#define DEMETER_SRC_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/telemetry/metrics.h"

namespace demeter {

// One enumerator per injection site. Names (FaultSiteName) key the
// per-VM `vm<i>/fault/<site>_injected` counters.
enum class FaultSite : int {
  kBalloonDelay = 0,   // Guest balloon driver defers a request.
  kBalloonDrop,        // Guest balloon driver loses a request.
  kGuestStall,         // Request arrived inside a stall window.
  kGuestCrash,         // Request arrived inside a crash window.
  kVirtqueueFull,      // Ring at capacity; push refused.
  kPebsSampleLoss,     // PEBS buffer overflow; record lost.
  kMigrationFail,      // Guest-side page migration aborted.
  kTierExhaustion,     // Preferred guest node transiently dry.
  kPoisonFmem,         // Uncorrectable error in a mapped FMEM frame.
  kPoisonSmem,         // Uncorrectable error in a mapped SMEM frame.
  kSwapFail,           // Transient swap-device I/O error (writeback/swap-in).
  kLiveMigrateFail,    // Cluster live migration aborted mid-copy.
  kHostFail,           // Whole host fail-stopped for a window.
};

inline constexpr int kNumFaultSites = 13;

// Host tiers addressable by tiered fault keys (`...@tier`). Matches the
// two-tier host model (kFmemTier/kSmemTier).
inline constexpr int kMaxFaultTiers = 2;

// Hosts addressable by per-host fault keys (`...@host`). Matches the
// cluster fleet ceiling (bench/cluster_fleet sweeps up to 8 hosts).
inline constexpr int kMaxFaultHosts = 8;

const char* FaultSiteName(FaultSite site);

// Declarative fault schedule. All probabilities are per-opportunity
// Bernoulli parameters in [0, 1]; durations are virtual nanoseconds.
//
// Spec grammar (comma-separated `key=value` tokens, all optional):
//   bdelay=P/DUR   balloon request delayed by DUR with probability P
//   bdrop=P        balloon request dropped with probability P
//   stall=DUR/PER  guest stalled for DUR at the start of every PER
//   crash=DUR/PER  guest crashed for DUR at the start of every PER
//                  (in-window balloon requests are lost, not deferred)
//   vqcap=N        virtqueue capacity N (0/absent = unbounded)
//   pebsdrop=P     PEBS record lost with probability P
//   migfail=P      guest page migration fails with probability P
//   tierex=P       preferred-node allocation transiently fails with prob. P
//   poison=P@T     per-access probability P of an uncorrectable memory
//                  error (hwpoison) in the accessed frame when it lives in
//                  host tier T (0 = FMEM, 1 = SMEM); at most one tier each
//   tiershrink=F/DUR/PER@T
//                  host tier T loses fraction F of its capacity for DUR at
//                  the start of every PER (co-tenant pressure / link flap)
//   swapfail=P/DUR swap-device I/O (writeback or swap-in) fails transiently
//                  with probability P; the writeback queue retries after a
//                  DUR backoff per failed attempt
//   migratefail=P/DUR@H
//                  a cluster live migration leaving host H aborts with
//                  probability P once its cumulative pre-copy work crosses
//                  DUR (mid-copy, so the abort exercises source-side
//                  rollback); at most one token per host, H in [0, 7]
//   hostfail=P/DUR@H
//                  host H fail-stops with probability P, drawn once per
//                  cluster barrier, and stays dark for DUR (the fleet's
//                  failure detector fences it and kills resident VMs); at
//                  most one token per host, H in [0, 7]
// Durations accept ns/us/ms/s suffixes (plain digits = ns). Windows start
// one period in (never at t=0, which would fault the boot-time provisioning
// of every run identically and uninterestingly). Duplicate keys are an
// error — tiered keys may appear once per tier.
struct TierShrink {
  double frac = 0.0;  // Fraction of tier capacity carved out, in (0, 1].
  Nanos duration_ns = 0;
  Nanos period_ns = 0;

  friend bool operator==(const TierShrink&, const TierShrink&) = default;
};

struct FaultPlan {
  double balloon_delay_p = 0.0;
  Nanos balloon_delay_ns = 0;
  double balloon_drop_p = 0.0;
  Nanos stall_duration_ns = 0;
  Nanos stall_period_ns = 0;
  Nanos crash_duration_ns = 0;
  Nanos crash_period_ns = 0;
  uint64_t vq_capacity = 0;  // 0 = unbounded.
  double pebs_drop_p = 0.0;
  double migration_fail_p = 0.0;
  double tier_exhaust_p = 0.0;
  std::array<double, kMaxFaultTiers> poison_p{};          // Indexed by tier.
  std::array<TierShrink, kMaxFaultTiers> tier_shrink{};   // Indexed by tier.
  double swap_fail_p = 0.0;
  Nanos swap_retry_backoff_ns = 0;
  std::array<double, kMaxFaultHosts> migrate_fail_p{};       // Indexed by host.
  std::array<Nanos, kMaxFaultHosts> migrate_fail_abort_ns{};  // Indexed by host.
  std::array<double, kMaxFaultHosts> host_fail_p{};          // Indexed by host.
  std::array<Nanos, kMaxFaultHosts> host_fail_down_ns{};     // Indexed by host.

  // True when the plan injects nothing at all (the default).
  bool empty() const;

  // Canonical spec string: fixed token order, no default-valued tokens,
  // durations in plain nanoseconds. Parse(ToSpec()) reproduces the plan
  // exactly, and equal plans always canonicalize identically — the form
  // folded into the spec content hash.
  std::string ToSpec() const;

  // Parses a spec string. Returns nullopt (and sets *error when given) on
  // bad syntax or out-of-range values. An empty string is a valid empty
  // plan.
  static std::optional<FaultPlan> Parse(const std::string& spec, std::string* error = nullptr);

  // Bernoulli parameter governing a probability site (0 for window sites
  // and kVirtqueueFull, which are not probability-driven).
  double probability(FaultSite site) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

// Deterministic decision engine for one Machine. Owned by the harness and
// shared by every VM through Hypervisor::fault_injector(); created only
// when the plan is non-empty, so subsystem hooks gate on a null check.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t seed);

  const FaultPlan& plan() const { return plan_; }
  bool active() const { return !plan_.empty(); }

  // Bernoulli draw for `site` on `vm`'s private stream; counts an injection
  // when it fires. Zero-probability sites return false without drawing.
  bool ShouldInject(FaultSite site, int vm);

  // True when `site` can ever fire (plan probability > 0). Hot paths may
  // cache this and skip the per-opportunity ShouldInject call for unarmed
  // sites — observationally identical, because zero-probability sites never
  // draw (stream state is untouched either way).
  bool Arms(FaultSite site) const { return plan_.probability(site) > 0.0; }

  // Records a non-Bernoulli injection (window hits, ring backpressure).
  void Count(FaultSite site, int vm);

  // Bernoulli draw for the live-migration-abort site on `host`'s private
  // stream (the cluster owns one injector and keys this site by source
  // host, not VM); counts an injection when it fires. Hosts with a
  // zero-probability plan return false without drawing.
  bool ShouldFailMigration(int host);

  // Cumulative pre-copy work after which an armed abort fires for
  // migrations leaving `host`.
  Nanos MigrationAbortAfter(int host) const;

  // Bernoulli draw for the whole-host fail-stop site on `host`'s private
  // stream (the cluster draws once per barrier per up host); counts an
  // injection when it fires. Hosts with a zero-probability plan return
  // false without drawing.
  bool ShouldFailHost(int host);

  // How long `host` stays dark once a fail-stop fires.
  Nanos HostFailDuration(int host) const;

  // Stall/crash windows: window k covers [k*period, k*period + duration)
  // for k >= 1. Pure functions of virtual time.
  bool InStallWindow(Nanos now) const;
  Nanos StallWindowEnd(Nanos now) const;  // Meaningful only when in-window.
  bool InCrashWindow(Nanos now) const;
  Nanos CrashWindowEnd(Nanos now) const;

  // Tier-shrink windows, same k>=1 schedule per configured tier.
  bool InShrinkWindow(int tier, Nanos now) const;
  Nanos ShrinkWindowEnd(int tier, Nanos now) const;
  // Start of the first shrink window strictly after `now` for `tier`, or 0
  // when the tier has no shrink schedule (the harness arms window events
  // from this).
  Nanos NextShrinkWindowStart(int tier, Nanos now) const;

  uint64_t injected(FaultSite site, int vm) const;
  uint64_t total_injected(FaultSite site) const;

  // Registers `vm`'s per-site injection counters under `scope` (the
  // harness passes "vm<i>/fault") as "<site>_injected".
  void RegisterVmMetrics(MetricScope scope, int vm);

 private:
  struct VmState {
    std::array<Rng, kNumFaultSites> rngs;
    std::array<uint64_t, kNumFaultSites> injected{};
  };

  VmState& state(int vm);

  FaultPlan plan_;
  uint64_t seed_;
  // unique_ptr elements keep counter addresses stable across growth (the
  // metric registry holds raw pointers into VmState::injected).
  std::vector<std::unique_ptr<VmState>> vms_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_FAULT_FAULT_H_
