#include "src/mmu/page_table.h"

#include "src/base/logging.h"

namespace demeter {

PageTable::PageTable() : root_(std::make_unique<Node>()) {}
PageTable::~PageTable() = default;

PageTable::Node* PageTable::FindLeaf(PageNum vpn) const {
  const PageNum tag = vpn >> kBitsPerLevel;
  LeafCacheSlot& slot = leaf_cache_[static_cast<size_t>(tag) & (kLeafCacheSlots - 1)];
  if (slot.tag == tag && slot.epoch == structure_epoch_) {
    return slot.leaf;
  }
  Node* node = root_.get();
  for (int level = 0; level < kLevels - 1; ++level) {
    Node* child = node->children[static_cast<size_t>(IndexAt(vpn, level))].get();
    if (child == nullptr) {
      return nullptr;  // Absent subtrees are not cached (Map may create them).
    }
    node = child;
  }
  slot.tag = tag;
  slot.leaf = node;
  slot.epoch = structure_epoch_;
  return node;
}

uint64_t* PageTable::FindEntry(PageNum vpn) const {
  Node* leaf = FindLeaf(vpn);
  if (leaf == nullptr) {
    return nullptr;
  }
  return &leaf->entries[static_cast<size_t>(IndexAt(vpn, kLevels - 1))];
}

uint64_t* PageTable::FindOrCreateEntry(PageNum vpn) {
  Node* node = root_.get();
  bool created = false;
  for (int level = 0; level < kLevels - 1; ++level) {
    auto& slot = node->children[static_cast<size_t>(IndexAt(vpn, level))];
    if (slot == nullptr) {
      slot = std::make_unique<Node>();
      created = true;
    }
    node = slot.get();
  }
  if (created) {
    // Structure changed: conservatively invalidate the whole walk cache by
    // bumping the epoch (node creation is rare — once per 512 mapped pages
    // in the worst case — next to the walks the cache serves).
    ++structure_epoch_;
  }
  return &node->entries[static_cast<size_t>(IndexAt(vpn, kLevels - 1))];
}

bool PageTable::Map(PageNum vpn, uint64_t target, bool writable) {
  DEMETER_CHECK_LT(vpn, kMaxPage);
  uint64_t* pte = FindOrCreateEntry(vpn);
  if ((*pte & PteFlags::kPresent) != 0) {
    return false;
  }
  *pte = (target << PteFlags::kTargetShift) | PteFlags::kPresent |
         (writable ? PteFlags::kWritable : 0);
  ++mapped_count_;
  return true;
}

uint64_t PageTable::Unmap(PageNum vpn) {
  uint64_t* pte = FindEntry(vpn);
  if (pte == nullptr || (*pte & PteFlags::kPresent) == 0) {
    return ~0ULL;
  }
  const uint64_t target = *pte >> PteFlags::kTargetShift;
  *pte = 0;
  --mapped_count_;
  return target;
}

bool PageTable::Remap(PageNum vpn, uint64_t new_target) {
  uint64_t* pte = FindEntry(vpn);
  if (pte == nullptr || (*pte & PteFlags::kPresent) == 0) {
    return false;
  }
  // Migration-entry semantics: only the target changes; Writable, Accessed
  // and Dirty travel with the page (clearing D here silently lost the "page
  // was written since last writeback/track" fact across every migration).
  const uint64_t flags =
      *pte & (PteFlags::kWritable | PteFlags::kAccessed | PteFlags::kDirty);
  const bool was_dirty = (*pte & PteFlags::kDirty) != 0;
  *pte = (new_target << PteFlags::kTargetShift) | PteFlags::kPresent | flags;
  ++remap_count_;
  if (was_dirty && (*pte & PteFlags::kDirty) == 0) {
    ++remap_dirty_lost_;  // Structurally unreachable; audited by --check.
  }
  return true;
}

PageTable::WalkResult PageTable::TranslateCold(PageNum vpn, bool is_write, bool set_bits) {
  WalkResult result;
  // Memoized walk: a warm leaf-cache slot replaces the radix descent (the
  // warm case is fully inlined in the header; this cold tail still probes
  // via FindLeaf, which installs the slot on a successful descent). Cost
  // accounting is unchanged — a cached leaf exists, so the descent it
  // replaces would have touched exactly kLevels entries; partial (faulting)
  // walks never come from the cache and still report their true depth.
  Node* node = FindLeaf(vpn);
  if (node == nullptr) {
    // Absent subtree: count the levels actually touched, as before.
    Node* cursor = root_.get();
    for (int level = 0; level < kLevels - 1; ++level) {
      ++result.levels_touched;
      Node* child = cursor->children[static_cast<size_t>(IndexAt(vpn, level))].get();
      if (child == nullptr) {
        return result;
      }
      cursor = child;
    }
    DEMETER_CHECK(false) << "FindLeaf returned null for a complete subtree";
  }
  result.levels_touched = kLevels;
  uint64_t& pte = node->entries[static_cast<size_t>(IndexAt(vpn, kLevels - 1))];
  if ((pte & PteFlags::kPresent) == 0) {
    return result;
  }
  result.present = true;
  result.target = pte >> PteFlags::kTargetShift;
  result.was_accessed = (pte & PteFlags::kAccessed) != 0;
  result.was_dirty = (pte & PteFlags::kDirty) != 0;
  if (set_bits) {
    pte |= PteFlags::kAccessed;
    if (is_write) {
      pte |= PteFlags::kDirty;
    }
  }
  return result;
}

PageTable::WalkResult PageTable::Lookup(PageNum vpn) const {
  WalkResult result;
  const uint64_t* pte = FindEntry(vpn);
  if (pte == nullptr || (*pte & PteFlags::kPresent) == 0) {
    return result;
  }
  result.present = true;
  result.target = *pte >> PteFlags::kTargetShift;
  result.was_accessed = (*pte & PteFlags::kAccessed) != 0;
  result.was_dirty = (*pte & PteFlags::kDirty) != 0;
  result.levels_touched = kLevels;
  return result;
}

bool PageTable::TestAndClearAccessed(PageNum vpn) {
  uint64_t* pte = FindEntry(vpn);
  if (pte == nullptr || (*pte & PteFlags::kPresent) == 0) {
    return false;
  }
  const bool was = (*pte & PteFlags::kAccessed) != 0;
  *pte &= ~PteFlags::kAccessed;
  return was;
}

bool PageTable::TestAndClearDirty(PageNum vpn) {
  uint64_t* pte = FindEntry(vpn);
  if (pte == nullptr || (*pte & PteFlags::kPresent) == 0) {
    return false;
  }
  const bool was = (*pte & PteFlags::kDirty) != 0;
  *pte &= ~PteFlags::kDirty;
  return was;
}

template <typename Fn>
uint64_t PageTable::VisitRange(Node* node, int level, PageNum node_base, PageNum begin,
                               PageNum end, const Fn& fn) const {
  // Page span covered by one slot at this level.
  const int shift = kBitsPerLevel * (kLevels - 1 - level);
  const PageNum span = 1ULL << shift;
  uint64_t touched = 0;
  for (int i = 0; i < kFanout; ++i) {
    const PageNum slot_begin = node_base + static_cast<PageNum>(i) * span;
    const PageNum slot_end = slot_begin + span;
    if (slot_end <= begin || slot_begin >= end) {
      continue;
    }
    if (level == kLevels - 1) {
      uint64_t& pte = node->entries[static_cast<size_t>(i)];
      ++touched;
      if ((pte & PteFlags::kPresent) != 0) {
        fn(slot_begin, pte);
      }
    } else {
      Node* child = node->children[static_cast<size_t>(i)].get();
      if (child != nullptr) {
        ++touched;
        touched += VisitRange(child, level + 1, slot_begin, begin, end, fn);
      }
    }
  }
  return touched;
}

uint64_t PageTable::ForEachPresent(PageNum begin, PageNum end, const Visitor& visitor) const {
  return VisitRange(root_.get(), 0, 0, begin, end, [&](PageNum vpn, uint64_t& pte) {
    visitor(vpn, pte >> PteFlags::kTargetShift, (pte & PteFlags::kAccessed) != 0,
            (pte & PteFlags::kDirty) != 0);
  });
}

uint64_t PageTable::ScanAndClearAccessed(PageNum begin, PageNum end, const Visitor& visitor) {
  return VisitRange(root_.get(), 0, 0, begin, end, [&](PageNum vpn, uint64_t& pte) {
    const bool accessed = (pte & PteFlags::kAccessed) != 0;
    const bool dirty = (pte & PteFlags::kDirty) != 0;
    pte &= ~PteFlags::kAccessed;
    visitor(vpn, pte >> PteFlags::kTargetShift, accessed, dirty);
  });
}

}  // namespace demeter
