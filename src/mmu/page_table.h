// Four-level radix page table with Access/Dirty bits.
//
// One implementation serves both dimensions of 2D paging:
//   * GPT: guest virtual page -> guest physical page (guest-managed)
//   * EPT: guest physical page -> host frame (hypervisor-managed)
//
// The structure is a real 512-ary radix tree (9 bits per level, 4 levels,
// 36-bit page numbers = 48-bit address spaces) so that page-table scans cost
// what they cost on hardware: visitors report the number of entries touched,
// which access-tracking baselines charge as CPU time.

#ifndef DEMETER_SRC_MMU_PAGE_TABLE_H_
#define DEMETER_SRC_MMU_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/base/units.h"

namespace demeter {

// Leaf PTE layout: target page number shifted left 8, low bits are flags.
struct PteFlags {
  static constexpr uint64_t kPresent = 1ULL << 0;
  static constexpr uint64_t kWritable = 1ULL << 1;
  static constexpr uint64_t kAccessed = 1ULL << 2;
  static constexpr uint64_t kDirty = 1ULL << 3;
  static constexpr int kTargetShift = 8;
};

class PageTable {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kBitsPerLevel = 9;
  static constexpr int kFanout = 1 << kBitsPerLevel;  // 512
  static constexpr PageNum kMaxPage = 1ULL << (kLevels * kBitsPerLevel);

  struct WalkResult {
    bool present = false;
    uint64_t target = 0;    // Target page number when present.
    int levels_touched = 0; // Radix levels visited (<= kLevels).
    bool was_accessed = false;
    bool was_dirty = false;
  };

  PageTable();
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;
  PageTable(PageTable&&) = default;
  PageTable& operator=(PageTable&&) = default;

  // Installs vpn -> target. Returns false if vpn was already mapped.
  bool Map(PageNum vpn, uint64_t target, bool writable);

  // Removes the mapping. Returns the old target, or ~0 if not mapped.
  uint64_t Unmap(PageNum vpn);

  // Re-points an existing mapping at a new target, preserving the
  // Writable/Accessed/Dirty flags (Linux migration-entry semantics: a page
  // that is dirty or young at migration time stays dirty/young at its new
  // location). Returns false if vpn was not mapped.
  bool Remap(PageNum vpn, uint64_t new_target);

  // Hardware-walk emulation: descends the tree; when `set_bits` is true and
  // the leaf is present, sets Accessed (and Dirty on writes). The warm
  // leaf-cache case is inlined here — it runs on every translation the TLB
  // does not absorb, plus twice per TLB-hit write (the dirty micro-walk) —
  // and the cold descent stays out of line.
  WalkResult Translate(PageNum vpn, bool is_write, bool set_bits) {
    const PageNum tag = vpn >> kBitsPerLevel;
    const LeafCacheSlot& slot = leaf_cache_[static_cast<size_t>(tag) & (kLeafCacheSlots - 1)];
    if (slot.tag == tag && slot.epoch == structure_epoch_) {
      WalkResult result;
      result.levels_touched = kLevels;
      uint64_t& pte = slot.leaf->entries[static_cast<size_t>(IndexAt(vpn, kLevels - 1))];
      if ((pte & PteFlags::kPresent) == 0) {
        return result;
      }
      result.present = true;
      result.target = pte >> PteFlags::kTargetShift;
      result.was_accessed = (pte & PteFlags::kAccessed) != 0;
      result.was_dirty = (pte & PteFlags::kDirty) != 0;
      if (set_bits) {
        pte |= PteFlags::kAccessed;
        if (is_write) {
          pte |= PteFlags::kDirty;
        }
      }
      return result;
    }
    return TranslateCold(vpn, is_write, set_bits);
  }

  // Point query without side effects.
  WalkResult Lookup(PageNum vpn) const;

  bool IsMapped(PageNum vpn) const { return Lookup(vpn).present; }

  // Clears the Accessed bit; returns its prior value. No-op on unmapped.
  bool TestAndClearAccessed(PageNum vpn);
  bool TestAndClearDirty(PageNum vpn);

  // Visits every present PTE in [begin, end). The visitor receives the vpn,
  // the target, and accessed/dirty state. Returns the number of PTEs
  // *touched* — i.e. present entries plus the per-node scan work — which
  // callers use for cost accounting.
  using Visitor = std::function<void(PageNum vpn, uint64_t target, bool accessed, bool dirty)>;
  uint64_t ForEachPresent(PageNum begin, PageNum end, const Visitor& visitor) const;

  // Scan-and-clear of Accessed bits over [begin, end): the visitor sees each
  // present PTE with its pre-clear accessed state; all A bits in range end up
  // cleared. Returns entries touched (cost).
  uint64_t ScanAndClearAccessed(PageNum begin, PageNum end, const Visitor& visitor);

  uint64_t mapped_count() const { return mapped_count_; }

  // ---- Audit hooks (InvariantChecker) -------------------------------------
  // Remaps performed, and remaps that dropped a set Dirty bit. The second
  // counter is the cross-layer invariant "migration never loses dirty
  // state": Remap preserves A/D by construction, and the checker asserts
  // this stays zero so any future Remap edit that regresses it is caught by
  // every `--check` run, not just the unit test.
  uint64_t remap_count() const { return remap_count_; }
  uint64_t remap_dirty_lost() const { return remap_dirty_lost_; }

 private:
  struct Node {
    std::array<uint64_t, kFanout> entries{};
    std::array<std::unique_ptr<Node>, kFanout> children{};
  };

  static int IndexAt(PageNum vpn, int level) {
    return static_cast<int>((vpn >> (kBitsPerLevel * (kLevels - 1 - level))) & (kFanout - 1));
  }

  // Memoized descent: maps vpn's leaf-node tag (vpn >> kBitsPerLevel) to the
  // leaf Node* so hot regions skip the 3-level pointer chase. Entries are
  // validated against structure_epoch_, which bumps whenever the radix tree
  // allocates a node (the only structural change today — nodes are never
  // freed, so cached pointers cannot dangle; the epoch additionally protects
  // any future reclamation path). Only successful full descents are cached,
  // so cost accounting (levels_touched) is byte-identical: a cached leaf
  // means the uncached walk would have touched exactly kLevels entries.
  struct LeafCacheSlot {
    PageNum tag = ~0ULL;
    Node* leaf = nullptr;
    uint64_t epoch = 0;
  };
  static constexpr size_t kLeafCacheSlots = 1024;  // Power of two.
  static_assert((kLeafCacheSlots & (kLeafCacheSlots - 1)) == 0);

  // Leaf node containing vpn's PTE, or nullptr if the subtree is absent.
  // Serves from the leaf cache when warm; installs on a successful descent.
  Node* FindLeaf(PageNum vpn) const;

  // Out-of-line tail of Translate(): cold leaf cache — full descent (which
  // installs the cache slot) or a partial walk over an absent subtree.
  WalkResult TranslateCold(PageNum vpn, bool is_write, bool set_bits);

  uint64_t* FindEntry(PageNum vpn) const;
  uint64_t* FindOrCreateEntry(PageNum vpn);

  template <typename Fn>
  uint64_t VisitRange(Node* node, int level, PageNum node_base, PageNum begin, PageNum end,
                      const Fn& fn) const;

  std::unique_ptr<Node> root_;
  uint64_t mapped_count_ = 0;
  uint64_t structure_epoch_ = 1;
  mutable std::array<LeafCacheSlot, kLeafCacheSlots> leaf_cache_{};
  uint64_t remap_count_ = 0;
  uint64_t remap_dirty_lost_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_MMU_PAGE_TABLE_H_
