#include "src/mmu/tlb.h"

#include "src/base/logging.h"

namespace demeter {

Tlb::Tlb(int num_sets, int ways) : num_sets_(num_sets), ways_(ways) {
  DEMETER_CHECK_GT(num_sets, 0);
  DEMETER_CHECK_GT(ways, 0);
  const size_t cap = static_cast<size_t>(num_sets) * static_cast<size_t>(ways);
  vpns_.resize(cap, ~0ULL);
  epochs_.resize(cap, 0);  // Sentinel: everything starts stale.
  frames_.resize(cap, kInvalidFrame);
  lru_.resize(cap, 0);
}

void Tlb::InvalidateAll() {
  ++stats_.full_flushes;
  // Epoch bump: every existing entry becomes stale without being touched.
  // A 64-bit counter cannot plausibly wrap within a simulation.
  ++epoch_;
  // Paging-structure caches are gone too; the next ~capacity misses walk
  // cold. A second invalidation before the rewarm completes cannot make the
  // caches any colder — it only restarts the rewarm window — so the budget
  // RESETS to one capacity instead of stacking (back-to-back chunked
  // MMU-notifier scans used to accumulate up to 4x, overcharging refills).
  cold_walks_ = static_cast<uint64_t>(capacity());
}

}  // namespace demeter
