#include "src/mmu/tlb.h"

#include "src/base/logging.h"
#include "src/base/rng.h"

namespace demeter {

Tlb::Tlb(int num_sets, int ways) : num_sets_(num_sets), ways_(ways) {
  DEMETER_CHECK_GT(num_sets, 0);
  DEMETER_CHECK_GT(ways, 0);
  entries_.resize(static_cast<size_t>(num_sets) * static_cast<size_t>(ways));
}

size_t Tlb::SetOf(PageNum vpn) const {
  // Multiplicative hash spreads contiguous pages across sets.
  uint64_t h = vpn * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>((h >> 32) % static_cast<uint64_t>(num_sets_)) *
         static_cast<size_t>(ways_);
}

FrameId Tlb::Lookup(PageNum vpn) {
  const size_t base = SetOf(vpn);
  for (int w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + static_cast<size_t>(w)];
    if (IsLive(e) && e.vpn == vpn) {
      e.lru_tick = ++tick_;
      ++stats_.hits;
      return e.frame;
    }
  }
  ++stats_.misses;
  return kInvalidFrame;
}

void Tlb::Insert(PageNum vpn, FrameId frame) {
  const size_t base = SetOf(vpn);
  Entry* victim = nullptr;
  for (int w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + static_cast<size_t>(w)];
    if (IsLive(e) && e.vpn == vpn) {
      e.frame = frame;
      e.lru_tick = ++tick_;
      return;
    }
    if (!IsLive(e)) {
      victim = &e;
    } else if (victim == nullptr || (IsLive(*victim) && e.lru_tick < victim->lru_tick)) {
      victim = &e;
    }
  }
  victim->vpn = vpn;
  victim->frame = frame;
  victim->lru_tick = ++tick_;
  victim->epoch = epoch_;
  victim->valid = true;
}

void Tlb::InvalidatePage(PageNum vpn) {
  ++stats_.single_flushes;
  const size_t base = SetOf(vpn);
  for (int w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + static_cast<size_t>(w)];
    if (IsLive(e) && e.vpn == vpn) {
      e.valid = false;
      return;
    }
  }
}

void Tlb::InvalidateAll() {
  ++stats_.full_flushes;
  // Epoch bump: every existing entry becomes stale without being touched.
  // A 64-bit counter cannot plausibly wrap within a simulation.
  ++epoch_;
  // Paging-structure caches are gone too; the next ~capacity misses walk
  // cold. A second invalidation before the rewarm completes cannot make the
  // caches any colder — it only restarts the rewarm window — so the budget
  // RESETS to one capacity instead of stacking (back-to-back chunked
  // MMU-notifier scans used to accumulate up to 4x, overcharging refills).
  cold_walks_ = static_cast<uint64_t>(capacity());
}

double Tlb::ConsumeWalkFactor() {
  if (cold_walks_ == 0) {
    return 1.0;
  }
  --cold_walks_;
  return kColdWalkFactor;
}

}  // namespace demeter
