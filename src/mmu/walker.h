// Two-dimensional (GPT x EPT) address translation with cost accounting.
//
// In the worst case a 2D walk touches L_g*(L_e+1) + L_e page-table entries
// (24 for 4-level tables); walk caches make the average much cheaper, which
// the per-touch cost constant reflects. A TLB hit bypasses everything.

#ifndef DEMETER_SRC_MMU_WALKER_H_
#define DEMETER_SRC_MMU_WALKER_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/mem/host_memory.h"
#include "src/mmu/page_table.h"
#include "src/mmu/tlb.h"

namespace demeter {

struct MmuCosts {
  double tlb_hit_ns = 1.0;
  double pt_touch_ns = 7.0;        // Per PTE touch during a walk (walk caches help).
  double single_flush_ns = 150.0;  // invlpg/invvpid instruction.
  double full_flush_ns = 800.0;    // invept instruction (refills charged separately).
  double guest_fault_ns = 2500.0;  // Guest minor-fault handling.
  double ept_fault_ns = 9000.0;    // VM exit + hypervisor fault handling + resume.
  double pte_scan_ns = 12.0;       // Software A-bit scan, per PTE visited.
  double context_switch_ns = 1800.0;
  double migrate_sw_ns = 1500.0;   // Per-page software overhead of a migration
                                   // (unmap, rmap update, remap bookkeeping).
};

enum class TranslateStatus {
  kOk = 0,
  kGuestFault,  // gVA unmapped in GPT: guest page-fault needed.
  kEptFault,    // gPA unmapped in EPT: hypervisor must populate.
};

struct TranslationResult {
  TranslateStatus status = TranslateStatus::kOk;
  PageNum gpa_page = 0;
  FrameId frame = kInvalidFrame;
  bool tlb_hit = false;
  double cost_ns = 0.0;  // MMU cost only; memory-tier latency charged by caller.
};

// Performs one translation of gVA page `vpn`, setting A/D bits in both
// dimensions on success and installing the flattened entry in the TLB.
TranslationResult Translate2D(Tlb& tlb, PageTable& gpt, PageTable& ept, PageNum vpn,
                              bool is_write, const MmuCosts& costs);

}  // namespace demeter

#endif  // DEMETER_SRC_MMU_WALKER_H_
