// Two-dimensional (GPT x EPT) address translation with cost accounting.
//
// In the worst case a 2D walk touches L_g*(L_e+1) + L_e page-table entries
// (24 for 4-level tables); walk caches make the average much cheaper, which
// the per-touch cost constant reflects. A TLB hit bypasses everything.

#ifndef DEMETER_SRC_MMU_WALKER_H_
#define DEMETER_SRC_MMU_WALKER_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/mem/host_memory.h"
#include "src/mmu/page_table.h"
#include "src/mmu/tlb.h"

namespace demeter {

struct MmuCosts {
  double tlb_hit_ns = 1.0;
  double pt_touch_ns = 7.0;        // Per PTE touch during a walk (walk caches help).
  double single_flush_ns = 150.0;  // invlpg/invvpid instruction.
  double full_flush_ns = 800.0;    // invept instruction (refills charged separately).
  double guest_fault_ns = 2500.0;  // Guest minor-fault handling.
  double ept_fault_ns = 9000.0;    // VM exit + hypervisor fault handling + resume.
  double pte_scan_ns = 12.0;       // Software A-bit scan, per PTE visited.
  double context_switch_ns = 1800.0;
  double migrate_sw_ns = 1500.0;   // Per-page software overhead of a migration
                                   // (unmap, rmap update, remap bookkeeping).
};

enum class TranslateStatus {
  kOk = 0,
  kGuestFault,  // gVA unmapped in GPT: guest page-fault needed.
  kEptFault,    // gPA unmapped in EPT: hypervisor must populate.
};

struct TranslationResult {
  TranslateStatus status = TranslateStatus::kOk;
  PageNum gpa_page = 0;
  FrameId frame = kInvalidFrame;
  bool tlb_hit = false;
  double cost_ns = 0.0;  // MMU cost only; memory-tier latency charged by caller.
};

// Performs one translation of gVA page `vpn`, setting A/D bits in both
// dimensions on success and installing the flattened entry in the TLB.
// Defined inline: this sits directly on the per-access hot path and the
// call (plus the TLB probe it wraps) inlines into ExecuteAccessImpl.
inline TranslationResult Translate2D(Tlb& tlb, PageTable& gpt, PageTable& ept, PageNum vpn,
                                     bool is_write, const MmuCosts& costs) {
  TranslationResult result;

  const FrameId cached = tlb.Lookup(vpn);
  if (cached != kInvalidFrame) {
    result.tlb_hit = true;
    result.frame = cached;
    result.cost_ns = costs.tlb_hit_ns;
    // A/D bits: hardware sets them on the TLB-fill walk; a hit does not
    // re-set them. On writes the D bit must be set, which hardware does by
    // re-walking when the cached entry lacks the dirty permission; we fold
    // that microcode walk into leaf updates in BOTH dimensions without
    // charging a full walk. The EPT leaf is reached via the gPA recorded in
    // the GPT leaf — dropping it here left hypervisor-side dirty tracking
    // blind to every write that hit the TLB.
    if (is_write) {
      const PageTable::WalkResult gpt_leaf =
          gpt.Translate(vpn, /*is_write=*/true, /*set_bits=*/true);
      if (gpt_leaf.present) {
        ept.Translate(gpt_leaf.target, /*is_write=*/true, /*set_bits=*/true);
      }
    }
    return result;
  }

  // After a full invalidation the paging-structure caches are cold and the
  // refill walks cost more (the destructive invept effect of §2.3.1).
  const double walk_factor = tlb.ConsumeWalkFactor();

  // GPT walk: each of the L_g guest levels requires translating the guest
  // page-table page through the EPT (L_e touches each) plus the touch itself.
  PageTable::WalkResult gpt_walk = gpt.Translate(vpn, is_write, /*set_bits=*/true);
  const int ept_levels = PageTable::kLevels;
  double touches =
      static_cast<double>(gpt_walk.levels_touched) * static_cast<double>(ept_levels + 1);

  if (!gpt_walk.present) {
    result.status = TranslateStatus::kGuestFault;
    result.cost_ns = touches * costs.pt_touch_ns * walk_factor;
    return result;
  }
  result.gpa_page = gpt_walk.target;

  // Final EPT walk for the data page itself.
  PageTable::WalkResult ept_walk = ept.Translate(gpt_walk.target, is_write, /*set_bits=*/true);
  touches += static_cast<double>(ept_walk.levels_touched);
  result.cost_ns = touches * costs.pt_touch_ns * walk_factor;

  if (!ept_walk.present) {
    result.status = TranslateStatus::kEptFault;
    return result;
  }

  result.frame = static_cast<FrameId>(ept_walk.target);
  tlb.Insert(vpn, result.frame);
  return result;
}

}  // namespace demeter

#endif  // DEMETER_SRC_MMU_WALKER_H_
