#include "src/mmu/walker.h"

namespace demeter {

TranslationResult Translate2D(Tlb& tlb, PageTable& gpt, PageTable& ept, PageNum vpn,
                              bool is_write, const MmuCosts& costs) {
  TranslationResult result;

  const FrameId cached = tlb.Lookup(vpn);
  if (cached != kInvalidFrame) {
    result.tlb_hit = true;
    result.frame = cached;
    result.cost_ns = costs.tlb_hit_ns;
    // A/D bits: hardware sets them on the TLB-fill walk; a hit does not
    // re-set them. On writes the D bit must be set, which hardware does by
    // re-walking when the cached entry lacks the dirty permission; we fold
    // that microcode walk into leaf updates in BOTH dimensions without
    // charging a full walk. The EPT leaf is reached via the gPA recorded in
    // the GPT leaf — dropping it here left hypervisor-side dirty tracking
    // blind to every write that hit the TLB.
    if (is_write) {
      const PageTable::WalkResult gpt_leaf =
          gpt.Translate(vpn, /*is_write=*/true, /*set_bits=*/true);
      if (gpt_leaf.present) {
        ept.Translate(gpt_leaf.target, /*is_write=*/true, /*set_bits=*/true);
      }
    }
    return result;
  }

  // After a full invalidation the paging-structure caches are cold and the
  // refill walks cost more (the destructive invept effect of §2.3.1).
  const double walk_factor = tlb.ConsumeWalkFactor();

  // GPT walk: each of the L_g guest levels requires translating the guest
  // page-table page through the EPT (L_e touches each) plus the touch itself.
  PageTable::WalkResult gpt_walk = gpt.Translate(vpn, is_write, /*set_bits=*/true);
  const int ept_levels = PageTable::kLevels;
  double touches =
      static_cast<double>(gpt_walk.levels_touched) * static_cast<double>(ept_levels + 1);

  if (!gpt_walk.present) {
    result.status = TranslateStatus::kGuestFault;
    result.cost_ns = touches * costs.pt_touch_ns * walk_factor;
    return result;
  }
  result.gpa_page = gpt_walk.target;

  // Final EPT walk for the data page itself.
  PageTable::WalkResult ept_walk = ept.Translate(gpt_walk.target, is_write, /*set_bits=*/true);
  touches += static_cast<double>(ept_walk.levels_touched);
  result.cost_ns = touches * costs.pt_touch_ns * walk_factor;

  if (!ept_walk.present) {
    result.status = TranslateStatus::kEptFault;
    return result;
  }

  result.frame = static_cast<FrameId>(ept_walk.target);
  tlb.Insert(vpn, result.frame);
  return result;
}

}  // namespace demeter
