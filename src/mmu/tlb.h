// Set-associative TLB caching flattened 2D translations (gVA -> hPA).
//
// Two invalidation instructions are modelled, matching the paper's taxonomy:
//   * single-address (invlpg / invvpid / invpcid): evicts one gVA
//   * full EPT invalidation (invept): evicts everything derived from an EPT
//
// Hypervisor-based access tracking (which sees only gPA/hPA) must use the
// full invalidation to re-arm PTE.A/D observation; guest-based tracking can
// use single-address invalidations because it knows the gVA. Table 1 counts
// exactly these two instruction kinds.

#ifndef DEMETER_SRC_MMU_TLB_H_
#define DEMETER_SRC_MMU_TLB_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/mem/host_memory.h"

namespace demeter {

struct TlbStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t single_flushes = 0;  // invlpg/invvpid/invpcid instructions.
  uint64_t full_flushes = 0;    // invept instructions.

  void Merge(const TlbStats& other) {
    hits += other.hits;
    misses += other.misses;
    single_flushes += other.single_flushes;
    full_flushes += other.full_flushes;
  }
};

class Tlb {
 public:
  // Default geometry models an STLB whose reach is amplified by transparent
  // hugepages (the guests run THP: one 2 MiB entry per 512 base pages), so
  // steady-state coverage approximates the working set — which is what makes
  // full invalidations so destructive and tier latency, not translation,
  // the dominant access cost.
  explicit Tlb(int num_sets = 1024, int ways = 8);

  // Looks up gVA page `vpn`; returns the cached hPA frame or kInvalidFrame.
  FrameId Lookup(PageNum vpn);

  // Installs vpn -> frame after a successful walk.
  void Insert(PageNum vpn, FrameId frame);

  // Single-address invalidation (guest knows the gVA).
  void InvalidatePage(PageNum vpn);

  // Full invalidation of all entries (invept; also used for CR3-class full
  // flushes). The paper's full-invalidation counter counts these. Besides
  // dropping every translation, a full invalidation also destroys the
  // paging-structure caches, so the refill walks that follow are slower:
  // ConsumeWalkFactor() returns the cost multiplier for the next miss.
  //
  // O(1): instead of sweeping sets*ways entries, the TLB carries a
  // generation counter (epoch); every entry is tagged with the epoch it was
  // inserted under, and entries from older epochs are treated exactly like
  // invalid ones everywhere (lookup, victim selection, audits). Policies
  // that full-flush per scan round (hypervisor-side designs flush every
  // epoch) used to pay an 8K-entry sweep per flush.
  void InvalidateAll();

  // Walk-cost multiplier for a miss happening now; decays as the
  // paging-structure caches rewarm (call once per miss).
  double ConsumeWalkFactor();

  // Read-only walk over every valid entry, for audits: fn(vpn, frame).
  template <typename Fn>
  void ForEachValid(Fn&& fn) const {
    for (const Entry& entry : entries_) {
      if (entry.valid && entry.epoch == epoch_) {
        fn(entry.vpn, entry.frame);
      }
    }
  }

  const TlbStats& stats() const { return stats_; }
  void ClearStats() { stats_ = TlbStats{}; }

  int capacity() const { return num_sets_ * ways_; }

 private:
  struct Entry {
    PageNum vpn = ~0ULL;
    FrameId frame = kInvalidFrame;
    uint64_t lru_tick = 0;
    uint64_t epoch = 0;  // Insertion epoch; stale (< epoch_) means invalid.
    bool valid = false;
  };

  // An entry participates in lookups and LRU only when it is valid AND was
  // inserted under the current epoch; anything older was dropped by a full
  // invalidation that never touched the entry itself.
  bool IsLive(const Entry& e) const { return e.valid && e.epoch == epoch_; }

  size_t SetOf(PageNum vpn) const;

  int num_sets_;
  int ways_;
  std::vector<Entry> entries_;  // num_sets_ * ways_, set-major.
  uint64_t tick_ = 0;
  uint64_t epoch_ = 1;       // Bumped by InvalidateAll; entries start stale.
  uint64_t cold_walks_ = 0;  // Misses left that pay the cold-walk multiplier.
  TlbStats stats_;

  static constexpr double kColdWalkFactor = 2.5;
};

}  // namespace demeter

#endif  // DEMETER_SRC_MMU_TLB_H_
