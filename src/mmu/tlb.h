// Set-associative TLB caching flattened 2D translations (gVA -> hPA).
//
// Two invalidation instructions are modelled, matching the paper's taxonomy:
//   * single-address (invlpg / invvpid / invpcid): evicts one gVA
//   * full EPT invalidation (invept): evicts everything derived from an EPT
//
// Hypervisor-based access tracking (which sees only gPA/hPA) must use the
// full invalidation to re-arm PTE.A/D observation; guest-based tracking can
// use single-address invalidations because it knows the gVA. Table 1 counts
// exactly these two instruction kinds.
//
// Storage is structure-of-arrays: the probe tags (vpn + insertion epoch)
// live in their own dense arrays, separate from the payload (frame, LRU
// tick). A set probe touches 8 contiguous vpns and 8 contiguous epochs —
// two cache lines — instead of striding across 40-byte AoS entries; only
// the hitting way's payload is loaded. Liveness is encoded in the epoch
// tag alone: an entry is live iff its epoch equals the TLB's current epoch
// (epoch 0 is the never-valid/invalidated sentinel; the current epoch
// starts at 1 and only grows).

#ifndef DEMETER_SRC_MMU_TLB_H_
#define DEMETER_SRC_MMU_TLB_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/mem/host_memory.h"

namespace demeter {

struct TlbStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t single_flushes = 0;  // invlpg/invvpid/invpcid instructions.
  uint64_t full_flushes = 0;    // invept instructions.

  void Merge(const TlbStats& other) {
    hits += other.hits;
    misses += other.misses;
    single_flushes += other.single_flushes;
    full_flushes += other.full_flushes;
  }
};

class Tlb {
 public:
  // Default geometry models an STLB whose reach is amplified by transparent
  // hugepages (the guests run THP: one 2 MiB entry per 512 base pages), so
  // steady-state coverage approximates the working set — which is what makes
  // full invalidations so destructive and tier latency, not translation,
  // the dominant access cost.
  explicit Tlb(int num_sets = 1024, int ways = 8);

  // Looks up gVA page `vpn`; returns the cached hPA frame or kInvalidFrame.
  FrameId Lookup(PageNum vpn) {
    const size_t base = SetOf(vpn);
    for (int w = 0; w < ways_; ++w) {
      const size_t i = base + static_cast<size_t>(w);
      if (epochs_[i] == epoch_ && vpns_[i] == vpn) {
        lru_[i] = ++tick_;
        ++stats_.hits;
        return frames_[i];
      }
    }
    ++stats_.misses;
    return kInvalidFrame;
  }

  // Accounts a hit whose set scan was skipped because the probing vCPU just
  // translated the same page (ExecuteBatch's same-page run coalescing). The
  // hit counter advances exactly as Lookup would have; the LRU tick is NOT
  // re-bumped — the entry already holds the set's maximum tick from the
  // run's first probe, and bumping a sole maximum never changes the set's
  // relative LRU order, so victim selection is unaffected.
  void CountCoalescedHit() { ++stats_.hits; }

  // Installs vpn -> frame after a successful walk.
  void Insert(PageNum vpn, FrameId frame) {
    const size_t base = SetOf(vpn);
    // Victim choice, in way order: a same-vpn live entry is updated in
    // place; otherwise the LAST non-live way wins, and only when every way
    // is live does true LRU (lowest tick) pick.
    size_t victim = base;
    bool victim_set = false;
    bool victim_live = false;
    for (int w = 0; w < ways_; ++w) {
      const size_t i = base + static_cast<size_t>(w);
      const bool live = epochs_[i] == epoch_;
      if (live && vpns_[i] == vpn) {
        frames_[i] = frame;
        lru_[i] = ++tick_;
        return;
      }
      if (!live) {
        victim = i;
        victim_set = true;
        victim_live = false;
      } else if (!victim_set || (victim_live && lru_[i] < lru_[victim])) {
        victim = i;
        victim_set = true;
        victim_live = true;
      }
    }
    vpns_[victim] = vpn;
    frames_[victim] = frame;
    lru_[victim] = ++tick_;
    epochs_[victim] = epoch_;
  }

  // Single-address invalidation (guest knows the gVA).
  void InvalidatePage(PageNum vpn) {
    ++stats_.single_flushes;
    const size_t base = SetOf(vpn);
    for (int w = 0; w < ways_; ++w) {
      const size_t i = base + static_cast<size_t>(w);
      if (epochs_[i] == epoch_ && vpns_[i] == vpn) {
        epochs_[i] = 0;  // Sentinel: dead until re-inserted.
        return;
      }
    }
  }

  // Full invalidation of all entries (invept; also used for CR3-class full
  // flushes). The paper's full-invalidation counter counts these. Besides
  // dropping every translation, a full invalidation also destroys the
  // paging-structure caches, so the refill walks that follow are slower:
  // ConsumeWalkFactor() returns the cost multiplier for the next miss.
  //
  // O(1): instead of sweeping sets*ways entries, the TLB carries a
  // generation counter (epoch); every entry is tagged with the epoch it was
  // inserted under, and entries from older epochs are treated exactly like
  // invalid ones everywhere (lookup, victim selection, audits). Policies
  // that full-flush per scan round (hypervisor-side designs flush every
  // epoch) used to pay an 8K-entry sweep per flush.
  void InvalidateAll();

  // Walk-cost multiplier for a miss happening now; decays as the
  // paging-structure caches rewarm (call once per miss).
  double ConsumeWalkFactor() {
    if (cold_walks_ == 0) {
      return 1.0;
    }
    --cold_walks_;
    return kColdWalkFactor;
  }

  // Read-only walk over every valid entry, for audits: fn(vpn, frame).
  template <typename Fn>
  void ForEachValid(Fn&& fn) const {
    for (size_t i = 0; i < epochs_.size(); ++i) {
      if (epochs_[i] == epoch_) {
        fn(vpns_[i], frames_[i]);
      }
    }
  }

  const TlbStats& stats() const { return stats_; }
  void ClearStats() { stats_ = TlbStats{}; }

  int capacity() const { return num_sets_ * ways_; }

 private:
  size_t SetOf(PageNum vpn) const {
    // Multiplicative hash spreads contiguous pages across sets.
    uint64_t h = vpn * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>((h >> 32) % static_cast<uint64_t>(num_sets_)) *
           static_cast<size_t>(ways_);
  }

  int num_sets_;
  int ways_;
  // SoA storage, set-major (way i of set s lives at s*ways_ + i). The scan
  // arrays (vpns_, epochs_) decide hit/miss/victim; payload arrays are only
  // touched for the chosen way.
  std::vector<PageNum> vpns_;
  std::vector<uint64_t> epochs_;  // 0 = never valid / invalidated sentinel.
  std::vector<FrameId> frames_;
  std::vector<uint64_t> lru_;
  uint64_t tick_ = 0;
  uint64_t epoch_ = 1;       // Bumped by InvalidateAll; entries start stale.
  uint64_t cold_walks_ = 0;  // Misses left that pay the cold-walk multiplier.
  TlbStats stats_;

  static constexpr double kColdWalkFactor = 2.5;
};

}  // namespace demeter

#endif  // DEMETER_SRC_MMU_TLB_H_
