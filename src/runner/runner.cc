#include "src/runner/runner.h"

#include <atomic>
#include <exception>
#include <future>
#include <mutex>
#include <utility>

#include "src/base/logging.h"
#include "src/runner/thread_pool.h"

namespace demeter {

ExperimentRunner::ExperimentRunner(RunnerOptions options) : options_(std::move(options)) {
  if (options_.max_attempts < 1) {
    options_.max_attempts = 1;
  }
  if (!options_.run_fn) {
    options_.run_fn = RunExperiment;
  }
}

size_t ExperimentRunner::Submit(ExperimentSpec spec) {
  DEMETER_CHECK(!ran_) << "Submit after RunAll";
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

void ExperimentRunner::SubmitAll(std::vector<ExperimentSpec> specs) {
  for (ExperimentSpec& spec : specs) {
    Submit(std::move(spec));
  }
}

ExperimentResult ExperimentRunner::RunWithRetry(const ExperimentSpec& spec) {
  ExperimentResult result;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    try {
      result = options_.run_fn(spec);
    } catch (const std::exception& e) {
      result = ExperimentResult{};
      result.spec = spec;
      result.seed = DeriveSeed(spec);
      result.ok = false;
      result.error = e.what();
    }
    result.attempts = attempt;
    if (result.ok) {
      break;
    }
    if (result.error.empty()) {
      result.error = "run function reported failure";
    }
  }
  return result;
}

std::vector<ExperimentResult> ExperimentRunner::RunAll() {
  DEMETER_CHECK(!ran_) << "RunAll is one-shot";
  ran_ = true;

  std::vector<ExperimentResult> results(specs_.size());
  std::atomic<size_t> done{0};
  std::mutex progress_mu;

  ThreadPool pool(options_.jobs);
  std::vector<std::future<void>> futures;
  futures.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    futures.push_back(pool.Submit([this, i, &results, &done, &progress_mu] {
      // Each job owns exactly its submission-indexed slot; completion order
      // never reorders results.
      results[i] = RunWithRetry(specs_[i]);
      const size_t finished = done.fetch_add(1) + 1;
      if (options_.progress && options_.progress_stream != nullptr) {
        std::lock_guard<std::mutex> lock(progress_mu);
        std::fprintf(options_.progress_stream, "[runner %zu/%zu] %s %s (attempt %d)\n", finished,
                     specs_.size(), specs_[i].name.c_str(), results[i].ok ? "ok" : "FAILED",
                     results[i].attempts);
        std::fflush(options_.progress_stream);
      }
    }));
  }
  // RunWithRetry never lets a job exception escape, so these futures only
  // signal completion; get() also surfaces any unexpected infrastructure
  // error instead of swallowing it.
  for (std::future<void>& future : futures) {
    future.get();
  }
  return results;
}

}  // namespace demeter
