#include "src/runner/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"

namespace demeter {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Unstarted jobs are abandoned; dropping the packaged_tasks breaks their
    // promises, which is exactly what waiting futures should observe.
    queue_.clear();
  }
  work_cv_.notify_all();
  // jthread joins in workers_'s destructor.
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    DEMETER_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return future;
}

size_t ThreadPool::CancelPending() {
  std::deque<std::packaged_task<void()>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped.swap(queue_);
  }
  idle_cv_.notify_all();
  return dropped.size();  // Destroying the tasks breaks their promises.
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with nothing left to run.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // packaged_task routes any exception into the job's future; the worker
    // itself never unwinds past this call.
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace demeter
