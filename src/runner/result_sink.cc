#include "src/runner/result_sink.h"

#include "src/base/logging.h"
#include "src/telemetry/json.h"

namespace demeter {

std::string JsonLinesSink::ToJsonLines(const ExperimentResult& result) {
  std::string out;
  if (!result.ok) {
    out += '{';
    AppendJsonStr(out, "experiment", result.spec.name);
    out += ',';
    AppendJsonStr(out, "tag", result.spec.tag);
    out += ',';
    AppendJsonU64(out, "seed", result.seed);
    out += ",\"ok\":false,";
    AppendJsonU64(out, "attempts", static_cast<uint64_t>(result.attempts));
    out += ',';
    AppendJsonStr(out, "error", result.error);
    out += "}\n";
    return out;
  }
  for (size_t v = 0; v < result.vms.size(); ++v) {
    const VmRunResult& vm = result.vms[v];
    out += '{';
    AppendJsonStr(out, "experiment", result.spec.name);
    out += ',';
    AppendJsonStr(out, "tag", result.spec.tag);
    out += ',';
    AppendJsonU64(out, "seed", result.seed);
    out += ",\"ok\":true,";
    AppendJsonU64(out, "attempts", static_cast<uint64_t>(result.attempts));
    out += ',';
    AppendJsonU64(out, "vm", v);
    out += ',';
    AppendJsonStr(out, "workload", vm.workload);
    out += ',';
    AppendJsonStr(out, "policy", vm.policy);
    out += ',';
    AppendJsonU64(out, "transactions", vm.transactions);
    out += ',';
    AppendJsonF64(out, "elapsed_s", vm.elapsed_s);
    out += ',';
    AppendJsonF64(out, "throughput_tps", vm.ThroughputTps());
    out += ',';
    AppendJsonF64(out, "mgmt_cores", vm.MgmtCores());
    out += ',';
    AppendJsonF64(out, "fmem_access_fraction", vm.fmem_access_fraction);
    out += ",\"tlb\":{";
    AppendJsonU64(out, "hits", vm.tlb.hits);
    out += ',';
    AppendJsonU64(out, "misses", vm.tlb.misses);
    out += ',';
    AppendJsonU64(out, "single_flushes", vm.tlb.single_flushes);
    out += ',';
    AppendJsonU64(out, "full_flushes", vm.tlb.full_flushes);
    out += "},\"stats\":{";
    AppendJsonU64(out, "accesses", vm.vm_stats.accesses);
    out += ',';
    AppendJsonU64(out, "writes", vm.vm_stats.writes);
    out += ',';
    AppendJsonU64(out, "guest_faults", vm.vm_stats.guest_faults);
    out += ',';
    AppendJsonU64(out, "ept_faults", vm.vm_stats.ept_faults);
    out += ',';
    AppendJsonU64(out, "fmem_accesses", vm.vm_stats.fmem_accesses);
    out += ',';
    AppendJsonU64(out, "smem_accesses", vm.vm_stats.smem_accesses);
    out += ',';
    AppendJsonU64(out, "pages_promoted", vm.vm_stats.pages_promoted);
    out += ',';
    AppendJsonU64(out, "pages_demoted", vm.vm_stats.pages_demoted);
    out += "},\"txn_latency_ns\":{";
    AppendJsonF64(out, "mean", vm.txn_latency_ns.Mean());
    out += ',';
    AppendJsonU64(out, "p50", vm.txn_latency_ns.Percentile(50));
    out += ',';
    AppendJsonU64(out, "p90", vm.txn_latency_ns.Percentile(90));
    out += ',';
    AppendJsonU64(out, "p99", vm.txn_latency_ns.Percentile(99));
    out += ',';
    AppendJsonU64(out, "p999", vm.txn_latency_ns.Percentile(99.9));
    out += ',';
    AppendJsonU64(out, "max", vm.txn_latency_ns.max());
    out += "},\"metrics\":";
    vm.metrics.AppendJson(out);
    if (v == 0 && !result.host_metrics.empty()) {
      // Host-side counters are machine-wide; emit them once per experiment.
      out += ",\"host_metrics\":";
      result.host_metrics.AppendJson(out);
    }
    out += "}\n";
  }
  return out;
}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : out_(std::fopen(path.c_str(), "w")), owns_(true) {
  DEMETER_CHECK(out_ != nullptr) << "cannot open " << path << " for writing";
}

JsonLinesSink::JsonLinesSink(std::FILE* out) : out_(out), owns_(false) {
  DEMETER_CHECK(out_ != nullptr);
}

JsonLinesSink::~JsonLinesSink() {
  if (owns_ && out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

void JsonLinesSink::Consume(const ExperimentResult& result) {
  const std::string lines = ToJsonLines(result);
  std::fwrite(lines.data(), 1, lines.size(), out_);
}

void JsonLinesSink::Finish() {
  std::fflush(out_);
  if (owns_) {
    std::fclose(out_);
    out_ = nullptr;
    owns_ = false;
  }
}

TableSink::TableSink()
    : table_({"experiment", "workload", "policy", "vms", "elapsed-s", "txn/s", "mgmt-cores",
              "fmem%"}) {}

void TableSink::Consume(const ExperimentResult& result) {
  if (!result.ok || result.vms.empty()) {
    table_.AddRow({result.spec.name, "-", "-", "-", result.ok ? "-" : "FAILED", "-", "-", "-"});
    return;
  }
  double tps = 0.0;
  double fmem = 0.0;
  for (const VmRunResult& vm : result.vms) {
    tps += vm.ThroughputTps();
    fmem += vm.fmem_access_fraction;
  }
  const double n = result.vms.empty() ? 1.0 : static_cast<double>(result.vms.size());
  const VmRunResult& first = result.vms.front();
  table_.AddRow({result.spec.name, first.workload, first.policy,
                 TablePrinter::Fmt(static_cast<uint64_t>(result.vms.size())),
                 TablePrinter::Fmt(result.MeanElapsedSeconds(), 3), TablePrinter::Fmt(tps, 0),
                 TablePrinter::Fmt(result.TotalMgmtCores(), 3),
                 TablePrinter::Fmt(fmem / n * 100.0, 1)});
}

void TableSink::Finish() { table_.Print(); }

void EmitResults(const std::vector<ExperimentResult>& results,
                 const std::vector<ResultSink*>& sinks) {
  for (ResultSink* sink : sinks) {
    for (const ExperimentResult& result : results) {
      sink->Consume(result);
    }
    sink->Finish();
  }
}

}  // namespace demeter
