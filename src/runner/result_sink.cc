#include "src/runner/result_sink.h"

#include <cinttypes>

#include "src/base/logging.h"

namespace demeter {
namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendKey(std::string& out, const char* key) {
  out += '"';
  out += key;
  out += "\":";
}

void AppendStr(std::string& out, const char* key, const std::string& value) {
  AppendKey(out, key);
  out += '"';
  AppendEscaped(out, value);
  out += '"';
}

void AppendU64(std::string& out, const char* key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  AppendKey(out, key);
  out += buf;
}

// Fixed %.9g formatting: deterministic for a given build, compact, and more
// precision than any simulated metric is meaningful to.
void AppendF64(std::string& out, const char* key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  AppendKey(out, key);
  out += buf;
}

}  // namespace

std::string JsonLinesSink::ToJsonLines(const ExperimentResult& result) {
  std::string out;
  if (!result.ok) {
    out += '{';
    AppendStr(out, "experiment", result.spec.name);
    out += ',';
    AppendStr(out, "tag", result.spec.tag);
    out += ',';
    AppendU64(out, "seed", result.seed);
    out += ",\"ok\":false,";
    AppendU64(out, "attempts", static_cast<uint64_t>(result.attempts));
    out += ',';
    AppendStr(out, "error", result.error);
    out += "}\n";
    return out;
  }
  for (size_t v = 0; v < result.vms.size(); ++v) {
    const VmRunResult& vm = result.vms[v];
    out += '{';
    AppendStr(out, "experiment", result.spec.name);
    out += ',';
    AppendStr(out, "tag", result.spec.tag);
    out += ',';
    AppendU64(out, "seed", result.seed);
    out += ",\"ok\":true,";
    AppendU64(out, "attempts", static_cast<uint64_t>(result.attempts));
    out += ',';
    AppendU64(out, "vm", v);
    out += ',';
    AppendStr(out, "workload", vm.workload);
    out += ',';
    AppendStr(out, "policy", vm.policy);
    out += ',';
    AppendU64(out, "transactions", vm.transactions);
    out += ',';
    AppendF64(out, "elapsed_s", vm.elapsed_s);
    out += ',';
    AppendF64(out, "throughput_tps", vm.ThroughputTps());
    out += ',';
    AppendF64(out, "mgmt_cores", vm.MgmtCores());
    out += ',';
    AppendF64(out, "fmem_access_fraction", vm.fmem_access_fraction);
    out += ",\"tlb\":{";
    AppendU64(out, "hits", vm.tlb.hits);
    out += ',';
    AppendU64(out, "misses", vm.tlb.misses);
    out += ',';
    AppendU64(out, "single_flushes", vm.tlb.single_flushes);
    out += ',';
    AppendU64(out, "full_flushes", vm.tlb.full_flushes);
    out += "},\"stats\":{";
    AppendU64(out, "accesses", vm.vm_stats.accesses);
    out += ',';
    AppendU64(out, "writes", vm.vm_stats.writes);
    out += ',';
    AppendU64(out, "guest_faults", vm.vm_stats.guest_faults);
    out += ',';
    AppendU64(out, "ept_faults", vm.vm_stats.ept_faults);
    out += ',';
    AppendU64(out, "fmem_accesses", vm.vm_stats.fmem_accesses);
    out += ',';
    AppendU64(out, "smem_accesses", vm.vm_stats.smem_accesses);
    out += ',';
    AppendU64(out, "pages_promoted", vm.vm_stats.pages_promoted);
    out += ',';
    AppendU64(out, "pages_demoted", vm.vm_stats.pages_demoted);
    out += "},\"txn_latency_ns\":{";
    AppendF64(out, "mean", vm.txn_latency_ns.Mean());
    out += ',';
    AppendU64(out, "p50", vm.txn_latency_ns.Percentile(50));
    out += ',';
    AppendU64(out, "p90", vm.txn_latency_ns.Percentile(90));
    out += ',';
    AppendU64(out, "p99", vm.txn_latency_ns.Percentile(99));
    out += ',';
    AppendU64(out, "p999", vm.txn_latency_ns.Percentile(99.9));
    out += ',';
    AppendU64(out, "max", vm.txn_latency_ns.max());
    out += "}}\n";
  }
  return out;
}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : out_(std::fopen(path.c_str(), "w")), owns_(true) {
  DEMETER_CHECK(out_ != nullptr) << "cannot open " << path << " for writing";
}

JsonLinesSink::JsonLinesSink(std::FILE* out) : out_(out), owns_(false) {
  DEMETER_CHECK(out_ != nullptr);
}

JsonLinesSink::~JsonLinesSink() {
  if (owns_ && out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

void JsonLinesSink::Consume(const ExperimentResult& result) {
  const std::string lines = ToJsonLines(result);
  std::fwrite(lines.data(), 1, lines.size(), out_);
}

void JsonLinesSink::Finish() {
  std::fflush(out_);
  if (owns_) {
    std::fclose(out_);
    out_ = nullptr;
    owns_ = false;
  }
}

TableSink::TableSink()
    : table_({"experiment", "workload", "policy", "vms", "elapsed-s", "txn/s", "mgmt-cores",
              "fmem%"}) {}

void TableSink::Consume(const ExperimentResult& result) {
  if (!result.ok || result.vms.empty()) {
    table_.AddRow({result.spec.name, "-", "-", "-", result.ok ? "-" : "FAILED", "-", "-", "-"});
    return;
  }
  double tps = 0.0;
  double fmem = 0.0;
  for (const VmRunResult& vm : result.vms) {
    tps += vm.ThroughputTps();
    fmem += vm.fmem_access_fraction;
  }
  const double n = result.vms.empty() ? 1.0 : static_cast<double>(result.vms.size());
  const VmRunResult& first = result.vms.front();
  table_.AddRow({result.spec.name, first.workload, first.policy,
                 TablePrinter::Fmt(static_cast<uint64_t>(result.vms.size())),
                 TablePrinter::Fmt(result.MeanElapsedSeconds(), 3), TablePrinter::Fmt(tps, 0),
                 TablePrinter::Fmt(result.TotalMgmtCores(), 3),
                 TablePrinter::Fmt(fmem / n * 100.0, 1)});
}

void TableSink::Finish() { table_.Print(); }

void EmitResults(const std::vector<ExperimentResult>& results,
                 const std::vector<ResultSink*>& sinks) {
  for (ResultSink* sink : sinks) {
    for (const ExperimentResult& result : results) {
      sink->Consume(result);
    }
    sink->Finish();
  }
}

}  // namespace demeter
