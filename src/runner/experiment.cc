#include "src/runner/experiment.h"

#include "src/base/hash.h"

namespace demeter {
namespace {

void HashTierSpec(HashStream& h, const TierSpec& tier) {
  h.I32(static_cast<int>(tier.media))
      .F64(tier.read_latency_ns)
      .F64(tier.write_latency_ns)
      .F64(tier.read_bw_mbps)
      .F64(tier.write_bw_mbps)
      .U64(tier.capacity_bytes);
}

void HashMachineConfig(HashStream& h, const MachineConfig& config) {
  h.U64(config.tiers.size());
  for (const TierSpec& tier : config.tiers) {
    HashTierSpec(h, tier);
  }
  // capture_trace and check_invariants are deliberately NOT hashed: both
  // are pure observability and must not reseed (and thereby change) the
  // simulation they observe.
  h.U64(config.quantum).U64(config.batch_ops).U64(config.seed);
  // Faults DO change behaviour, so a non-empty plan folds its canonical
  // spec into the hash; the empty-plan hash is bit-identical to builds
  // that predate fault injection.
  if (!config.faults.empty()) {
    h.Str(config.faults.ToSpec());
  }
  // The far-tier knobs only exist on three-tier hosts (which already hash
  // differently through `tiers`), and overcommit only when enabled; gating
  // both keeps every pre-existing two-tier spec hash stable.
  if (static_cast<TierIndex>(config.tiers.size()) > kSwapTier) {
    h.U64(config.swap.queue_depth)
        .F64(config.swap.write_latency_ns)
        .F64(config.swap.read_latency_ns)
        .F64(config.swap.latency_jitter)
        .F64(config.swap.inflight_hit_ns)
        .I32(config.swap.max_retries)
        .U64(config.swap.seed);
  }
  if (config.overcommit.enabled) {
    h.Bool(config.overcommit.enabled)
        .F64(config.overcommit.ratio)
        .U64(config.overcommit.period_ns)
        .F64(config.overcommit.low_free_frac)
        .F64(config.overcommit.high_free_frac)
        .U64(config.overcommit.max_batch_pages);
  }
}

void HashDemeterConfig(HashStream& h, const DemeterConfig& d) {
  h.U64(d.range.epoch_length)
      .F64(d.range.alpha)
      .F64(d.range.split_threshold)
      .I32(d.range.merge_threshold)
      .U64(d.range.min_range_bytes)
      .U64(d.relocator.max_batch_pages)
      .U64(d.relocator.fmem_free_reserve_pages)
      .F64(d.relocator.demote_margin)
      .Bool(d.relocator.balanced_swap)
      .U64(d.sample_period)
      .F64(d.latency_threshold_ns)
      .F64(d.drain_ns_per_record)
      .F64(d.classify_ns_per_sample)
      .F64(d.classify_ns_per_range)
      .Bool(d.drain_on_context_switch)
      .U64(d.poll_period)
      .F64(d.poll_fixed_ns)
      .Bool(d.classify_virtual)
      .F64(d.translate_ns_per_sample);
  // Degradation only acts on faulted runs; hashing it only when customized
  // keeps every pre-existing spec hash stable.
  if (!d.degradation.IsDefault()) {
    h.Bool(d.degradation.enabled)
        .U64(d.degradation.unresponsive_after)
        .U64(d.degradation.watchdog_period)
        .U64(d.degradation.host_round_period)
        .U64(d.degradation.host_batch_pages);
  }
}

void HashVmSetup(HashStream& h, const VmSetup& setup) {
  // VmConfig: id/start_full/rng_seed are assigned by Machine::AddVm, so the
  // caller-controlled fields are the content.
  h.I32(setup.vm.num_vcpus)
      .U64(setup.vm.total_memory_bytes)
      .F64(setup.vm.fmem_ratio)
      .U64(setup.vm.context_switch_period)
      .F64(setup.vm.cache_hit_rate)
      .Bool(setup.vm.lazily_backed);
  h.Str(setup.workload)
      .U64(setup.footprint_bytes)
      .U64(setup.target_transactions)
      .I32(static_cast<int>(setup.policy))
      .I32(static_cast<int>(setup.provision))
      .U64(setup.policy_period)
      .U64(setup.timeline_bucket);
  // Lifecycle churn changes behaviour; hashing it only when set keeps every
  // pre-existing (boot-at-zero, never-departing) spec hash stable.
  if (setup.boot_at != 0 || setup.depart_on_finish) {
    h.U64(setup.boot_at).Bool(setup.depart_on_finish);
  }
  HashDemeterConfig(h, setup.demeter);
}

void HashClusterSetup(HashStream& h, const ClusterSetup& cluster) {
  h.I32(cluster.num_hosts)
      .U64(cluster.epoch)
      .I32(static_cast<int>(cluster.placement))
      .F64(cluster.placement_headroom);
  const MigrationConfig& m = cluster.migration;
  h.Bool(m.evacuate_on_shrink)
      .I32(m.max_precopy_rounds)
      .U64(m.stop_copy_pages)
      .F64(m.wire_ns_per_page)
      .I32(m.max_inflight)
      .I32(m.cooldown_epochs);
  // Retry and HA knobs postdate the first cluster baselines: hash them only
  // when changed so every pre-existing fleet spec keeps its seed.
  if (m.max_retries != MigrationConfig{}.max_retries ||
      m.retry_backoff_epochs != MigrationConfig{}.retry_backoff_epochs) {
    h.I32(m.max_retries).I32(m.retry_backoff_epochs);
  }
  if (!(cluster.ha == HaConfig{})) {
    const HaConfig& ha = cluster.ha;
    h.Bool(ha.restart)
        .I32(ha.restart_queue_limit)
        .I32(ha.restart_backoff_epochs)
        .I32(ha.restart_max_attempts)
        .I32(ha.quarantine_epochs);
  }
  h.U64(cluster.host_faults.size());
  for (const FaultPlan& plan : cluster.host_faults) {
    h.Str(plan.ToSpec());
  }
}

}  // namespace

uint64_t SpecContentHash(const ExperimentSpec& spec) {
  HashStream h;
  h.Str(spec.name).Str(spec.tag);
  HashMachineConfig(h, spec.config);
  h.U64(spec.vms.size());
  for (const VmSetup& setup : spec.vms) {
    HashVmSetup(h, setup);
  }
  // Cluster topology changes behaviour; hashing it only when non-default
  // keeps every pre-existing single-machine spec's seed bit-unchanged.
  if (!spec.cluster.IsDefault()) {
    HashClusterSetup(h, spec.cluster);
  }
  return h.Digest();
}

uint64_t DeriveSeed(const ExperimentSpec& spec) { return SpecContentHash(spec); }

double ExperimentResult::MeanElapsedSeconds() const {
  double total = 0.0;
  for (const VmRunResult& vm : vms) {
    total += vm.elapsed_s;
  }
  return vms.empty() ? 0.0 : total / static_cast<double>(vms.size());
}

double ExperimentResult::TotalMgmtCores() const {
  double total = 0.0;
  for (const VmRunResult& vm : vms) {
    total += vm.MgmtCores();
  }
  return total;
}

ExperimentResult RunExperiment(const ExperimentSpec& spec) {
  ExperimentResult result;
  result.spec = spec;
  result.seed = DeriveSeed(spec);

  MachineConfig config = spec.config;
  config.seed = result.seed;

  if (spec.cluster.num_hosts > 0) {
    Cluster cluster(config, spec.cluster);
    for (const VmSetup& setup : spec.vms) {
      cluster.AddVm(setup);
    }
    cluster.Run();
    result.vms.reserve(spec.vms.size());
    for (int i = 0; i < cluster.num_vms(); ++i) {
      result.vms.push_back(cluster.result(i));
    }
    // Single host: the snapshot is a bare machine's, so strip "host/" as
    // the classic path does. Multi-host: names are already fully scoped
    // ("host<h>/...", "cluster/..."), keep them verbatim.
    const MetricSnapshot snapshot = cluster.SnapshotMetrics();
    result.host_metrics = spec.cluster.num_hosts == 1
                              ? snapshot.FilterPrefix("host/", /*strip=*/true)
                              : snapshot;
    if (spec.config.capture_trace) {
      result.trace = cluster.TakeTrace();
    }
    result.ok = true;
    return result;
  }

  Machine machine(config);
  for (const VmSetup& setup : spec.vms) {
    machine.AddVm(setup);
  }
  machine.Run();

  result.vms.reserve(spec.vms.size());
  for (int i = 0; i < machine.num_vms(); ++i) {
    result.vms.push_back(machine.result(i));
  }
  result.host_metrics = machine.SnapshotMetrics().FilterPrefix("host/", /*strip=*/true);
  if (spec.config.capture_trace) {
    result.trace = machine.TakeTrace();
  }
  result.ok = true;
  return result;
}

}  // namespace demeter
