// Declarative experiment descriptions for the parallel runner.
//
// An ExperimentSpec is one independent simulation: a host (MachineConfig),
// the VMs to boot on it (VmSetup list), and a name/tag for reporting. Specs
// are pure data — the runner turns each one into a Machine, runs it to
// completion, and collects the per-VM results.
//
// Seed-derivation rule: every job's RNG seed is derived from the spec's
// *content* (SpecContentHash folds every field that influences the
// simulation, including the user-chosen base seed), never from submission
// order, worker identity, or completion order. Two identical specs always
// produce bit-identical results; any field change reseeds the run. This is
// what makes `--jobs=1` and `--jobs=8` byte-identical.

#ifndef DEMETER_SRC_RUNNER_EXPERIMENT_H_
#define DEMETER_SRC_RUNNER_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/harness/machine.h"

namespace demeter {

struct ExperimentSpec {
  std::string name;           // Unique-ish label, used in reports and sinks.
  std::string tag;            // Free-form grouping key (e.g. workload or row).
  MachineConfig config;       // config.seed is the user-chosen base seed.
  std::vector<VmSetup> vms;
  // Fleet topology. Default (num_hosts == 0) runs the classic single
  // Machine; >= 1 builds a Cluster with `config` as the per-host template.
  // Hashed only when non-default, so pre-existing specs keep their seeds.
  ClusterSetup cluster;
};

// Content hash of every simulation-relevant field (see the rule above).
uint64_t SpecContentHash(const ExperimentSpec& spec);

// The seed the runner hands to the Machine for this spec; currently the
// content hash itself, exposed separately so callers never bake in that
// equivalence.
uint64_t DeriveSeed(const ExperimentSpec& spec);

struct ExperimentResult {
  ExperimentSpec spec;
  uint64_t seed = 0;              // Derived seed the Machine actually used.
  std::vector<VmRunResult> vms;   // One entry per spec.vms element.
  // Host-side registry snapshot ("host/" prefix stripped).
  MetricSnapshot host_metrics;
  // Trace events recorded during the run (spec.config.capture_trace only).
  // Merged across specs in submission order by the sinks, so trace files
  // stay deterministic regardless of --jobs.
  std::vector<TraceEvent> trace;
  bool ok = false;
  int attempts = 0;               // 1 = first try succeeded.
  std::string error;              // Set when !ok.

  double MeanElapsedSeconds() const;
  double TotalMgmtCores() const;
};

// Runs one spec synchronously on the calling thread: builds the Machine with
// the derived seed, boots the VMs, runs to the transaction targets, and
// copies out the per-VM results. Throws (or aborts on simulation-invariant
// violation) rather than returning a partial result.
ExperimentResult RunExperiment(const ExperimentSpec& spec);

}  // namespace demeter

#endif  // DEMETER_SRC_RUNNER_EXPERIMENT_H_
