// Structured result sinks for experiment sweeps.
//
// A ResultSink consumes ExperimentResults in spec order (the runner's
// ordering guarantee makes sink output deterministic across --jobs values).
// Two implementations:
//   - JsonLinesSink: one JSON object per (experiment, VM) pair with stable
//     key order and fixed float formatting — machine-readable sweep output.
//   - TableSink: a generic summary table on the existing harness
//     TablePrinter, so bench stdout keeps the established look.

#ifndef DEMETER_SRC_RUNNER_RESULT_SINK_H_
#define DEMETER_SRC_RUNNER_RESULT_SINK_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/table.h"
#include "src/runner/experiment.h"

namespace demeter {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  // Called once per experiment, in spec order.
  virtual void Consume(const ExperimentResult& result) = 0;
  // Called once after the last Consume; flushes/prints.
  virtual void Finish() {}
};

class JsonLinesSink : public ResultSink {
 public:
  // Opens `path` for writing (truncates); aborts if it cannot.
  explicit JsonLinesSink(const std::string& path);
  // Writes to a caller-owned stream (not closed by the sink).
  explicit JsonLinesSink(std::FILE* out);
  ~JsonLinesSink() override;

  void Consume(const ExperimentResult& result) override;
  void Finish() override;

  // One line per VM (plus one line for a failed experiment), exposed for
  // tests and for embedding into other outputs.
  static std::string ToJsonLines(const ExperimentResult& result);

 private:
  std::FILE* out_ = nullptr;
  bool owns_ = false;
};

class TableSink : public ResultSink {
 public:
  TableSink();

  void Consume(const ExperimentResult& result) override;
  void Finish() override;  // Prints the table to stdout.

  const TablePrinter& table() const { return table_; }

 private:
  TablePrinter table_;
};

// Feeds every result to every sink in order, then finishes each sink.
void EmitResults(const std::vector<ExperimentResult>& results,
                 const std::vector<ResultSink*>& sinks);

}  // namespace demeter

#endif  // DEMETER_SRC_RUNNER_RESULT_SINK_H_
