// Fixed-size worker thread pool with per-job exception isolation.
//
// A small mutex/condvar task queue drained by N std::jthread workers. Jobs
// are submitted as callables and observed through std::future: a job that
// throws poisons only its own future (the worker survives and moves on).
// Pending-but-unstarted jobs can be cancelled in bulk; their futures fail
// with std::future_error(broken_promise). Destruction cancels pending jobs
// and joins after in-flight jobs finish.
//
// The pool imposes no ordering semantics of its own — deterministic result
// ordering is the ExperimentRunner's job (results land in submission-indexed
// slots, and seeds derive from spec content, so scheduling cannot leak into
// results).

#ifndef DEMETER_SRC_RUNNER_THREAD_POOL_H_
#define DEMETER_SRC_RUNNER_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace demeter {

class ThreadPool {
 public:
  // num_threads <= 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a job. The future reports completion or rethrows the job's
  // exception. Must not be called after the destructor has begun.
  std::future<void> Submit(std::function<void()> fn);

  // Drops every queued job that no worker has started; returns how many were
  // dropped. In-flight jobs are unaffected.
  size_t CancelPending();

  // Blocks until the queue is empty and all workers are idle.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Queue gained work / shutdown.
  std::condition_variable idle_cv_;   // Queue drained and workers idle.
  std::deque<std::packaged_task<void()>> queue_;
  int active_ = 0;
  bool shutdown_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_RUNNER_THREAD_POOL_H_
