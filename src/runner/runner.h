// Parallel experiment orchestration with deterministic results.
//
// ExperimentRunner fans submitted ExperimentSpecs out across a fixed-size
// ThreadPool and returns results **in submission (spec) order**, no matter
// which worker finished first. Determinism guarantees:
//   - each job's seed is derived from its spec's content (experiment.h), so
//     worker count and scheduling cannot influence any simulation;
//   - results are collected into submission-indexed slots;
//   - progress reporting goes to stderr only, keeping stdout byte-identical
//     across --jobs values.
//
// Failure policy: a job that throws std::exception (or returns !ok from a
// custom run function) is retried until RunnerOptions::max_attempts is
// exhausted; the final failure is reported in ExperimentResult::{ok,error}
// rather than aborting the whole sweep. DEMETER_CHECK violations still
// abort — simulation-invariant breakage must never be retried into silence.

#ifndef DEMETER_SRC_RUNNER_RUNNER_H_
#define DEMETER_SRC_RUNNER_RUNNER_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/runner/experiment.h"

namespace demeter {

struct RunnerOptions {
  // Worker threads; <= 0 selects std::thread::hardware_concurrency().
  int jobs = 0;
  // Total tries per spec (first attempt + retries). Minimum 1.
  int max_attempts = 2;
  // One line per finished job on progress_stream (never stdout).
  bool progress = true;
  std::FILE* progress_stream = stderr;
  // Test/extension hook: how to execute one spec. Defaults to RunExperiment.
  std::function<ExperimentResult(const ExperimentSpec&)> run_fn;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions options = RunnerOptions{});

  // Registers a spec; returns its index == its slot in RunAll()'s result
  // vector. Call before RunAll.
  size_t Submit(ExperimentSpec spec);
  void SubmitAll(std::vector<ExperimentSpec> specs);

  // Runs every submitted spec to completion (one-shot) and returns results
  // in submission order.
  std::vector<ExperimentResult> RunAll();

  size_t num_specs() const { return specs_.size(); }

 private:
  ExperimentResult RunWithRetry(const ExperimentSpec& spec);

  RunnerOptions options_;
  std::vector<ExperimentSpec> specs_;
  bool ran_ = false;
};

}  // namespace demeter

#endif  // DEMETER_SRC_RUNNER_RUNNER_H_
