#include "src/hyper/vm_image.h"

#include "src/base/logging.h"
#include "src/guest/kernel.h"
#include "src/guest/process.h"
#include "src/hyper/hypervisor.h"
#include "src/hyper/vm.h"
#include "src/mem/host_memory.h"
#include "src/mmu/page_table.h"

namespace demeter {

VmMemoryImage CaptureVmImage(Vm& vm, const GuestProcess& process) {
  VmMemoryImage image;
  const AddressSpace& space = process.space();
  image.vmas = space.vmas();
  image.brk = space.brk();
  image.mmap_floor = space.mmap_floor();
  HostMemory& mem = vm.host().memory();
  image.pages.reserve(process.gpt().mapped_count());
  process.gpt().ForEachPresent(
      0, PageTable::kMaxPage, [&](PageNum vpn, uint64_t gpa, bool accessed, bool dirty) {
        VmPageImage page;
        page.vpn = vpn;
        page.node = vm.kernel().NodeOfGpa(gpa);
        DEMETER_CHECK_GE(page.node, 0) << "mapped gpa " << gpa << " outside every guest node";
        page.gpt_accessed = accessed;
        page.gpt_dirty = dirty;
        const PageTable::WalkResult ept = vm.ept().Lookup(gpa);
        if (ept.present) {
          page.ept_backed = true;
          page.ept_accessed = ept.was_accessed;
          page.ept_dirty = ept.was_dirty;
          page.token = mem.ReadToken(ept.target);
        }
        image.pages.push_back(page);
      });
  return image;
}

uint64_t RestoreVmImage(Vm& vm, GuestProcess& process, const VmMemoryImage& image, Nanos now,
                        double* cost_ns) {
  Hypervisor& host = vm.host();
  HostMemory& mem = host.memory();
  uint64_t restored = 0;
  for (const VmPageImage& page : image.pages) {
    const auto gpa = vm.kernel().AdoptPage(process, page.vpn, page.node, cost_ns);
    DEMETER_CHECK(gpa.has_value())
        << "destination guest out of pages restoring vpn " << page.vpn;
    // Freshly mapped PTEs have clear A/D; re-walk with set_bits to restore
    // the source bits (D implies A, matching how hardware ever sets them).
    if (page.gpt_dirty || page.gpt_accessed) {
      (void)process.gpt().Translate(page.vpn, /*is_write=*/page.gpt_dirty, /*set_bits=*/true);
    }
    if (page.ept_backed) {
      const FrameId frame = host.PopulateEpt(vm, *gpa, now);
      DEMETER_CHECK(frame != kInvalidFrame)
          << "destination host out of frames restoring vpn " << page.vpn;
      mem.WriteToken(frame, page.token);
      *cost_ns += mem.tier(mem.TierOf(frame)).AccessCost(now, kPageSize, /*is_write=*/true);
      if (page.ept_dirty || page.ept_accessed) {
        (void)vm.ept().Translate(*gpa, /*is_write=*/page.ept_dirty, /*set_bits=*/true);
      }
    }
    ++restored;
  }
  return restored;
}

}  // namespace demeter
