// Live-migration VM memory image: a deterministic, host-independent capture
// of everything a guest's memory state needs to be rebuilt on another host —
// the address-space layout, every GPT mapping with its A/D bits, the guest
// NUMA node each page lived on, whether (and how) the EPT backed it, and the
// logical page contents (the HostMemory token).
//
// Capture walks the GPT in vpn order, so the image — and every allocation
// the restore pass performs from it — is byte-deterministic. Restore
// re-materializes the state through the same code paths a running guest
// uses (AdoptPage for gPA allocation + rmap, PopulateEpt for host frames),
// so destination tier residency is *rebuilt* under the destination host's
// pressure, not teleported: pages prefer their source node, and spill
// exactly like first-touch placement when the destination is tighter.

#ifndef DEMETER_SRC_HYPER_VM_IMAGE_H_
#define DEMETER_SRC_HYPER_VM_IMAGE_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/guest/address_space.h"

namespace demeter {

class GuestProcess;
class Vm;

// One mapped guest page. `node` is the guest NUMA node at capture time;
// `token` is the logical contents (only meaningful when ept_backed — an
// unbacked page has never been touched, so its contents are still zero).
struct VmPageImage {
  PageNum vpn = 0;
  int node = 0;
  uint64_t token = 0;
  bool gpt_accessed = false;
  bool gpt_dirty = false;
  bool ept_backed = false;
  bool ept_accessed = false;
  bool ept_dirty = false;
};

struct VmMemoryImage {
  std::vector<Vma> vmas;
  uint64_t brk = 0;
  uint64_t mmap_floor = 0;
  std::vector<VmPageImage> pages;

  uint64_t num_pages() const { return pages.size(); }
};

// Captures `process`'s full memory image from a live VM.
VmMemoryImage CaptureVmImage(Vm& vm, const GuestProcess& process);

// Re-materializes `image` into a freshly created process on the destination
// VM (the caller restores the address-space layout first): GPT mappings with
// A/D bits, rmap/FIFO entries, EPT backings with A/D bits, and page tokens.
// Accumulates allocation + tier-write CPU cost into *cost_ns (the tier
// writes also consume destination bandwidth at `now`) and returns the
// number of pages restored. Aborts on destination host OOM — callers gate
// migrations on destination headroom.
uint64_t RestoreVmImage(Vm& vm, GuestProcess& process, const VmMemoryImage& image, Nanos now,
                        double* cost_ns);

}  // namespace demeter

#endif  // DEMETER_SRC_HYPER_VM_IMAGE_H_
