#include "src/hyper/hypervisor.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/base/logging.h"

namespace demeter {

Hypervisor::Hypervisor(HostMemory* memory, EventQueue* events)
    : memory_(memory), events_(events) {
  DEMETER_CHECK(memory != nullptr);
  DEMETER_CHECK(events != nullptr);
}

Vm& Hypervisor::CreateVm(const VmConfig& config) {
  vms_.push_back(std::make_unique<Vm>(config, this));
  return *vms_.back();
}

void Hypervisor::ConfigureVmEventLanes(int num_shards, int ids_per_shard) {
  DEMETER_CHECK_GE(ids_per_shard, 1);
  DEMETER_CHECK_LT(num_shards, EventQueue::kMaxLanes);
  DEMETER_CHECK(num_shards <= 1 || events_->lanes() >= num_shards + 1)
      << "event queue has " << events_->lanes() << " lanes, need "
      << num_shards + 1;
  vm_lane_shards_ = num_shards;
  vm_lane_ids_per_shard_ = ids_per_shard;
}

uint64_t Hypervisor::ScheduleVmEvent(int vm_id, Nanos when, EventQueue::Callback cb) {
  if (vm_lane_shards_ <= 1) {
    return events_->Schedule(when, std::move(cb));
  }
  const int shard = std::min(vm_id / vm_lane_ids_per_shard_, vm_lane_shards_ - 1);
  return events_->ScheduleOn(1 + shard, when, std::move(cb));
}

int Hypervisor::NodeOfGpa(const Vm& vm, PageNum gpa) const {
  const uint64_t span = vm.config().total_pages();
  const int node = static_cast<int>(gpa / span);
  DEMETER_CHECK_LT(node, 2);
  return node;
}

FrameId Hypervisor::CheckDestination(FrameId frame) {
  if (frame != kInvalidFrame && memory_->IsPoisoned(frame)) {
    ++poison_stats_.bad_destination;
  }
  return frame;
}

FrameId Hypervisor::PopulateEpt(Vm& vm, PageNum gpa, Nanos now) {
  const int node = NodeOfGpa(vm, gpa);
  const TierIndex desired = TierForNode(node);
  auto frame = memory_->Allocate(desired);
  if (!frame.has_value()) {
    // Host pressure: spill to another tier rather than failing the VM.
    // Byte-addressable tiers only, colder first, then warmer; the far swap
    // tier is strictly the last resort once every DRAM-class tier is dry.
    // Swapping out a page the host could still keep byte-addressable would
    // turn a transient SMEM shortage into major faults — and would make a
    // provisioned-to-fit host (overcommit ratio 1.0) behave differently
    // from its two-tier twin. On a two-tier host this order degenerates to
    // "the other tier", exactly the pre-swap behavior.
    const TierIndex num_dram =
        swap_ != nullptr ? kSwapTier : memory_->num_tiers();
    for (TierIndex t = desired + 1; !frame.has_value() && t < num_dram; ++t) {
      frame = memory_->Allocate(t);
    }
    for (TierIndex t = desired; !frame.has_value() && t-- > 0;) {
      frame = memory_->Allocate(t);
    }
    if (!frame.has_value() && swap_ != nullptr) {
      frame = memory_->Allocate(kSwapTier);
    }
    if (frame.has_value()) {
      // Count a fallback only when the spill actually produced a frame,
      // so the counter matches the number of off-tier placements.
      ++stats_.host_tier_fallbacks;
    }
  }
  if (!frame.has_value()) {
    return kInvalidFrame;
  }
  if (swap_ != nullptr && memory_->TierOf(*frame) == kSwapTier) {
    // A placement in the far tier is a swap-out: open the slot and start
    // the async writeback. The (rare) bounded-queue stall is absorbed here
    // — first-touch placement has no migration cost account to charge.
    swap_->SlotStore(*frame, vm.id(), now);
  }
  ++stats_.ept_populates;
  DEMETER_CHECK(vm.ept().Map(gpa, *frame, /*writable=*/true));
  return CheckDestination(*frame);
}

void Hypervisor::UnbackGpa(Vm& vm, PageNum gpa, bool flush) {
  const uint64_t frame = vm.ept().Unmap(gpa);
  if (frame == ~0ULL) {
    return;  // Never backed.
  }
  ++stats_.ept_unbacks;
  if (swap_ != nullptr && memory_->TierOf(frame) == kSwapTier) {
    // The page dies under its slot (balloon reclaim, VM departure): the
    // slot is released without a device read.
    swap_->SlotDrop(frame, vm.id());
  }
  memory_->Free(frame);
  if (flush) {
    vm.FullFlushAll();
  }
}

bool Hypervisor::MigrateGpa(Vm& vm, PageNum gpa, TierIndex dst_tier, Nanos now, double* cost_ns) {
  const auto entry = vm.ept().Lookup(gpa);
  if (!entry.present) {
    return false;
  }
  const FrameId old_frame = entry.target;
  if (memory_->TierOf(old_frame) == dst_tier) {
    return false;
  }
  auto new_frame = memory_->Allocate(dst_tier);
  if (!new_frame.has_value()) {
    return false;
  }
  CheckDestination(*new_frame);
  const TierIndex src_tier = memory_->TierOf(old_frame);
  if (swap_ != nullptr && src_tier == kSwapTier) {
    // Swap-in: the device read (or in-flight-buffer hit) releases the slot.
    *cost_ns += swap_->SlotLoad(old_frame, vm.id(), now);
  }
  *cost_ns += memory_->tier(src_tier).AccessCost(now, kPageSize, false);
  *cost_ns += memory_->tier(dst_tier).AccessCost(now, kPageSize, true);
  memory_->WriteToken(*new_frame, memory_->ReadToken(old_frame));
  DEMETER_CHECK(vm.ept().Remap(gpa, *new_frame));
  if (swap_ != nullptr && dst_tier == kSwapTier) {
    // Swap-out: open the slot and enqueue the async writeback; a full
    // bounded queue stalls the demotion, charged to the migration.
    *cost_ns += swap_->SlotStore(*new_frame, vm.id(), now);
  }
  memory_->Free(old_frame);
  ++stats_.host_migrations;
  return true;
}

void Hypervisor::EnableSwap(const SwapDeviceConfig& config) {
  DEMETER_CHECK(swap_ == nullptr);
  DEMETER_CHECK_GT(memory_->num_tiers(), kSwapTier);
  swap_ = std::make_unique<SwapDevice>(config, fault_injector_);
}

TierIndex Hypervisor::SwapInTarget() const {
  if (memory_->FreePages(kFmemTier) > ShrinkReservePages(kFmemTier) &&
      !TierUnderShrink(kFmemTier)) {
    return kFmemTier;  // Level-skip: a hot swap-in goes straight to FMEM.
  }
  return kSmemTier;
}

bool Hypervisor::SwapInGpa(Vm& vm, PageNum gpa, Nanos now, double* cost_ns) {
  const TierIndex preferred = SwapInTarget();
  if (MigrateGpa(vm, gpa, preferred, now, cost_ns)) {
    return true;
  }
  const TierIndex other = preferred == kFmemTier ? kSmemTier : kFmemTier;
  if (other == kFmemTier && TierUnderShrink(kFmemTier)) {
    return false;  // Don't fight an active carve; access the page far.
  }
  return MigrateGpa(vm, gpa, other, now, cost_ns);
}

double Hypervisor::OnMemoryError(Vm& vm, GuestProcess& process, PageNum vpn, Nanos now) {
  const auto gpt_entry = process.gpt().Lookup(vpn);
  DEMETER_CHECK(gpt_entry.present) << "memory error on unmapped vpn " << vpn;
  const PageNum gpa = gpt_entry.target;
  const auto ept_entry = vm.ept().Lookup(gpa);
  DEMETER_CHECK(ept_entry.present) << "memory error on unbacked gpa " << gpa;
  const FrameId frame = static_cast<FrameId>(ept_entry.target);
  const bool dirty = ept_entry.was_dirty;
  const TierIndex tier = memory_->TierOf(frame);
  // Read the logical contents before the frame dies: a clean page still has
  // an intact copy at its origin, which the recovery path re-materializes.
  const uint64_t token = memory_->ReadToken(frame);

  ++poison_stats_.events;
  vm.ept().Unmap(gpa);
  if (swap_ != nullptr) {
    swap_->SlotDrop(frame, vm.id());  // Poisoned swap frame: slot dies too.
  }
  memory_->Poison(frame);
  ++poison_stats_.frames_offlined;
  // The hypervisor knows the faulting gVA (the MCE hit a running access),
  // so a single-address shootdown suffices — no full invept.
  vm.FlushGvaAll(vpn);
  double cost = vm.SingleFlushCost() + vm.config().mmu_costs.ept_fault_ns;

  if (!dirty) {
    const FrameId replacement = PopulateEpt(vm, gpa, now);
    if (replacement != kInvalidFrame) {
      memory_->WriteToken(replacement, token);
      cost += memory_->tier(tier).AccessCost(now, kPageSize, /*is_write=*/false);
      cost += memory_->tier(memory_->TierOf(replacement)).AccessCost(now, kPageSize,
                                                                     /*is_write=*/true);
      ++poison_stats_.clean_recoveries;
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->Instant("host", "poison_clean", now, vm.id(), 0,
                         TraceArgs().Add("frame", frame).str());
      }
      return cost;
    }
  }
  // Dirty contents died with the frame (or no replacement frame existed):
  // deliver SIGBUS; the guest discards the page and the work is lost.
  vm.kernel().DiscardPage(process, vpn, gpa);
  cost += vm.config().mmu_costs.guest_fault_ns;
  ++poison_stats_.sigbus_deliveries;
  ++poison_stats_.pages_lost;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("host", "poison_sigbus", now, vm.id(), 0,
                     TraceArgs().Add("frame", frame).str());
  }
  return cost;
}

void Hypervisor::ArmTierShrink() {
  if (fault_injector_ == nullptr) {
    return;
  }
  for (TierIndex t = 0; t < memory_->num_tiers() && t < kMaxFaultTiers; ++t) {
    const Nanos start = fault_injector_->NextShrinkWindowStart(t, 0);
    if (start == 0) {
      continue;
    }
    events_->Schedule(start, [this, t](Nanos fire) { BeginShrinkWindow(t, fire); });
  }
}

bool Hypervisor::TierUnderShrink(TierIndex t) const {
  return t >= 0 && t < static_cast<TierIndex>(shrink_.size()) &&
         shrink_[static_cast<size_t>(t)].active;
}

void Hypervisor::CountShrinkBackpressure(TierIndex t) {
  ++shrink_[static_cast<size_t>(t)].stats.backpressure;
}

uint64_t Hypervisor::ShrinkReservePages(TierIndex t) const {
  if (fault_injector_ == nullptr || t < 0 || t >= kMaxFaultTiers) {
    return 0;
  }
  const double frac = fault_injector_->plan().tier_shrink[static_cast<size_t>(t)].frac;
  if (frac <= 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(
      std::ceil(frac * static_cast<double>(memory_->CapacityPages(t))));
}

void Hypervisor::BeginShrinkWindow(TierIndex t, Nanos now) {
  ShrinkState& s = shrink_[static_cast<size_t>(t)];
  DEMETER_CHECK(!s.active) << "overlapping shrink windows on tier " << t;
  s.active = true;
  ++s.stats.windows;
  const double frac = fault_injector_->plan().tier_shrink[static_cast<size_t>(t)].frac;
  s.target_pages =
      static_cast<uint64_t>(frac * static_cast<double>(memory_->CapacityPages(t)));
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("host", "shrink_begin", now, /*pid=*/0, /*tid=*/t,
                     TraceArgs().Add("target_pages", s.target_pages).str());
  }
  RunShrinkBatch(t, now);
  events_->Schedule(fault_injector_->ShrinkWindowEnd(t, now),
                    [this, t](Nanos fire) { EndShrinkWindow(t, fire); });
}

void Hypervisor::RunShrinkBatch(TierIndex t, Nanos now) {
  ShrinkState& s = shrink_[static_cast<size_t>(t)];
  if (!s.active) {
    return;
  }
  auto deficit = [&] {
    const uint64_t carved = memory_->CarvedPages(t);
    return s.target_pages > carved ? s.target_pages - carved : 0;
  };
  // Free frames are the cheapest capacity: carve them before evicting.
  s.stats.carved_pages += memory_->CarveFree(t, deficit());
  const uint64_t need = deficit();
  if (need == 0) {
    return;
  }
  // Emergency eviction, bounded per batch so a large carve target cannot
  // stall the run at a single instant: migrate up to kShrinkBatchPages
  // mapped pages off the shrinking tier, then reschedule.
  constexpr uint64_t kShrinkBatchPages = 128;
  // Eviction destinations in preference order: the other DRAM tier first,
  // then (on a three-tier host) the far swap tier as the overflow valve.
  std::vector<TierIndex> dsts;
  dsts.push_back(t == kFmemTier ? kSmemTier : kFmemTier);
  for (TierIndex d = 0; d < memory_->num_tiers(); ++d) {
    if (d != t && d != dsts.front()) {
      dsts.push_back(d);
    }
  }
  uint64_t budget = std::min(need, kShrinkBatchPages);
  uint64_t evicted = 0;
  for (auto& vm_ptr : vms_) {
    Vm& vm = *vm_ptr;
    if (vm.departed() || budget == 0) {
      continue;
    }
    std::vector<PageNum> victims;
    vm.ept().ForEachPresent(0, PageTable::kMaxPage,
                            [&](PageNum gpa, uint64_t frame, bool, bool) {
                              if (victims.size() < budget &&
                                  memory_->TierOf(static_cast<FrameId>(frame)) == t) {
                                victims.push_back(gpa);
                              }
                            });
    double cost_ns = 0.0;
    uint64_t moved = 0;
    for (PageNum gpa : victims) {
      for (TierIndex dst : dsts) {
        if (MigrateGpa(vm, gpa, dst, now, &cost_ns)) {
          ++moved;
          break;
        }
      }
    }
    if (moved > 0) {
      vm.FullFlushAll();
      cost_ns += vm.FullFlushCost();
      // The batch runs on host cores but steals memory bandwidth and the
      // post-batch invept from the VM; charge its migration account.
      vm.mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(cost_ns));
    }
    evicted += moved;
    budget -= std::min(budget, moved);
  }
  s.stats.evictions += evicted;
  s.stats.carved_pages += memory_->CarveFree(t, deficit());
  if (deficit() > 0 && evicted > 0) {
    events_->Schedule(now + 50 * kMicrosecond,
                      [this, t](Nanos fire) { RunShrinkBatch(t, fire); });
  }
  // No progress while short: give up; the shortfall is recorded when the
  // window closes.
}

void Hypervisor::EndShrinkWindow(TierIndex t, Nanos now) {
  ShrinkState& s = shrink_[static_cast<size_t>(t)];
  DEMETER_CHECK(s.active);
  const uint64_t carved = memory_->CarvedPages(t);
  if (s.target_pages > carved) {
    s.stats.shortfall_pages += s.target_pages - carved;
  }
  memory_->RestoreCarved(t);
  s.active = false;
  s.target_pages = 0;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("host", "shrink_end", now, /*pid=*/0, /*tid=*/t,
                     TraceArgs().Add("restored_pages", carved).str());
  }
  // duration == period means back-to-back windows: reopen immediately.
  const Nanos next = fault_injector_->InShrinkWindow(t, now)
                         ? now
                         : fault_injector_->NextShrinkWindowStart(t, now);
  if (next >= now && next != 0) {
    events_->Schedule(next, [this, t](Nanos fire) { BeginShrinkWindow(t, fire); });
  }
}

Hypervisor::ReclaimResult Hypervisor::ReclaimVm(Vm& vm) {
  ReclaimResult result;
  GuestKernel& kernel = vm.kernel();
  for (const auto& process : kernel.processes()) {
    std::vector<std::pair<PageNum, PageNum>> mappings;
    process->gpt().ForEachPresent(0, PageTable::kMaxPage,
                                  [&](PageNum vpn, uint64_t gpa, bool, bool) {
                                    mappings.emplace_back(vpn, static_cast<PageNum>(gpa));
                                  });
    for (const auto& [vpn, gpa] : mappings) {
      process->gpt().Unmap(vpn);
      kernel.FreeGpa(gpa);
      ++result.gpt_unmapped;
      ++result.gpa_freed;
    }
  }
  std::vector<PageNum> backed;
  vm.ept().ForEachPresent(0, PageTable::kMaxPage,
                          [&](PageNum gpa, uint64_t, bool, bool) { backed.push_back(gpa); });
  for (PageNum gpa : backed) {
    UnbackGpa(vm, gpa, /*flush=*/false);
    ++result.ept_unbacked;
  }
  // One full invalidation per vCPU retires every cached translation of the
  // departed address space (ASID teardown).
  vm.FullFlushAll();
  return result;
}

void Hypervisor::RegisterMetrics(MetricScope scope) {
  MetricScope hyper = scope.Sub("hyper");
  hyper.RegisterCounter("ept_populates", &stats_.ept_populates);
  hyper.RegisterCounter("ept_unbacks", &stats_.ept_unbacks);
  hyper.RegisterCounter("tier_fallbacks", &stats_.host_tier_fallbacks);
  hyper.RegisterCounter("migrations", &stats_.host_migrations);
  MetricScope poison = scope.Sub("poison");
  poison.RegisterCounter("events", &poison_stats_.events);
  poison.RegisterCounter("frames_offlined", &poison_stats_.frames_offlined);
  poison.RegisterCounter("clean_recoveries", &poison_stats_.clean_recoveries);
  poison.RegisterCounter("sigbus_deliveries", &poison_stats_.sigbus_deliveries);
  poison.RegisterCounter("pages_lost", &poison_stats_.pages_lost);
  poison.RegisterCounter("bad_destination", &poison_stats_.bad_destination);
  if (swap_ != nullptr) {
    swap_->RegisterHostMetrics(scope.Sub("swap"));
  }
  for (TierIndex t = 0; t < memory_->num_tiers(); ++t) {
    MetricScope tier = scope.Sub("tier" + std::to_string(t));
    HostMemory* memory = memory_;
    tier.RegisterGaugeFn("used_pages",
                         [memory, t] { return static_cast<double>(memory->UsedPages(t)); });
    tier.RegisterGaugeFn("free_pages",
                         [memory, t] { return static_cast<double>(memory->FreePages(t)); });
    tier.RegisterGaugeFn("poisoned_pages",
                         [memory, t] { return static_cast<double>(memory->PoisonedPages(t)); });
    if (t < static_cast<TierIndex>(shrink_.size())) {
      TierShrinkStats& shrink = shrink_[static_cast<size_t>(t)].stats;
      tier.RegisterCounter("shrink_windows", &shrink.windows);
      tier.RegisterCounter("shrink_carved_pages", &shrink.carved_pages);
      tier.RegisterCounter("shrink_evictions", &shrink.evictions);
      tier.RegisterCounter("shrink_shortfall_pages", &shrink.shortfall_pages);
      tier.RegisterCounter("shrink_backpressure", &shrink.backpressure);
    }
  }
}

uint64_t Hypervisor::ScanEptAccessedAndFlush(Vm& vm, const EptVisitor& visitor) {
  const uint64_t touched = vm.ept().ScanAndClearAccessed(
      0, PageTable::kMaxPage, [&](PageNum gpa, uint64_t frame, bool accessed, bool) {
        visitor(gpa, static_cast<FrameId>(frame), accessed);
      });
  // Without gVAs, only a full EPT invalidation guarantees that future
  // accesses re-walk and re-set A bits (§2.3.1).
  vm.FullFlushAll();
  return touched;
}

}  // namespace demeter
