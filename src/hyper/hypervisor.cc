#include "src/hyper/hypervisor.h"

#include "src/base/logging.h"

namespace demeter {

Hypervisor::Hypervisor(HostMemory* memory, EventQueue* events)
    : memory_(memory), events_(events) {
  DEMETER_CHECK(memory != nullptr);
  DEMETER_CHECK(events != nullptr);
}

Vm& Hypervisor::CreateVm(const VmConfig& config) {
  vms_.push_back(std::make_unique<Vm>(config, this));
  return *vms_.back();
}

int Hypervisor::NodeOfGpa(const Vm& vm, PageNum gpa) const {
  const uint64_t span = vm.config().total_pages();
  const int node = static_cast<int>(gpa / span);
  DEMETER_CHECK_LT(node, 2);
  return node;
}

FrameId Hypervisor::PopulateEpt(Vm& vm, PageNum gpa) {
  const int node = NodeOfGpa(vm, gpa);
  const TierIndex desired = TierForNode(node);
  auto frame = memory_->Allocate(desired);
  if (!frame.has_value()) {
    // Host pressure: spill to the other tier rather than failing the VM.
    for (TierIndex t = 0; t < memory_->num_tiers(); ++t) {
      if (t == desired) {
        continue;
      }
      frame = memory_->Allocate(t);
      if (frame.has_value()) {
        // Count a fallback only when the spill actually produced a frame,
        // so the counter matches the number of off-tier placements.
        ++stats_.host_tier_fallbacks;
        break;
      }
    }
  }
  if (!frame.has_value()) {
    return kInvalidFrame;
  }
  ++stats_.ept_populates;
  DEMETER_CHECK(vm.ept().Map(gpa, *frame, /*writable=*/true));
  return *frame;
}

void Hypervisor::UnbackGpa(Vm& vm, PageNum gpa, bool flush) {
  const uint64_t frame = vm.ept().Unmap(gpa);
  if (frame == ~0ULL) {
    return;  // Never backed.
  }
  ++stats_.ept_unbacks;
  memory_->Free(frame);
  if (flush) {
    vm.FullFlushAll();
  }
}

bool Hypervisor::MigrateGpa(Vm& vm, PageNum gpa, TierIndex dst_tier, Nanos now, double* cost_ns) {
  const auto entry = vm.ept().Lookup(gpa);
  if (!entry.present) {
    return false;
  }
  const FrameId old_frame = entry.target;
  if (memory_->TierOf(old_frame) == dst_tier) {
    return false;
  }
  auto new_frame = memory_->Allocate(dst_tier);
  if (!new_frame.has_value()) {
    return false;
  }
  *cost_ns += memory_->tier(memory_->TierOf(old_frame)).AccessCost(now, kPageSize, false);
  *cost_ns += memory_->tier(dst_tier).AccessCost(now, kPageSize, true);
  memory_->WriteToken(*new_frame, memory_->ReadToken(old_frame));
  DEMETER_CHECK(vm.ept().Remap(gpa, *new_frame));
  memory_->Free(old_frame);
  ++stats_.host_migrations;
  return true;
}

void Hypervisor::RegisterMetrics(MetricScope scope) {
  MetricScope hyper = scope.Sub("hyper");
  hyper.RegisterCounter("ept_populates", &stats_.ept_populates);
  hyper.RegisterCounter("ept_unbacks", &stats_.ept_unbacks);
  hyper.RegisterCounter("tier_fallbacks", &stats_.host_tier_fallbacks);
  hyper.RegisterCounter("migrations", &stats_.host_migrations);
  for (TierIndex t = 0; t < memory_->num_tiers(); ++t) {
    MetricScope tier = scope.Sub("tier" + std::to_string(t));
    HostMemory* memory = memory_;
    tier.RegisterGaugeFn("used_pages",
                         [memory, t] { return static_cast<double>(memory->UsedPages(t)); });
    tier.RegisterGaugeFn("free_pages",
                         [memory, t] { return static_cast<double>(memory->FreePages(t)); });
  }
}

uint64_t Hypervisor::ScanEptAccessedAndFlush(Vm& vm, const EptVisitor& visitor) {
  const uint64_t touched = vm.ept().ScanAndClearAccessed(
      0, PageTable::kMaxPage, [&](PageNum gpa, uint64_t frame, bool accessed, bool) {
        visitor(gpa, static_cast<FrameId>(frame), accessed);
      });
  // Without gVAs, only a full EPT invalidation guarantees that future
  // accesses re-walk and re-set A bits (§2.3.1).
  vm.FullFlushAll();
  return touched;
}

}  // namespace demeter
