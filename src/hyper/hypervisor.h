// Hypervisor: owns host tiered memory and VMs; populates EPTs lazily;
// provides the MMU-notifier interface hypervisor-based TMM designs use and
// the host-side page migration they perform.

#ifndef DEMETER_SRC_HYPER_HYPERVISOR_H_
#define DEMETER_SRC_HYPER_HYPERVISOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/hyper/vm.h"
#include "src/mem/host_memory.h"
#include "src/sim/event_queue.h"
#include "src/swap/swap_device.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/tracer.h"

namespace demeter {

class Hypervisor {
 public:
  struct Stats {
    uint64_t ept_populates = 0;
    uint64_t ept_unbacks = 0;
    uint64_t host_tier_fallbacks = 0;  // Desired tier dry; spilled.
    uint64_t host_migrations = 0;
  };

  // hwpoison/MCE accounting (`host/poison/*`).
  struct PoisonStats {
    uint64_t events = 0;             // Uncorrectable errors surfaced.
    uint64_t frames_offlined = 0;    // Frames permanently retired.
    uint64_t clean_recoveries = 0;   // Clean page: silently re-backed.
    uint64_t sigbus_deliveries = 0;  // Dirty page: guest told to discard.
    uint64_t pages_lost = 0;         // Guest work discarded by SIGBUS.
    uint64_t bad_destination = 0;    // Tripwire: allocator handed out a
                                     // poisoned frame (must stay 0).
  };

  // Per-tier hot-shrink accounting (`host/tier<i>/shrink_*`).
  struct TierShrinkStats {
    uint64_t windows = 0;          // Shrink windows entered.
    uint64_t carved_pages = 0;     // Free frames carved (cumulative).
    uint64_t evictions = 0;        // Pages emergency-migrated off-tier.
    uint64_t shortfall_pages = 0;  // Carve target never reached by close.
    uint64_t backpressure = 0;     // Guest promotions refused mid-window.
  };

  Hypervisor(HostMemory* memory, EventQueue* events);

  HostMemory& memory() { return *memory_; }
  EventQueue& events() { return *events_; }

  // ---- shard lane routing --------------------------------------------------
  // VM-bound timers (TMM policy polls and migration batches, which advance
  // only their own VM's vCPU clocks) are scheduled through here so the event
  // queue can tag them with the lane of the shard that owns the VM. The lane
  // never changes fire order — it only lets the sharded harness skip
  // refreshing cached per-shard clocks for lanes that stayed quiet. Events
  // that touch cross-VM host state (balloon queues, virtqueue doorbells,
  // overcommit ticks, shrink windows, QoS) keep using events().Schedule(),
  // the host lane: those are the explicit host-interaction points.
  //
  // Unconfigured (num_shards <= 1, the default), everything lands on the
  // host lane — direct Hypervisor users and single-shard machines need no
  // setup. `ids_per_shard` is the block size of the contiguous vm-id →
  // shard map; ids past the last block clamp into the final shard.
  void ConfigureVmEventLanes(int num_shards, int ids_per_shard);
  uint64_t ScheduleVmEvent(int vm_id, Nanos when, EventQueue::Callback cb);

  Vm& CreateVm(const VmConfig& config);
  int num_vms() const { return static_cast<int>(vms_.size()); }
  Vm& vm(int i) { return *vms_[static_cast<size_t>(i)]; }
  const Vm& vm(int i) const { return *vms_[static_cast<size_t>(i)]; }

  // Host tier that should back gPA pages of guest NUMA node `node` (identity
  // mapping: node i <-> tier i).
  TierIndex TierForNode(int node) const { return node; }

  // Guest NUMA node owning a gPA under `vm`'s layout.
  int NodeOfGpa(const Vm& vm, PageNum gpa) const;

  // EPT-fault service: backs `gpa` with a frame from the matching tier
  // (spilling to another tier under host memory pressure; the far swap
  // tier, when present, is last in the chain and a placement there opens a
  // swap slot at `now`). Returns the frame, or kInvalidFrame on host OOM.
  FrameId PopulateEpt(Vm& vm, PageNum gpa, Nanos now = 0);

  // Frees the backing of `gpa` (balloon inflation / free-page reporting).
  // Safe to call for never-backed pages. When `flush` is true a full EPT
  // invalidation is issued (the hypervisor has no gVA for this page).
  void UnbackGpa(Vm& vm, PageNum gpa, bool flush);

  // Host-side migration of one backed gPA to `dst_tier` (used by
  // hypervisor-based TMM). Does NOT flush; callers batch migrations and
  // issue one full flush per batch via vm.FullFlushAll(). Returns false if
  // the page is unbacked or the destination tier is exhausted. On a
  // three-tier host this is also the swap boundary: migrating out of
  // kSwapTier pays the device swap-in (slot released), migrating into it
  // enqueues the async writeback (slot opened).
  bool MigrateGpa(Vm& vm, PageNum gpa, TierIndex dst_tier, Nanos now, double* cost_ns);

  // ---- far swap tier ------------------------------------------------------
  // Creates the swap device backing kSwapTier. Call once before any VM
  // touches memory, and only on hosts with more than kSwapTier tiers; the
  // device consults the bound fault injector (swapfail), so bind that
  // first. Two-tier hosts never call this and swap() stays null.
  void EnableSwap(const SwapDeviceConfig& config);
  SwapDevice* swap() const { return swap_.get(); }

  // Promotion target for a hot swap-in: FMEM when it has free pages beyond
  // the shrink reserve and is not mid-shrink (the level-skip promotion),
  // else SMEM.
  TierIndex SwapInTarget() const;

  // Swaps one backed gPA out of kSwapTier into SwapInTarget() (falling back
  // to the other non-swap tier). Returns false when no destination has a
  // free frame — the page then stays far and is accessed in place.
  bool SwapInGpa(Vm& vm, PageNum gpa, Nanos now, double* cost_ns);

  // MMU-notifier-style scan over a VM's EPT: visits every backed gPA with
  // its pre-clear Accessed bit and clears the bits. The hypervisor cannot
  // know which gVAs map these gPAs, so re-arming observation requires the
  // full EPT invalidation the paper measures (Table 1); this helper issues
  // it. Returns the number of PTEs touched (for cost accounting).
  using EptVisitor = std::function<void(PageNum gpa, FrameId frame, bool accessed)>;
  uint64_t ScanEptAccessedAndFlush(Vm& vm, const EptVisitor& visitor);

  // ---- hwpoison (uncorrectable memory error) ------------------------------
  // Machine-check handler for an error in the frame backing `vpn` of
  // `process` on `vm`: offline the frame (EPT unmap + single-gVA shootdown
  // + HostMemory::Poison), then recover — a clean page (EPT dirty bit
  // unset) is re-backed transparently from its logical copy; a dirty page
  // costs a simulated SIGBUS that the guest kernel handles by discarding
  // the page (the lost work is counted). Returns the CPU cost in ns.
  double OnMemoryError(Vm& vm, GuestProcess& process, PageNum vpn, Nanos now);

  // ---- tier capacity hot-shrink -------------------------------------------
  // Arms the `tiershrink=` schedule from the bound fault injector: window
  // open/close events per configured tier. Call once, before the run.
  void ArmTierShrink();

  // True while tier `t` is inside a shrink window. Promotion paths use this
  // as backpressure: new placements into a shrinking tier are refused.
  bool TierUnderShrink(TierIndex t) const;

  // Records one refused guest promotion against tier `t`'s window.
  void CountShrinkBackpressure(TierIndex t);

  // Pages of tier `t` the armed shrink schedule will carve at each window
  // open (ceil(frac * capacity)); 0 when no schedule covers `t`. Promotion
  // engines keep this many frames free so windows carve idle capacity
  // instead of evicting the pages that were just promoted.
  uint64_t ShrinkReservePages(TierIndex t) const;

  // ---- VM lifecycle -------------------------------------------------------
  // Releases every resource a departing VM holds: all process GPT mappings
  // and guest-physical pages (rmap drains to empty), every EPT backing
  // (frames return to their tiers), and one full TLB invalidation per vCPU
  // so no stale translation for the departed address space survives.
  struct ReclaimResult {
    uint64_t gpt_unmapped = 0;
    uint64_t gpa_freed = 0;
    uint64_t ept_unbacked = 0;
  };
  ReclaimResult ReclaimVm(Vm& vm);

  const Stats& stats() const { return stats_; }
  const PoisonStats& poison_stats() const { return poison_stats_; }
  const TierShrinkStats& shrink_stats(TierIndex t) const {
    return shrink_[static_cast<size_t>(t)].stats;
  }

  // Optional tracer shared by the host and every VM-side subsystem (set by
  // the owning harness before VMs are created; null = not tracing).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  // Optional fault injector shared the same way (set before VMs are
  // created; null = fault-free, and every hook stays inert).
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Registers host-side counters under `scope` (the harness passes "host"):
  // hypervisor stats plus per-tier used/free page gauges.
  void RegisterMetrics(MetricScope scope);

 private:
  struct ShrinkState {
    bool active = false;
    uint64_t target_pages = 0;  // Carve goal for the current window.
    TierShrinkStats stats;
  };

  // Checks a freshly allocated frame against the poison tripwire; returns
  // the frame unchanged. Poisoned frames never re-enter a free list, so a
  // non-zero bad_destination counter means that guarantee broke.
  FrameId CheckDestination(FrameId frame);

  void BeginShrinkWindow(TierIndex t, Nanos now);
  void EndShrinkWindow(TierIndex t, Nanos now);
  // One bounded emergency-eviction batch; reschedules itself while the
  // carve target is unmet and progress is still possible.
  void RunShrinkBatch(TierIndex t, Nanos now);

  HostMemory* memory_;
  EventQueue* events_;
  int vm_lane_shards_ = 1;        // <= 1: every VM event on the host lane.
  int vm_lane_ids_per_shard_ = 1;
  Tracer* tracer_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
  std::unique_ptr<SwapDevice> swap_;
  std::vector<std::unique_ptr<Vm>> vms_;
  Stats stats_;
  PoisonStats poison_stats_;
  std::array<ShrinkState, 2> shrink_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_HYPER_HYPERVISOR_H_
