// Hypervisor: owns host tiered memory and VMs; populates EPTs lazily;
// provides the MMU-notifier interface hypervisor-based TMM designs use and
// the host-side page migration they perform.

#ifndef DEMETER_SRC_HYPER_HYPERVISOR_H_
#define DEMETER_SRC_HYPER_HYPERVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/hyper/vm.h"
#include "src/mem/host_memory.h"
#include "src/sim/event_queue.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/tracer.h"

namespace demeter {

class Hypervisor {
 public:
  struct Stats {
    uint64_t ept_populates = 0;
    uint64_t ept_unbacks = 0;
    uint64_t host_tier_fallbacks = 0;  // Desired tier dry; spilled.
    uint64_t host_migrations = 0;
  };

  Hypervisor(HostMemory* memory, EventQueue* events);

  HostMemory& memory() { return *memory_; }
  EventQueue& events() { return *events_; }

  Vm& CreateVm(const VmConfig& config);
  int num_vms() const { return static_cast<int>(vms_.size()); }
  Vm& vm(int i) { return *vms_[static_cast<size_t>(i)]; }

  // Host tier that should back gPA pages of guest NUMA node `node` (identity
  // mapping: node i <-> tier i).
  TierIndex TierForNode(int node) const { return node; }

  // Guest NUMA node owning a gPA under `vm`'s layout.
  int NodeOfGpa(const Vm& vm, PageNum gpa) const;

  // EPT-fault service: backs `gpa` with a frame from the matching tier
  // (spilling to another tier under host memory pressure). Returns the
  // frame, or kInvalidFrame on host OOM.
  FrameId PopulateEpt(Vm& vm, PageNum gpa);

  // Frees the backing of `gpa` (balloon inflation / free-page reporting).
  // Safe to call for never-backed pages. When `flush` is true a full EPT
  // invalidation is issued (the hypervisor has no gVA for this page).
  void UnbackGpa(Vm& vm, PageNum gpa, bool flush);

  // Host-side migration of one backed gPA to `dst_tier` (used by
  // hypervisor-based TMM). Does NOT flush; callers batch migrations and
  // issue one full flush per batch via vm.FullFlushAll(). Returns false if
  // the page is unbacked or the destination tier is exhausted.
  bool MigrateGpa(Vm& vm, PageNum gpa, TierIndex dst_tier, Nanos now, double* cost_ns);

  // MMU-notifier-style scan over a VM's EPT: visits every backed gPA with
  // its pre-clear Accessed bit and clears the bits. The hypervisor cannot
  // know which gVAs map these gPAs, so re-arming observation requires the
  // full EPT invalidation the paper measures (Table 1); this helper issues
  // it. Returns the number of PTEs touched (for cost accounting).
  using EptVisitor = std::function<void(PageNum gpa, FrameId frame, bool accessed)>;
  uint64_t ScanEptAccessedAndFlush(Vm& vm, const EptVisitor& visitor);

  const Stats& stats() const { return stats_; }

  // Optional tracer shared by the host and every VM-side subsystem (set by
  // the owning harness before VMs are created; null = not tracing).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  // Optional fault injector shared the same way (set before VMs are
  // created; null = fault-free, and every hook stays inert).
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Registers host-side counters under `scope` (the harness passes "host"):
  // hypervisor stats plus per-tier used/free page gauges.
  void RegisterMetrics(MetricScope scope);

 private:
  HostMemory* memory_;
  EventQueue* events_;
  Tracer* tracer_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
  std::vector<std::unique_ptr<Vm>> vms_;
  Stats stats_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_HYPER_HYPERVISOR_H_
